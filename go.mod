module cityhunter

go 1.22
