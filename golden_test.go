// Golden-equivalence tests: the seed-1 outputs captured before the
// scenario.Runner decomposition (testdata/golden/*) must stay byte-identical
// through any refactor of the run path. Three surfaces are pinned, each at
// worker counts 1 and 8 where a pool is involved:
//
//   - the reduced-scale experiments grid (Figures 5+6 rendering),
//   - campaign mode (per-spec rows plus the aggregate line, as the CLI
//     prints them),
//   - the sha256 of a single-run pcap capture.
//
// Regenerate with `go test -run TestGolden -update` ONLY when an
// intentional behaviour change is being made; a refactor must never need it.
package cityhunter_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cityhunter"
	"cityhunter/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files from current behaviour")

const goldenDir = "testdata/golden"

// checkGolden compares got against the named golden file, rewriting it in
// -update mode.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test -run TestGolden -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s diverged from pre-refactor golden.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// goldenOptions is the reduced-scale harness configuration every golden
// capture uses: small enough to run in test time, large enough that hits
// occur and every layer is exercised.
func goldenOptions(workers int) experiments.Options {
	return experiments.Options{
		SlotDuration: 2 * time.Minute,
		ArrivalScale: 0.5,
		Pool:         cityhunter.CampaignPool{Workers: workers},
	}
}

// TestGoldenExperimentsGrid pins the Figure 5/6 grid rendering at worker
// counts 1 and 8 — both must match the same golden file, which also proves
// the grid is byte-identical across pool sizes.
func TestGoldenExperimentsGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid golden is not -short friendly")
	}
	world := apiWorld(t)
	for _, workers := range []int{1, 8} {
		grid, err := experiments.Grid(context.Background(), world, goldenOptions(workers))
		if err != nil {
			t.Fatalf("grid (workers=%d): %v", workers, err)
		}
		out := grid.Figure5() + grid.Figure6()
		checkGolden(t, "grid_seed1.txt", out)
	}
}

// goldenCampaignJSON is the campaign-mode capture: a hand-written spec file
// exercising the by-name venue references and the declarative knobs.
const goldenCampaignJSON = `{
  "runs": [
    {"name": "lunch canteen", "venue": "canteen", "attack": "cityhunter", "slot": 4, "minutes": 3},
    {"name": "rush passage", "venue": "passage", "attack": "cityhunter", "slot": 0, "minutes": 3},
    {"name": "mana mall", "venue": "mall", "attack": "mana", "slot": 6, "minutes": 3, "arrivalScale": 0.5}
  ]
}`

// TestGoldenCampaign pins campaign mode: per-spec result rows and the
// aggregate line, rendered the way cmd/cityhunter-sim prints them, at worker
// counts 1 and 8.
func TestGoldenCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign golden is not -short friendly")
	}
	world := apiWorld(t)
	specs, err := cityhunter.LoadCampaign(strings.NewReader(goldenCampaignJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		res, err := world.RunCampaign(context.Background(), specs, cityhunter.CampaignPool{Workers: workers})
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for i, spec := range specs {
			r := res.Results[i]
			fmt.Fprintf(&b, "%-24s %s at the %s, %s: %v\n",
				spec.Name, r.Attack, r.Venue, r.SlotLabel, r.Tally)
		}
		b.WriteString(res.Aggregate.String() + "\n")
		checkGolden(t, "campaign_seed1.txt", b.String())
	}
}

// TestGoldenPcapSHA256 pins the sha256 of a single-run frame capture: any
// change to frame generation, delivery order or pcap encoding on the
// single-venue path shows up here.
func TestGoldenPcapSHA256(t *testing.T) {
	if testing.Short() {
		t.Skip("pcap golden is not -short friendly")
	}
	world := apiWorld(t)
	res, err := world.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, 3*time.Minute, cityhunter.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	sum := fmt.Sprintf("%x  canteen-cityhunter-slot4-3min-seed1.pcap\n", sha256.Sum256(buf.Bytes()))
	checkGolden(t, "pcap_seed1.sha256", sum)
}
