package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
	"cityhunter/internal/wigle"
)

func mac(b byte) ieee80211.MAC { return ieee80211.MAC{0x02, 0, 0, 0, 0, b} }

// lnk wraps a bare MAC into the minimal linker.Observation the strategy
// interface consumes.
func lnk(m ieee80211.MAC) linker.Observation { return linker.Observation{MAC: m} }

// clientFor resolves a MAC through the engine's linker to its per-track
// state, or nil when the MAC has never been observed.
func (e *Engine) clientFor(m ieee80211.MAC) *clientTrack {
	id, ok := e.linker.Lookup(m)
	if !ok {
		return nil
	}
	return e.clients[id]
}

// seedData builds a small city: one very hot venue SSID, a few chains, and
// cafés near the attack position at (0,0).
func seedData(t *testing.T) *SeedData {
	t.Helper()
	bounds := geo.NewRect(geo.Pt(-1000, -1000), geo.Pt(1000, 1000))
	var recs []wigle.Record
	addAP := func(ssid string, p geo.Point, open bool) {
		recs = append(recs, wigle.Record{SSID: ssid, BSSID: fmt.Sprintf("0a:00:00:00:00:%02x", len(recs)), Pos: p, Open: open})
	}
	// Hot venue: few APs in a crowded spot.
	for i := 0; i < 3; i++ {
		addAP("HotVenue WiFi", geo.Pt(800, 800+float64(i)), true)
	}
	// Chain: many APs spread out.
	for i := 0; i < 30; i++ {
		addAP("ChainMart Free", geo.Pt(float64(-900+i*60), -500), true)
	}
	// Cafés near the attacker.
	for i := 0; i < 8; i++ {
		addAP(fmt.Sprintf("NearCafe-%d", i), geo.Pt(float64(10+i*5), 0), true)
	}
	// A long tail of unique shops so the popularity ranking is deep
	// enough to grow ghost lists behind the buffers.
	for i := 0; i < 120; i++ {
		addAP(fmt.Sprintf("Shop-%03d Free", i), geo.Pt(float64(-900+i*15), 600), true)
	}
	// A secured network that must never be seeded.
	addAP("SecuredCorp", geo.Pt(5, 5), false)

	db, err := wigle.New(bounds, recs)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := heatmap.New(bounds, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		hm.AddPhoto(geo.Pt(810, 810)) // the hot venue
	}
	for i := 0; i < 50; i++ {
		hm.AddPhoto(geo.Pt(-600, -500)) // some chain foot traffic
	}
	return &SeedData{DB: db, HeatMap: hm, Position: geo.Pt(0, 0)}
}

func newFull(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig(ModeFull)
	cfg.TopCityWide = 100
	cfg.NearbyCount = 20
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg, seedData(t))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad mode", func(c *Config) { c.Mode = Mode(0) }},
		{"zero budget", func(c *Config) { c.ReplyBudget = 0 }},
		{"negative seeds", func(c *Config) { c.TopCityWide = -1 }},
		{"negative ghosts", func(c *Config) { c.GhostSize = -1 }},
		{"ghosts eat budget", func(c *Config) { c.GhostPicks = 20 }},
		{"freshness too big", func(c *Config) { c.InitialFreshness = 40 }},
		{"freshness below min", func(c *Config) { c.InitialFreshness = 1; c.MinBuffer = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(ModeFull)
			tt.mutate(&cfg)
			if _, err := NewEngine(cfg, nil); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestSeeding(t *testing.T) {
	e := newFull(t, nil)
	if e.SeededSize() == 0 || e.DBSize() != e.SeededSize() {
		t.Fatalf("seeded/db = %d/%d", e.SeededSize(), e.DBSize())
	}
	top := e.TopEntries(3)
	if top[0].SSID != "HotVenue WiFi" {
		t.Errorf("top entry = %q, want the heat-ranked venue", top[0].SSID)
	}
	if top[0].Weight < top[1].Weight {
		t.Error("top entries not weight-ordered")
	}
	// Secured networks never enter the database.
	for _, en := range e.TopEntries(e.DBSize()) {
		if en.SSID == "SecuredCorp" {
			t.Error("secured SSID seeded")
		}
	}
}

func TestSeedingNearbySource(t *testing.T) {
	e := newFull(t, nil)
	foundNearby := false
	for _, en := range e.TopEntries(e.DBSize()) {
		if strings.HasPrefix(en.SSID, "NearCafe-") {
			foundNearby = true
			if en.Source != SourceNearby && en.Source != SourceWiGLE {
				t.Errorf("near café source = %v", en.Source)
			}
		}
	}
	if !foundNearby {
		t.Error("no nearby cafés seeded")
	}
}

func TestCarrierSeeding(t *testing.T) {
	e := newFull(t, func(c *Config) {
		c.CarrierSSIDs = []string{"PCCW1x"}
		c.CarrierWeight = 500
	})
	top := e.TopEntries(1)
	if top[0].SSID != "PCCW1x" || top[0].Source != SourceCarrier {
		t.Errorf("top = %+v, want carrier-seeded PCCW1x", top[0])
	}
}

func TestNilSeedStartsEmpty(t *testing.T) {
	e, err := NewEngine(DefaultConfig(ModeFull), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.DBSize() != 0 {
		t.Errorf("DBSize = %d", e.DBSize())
	}
	if got := e.BroadcastReply(0, lnk(mac(1)), 40); len(got) != 0 {
		t.Errorf("reply from empty DB = %v", got)
	}
}

func TestHarvestDirect(t *testing.T) {
	e, err := NewEngine(DefaultConfig(ModeFull), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.HarvestDirect(0, lnk(mac(1)), "NewNet")
	if e.DBSize() != 1 {
		t.Fatalf("DBSize = %d", e.DBSize())
	}
	en := e.TopEntries(1)[0]
	if en.Source != SourceDirectProbe || en.Weight != 1 {
		t.Errorf("entry = %+v", en)
	}
	// Re-sighting bumps weight.
	e.HarvestDirect(0, lnk(mac(2)), "NewNet")
	if w := e.TopEntries(1)[0].Weight; w != 2 {
		t.Errorf("weight after sighting = %v, want 2", w)
	}
	e.HarvestDirect(0, lnk(mac(1)), "")
	if e.DBSize() != 1 {
		t.Error("empty SSID harvested")
	}
}

func TestPreliminaryRotation(t *testing.T) {
	cfg := DefaultConfig(ModePreliminary)
	cfg.TopCityWide = 20
	cfg.NearbyCount = 10
	e, err := NewEngine(cfg, seedData(t))
	if err != nil {
		t.Fatal(err)
	}
	victim := mac(1)
	seen := make(map[string]bool)
	total := 0
	for i := 0; i < 10; i++ {
		batch := e.BroadcastReply(0, lnk(victim), 40)
		for _, s := range batch {
			if seen[s] {
				t.Fatalf("SSID %q resent to the same client (round %d)", s, i)
			}
			seen[s] = true
		}
		total += len(batch)
		if len(batch) == 0 {
			break
		}
	}
	if total != e.DBSize() {
		t.Errorf("rotation covered %d of %d entries", total, e.DBSize())
	}
	if e.SentCount(victim) != total {
		t.Errorf("SentCount = %d, want %d", e.SentCount(victim), total)
	}
}

func TestPreliminaryBatchesAreUnordered(t *testing.T) {
	// The §III design has no weights yet: batches walk the database in
	// an order uncorrelated with popularity (we use SSID order), which
	// is why the paper's preliminary passage hit rate is so low.
	cfg := DefaultConfig(ModePreliminary)
	cfg.TopCityWide = 20
	cfg.NearbyCount = 10
	e, err := NewEngine(cfg, seedData(t))
	if err != nil {
		t.Fatal(err)
	}
	e.BroadcastReply(0, lnk(mac(1)), 40) // per-client state must not leak
	batch := e.BroadcastReply(0, lnk(mac(2)), 40)
	if len(batch) < 2 {
		t.Fatalf("batch = %v", batch)
	}
	for i := 1; i < len(batch); i++ {
		if batch[i] < batch[i-1] {
			t.Fatalf("preliminary batch not in storage (SSID) order at %d: %q < %q",
				i, batch[i], batch[i-1])
		}
	}
	// The full design, by contrast, leads with the top-weight entry.
	fe := newFull(t, nil)
	fb := fe.BroadcastReply(0, lnk(mac(2)), 40)
	if fb[0] != "HotVenue WiFi" {
		t.Errorf("full mode first SSID = %q, want top-weight entry", fb[0])
	}
}

func TestRotationDisabledResendsHead(t *testing.T) {
	e := newFull(t, func(c *Config) { c.RotateUntried = false })
	a := e.BroadcastReply(0, lnk(mac(1)), 40)
	b := e.BroadcastReply(0, lnk(mac(1)), 40)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("batch lengths %d/%d", len(a), len(b))
	}
	inA := make(map[string]bool, len(a))
	for _, s := range a {
		inA[s] = true
	}
	same := 0
	for _, s := range b {
		if inA[s] {
			same++
		}
	}
	// Ghost picks are random, so allow up to 2×GhostPicks churn; the
	// regular part must repeat (MANA's flaw, kept for the ablation).
	if same < len(a)-2*e.cfg.GhostPicks {
		t.Errorf("only %d/%d repeated with rotation off", same, len(a))
	}
}

func TestBatchRespectsLimit(t *testing.T) {
	e := newFull(t, nil)
	if got := e.BroadcastReply(0, lnk(mac(1)), 10); len(got) > 10 {
		t.Errorf("batch = %d > limit 10", len(got))
	}
	if got := e.BroadcastReply(0, lnk(mac(2)), 0); got != nil {
		t.Errorf("batch with zero limit = %v", got)
	}
}

func TestBatchNoDuplicates(t *testing.T) {
	e := newFull(t, nil)
	// Create freshness entries that also rank high by weight, to tempt
	// double selection.
	e.RecordHit(time.Second, lnk(mac(9)), "HotVenue WiFi")
	e.RecordHit(2*time.Second, lnk(mac(9)), "ChainMart Free")
	for i := byte(1); i < 20; i++ {
		batch := e.BroadcastReply(0, lnk(mac(i)), 40)
		seen := make(map[string]bool, len(batch))
		for _, s := range batch {
			if seen[s] {
				t.Fatalf("duplicate %q in one batch", s)
			}
			seen[s] = true
		}
	}
}

func TestFullModeUsesFreshness(t *testing.T) {
	e := newFull(t, func(c *Config) {
		c.InitialFreshness = 8
		c.HitWeightDelta = 0 // keep the hit SSID's weight low
	})
	// Give a low-weight harvested SSID a very recent hit.
	e.HarvestDirect(0, lnk(mac(50)), "ObscureShared")
	e.RecordHit(time.Minute, lnk(mac(50)), "ObscureShared")

	batch := e.BroadcastReply(time.Minute+time.Second, lnk(mac(1)), 40)
	found := false
	for _, s := range batch {
		if s == "ObscureShared" {
			found = true
		}
	}
	if !found {
		t.Error("recently hit low-weight SSID missing from batch; FB not working")
	}
}

func TestPreliminaryIgnoresFreshness(t *testing.T) {
	cfg := DefaultConfig(ModePreliminary)
	cfg.TopCityWide = 20
	cfg.NearbyCount = 10
	cfg.HitWeightDelta = 0
	e, err := NewEngine(cfg, seedData(t))
	if err != nil {
		t.Fatal(err)
	}
	e.HarvestDirect(0, lnk(mac(50)), "ObscureShared")
	e.RecordHit(time.Minute, lnk(mac(50)), "ObscureShared")
	batch := e.BroadcastReply(time.Minute+time.Second, lnk(mac(1)), 40)
	smallDB := e.DBSize() <= 40
	for _, s := range batch {
		if s == "ObscureShared" && !smallDB {
			t.Error("preliminary mode served a freshness pick")
		}
	}
}

func TestAdaptationGrowsPopularityOnPBGhostHit(t *testing.T) {
	e := newFull(t, nil)
	_, fb0 := e.BufferSizes()
	// Forge a PB-ghost attribution: send a batch, then find a client
	// whose record contains a popularity-ghost SSID and hit it.
	ssid := e.ghostHitSetup(t, KindPopularityGhost, mac(1))
	e.RecordHit(time.Second, lnk(mac(1)), ssid)
	_, fb1 := e.BufferSizes()
	if fb1 != fb0-1 {
		t.Errorf("FB size %d -> %d, want shrink by 1 on PB-ghost hit", fb0, fb1)
	}
}

// ghostHitSetup sends batches to the given client until one contains an
// SSID attributed to the wanted ghost kind, and returns that SSID.
func (e *Engine) ghostHitSetup(t *testing.T, kind BufferKind, victim ieee80211.MAC) string {
	t.Helper()
	if kind == KindFreshnessGhost {
		// Populate enough freshness entries to form a ghost list. Use
		// the LOWEST-weight entries so the Popularity Buffer does not
		// swallow them before the Freshness Buffer sees them.
		rank := e.db.popularityRank()
		want := e.cfg.InitialFreshness + e.cfg.GhostSize + 5
		base := time.Second
		for i := 0; i < want && i < len(rank); i++ {
			en := rank[len(rank)-1-i]
			e.db.recordHit(en.ssid, base+time.Duration(i)*time.Second, 0)
		}
	}
	for round := 0; round < 50; round++ {
		e.BroadcastReply(time.Duration(round)*time.Second, lnk(victim), e.cfg.ReplyBudget)
		tr := e.clientFor(victim)
		for ssid, k := range tr.sent {
			if k == kind {
				return ssid
			}
		}
	}
	t.Fatalf("no %v pick observed in 50 rounds", kind)
	return ""
}

func TestAdaptationGrowsFreshnessOnFBGhostHit(t *testing.T) {
	e := newFull(t, nil)
	ssid := e.ghostHitSetup(t, KindFreshnessGhost, mac(1))
	_, fb0 := e.BufferSizes()
	e.RecordHit(time.Hour, lnk(mac(1)), ssid)
	_, fb1 := e.BufferSizes()
	if fb1 != fb0+1 {
		t.Errorf("FB size %d -> %d, want grow by 1 on FB-ghost hit", fb0, fb1)
	}
}

func TestAdaptationClampedAtMin(t *testing.T) {
	e := newFull(t, func(c *Config) { c.InitialFreshness = 2; c.MinBuffer = 2 })
	// Repeated PB-ghost hits cannot push FB below MinBuffer.
	for i := 0; i < 10; i++ {
		ssid := e.ghostHitSetup(t, KindPopularityGhost, mac(byte(10+i)))
		e.RecordHit(time.Duration(i)*time.Second, lnk(mac(byte(10+i))), ssid)
	}
	_, fb := e.BufferSizes()
	if fb < e.cfg.MinBuffer {
		t.Errorf("FB size %d below MinBuffer %d", fb, e.cfg.MinBuffer)
	}
}

func TestRecordHitAttribution(t *testing.T) {
	e := newFull(t, nil)
	victim := mac(1)
	batch := e.BroadcastReply(0, lnk(victim), 40)
	if len(batch) == 0 {
		t.Fatal("empty batch")
	}
	e.RecordHit(time.Second, lnk(victim), batch[0])
	hits := e.Hits()
	if len(hits) != 1 {
		t.Fatalf("hits = %d", len(hits))
	}
	h := hits[0]
	if h.MAC != victim || h.SSID != batch[0] || h.At != time.Second {
		t.Errorf("hit = %+v", h)
	}
	if !h.Source.FromWiGLE() {
		t.Errorf("source = %v, want WiGLE-side for a seeded entry", h.Source)
	}
	if !h.Kind.FromPopularity() && !h.Kind.FromFreshness() {
		t.Errorf("kind = %v", h.Kind)
	}
}

func TestRecordHitMirrorAttribution(t *testing.T) {
	e := newFull(t, nil)
	victim := mac(2)
	e.HarvestDirect(0, lnk(victim), "TheirOpenNet")
	e.RecordHit(time.Second, lnk(victim), "TheirOpenNet")
	h := e.Hits()[0]
	if h.Kind != KindMirror {
		t.Errorf("kind = %v, want mirror", h.Kind)
	}
	if h.Source != SourceDirectProbe {
		t.Errorf("source = %v, want direct-probe", h.Source)
	}
}

func TestHarvestedSSIDAlreadyInWiGLEKeepsSource(t *testing.T) {
	e := newFull(t, nil)
	e.HarvestDirect(0, lnk(mac(1)), "ChainMart Free") // already seeded
	for _, en := range e.TopEntries(e.DBSize()) {
		if en.SSID == "ChainMart Free" && en.Source == SourceDirectProbe {
			t.Error("WiGLE-seeded entry re-attributed to direct probe")
		}
	}
}

func TestSamples(t *testing.T) {
	e := newFull(t, nil)
	e.SampleState(0)
	e.HarvestDirect(0, lnk(mac(1)), "New1")
	e.SampleState(time.Minute)
	s := e.Samples()
	if len(s) != 2 {
		t.Fatalf("samples = %d", len(s))
	}
	if s[1].DBSize != s[0].DBSize+1 {
		t.Errorf("DB size series = %d -> %d", s[0].DBSize, s[1].DBSize)
	}
	if s[0].PB+s[0].FB != e.cfg.ReplyBudget-2*e.cfg.GhostPicks {
		t.Errorf("PB+FB = %d", s[0].PB+s[0].FB)
	}
}

func TestBufferSizesPreliminary(t *testing.T) {
	cfg := DefaultConfig(ModePreliminary)
	e, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb, fb := e.BufferSizes()
	if fb != 0 || pb != cfg.ReplyBudget {
		t.Errorf("pb/fb = %d/%d", pb, fb)
	}
}

func TestModeAndKindStrings(t *testing.T) {
	for _, s := range []fmt.Stringer{
		ModePreliminary, ModeFull, Mode(9),
		KindPopularity, KindPopularityGhost, KindFreshness, KindFreshnessGhost, KindMirror, BufferKind(0),
		SourceWiGLE, SourceNearby, SourceDirectProbe, SourceCarrier, Source(0),
	} {
		if s.String() == "" {
			t.Errorf("empty String for %#v", s)
		}
	}
}

func TestEngineNames(t *testing.T) {
	full := newFull(t, nil)
	if full.Name() != "City-Hunter" {
		t.Errorf("Name = %q", full.Name())
	}
	cfg := DefaultConfig(ModePreliminary)
	pre, err := NewEngine(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Name() != "City-Hunter (preliminary)" {
		t.Errorf("Name = %q", pre.Name())
	}
}

func TestFullRotationEventuallyExhausts(t *testing.T) {
	e := newFull(t, nil)
	victim := mac(7)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		batch := e.BroadcastReply(time.Duration(i)*time.Second, lnk(victim), 40)
		if len(batch) == 0 {
			break
		}
		for _, s := range batch {
			if seen[s] {
				t.Fatalf("SSID %q resent in full mode", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != e.DBSize() {
		t.Errorf("covered %d of %d entries", len(seen), e.DBSize())
	}
}

func TestProportionalAdaptationSteps(t *testing.T) {
	e := newFull(t, func(c *Config) { c.ProportionalAdaptation = true; c.InitialFreshness = 10 })
	// Accumulate freshness-ghost hits so the opposite counter dominates,
	// then one popularity-ghost hit must step by more than 1.
	for i := 0; i < 6; i++ {
		ssid := e.ghostHitSetup(t, KindFreshnessGhost, mac(byte(40+i)))
		e.RecordHit(time.Duration(i+1)*time.Hour, lnk(mac(byte(40+i))), ssid)
	}
	_, fbBefore := e.BufferSizes()
	ssid := e.ghostHitSetup(t, KindPopularityGhost, mac(99))
	e.RecordHit(100*time.Hour, lnk(mac(99)), ssid)
	_, fbAfter := e.BufferSizes()
	if step := fbBefore - fbAfter; step < 2 {
		t.Errorf("proportional step = %d, want ≥2 after 6 opposing ghost hits", step)
	}
	if fbAfter < e.cfg.MinBuffer {
		t.Errorf("FB %d below floor", fbAfter)
	}
}

func TestMultiPositionSeeding(t *testing.T) {
	// A shared engine behind two sites seeds the nearby selection once per
	// site: deploying at both the café cluster and the shop row must cover
	// both neighbourhoods.
	sd := seedData(t)
	sd.Positions = []geo.Point{geo.Pt(0, 0), geo.Pt(-900, 600)}
	cfg := DefaultConfig(ModeFull)
	cfg.TopCityWide = 0
	cfg.NearbyCount = 5
	e, err := NewEngine(cfg, sd)
	if err != nil {
		t.Fatal(err)
	}
	cafes, shops := 0, 0
	for _, en := range e.TopEntries(e.DBSize()) {
		if strings.HasPrefix(en.SSID, "NearCafe-") {
			cafes++
		}
		if strings.HasPrefix(en.SSID, "Shop-") {
			shops++
		}
	}
	if cafes == 0 || shops == 0 {
		t.Errorf("two-site seeding covered cafes=%d shops=%d, want both > 0", cafes, shops)
	}

	// Positions with a single entry is identical to Position.
	single := seedData(t)
	single.Positions = []geo.Point{single.Position}
	a, err := NewEngine(DefaultConfig(ModeFull), seedData(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(DefaultConfig(ModeFull), single)
	if err != nil {
		t.Fatal(err)
	}
	if a.DBSize() != b.DBSize() {
		t.Errorf("single Positions db size %d != Position db size %d", b.DBSize(), a.DBSize())
	}
}

func TestAbsorbHitSharesKnowledgeWithoutAttribution(t *testing.T) {
	e, err := NewEngine(DefaultConfig(ModeFull), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Absorbing a remote hit on an unknown SSID inserts it and marks it
	// fresh, but the local hit log and adaptation state stay untouched.
	e.AbsorbHit(time.Minute, "CanteenNet")
	if !e.Knows("CanteenNet") {
		t.Fatal("absorbed SSID not in database")
	}
	if len(e.Hits()) != 0 {
		t.Errorf("absorb appended to the local hit log: %v", e.Hits())
	}
	got := e.BroadcastReply(2*time.Minute, lnk(mac(7)), 40)
	if len(got) != 1 || got[0] != "CanteenNet" {
		t.Errorf("reply after absorb = %v, want the freshly absorbed SSID", got)
	}

	// Absorbing a known SSID bumps its weight past a never-hit peer.
	e2 := newFull(t, nil)
	before := e2.TopEntries(e2.DBSize())
	target := before[len(before)-1].SSID
	head := before[0].Weight
	for i := 0; i < int(head)+10; i++ {
		e2.AbsorbHit(time.Duration(i)*time.Second, target)
	}
	if e2.TopEntries(1)[0].SSID != target {
		t.Errorf("absorbed hits did not promote %q past the head weight %v", target, head)
	}
	if len(e2.Hits()) != 0 {
		t.Error("absorb on seeded engine touched the hit log")
	}

	// Empty SSIDs are ignored.
	e.AbsorbHit(0, "")
	if e.DBSize() != 1 {
		t.Errorf("empty absorb changed the database: size %d", e.DBSize())
	}
}
