package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/ieee80211"
)

// TestPropertyRandomOps drives the engine with random interleavings of
// harvests, broadcast replies and hits, and checks the structural
// invariants after every step:
//
//   - a reply batch never exceeds the budget and never contains duplicates;
//   - with rotation on, a client is never sent the same SSID twice;
//   - PB + FB always equals the regular budget, both within bounds;
//   - the database only grows, and every replied SSID is in it.
func TestPropertyRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultConfig(ModeFull)
			cfg.Seed = seed
			e, err := NewEngine(cfg, seedData(t))
			if err != nil {
				t.Fatal(err)
			}
			regular := cfg.ReplyBudget - 2*cfg.GhostPicks

			clients := make([]ieee80211.MAC, 12)
			for i := range clients {
				clients[i] = mac(byte(i + 1))
			}
			sent := make(map[ieee80211.MAC]map[string]bool)
			inDB := make(map[string]bool)
			for _, en := range e.TopEntries(e.DBSize()) {
				inDB[en.SSID] = true
			}
			lastBatch := make(map[ieee80211.MAC][]string)

			for step := 0; step < 3000; step++ {
				now := time.Duration(step) * time.Second
				c := clients[rng.Intn(len(clients))]
				switch rng.Intn(10) {
				case 0, 1, 2: // harvest
					ssid := fmt.Sprintf("harvest-%03d", rng.Intn(300))
					e.HarvestDirect(now, lnk(c), ssid)
					inDB[ssid] = true
					if sent[c] == nil {
						sent[c] = make(map[string]bool)
					}
					sent[c][ssid] = true // mirrored by the base station
				case 3: // hit from the client's last batch
					if batch := lastBatch[c]; len(batch) > 0 {
						e.RecordHit(now, lnk(c), batch[rng.Intn(len(batch))])
					}
				default: // broadcast reply
					batch := e.BroadcastReply(now, lnk(c), cfg.ReplyBudget)
					if len(batch) > cfg.ReplyBudget {
						t.Fatalf("step %d: batch %d > budget", step, len(batch))
					}
					seen := make(map[string]bool, len(batch))
					if sent[c] == nil {
						sent[c] = make(map[string]bool)
					}
					for _, ssid := range batch {
						if seen[ssid] {
							t.Fatalf("step %d: duplicate %q in batch", step, ssid)
						}
						seen[ssid] = true
						if sent[c][ssid] {
							t.Fatalf("step %d: %q resent to %v", step, ssid, c)
						}
						sent[c][ssid] = true
						if !inDB[ssid] {
							t.Fatalf("step %d: replied %q not in database", step, ssid)
						}
					}
					lastBatch[c] = batch
				}

				pb, fb := e.BufferSizes()
				if pb+fb != regular {
					t.Fatalf("step %d: PB+FB = %d+%d != %d", step, pb, fb, regular)
				}
				if fb < cfg.MinBuffer || pb < cfg.MinBuffer {
					t.Fatalf("step %d: buffer below floor: pb=%d fb=%d", step, pb, fb)
				}
				if e.DBSize() < e.SeededSize() {
					t.Fatalf("step %d: database shrank", step)
				}
			}
		})
	}
}

// TestPropertyRotationCoversEverything: any client that keeps asking
// eventually receives every database entry exactly once, in both modes.
func TestPropertyRotationCoversEverything(t *testing.T) {
	for _, mode := range []Mode{ModePreliminary, ModeFull} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig(mode)
			cfg.TopCityWide = 100
			cfg.NearbyCount = 20
			e, err := NewEngine(cfg, seedData(t))
			if err != nil {
				t.Fatal(err)
			}
			victim := mac(1)
			got := make(map[string]bool)
			for round := 0; round < 100; round++ {
				batch := e.BroadcastReply(time.Duration(round)*time.Second, lnk(victim), 40)
				if len(batch) == 0 {
					break
				}
				for _, s := range batch {
					if got[s] {
						t.Fatalf("round %d: %q repeated", round, s)
					}
					got[s] = true
				}
			}
			if len(got) != e.DBSize() {
				t.Errorf("covered %d of %d entries", len(got), e.DBSize())
			}
		})
	}
}

// TestPropertyDeterministicReplay: identical op sequences on two engines
// with the same seed produce identical batches.
func TestPropertyDeterministicReplay(t *testing.T) {
	build := func() *Engine {
		cfg := DefaultConfig(ModeFull)
		cfg.Seed = 99
		e, err := NewEngine(cfg, seedData(t))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(), build()
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	drive := func(e *Engine, rng *rand.Rand) []string {
		var out []string
		for step := 0; step < 500; step++ {
			now := time.Duration(step) * time.Second
			c := mac(byte(rng.Intn(8) + 1))
			switch rng.Intn(4) {
			case 0:
				e.HarvestDirect(now, lnk(c), fmt.Sprintf("h-%d", rng.Intn(100)))
			case 1:
				batch := e.BroadcastReply(now, lnk(c), 40)
				if len(batch) > 0 {
					e.RecordHit(now, lnk(c), batch[0])
				}
				out = append(out, batch...)
			default:
				out = append(out, e.BroadcastReply(now, lnk(c), 40)...)
			}
		}
		return out
	}
	ga, gb := drive(a, rngA), drive(b, rngB)
	if len(ga) != len(gb) {
		t.Fatalf("lengths differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("batch item %d differs: %q vs %q", i, ga[i], gb[i])
		}
	}
}
