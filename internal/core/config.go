package core

import (
	"fmt"
	"math/rand"

	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/linker"
	"cityhunter/internal/wigle"
)

// Mode selects which stage of the paper's design the engine runs.
type Mode int

// Engine modes.
const (
	// ModePreliminary is the §III design: WiGLE seeding plus per-client
	// untried rotation over the weight-ranked database. No freshness
	// buffer, no adaptation.
	ModePreliminary Mode = iota + 1
	// ModeFull is the §IV design: Popularity and Freshness buffers with
	// ghost lists and adaptive size balancing.
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePreliminary:
		return "preliminary"
	case ModeFull:
		return "full"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config tunes the engine. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Mode selects the preliminary (§III) or full (§IV) design.
	Mode Mode

	// TopCityWide is how many heat-ranked city-wide SSIDs to seed
	// (paper: 200).
	TopCityWide int
	// NearbyCount is how many nearest open SSIDs to seed (paper: 100).
	NearbyCount int

	// ReplyBudget is the per-probe response batch size (paper: 40,
	// the client's scan-window capacity).
	ReplyBudget int
	// GhostSize is the length of each ghost list (paper: 20).
	GhostSize int
	// GhostPicks is how many random ghosts from each list join every
	// batch (paper: 2, i.e. 10 % of 20).
	GhostPicks int
	// InitialFreshness is the starting Freshness Buffer size; the
	// Popularity Buffer gets the rest of the budget.
	InitialFreshness int
	// MinBuffer is the adaptation floor for either buffer.
	MinBuffer int

	// HitWeightDelta is added to an entry's weight on a successful hit.
	HitWeightDelta float64
	// SightingWeightDelta is added when a directed probe re-discloses a
	// known SSID.
	SightingWeightDelta float64
	// HarvestWeight is the initial weight of an SSID first learnt from a
	// directed probe.
	HarvestWeight float64

	// CarrierSSIDs seeds the §V-B carrier networks.
	CarrierSSIDs []string
	// CarrierWeight is their initial weight.
	CarrierWeight float64

	// RotateUntried enables the per-client untried-SSID rotation
	// (§III-A). Disabling it reproduces MANA's resend-the-head flaw for
	// ablation.
	RotateUntried bool
	// DisableAdaptation freezes the buffer sizes at their initial split
	// (the fixed 35-vs-5 alternative the paper argues against in §IV-C).
	DisableAdaptation bool
	// ProportionalAdaptation replaces the paper's ±1 rebalancing with
	// ARC's proportional rule: a ghost hit moves the boundary by
	// max(1, opposite-ghost-hits / own-ghost-hits), converging faster
	// when one side dominates. An ablation knob.
	ProportionalAdaptation bool

	// Seed drives the ghost sampling.
	Seed int64

	// Linker maps observed MACs to device tracks, the seam for the MAC
	// de-anonymisation counterattack. Nil selects the identity
	// linker.MACLinker (one MAC = one device), which reproduces the
	// historical behaviour byte-identically.
	Linker linker.Linker
}

// DefaultConfig returns the paper's parameters for the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                mode,
		TopCityWide:         200,
		NearbyCount:         100,
		ReplyBudget:         40,
		GhostSize:           20,
		GhostPicks:          2,
		InitialFreshness:    8,
		MinBuffer:           2,
		HitWeightDelta:      1,
		SightingWeightDelta: 1,
		HarvestWeight:       1,
		CarrierWeight:       50,
		RotateUntried:       true,
		Seed:                1,
	}
}

func (cfg Config) validate() error {
	if cfg.Mode != ModePreliminary && cfg.Mode != ModeFull {
		return fmt.Errorf("core: invalid mode %d", int(cfg.Mode))
	}
	if cfg.ReplyBudget <= 0 {
		return fmt.Errorf("core: reply budget %d must be positive", cfg.ReplyBudget)
	}
	if cfg.TopCityWide < 0 || cfg.NearbyCount < 0 {
		return fmt.Errorf("core: negative seeding counts")
	}
	if cfg.GhostSize < 0 || cfg.GhostPicks < 0 {
		return fmt.Errorf("core: negative ghost parameters")
	}
	if cfg.Mode == ModeFull {
		if 2*cfg.GhostPicks >= cfg.ReplyBudget {
			return fmt.Errorf("core: ghost picks %d×2 exceed budget %d", cfg.GhostPicks, cfg.ReplyBudget)
		}
		regular := cfg.ReplyBudget - 2*cfg.GhostPicks
		if cfg.MinBuffer < 0 || 2*cfg.MinBuffer > regular {
			return fmt.Errorf("core: min buffer %d infeasible for budget %d", cfg.MinBuffer, cfg.ReplyBudget)
		}
		if cfg.InitialFreshness < cfg.MinBuffer || cfg.InitialFreshness > regular-cfg.MinBuffer {
			return fmt.Errorf("core: initial freshness %d outside [%d, %d]",
				cfg.InitialFreshness, cfg.MinBuffer, regular-cfg.MinBuffer)
		}
	}
	return nil
}

// SeedData is the offline initialisation input: the WiGLE-substitute
// database, the heat map, and the deployment position.
type SeedData struct {
	DB      *wigle.DB
	HeatMap *heatmap.Map
	// Position is where the attacker will be deployed; the nearby
	// selection is relative to it.
	Position geo.Point
	// Positions, when non-empty, overrides Position with several
	// deployment sites: the engine serves a multi-site deployment behind a
	// shared knowledge plane, so the nearby selection runs once per site.
	Positions []geo.Point
}

// positions returns the seeding positions: Positions when set, else the
// single Position.
func (s *SeedData) positions() []geo.Point {
	if len(s.Positions) > 0 {
		return s.Positions
	}
	return []geo.Point{s.Position}
}

// NewEngine builds a City-Hunter engine and runs database initialisation
// (step 1 of Fig. 3): top city-wide SSIDs by heat value with rank-ratio
// weights, the nearest open SSIDs likewise, and optional carrier SSIDs.
// seed may be nil for an engine that starts with an empty database (it will
// rely purely on harvested SSIDs, useful for ablations).
func NewEngine(cfg Config, seed *SeedData) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lk := cfg.Linker
	if lk == nil {
		lk = linker.NewMACLinker()
	}
	e := &Engine{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		db:      newDatabase(),
		linker:  lk,
		clients: make(map[linker.TrackID]*clientTrack),
		fbSize:  cfg.InitialFreshness,
	}
	if cfg.Mode == ModePreliminary {
		e.fbSize = 0
	}

	if seed != nil {
		ranked := seed.HeatMap.RankByHeat(seed.DB.OpenPositionsBySSID())
		n := min(cfg.TopCityWide, len(ranked))
		weights := heatmap.RankWeights(n)
		for i := 0; i < n; i++ {
			e.db.add(ranked[i].SSID, SourceWiGLE, weights[i])
		}
		for _, pos := range seed.positions() {
			nearby := seed.DB.NearestSSIDs(pos, cfg.NearbyCount)
			nearWeights := heatmap.RankWeights(len(nearby))
			for i, ssid := range nearby {
				e.db.add(ssid, SourceNearby, nearWeights[i])
			}
		}
	}
	for _, ssid := range cfg.CarrierSSIDs {
		e.db.add(ssid, SourceCarrier, cfg.CarrierWeight)
	}
	e.seededSize = e.db.len()
	return e, nil
}
