package core

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
	"cityhunter/internal/obs"
)

// BufferKind labels which selection bucket an SSID was served from; the
// Figure 6 breakdown and the buffer adaptation both consume it.
type BufferKind int

// Buffer kinds.
const (
	// KindPopularity marks regular Popularity Buffer picks.
	KindPopularity BufferKind = iota + 1
	// KindPopularityGhost marks random picks from PB's ghost list.
	KindPopularityGhost
	// KindFreshness marks regular Freshness Buffer picks.
	KindFreshness
	// KindFreshnessGhost marks random picks from FB's ghost list.
	KindFreshnessGhost
	// KindMirror marks KARMA-style responses to directed probes.
	KindMirror
)

// String implements fmt.Stringer.
func (k BufferKind) String() string {
	switch k {
	case KindPopularity:
		return "popularity"
	case KindPopularityGhost:
		return "popularity-ghost"
	case KindFreshness:
		return "freshness"
	case KindFreshnessGhost:
		return "freshness-ghost"
	case KindMirror:
		return "mirror"
	default:
		return "unknown"
	}
}

// FromPopularity reports whether the kind belongs to the popularity side
// (buffer or ghost) in the paper's Figure 6 grouping.
func (k BufferKind) FromPopularity() bool {
	return k == KindPopularity || k == KindPopularityGhost
}

// FromFreshness reports whether the kind belongs to the freshness side.
func (k BufferKind) FromFreshness() bool {
	return k == KindFreshness || k == KindFreshnessGhost
}

// HitRecord is one successful capture with full attribution.
type HitRecord struct {
	// MAC is the victim's over-the-air MAC at capture time (under MAC
	// randomization, one of possibly many the device used).
	MAC ieee80211.MAC
	// Track is the attacker-assigned device track the victim was linked
	// to; the identity linker gives every distinct MAC its own track.
	Track linker.TrackID
	// SSID lured it.
	SSID string
	// At is the capture time.
	At time.Duration
	// Source says where the SSID was learnt (WiGLE/nearby/direct/carrier).
	Source Source
	// Kind says which buffer served it (mirror for directed-probe hits).
	Kind BufferKind
}

// StateSample is a point-in-time engine snapshot for time-series plots.
type StateSample struct {
	At     time.Duration
	DBSize int
	PB     int
	FB     int
}

// clientTrack is the per-device untried bookkeeping (§III-A): every SSID
// ever sent to the tracked device, with the bucket it came from. It is
// keyed by the linker-assigned TrackID, not by raw MAC, so a linker that
// re-identifies a rotated MAC resumes the device's rotation mid-list
// instead of restarting from the head.
type clientTrack struct {
	sent      map[string]BufferKind
	sentCount int
}

// Engine is the City-Hunter strategy. It is not safe for concurrent use;
// the discrete-event engine is single-threaded by design.
type Engine struct {
	cfg Config
	rng *rand.Rand
	db  *database

	// linker maps observed MACs to device tracks; the identity MACLinker
	// (the default) reproduces the historical MAC-keyed behaviour exactly.
	linker  linker.Linker
	clients map[linker.TrackID]*clientTrack
	// fbSize is the adaptive Freshness Buffer size; the Popularity
	// Buffer gets the rest of the regular budget.
	fbSize int

	hits       []HitRecord
	seededSize int
	samples    []StateSample

	// Ghost-hit counters drive the optional proportional adaptation.
	pbGhostHits int
	fbGhostHits int

	// scratchBatch is reused across selections to avoid allocation.
	scratchBatch []string

	// om holds the observability handles; nil when uninstrumented, which
	// keeps the BroadcastReply hot path at a single branch.
	om *engineObs
}

// engineObs bundles the engine's metric handles and journal.
type engineObs struct {
	replies     *obs.Counter
	batch       *obs.Histogram
	hits        [6]*obs.Counter // indexed by BufferKind
	harvests    *obs.Counter
	adaptations *obs.Counter
	pbSize      *obs.Gauge
	fbSize      *obs.Gauge
	dbSize      *obs.Gauge
	tracks      *obs.Gauge
	relinks     *obs.Gauge
	journal     *obs.Journal
}

// Instrument attaches the engine to an observability runtime: reply batch
// counters and size histogram (core_broadcast_replies, core_batch_size),
// per-buffer hit attribution (core_hits{kind=...}), harvest and adaptation
// counters, and PB/FB/database size gauges. With a journal present it also
// records ghost-hit and buffer-adaptation events. A nil runtime is a no-op.
//
// The optional labels (key/value pairs) stamp every series the engine
// registers. Partitioned deployments use them to give each site's engine
// its own gauge series — N engines setting one shared unlabeled gauge from
// N goroutines would race — while classic callers pass none and keep their
// historical series names byte for byte.
func (e *Engine) Instrument(rt *obs.Runtime, labels ...string) {
	if rt == nil || (rt.Metrics == nil && rt.Journal == nil) {
		return
	}
	o := &engineObs{journal: rt.Journal}
	if rt.Metrics != nil {
		withKind := func(k BufferKind) []string {
			return append([]string{"kind", k.String()}, labels...)
		}
		o.replies = rt.Metrics.Counter("core_broadcast_replies", labels...)
		o.batch = rt.Metrics.Histogram("core_batch_size", []float64{0, 10, 20, 30, 40}, labels...)
		for _, k := range []BufferKind{KindPopularity, KindPopularityGhost, KindFreshness, KindFreshnessGhost, KindMirror} {
			o.hits[k] = rt.Metrics.Counter("core_hits", withKind(k)...)
		}
		o.harvests = rt.Metrics.Counter("core_harvested_ssids", labels...)
		o.adaptations = rt.Metrics.Counter("core_adaptations", labels...)
		o.pbSize = rt.Metrics.Gauge("core_pb_size", labels...)
		o.fbSize = rt.Metrics.Gauge("core_fb_size", labels...)
		o.dbSize = rt.Metrics.Gauge("core_db_size", labels...)
		o.tracks = rt.Metrics.Gauge("core_tracks", labels...)
		o.relinks = rt.Metrics.Gauge("core_relinks", labels...)
	}
	e.om = o
	e.omSyncGauges()
}

// omSyncGauges refreshes the size gauges after a state change.
func (e *Engine) omSyncGauges() {
	if e.om == nil {
		return
	}
	pb, fb := e.BufferSizes()
	e.om.pbSize.Set(float64(pb))
	e.om.fbSize.Set(float64(fb))
	e.om.dbSize.Set(float64(e.db.len()))
	e.om.tracks.Set(float64(e.linker.Tracks()))
	e.om.relinks.Set(float64(e.linker.Links()))
}

// Name implements attack.Strategy.
func (e *Engine) Name() string {
	if e.cfg.Mode == ModePreliminary {
		return "City-Hunter (preliminary)"
	}
	return "City-Hunter"
}

// DBSize returns the current SSID database size.
func (e *Engine) DBSize() int { return e.db.len() }

// SeededSize returns the database size right after offline initialisation.
func (e *Engine) SeededSize() int { return e.seededSize }

// BufferSizes returns the current regular Popularity and Freshness buffer
// sizes. In preliminary mode the whole budget is popularity.
func (e *Engine) BufferSizes() (pb, fb int) {
	if e.cfg.Mode == ModePreliminary {
		return e.cfg.ReplyBudget, 0
	}
	regular := e.cfg.ReplyBudget - 2*e.cfg.GhostPicks
	return regular - e.fbSize, e.fbSize
}

// Hits returns all capture records in order.
func (e *Engine) Hits() []HitRecord {
	out := make([]HitRecord, len(e.hits))
	copy(out, e.hits)
	return out
}

// SentCount returns how many distinct SSIDs have been sent to the device
// the linker associates with mac.
func (e *Engine) SentCount(mac ieee80211.MAC) int {
	id, ok := e.linker.Lookup(mac)
	if !ok {
		return 0
	}
	if t, ok := e.clients[id]; ok {
		return t.sentCount
	}
	return 0
}

// SentCountAcross sums the sent counts over every distinct track the
// linker resolved the given MACs to, counting each track once. It is the
// per-device form of SentCount for phones that rotated through several
// MACs: an un-linked rotation splits the device across tracks whose
// counts add up, while a successful re-link collapses them to one track
// counted once. For a single stable MAC it equals SentCount.
func (e *Engine) SentCountAcross(macs []ieee80211.MAC) int {
	total := 0
	var seen []linker.TrackID
	for _, mac := range macs {
		id, ok := e.linker.Lookup(mac)
		if !ok {
			continue
		}
		dup := false
		for _, s := range seen {
			if s == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen = append(seen, id)
		if t, ok := e.clients[id]; ok {
			total += t.sentCount
		}
	}
	return total
}

// Linker returns the engine's MAC-to-track linker.
func (e *Engine) Linker() linker.Linker { return e.linker }

// SampleState records a snapshot at the given time for time-series output.
func (e *Engine) SampleState(now time.Duration) {
	pb, fb := e.BufferSizes()
	e.samples = append(e.samples, StateSample{At: now, DBSize: e.db.len(), PB: pb, FB: fb})
}

// Samples returns the recorded snapshots.
func (e *Engine) Samples() []StateSample {
	out := make([]StateSample, len(e.samples))
	copy(out, e.samples)
	return out
}

// EntryInfo is an exported view of one database entry.
type EntryInfo struct {
	SSID   string
	Source Source
	Weight float64
	Hits   int
}

// TopEntries returns the n highest-weight entries.
func (e *Engine) TopEntries(n int) []EntryInfo {
	rank := e.db.popularityRank()
	if n > len(rank) {
		n = len(rank)
	}
	out := make([]EntryInfo, n)
	for i := 0; i < n; i++ {
		en := rank[i]
		out[i] = EntryInfo{SSID: en.ssid, Source: en.source, Weight: en.weight, Hits: en.hits}
	}
	return out
}

// trackOf resolves an observation to its device track via the linker,
// creating the per-track bookkeeping on first sight.
func (e *Engine) trackOf(o linker.Observation) (linker.TrackID, *clientTrack) {
	id := e.linker.Observe(o)
	t, ok := e.clients[id]
	if !ok {
		t = &clientTrack{sent: make(map[string]BufferKind)}
		e.clients[id] = t
	}
	return id, t
}

// Knows implements attack.Knower: whether ssid is already in the database.
func (e *Engine) Knows(ssid string) bool {
	_, ok := e.db.get(ssid)
	return ok
}

// HarvestDirect implements attack.Strategy: online database updating from
// directed probes (step 2 of Fig. 3). New SSIDs enter with HarvestWeight;
// re-sightings bump the weight. The probed SSID is also marked as tried for
// the prober — the base station mirrors it, so a batch slot would be
// wasted on it.
func (e *Engine) HarvestDirect(_ time.Duration, o linker.Observation, ssid string) {
	if ssid == "" {
		return
	}
	if e.db.add(ssid, SourceDirectProbe, e.cfg.HarvestWeight) {
		if e.om != nil {
			e.om.harvests.Inc()
			e.om.dbSize.Set(float64(e.db.len()))
		}
	} else {
		e.db.bump(ssid, e.cfg.SightingWeightDelta)
	}
	// A harvest is by definition a directed probe; normalise the
	// observation so linkers see the disclosed SSID even when a caller
	// hands in a bare MAC.
	o.Directed, o.SSID = true, ssid
	_, t := e.trackOf(o)
	if _, dup := t.sent[ssid]; !dup {
		t.sent[ssid] = KindMirror
		t.sentCount++
	}
}

// BroadcastReply implements attack.Strategy: SSID selection (step 3 of
// Fig. 3). In full mode the batch is drawn from the Popularity Buffer, the
// Freshness Buffer and GhostPicks random entries from each ghost list,
// under the per-client untried rotation; any shortfall is backfilled with
// further popularity-ranked entries.
func (e *Engine) BroadcastReply(_ time.Duration, o linker.Observation, limit int) []string {
	budget := e.cfg.ReplyBudget
	if limit < budget {
		budget = limit
	}
	if budget <= 0 {
		return nil
	}
	_, t := e.trackOf(o)

	tried := func(ssid string) bool {
		if !e.cfg.RotateUntried {
			return false
		}
		_, ok := t.sent[ssid]
		return ok
	}

	batch := e.scratchBatch[:0]
	chosen := make(map[string]BufferKind, budget)
	take := func(en *entry, kind BufferKind) bool {
		if _, dup := chosen[en.ssid]; dup || tried(en.ssid) {
			return false
		}
		chosen[en.ssid] = kind
		batch = append(batch, en.ssid)
		return len(batch) >= budget
	}

	if e.cfg.Mode == ModeFull {
		e.selectFull(budget, tried, chosen, take)
	}
	// Preliminary mode — and full-mode backfill when the freshness side
	// could not fill its share. The §III design has no weights yet, so
	// it walks the database in storage order; the full design backfills
	// down the popularity ranking.
	if len(batch) < budget {
		backfill := e.db.popularityRank()
		if e.cfg.Mode == ModePreliminary {
			backfill = e.db.unorderedRank()
		}
		for _, en := range backfill {
			if take(en, KindPopularity) {
				break
			}
		}
	}

	for _, ssid := range batch {
		if _, dup := t.sent[ssid]; !dup {
			t.sent[ssid] = chosen[ssid]
			t.sentCount++
		}
	}
	e.scratchBatch = batch
	if e.om != nil {
		e.om.replies.Inc()
		e.om.batch.Observe(float64(len(batch)))
		e.om.tracks.Set(float64(e.linker.Tracks()))
		e.om.relinks.Set(float64(e.linker.Links()))
	}
	out := make([]string, len(batch))
	copy(out, batch)
	return out
}

// selectFull fills the batch from PB, FB and both ghost lists. Both the
// regular buffers and the ghost candidates honour the per-client untried
// rotation: a client never wastes a slot on an SSID it already received.
func (e *Engine) selectFull(budget int, tried func(string) bool, chosen map[string]BufferKind, take func(*entry, BufferKind) bool) {
	regular := budget - 2*e.cfg.GhostPicks
	if regular < 0 {
		regular = 0
	}
	fb := e.fbSize
	if fb > regular {
		fb = regular
	}
	pb := regular - fb

	eligible := func(en *entry) bool {
		if _, dup := chosen[en.ssid]; dup {
			return false
		}
		return !tried(en.ssid)
	}

	// Popularity Buffer: the pb highest-weight eligible entries; the next
	// GhostSize eligible entries form its ghost list.
	var ghostPop []*entry
	taken := 0
	for _, en := range e.db.popularityRank() {
		if !eligible(en) {
			continue
		}
		if taken < pb {
			if take(en, KindPopularity) {
				return
			}
			taken++
			continue
		}
		if len(ghostPop) < e.cfg.GhostSize {
			ghostPop = append(ghostPop, en)
			continue
		}
		break
	}

	// Freshness Buffer: the fb most recently hit eligible entries; the
	// following GhostSize form its ghost list.
	var ghostFresh []*entry
	taken = 0
	for _, en := range e.db.freshnessRank() {
		if !eligible(en) {
			continue
		}
		if taken < fb {
			if take(en, KindFreshness) {
				return
			}
			taken++
			continue
		}
		if len(ghostFresh) < e.cfg.GhostSize {
			ghostFresh = append(ghostFresh, en)
			continue
		}
		break
	}

	// Random ghost picks from each list.
	e.pickGhosts(ghostPop, KindPopularityGhost, take)
	e.pickGhosts(ghostFresh, KindFreshnessGhost, take)
}

// adaptDelta returns the buffer-boundary step for a ghost hit: 1 under the
// paper's rule, or ARC's max(1, opposite/own) under proportional mode.
func (e *Engine) adaptDelta(opposite, own int) int {
	if !e.cfg.ProportionalAdaptation || own <= 0 || opposite <= own {
		return 1
	}
	return opposite / own
}

// pickGhosts takes up to GhostPicks random entries from candidates.
func (e *Engine) pickGhosts(candidates []*entry, kind BufferKind, take func(*entry, BufferKind) bool) {
	picks := e.cfg.GhostPicks
	if picks > len(candidates) {
		picks = len(candidates)
	}
	// Partial Fisher-Yates over the candidate list.
	for i := 0; i < picks; i++ {
		j := i + e.rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		if take(candidates[i], kind) {
			return
		}
	}
}

// AbsorbHit merges a capture learnt at ANOTHER deployment site into this
// engine — the periodic-sync knowledge plane. The SSID enters the database
// if it is new (a site can relay SSIDs it harvested over the air) and gets
// the same weight and freshness treatment a local hit would, so a network
// that captured a phone at the canteen rises into this site's Popularity
// and Freshness buffers. Unlike RecordHit it does NOT append to the local
// hit log, touch per-client tracking, or adapt the buffer boundary: the hit
// happened elsewhere, so local attribution and ghost accounting must not
// claim it.
func (e *Engine) AbsorbHit(now time.Duration, ssid string) {
	if ssid == "" {
		return
	}
	if e.db.add(ssid, SourceDirectProbe, e.cfg.HarvestWeight) && e.om != nil {
		e.om.dbSize.Set(float64(e.db.len()))
	}
	e.db.recordHit(ssid, now, e.cfg.HitWeightDelta)
}

// RecordHit implements attack.Strategy: weight and freshness updates plus
// buffer-size adaptation (step 2/3 of Fig. 3). A hit served from PB's ghost
// list means the Popularity Buffer was too small, so it grows at FB's
// expense, and vice versa — the ARC-inspired balancing of §IV-C.
func (e *Engine) RecordHit(now time.Duration, victim linker.Observation, ssid string) {
	e.db.recordHit(ssid, now, e.cfg.HitWeightDelta)

	// Resolve the victim to its device track. An associating victim has
	// almost always probed first, so Lookup hits; the Observe fallback
	// covers synthetic callers that record hits cold.
	id, linked := e.linker.Lookup(victim.MAC)
	if !linked {
		id = e.linker.Observe(victim)
	}
	kind := KindMirror
	if t, ok := e.clients[id]; ok {
		if k, ok := t.sent[ssid]; ok {
			kind = k
		}
	}
	source := SourceDirectProbe
	if en, ok := e.db.get(ssid); ok {
		source = en.source
	}
	e.hits = append(e.hits, HitRecord{MAC: victim.MAC, Track: id, SSID: ssid, At: now, Source: source, Kind: kind})

	if e.om != nil {
		e.om.hits[kind].Inc()
		if e.om.journal != nil && (kind == KindPopularityGhost || kind == KindFreshnessGhost) {
			e.om.journal.Record(now, obs.EventGhostHit, victim.MAC.String(),
				fmt.Sprintf("%s served %q", kind, ssid))
		}
	}

	if e.cfg.Mode != ModeFull || e.cfg.DisableAdaptation {
		return
	}
	regular := e.cfg.ReplyBudget - 2*e.cfg.GhostPicks
	adapted := 0
	switch kind {
	case KindPopularityGhost:
		// The Popularity Buffer proved too small: grow it at the
		// Freshness Buffer's expense — by one (the paper's rule) or by
		// the ARC-style proportional step.
		e.pbGhostHits++
		delta := e.adaptDelta(e.fbGhostHits, e.pbGhostHits)
		if e.fbSize-delta < e.cfg.MinBuffer {
			delta = e.fbSize - e.cfg.MinBuffer
		}
		e.fbSize -= delta
		adapted = -delta
	case KindFreshnessGhost:
		// And vice versa.
		e.fbGhostHits++
		delta := e.adaptDelta(e.pbGhostHits, e.fbGhostHits)
		if e.fbSize+delta > regular-e.cfg.MinBuffer {
			delta = regular - e.cfg.MinBuffer - e.fbSize
		}
		e.fbSize += delta
		adapted = delta
	}
	if e.om != nil && adapted != 0 {
		e.om.adaptations.Inc()
		e.omSyncGauges()
		if e.om.journal != nil {
			pb, fb := e.BufferSizes()
			e.om.journal.Record(now, obs.EventAdaptation, victim.MAC.String(),
				fmt.Sprintf("%s hit moved boundary by %+d: pb=%d fb=%d", kind, adapted, pb, fb))
		}
	}
}
