// Package core implements the City-Hunter engine: the weighted SSID
// database seeded from WiGLE and the heat map, its online updates, the
// Popularity and Freshness buffers with their ghost lists, the ARC-inspired
// adaptive size balancing, and the per-client untried-SSID rotation
// (paper §III–§IV).
//
// The engine plugs into the attacker base station through the
// attack.Strategy interface.
package core

import (
	"sort"
	"time"
)

// Source labels where a database entry was learnt from; Figure 6 breaks
// successful hits down by it.
type Source int

// Entry sources.
const (
	// SourceWiGLE marks entries from the city-wide heat-ranked selection.
	SourceWiGLE Source = iota + 1
	// SourceNearby marks entries from the nearest-to-the-attacker
	// selection. Figure 6 groups them with SourceWiGLE ("from WiGLE").
	SourceNearby
	// SourceDirectProbe marks entries harvested over the air.
	SourceDirectProbe
	// SourceCarrier marks the §V-B carrier-SSID seeding.
	SourceCarrier
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceWiGLE:
		return "wigle"
	case SourceNearby:
		return "nearby"
	case SourceDirectProbe:
		return "direct-probe"
	case SourceCarrier:
		return "carrier"
	default:
		return "unknown"
	}
}

// FromWiGLE reports whether the source counts as "from WiGLE" in the
// paper's Figure 6 breakdown (city-wide and nearby selections both do).
func (s Source) FromWiGLE() bool { return s == SourceWiGLE || s == SourceNearby }

// entry is one database record.
type entry struct {
	ssid   string
	source Source
	// weight is the popularity score: initialised by rank-ratio,
	// incremented on sightings and hits.
	weight float64
	// hits counts successful captures via this SSID.
	hits int
	// lastHit is the most recent capture time; meaningful when hasHit.
	lastHit time.Duration
	hasHit  bool
	// insertOrder breaks weight ties deterministically (older first).
	insertOrder int
}

// database is the weighted SSID store with three lazily sorted views:
// by descending weight (popularity), by descending last-hit time
// (freshness), and by SSID (the "unordered" view: a deterministic order
// uncorrelated with popularity, standing in for the arbitrary storage
// order of the paper's §III preliminary design).
type database struct {
	entries map[string]*entry

	byWeight    []*entry
	weightDirty bool

	byFresh    []*entry
	freshDirty bool

	bySSID     []*entry
	ssidsDirty bool
}

func newDatabase() *database {
	return &database{entries: make(map[string]*entry)}
}

func (db *database) len() int { return len(db.entries) }

func (db *database) get(ssid string) (*entry, bool) {
	e, ok := db.entries[ssid]
	return e, ok
}

// add inserts a new entry or, if the SSID exists, raises its weight to at
// least w (keeping the original source). It reports whether a new entry was
// created.
func (db *database) add(ssid string, source Source, w float64) bool {
	if ssid == "" {
		return false
	}
	if e, ok := db.entries[ssid]; ok {
		if w > e.weight {
			e.weight = w
			db.weightDirty = true
		}
		return false
	}
	e := &entry{ssid: ssid, source: source, weight: w, insertOrder: len(db.entries)}
	db.entries[ssid] = e
	db.byWeight = append(db.byWeight, e)
	db.weightDirty = true
	db.bySSID = append(db.bySSID, e)
	db.ssidsDirty = true
	return true
}

// bump raises an entry's weight by delta.
func (db *database) bump(ssid string, delta float64) {
	if e, ok := db.entries[ssid]; ok {
		e.weight += delta
		db.weightDirty = true
	}
}

// recordHit registers a successful capture via ssid at the given time.
func (db *database) recordHit(ssid string, now time.Duration, weightDelta float64) {
	e, ok := db.entries[ssid]
	if !ok {
		return
	}
	e.hits++
	e.weight += weightDelta
	e.lastHit = now
	if !e.hasHit {
		e.hasHit = true
		db.byFresh = append(db.byFresh, e)
	}
	db.weightDirty = true
	db.freshDirty = true
}

// popularityRank returns the entries ordered by descending weight; ties go
// to the older entry. The returned slice is owned by the database — do not
// mutate.
func (db *database) popularityRank() []*entry {
	if db.weightDirty {
		sort.SliceStable(db.byWeight, func(i, j int) bool {
			if db.byWeight[i].weight != db.byWeight[j].weight {
				return db.byWeight[i].weight > db.byWeight[j].weight
			}
			return db.byWeight[i].insertOrder < db.byWeight[j].insertOrder
		})
		db.weightDirty = false
	}
	return db.byWeight
}

// unorderedRank returns all entries in SSID order — stable, deterministic,
// and uncorrelated with popularity.
func (db *database) unorderedRank() []*entry {
	if db.ssidsDirty {
		sort.Slice(db.bySSID, func(i, j int) bool {
			return db.bySSID[i].ssid < db.bySSID[j].ssid
		})
		db.ssidsDirty = false
	}
	return db.bySSID
}

// freshnessRank returns the entries with at least one hit ordered by
// descending last-hit time. The returned slice is owned by the database.
func (db *database) freshnessRank() []*entry {
	if db.freshDirty {
		sort.SliceStable(db.byFresh, func(i, j int) bool {
			if db.byFresh[i].lastHit != db.byFresh[j].lastHit {
				return db.byFresh[i].lastHit > db.byFresh[j].lastHit
			}
			return db.byFresh[i].insertOrder < db.byFresh[j].insertOrder
		})
		db.freshDirty = false
	}
	return db.byFresh
}
