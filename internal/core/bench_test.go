package core

import (
	"fmt"
	"testing"
	"time"

	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
)

// benchEngine builds a full-mode engine with a large harvested database.
func benchEngine(b *testing.B, entries int) *Engine {
	b.Helper()
	e, err := NewEngine(DefaultConfig(ModeFull), nil)
	if err != nil {
		b.Fatal(err)
	}
	src := ieee80211.MAC{0x02, 9, 9, 9, 9, 9}
	for i := 0; i < entries; i++ {
		e.HarvestDirect(0, lnk(src), fmt.Sprintf("Net-%05d", i))
	}
	return e
}

func BenchmarkBroadcastReplyFreshClient(b *testing.B) {
	e := benchEngine(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mac := ieee80211.MAC{0x02, 0, 0, byte(i >> 16), byte(i >> 8), byte(i)}
		if got := e.BroadcastReply(0, lnk(mac), 40); len(got) != 40 {
			b.Fatalf("batch = %d", len(got))
		}
	}
}

// BenchmarkBroadcastReplyInstrumented mirrors BroadcastReplyFreshClient
// with the metrics registry armed; comparing the two bounds the cost of
// the observability hooks (the nil-check fast path when off, one counter
// increment and one histogram observation when on).
func BenchmarkBroadcastReplyInstrumented(b *testing.B) {
	e := benchEngine(b, 2000)
	e.Instrument(&obs.Runtime{Metrics: obs.NewRegistry()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mac := ieee80211.MAC{0x02, 0, 0, byte(i >> 16), byte(i >> 8), byte(i)}
		if got := e.BroadcastReply(0, lnk(mac), 40); len(got) != 40 {
			b.Fatalf("batch = %d", len(got))
		}
	}
}

func BenchmarkBroadcastReplyRotatingClient(b *testing.B) {
	e := benchEngine(b, 2000)
	mac := ieee80211.MAC{0x02, 1, 1, 1, 1, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BroadcastReply(time.Duration(i), lnk(mac), 40)
		if e.SentCount(mac) >= 2000 {
			// Exhausted: start a new client to keep the work uniform.
			b.StopTimer()
			mac[5]++
			b.StartTimer()
		}
	}
}

func BenchmarkHarvestDirect(b *testing.B) {
	e := benchEngine(b, 0)
	src := ieee80211.MAC{0x02, 9, 9, 9, 9, 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.HarvestDirect(time.Duration(i), lnk(src), fmt.Sprintf("H-%07d", i))
	}
}

func BenchmarkRecordHit(b *testing.B) {
	e := benchEngine(b, 512)
	victim := ieee80211.MAC{0x02, 1, 1, 1, 1, 1}
	e.BroadcastReply(0, lnk(victim), 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RecordHit(time.Duration(i), lnk(victim), fmt.Sprintf("Net-%05d", i%512))
	}
}
