// Package paper records the reference numbers reported in "City-Hunter:
// Hunting Smartphones in Urban Areas" (ICDCS 2017) as typed constants, so
// every band check and report in the repository compares against a single
// source of truth instead of scattered literals.
//
// Values are transcribed from the paper's tables and running text; see
// EXPERIMENTS.md for how closely the reproduction lands on each.
package paper

// TableIRow is one attacker row of Table I.
type TableIRow struct {
	Attack           string
	Clients          int
	Direct           int
	Broadcast        int
	ConnectedDirect  int
	ConnectedBcast   int
	HitRate          float64
	BroadcastHitRate float64
}

// TableI reports the KARMA vs MANA canteen comparison.
var TableI = []TableIRow{
	{Attack: "KARMA", Clients: 614, Direct: 85, Broadcast: 529,
		ConnectedDirect: 24, ConnectedBcast: 0, HitRate: 0.039, BroadcastHitRate: 0},
	{Attack: "MANA", Clients: 688, Direct: 103, Broadcast: 585,
		ConnectedDirect: 27, ConnectedBcast: 19, HitRate: 0.066, BroadcastHitRate: 0.03},
}

// TableII reports the MANA vs preliminary City-Hunter canteen comparison.
var TableII = []TableIRow{
	{Attack: "MANA", Clients: 688, Direct: 103, Broadcast: 585,
		ConnectedDirect: 27, ConnectedBcast: 19, HitRate: 0.066, BroadcastHitRate: 0.03},
	{Attack: "City-Hunter (preliminary)", Clients: 626, Direct: 85, Broadcast: 541,
		ConnectedDirect: 34, ConnectedBcast: 86, HitRate: 0.191, BroadcastHitRate: 0.159},
}

// TableIII reports the preliminary City-Hunter subway-passage deployment.
var TableIII = TableIRow{
	Attack: "City-Hunter (preliminary)", Clients: 1356, Direct: 178, Broadcast: 1178,
	ConnectedDirect: 37, ConnectedBcast: 49, HitRate: 0.063, BroadcastHitRate: 0.041,
}

// TableIV lists the paper's two top-5 SSID rankings.
var TableIV = struct {
	ByAPCount []string
	ByHeat    []string
}{
	ByAPCount: []string{
		"-Free HKBN Wi-Fi-", "7-Eleven Free Wifi", "-Circle K Free Wi-Fi-",
		"CSL", "CMCC-WEB",
	},
	ByHeat: []string{
		"Free Public WiFi", "#HKAirport Free WiFi", "-Free HKBN Wi-Fi-",
		"FREE 3Y5 AdWiFi", "7-Eleven Free Wifi",
	},
}

// Figure 2 summary values.
const (
	// Fig2aMeanSSIDsSent is the average number of SSIDs sent to each
	// connected canteen client (range 20-250).
	Fig2aMeanSSIDsSent = 130
	Fig2aMinSSIDsSent  = 20
	Fig2aMaxSSIDsSent  = 250
	// Fig2bOneBatchShare and Fig2bTwoBatchShare are the fractions of
	// passage clients that saw 40 and 80 SSIDs respectively.
	Fig2bOneBatchShare = 0.70
	Fig2bTwoBatchShare = 0.22
)

// Figure 5 venue-average broadcast hit rates.
var Fig5AverageHb = map[string]float64{
	"subway passage":  0.12,
	"canteen":         0.1786,
	"shopping center": 0.14,
	"railway station": 0.166,
}

// Figure 6 ratio bands (min, max) as reported in the running text.
var (
	// Fig6SourceRatioPassage is WiGLE : direct-probe hits in the passage.
	Fig6SourceRatioPassage = [2]float64{3.5, 5.1}
	// Fig6BufferRatioPassage is popularity : freshness in the passage.
	Fig6BufferRatioPassage = [2]float64{6.3, 9.9}
	// Fig6BufferRatioCanteen is popularity : freshness in the canteen.
	Fig6BufferRatioCanteen = [2]float64{3.0, 5.2}
)

// Headline claims from the abstract.
const (
	// HeadlineHbMin and HeadlineHbMax bound City-Hunter's broadcast hit
	// rate across venues.
	HeadlineHbMin = 0.12
	HeadlineHbMax = 0.18
	// ImprovementOverMANAMin/Max bound the claimed h_b improvement factor.
	ImprovementOverMANAMin = 4.0
	ImprovementOverMANAMax = 8.0
)

// Protocol constants the analysis rests on (§III-A).
const (
	// ResponsesPerScan is how many probe responses one AP can land in a
	// client's scan window.
	ResponsesPerScan = 40
	// WiGLETopCityWide and WiGLENearby are the database seeding sizes.
	WiGLETopCityWide = 200
	WiGLENearby      = 100
	// GhostListSize and GhostPicks parameterise §IV-C.
	GhostListSize = 20
	GhostPicks    = 2
)
