package paper

import "testing"

// TestInternalConsistency cross-checks the transcribed numbers against each
// other: the rates printed in the paper must match the counts.
func TestInternalConsistency(t *testing.T) {
	rows := append(append([]TableIRow{}, TableI...), TableII...)
	rows = append(rows, TableIII)
	for _, r := range rows {
		if r.Direct+r.Broadcast != r.Clients {
			t.Errorf("%s: direct %d + broadcast %d != clients %d",
				r.Attack, r.Direct, r.Broadcast, r.Clients)
		}
		h := float64(r.ConnectedDirect+r.ConnectedBcast) / float64(r.Clients)
		if diff := h - r.HitRate; diff > 0.005 || diff < -0.005 {
			t.Errorf("%s: recomputed h %.3f vs printed %.3f", r.Attack, h, r.HitRate)
		}
		hb := float64(r.ConnectedBcast) / float64(r.Broadcast)
		if diff := hb - r.BroadcastHitRate; diff > 0.006 || diff < -0.006 {
			t.Errorf("%s: recomputed h_b %.3f vs printed %.3f", r.Attack, hb, r.BroadcastHitRate)
		}
	}
}

func TestRankingsComplete(t *testing.T) {
	if len(TableIV.ByAPCount) != 5 || len(TableIV.ByHeat) != 5 {
		t.Fatal("Table IV rankings must have 5 entries each")
	}
	// The heat ranking promotes exactly the two SSIDs the paper calls out.
	promoted := map[string]bool{}
	inCount := map[string]bool{}
	for _, s := range TableIV.ByAPCount {
		inCount[s] = true
	}
	for _, s := range TableIV.ByHeat {
		if !inCount[s] {
			promoted[s] = true
		}
	}
	if !promoted["#HKAirport Free WiFi"] || !promoted["Free Public WiFi"] {
		t.Errorf("promoted set = %v", promoted)
	}
}

func TestBandsSane(t *testing.T) {
	if HeadlineHbMin >= HeadlineHbMax {
		t.Error("headline band inverted")
	}
	for name, hb := range Fig5AverageHb {
		if hb < HeadlineHbMin-0.001 || hb > HeadlineHbMax+0.001 {
			t.Errorf("%s average %.3f outside the abstract's band", name, hb)
		}
	}
	for _, band := range [][2]float64{Fig6SourceRatioPassage, Fig6BufferRatioPassage, Fig6BufferRatioCanteen} {
		if band[0] >= band[1] {
			t.Errorf("band %v inverted", band)
		}
	}
}
