package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{name: "add", got: Pt(1, 2).Add(Pt(3, 4)), want: Pt(4, 6)},
		{name: "sub", got: Pt(1, 2).Sub(Pt(3, 4)), want: Pt(-2, -2)},
		{name: "scale", got: Pt(1, 2).Scale(2), want: Pt(2, 4)},
		{name: "scale zero", got: Pt(1, 2).Scale(0), want: Pt(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist(Pt(1, 1)); d != 0 {
		t.Errorf("Dist to self = %v, want 0", d)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsInf(ax, 0) || math.IsNaN(ay) || math.IsInf(ay, 0) ||
			math.IsNaN(bx) || math.IsInf(bx, 0) || math.IsNaN(by) || math.IsInf(by, 0) {
			return true
		}
		// Keep magnitudes small enough that squaring stays finite.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return math.Abs(d*d-a.Dist2(b)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnit(t *testing.T) {
	u := Pt(3, 4).Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	if z := (Point{}).Unit(); z != (Point{}) {
		t.Errorf("Unit of zero = %v, want zero", z)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(10, 0), Pt(0, 10))
	if r.Min != Pt(0, 0) || r.Max != Pt(10, 10) {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},
		{Pt(10, 10), true},
		{Pt(-0.1, 5), false},
		{Pt(5, 10.1), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", NewRect(Pt(5, 5), Pt(15, 15)), true},
		{"touching edge", NewRect(Pt(10, 0), Pt(20, 10)), true},
		{"disjoint", NewRect(Pt(11, 11), Pt(20, 20)), false},
		{"contained", NewRect(Pt(2, 2), Pt(3, 3)), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(4, 2))
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("W/H/Area = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
	if c := r.Center(); c != Pt(2, 1) {
		t.Errorf("Center = %v", c)
	}
	e := r.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(5, 3) {
		t.Errorf("Expand = %+v", e)
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	tests := []struct {
		p, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-5, 5), Pt(0, 5)},
		{Pt(15, 20), Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNewGridIndexValidation(t *testing.T) {
	if _, err := NewGridIndex(NewRect(Pt(0, 0), Pt(10, 10)), 0); err == nil {
		t.Error("want error for zero cell size")
	}
	if _, err := NewGridIndex(Rect{}, 10); err == nil {
		t.Error("want error for empty bounds")
	}
}

func mustGrid(t *testing.T, b Rect, cell float64) *GridIndex {
	t.Helper()
	g, err := NewGridIndex(b, cell)
	if err != nil {
		t.Fatalf("NewGridIndex: %v", err)
	}
	return g
}

func TestGridWithinRadius(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(100, 100)), 10)
	pts := []Point{Pt(10, 10), Pt(12, 10), Pt(50, 50), Pt(90, 90)}
	for i, p := range pts {
		g.Insert(i, p)
	}
	got := g.WithinRadius(Pt(11, 10), 5)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("WithinRadius = %v, want [0 1]", got)
	}
	if got := g.WithinRadius(Pt(11, 10), -1); got != nil {
		t.Errorf("negative radius = %v, want nil", got)
	}
	if got := g.WithinRadius(Pt(200, 200), 5); len(got) != 0 {
		t.Errorf("far query = %v, want empty", got)
	}
}

func TestGridWithinRadiusOrdering(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(100, 100)), 7)
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		g.Insert(i, pts[i])
	}
	q := Pt(40, 40)
	ids := g.WithinRadius(q, 30)
	for i := 1; i < len(ids); i++ {
		if pts[ids[i-1]].Dist(q) > pts[ids[i]].Dist(q) {
			t.Fatalf("results not sorted by distance at %d", i)
		}
	}
	// Cross-check membership against brute force.
	want := 0
	for _, p := range pts {
		if p.Dist(q) <= 30 {
			want++
		}
	}
	if len(ids) != want {
		t.Errorf("got %d results, brute force %d", len(ids), want)
	}
}

func TestGridNearest(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(100, 100)), 10)
	for i := 0; i < 10; i++ {
		g.Insert(i, Pt(float64(i*10), 0))
	}
	got := g.Nearest(Pt(0, 0), 3)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Nearest = %v, want [0 1 2]", got)
	}
	if got := g.Nearest(Pt(0, 0), 0); got != nil {
		t.Errorf("Nearest k=0 = %v, want nil", got)
	}
	// Asking for more than exists returns everything.
	if got := g.Nearest(Pt(0, 0), 50); len(got) != 10 {
		t.Errorf("Nearest k=50 returned %d, want 10", len(got))
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(1000, 1000)), 25)
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		g.Insert(i, pts[i])
	}
	for trial := 0; trial < 20; trial++ {
		q := Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := g.Nearest(q, 5)
		if len(got) != 5 {
			t.Fatalf("Nearest returned %d", len(got))
		}
		// The 5th nearest distance must match brute force.
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = p.Dist(q)
		}
		worst := 0.0
		for _, id := range got {
			if d := pts[id].Dist(q); d > worst {
				worst = d
			}
		}
		better := 0
		for _, d := range dists {
			if d < worst-1e-9 {
				better++
			}
		}
		if better > 5 {
			t.Fatalf("trial %d: %d points closer than worst returned", trial, better)
		}
	}
}

func TestGridClampsOutOfBounds(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(100, 100)), 10)
	g.Insert(1, Pt(-50, -50)) // clamped into border cell, still findable
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.WithinRadius(Pt(-50, -50), 1); len(got) != 1 {
		t.Errorf("out-of-bounds item not found: %v", got)
	}
}

func TestGridLen(t *testing.T) {
	g := mustGrid(t, NewRect(Pt(0, 0), Pt(10, 10)), 1)
	if g.Len() != 0 {
		t.Fatalf("empty Len = %d", g.Len())
	}
	for i := 0; i < 42; i++ {
		g.Insert(i, Pt(5, 5))
	}
	if g.Len() != 42 {
		t.Errorf("Len = %d, want 42", g.Len())
	}
}
