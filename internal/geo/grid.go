package geo

import (
	"fmt"
	"math"
)

// GridIndex is a uniform spatial hash over a bounded region. It supports the
// two queries the rest of the system needs: all items within a radius of a
// point, and the k nearest items to a point. Items are referenced by the
// integer IDs the caller inserts, so the index stores no payloads.
type GridIndex struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]gridItem
}

type gridItem struct {
	id int
	p  Point
}

// NewGridIndex builds an index over bounds with roughly cellSize-metre cells.
// cellSize must be positive and bounds must have positive area.
func NewGridIndex(bounds Rect, cellSize float64) (*GridIndex, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size %v must be positive", cellSize)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("geo: bounds %v have no area", bounds)
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	return &GridIndex{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]gridItem, cols*rows),
	}, nil
}

// Len returns the number of items in the index.
func (g *GridIndex) Len() int {
	n := 0
	for _, c := range g.cells {
		n += len(c)
	}
	return n
}

// Insert adds an item at p. Points outside the bounds are clamped to the
// border cell so that nothing is silently dropped.
func (g *GridIndex) Insert(id int, p Point) {
	i := g.cellIndex(p)
	g.cells[i] = append(g.cells[i], gridItem{id: id, p: p})
}

func (g *GridIndex) cellIndex(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	cx = min(max(cx, 0), g.cols-1)
	cy = min(max(cy, 0), g.rows-1)
	return cy*g.cols + cx
}

// WithinRadius returns the IDs of all items within radius metres of p, in
// ascending distance order.
func (g *GridIndex) WithinRadius(p Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	r2 := radius * radius
	var found []distItem
	g.visitCells(p, radius, func(it gridItem) {
		if d2 := it.p.Dist2(p); d2 <= r2 {
			found = append(found, distItem{id: it.id, d2: d2})
		}
	})
	sortByDist(found)
	ids := make([]int, len(found))
	for i, f := range found {
		ids[i] = f.id
	}
	return ids
}

// Nearest returns the IDs of the k items closest to p, nearest first. It
// returns fewer than k when the index holds fewer items.
func (g *GridIndex) Nearest(p Point, k int) []int {
	if k <= 0 {
		return nil
	}
	// Grow the search ring until we have k candidates whose distance bound
	// is guaranteed (all items within the scanned radius are included).
	radius := g.cellSize
	maxR := math.Hypot(g.bounds.Width(), g.bounds.Height()) + g.cellSize
	for {
		ids := g.WithinRadius(p, radius)
		if len(ids) >= k || radius > maxR {
			if len(ids) > k {
				ids = ids[:k]
			}
			return ids
		}
		radius *= 2
	}
}

func (g *GridIndex) visitCells(p Point, radius float64, fn func(gridItem)) {
	minX := int((p.X - radius - g.bounds.Min.X) / g.cellSize)
	maxX := int((p.X + radius - g.bounds.Min.X) / g.cellSize)
	minY := int((p.Y - radius - g.bounds.Min.Y) / g.cellSize)
	maxY := int((p.Y + radius - g.bounds.Min.Y) / g.cellSize)
	minX = min(max(minX, 0), g.cols-1)
	maxX = min(max(maxX, 0), g.cols-1)
	minY = min(max(minY, 0), g.rows-1)
	maxY = min(max(maxY, 0), g.rows-1)
	for cy := minY; cy <= maxY; cy++ {
		for cx := minX; cx <= maxX; cx++ {
			for _, it := range g.cells[cy*g.cols+cx] {
				fn(it)
			}
		}
	}
}

type distItem struct {
	id int
	d2 float64
}

// sortByDist is an insertion sort: candidate lists are short and mostly
// ordered by cell traversal, and avoiding sort.Slice keeps this allocation
// free.
func sortByDist(items []distItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func less(a, b distItem) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.id < b.id
}
