package geo

import (
	"math/rand"
	"testing"
)

func benchIndex(b *testing.B, n int) (*GridIndex, []Point) {
	b.Helper()
	g, err := NewGridIndex(NewRect(Pt(0, 0), Pt(8000, 8000)), 125)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*8000, rng.Float64()*8000)
		g.Insert(i, pts[i])
	}
	return g, pts
}

func BenchmarkWithinRadius(b *testing.B) {
	g, pts := benchIndex(b, 12000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.WithinRadius(pts[i%len(pts)], 500)
	}
}

func BenchmarkNearest100(b *testing.B) {
	g, pts := benchIndex(b, 12000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Nearest(pts[i%len(pts)], 100)
	}
}
