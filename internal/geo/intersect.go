package geo

import "math"

// SegmentDiskCrossings intersects the segment a→b with the closed disk of
// radius r around c, returning the entry and exit positions as fractions of
// the segment (0 = a, 1 = b), clamped to [0, 1]. ok is false when the
// segment never touches the disk. A degenerate segment (a == b) reports
// [0, 1] when the point lies inside the disk.
//
// The level-of-detail promotion scheduler uses this to turn a pedestrian's
// piecewise-linear route into promote/demote times around an attacker site:
// entry is when the phone must become a full client, exit when it may fall
// back to the statistical tier.
func SegmentDiskCrossings(a, b, c Point, r float64) (entry, exit float64, ok bool) {
	if r < 0 {
		return 0, 0, false
	}
	d := b.Sub(a)
	f := a.Sub(c)
	dd := d.X*d.X + d.Y*d.Y
	if dd == 0 {
		if f.X*f.X+f.Y*f.Y <= r*r {
			return 0, 1, true
		}
		return 0, 0, false
	}
	// Solve |f + t·d|² = r² for t.
	bq := f.X*d.X + f.Y*d.Y
	cq := f.X*f.X + f.Y*f.Y - r*r
	disc := bq*bq - dd*cq
	if disc < 0 {
		return 0, 0, false
	}
	sq := math.Sqrt(disc)
	t0 := (-bq - sq) / dd
	t1 := (-bq + sq) / dd
	if t1 < 0 || t0 > 1 {
		return 0, 0, false
	}
	return math.Max(t0, 0), math.Min(t1, 1), true
}
