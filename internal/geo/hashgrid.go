package geo

import "fmt"

// CellKey identifies one cell of a HashGrid.
type CellKey struct{ X, Y int32 }

// HashGrid is a sparse uniform grid over the unbounded plane. Unlike
// GridIndex it needs no bounds up front and supports removal and movement,
// which makes it the right shape for a live set of stations: insert on
// attach, move on position updates, remove on detach, and query the cells
// covering a radius at delivery time.
//
// Items are referenced by caller-supplied int32 ids; the grid stores no
// payloads. Neighborhood visits enumerate cells in deterministic row-major
// order, so two identical grids always yield the same id sequence.
type HashGrid struct {
	cellSize float64
	cells    map[CellKey][]int32
}

// NewHashGrid builds a grid with cellSize-metre cells. cellSize must be
// positive.
func NewHashGrid(cellSize float64) (*HashGrid, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("geo: cell size %v must be positive", cellSize)
	}
	return &HashGrid{cellSize: cellSize, cells: make(map[CellKey][]int32)}, nil
}

// Key returns the cell containing p.
func (g *HashGrid) Key(p Point) CellKey {
	return CellKey{X: int32(floorDiv(p.X, g.cellSize)), Y: int32(floorDiv(p.Y, g.cellSize))}
}

// floorDiv is floor(v/size) as an int, correct for negative coordinates
// (plain integer conversion truncates toward zero, which would fold the
// cells around the origin together).
func floorDiv(v, size float64) int {
	q := v / size
	i := int(q)
	if q < 0 && float64(i) != q {
		i--
	}
	return i
}

// Insert adds id at p and returns the cell it landed in, for the caller to
// cache and hand back to Move or Remove.
func (g *HashGrid) Insert(id int32, p Point) CellKey {
	k := g.Key(p)
	g.cells[k] = append(g.cells[k], id)
	return k
}

// Remove deletes id from the cell it was last inserted or moved into.
// Removing an id the cell does not hold is a no-op.
func (g *HashGrid) Remove(id int32, k CellKey) {
	ids := g.cells[k]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			if len(ids) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = ids
			}
			return
		}
	}
}

// Move re-buckets id from its cached cell to the cell containing p and
// returns the new key. When the position stays within the same cell the
// grid is untouched.
func (g *HashGrid) Move(id int32, from CellKey, p Point) CellKey {
	k := g.Key(p)
	if k == from {
		return k
	}
	g.Remove(id, from)
	g.cells[k] = append(g.cells[k], id)
	return k
}

// Len returns the number of items in the grid.
func (g *HashGrid) Len() int {
	n := 0
	for _, ids := range g.cells {
		n += len(ids)
	}
	return n
}

// AppendNeighborhood appends to dst the ids of every item whose cell
// intersects the axis-aligned square of half-width radius around p, and
// returns the extended slice. The result is a superset of the items within
// radius of p — callers re-check exact geometry — and is produced without
// allocating when dst has capacity. Cells are visited in row-major order;
// ids within a cell come back in bucket order, so callers that need a
// global order must impose their own (ids are ints — sort them).
//
// The scan spans ceil(radius/cellSize) rings of cells on each side of p's
// cell, so radii larger than the cell size are handled exactly: the medium
// queries at its radio range (one ring, by construction of its cell size),
// while the level-of-detail promotion scheduler queries at promotion radii
// many times the cell size and still sees every candidate.
func (g *HashGrid) AppendNeighborhood(dst []int32, p Point, radius float64) []int32 {
	if radius < 0 {
		return dst
	}
	lo := g.Key(Point{X: p.X - radius, Y: p.Y - radius})
	hi := g.Key(Point{X: p.X + radius, Y: p.Y + radius})
	for cy := lo.Y; cy <= hi.Y; cy++ {
		for cx := lo.X; cx <= hi.X; cx++ {
			dst = append(dst, g.cells[CellKey{X: cx, Y: cy}]...)
		}
	}
	return dst
}
