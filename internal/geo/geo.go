// Package geo provides the small planar-geometry toolkit used by the
// synthetic city, the WiGLE-substitute database and the mobility models.
//
// All coordinates are metres in a local tangent plane; the simulated city is
// a few kilometres across, so planar geometry is accurate enough and keeps
// every computation exact and fast.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in metres on the city plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p with both coordinates multiplied by k.
func (p Point) Scale(k float64) Point { return Point{X: p.X * k, Y: p.Y * k} }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance between p and q. It avoids the square
// root for comparisons against a squared radius.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Unit returns the unit vector in the direction of p, or the zero point when
// p is the origin.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return p.Scale(1 / n)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; a Rect with Min == Max is empty but valid.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Point{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r in square metres.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Expand returns r grown by d metres on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - d, Y: r.Min.Y - d},
		Max: Point{X: r.Max.X + d, Y: r.Max.Y + d},
	}
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}
