package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegmentDiskCrossings(t *testing.T) {
	tests := []struct {
		name        string
		a, b, c     Point
		r           float64
		entry, exit float64
		ok          bool
	}{
		{name: "through center", a: Pt(-10, 0), b: Pt(10, 0), c: Pt(0, 0), r: 5,
			entry: 0.25, exit: 0.75, ok: true},
		{name: "miss", a: Pt(-10, 8), b: Pt(10, 8), c: Pt(0, 0), r: 5, ok: false},
		{name: "tangent", a: Pt(-10, 5), b: Pt(10, 5), c: Pt(0, 0), r: 5,
			entry: 0.5, exit: 0.5, ok: true},
		{name: "starts inside", a: Pt(0, 0), b: Pt(20, 0), c: Pt(0, 0), r: 5,
			entry: 0, exit: 0.25, ok: true},
		{name: "ends inside", a: Pt(-20, 0), b: Pt(0, 0), c: Pt(0, 0), r: 5,
			entry: 0.75, exit: 1, ok: true},
		{name: "entirely inside", a: Pt(-1, 0), b: Pt(1, 0), c: Pt(0, 0), r: 5,
			entry: 0, exit: 1, ok: true},
		{name: "disk behind segment", a: Pt(10, 0), b: Pt(30, 0), c: Pt(0, 0), r: 5, ok: false},
		{name: "disk past segment", a: Pt(-30, 0), b: Pt(-10, 0), c: Pt(0, 0), r: 5, ok: false},
		{name: "degenerate inside", a: Pt(1, 1), b: Pt(1, 1), c: Pt(0, 0), r: 5,
			entry: 0, exit: 1, ok: true},
		{name: "degenerate outside", a: Pt(9, 9), b: Pt(9, 9), c: Pt(0, 0), r: 5, ok: false},
		{name: "negative radius", a: Pt(-10, 0), b: Pt(10, 0), c: Pt(0, 0), r: -1, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			entry, exit, ok := SegmentDiskCrossings(tt.a, tt.b, tt.c, tt.r)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if !ok {
				return
			}
			if math.Abs(entry-tt.entry) > 1e-9 || math.Abs(exit-tt.exit) > 1e-9 {
				t.Errorf("crossings = [%v, %v], want [%v, %v]", entry, exit, tt.entry, tt.exit)
			}
		})
	}
}

// TestSegmentDiskCrossingsAgainstSampling cross-checks the analytic
// crossings against dense sampling of random segments.
func TestSegmentDiskCrossingsAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		b := Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		c := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		r := rng.Float64() * 40
		entry, exit, ok := SegmentDiskCrossings(a, b, c, r)
		const steps = 400
		for s := 0; s <= steps; s++ {
			f := float64(s) / steps
			p := a.Add(b.Sub(a).Scale(f))
			inside := p.Dist(c) <= r
			predicted := ok && f >= entry && f <= exit
			// Allow disagreement within a hair of the boundary.
			if inside != predicted && math.Abs(p.Dist(c)-r) > 1e-6*(1+r) &&
				(!ok || (math.Abs(f-entry) > 1.0/steps && math.Abs(f-exit) > 1.0/steps)) {
				t.Fatalf("seg %v->%v disk(%v,%v): f=%v inside=%v predicted=%v (entry=%v exit=%v ok=%v)",
					a, b, c, r, f, inside, predicted, entry, exit, ok)
			}
		}
	}
}
