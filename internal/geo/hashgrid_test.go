package geo

import (
	"slices"
	"testing"
)

func TestHashGridValidation(t *testing.T) {
	if _, err := NewHashGrid(0); err == nil {
		t.Error("NewHashGrid(0) accepted")
	}
	if _, err := NewHashGrid(-5); err == nil {
		t.Error("NewHashGrid(-5) accepted")
	}
}

func TestHashGridKeyNegativeCoordinates(t *testing.T) {
	g, err := NewHashGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	// Cells must partition the plane: the cells just left of and just
	// right of the origin are distinct (truncation toward zero would fold
	// them together).
	if g.Key(Pt(-1, 0)) == g.Key(Pt(1, 0)) {
		t.Error("cells across x=0 folded together")
	}
	if got, want := g.Key(Pt(-1, -1)), (CellKey{X: -1, Y: -1}); got != want {
		t.Errorf("Key(-1,-1) = %+v, want %+v", got, want)
	}
	if got, want := g.Key(Pt(-10, 0)), (CellKey{X: -1, Y: 0}); got != want {
		t.Errorf("Key(-10,0) = %+v, want %+v (boundary belongs to the right cell)", got, want)
	}
}

func TestHashGridInsertRemoveMove(t *testing.T) {
	g, err := NewHashGrid(10)
	if err != nil {
		t.Fatal(err)
	}
	k1 := g.Insert(1, Pt(5, 5))
	k2 := g.Insert(2, Pt(5, 6)) // same cell
	if k1 != k2 {
		t.Fatalf("expected same cell, got %+v vs %+v", k1, k2)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}

	// Move within the cell is a no-op; across cells re-buckets.
	if k := g.Move(1, k1, Pt(6, 6)); k != k1 {
		t.Errorf("intra-cell move changed key to %+v", k)
	}
	k3 := g.Move(1, k1, Pt(25, 5))
	if k3 == k1 {
		t.Error("cross-cell move kept old key")
	}
	if g.Len() != 2 {
		t.Fatalf("Len after move = %d, want 2", g.Len())
	}

	g.Remove(2, k2)
	g.Remove(2, k2) // double remove is a no-op
	g.Remove(1, k3)
	if g.Len() != 0 {
		t.Fatalf("Len after removes = %d, want 0", g.Len())
	}
}

func TestHashGridNeighborhoodSuperset(t *testing.T) {
	g, err := NewHashGrid(50)
	if err != nil {
		t.Fatal(err)
	}
	// Ring of points at varying distances from the origin.
	pts := []Point{Pt(0, 0), Pt(30, 0), Pt(49, 49), Pt(120, 0), Pt(-60, -60), Pt(500, 500)}
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	got := g.AppendNeighborhood(nil, Pt(0, 0), 50)
	slices.Sort(got)
	// Everything within 50 m must be present (0, 1, 2); the far point
	// (500,500) must not be. Points in adjacent cells may appear — the
	// result is a superset and callers re-check exact distance.
	for _, want := range []int32{0, 1, 2} {
		if !slices.Contains(got, want) {
			t.Errorf("in-range id %d missing from neighborhood %v", want, got)
		}
	}
	if slices.Contains(got, 5) {
		t.Errorf("far id 5 present in neighborhood %v", got)
	}

	if res := g.AppendNeighborhood(nil, Pt(0, 0), -1); len(res) != 0 {
		t.Errorf("negative radius returned %v", res)
	}
}

func TestHashGridNeighborhoodDeterministicAndZeroAlloc(t *testing.T) {
	g, err := NewHashGrid(25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		g.Insert(int32(i), Pt(float64(i%20)*7, float64(i/20)*7))
	}
	a := g.AppendNeighborhood(nil, Pt(50, 30), 25)
	b := g.AppendNeighborhood(nil, Pt(50, 30), 25)
	if !slices.Equal(a, b) {
		t.Fatalf("neighborhood order not deterministic: %v vs %v", a, b)
	}

	buf := make([]int32, 0, 256)
	avg := testing.AllocsPerRun(100, func() {
		buf = g.AppendNeighborhood(buf[:0], Pt(50, 30), 25)
	})
	if avg != 0 {
		t.Errorf("AppendNeighborhood with capacity allocates %.2f/op, want 0", avg)
	}
}

// TestHashGridNeighborhoodRadiusLargerThanCell is the regression test for
// query radii exceeding the cell size: promotion-boundary queries use radii
// several times the broadcast cell, and every in-range item must still be
// returned (a fixed 3×3 scan would miss items two or more rings out).
func TestHashGridNeighborhoodRadiusLargerThanCell(t *testing.T) {
	const cell = 10.0
	g, err := NewHashGrid(cell)
	if err != nil {
		t.Fatal(err)
	}
	// A lattice spanning many cells in every direction, including negative
	// coordinates.
	var pts []Point
	id := int32(0)
	for x := -80.0; x <= 80; x += 8 {
		for y := -80.0; y <= 80; y += 8 {
			p := Pt(x, y)
			g.Insert(id, p)
			pts = append(pts, p)
			id++
		}
	}
	for _, radius := range []float64{cell * 3.5, cell * 5, cell * 7.2} {
		center := Pt(3, -4)
		got := g.AppendNeighborhood(nil, center, radius)
		present := make(map[int32]bool, len(got))
		for _, id := range got {
			present[id] = true
		}
		for i, p := range pts {
			if center.Dist(p) <= radius && !present[int32(i)] {
				t.Fatalf("radius %v: in-range id %d at %v missing (got %d ids)",
					radius, i, p, len(got))
			}
		}
	}
}
