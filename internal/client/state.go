package client

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

// Snapshot is the durable state of a phone between level-of-detail
// promotions: everything that must survive a demote/promote round trip.
// Transient radio state — the open scan window, a mid-flight handshake, a
// held association — is deliberately absent: demotion happens when the
// phone leaves every station's radio range, where a real phone's scan
// yields nothing and its association times out. What a phone carries across
// the city is its identity (MAC, PNL, behaviour flags), its accumulated
// Stats, its frame sequence counter, and the evil twins its canary probes
// unmasked.
type Snapshot struct {
	// Config is the phone's full configuration, including the current
	// (possibly rotated) MAC and the PNL.
	Config Config
	// Stats is the accumulated per-client accounting.
	Stats Stats
	// Seq is the 802.11 sequence counter, so frame numbering continues
	// instead of restarting (a restart would be a visible artefact in
	// captures and in sequence-continuity de-anonymisation scenarios).
	Seq uint16
	// Hostile carries the canary detector's unmasked evil twins; the phone
	// keeps ignoring them at the next site.
	Hostile map[ieee80211.MAC]bool
	// CurrentMAC is the over-the-air MAC at suspension time (zero in
	// snapshots predating MAC randomization, read back as Config.MAC).
	CurrentMAC ieee80211.MAC
	// Rotations is the rotation counter: the resumed phone's next rotation
	// continues the derived sequence exactly where it stopped.
	Rotations uint32
	// NextRotateAt is the RandomizeTimed deadline, in simulation time.
	NextRotateAt time.Duration
	// UsedMACs is every MAC the phone has appeared under, for ground-truth
	// accounting across demote/promote round trips.
	UsedMACs []ieee80211.MAC
}

// Suspend detaches the phone from the medium and returns the snapshot a
// later Resume restores. All pending events become no-ops, exactly as in
// Depart; the client itself is dead afterwards (state Departed) — the
// snapshot, not the object, is what lives on. Suspending an idle or
// already-departed phone is an error.
func (c *Client) Suspend() (Snapshot, error) {
	switch c.state {
	case StateIdle:
		return Snapshot{}, fmt.Errorf("client %v: Suspend before Start", c.Addr())
	case StateDeparted:
		return Snapshot{}, fmt.Errorf("client %v: Suspend after Depart", c.Addr())
	}
	snap := Snapshot{
		Config:       c.cfg,
		Stats:        c.Stats,
		Seq:          c.seq,
		Hostile:      c.hostile,
		CurrentMAC:   c.mac,
		Rotations:    c.rotations,
		NextRotateAt: c.nextRotateAt,
		UsedMACs:     append([]ieee80211.MAC(nil), c.usedMACs...),
	}
	c.state = StateDeparted
	c.scanEpoch++
	c.hsEpoch++
	c.medium.Detach(c.Addr())
	return snap, nil
}

// Resume rebuilds a phone from a Suspend snapshot and attaches it to the
// medium: identity, stats, sequence counter and hostile set continue where
// they left off, and the phone starts scanning after a uniform random
// fraction of its scan interval (drawn from rng — hand each pedestrian its
// own stream and resumes are independent of promotion order). A phone that
// was associated when suspended resumes scanning: its peer is out of range
// by construction. PreconnectedBSSID is ignored on resume for the same
// reason.
func Resume(engine *sim.Engine, medium *sim.Medium, rng *rand.Rand, snap Snapshot) (*Client, error) {
	cfg := snap.Config
	cfg.PreconnectedBSSID = ieee80211.MAC{}
	c, err := New(engine, medium, rng, cfg)
	if err != nil {
		return nil, err
	}
	c.Stats = snap.Stats
	c.seq = snap.Seq
	c.hostile = snap.Hostile
	if snap.CurrentMAC != (ieee80211.MAC{}) {
		c.mac = snap.CurrentMAC
	}
	c.rotations = snap.Rotations
	c.nextRotateAt = snap.NextRotateAt
	c.usedMACs = append([]ieee80211.MAC(nil), snap.UsedMACs...)
	if len(c.usedMACs) == 0 {
		c.usedMACs = append(c.usedMACs, c.mac)
	}
	if err := c.medium.Attach(c); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if c.cfg.Obs != nil && c.cfg.Obs.Trace != nil {
		c.trace = c.cfg.Obs.Trace
		c.tid = c.trace.Track("client " + c.cfg.MAC.String())
	}
	c.state = StateScanning
	first := time.Duration(rng.Int63n(int64(c.cfg.ScanInterval)))
	c.scheduleScan(first)
	return c, nil
}
