package client

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/pnl"
)

func TestSuspendResumeRoundTripLossless(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("client never connected; snapshot would be trivial")
	}

	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if snap.Seq == 0 {
		t.Error("snapshot lost the sequence counter")
	}
	if !snap.Stats.Connected || snap.Stats.Scans == 0 {
		t.Errorf("snapshot stats incomplete: %+v", snap.Stats)
	}
	// The suspended object is dead: no further suspends, no frames.
	if _, err := c.Suspend(); err == nil {
		t.Error("second Suspend succeeded")
	}
	if fx.medium.Attached(c.Addr()) {
		t.Error("suspended client still attached to the medium")
	}

	// An immediate Resume→Suspend round trip preserves the durable state
	// bit-for-bit (the resumed client's first scan is still pending, so
	// nothing has been consumed in between).
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	snap2, err := c2.Suspend()
	if err != nil {
		t.Fatalf("Suspend after Resume: %v", err)
	}
	snap.Config.PreconnectedBSSID = ieee80211.MAC{} // cleared by design on resume
	if !reflect.DeepEqual(snap, snap2) {
		t.Errorf("round trip lost state:\n first %+v\nsecond %+v", snap, snap2)
	}
}

// TestSuspendResumeCarriesRotationState is the randomization round trip: a
// per-scan rotating phone suspends mid-sequence and resumes with the same
// over-the-air MAC, the same rotation counter, and the full used-MAC
// history — then continues the derived sequence exactly where it stopped
// instead of restarting (a restart would replay MACs and corrupt the
// linker's ground truth).
func TestSuspendResumeCarriesRotationState(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{
		PNL:           pnl.List{{SSID: "Home"}},
		Randomization: RandomizePerScan,
	})
	fx.engine.Run(30 * time.Second)

	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if snap.Rotations == 0 {
		t.Fatal("per-scan phone never rotated in 30s of 5s scans")
	}
	if snap.CurrentMAC == snap.Config.MAC {
		t.Error("snapshot's over-the-air MAC is still the identity")
	}
	if snap.CurrentMAC[0] != ieee80211.RandomizedMACPrefix {
		t.Errorf("rotated MAC %v outside the randomized block", snap.CurrentMAC)
	}
	if len(snap.UsedMACs) != int(snap.Rotations)+1 {
		t.Errorf("UsedMACs has %d entries for %d rotations (want identity + one per rotation)",
			len(snap.UsedMACs), snap.Rotations)
	}
	if snap.UsedMACs[0] != snap.Config.MAC {
		t.Errorf("UsedMACs[0] = %v, want the identity %v", snap.UsedMACs[0], snap.Config.MAC)
	}

	// Immediate round trip: durable rotation state is bit-for-bit stable.
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if c2.Addr() != snap.CurrentMAC {
		t.Errorf("resumed on %v, want the suspended MAC %v", c2.Addr(), snap.CurrentMAC)
	}
	if c2.TrueAddr() != snap.Config.MAC {
		t.Errorf("TrueAddr = %v, want identity %v", c2.TrueAddr(), snap.Config.MAC)
	}
	snap2, err := c2.Suspend()
	if err != nil {
		t.Fatalf("Suspend after Resume: %v", err)
	}
	snap.Config.PreconnectedBSSID = ieee80211.MAC{} // cleared by design on resume
	if !reflect.DeepEqual(snap, snap2) {
		t.Errorf("round trip lost rotation state:\n first %+v\nsecond %+v", snap, snap2)
	}

	// A resumed phone continues the derived sequence: its next rotation is
	// rotation number snap.Rotations, not a replay of an earlier MAC.
	c3, err := Resume(fx.engine, fx.medium, fx.rng, snap2)
	if err != nil {
		t.Fatalf("second Resume: %v", err)
	}
	fx.engine.Run(60 * time.Second)
	want := ieee80211.DerivedRandomMAC(snap.Config.MAC, snap.Rotations)
	found := false
	for _, m := range c3.UsedMACs() {
		if m == want {
			found = true
		}
	}
	if !found {
		t.Errorf("resumed phone never rotated to %v (rotation %d); used %v",
			want, snap.Rotations, c3.UsedMACs())
	}
	seen := make(map[ieee80211.MAC]bool)
	for _, m := range c3.UsedMACs() {
		if seen[m] {
			t.Errorf("MAC %v replayed after resume", m)
		}
		seen[m] = true
	}
}

func TestResumedClientContinuesAtNewSite(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	scans, seq := snap.Stats.Scans, snap.Seq

	// Resume at a second site after a gap: scanning restarts, the sequence
	// counter continues rather than restarting, and the phone can connect
	// again.
	fx.engine.Run(10 * time.Minute)
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	c2.SetPos(geo.Pt(10, 0))
	fx.engine.Run(11 * time.Minute)
	if c2.Stats.Scans <= scans {
		t.Errorf("resumed client never scanned: %d then %d", scans, c2.Stats.Scans)
	}
	if c2.seq <= seq {
		t.Errorf("sequence counter restarted: %d then %d", seq, c2.seq)
	}
	if !c2.Stats.Connected {
		t.Error("resumed client failed to reconnect at the new site")
	}
}

func TestResumeIgnoresStaleAssociation(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if c.State() != StateConnected {
		t.Fatalf("client in state %v, want connected", c.State())
	}
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// The old association is gone: the phone resumes scanning, not connected
	// to a peer that is out of range by construction.
	if c2.State() != StateScanning {
		t.Errorf("resumed client in state %v, want scanning", c2.State())
	}
}

func TestSuspendBeforeStartFails(t *testing.T) {
	fx := newFixture(t)
	c, err := New(fx.engine, fx.medium, fx.rng, Config{
		MAC: ieee80211.RandomMAC(fx.rng), ScanInterval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Suspend(); err == nil {
		t.Error("Suspend before Start succeeded")
	}
}

func TestResumePreservesHostileSet(t *testing.T) {
	fx := newFixture(t)
	evil := ieee80211.MAC{0x0e, 1, 2, 3, 4, 5}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Home"}}})
	c.hostile = map[ieee80211.MAC]bool{evil: true}
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	c2, err := Resume(fx.engine, fx.medium, rand.New(rand.NewSource(9)), snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !c2.hostile[evil] {
		t.Error("resumed client forgot an unmasked evil twin")
	}
}
