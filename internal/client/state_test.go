package client

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/pnl"
)

func TestSuspendResumeRoundTripLossless(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("client never connected; snapshot would be trivial")
	}

	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if snap.Seq == 0 {
		t.Error("snapshot lost the sequence counter")
	}
	if !snap.Stats.Connected || snap.Stats.Scans == 0 {
		t.Errorf("snapshot stats incomplete: %+v", snap.Stats)
	}
	// The suspended object is dead: no further suspends, no frames.
	if _, err := c.Suspend(); err == nil {
		t.Error("second Suspend succeeded")
	}
	if fx.medium.Attached(c.Addr()) {
		t.Error("suspended client still attached to the medium")
	}

	// An immediate Resume→Suspend round trip preserves the durable state
	// bit-for-bit (the resumed client's first scan is still pending, so
	// nothing has been consumed in between).
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	snap2, err := c2.Suspend()
	if err != nil {
		t.Fatalf("Suspend after Resume: %v", err)
	}
	snap.Config.PreconnectedBSSID = ieee80211.MAC{} // cleared by design on resume
	if !reflect.DeepEqual(snap, snap2) {
		t.Errorf("round trip lost state:\n first %+v\nsecond %+v", snap, snap2)
	}
}

func TestResumedClientContinuesAtNewSite(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	scans, seq := snap.Stats.Scans, snap.Seq

	// Resume at a second site after a gap: scanning restarts, the sequence
	// counter continues rather than restarting, and the phone can connect
	// again.
	fx.engine.Run(10 * time.Minute)
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	c2.SetPos(geo.Pt(10, 0))
	fx.engine.Run(11 * time.Minute)
	if c2.Stats.Scans <= scans {
		t.Errorf("resumed client never scanned: %d then %d", scans, c2.Stats.Scans)
	}
	if c2.seq <= seq {
		t.Errorf("sequence counter restarted: %d then %d", seq, c2.seq)
	}
	if !c2.Stats.Connected {
		t.Error("resumed client failed to reconnect at the new site")
	}
}

func TestResumeIgnoresStaleAssociation(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if c.State() != StateConnected {
		t.Fatalf("client in state %v, want connected", c.State())
	}
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	c2, err := Resume(fx.engine, fx.medium, fx.rng, snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// The old association is gone: the phone resumes scanning, not connected
	// to a peer that is out of range by construction.
	if c2.State() != StateScanning {
		t.Errorf("resumed client in state %v, want scanning", c2.State())
	}
}

func TestSuspendBeforeStartFails(t *testing.T) {
	fx := newFixture(t)
	c, err := New(fx.engine, fx.medium, fx.rng, Config{
		MAC: ieee80211.RandomMAC(fx.rng), ScanInterval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Suspend(); err == nil {
		t.Error("Suspend before Start succeeded")
	}
}

func TestResumePreservesHostileSet(t *testing.T) {
	fx := newFixture(t)
	evil := ieee80211.MAC{0x0e, 1, 2, 3, 4, 5}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Home"}}})
	c.hostile = map[ieee80211.MAC]bool{evil: true}
	snap, err := c.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	c2, err := Resume(fx.engine, fx.medium, rand.New(rand.NewSource(9)), snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !c2.hostile[evil] {
		t.Error("resumed client forgot an unmasked evil twin")
	}
}
