// Package client models smartphones: the scan cycle (broadcast and directed
// probe requests), the probe-response listening window with its ~40-response
// budget, the open-network auto-join handshake (authentication followed by
// association), connected-state probe suppression, and reaction to
// deauthentication.
//
// The model matches the behaviour the paper's attack exploits:
//
//   - ~85 % of phones send only wildcard (broadcast) probes; the unsafe
//     minority also direct-probes every non-hidden PNL entry.
//   - After a probe, a phone waits 10 ms for a first response and keeps
//     listening at most 10 ms after one arrives, which caps the responses
//     it can hear from one AP at about 40 per scan.
//   - A probe response advertising an open network whose SSID is an open
//     entry in the phone's PNL triggers automatic association.
//   - Once associated, a phone stops probing until it is deauthenticated.
package client

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
)

// State is the client's connection state.
type State int

// Client states.
const (
	// StateIdle means created but not yet started.
	StateIdle State = iota + 1
	// StateScanning means probing periodically.
	StateScanning
	// StateAssociating means mid-handshake with a responder.
	StateAssociating
	// StateConnected means associated (to the attacker or a genuine AP).
	StateConnected
	// StateDeparted means the phone left the area and was detached.
	StateDeparted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateScanning:
		return "scanning"
	case StateAssociating:
		return "associating"
	case StateConnected:
		return "connected"
	case StateDeparted:
		return "departed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config describes one phone.
type Config struct {
	// MAC is the phone's stable identity. Without randomization it is also
	// the over-the-air source MAC; under a RandomizationPolicy it seeds the
	// deterministic rotation sequence and never appears on the air after
	// the first rotation.
	MAC ieee80211.MAC
	// PNL is the phone's preferred network list.
	PNL pnl.List
	// DirectProber marks the unsafe minority that discloses PNL entries
	// in directed probes.
	DirectProber bool
	// ScanInterval is the gap between scan cycles while disconnected.
	// The first scan starts after a uniform random fraction of it.
	ScanInterval time.Duration
	// PreconnectedBSSID, when non-zero, starts the phone associated to a
	// genuine AP with that BSSID: it will not probe until it receives a
	// deauthentication from that BSSID (the §V-B scenario).
	PreconnectedBSSID ieee80211.MAC
	// RescanAfterDeauth is the delay before the first scan after losing
	// an association.
	RescanAfterDeauth time.Duration
	// CanaryProbing arms the client-side evil-twin countermeasure: every
	// scan also directs a probe at a random nonexistent SSID, and any
	// responder that mimics it is marked hostile and ignored from then
	// on. This is the classic KARMA detector; see internal/detect.
	CanaryProbing bool
	// RandomizeMAC is the legacy shorthand for Randomization ==
	// RandomizePerScan; it defeats the attacker's per-client untried
	// rotation: every scan looks like a brand-new client, so the attacker
	// resends its head batch instead of progressing through the database.
	// Ignored when Randomization is set explicitly.
	RandomizeMAC bool
	// Randomization selects when the over-the-air MAC rotates; see
	// RandomizationPolicy. Rotated MACs are derived from the identity MAC
	// by counter (ieee80211.DerivedRandomMAC), so rotation consumes no RNG
	// and a suspended phone resumes its sequence exactly.
	Randomization RandomizationPolicy
	// RandomizeEvery is the rotation period for RandomizeTimed; zero means
	// DefaultRandomizeEvery.
	RandomizeEvery time.Duration
	// Fingerprint is the condensed IE fingerprint stamped on every probe
	// request this phone sends (zero = indistinct, nothing on the wire).
	// It survives MAC rotation, which is exactly what fingerprint-based
	// re-linking exploits.
	Fingerprint uint32
	// ScanChannels is the channel sequence visited per scan; nil selects
	// ieee80211.DefaultScanChannels (1, 6, 11). Each channel gets its own
	// probe and listening window, as real scanning firmware does.
	ScanChannels []uint8
	// Obs, when non-nil with a Trace, renders the phone's scan cycles as
	// spans and its association as an instant on a per-client track.
	Obs *obs.Runtime
}

// DefaultScanInterval is a typical disconnected-phone scan period (modern
// OSes scan roughly once a minute with the screen off).
const DefaultScanInterval = 60 * time.Second

// defaultRescanAfterDeauth is used when Config.RescanAfterDeauth is zero.
const defaultRescanAfterDeauth = 2 * time.Second

// handshakeTimeout bounds each step of the auth/assoc exchange.
const handshakeTimeout = 100 * time.Millisecond

// Client is one simulated phone attached to the medium.
type Client struct {
	cfg    Config
	engine *sim.Engine
	medium *sim.Medium
	rng    *rand.Rand

	state State
	pos   geo.Point
	seq   uint16
	arena ieee80211.FrameArena

	// mac is the current over-the-air source MAC; it starts as the
	// identity MAC (cfg.MAC) and moves along the derived rotation sequence
	// under a randomization policy.
	mac          ieee80211.MAC
	rotations    uint32
	nextRotateAt time.Duration
	usedMACs     []ieee80211.MAC

	// curChannel is the tuned channel (0 = agnostic, e.g. while
	// associated to a channel-agnostic test responder).
	curChannel  uint8
	scanChanIdx int

	// scanEpoch invalidates stale window/timeout events.
	scanEpoch int
	// window state for the current scan.
	windowOpen     bool
	firstRespAt    time.Duration
	responses      []*ieee80211.Frame
	responsesHeard int

	// association state.
	peer     ieee80211.MAC
	joinSSID string
	hsEpoch  int
	hsStep   int

	// countermeasure state.
	canarySSID string
	hostile    map[ieee80211.MAC]bool

	// observability state: the span track and the running scan's start.
	trace     *obs.Trace
	tid       int
	scanStart time.Duration

	// Stats exposes what the experiment harness needs.
	Stats Stats
}

// Stats are the per-client counters the experiments aggregate.
type Stats struct {
	// Scans counts full scan cycles (all channels).
	Scans int
	// BroadcastProbes and DirectProbes count probe requests sent (one
	// broadcast probe per channel per scan).
	BroadcastProbes int
	DirectProbes    int
	// ResponsesHeard counts probe responses accepted within windows.
	ResponsesHeard int
	// Connected reports whether the phone ever associated, to whom, via
	// which SSID, and when.
	Connected    bool
	ConnectedTo  ieee80211.MAC
	ConnectedVia string
	ConnectedAt  time.Duration
	// Deauths counts deauthentications received while associated.
	Deauths int
	// CanaryDetections counts evil twins unmasked by canary probes.
	CanaryDetections int
}

// New builds a client. Start must be called to attach it to the medium.
func New(engine *sim.Engine, medium *sim.Medium, rng *rand.Rand, cfg Config) (*Client, error) {
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = DefaultScanInterval
	}
	if cfg.RescanAfterDeauth <= 0 {
		cfg.RescanAfterDeauth = defaultRescanAfterDeauth
	}
	if cfg.MAC == (ieee80211.MAC{}) {
		return nil, fmt.Errorf("client: zero MAC")
	}
	if cfg.Randomization == RandomizeNone && cfg.RandomizeMAC {
		cfg.Randomization = RandomizePerScan
	}
	if cfg.Randomization == RandomizeTimed && cfg.RandomizeEvery <= 0 {
		cfg.RandomizeEvery = DefaultRandomizeEvery
	}
	return &Client{
		cfg:    cfg,
		engine: engine,
		medium: medium,
		rng:    rng,
		state:  StateIdle,
		mac:    cfg.MAC,
	}, nil
}

// Addr implements sim.Station with the current over-the-air MAC.
func (c *Client) Addr() ieee80211.MAC { return c.mac }

// TrueAddr returns the phone's stable identity MAC, which never changes
// across rotations. Ground-truth accounting keys on it.
func (c *Client) TrueAddr() ieee80211.MAC { return c.cfg.MAC }

// UsedMACs returns every MAC the phone has appeared under, in first-use
// order: the identity MAC (if it ever went on the air) followed by each
// rotation. The scenario runner builds the linker ground truth from it.
func (c *Client) UsedMACs() []ieee80211.MAC { return c.usedMACs }

// Rotations returns how many MAC rotations the phone has performed.
func (c *Client) Rotations() uint32 { return c.rotations }

// Pos implements sim.Station.
func (c *Client) Pos() geo.Point { return c.pos }

// SetPos moves the phone; mobility models call this. The medium's spatial
// delivery index is notified so broadcasts keep finding the phone (a no-op
// while the phone is not attached).
func (c *Client) SetPos(p geo.Point) {
	c.pos = p
	c.medium.Moved(c.Addr())
}

// CurrentChannel implements sim.ChannelTuner.
func (c *Client) CurrentChannel() uint8 { return c.curChannel }

// channels returns the configured scan sequence.
func (c *Client) channels() []uint8 {
	if len(c.cfg.ScanChannels) > 0 {
		return c.cfg.ScanChannels
	}
	return ieee80211.DefaultScanChannels
}

// State returns the current connection state.
func (c *Client) State() State { return c.state }

// DirectProber reports whether this phone discloses PNL entries.
func (c *Client) DirectProber() bool { return c.cfg.DirectProber }

// TraceTID returns the client's span-trace track id, 0 when untraced. The
// scenario runner uses it to put lifecycle spans on the same track as the
// client's own scan spans.
func (c *Client) TraceTID() int { return c.tid }

// PNL returns the phone's preferred network list.
func (c *Client) PNL() pnl.List { return c.cfg.PNL }

// Start attaches the phone to the medium and schedules its first scan.
func (c *Client) Start() error {
	if c.state != StateIdle {
		return fmt.Errorf("client %v: Start in state %v", c.Addr(), c.state)
	}
	if err := c.medium.Attach(c); err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if c.cfg.Obs != nil && c.cfg.Obs.Trace != nil {
		c.trace = c.cfg.Obs.Trace
		c.tid = c.trace.Track("client " + c.cfg.MAC.String())
	}
	c.usedMACs = append(c.usedMACs, c.mac)
	if c.cfg.PreconnectedBSSID != (ieee80211.MAC{}) {
		c.state = StateConnected
		c.peer = c.cfg.PreconnectedBSSID
		return nil
	}
	c.state = StateScanning
	first := time.Duration(c.rng.Int63n(int64(c.cfg.ScanInterval)))
	c.scheduleScan(first)
	return nil
}

// Depart removes the phone from the medium; all pending events become
// no-ops.
func (c *Client) Depart() {
	if c.state == StateDeparted {
		return
	}
	c.state = StateDeparted
	c.scanEpoch++
	c.hsEpoch++
	c.medium.Detach(c.Addr())
}

// scheduleScan queues a scan after the given delay. Stale events cancel
// themselves: every executed scan bumps scanEpoch, so when both a periodic
// tick and a fast post-deauth rescan are pending, whichever fires first
// performs the scan and the other becomes a no-op.
func (c *Client) scheduleScan(after time.Duration) {
	epoch := c.scanEpoch
	c.engine.Schedule(after, func() {
		if epoch != c.scanEpoch || c.state != StateScanning {
			return
		}
		c.scan()
	})
}

// scan runs one probe cycle: every channel in the scan sequence gets a
// probe burst and its own listening window; the collected responses are
// evaluated once the last channel's window closes, the way real scanning
// firmware assembles scan results before network selection.
func (c *Client) scan() {
	switch c.cfg.Randomization {
	case RandomizePerScan:
		c.rotateMAC()
	case RandomizeTimed:
		if now := c.engine.Now(); now >= c.nextRotateAt {
			c.rotateMAC()
			c.nextRotateAt = now + c.cfg.RandomizeEvery
		}
	}
	if c.state == StateDeparted {
		return // rotation collided twice; the phone fell off the air
	}
	c.scanEpoch++
	c.responses = c.responses[:0]
	c.responsesHeard = 0
	c.scanChanIdx = 0
	c.Stats.Scans++
	c.scanStart = c.engine.Now()
	if c.cfg.CanaryProbing {
		// One canary SSID per scan, probed on every channel; a mimicking
		// attacker on any channel unmasks itself before its lure batch
		// is evaluated.
		c.canarySSID = fmt.Sprintf("canary-%08x", c.rng.Uint32())
	}
	c.scheduleNextScanTick()
	c.scanChannel()
}

// scanChannel probes and listens on the current channel of the sequence.
func (c *Client) scanChannel() {
	if c.cfg.Randomization == RandomizePerBurst {
		c.rotateMAC()
		if c.state == StateDeparted {
			return
		}
	}
	epoch := c.scanEpoch
	c.curChannel = c.channels()[c.scanChanIdx]
	c.windowOpen = true
	c.firstRespAt = -1

	if c.cfg.CanaryProbing {
		c.medium.Transmit(c.frame(ieee80211.Frame{
			Subtype: ieee80211.SubtypeProbeRequest,
			DA:      ieee80211.BroadcastMAC,
			BSSID:   ieee80211.BroadcastMAC,
			SSID:    c.canarySSID,
		}))
	}
	if c.cfg.DirectProber {
		for _, ssid := range c.cfg.PNL.Probeable() {
			c.medium.Transmit(c.frame(ieee80211.Frame{
				Subtype: ieee80211.SubtypeProbeRequest,
				DA:      ieee80211.BroadcastMAC,
				BSSID:   ieee80211.BroadcastMAC,
				SSID:    ssid,
			}))
			c.Stats.DirectProbes++
		}
	}
	// The broadcast probe goes out last; its completion time anchors the
	// listening window.
	lastDone := c.medium.Transmit(c.frame(ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC,
		BSSID:   ieee80211.BroadcastMAC,
	}))
	c.Stats.BroadcastProbes++

	// The channel dwell ends MinChannelTime after the last probe finished
	// unless a response arrives first; then it ends MaxChannelTime after
	// the first response.
	c.engine.At(lastDone+ieee80211.MinChannelTime, func() {
		if epoch != c.scanEpoch || !c.windowOpen {
			return
		}
		if c.firstRespAt < 0 {
			c.advanceChannel(epoch)
		}
		// Otherwise the extension event closes this channel's window.
	})
}

// advanceChannel ends the current channel's window and either hops to the
// next channel or, after the last one, evaluates the scan results.
func (c *Client) advanceChannel(epoch int) {
	if epoch != c.scanEpoch || c.state != StateScanning {
		return
	}
	c.windowOpen = false
	c.scanChanIdx++
	if c.scanChanIdx < len(c.channels()) {
		c.scanChannel()
		return
	}
	c.evaluateScan()
}

func (c *Client) scheduleNextScanTick() {
	// Jittered periodic scan: ±20 % around the configured interval.
	jitter := 0.8 + 0.4*c.rng.Float64()
	c.scheduleScan(time.Duration(float64(c.cfg.ScanInterval) * jitter))
}

// rotateMAC re-keys the client under the next MAC of its derived rotation
// sequence, the privacy behaviour of modern unassociated phones. The
// derivation consumes no RNG, so enabling a policy perturbs nothing else in
// a seeded run. On the (astronomically unlikely) collision with an existing
// station, the old MAC is kept for this burst.
func (c *Client) rotateMAC() {
	fresh := ieee80211.DerivedRandomMAC(c.cfg.MAC, c.rotations)
	c.rotations++
	old := c.mac
	c.medium.Detach(old)
	c.mac = fresh
	if err := c.medium.Attach(c); err != nil {
		c.mac = old
		// Re-attach under the old identity; this cannot collide because
		// we just vacated it.
		if err := c.medium.Attach(c); err != nil {
			// The medium rejected both identities: the client is
			// effectively off the air. Leave it detached.
			c.state = StateDeparted
		}
		return
	}
	c.usedMACs = append(c.usedMACs, fresh)
}

// frame stamps addressing, sequence numbers and the probe fingerprint on a
// template. The sequence counter advances per frame regardless of MAC
// rotations — the continuity the sequence-number linker exploits.
func (c *Client) frame(f ieee80211.Frame) *ieee80211.Frame {
	f.SA = c.mac
	c.seq = (c.seq + 1) & 0x0fff
	f.Seq = c.seq
	if f.Subtype == ieee80211.SubtypeProbeRequest {
		f.Fingerprint = c.cfg.Fingerprint
	}
	return c.arena.New(f)
}

// Receive implements sim.Station.
func (c *Client) Receive(f *ieee80211.Frame) {
	switch f.Subtype {
	case ieee80211.SubtypeProbeResponse:
		c.onProbeResponse(f)
	case ieee80211.SubtypeBeacon:
		// Passive scanning: beacons heard during a scan window enter the
		// scan results exactly like probe responses — this is what the
		// wifiphisher-style "known beacons" attack relies on.
		c.onProbeResponse(f)
	case ieee80211.SubtypeAuth:
		c.onAuth(f)
	case ieee80211.SubtypeAssocResponse:
		c.onAssocResponse(f)
	case ieee80211.SubtypeDeauth:
		c.onDeauth(f)
	}
}

func (c *Client) onProbeResponse(f *ieee80211.Frame) {
	if f.DA != c.mac && !f.DA.IsBroadcast() {
		return
	}
	if c.canarySSID != "" && f.SSID == c.canarySSID && !c.hostile[f.SA] {
		// Nobody legitimate knows this SSID: the responder is an evil
		// twin. Ignore it for the rest of this client's stay.
		if c.hostile == nil {
			c.hostile = make(map[ieee80211.MAC]bool)
		}
		c.hostile[f.SA] = true
		c.Stats.CanaryDetections++
		return
	}
	if c.hostile[f.SA] {
		return
	}
	if !c.windowOpen || c.state != StateScanning {
		return
	}
	if c.responsesHeard >= ieee80211.MaxResponsesPerScan {
		return // listening budget exhausted for this scan
	}
	c.responsesHeard++
	c.Stats.ResponsesHeard++
	if c.firstRespAt < 0 {
		c.firstRespAt = c.engine.Now()
		epoch := c.scanEpoch
		idx := c.scanChanIdx
		c.engine.Schedule(ieee80211.MaxChannelTime, func() {
			if epoch == c.scanEpoch && idx == c.scanChanIdx && c.windowOpen {
				c.advanceChannel(epoch)
			}
		})
	}
	c.responses = append(c.responses, f)
}

// evaluateScan inspects every response collected across the scan's
// channels and begins association with the first one matching an open PNL
// entry.
func (c *Client) evaluateScan() {
	c.windowOpen = false
	if c.trace != nil {
		c.trace.Span("scan", "scan", c.tid, c.scanStart, c.engine.Now(),
			map[string]any{"responses": c.responsesHeard})
	}
	for _, f := range c.responses {
		if c.hostile[f.SA] {
			// Unmasked after this response was buffered.
			continue
		}
		if f.Capability.Privacy() {
			// The twin claims an encrypted network; auto-join would
			// need credentials the attacker cannot complete.
			continue
		}
		if c.cfg.PNL.OpenSSID(f.SSID) {
			if f.Channel != 0 {
				c.curChannel = f.Channel
			}
			c.associate(f.SA, f.SSID)
			return
		}
	}
}

// associate starts the auth/assoc handshake with peer for ssid, tuning to
// the responder's channel as a real client does before authenticating.
func (c *Client) associate(peer ieee80211.MAC, ssid string) {
	c.state = StateAssociating
	c.peer = peer
	c.joinSSID = ssid
	c.hsEpoch++
	c.hsStep = 1
	c.medium.Transmit(c.frame(ieee80211.Frame{
		Subtype:       ieee80211.SubtypeAuth,
		DA:            peer,
		BSSID:         peer,
		AuthAlgorithm: ieee80211.AuthOpenSystem,
		AuthSeq:       1,
	}))
	c.armHandshakeTimeout()
}

func (c *Client) armHandshakeTimeout() {
	epoch, step := c.hsEpoch, c.hsStep
	c.engine.Schedule(handshakeTimeout, func() {
		if c.hsEpoch == epoch && c.hsStep == step && c.state == StateAssociating {
			// Handshake stalled; resume scanning.
			c.state = StateScanning
			c.scheduleScan(c.cfg.RescanAfterDeauth)
		}
	})
}

func (c *Client) onAuth(f *ieee80211.Frame) {
	if c.state != StateAssociating || f.SA != c.peer || c.hsStep != 1 {
		return
	}
	if f.Status != ieee80211.StatusSuccess || f.AuthSeq != 2 {
		c.state = StateScanning
		c.scheduleScan(c.cfg.RescanAfterDeauth)
		return
	}
	c.hsStep = 2
	c.medium.Transmit(c.frame(ieee80211.Frame{
		Subtype:    ieee80211.SubtypeAssocRequest,
		DA:         c.peer,
		BSSID:      c.peer,
		SSID:       c.joinSSID,
		Capability: ieee80211.CapESS,
	}))
	c.armHandshakeTimeout()
}

func (c *Client) onAssocResponse(f *ieee80211.Frame) {
	if c.state != StateAssociating || f.SA != c.peer || c.hsStep != 2 {
		return
	}
	if f.Status != ieee80211.StatusSuccess {
		c.state = StateScanning
		c.scheduleScan(c.cfg.RescanAfterDeauth)
		return
	}
	c.hsStep = 3
	c.state = StateConnected
	c.Stats.Connected = true
	c.Stats.ConnectedTo = c.peer
	c.Stats.ConnectedVia = c.joinSSID
	c.Stats.ConnectedAt = c.engine.Now()
	if c.trace != nil {
		c.trace.Instant("client", "associated", c.tid, c.engine.Now(),
			map[string]any{"peer": c.peer.String(), "ssid": c.joinSSID})
	}
}

func (c *Client) onDeauth(f *ieee80211.Frame) {
	if c.state != StateConnected {
		return
	}
	if f.SA != c.peer && f.BSSID != c.peer {
		return
	}
	if f.DA != c.mac && !f.DA.IsBroadcast() {
		return
	}
	c.Stats.Deauths++
	c.state = StateScanning
	c.peer = ieee80211.MAC{}
	c.hsEpoch++
	c.scheduleScan(c.cfg.RescanAfterDeauth)
}
