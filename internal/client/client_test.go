package client

import (
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
)

// responder is a minimal evil-twin stand-in: it answers broadcast probes
// with a fixed SSID batch, mirrors directed probes when configured, and
// completes handshakes.
type responder struct {
	addr   ieee80211.MAC
	pos    geo.Point
	engine *sim.Engine
	medium *sim.Medium

	replySSIDs  []string
	respChannel uint8 // DS channel advertised in responses (0 → 6)
	onProbe     func(sa ieee80211.MAC)
	mirror      bool // respond to directed probes with the probed SSID
	privacy     bool // set the privacy bit in responses
	refuseAuth  bool
	refuseAssoc bool
	silent      bool

	directProbes    int
	broadcastProbes int
	associations    int
}

func (r *responder) Addr() ieee80211.MAC { return r.addr }
func (r *responder) Pos() geo.Point      { return r.pos }

func (r *responder) Receive(f *ieee80211.Frame) {
	caps := ieee80211.CapESS
	if r.privacy {
		caps |= ieee80211.CapPrivacy
	}
	ch := r.respChannel
	if ch == 0 {
		ch = 6
	}
	switch f.Subtype {
	case ieee80211.SubtypeProbeRequest:
		if r.onProbe != nil {
			r.onProbe(f.SA)
		}
		if f.IsDirectedProbe() {
			r.directProbes++
			if r.mirror && !r.silent {
				r.medium.Transmit(&ieee80211.Frame{
					Subtype: ieee80211.SubtypeProbeResponse,
					DA:      f.SA, SA: r.addr, BSSID: r.addr,
					SSID: f.SSID, Capability: caps, Channel: ch,
				})
			}
			return
		}
		r.broadcastProbes++
		if r.silent {
			return
		}
		for _, ssid := range r.replySSIDs {
			r.medium.Transmit(&ieee80211.Frame{
				Subtype: ieee80211.SubtypeProbeResponse,
				DA:      f.SA, SA: r.addr, BSSID: r.addr,
				SSID: ssid, Capability: caps, Channel: ch,
			})
		}
	case ieee80211.SubtypeAuth:
		if r.refuseAuth {
			return
		}
		r.medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeAuth,
			DA:      f.SA, SA: r.addr, BSSID: r.addr,
			AuthAlgorithm: ieee80211.AuthOpenSystem, AuthSeq: 2,
			Status: ieee80211.StatusSuccess,
		})
	case ieee80211.SubtypeAssocRequest:
		if r.refuseAssoc {
			return
		}
		r.associations++
		r.medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeAssocResponse,
			DA:      f.SA, SA: r.addr, BSSID: r.addr,
			Capability: caps, Status: ieee80211.StatusSuccess, AssociationID: 1,
		})
	}
}

type fixture struct {
	engine *sim.Engine
	medium *sim.Medium
	resp   *responder
	rng    *rand.Rand
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := sim.NewEngine()
	m := sim.NewMedium(e, 50)
	r := &responder{
		addr:   ieee80211.MAC{0x0a, 0, 0, 0, 0, 1},
		pos:    geo.Pt(0, 0),
		engine: e,
		medium: m,
	}
	if err := m.Attach(r); err != nil {
		t.Fatal(err)
	}
	return &fixture{engine: e, medium: m, resp: r, rng: rand.New(rand.NewSource(1))}
}

func (fx *fixture) newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.MAC == (ieee80211.MAC{}) {
		cfg.MAC = ieee80211.RandomMAC(fx.rng)
	}
	if cfg.ScanInterval == 0 {
		cfg.ScanInterval = 5 * time.Second
	}
	c, err := New(fx.engine, fx.medium, fx.rng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.SetPos(geo.Pt(5, 0))
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	fx := newFixture(t)
	if _, err := New(fx.engine, fx.medium, fx.rng, Config{}); err == nil {
		t.Error("zero MAC accepted")
	}
}

func TestStartTwiceFails(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{})
	if err := c.Start(); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestBroadcastOnlyClientProbes(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Home"}}})
	fx.engine.Run(30 * time.Second)
	if c.Stats.BroadcastProbes == 0 {
		t.Error("no broadcast probes sent")
	}
	if c.Stats.DirectProbes != 0 {
		t.Errorf("safe client sent %d direct probes", c.Stats.DirectProbes)
	}
	if fx.resp.broadcastProbes != c.Stats.BroadcastProbes {
		t.Errorf("responder heard %d, client sent %d", fx.resp.broadcastProbes, c.Stats.BroadcastProbes)
	}
}

func TestDirectProberDisclosesVisibleEntries(t *testing.T) {
	fx := newFixture(t)
	list := pnl.List{
		{SSID: "Home"},
		{SSID: "Cafe", Open: true},
		{SSID: "PCCW1x", Open: true, Hidden: true},
	}
	c := fx.newClient(t, Config{PNL: list, DirectProber: true})
	fx.engine.Run(6 * time.Second)
	if c.Stats.DirectProbes == 0 {
		t.Fatal("no direct probes sent")
	}
	// 2 visible entries, probed once per channel visit.
	if c.Stats.DirectProbes != 2*c.Stats.BroadcastProbes {
		t.Errorf("direct probes = %d, want %d (2 per channel visit)",
			c.Stats.DirectProbes, 2*c.Stats.BroadcastProbes)
	}
	if c.Stats.BroadcastProbes != 3*c.Stats.Scans {
		t.Errorf("broadcast probes = %d over %d scans, want one per channel (3)",
			c.Stats.BroadcastProbes, c.Stats.Scans)
	}
}

func TestClientConnectsViaBroadcastResponse(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"NotInPNL", "Cafe Free WiFi"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe Free WiFi", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("client did not connect")
	}
	if c.Stats.ConnectedVia != "Cafe Free WiFi" {
		t.Errorf("connected via %q", c.Stats.ConnectedVia)
	}
	if c.Stats.ConnectedTo != fx.resp.addr {
		t.Errorf("connected to %v", c.Stats.ConnectedTo)
	}
	if c.State() != StateConnected {
		t.Errorf("state = %v", c.State())
	}
	if fx.resp.associations != 1 {
		t.Errorf("responder saw %d associations", fx.resp.associations)
	}
}

func TestConnectedClientStopsProbing(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("did not connect")
	}
	before := c.Stats.BroadcastProbes
	fx.engine.Run(fx.engine.Now() + 2*time.Minute)
	if c.Stats.BroadcastProbes != before {
		t.Errorf("connected client kept probing: %d -> %d", before, c.Stats.BroadcastProbes)
	}
}

func TestSecuredPNLEntryNotHijackable(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Home"} // twin advertises the SSID as open
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Home", Open: false}}})
	fx.engine.Run(time.Minute)
	if c.Stats.Connected {
		t.Error("client auto-joined an open twin of its secured network")
	}
}

func TestPrivacyResponseIgnored(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Cafe"}
	fx.resp.privacy = true
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Cafe", Open: true}}})
	fx.engine.Run(time.Minute)
	if c.Stats.Connected {
		t.Error("client joined a privacy-capable twin without credentials")
	}
}

func TestDirectedProbeMirrorHit(t *testing.T) {
	fx := newFixture(t)
	fx.resp.mirror = true // KARMA-style
	c := fx.newClient(t, Config{
		PNL:          pnl.List{{SSID: "My Open Cafe", Open: true}, {SSID: "Home"}},
		DirectProber: true,
	})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("KARMA-style mirror did not capture direct prober")
	}
	if c.Stats.ConnectedVia != "My Open Cafe" {
		t.Errorf("connected via %q", c.Stats.ConnectedVia)
	}
}

func TestResponseBudgetPerScan(t *testing.T) {
	fx := newFixture(t)
	// Advertise 100 SSIDs; the client must hear at most 40 per scan.
	for i := 0; i < 100; i++ {
		fx.resp.replySSIDs = append(fx.resp.replySSIDs, "junk-"+string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "none"}}, ScanInterval: time.Hour})
	fx.engine.Run(30 * time.Minute)
	if c.Stats.Scans != 1 {
		t.Fatalf("scans = %d, want 1", c.Stats.Scans)
	}
	if c.Stats.ResponsesHeard > ieee80211.MaxResponsesPerScan {
		t.Errorf("heard %d responses in one scan, budget is %d",
			c.Stats.ResponsesHeard, ieee80211.MaxResponsesPerScan)
	}
	if c.Stats.ResponsesHeard < 30 {
		t.Errorf("heard only %d responses; window should fit ≈40", c.Stats.ResponsesHeard)
	}
}

func TestHandshakeTimeoutRecovers(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	fx.resp.refuseAuth = true
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(2 * time.Minute)
	if c.Stats.Connected {
		t.Fatal("connected despite refused auth")
	}
	if c.State() != StateScanning && c.State() != StateAssociating {
		t.Errorf("state = %v, want scanning/associating", c.State())
	}
	if c.Stats.BroadcastProbes < 2 {
		t.Errorf("client did not resume scanning after stalled handshake")
	}
}

func TestAssocRefusedRecovers(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	fx.resp.refuseAssoc = true
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(2 * time.Minute)
	if c.Stats.Connected {
		t.Fatal("connected despite refused assoc")
	}
	if c.Stats.BroadcastProbes < 2 {
		t.Error("client did not resume scanning")
	}
}

func TestDeauthTriggersRescan(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("did not connect")
	}
	probesBefore := c.Stats.BroadcastProbes
	fx.medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeDeauth,
		DA:      c.Addr(), SA: fx.resp.addr, BSSID: fx.resp.addr,
		Reason: ieee80211.ReasonDeauthLeaving,
	})
	fx.engine.Run(fx.engine.Now() + 30*time.Second)
	if c.Stats.Deauths != 1 {
		t.Errorf("Deauths = %d, want 1", c.Stats.Deauths)
	}
	if c.Stats.BroadcastProbes <= probesBefore {
		t.Error("no rescan after deauth")
	}
}

func TestDeauthFromStrangerIgnored(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("did not connect")
	}
	stranger := ieee80211.MAC{0x0a, 9, 9, 9, 9, 9}
	fx.medium.TransmitFrom(fx.resp.addr, &ieee80211.Frame{
		Subtype: ieee80211.SubtypeDeauth,
		DA:      c.Addr(), SA: stranger, BSSID: stranger,
	})
	fx.engine.Run(fx.engine.Now() + 5*time.Second)
	if c.Stats.Deauths != 0 {
		t.Error("deauth from stranger accepted")
	}
	if c.State() != StateConnected {
		t.Errorf("state = %v", c.State())
	}
}

func TestPreconnectedClientSilentUntilDeauth(t *testing.T) {
	fx := newFixture(t)
	legit := ieee80211.MAC{0x0a, 5, 5, 5, 5, 5}
	fx.resp.replySSIDs = []string{"Net"}
	c := fx.newClient(t, Config{
		PNL:               pnl.List{{SSID: "Net", Open: true}},
		PreconnectedBSSID: legit,
	})
	fx.engine.Run(2 * time.Minute)
	if c.Stats.BroadcastProbes != 0 {
		t.Fatalf("preconnected client sent %d probes", c.Stats.BroadcastProbes)
	}
	// Broadcast deauth spoofing the legit AP (the paper's §V-B attack),
	// physically radiated by the attacker's radio.
	fx.medium.TransmitFrom(fx.resp.addr, &ieee80211.Frame{
		Subtype: ieee80211.SubtypeDeauth,
		DA:      ieee80211.BroadcastMAC, SA: legit, BSSID: legit,
		Reason: ieee80211.ReasonDeauthLeaving,
	})
	fx.engine.Run(fx.engine.Now() + 2*time.Minute)
	if c.Stats.BroadcastProbes == 0 {
		t.Error("no probing after spoofed deauth")
	}
	if !c.Stats.Connected {
		t.Error("attacker failed to capture deauthed client")
	}
}

func TestDepartStopsActivity(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "x"}}})
	fx.engine.Run(12 * time.Second)
	c.Depart()
	probes := c.Stats.BroadcastProbes
	fx.engine.Run(fx.engine.Now() + 2*time.Minute)
	if c.Stats.BroadcastProbes != probes {
		t.Error("departed client kept probing")
	}
	if c.State() != StateDeparted {
		t.Errorf("state = %v", c.State())
	}
	c.Depart() // idempotent
	if fx.medium.Attached(c.Addr()) {
		t.Error("departed client still attached")
	}
}

func TestDepartMidHandshakeNoConnection(t *testing.T) {
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"Net"}
	var c *Client
	c = fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}, ScanInterval: time.Second})
	// Depart right after the scan window would close but likely
	// mid-handshake: sample states at a fine grain and depart on
	// associating.
	departed := false
	var tick func()
	tick = func() {
		if c.State() == StateAssociating && !departed {
			departed = true
			c.Depart()
			return
		}
		if !departed {
			fx.engine.Schedule(time.Millisecond, tick)
		}
	}
	fx.engine.Schedule(0, tick)
	fx.engine.Run(time.Minute)
	if !departed {
		t.Skip("handshake window never observed at this resolution")
	}
	if c.Stats.Connected {
		t.Error("client connected after departing mid-handshake")
	}
}

func TestStateString(t *testing.T) {
	states := []State{StateIdle, StateScanning, StateAssociating, StateConnected, StateDeparted, State(99)}
	seen := make(map[string]bool)
	for _, s := range states {
		if str := s.String(); str == "" || seen[str] {
			t.Errorf("bad State string %q", str)
		} else {
			seen[str] = true
		}
	}
}

func TestWindowNoResponsesNoAssociation(t *testing.T) {
	fx := newFixture(t)
	fx.resp.silent = true
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "Net", Open: true}}})
	fx.engine.Run(time.Minute)
	if c.Stats.Connected {
		t.Error("connected with a silent responder")
	}
	if c.Stats.ResponsesHeard != 0 {
		t.Errorf("heard %d responses", c.Stats.ResponsesHeard)
	}
}

func TestRandomizeMACRotatesPerScan(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{
		PNL:          pnl.List{{SSID: "none"}},
		ScanInterval: 2 * time.Second,
		RandomizeMAC: true,
	})
	seen := make(map[ieee80211.MAC]bool)
	initial := c.Addr()
	var tick func()
	tick = func() {
		seen[c.Addr()] = true
		fx.engine.Schedule(500*time.Millisecond, tick)
	}
	fx.engine.Schedule(0, tick)
	fx.engine.Run(30 * time.Second)
	delete(seen, initial)
	if len(seen) < 5 {
		t.Errorf("observed %d distinct MACs over ~15 scans, want several", len(seen))
	}
	// The phone stays attached under its latest identity.
	if !fx.medium.Attached(c.Addr()) {
		t.Error("client detached after rotations")
	}
}

func TestRandomizeMACDefeatsRotationTracking(t *testing.T) {
	// With a responder advertising junk, a fixed-MAC client accumulates a
	// growing ResponsesHeard; the attacker side of that effect (the
	// untried rotation reset) is covered in the scenario tests. Here we
	// just check the MAC visible to the responder changes.
	fx := newFixture(t)
	fx.resp.replySSIDs = []string{"junk-a", "junk-b"}
	seen := make(map[ieee80211.MAC]bool)
	fx.resp.onProbe = func(sa ieee80211.MAC) { seen[sa] = true }
	c := fx.newClient(t, Config{
		PNL:          pnl.List{{SSID: "none"}},
		ScanInterval: 2 * time.Second,
		RandomizeMAC: true,
	})
	fx.engine.Run(20 * time.Second)
	_ = c
	if len(seen) < 4 {
		t.Errorf("responder saw %d distinct MACs, want several", len(seen))
	}
}

// tunedResponder wraps the responder on a fixed channel.
type tunedResponder struct {
	*responder
	channel uint8
}

func (r *tunedResponder) CurrentChannel() uint8 { return r.channel }

func TestClientFindsAttackerOnAnyScanChannel(t *testing.T) {
	for _, ch := range []uint8{1, 6, 11} {
		e := sim.NewEngine()
		m := sim.NewMedium(e, 50)
		base := &responder{
			addr: ieee80211.MAC{0x0a, 0, 0, 0, 0, 1}, pos: geo.Pt(0, 0),
			engine: e, medium: m, replySSIDs: []string{"Net"}, respChannel: ch,
		}
		tuned := &tunedResponder{responder: base, channel: ch}
		if err := m.Attach(tuned); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(ch)))
		c, err := New(e, m, rng, Config{
			MAC:          ieee80211.RandomMAC(rng),
			PNL:          pnl.List{{SSID: "Net", Open: true}},
			ScanInterval: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.SetPos(geo.Pt(5, 0))
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		e.Run(30 * time.Second)
		if !c.Stats.Connected {
			t.Errorf("client missed attacker on channel %d", ch)
		}
		// After association the client sits on the responder's channel
		// (the response carries it in the DS element).
		if got := c.CurrentChannel(); got != ch {
			t.Errorf("client on channel %d after associating to channel-%d AP", got, ch)
		}
	}
}

func TestClientSkipsChannelsNotConfigured(t *testing.T) {
	fx := newFixture(t)
	// A client pinned to channel 1 with the responder effectively
	// wildcard still works; but pin the responder via a tuned wrapper on
	// channel 11 and a client scanning only {1, 6} never hears it.
	e := sim.NewEngine()
	m := sim.NewMedium(e, 50)
	base := &responder{
		addr: ieee80211.MAC{0x0a, 0, 0, 0, 0, 1}, pos: geo.Pt(0, 0),
		engine: e, medium: m, replySSIDs: []string{"Net"},
	}
	tuned := &tunedResponder{responder: base, channel: 11}
	if err := m.Attach(tuned); err != nil {
		t.Fatal(err)
	}
	c, err := New(e, m, fx.rng, Config{
		MAC:          ieee80211.RandomMAC(fx.rng),
		PNL:          pnl.List{{SSID: "Net", Open: true}},
		ScanInterval: 5 * time.Second,
		ScanChannels: []uint8{1, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetPos(geo.Pt(5, 0))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	e.Run(time.Minute)
	if c.Stats.Connected {
		t.Error("client connected to an AP on a channel it never scans")
	}
}

func TestLateResponsesIgnored(t *testing.T) {
	// A responder that waits longer than the scan's channel windows
	// never lands its response inside a window, so the client never
	// associates even though the SSID matches.
	e := sim.NewEngine()
	m := sim.NewMedium(e, 50)
	slow := &slowResponder{
		addr: ieee80211.MAC{0x0a, 0, 0, 0, 0, 1}, pos: geo.Pt(0, 0),
		engine: e, medium: m, delay: 200 * time.Millisecond, ssid: "Net",
	}
	if err := m.Attach(slow); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	c, err := New(e, m, rng, Config{
		MAC:          ieee80211.RandomMAC(rng),
		PNL:          pnl.List{{SSID: "Net", Open: true}},
		ScanInterval: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetPos(geo.Pt(5, 0))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	e.Run(30 * time.Second)
	if c.Stats.Connected {
		t.Error("client associated on a response that arrived after the window closed")
	}
	if c.Stats.ResponsesHeard != 0 {
		t.Errorf("counted %d late responses", c.Stats.ResponsesHeard)
	}
}

// slowResponder answers broadcast probes after a fixed delay.
type slowResponder struct {
	addr   ieee80211.MAC
	pos    geo.Point
	engine *sim.Engine
	medium *sim.Medium
	delay  time.Duration
	ssid   string
}

func (r *slowResponder) Addr() ieee80211.MAC { return r.addr }
func (r *slowResponder) Pos() geo.Point      { return r.pos }
func (r *slowResponder) Receive(f *ieee80211.Frame) {
	switch f.Subtype {
	case ieee80211.SubtypeProbeRequest:
		if !f.IsBroadcastProbe() {
			return
		}
		sa := f.SA
		r.engine.Schedule(r.delay, func() {
			r.medium.Transmit(&ieee80211.Frame{
				Subtype: ieee80211.SubtypeProbeResponse,
				DA:      sa, SA: r.addr, BSSID: r.addr,
				SSID: r.ssid, Capability: ieee80211.CapESS, Channel: 6,
			})
		})
	case ieee80211.SubtypeAuth:
		// Handshakes complete promptly; only probe responses are slow.
		r.medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeAuth,
			DA:      f.SA, SA: r.addr, BSSID: r.addr,
			AuthAlgorithm: ieee80211.AuthOpenSystem, AuthSeq: 2,
			Status: ieee80211.StatusSuccess,
		})
	case ieee80211.SubtypeAssocRequest:
		r.medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeAssocResponse,
			DA:      f.SA, SA: r.addr, BSSID: r.addr,
			Capability: ieee80211.CapESS, Status: ieee80211.StatusSuccess, AssociationID: 1,
		})
	}
}

func TestWindowExtensionAllowsSecondResponse(t *testing.T) {
	// A first response inside MinChannelTime opens the MaxChannelTime
	// extension; a second response that lands inside the extension (but
	// after the original MinChannelTime deadline) still counts.
	e := sim.NewEngine()
	m := sim.NewMedium(e, 50)
	first := &slowResponder{
		addr: ieee80211.MAC{0x0a, 0, 0, 0, 0, 1}, pos: geo.Pt(0, 0),
		engine: e, medium: m, delay: 2 * time.Millisecond, ssid: "decoy",
	}
	second := &slowResponder{
		addr: ieee80211.MAC{0x0a, 0, 0, 0, 0, 2}, pos: geo.Pt(1, 0),
		engine: e, medium: m, delay: 10 * time.Millisecond, ssid: "Real Net",
	}
	if err := m.Attach(first); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(second); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	c, err := New(e, m, rng, Config{
		MAC:          ieee80211.RandomMAC(rng),
		PNL:          pnl.List{{SSID: "Real Net", Open: true}},
		ScanInterval: time.Hour,
		ScanChannels: []uint8{6},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetPos(geo.Pt(5, 0))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	e.Run(time.Hour)
	if !c.Stats.Connected {
		t.Fatal("second response inside the extended window was not honoured")
	}
	if c.Stats.ConnectedVia != "Real Net" {
		t.Errorf("via %q", c.Stats.ConnectedVia)
	}
}

func TestSequenceNumbersWrap(t *testing.T) {
	fx := newFixture(t)
	c := fx.newClient(t, Config{PNL: pnl.List{{SSID: "x"}}, ScanInterval: time.Second, ScanChannels: []uint8{6}})
	// Force thousands of transmissions; Marshal rejects seq > 0x0fff, so
	// surviving this run proves the counter wraps.
	fx.engine.Run(90 * time.Minute)
	if c.Stats.BroadcastProbes < 4097 {
		t.Skipf("only %d probes, not enough to wrap", c.Stats.BroadcastProbes)
	}
}

func TestCanaryDirectProberStillWorks(t *testing.T) {
	// A defended-but-unsafe phone canary-probes AND direct-probes; the
	// eager mirror answers both, so the phone flags the attacker before
	// evaluating — and must not associate even though its own open
	// network was mirrored too.
	fx := newFixture(t)
	fx.resp.mirror = true
	c := fx.newClient(t, Config{
		PNL:           pnl.List{{SSID: "My Open Cafe", Open: true}},
		DirectProber:  true,
		CanaryProbing: true,
	})
	fx.engine.Run(time.Minute)
	if c.Stats.CanaryDetections == 0 {
		t.Fatal("mirroring attacker was not unmasked")
	}
	if c.Stats.Connected {
		t.Error("defended phone associated with an unmasked attacker")
	}
}

func TestPreconnectedWithRandomizedMAC(t *testing.T) {
	// A preconnected phone keeps its MAC until deauthed, then rotates on
	// every scan.
	fx := newFixture(t)
	legit := ieee80211.MAC{0x0a, 5, 5, 5, 5, 5}
	fx.resp.replySSIDs = []string{"Net"}
	c := fx.newClient(t, Config{
		PNL:               pnl.List{{SSID: "Net", Open: true}},
		PreconnectedBSSID: legit,
		RandomizeMAC:      true,
		ScanInterval:      2 * time.Second,
	})
	initial := c.Addr()
	fx.engine.Run(10 * time.Second)
	if c.Addr() != initial {
		t.Error("MAC rotated while still associated")
	}
	fx.medium.TransmitFrom(fx.resp.addr, &ieee80211.Frame{
		Subtype: ieee80211.SubtypeDeauth,
		DA:      ieee80211.BroadcastMAC, SA: legit, BSSID: legit,
	})
	fx.engine.Run(fx.engine.Now() + 30*time.Second)
	if !c.Stats.Connected || c.Stats.ConnectedTo != fx.resp.addr {
		t.Skip("capture did not complete in this window")
	}
	if c.Addr() == initial {
		t.Error("MAC never rotated after deauth despite RandomizeMAC")
	}
}
