package client

import (
	"fmt"
	"time"
)

// RandomizationPolicy selects when a phone rotates its over-the-air source
// MAC while unassociated. Whatever the policy, the phone's stable identity
// (Config.MAC), its 12-bit frame sequence counter and its IE fingerprint
// are untouched by rotation — they are exactly the side channels the
// de-anonymisation linkers exploit.
type RandomizationPolicy int

// Randomization policies, from least to most aggressive.
const (
	// RandomizeNone keeps the configured MAC for the phone's lifetime.
	RandomizeNone RandomizationPolicy = iota
	// RandomizePerScan rotates once at the start of every scan cycle, the
	// behaviour of most modern handsets.
	RandomizePerScan
	// RandomizePerBurst rotates before every per-channel probe burst, so a
	// single scan appears as several distinct MACs.
	RandomizePerBurst
	// RandomizeTimed rotates at most once per Config.RandomizeEvery,
	// keeping one MAC across several scans (pre-2020 handset behaviour).
	RandomizeTimed
)

// DefaultRandomizeEvery is the rotation period used by RandomizeTimed when
// Config.RandomizeEvery is zero.
const DefaultRandomizeEvery = 15 * time.Minute

// String implements fmt.Stringer.
func (p RandomizationPolicy) String() string {
	switch p {
	case RandomizeNone:
		return "none"
	case RandomizePerScan:
		return "per-scan"
	case RandomizePerBurst:
		return "per-burst"
	case RandomizeTimed:
		return "timed"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}
