// Package prof wires the standard pprof profilers into command-line tools:
// one call at startup, one deferred stop, and the familiar -cpuprofile /
// -memprofile flag semantics of the Go toolchain.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the two paths (either may be
// empty) and returns a stop function that finishes them; it is safe to call
// the stop function exactly once, typically deferred. The CPU profile
// streams for the whole run; the heap profile is snapshotted at stop time
// after a GC, which is what makes steady-state allocations visible.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise the retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
