package attack

import (
	"time"

	"cityhunter/internal/linker"
)

// Mana is the MANA attack strategy (White & de Villiers, DEF CON 22): every
// SSID harvested from directed probes goes into a database, and each
// broadcast probe is answered with the database contents. As the paper's
// Section III analysis shows, two flaws cap its broadcast hit rate at a few
// percent:
//
//   - the reply is truncated to the client's ~40-response scan budget and
//     always starts from the front of the database, so entries beyond the
//     first 40 are effectively never tried (Fig. 1); and
//   - the database quality is whatever direct probers happen to disclose —
//     mostly unique, secured home networks.
type Mana struct {
	// Loud reproduces hostapd-mana's loud mode: directed probes are also
	// answered with the database head, not just the mirrored SSID.
	Loud bool

	order []string
	seen  map[string]bool

	// sizeSamples records (time, database size) pairs for Fig. 1a when
	// sampling is enabled via SampleSize.
	sizeSamples []SizeSample
}

// SizeSample is one (time, database size) observation.
type SizeSample struct {
	At   time.Duration
	Size int
}

var _ Strategy = (*Mana)(nil)

// NewMana returns an empty MANA strategy.
func NewMana() *Mana {
	return &Mana{seen: make(map[string]bool)}
}

// Name implements Strategy.
func (*Mana) Name() string { return "MANA" }

// HarvestDirect implements Strategy: store each new disclosed SSID.
func (m *Mana) HarvestDirect(_ time.Duration, _ linker.Observation, ssid string) {
	if ssid == "" || m.seen[ssid] {
		return
	}
	m.seen[ssid] = true
	m.order = append(m.order, ssid)
}

// BroadcastReply implements Strategy: the whole database, truncated to the
// client's response budget — MANA's characteristic flaw.
func (m *Mana) BroadcastReply(_ time.Duration, _ linker.Observation, limit int) []string {
	if len(m.order) <= limit {
		return m.order
	}
	return m.order[:limit]
}

// DirectReply implements DirectReplier when Loud is set: the database head
// (minus the probed SSID, which the base station already mirrors).
func (m *Mana) DirectReply(_ time.Duration, _ linker.Observation, probed string, limit int) []string {
	if !m.Loud {
		return nil
	}
	out := make([]string, 0, limit)
	for _, ssid := range m.order {
		if len(out) >= limit {
			break
		}
		if ssid != probed {
			out = append(out, ssid)
		}
	}
	return out
}

// RecordHit implements Strategy. MANA keeps no hit statistics.
func (*Mana) RecordHit(time.Duration, linker.Observation, string) {}

// Knows implements Knower.
func (m *Mana) Knows(ssid string) bool { return m.seen[ssid] }

// DBSize returns the number of stored SSIDs.
func (m *Mana) DBSize() int { return len(m.order) }

// SampleSize records the current database size at the given time; the
// Figure 1a experiment calls this every sampling tick.
func (m *Mana) SampleSize(now time.Duration) {
	m.sizeSamples = append(m.sizeSamples, SizeSample{At: now, Size: len(m.order)})
}

// SizeSamples returns the recorded (time, size) series.
func (m *Mana) SizeSamples() []SizeSample {
	out := make([]SizeSample, len(m.sizeSamples))
	copy(out, m.sizeSamples)
	return out
}
