package attack

import (
	"time"

	"cityhunter/internal/linker"
)

// Karma is the KARMA attack strategy (Dai Zovi & Macaulay, 2005): reply to
// directed probes by mimicking the probed SSID, ignore broadcast probes.
// Against modern phones that only send broadcast probes its broadcast hit
// rate is zero by construction, which is the paper's Table I baseline.
type Karma struct{}

var _ Strategy = (*Karma)(nil)

// NewKarma returns the KARMA strategy.
func NewKarma() *Karma { return &Karma{} }

// Name implements Strategy.
func (*Karma) Name() string { return "KARMA" }

// HarvestDirect implements Strategy. KARMA keeps no database.
func (*Karma) HarvestDirect(time.Duration, linker.Observation, string) {}

// BroadcastReply implements Strategy. KARMA cannot answer broadcast probes.
func (*Karma) BroadcastReply(time.Duration, linker.Observation, int) []string { return nil }

// RecordHit implements Strategy.
func (*Karma) RecordHit(time.Duration, linker.Observation, string) {}
