// Package attack implements the evil-twin attacker station and the two
// baseline strategies the paper compares against: KARMA (answer directed
// probes only) and MANA (additionally harvest disclosed SSIDs and replay
// them to broadcast probes).
//
// The attacker is split into a reusable base station — radio behaviour,
// handshake completion, victim accounting, the optional deauthentication
// extension — and a Strategy that decides which SSIDs to advertise to a
// broadcast probe. City-Hunter (internal/core) plugs into the same base.
package attack

import (
	"fmt"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
	"cityhunter/internal/obs"
	"cityhunter/internal/sim"
)

// Strategy decides how an attacker uses SSID knowledge. Probing clients
// are handed over as linker.Observations — the over-the-air MAC plus every
// side channel a de-anonymising strategy can key on (sequence counter, IE
// fingerprint, probed SSID) — so a strategy may track devices across MAC
// randomization rather than trusting the source address.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// HarvestDirect is called for every SSID disclosed in a directed
	// probe, with the prober's observation.
	HarvestDirect(now time.Duration, o linker.Observation, ssid string)
	// BroadcastReply returns the SSIDs (at most limit) to advertise to a
	// broadcast probe from the observed client.
	BroadcastReply(now time.Duration, o linker.Observation, limit int) []string
	// RecordHit is called when the observed victim completes association
	// via ssid.
	RecordHit(now time.Duration, victim linker.Observation, ssid string)
}

// Knower is an optional Strategy extension: strategies that can say
// whether an SSID is already in their database implement it, enabling the
// cautious-mirror mode below.
type Knower interface {
	// Knows reports whether ssid is already in the strategy's database.
	Knows(ssid string) bool
}

// DirectReplier is an optional Strategy extension: strategies that also
// volunteer additional SSIDs when answering a *directed* probe (beyond the
// KARMA-style mirror the base station already sends) implement it.
// hostapd-mana's "loud" mode behaves this way: any probe, directed or not,
// is answered with the whole database.
type DirectReplier interface {
	// DirectReply returns extra SSIDs (at most limit) to advertise to a
	// directed probe for probed from the observed client.
	DirectReply(now time.Duration, o linker.Observation, probed string, limit int) []string
}

// Victim is one captured client.
type Victim struct {
	// MAC identifies the phone.
	MAC ieee80211.MAC
	// SSID is the network name that lured it.
	SSID string
	// At is the association completion time.
	At time.Duration
	// DirectProber records whether the phone had disclosed PNL entries
	// in directed probes — the paper's client classification.
	DirectProber bool
}

// DeauthConfig controls the §V-B deauthentication extension: the attacker
// learns legitimate APs from their beacons and periodically broadcasts
// spoofed deauthentication frames so that already-connected phones start
// scanning again.
type DeauthConfig struct {
	// Enabled turns the extension on.
	Enabled bool
	// Interval is the spoofed-deauth period per known AP.
	Interval time.Duration
}

// Config describes the attacker station.
type Config struct {
	// MAC is the attacker's BSSID.
	MAC ieee80211.MAC
	// Pos is the fixed deployment position.
	Pos geo.Point
	// Channel advertised in probe responses.
	Channel uint8
	// MaxBroadcastReplies caps the response batch per broadcast probe;
	// zero selects the protocol limit of 40.
	MaxBroadcastReplies int
	// RespondToDirect enables KARMA-style mirroring of directed probes.
	// All three attackers in the paper do this.
	RespondToDirect bool
	// CautiousMirror restricts mirroring to SSIDs the strategy has seen
	// before (requires the strategy to implement Knower). It is the
	// attacker's counter-move against canary probing: a probe for a
	// never-seen SSID goes unanswered, so the canary draws no response —
	// at the cost of the first-sighting direct hits an eager mirror gets.
	CautiousMirror bool
	// Beacons, when non-empty, makes the station cycle through the list
	// broadcasting one forged open-network beacon per BeaconEvery — the
	// wifiphisher "known beacons" technique, which lures passively
	// scanning phones without ever answering a probe.
	Beacons []string
	// BeaconEvery is the beacon pacing; zero selects 20 ms.
	BeaconEvery time.Duration
	// Deauth configures the deauthentication extension.
	Deauth DeauthConfig
	// Obs, when non-nil, instruments the station: probe/response counters,
	// reply-batch spans on the trace, and association/deauth journal
	// events.
	Obs *obs.Runtime
	// Site, when non-empty, labels the attacker's metric series with
	// site=<Site>, so a live monitor can tell co-deployed attackers apart.
	Site string
}

// clientInfo tracks what the attacker knows about one prober.
type clientInfo struct {
	directProber bool
	connected    bool
}

// Attacker is the evil-twin base station.
type Attacker struct {
	cfg      Config
	engine   *sim.Engine
	medium   *sim.Medium
	strategy Strategy

	seq     uint16
	arena   ieee80211.FrameArena
	clients map[ieee80211.MAC]*clientInfo
	// victims in capture order.
	victims []Victim

	// knownAPs are BSSIDs learnt from beacons, in discovery order, for
	// the deauth extension.
	knownAPs   []ieee80211.MAC
	knownAPSet map[ieee80211.MAC]bool
	stopped    bool

	// Counters.
	directProbesHeard    int
	broadcastProbesHeard int
	deauthsSent          int
	beaconsSent          int

	// Observability handles; all nil-safe when unset.
	rt           *obs.Runtime
	trace        *obs.Trace
	tid          int
	mDirect      *obs.Counter
	mBroadcast   *obs.Counter
	mResponses   *obs.Counter
	mVictims     *obs.Counter
	mDeauths     *obs.Counter
	mBeaconsSent *obs.Counter
}

// New builds an attacker with the given strategy.
func New(engine *sim.Engine, medium *sim.Medium, strategy Strategy, cfg Config) (*Attacker, error) {
	if strategy == nil {
		return nil, fmt.Errorf("attack: nil strategy")
	}
	if cfg.MAC == (ieee80211.MAC{}) {
		return nil, fmt.Errorf("attack: zero MAC")
	}
	if cfg.MaxBroadcastReplies <= 0 {
		cfg.MaxBroadcastReplies = ieee80211.MaxResponsesPerScan
	}
	if cfg.Deauth.Enabled && cfg.Deauth.Interval <= 0 {
		cfg.Deauth.Interval = 5 * time.Second
	}
	if len(cfg.Beacons) > 0 && cfg.BeaconEvery <= 0 {
		cfg.BeaconEvery = 20 * time.Millisecond
	}
	a := &Attacker{
		cfg:        cfg,
		engine:     engine,
		medium:     medium,
		strategy:   strategy,
		clients:    make(map[ieee80211.MAC]*clientInfo),
		knownAPSet: make(map[ieee80211.MAC]bool),
	}
	if rt := cfg.Obs; rt != nil {
		a.rt = rt
		a.trace = rt.Trace
		a.tid = rt.Trace.Track("attacker " + cfg.MAC.String())
		if rt.Metrics != nil {
			counter := func(name string, labels ...string) *obs.Counter {
				if cfg.Site != "" {
					labels = append(labels, "site", cfg.Site)
				}
				return rt.Metrics.Counter(name, labels...)
			}
			a.mDirect = counter("attack_probes_heard", "kind", "directed")
			a.mBroadcast = counter("attack_probes_heard", "kind", "broadcast")
			a.mResponses = counter("attack_probe_responses_sent")
			a.mVictims = counter("attack_victims")
			a.mDeauths = counter("attack_deauths_sent")
			a.mBeaconsSent = counter("attack_beacons_sent")
		}
	}
	return a, nil
}

// Addr implements sim.Station.
func (a *Attacker) Addr() ieee80211.MAC { return a.cfg.MAC }

// Pos implements sim.Station.
func (a *Attacker) Pos() geo.Point { return a.cfg.Pos }

// CurrentChannel implements sim.ChannelTuner: the attacker camps on its
// configured channel (0 = channel-agnostic, useful in unit tests).
func (a *Attacker) CurrentChannel() uint8 { return a.cfg.Channel }

// Strategy returns the plugged-in strategy.
func (a *Attacker) Strategy() Strategy { return a.strategy }

// Start attaches the attacker to the medium and arms the deauth loop when
// enabled.
func (a *Attacker) Start() error {
	if err := a.medium.Attach(a); err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	if a.cfg.Deauth.Enabled {
		a.scheduleDeauthSweep()
	}
	if len(a.cfg.Beacons) > 0 {
		a.scheduleBeacon(0)
	}
	return nil
}

// scheduleBeacon transmits the idx-th known beacon and re-arms for the
// next one, cycling the list.
func (a *Attacker) scheduleBeacon(idx int) {
	a.engine.Schedule(a.cfg.BeaconEvery, func() {
		if a.stopped {
			return
		}
		a.beaconsSent++
		a.mBeaconsSent.Inc()
		a.medium.Transmit(a.frame(ieee80211.Frame{
			Subtype:          ieee80211.SubtypeBeacon,
			DA:               ieee80211.BroadcastMAC,
			SSID:             a.cfg.Beacons[idx%len(a.cfg.Beacons)],
			Capability:       ieee80211.CapESS,
			Channel:          a.cfg.Channel,
			BeaconIntervalTU: 100,
		}))
		a.scheduleBeacon(idx + 1)
	})
}

// Stop halts all periodic activity — the deauth sweep and the known-beacons
// loop both check it before transmitting, so no beacon or deauthentication
// frame goes on air after Stop returns. The station stays attached so late
// handshakes still complete; deployment teardown relies on exactly this
// split.
func (a *Attacker) Stop() { a.stopped = true }

// Receive implements sim.Station.
func (a *Attacker) Receive(f *ieee80211.Frame) {
	switch f.Subtype {
	case ieee80211.SubtypeProbeRequest:
		a.onProbe(f)
	case ieee80211.SubtypeAuth:
		a.onAuth(f)
	case ieee80211.SubtypeAssocRequest:
		a.onAssocRequest(f)
	case ieee80211.SubtypeBeacon:
		a.onBeacon(f)
	}
}

func (a *Attacker) client(mac ieee80211.MAC) *clientInfo {
	ci, ok := a.clients[mac]
	if !ok {
		ci = &clientInfo{}
		a.clients[mac] = ci
	}
	return ci
}

// observation condenses a received frame into what a linking strategy can
// key on.
func observation(now time.Duration, f *ieee80211.Frame) linker.Observation {
	return linker.Observation{
		At:          now,
		MAC:         f.SA,
		Seq:         f.Seq,
		Fingerprint: f.Fingerprint,
		SSID:        f.SSID,
		Directed:    f.IsDirectedProbe(),
	}
}

func (a *Attacker) onProbe(f *ieee80211.Frame) {
	now := a.engine.Now()
	ci := a.client(f.SA)
	o := observation(now, f)
	if f.IsDirectedProbe() {
		a.directProbesHeard++
		a.mDirect.Inc()
		ci.directProber = true
		known := false
		if k, ok := a.strategy.(Knower); ok {
			known = k.Knows(f.SSID)
		}
		a.strategy.HarvestDirect(now, o, f.SSID)
		if a.cfg.RespondToDirect && (!a.cfg.CautiousMirror || known) {
			a.respond(f.SA, f.SSID)
		}
		if dr, ok := a.strategy.(DirectReplier); ok {
			for _, ssid := range dr.DirectReply(now, o, f.SSID, a.cfg.MaxBroadcastReplies-1) {
				a.respond(f.SA, ssid)
			}
		}
		return
	}
	a.broadcastProbesHeard++
	a.mBroadcast.Inc()
	batch := a.strategy.BroadcastReply(now, o, a.cfg.MaxBroadcastReplies)
	for _, ssid := range batch {
		a.respond(f.SA, ssid)
	}
	if a.trace != nil && len(batch) > 0 {
		// The batch occupies the radio until the transmit queue drains;
		// that window is the span chrome://tracing shows per reply burst.
		a.trace.Span("attacker", "reply-batch", a.tid, now, a.medium.TxBusyUntil(a.cfg.MAC),
			map[string]any{"client": f.SA.String(), "ssids": len(batch)})
	}
}

// respond sends one forged open-network probe response.
func (a *Attacker) respond(da ieee80211.MAC, ssid string) {
	a.mResponses.Inc()
	a.medium.Transmit(a.frame(ieee80211.Frame{
		Subtype:          ieee80211.SubtypeProbeResponse,
		DA:               da,
		SSID:             ssid,
		Capability:       ieee80211.CapESS, // never privacy: the twin must be open
		Channel:          a.cfg.Channel,
		BeaconIntervalTU: 100,
	}))
}

func (a *Attacker) onAuth(f *ieee80211.Frame) {
	if f.DA != a.cfg.MAC || f.AuthSeq != 1 {
		return
	}
	a.medium.Transmit(a.frame(ieee80211.Frame{
		Subtype:       ieee80211.SubtypeAuth,
		DA:            f.SA,
		AuthAlgorithm: ieee80211.AuthOpenSystem,
		AuthSeq:       2,
		Status:        ieee80211.StatusSuccess,
	}))
}

func (a *Attacker) onAssocRequest(f *ieee80211.Frame) {
	if f.DA != a.cfg.MAC {
		return
	}
	a.medium.Transmit(a.frame(ieee80211.Frame{
		Subtype:       ieee80211.SubtypeAssocResponse,
		DA:            f.SA,
		Capability:    ieee80211.CapESS,
		Status:        ieee80211.StatusSuccess,
		AssociationID: uint16(len(a.victims)+1) & 0x3fff,
	}))
	ci := a.client(f.SA)
	if ci.connected {
		return // duplicate association (e.g. after deauth) counted once
	}
	ci.connected = true
	now := a.engine.Now()
	a.victims = append(a.victims, Victim{
		MAC:          f.SA,
		SSID:         f.SSID,
		At:           now,
		DirectProber: ci.directProber,
	})
	a.mVictims.Inc()
	detail := fmt.Sprintf("associated via %q", f.SSID)
	if a.cfg.Site != "" {
		detail += " at " + a.cfg.Site
	}
	a.rt.Event(now, obs.EventAssociation, f.SA.String(), detail)
	a.strategy.RecordHit(now, observation(now, f), f.SSID)
}

func (a *Attacker) onBeacon(f *ieee80211.Frame) {
	if f.BSSID == a.cfg.MAC || a.knownAPSet[f.BSSID] {
		return
	}
	a.knownAPSet[f.BSSID] = true
	a.knownAPs = append(a.knownAPs, f.BSSID)
}

// scheduleDeauthSweep broadcasts one spoofed deauthentication per known AP,
// then re-arms.
func (a *Attacker) scheduleDeauthSweep() {
	a.engine.Schedule(a.cfg.Deauth.Interval, func() {
		if a.stopped {
			return
		}
		for _, ap := range a.knownAPs {
			a.deauthsSent++
			a.mDeauths.Inc()
			a.medium.TransmitFrom(a.cfg.MAC, &ieee80211.Frame{
				Subtype: ieee80211.SubtypeDeauth,
				DA:      ieee80211.BroadcastMAC,
				SA:      ap,
				BSSID:   ap,
				Reason:  ieee80211.ReasonPrevAuthExpired,
			})
		}
		if len(a.knownAPs) > 0 {
			a.rt.Event(a.engine.Now(), obs.EventDeauthSweep, a.cfg.MAC.String(),
				fmt.Sprintf("spoofed %d deauth broadcasts", len(a.knownAPs)))
		}
		a.scheduleDeauthSweep()
	})
}

func (a *Attacker) frame(f ieee80211.Frame) *ieee80211.Frame {
	f.SA = a.cfg.MAC
	f.BSSID = a.cfg.MAC
	a.seq = (a.seq + 1) & 0x0fff
	f.Seq = a.seq
	return a.arena.New(f)
}

// Victims returns the captured clients in capture order.
func (a *Attacker) Victims() []Victim {
	out := make([]Victim, len(a.victims))
	copy(out, a.victims)
	return out
}

// Report summarises the deployment the way the paper's tables do.
type Report struct {
	// Strategy names the attack.
	Strategy string
	// TotalClients is the number of distinct probing phones heard.
	TotalClients int
	// DirectClients / BroadcastClients split them by probing style.
	DirectClients    int
	BroadcastClients int
	// ConnectedDirect / ConnectedBroadcast split the victims the same way.
	ConnectedDirect    int
	ConnectedBroadcast int
	// DeauthsSent counts spoofed deauthentication frames.
	DeauthsSent int
	// BeaconsSent counts forged known beacons.
	BeaconsSent int
}

// HitRate returns h: victims over clients heard.
func (r Report) HitRate() float64 {
	if r.TotalClients == 0 {
		return 0
	}
	return float64(r.ConnectedDirect+r.ConnectedBroadcast) / float64(r.TotalClients)
}

// BroadcastHitRate returns h_b: broadcast-only victims over broadcast-only
// clients.
func (r Report) BroadcastHitRate() float64 {
	if r.BroadcastClients == 0 {
		return 0
	}
	return float64(r.ConnectedBroadcast) / float64(r.BroadcastClients)
}

// Report summarises the attacker's observations so far.
func (a *Attacker) Report() Report {
	r := Report{Strategy: a.strategy.Name(), DeauthsSent: a.deauthsSent, BeaconsSent: a.beaconsSent}
	for _, ci := range a.clients {
		r.TotalClients++
		if ci.directProber {
			r.DirectClients++
		} else {
			r.BroadcastClients++
		}
	}
	for _, v := range a.victims {
		if v.DirectProber {
			r.ConnectedDirect++
		} else {
			r.ConnectedBroadcast++
		}
	}
	return r
}
