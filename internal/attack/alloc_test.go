package attack

import (
	"fmt"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

// quietProber is a minimal station that swallows everything it receives,
// so allocation measurements see only the attacker's reply path.
type quietProber struct {
	addr ieee80211.MAC
	got  int
}

func (s *quietProber) Addr() ieee80211.MAC      { return s.addr }
func (s *quietProber) Pos() geo.Point           { return geo.Pt(5, 0) }
func (s *quietProber) Receive(*ieee80211.Frame) { s.got++ }

// TestBroadcastReplyPathAllocBudget pins the steady-state allocation cost
// of the hottest path in every experiment: a broadcast probe request
// arriving at the attacker and being answered with a full batch of forged
// probe responses. With pooled engine events, pooled delivery events, and
// arena-backed frames, the whole burst must stay within a small per-probe
// budget (the arena amortises to well under one allocation per reply;
// before this pass each reply cost its own frame and closure allocations).
func TestBroadcastReplyPathAllocBudget(t *testing.T) {
	e := sim.NewEngine()
	m := sim.NewMedium(e, 50)
	mana := NewMana()
	for i := 0; i < 100; i++ {
		mana.HarvestDirect(0, lnk(ieee80211.MAC{0x02, 9, 0, 0, 0, byte(i)}), fmt.Sprintf("Net-%03d", i))
	}
	a, err := New(e, m, mana, Config{MAC: attackerMAC})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	prober := &quietProber{addr: ieee80211.MAC{0x02, 1, 1, 1, 1, 1}}
	if err := m.Attach(prober); err != nil {
		t.Fatal(err)
	}

	probe := &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		SA:      prober.addr,
		DA:      ieee80211.BroadcastMAC,
		BSSID:   ieee80211.BroadcastMAC,
	}
	drain := func() {
		m.Transmit(probe)
		e.Run(e.Now() + time.Minute)
	}
	drain() // warm pools, arena, and the attacker's client table

	batch := a.Report().BroadcastClients
	if batch != 1 {
		t.Fatalf("BroadcastClients = %d, want 1", batch)
	}
	before := prober.got
	avg := testing.AllocsPerRun(50, drain)
	perReply := float64(prober.got-before) / 51 // AllocsPerRun runs once extra to warm up
	if perReply < 30 {
		t.Fatalf("replies per probe = %.1f, expected a full batch", perReply)
	}
	// Budget: strictly less than 3 allocations per probe burst (~40
	// replies). The arena contributes ~40/64, everything else is pooled.
	if avg >= 3 {
		t.Errorf("broadcast reply burst allocates %.2f/op, want < 3", avg)
	}
}
