package attack

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/ap"
	"cityhunter/internal/client"
	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
)

var attackerMAC = ieee80211.MAC{0x0a, 0xbc, 0, 0, 0, 1}

// lnk wraps a bare MAC into the minimal linker.Observation the strategy
// interface consumes.
func lnk(m ieee80211.MAC) linker.Observation { return linker.Observation{MAC: m} }

type fixture struct {
	engine *sim.Engine
	medium *sim.Medium
	rng    *rand.Rand
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	e := sim.NewEngine()
	return &fixture{engine: e, medium: sim.NewMedium(e, 50), rng: rand.New(rand.NewSource(1))}
}

func (fx *fixture) newAttacker(t *testing.T, s Strategy, cfg Config) *Attacker {
	t.Helper()
	if cfg.MAC == (ieee80211.MAC{}) {
		cfg.MAC = attackerMAC
	}
	cfg.RespondToDirect = true
	a, err := New(fx.engine, fx.medium, s, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return a
}

func (fx *fixture) newClient(t *testing.T, cfg client.Config) *client.Client {
	t.Helper()
	if cfg.MAC == (ieee80211.MAC{}) {
		cfg.MAC = ieee80211.RandomMAC(fx.rng)
	}
	if cfg.ScanInterval == 0 {
		cfg.ScanInterval = 5 * time.Second
	}
	c, err := client.New(fx.engine, fx.medium, fx.rng, cfg)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	c.SetPos(geo.Pt(5, 0))
	if err := c.Start(); err != nil {
		t.Fatalf("client.Start: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	fx := newFixture(t)
	if _, err := New(fx.engine, fx.medium, nil, Config{MAC: attackerMAC}); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := New(fx.engine, fx.medium, NewKarma(), Config{}); err == nil {
		t.Error("zero MAC accepted")
	}
}

func TestKarmaCapturesDirectProber(t *testing.T) {
	fx := newFixture(t)
	a := fx.newAttacker(t, NewKarma(), Config{})
	c := fx.newClient(t, client.Config{
		PNL:          pnl.List{{SSID: "Open Cafe", Open: true}, {SSID: "Home"}},
		DirectProber: true,
	})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("KARMA did not capture direct prober with open PNL entry")
	}
	victims := a.Victims()
	if len(victims) != 1 {
		t.Fatalf("victims = %d", len(victims))
	}
	if victims[0].SSID != "Open Cafe" || !victims[0].DirectProber {
		t.Errorf("victim = %+v", victims[0])
	}
}

func TestKarmaCannotCaptureBroadcastProber(t *testing.T) {
	fx := newFixture(t)
	a := fx.newAttacker(t, NewKarma(), Config{})
	c := fx.newClient(t, client.Config{
		PNL: pnl.List{{SSID: "Open Cafe", Open: true}},
	})
	fx.engine.Run(2 * time.Minute)
	if c.Stats.Connected {
		t.Error("KARMA captured a broadcast-only prober")
	}
	r := a.Report()
	if r.BroadcastHitRate() != 0 {
		t.Errorf("h_b = %v, want 0 for KARMA (paper Table I)", r.BroadcastHitRate())
	}
	if r.BroadcastClients != 1 {
		t.Errorf("BroadcastClients = %d", r.BroadcastClients)
	}
}

func TestKarmaSecuredEntryNoCapture(t *testing.T) {
	fx := newFixture(t)
	fx.newAttacker(t, NewKarma(), Config{})
	c := fx.newClient(t, client.Config{
		PNL:          pnl.List{{SSID: "Home"}}, // secured
		DirectProber: true,
	})
	fx.engine.Run(time.Minute)
	if c.Stats.Connected {
		t.Error("KARMA captured client whose only entry is secured")
	}
}

func TestManaHarvestsAndReplays(t *testing.T) {
	fx := newFixture(t)
	mana := NewMana()
	fx.newAttacker(t, mana, Config{})

	// A direct prober discloses a popular open SSID...
	fx.newClient(t, client.Config{
		PNL:          pnl.List{{SSID: "Popular Free WiFi", Open: true}},
		DirectProber: true,
		ScanInterval: 2 * time.Second,
	})
	fx.engine.Run(10 * time.Second)
	if mana.DBSize() != 1 {
		t.Fatalf("DB size = %d after harvest", mana.DBSize())
	}

	// ...then a broadcast-only phone with the same SSID appears and is hit.
	victim := fx.newClient(t, client.Config{
		PNL: pnl.List{{SSID: "Popular Free WiFi", Open: true}},
	})
	fx.engine.Run(fx.engine.Now() + time.Minute)
	if !victim.Stats.Connected {
		t.Fatal("MANA failed to hit broadcast prober with harvested SSID")
	}
	if victim.Stats.ConnectedVia != "Popular Free WiFi" {
		t.Errorf("via %q", victim.Stats.ConnectedVia)
	}
}

func TestManaHarvestDeduplicates(t *testing.T) {
	m := NewMana()
	for i := 0; i < 5; i++ {
		m.HarvestDirect(0, lnk(ieee80211.MAC{1}), "Same")
	}
	m.HarvestDirect(0, lnk(ieee80211.MAC{1}), "")
	if m.DBSize() != 1 {
		t.Errorf("DB size = %d, want 1", m.DBSize())
	}
}

func TestManaReplyTruncation(t *testing.T) {
	m := NewMana()
	for i := 0; i < 100; i++ {
		m.HarvestDirect(0, lnk(ieee80211.MAC{1}), string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	got := m.BroadcastReply(0, lnk(ieee80211.MAC{2}), 40)
	if len(got) != 40 {
		t.Fatalf("reply = %d SSIDs, want 40", len(got))
	}
	// MANA's flaw: the same first 40 every time.
	again := m.BroadcastReply(0, lnk(ieee80211.MAC{3}), 40)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("MANA reply varied between clients; it should always send the database head")
		}
	}
}

func TestManaSizeSamples(t *testing.T) {
	m := NewMana()
	m.SampleSize(0)
	m.HarvestDirect(0, lnk(ieee80211.MAC{1}), "a")
	m.SampleSize(time.Minute)
	s := m.SizeSamples()
	if len(s) != 2 || s[0].Size != 0 || s[1].Size != 1 || s[1].At != time.Minute {
		t.Errorf("samples = %+v", s)
	}
}

func TestReportClassification(t *testing.T) {
	fx := newFixture(t)
	a := fx.newAttacker(t, NewKarma(), Config{})
	fx.newClient(t, client.Config{
		PNL:          pnl.List{{SSID: "Open", Open: true}},
		DirectProber: true,
	})
	fx.newClient(t, client.Config{PNL: pnl.List{{SSID: "Other", Open: true}}})
	fx.newClient(t, client.Config{PNL: pnl.List{{SSID: "Third"}}})
	fx.engine.Run(time.Minute)

	r := a.Report()
	if r.TotalClients != 3 {
		t.Errorf("TotalClients = %d, want 3", r.TotalClients)
	}
	if r.DirectClients != 1 || r.BroadcastClients != 2 {
		t.Errorf("direct/broadcast = %d/%d, want 1/2", r.DirectClients, r.BroadcastClients)
	}
	if r.ConnectedDirect != 1 || r.ConnectedBroadcast != 0 {
		t.Errorf("connected = %d/%d, want 1/0", r.ConnectedDirect, r.ConnectedBroadcast)
	}
	if got := r.HitRate(); got < 0.32 || got > 0.34 {
		t.Errorf("h = %v, want 1/3", got)
	}
}

func TestReportEmpty(t *testing.T) {
	var r Report
	if r.HitRate() != 0 || r.BroadcastHitRate() != 0 {
		t.Error("rates on empty report should be 0")
	}
}

func TestVictimCountedOnce(t *testing.T) {
	fx := newFixture(t)
	a := fx.newAttacker(t, NewKarma(), Config{})
	c := fx.newClient(t, client.Config{
		PNL:          pnl.List{{SSID: "Open", Open: true}},
		DirectProber: true,
	})
	fx.engine.Run(30 * time.Second)
	if !c.Stats.Connected {
		t.Fatal("no capture")
	}
	// Deauth the victim; it reconnects but must not be double counted.
	fx.medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeDeauth,
		DA:      c.Addr(), SA: attackerMAC, BSSID: attackerMAC,
	})
	fx.engine.Run(fx.engine.Now() + time.Minute)
	if got := len(a.Victims()); got != 1 {
		t.Errorf("victims = %d, want 1 after reconnect", got)
	}
}

func TestDeauthExtensionFreesPreconnectedClients(t *testing.T) {
	fx := newFixture(t)
	legit, err := ap.New(fx.engine, fx.medium, ap.Config{
		MAC:  ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		SSID: "Legit Venue WiFi",
		Pos:  geo.Pt(10, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := legit.Start(); err != nil {
		t.Fatal(err)
	}

	mana := NewMana()
	a := fx.newAttacker(t, mana, Config{
		Deauth: DeauthConfig{Enabled: true, Interval: 2 * time.Second},
	})
	mana.HarvestDirect(0, lnk(ieee80211.MAC{9}), "Popular Net")

	c := fx.newClient(t, client.Config{
		PNL:               pnl.List{{SSID: "Popular Net", Open: true}},
		PreconnectedBSSID: legit.Addr(),
	})
	fx.engine.Run(time.Minute)
	if !c.Stats.Connected || c.Stats.ConnectedTo != attackerMAC {
		t.Fatalf("preconnected client not captured: connected=%v to=%v",
			c.Stats.Connected, c.Stats.ConnectedTo)
	}
	if a.Report().DeauthsSent == 0 {
		t.Error("no deauths sent")
	}
	if legit.BeaconsSent == 0 {
		t.Error("AP sent no beacons")
	}
}

func TestDeauthDisabledNoSpoofing(t *testing.T) {
	fx := newFixture(t)
	legit, err := ap.New(fx.engine, fx.medium, ap.Config{
		MAC:  ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		SSID: "Legit",
		Pos:  geo.Pt(10, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := legit.Start(); err != nil {
		t.Fatal(err)
	}
	a := fx.newAttacker(t, NewKarma(), Config{})
	c := fx.newClient(t, client.Config{
		PNL:               pnl.List{{SSID: "X", Open: true}},
		PreconnectedBSSID: legit.Addr(),
	})
	fx.engine.Run(time.Minute)
	if c.Stats.Connected && c.Stats.ConnectedTo == attackerMAC {
		t.Error("captured preconnected client without deauth extension")
	}
	if a.Report().DeauthsSent != 0 {
		t.Errorf("DeauthsSent = %d, want 0", a.Report().DeauthsSent)
	}
}

func TestAttackerStopHaltsDeauthLoop(t *testing.T) {
	fx := newFixture(t)
	legit, err := ap.New(fx.engine, fx.medium, ap.Config{
		MAC:  ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		SSID: "Legit",
		Pos:  geo.Pt(10, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := legit.Start(); err != nil {
		t.Fatal(err)
	}
	a := fx.newAttacker(t, NewKarma(), Config{
		Deauth: DeauthConfig{Enabled: true, Interval: time.Second},
	})
	fx.engine.Run(10 * time.Second)
	a.Stop()
	sent := a.Report().DeauthsSent
	fx.engine.Run(fx.engine.Now() + 10*time.Second)
	if a.Report().DeauthsSent != sent {
		t.Error("deauth loop survived Stop")
	}
}

// TestStopSilencesAllPeriodicTransmissions is the deployment-teardown
// contract: after Stop, neither the known-beacons loop nor the deauth sweep
// puts another frame on air — verified at the medium level, not just via the
// attacker's own counters.
func TestStopSilencesAllPeriodicTransmissions(t *testing.T) {
	fx := newFixture(t)
	a := fx.newAttacker(t, NewKarma(), Config{
		Beacons:     []string{"Free Airport WiFi", "CoffeeShop"},
		BeaconEvery: 50 * time.Millisecond,
		Deauth:      DeauthConfig{Enabled: true, Interval: time.Second},
	})
	// Teach the deauth extension one legitimate AP without attaching a real
	// station, so every frame the medium counts is the attacker's own.
	a.Receive(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeBeacon,
		SA:      ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		BSSID:   ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
	})
	fx.engine.Run(5 * time.Second)
	r := a.Report()
	if r.BeaconsSent == 0 || r.DeauthsSent == 0 {
		t.Fatalf("both loops must be live before Stop: beacons=%d deauths=%d",
			r.BeaconsSent, r.DeauthsSent)
	}

	a.Stop()
	onAir := fx.medium.FramesSent
	fx.engine.Run(fx.engine.Now() + 30*time.Second)
	if got := fx.medium.FramesSent; got != onAir {
		t.Errorf("%d frame(s) transmitted after Stop", got-onAir)
	}
	after := a.Report()
	if after.BeaconsSent != r.BeaconsSent {
		t.Errorf("beacon loop survived Stop: %d -> %d", r.BeaconsSent, after.BeaconsSent)
	}
	if after.DeauthsSent != r.DeauthsSent {
		t.Errorf("deauth loop survived Stop: %d -> %d", r.DeauthsSent, after.DeauthsSent)
	}
}

func TestStrategyNames(t *testing.T) {
	if NewKarma().Name() != "KARMA" || NewMana().Name() != "MANA" {
		t.Error("unexpected strategy names")
	}
}

// TestTable1Shape runs KARMA and MANA against the same synthetic crowd
// shape and checks the paper's Table I ordering: MANA's broadcast hit rate
// beats KARMA's zero, and both capture some direct probers.
func TestTable1Shape(t *testing.T) {
	run := func(s Strategy) Report {
		fx := newFixture(t)
		a := fx.newAttacker(t, s, Config{})
		rng := rand.New(rand.NewSource(99))
		// 120 phones: 15% direct probers; 20% have an open popular
		// SSID; direct probers also disclose it so MANA can harvest.
		for i := 0; i < 120; i++ {
			var list pnl.List
			if rng.Float64() < 0.20 {
				list = append(list, pnl.Network{SSID: "Popular Free WiFi", Open: true})
			}
			list = append(list, pnl.Network{SSID: "HOME-" + string(rune('a'+i%26)) + string(rune('a'+i/26))})
			cfg := client.Config{
				MAC:          ieee80211.RandomMAC(rng),
				PNL:          list,
				DirectProber: rng.Float64() < 0.15,
				ScanInterval: 20 * time.Second,
			}
			c, err := client.New(fx.engine, fx.medium, rng, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c.SetPos(geo.Pt(rng.Float64()*40-20, rng.Float64()*40-20))
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
		}
		fx.engine.Run(30 * time.Minute)
		return a.Report()
	}

	karma := run(NewKarma())
	mana := run(NewMana())
	if karma.BroadcastHitRate() != 0 {
		t.Errorf("KARMA h_b = %v, want 0", karma.BroadcastHitRate())
	}
	if mana.BroadcastHitRate() <= 0 {
		t.Errorf("MANA h_b = %v, want > 0", mana.BroadcastHitRate())
	}
	if mana.HitRate() <= karma.HitRate() {
		t.Errorf("MANA h %.3f should beat KARMA h %.3f", mana.HitRate(), karma.HitRate())
	}
}

func TestManaLoudAnswersDirectProbesWithDB(t *testing.T) {
	fx := newFixture(t)
	mana := NewMana()
	mana.Loud = true
	fx.newAttacker(t, mana, Config{})

	// Seed the database via one discloser.
	mana.HarvestDirect(0, lnk(ieee80211.MAC{9}), "Shared Open Net")

	// A direct prober whose own entries are all secured would never be
	// captured by quiet MANA — loud mode hits it with the harvested SSID.
	c := fx.newClient(t, client.Config{
		PNL: pnl.List{
			{SSID: "HOME-secure"},
			{SSID: "Shared Open Net", Open: true},
		},
		DirectProber: true,
	})
	fx.engine.Run(time.Minute)
	if !c.Stats.Connected {
		t.Fatal("loud MANA did not capture the direct prober via its database")
	}
	if c.Stats.ConnectedVia != "Shared Open Net" {
		t.Errorf("via %q", c.Stats.ConnectedVia)
	}
}

func TestManaQuietDoesNotVolunteer(t *testing.T) {
	m := NewMana()
	m.HarvestDirect(0, lnk(ieee80211.MAC{9}), "X")
	if got := m.DirectReply(0, lnk(ieee80211.MAC{1}), "Y", 40); got != nil {
		t.Errorf("quiet MANA volunteered %v", got)
	}
	m.Loud = true
	if got := m.DirectReply(0, lnk(ieee80211.MAC{1}), "X", 40); len(got) != 0 {
		t.Errorf("loud MANA re-sent the mirrored SSID: %v", got)
	}
	m.HarvestDirect(0, lnk(ieee80211.MAC{9}), "Z")
	got := m.DirectReply(0, lnk(ieee80211.MAC{1}), "X", 40)
	if len(got) != 1 || got[0] != "Z" {
		t.Errorf("DirectReply = %v, want [Z]", got)
	}
}

func TestAttackerRespectsReplyBudget(t *testing.T) {
	fx := newFixture(t)
	mana := NewMana()
	for i := 0; i < 200; i++ {
		mana.HarvestDirect(0, lnk(ieee80211.MAC{9}), fmt.Sprintf("net-%03d", i))
	}
	fx.newAttacker(t, mana, Config{MaxBroadcastReplies: 15})
	sent := fx.medium.FramesSent
	// One broadcast probe from a bystander triggers the batch.
	probe := &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC,
		SA:      ieee80211.MAC{0x02, 1, 2, 3, 4, 5},
		BSSID:   ieee80211.BroadcastMAC,
	}
	bystander := &bystanderStation{addr: probe.SA}
	if err := fx.medium.Attach(bystander); err != nil {
		t.Fatal(err)
	}
	fx.medium.Transmit(probe)
	fx.engine.Run(time.Second)
	replies := fx.medium.FramesSent - sent - 1 // minus the probe itself
	if replies != 15 {
		t.Errorf("attacker sent %d replies, want the configured 15", replies)
	}
}

type bystanderStation struct {
	addr ieee80211.MAC
}

func (s *bystanderStation) Addr() ieee80211.MAC      { return s.addr }
func (s *bystanderStation) Pos() geo.Point           { return geo.Pt(1, 0) }
func (s *bystanderStation) Receive(*ieee80211.Frame) {}
