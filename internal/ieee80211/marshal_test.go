package ieee80211

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var (
	testClient = MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55}
	testAP     = MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee}
)

// sampleFrames covers every supported subtype with representative fields.
func sampleFrames() []*Frame {
	return []*Frame{
		{Subtype: SubtypeProbeRequest, DA: BroadcastMAC, SA: testClient, BSSID: BroadcastMAC, Seq: 1},
		{Subtype: SubtypeProbeRequest, DA: BroadcastMAC, SA: testClient, BSSID: BroadcastMAC, Seq: 2, SSID: "HomeNet"},
		{Subtype: SubtypeProbeResponse, DA: testClient, SA: testAP, BSSID: testAP, Seq: 3,
			SSID: "7-Eleven Free Wifi", Capability: CapESS, Channel: 6, BeaconIntervalTU: 100},
		{Subtype: SubtypeBeacon, DA: BroadcastMAC, SA: testAP, BSSID: testAP, Seq: 4,
			SSID: "CSL", Capability: CapESS | CapPrivacy, Channel: 11, BeaconIntervalTU: 100},
		{Subtype: SubtypeAuth, DA: testAP, SA: testClient, BSSID: testAP, Seq: 5,
			AuthAlgorithm: AuthOpenSystem, AuthSeq: 1, Status: StatusSuccess},
		{Subtype: SubtypeAssocRequest, DA: testAP, SA: testClient, BSSID: testAP, Seq: 6,
			SSID: "Free Public WiFi", Capability: CapESS},
		{Subtype: SubtypeAssocResponse, DA: testClient, SA: testAP, BSSID: testAP, Seq: 7,
			Capability: CapESS, Status: StatusSuccess, AssociationID: 0xc001},
		{Subtype: SubtypeDeauth, DA: testClient, SA: testAP, BSSID: testAP, Seq: 8,
			Reason: ReasonDeauthLeaving},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		t.Run(f.Subtype.String(), func(t *testing.T) {
			b, err := f.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, f) {
				t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, f)
			}
		})
	}
}

func TestWireLenMatchesMarshal(t *testing.T) {
	for _, f := range sampleFrames() {
		b, err := f.Marshal()
		if err != nil {
			t.Fatalf("Marshal(%v): %v", f.Subtype, err)
		}
		if f.WireLen() != len(b) {
			t.Errorf("%v: WireLen = %d, len(Marshal) = %d", f.Subtype, f.WireLen(), len(b))
		}
	}
}

func TestMarshalRejectsLongSSID(t *testing.T) {
	f := &Frame{Subtype: SubtypeProbeResponse, SSID: strings.Repeat("x", 33)}
	if _, err := f.Marshal(); !errors.Is(err, ErrSSIDTooLong) {
		t.Errorf("err = %v, want ErrSSIDTooLong", err)
	}
}

func TestMarshalAcceptsMaxSSID(t *testing.T) {
	f := &Frame{Subtype: SubtypeProbeResponse, SSID: strings.Repeat("x", 32), Channel: 1}
	b, err := f.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.SSID != f.SSID {
		t.Errorf("SSID = %q", got.SSID)
	}
}

func TestMarshalRejectsWideSeq(t *testing.T) {
	f := &Frame{Subtype: SubtypeDeauth, Seq: 0x1000}
	if _, err := f.Marshal(); !errors.Is(err, ErrInvalidSeqNumber) {
		t.Errorf("err = %v, want ErrInvalidSeqNumber", err)
	}
}

func TestMarshalRejectsUnknownSubtype(t *testing.T) {
	f := &Frame{Subtype: FrameSubtype(0x7)}
	if _, err := f.Marshal(); !errors.Is(err, ErrUnknownSubtype) {
		t.Errorf("err = %v, want ErrUnknownSubtype", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid, err := (&Frame{Subtype: SubtypeDeauth, Reason: ReasonUnspecified}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{name: "short", b: valid[:10], want: ErrShortFrame},
		{name: "truncated body", b: valid[:macHeaderLen], want: ErrTruncatedBody},
		{name: "data frame", b: append([]byte{0x08, 0}, valid[2:]...), want: ErrNotManagement},
		{name: "bad version", b: append([]byte{0x01, 0}, valid[2:]...), want: ErrProtocolVersion},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.b); !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnmarshalTruncatedElement(t *testing.T) {
	f := &Frame{Subtype: SubtypeProbeRequest, SSID: "abc"}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Chop the element area mid-payload.
	if _, err := Unmarshal(b[:len(b)-3]); err == nil {
		t.Error("want error for truncated element")
	}
	// A lone element-ID byte with no length octet is also an error.
	if _, err := Unmarshal(b[:macHeaderLen+1]); err == nil {
		t.Error("want error for dangling element header")
	}
}

func TestUnmarshalMissingSSIDElement(t *testing.T) {
	f := &Frame{Subtype: SubtypeProbeResponse, SSID: "x", Channel: 1}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Keep only the fixed fields: elements (incl. SSID) removed.
	if _, err := Unmarshal(b[:macHeaderLen+12]); !errors.Is(err, ErrMissingSSID) {
		t.Errorf("err = %v, want ErrMissingSSID", err)
	}
}

func TestBroadcastAndDirectedProbePredicates(t *testing.T) {
	bcast := &Frame{Subtype: SubtypeProbeRequest}
	direct := &Frame{Subtype: SubtypeProbeRequest, SSID: "Net"}
	resp := &Frame{Subtype: SubtypeProbeResponse, SSID: "Net"}
	if !bcast.IsBroadcastProbe() || bcast.IsDirectedProbe() {
		t.Error("broadcast probe misclassified")
	}
	if direct.IsBroadcastProbe() || !direct.IsDirectedProbe() {
		t.Error("directed probe misclassified")
	}
	if resp.IsBroadcastProbe() || resp.IsDirectedProbe() {
		t.Error("probe response classified as probe request")
	}
}

func TestCapabilityPrivacy(t *testing.T) {
	if (CapESS).Privacy() {
		t.Error("open capability reports privacy")
	}
	if !(CapESS | CapPrivacy).Privacy() {
		t.Error("privacy capability not reported")
	}
}

func TestSubtypeStrings(t *testing.T) {
	subtypes := []FrameSubtype{
		SubtypeAssocRequest, SubtypeAssocResponse, SubtypeProbeRequest,
		SubtypeProbeResponse, SubtypeBeacon, SubtypeAuth, SubtypeDeauth,
		FrameSubtype(0x9),
	}
	seen := make(map[string]bool)
	for _, s := range subtypes {
		str := s.String()
		if str == "" {
			t.Errorf("empty String for %#x", uint8(s))
		}
		if seen[str] {
			t.Errorf("duplicate String %q", str)
		}
		seen[str] = true
	}
}

func TestFrameString(t *testing.T) {
	for _, f := range sampleFrames() {
		if f.String() == "" {
			t.Errorf("empty String for %v", f.Subtype)
		}
	}
	direct := &Frame{Subtype: SubtypeProbeRequest, SSID: "Cafe", SA: testClient}
	if !strings.Contains(direct.String(), "Cafe") {
		t.Errorf("directed probe String %q lacks SSID", direct.String())
	}
}

// TestQuickProbeResponseRoundTrip property-checks the marshal/unmarshal
// inverse over random field values for the most heavily used subtype.
func TestQuickProbeResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(ssidLen uint8, cap uint16, ch uint8, interval uint16, seq uint16) bool {
		ssid := make([]byte, int(ssidLen)%33)
		for i := range ssid {
			ssid[i] = byte('a' + rng.Intn(26))
		}
		frame := &Frame{
			Subtype:          SubtypeProbeResponse,
			DA:               RandomMAC(rng),
			SA:               RandomMAC(rng),
			BSSID:            RandomMAC(rng),
			Seq:              seq & 0x0fff,
			SSID:             string(ssid),
			Capability:       CapabilityInfo(cap),
			Channel:          ch,
			BeaconIntervalTU: interval,
		}
		b, err := frame.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnmarshalNeverPanics feeds random byte soup to Unmarshal.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b) // only absence of panics matters
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAirtimeProbeResponseNearNominal(t *testing.T) {
	f := &Frame{Subtype: SubtypeProbeResponse, SSID: "7-Eleven Free Wifi", Channel: 6}
	at := f.Airtime()
	if at < ProbeResponseAirtime*80/100 || at > ProbeResponseAirtime*120/100 {
		t.Errorf("probe response airtime %v not within 20%% of %v", at, ProbeResponseAirtime)
	}
}

func TestAirtimeMonotonicInSSIDLen(t *testing.T) {
	short := &Frame{Subtype: SubtypeProbeResponse, SSID: "a"}
	long := &Frame{Subtype: SubtypeProbeResponse, SSID: strings.Repeat("a", 32)}
	if short.Airtime() >= long.Airtime() {
		t.Errorf("airtime not monotonic: %v >= %v", short.Airtime(), long.Airtime())
	}
}

func TestMaxResponsesPerScanIs40(t *testing.T) {
	if MaxResponsesPerScan != 40 {
		t.Errorf("MaxResponsesPerScan = %d, want 40 (paper's limit)", MaxResponsesPerScan)
	}
}
