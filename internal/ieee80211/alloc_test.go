package ieee80211

import "testing"

// allocFrames is one frame per marshallable subtype, so the allocation
// contracts hold across every encode shape, not just probe responses.
func allocFrames() []Frame {
	sa := MAC{0x02, 1, 2, 3, 4, 5}
	da := MAC{0x02, 9, 8, 7, 6, 5}
	return []Frame{
		{Subtype: SubtypeProbeRequest, SA: sa, DA: BroadcastMAC, BSSID: BroadcastMAC, SSID: "Net"},
		{Subtype: SubtypeProbeResponse, SA: sa, DA: da, BSSID: sa, SSID: "CoffeeShop Guest", Capability: CapESS, Channel: 6, BeaconIntervalTU: 100},
		{Subtype: SubtypeBeacon, SA: sa, DA: BroadcastMAC, BSSID: sa, SSID: "Net", Capability: CapESS, Channel: 1},
		{Subtype: SubtypeAuth, SA: sa, DA: da, BSSID: sa, AuthAlgorithm: AuthOpenSystem, AuthSeq: 1},
		{Subtype: SubtypeAssocRequest, SA: sa, DA: da, BSSID: da, SSID: "Net", Capability: CapESS},
		{Subtype: SubtypeAssocResponse, SA: sa, DA: da, BSSID: sa, Status: StatusSuccess, AssociationID: 1},
		{Subtype: SubtypeDeauth, SA: sa, DA: da, BSSID: sa, Reason: ReasonUnspecified},
	}
}

// TestAppendMarshalZeroAlloc is the zero-alloc contract for the steady-state
// encode path: appending into a buffer with capacity performs no allocation,
// for every subtype.
func TestAppendMarshalZeroAlloc(t *testing.T) {
	for _, f := range allocFrames() {
		f := f
		buf := make([]byte, 0, 256)
		avg := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = f.AppendMarshal(buf[:0])
			if err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%v: AppendMarshal allocates %.2f/op, want 0", f.Subtype, avg)
		}
	}
}

// TestMarshalSingleAlloc pins Marshal to exactly one allocation: the
// result buffer, sized by WireLen with no growth during encoding.
func TestMarshalSingleAlloc(t *testing.T) {
	for _, f := range allocFrames() {
		f := f
		avg := testing.AllocsPerRun(200, func() {
			if _, err := f.Marshal(); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 1 {
			t.Errorf("%v: Marshal allocates %.2f/op, want exactly 1", f.Subtype, avg)
		}
	}
}

// TestAppendMarshalMatchesMarshal pins the two encoders to identical wire
// form, including when appending after existing bytes.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	for _, f := range allocFrames() {
		f := f
		want, err := f.Marshal()
		if err != nil {
			t.Fatalf("%v: Marshal: %v", f.Subtype, err)
		}
		if len(want) != f.WireLen() {
			t.Errorf("%v: len(Marshal) = %d, WireLen = %d", f.Subtype, len(want), f.WireLen())
		}
		prefix := []byte{0xde, 0xad}
		got, err := f.AppendMarshal(prefix)
		if err != nil {
			t.Fatalf("%v: AppendMarshal: %v", f.Subtype, err)
		}
		if string(got[:2]) != string(prefix) {
			t.Errorf("%v: AppendMarshal clobbered prefix", f.Subtype)
		}
		if string(got[2:]) != string(want) {
			t.Errorf("%v: AppendMarshal wire form differs from Marshal", f.Subtype)
		}
	}
}

// TestAppendMarshalErrorLeavesDst pins the error contract: a failed encode
// returns dst unchanged in length.
func TestAppendMarshalErrorLeavesDst(t *testing.T) {
	dst := []byte{1, 2, 3}
	bad := Frame{Subtype: FrameSubtype(0xf)} // unsupported subtype
	got, err := bad.AppendMarshal(dst)
	if err == nil {
		t.Fatal("unsupported subtype accepted")
	}
	if len(got) != len(dst) {
		t.Errorf("error path extended dst to %d bytes", len(got))
	}

	long := Frame{Subtype: SubtypeProbeRequest, SSID: string(make([]byte, 33))}
	if got, err := long.AppendMarshal(dst); err == nil || len(got) != len(dst) {
		t.Errorf("oversized SSID: err=%v len=%d", err, len(got))
	}
}
