// Package ieee80211 models the slice of IEEE 802.11 needed by the
// City-Hunter reproduction: management frames (probe request/response,
// authentication, association, deauthentication and beacons), the
// information elements they carry, capability bits, binary wire
// (un)marshalling, and airtime accounting.
//
// The wire layout follows the 802.11-2012 MAC header and management frame
// body formats closely enough that frames round-trip byte-exactly, which the
// property tests rely on. PHY concerns (modulation, retries, RTS/CTS) are
// abstracted into a simple airtime model; see Airtime.
package ieee80211

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
)

// MAC is a 48-bit IEEE 802 MAC address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses a colon-separated MAC address such as
// "02:00:5e:10:00:01".
func ParseMAC(s string) (MAC, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return MAC{}, fmt.Errorf("ieee80211: parse MAC %q: want 6 octets, got %d", s, len(parts))
	}
	var m MAC
	for i, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil || len(b) != 1 {
			return MAC{}, fmt.Errorf("ieee80211: parse MAC %q: bad octet %q", s, p)
		}
		m[i] = b[0]
	}
	return m, nil
}

// RandomMAC returns a locally administered unicast MAC drawn from rng.
// Modern phones randomise their probe MACs in exactly this form (the
// locally-administered bit set, the multicast bit clear).
func RandomMAC(rng *rand.Rand) MAC {
	var m MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	m[0] = (m[0] | 0x02) &^ 0x01
	return m
}

// RandomizedMACPrefix is the first octet of every MAC returned by
// DerivedRandomMAC. It has the locally-administered bit set and the
// multicast bit clear, and — crucially for the simulation — is disjoint
// from every identity block the population planes allocate from (the
// classic 0x02:… block, the per-site 0x06:… blocks, the far-field
// 0x02:0x10 block and the 0x0a:… infrastructure block), so a rotated MAC
// can never collide with a stable identity.
const RandomizedMACPrefix = 0x1a

// DerivedRandomMAC returns the n-th randomized MAC for a device whose
// stable identity is identity. The derivation is a pure hash — no RNG
// stream is consumed — so rotation schedules perturb nothing else in a
// seeded run and a suspended client resumes its rotation sequence exactly.
func DerivedRandomMAC(identity MAC, n uint32) MAC {
	z := uint64(identity[0])<<40 | uint64(identity[1])<<32 | uint64(identity[2])<<24 |
		uint64(identity[3])<<16 | uint64(identity[4])<<8 | uint64(identity[5])
	z ^= uint64(n) * 0x9e3779b97f4a7c15
	// splitmix64 finalizer: every identity/counter pair diffuses into all
	// 40 usable bits.
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return MAC{RandomizedMACPrefix, byte(z >> 32), byte(z >> 24), byte(z >> 16), byte(z >> 8), byte(z)}
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsLocallyAdministered reports whether the locally-administered bit is set,
// which is how randomised client MACs announce themselves.
func (m MAC) IsLocallyAdministered() bool { return m[0]&0x02 != 0 }

// String implements fmt.Stringer with the canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}
