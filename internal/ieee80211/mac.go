// Package ieee80211 models the slice of IEEE 802.11 needed by the
// City-Hunter reproduction: management frames (probe request/response,
// authentication, association, deauthentication and beacons), the
// information elements they carry, capability bits, binary wire
// (un)marshalling, and airtime accounting.
//
// The wire layout follows the 802.11-2012 MAC header and management frame
// body formats closely enough that frames round-trip byte-exactly, which the
// property tests rely on. PHY concerns (modulation, retries, RTS/CTS) are
// abstracted into a simple airtime model; see Airtime.
package ieee80211

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
)

// MAC is a 48-bit IEEE 802 MAC address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses a colon-separated MAC address such as
// "02:00:5e:10:00:01".
func ParseMAC(s string) (MAC, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return MAC{}, fmt.Errorf("ieee80211: parse MAC %q: want 6 octets, got %d", s, len(parts))
	}
	var m MAC
	for i, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil || len(b) != 1 {
			return MAC{}, fmt.Errorf("ieee80211: parse MAC %q: bad octet %q", s, p)
		}
		m[i] = b[0]
	}
	return m, nil
}

// RandomMAC returns a locally administered unicast MAC drawn from rng.
// Modern phones randomise their probe MACs in exactly this form (the
// locally-administered bit set, the multicast bit clear).
func RandomMAC(rng *rand.Rand) MAC {
	var m MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	m[0] = (m[0] | 0x02) &^ 0x01
	return m
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsLocallyAdministered reports whether the locally-administered bit is set,
// which is how randomised client MACs announce themselves.
func (m MAC) IsLocallyAdministered() bool { return m[0]&0x02 != 0 }

// String implements fmt.Stringer with the canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}
