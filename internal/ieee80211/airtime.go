package ieee80211

import "time"

// Timing constants for the simulated medium. The scan-window values are the
// ones the paper's analysis rests on: a client waits MinChannelTime for a
// first probe response and at most MaxChannelTime after one arrived, and a
// probe response occupies roughly ProbeResponseAirtime of the channel — so
// about MaxResponsesPerScan responses from one AP fit into one scan.
const (
	// MinChannelTime is how long a scanning client waits for the first
	// probe response.
	MinChannelTime = 10 * time.Millisecond
	// MaxChannelTime is how much longer it keeps listening once a first
	// response has arrived.
	MaxChannelTime = 10 * time.Millisecond
	// ProbeResponseAirtime is the nominal per-response channel cost
	// (≈0.25 ms per the measurement the paper cites).
	ProbeResponseAirtime = 250 * time.Microsecond
	// MaxResponsesPerScan is how many responses from one AP fit in one
	// scan window: MaxChannelTime / ProbeResponseAirtime = 40.
	MaxResponsesPerScan = int(MaxChannelTime / ProbeResponseAirtime)

	// txOverhead models the fixed per-frame channel access cost: DIFS,
	// the mean contention backoff and the PLCP preamble. Together with
	// the 11 Mb/s payload rate below it puts a typical probe response at
	// ≈0.25 ms, matching ProbeResponseAirtime.
	txOverhead = 192 * time.Microsecond
	// payloadNanosPerByte is the payload cost at the 11 Mb/s management
	// rate: 8 bits / 11 Mb/s ≈ 727 ns per byte.
	payloadNanosPerByte = 8 * 1000 / 11
)

// DefaultScanChannels is the channel sequence clients visit per scan: the
// three non-overlapping 2.4 GHz channels where virtually all public APs
// (and every KARMA-family attacker) sit.
var DefaultScanChannels = []uint8{1, 6, 11}

// Airtime returns the time f occupies the medium: fixed channel-access
// overhead plus the payload at the management data rate. A typical probe
// response (~60–90 bytes) costs ≈0.25 ms, which is what limits a client to
// roughly 40 responses per scan.
func (f *Frame) Airtime() time.Duration {
	return txOverhead + time.Duration(f.WireLen()*payloadNanosPerByte)*time.Nanosecond
}
