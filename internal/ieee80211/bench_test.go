package ieee80211

import "testing"

var benchFrame = &Frame{
	Subtype:          SubtypeProbeResponse,
	DA:               MAC{0x02, 1, 2, 3, 4, 5},
	SA:               MAC{0x0a, 1, 2, 3, 4, 5},
	BSSID:            MAC{0x0a, 1, 2, 3, 4, 5},
	Seq:              100,
	SSID:             "7-Eleven Free Wifi",
	Capability:       CapESS,
	Channel:          6,
	BeaconIntervalTU: 100,
}

func BenchmarkMarshalProbeResponse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchFrame.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalProbeResponse(b *testing.B) {
	wire, err := benchFrame.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAirtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchFrame.Airtime()
	}
}
