package ieee80211

import "fmt"

// FrameSubtype identifies the management frame subtypes this model supports.
// Values match the 802.11 subtype field for management frames (type 00).
type FrameSubtype uint8

// Management frame subtypes (802.11-2012 table 8-1).
const (
	SubtypeAssocRequest  FrameSubtype = 0x0
	SubtypeAssocResponse FrameSubtype = 0x1
	SubtypeProbeRequest  FrameSubtype = 0x4
	SubtypeProbeResponse FrameSubtype = 0x5
	SubtypeBeacon        FrameSubtype = 0x8
	SubtypeDeauth        FrameSubtype = 0xc
	SubtypeAuth          FrameSubtype = 0xb
)

// String implements fmt.Stringer.
func (s FrameSubtype) String() string {
	switch s {
	case SubtypeAssocRequest:
		return "assoc-request"
	case SubtypeAssocResponse:
		return "assoc-response"
	case SubtypeProbeRequest:
		return "probe-request"
	case SubtypeProbeResponse:
		return "probe-response"
	case SubtypeBeacon:
		return "beacon"
	case SubtypeAuth:
		return "auth"
	case SubtypeDeauth:
		return "deauth"
	default:
		return fmt.Sprintf("subtype(%#x)", uint8(s))
	}
}

// StatusCode is an 802.11 status code carried by auth and assoc responses.
type StatusCode uint16

// Status codes used in this model.
const (
	StatusSuccess          StatusCode = 0
	StatusUnspecifiedFail  StatusCode = 1
	StatusCapsUnsupported  StatusCode = 10
	StatusDeniedOutOfRange StatusCode = 17
)

// ReasonCode is an 802.11 reason code carried by deauthentication frames.
type ReasonCode uint16

// Reason codes used in this model.
const (
	ReasonUnspecified      ReasonCode = 1
	ReasonPrevAuthExpired  ReasonCode = 2
	ReasonDeauthLeaving    ReasonCode = 3
	ReasonInactivity       ReasonCode = 4
	ReasonClass3FromNonAss ReasonCode = 7
)

// AuthAlgorithm identifies the authentication algorithm in auth frames.
type AuthAlgorithm uint16

// Authentication algorithms.
const (
	AuthOpenSystem AuthAlgorithm = 0
	AuthSharedKey  AuthAlgorithm = 1
)

// CapabilityInfo is the 16-bit capability field of beacons, probe responses
// and association frames.
type CapabilityInfo uint16

// Capability bits.
const (
	CapESS     CapabilityInfo = 1 << 0
	CapIBSS    CapabilityInfo = 1 << 1
	CapPrivacy CapabilityInfo = 1 << 4 // set ⇒ network requires encryption
)

// Privacy reports whether the privacy (encryption required) bit is set.
func (c CapabilityInfo) Privacy() bool { return c&CapPrivacy != 0 }

// Frame is one 802.11 management frame. The body fields that are meaningful
// depend on Subtype; Marshal enforces which fields each subtype carries.
type Frame struct {
	Subtype FrameSubtype
	// Addressing. DA is the destination (addr1), SA the source (addr2),
	// BSSID the BSS identifier (addr3).
	DA    MAC
	SA    MAC
	BSSID MAC
	// Seq is the 12-bit sequence number.
	Seq uint16

	// SSID is carried by probe requests (empty for broadcast/wildcard
	// probes), probe responses, beacons and association requests.
	SSID string
	// Fingerprint is an implementation-invariant device fingerprint derived
	// from the probe's information-element layout (ordering, supported
	// capabilities, vendor elements). Real chipsets leak such a fingerprint
	// even under MAC randomization; the model folds it into a single opaque
	// value. Zero means "no distinguishing fingerprint" and nothing is
	// emitted on the wire, so legacy captures stay byte-identical. Only
	// probe requests carry it.
	Fingerprint uint32
	// Capability is carried by probe responses, beacons and association
	// frames.
	Capability CapabilityInfo
	// Channel is the DS-parameter-set channel in beacons and probe
	// responses.
	Channel uint8
	// BeaconIntervalTU is the beacon interval in time units (1 TU =
	// 1024 µs) for beacons and probe responses.
	BeaconIntervalTU uint16

	// Auth fields.
	AuthAlgorithm AuthAlgorithm
	AuthSeq       uint16
	Status        StatusCode

	// Assoc response field.
	AssociationID uint16

	// Deauth field.
	Reason ReasonCode
}

// IsBroadcastProbe reports whether f is a wildcard (broadcast) probe
// request: one that discloses no SSID.
func (f *Frame) IsBroadcastProbe() bool {
	return f.Subtype == SubtypeProbeRequest && f.SSID == ""
}

// IsDirectedProbe reports whether f is a probe request naming a specific
// SSID from the sender's preferred network list.
func (f *Frame) IsDirectedProbe() bool {
	return f.Subtype == SubtypeProbeRequest && f.SSID != ""
}

// String implements fmt.Stringer with a compact debug form.
func (f *Frame) String() string {
	switch f.Subtype {
	case SubtypeProbeRequest:
		if f.SSID == "" {
			return fmt.Sprintf("probe-request[broadcast] %s", f.SA)
		}
		return fmt.Sprintf("probe-request[%q] %s", f.SSID, f.SA)
	case SubtypeProbeResponse:
		return fmt.Sprintf("probe-response[%q] %s->%s", f.SSID, f.SA, f.DA)
	case SubtypeDeauth:
		return fmt.Sprintf("deauth(reason=%d) %s->%s", f.Reason, f.SA, f.DA)
	default:
		return fmt.Sprintf("%s %s->%s", f.Subtype, f.SA, f.DA)
	}
}
