package ieee80211

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// macHeaderLen is the length of the 3-address management MAC header:
// frame control (2), duration (2), three addresses (18), sequence
// control (2).
const macHeaderLen = 24

// errors returned by Marshal and Unmarshal.
var (
	ErrSSIDTooLong      = errors.New("ieee80211: SSID exceeds 32 octets")
	ErrShortFrame       = errors.New("ieee80211: frame shorter than MAC header")
	ErrNotManagement    = errors.New("ieee80211: not a management frame")
	ErrUnknownSubtype   = errors.New("ieee80211: unsupported frame subtype")
	ErrTruncatedBody    = errors.New("ieee80211: truncated frame body")
	ErrProtocolVersion  = errors.New("ieee80211: unsupported protocol version")
	ErrMissingSSID      = errors.New("ieee80211: frame body lacks mandatory SSID element")
	ErrInvalidSeqNumber = errors.New("ieee80211: sequence number exceeds 12 bits")
)

// Marshal encodes f into its 802.11 wire form (without FCS). It allocates
// exactly one buffer of WireLen bytes; hot paths that encode repeatedly
// should hold a scratch buffer and use AppendMarshal instead.
func (f *Frame) Marshal() ([]byte, error) {
	return f.AppendMarshal(make([]byte, 0, f.WireLen()))
}

// AppendMarshal appends f's 802.11 wire form (without FCS) to dst and
// returns the extended slice. When dst has capacity for WireLen more bytes
// the encode performs no allocation, which is what lets capture and replay
// paths reuse one scratch buffer per writer. On error dst is returned
// unchanged.
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if !ValidSSID(f.SSID) {
		return dst, fmt.Errorf("%w: %d octets", ErrSSIDTooLong, len(f.SSID))
	}
	if f.Seq > 0x0fff {
		return dst, fmt.Errorf("%w: %d", ErrInvalidSeqNumber, f.Seq)
	}
	var hdr [macHeaderLen]byte
	// Frame control: version 0, type 00 (management), subtype in bits 4-7
	// of the first octet.
	hdr[0] = byte(f.Subtype) << 4
	// hdr[1] flags all zero; hdr[2:4] duration left zero (virtual medium).
	copy(hdr[4:10], f.DA[:])
	copy(hdr[10:16], f.SA[:])
	copy(hdr[16:22], f.BSSID[:])
	binary.LittleEndian.PutUint16(hdr[22:24], f.Seq<<4)

	b := dst
	switch f.Subtype {
	case SubtypeProbeRequest:
		b = append(b, hdr[:]...)
		b = appendElementString(b, elemSSID, f.SSID)
		b = appendElement(b, elemSupportedRates, defaultRates)
		if f.Fingerprint != 0 {
			var fp [fingerprintElemLen]byte
			copy(fp[:3], fingerprintOUI[:])
			binary.LittleEndian.PutUint32(fp[3:7], f.Fingerprint)
			b = appendElement(b, elemVendorSpecific, fp[:])
		}
	case SubtypeProbeResponse, SubtypeBeacon:
		b = append(b, hdr[:]...)
		var fixed [12]byte // timestamp (8) stays zero in the simulation
		binary.LittleEndian.PutUint16(fixed[8:10], f.BeaconIntervalTU)
		binary.LittleEndian.PutUint16(fixed[10:12], uint16(f.Capability))
		b = append(b, fixed[:]...)
		b = appendElementString(b, elemSSID, f.SSID)
		b = appendElement(b, elemSupportedRates, defaultRates)
		b = append(b, elemDSParameterSet, 1, f.Channel)
	case SubtypeAuth:
		b = append(b, hdr[:]...)
		var fixed [6]byte
		binary.LittleEndian.PutUint16(fixed[0:2], uint16(f.AuthAlgorithm))
		binary.LittleEndian.PutUint16(fixed[2:4], f.AuthSeq)
		binary.LittleEndian.PutUint16(fixed[4:6], uint16(f.Status))
		b = append(b, fixed[:]...)
	case SubtypeAssocRequest:
		b = append(b, hdr[:]...)
		var fixed [4]byte
		binary.LittleEndian.PutUint16(fixed[0:2], uint16(f.Capability))
		binary.LittleEndian.PutUint16(fixed[2:4], 10) // listen interval
		b = append(b, fixed[:]...)
		b = appendElementString(b, elemSSID, f.SSID)
		b = appendElement(b, elemSupportedRates, defaultRates)
	case SubtypeAssocResponse:
		b = append(b, hdr[:]...)
		var fixed [6]byte
		binary.LittleEndian.PutUint16(fixed[0:2], uint16(f.Capability))
		binary.LittleEndian.PutUint16(fixed[2:4], uint16(f.Status))
		binary.LittleEndian.PutUint16(fixed[4:6], f.AssociationID)
		b = append(b, fixed[:]...)
	case SubtypeDeauth:
		b = append(b, hdr[:]...)
		var fixed [2]byte
		binary.LittleEndian.PutUint16(fixed[0:2], uint16(f.Reason))
		b = append(b, fixed[:]...)
	default:
		return dst, fmt.Errorf("%w: %v", ErrUnknownSubtype, f.Subtype)
	}
	return b, nil
}

// Unmarshal decodes an 802.11 management frame from wire form. It is the
// inverse of Marshal: Unmarshal(Marshal(f)) reproduces f for every field
// Marshal encodes.
func Unmarshal(b []byte) (*Frame, error) {
	if len(b) < macHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(b))
	}
	fc := b[0]
	if fc&0x03 != 0 {
		return nil, ErrProtocolVersion
	}
	if fc>>2&0x03 != 0 {
		return nil, ErrNotManagement
	}
	f := &Frame{Subtype: FrameSubtype(fc >> 4)}
	copy(f.DA[:], b[4:10])
	copy(f.SA[:], b[10:16])
	copy(f.BSSID[:], b[16:22])
	f.Seq = binary.LittleEndian.Uint16(b[22:24]) >> 4
	body := b[macHeaderLen:]

	switch f.Subtype {
	case SubtypeProbeRequest:
		return f, f.parseElements(body, false)
	case SubtypeProbeResponse, SubtypeBeacon:
		if len(body) < 12 {
			return nil, ErrTruncatedBody
		}
		f.BeaconIntervalTU = binary.LittleEndian.Uint16(body[8:10])
		f.Capability = CapabilityInfo(binary.LittleEndian.Uint16(body[10:12]))
		return f, f.parseElements(body[12:], true)
	case SubtypeAuth:
		if len(body) < 6 {
			return nil, ErrTruncatedBody
		}
		f.AuthAlgorithm = AuthAlgorithm(binary.LittleEndian.Uint16(body[0:2]))
		f.AuthSeq = binary.LittleEndian.Uint16(body[2:4])
		f.Status = StatusCode(binary.LittleEndian.Uint16(body[4:6]))
		return f, nil
	case SubtypeAssocRequest:
		if len(body) < 4 {
			return nil, ErrTruncatedBody
		}
		f.Capability = CapabilityInfo(binary.LittleEndian.Uint16(body[0:2]))
		return f, f.parseElements(body[4:], true)
	case SubtypeAssocResponse:
		if len(body) < 6 {
			return nil, ErrTruncatedBody
		}
		f.Capability = CapabilityInfo(binary.LittleEndian.Uint16(body[0:2]))
		f.Status = StatusCode(binary.LittleEndian.Uint16(body[2:4]))
		f.AssociationID = binary.LittleEndian.Uint16(body[4:6])
		return f, nil
	case SubtypeDeauth:
		if len(body) < 2 {
			return nil, ErrTruncatedBody
		}
		f.Reason = ReasonCode(binary.LittleEndian.Uint16(body[0:2]))
		return f, nil
	default:
		return nil, fmt.Errorf("%w: %v", ErrUnknownSubtype, f.Subtype)
	}
}

// parseElements walks the information elements, filling SSID and Channel.
// ssidRequired marks frames whose body must carry an SSID element (probe
// responses, beacons, association requests); probe requests carry one too
// but it may be zero length (wildcard) so presence is still required there —
// however we accept its absence as a wildcard for robustness.
func (f *Frame) parseElements(body []byte, ssidRequired bool) error {
	r := elementReader{buf: body}
	sawSSID := false
	for {
		id, payload, ok, err := r.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		switch id {
		case elemSSID:
			if len(payload) > MaxSSIDLen {
				return ErrSSIDTooLong
			}
			f.SSID = string(payload)
			sawSSID = true
		case elemDSParameterSet:
			if len(payload) == 1 {
				f.Channel = payload[0]
			}
		case elemVendorSpecific:
			if len(payload) == fingerprintElemLen &&
				payload[0] == fingerprintOUI[0] && payload[1] == fingerprintOUI[1] && payload[2] == fingerprintOUI[2] {
				f.Fingerprint = binary.LittleEndian.Uint32(payload[3:7])
			}
		}
	}
	if ssidRequired && !sawSSID {
		return ErrMissingSSID
	}
	return nil
}

// WireLen returns the marshalled length of f in bytes without encoding it.
// It matches len(Marshal(f)) exactly and is what the airtime model uses.
func (f *Frame) WireLen() int {
	n := macHeaderLen
	switch f.Subtype {
	case SubtypeProbeRequest:
		n += 2 + len(f.SSID) + 2 + len(defaultRates)
		if f.Fingerprint != 0 {
			n += 2 + fingerprintElemLen
		}
	case SubtypeProbeResponse, SubtypeBeacon:
		n += 12 + 2 + len(f.SSID) + 2 + len(defaultRates) + 2 + 1
	case SubtypeAuth:
		n += 6
	case SubtypeAssocRequest:
		n += 4 + 2 + len(f.SSID) + 2 + len(defaultRates)
	case SubtypeAssocResponse:
		n += 6
	case SubtypeDeauth:
		n += 2
	}
	return n
}
