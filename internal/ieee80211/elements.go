package ieee80211

import "fmt"

// Information element IDs (802.11-2012 table 8-54).
const (
	elemSSID           = 0
	elemSupportedRates = 1
	elemDSParameterSet = 3
	elemVendorSpecific = 221
)

// fingerprintOUI tags the vendor-specific element that carries the model's
// condensed IE fingerprint (a locally-administered OUI, so it cannot clash
// with a real vendor assignment).
var fingerprintOUI = [3]byte{0x02, 0x43, 0x48}

// fingerprintElemLen is the payload length of the fingerprint element:
// 3-byte OUI plus a 4-byte little-endian fingerprint value.
const fingerprintElemLen = 7

// MaxSSIDLen is the maximum SSID length in octets.
const MaxSSIDLen = 32

// defaultRates is the 802.11b/g basic rate set advertised in every frame
// that carries a supported-rates element, encoded in 500 kb/s units with the
// basic-rate bit set on the 802.11b rates.
var defaultRates = []byte{0x82, 0x84, 0x8b, 0x96, 0x0c, 0x12, 0x18, 0x24}

// ValidSSID reports whether s is a legal SSID: 0–32 octets.
func ValidSSID(s string) bool { return len(s) <= MaxSSIDLen }

// appendElement appends one information element (ID, length, payload).
func appendElement(b []byte, id byte, payload []byte) []byte {
	b = append(b, id, byte(len(payload)))
	return append(b, payload...)
}

// appendElementString is appendElement for string payloads (SSIDs); it
// avoids the string-to-bytes conversion so encoding stays allocation-free.
func appendElementString(b []byte, id byte, payload string) []byte {
	b = append(b, id, byte(len(payload)))
	return append(b, payload...)
}

// elementReader iterates over the information elements in a frame body tail.
type elementReader struct {
	buf []byte
	off int
}

// next returns the next element, or ok=false at the end of the buffer. A
// truncated element is an error.
func (r *elementReader) next() (id byte, payload []byte, ok bool, err error) {
	if r.off == len(r.buf) {
		return 0, nil, false, nil
	}
	if len(r.buf)-r.off < 2 {
		return 0, nil, false, fmt.Errorf("ieee80211: truncated element header at offset %d", r.off)
	}
	id = r.buf[r.off]
	n := int(r.buf[r.off+1])
	r.off += 2
	if len(r.buf)-r.off < n {
		return 0, nil, false, fmt.Errorf("ieee80211: element %d claims %d bytes, %d remain", id, n, len(r.buf)-r.off)
	}
	payload = r.buf[r.off : r.off+n]
	r.off += n
	return id, payload, true, nil
}
