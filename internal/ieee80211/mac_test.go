package ieee80211

import (
	"math/rand"
	"testing"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		give    string
		want    MAC
		wantErr bool
	}{
		{give: "02:00:5e:10:00:01", want: MAC{0x02, 0x00, 0x5e, 0x10, 0x00, 0x01}},
		{give: "ff:ff:ff:ff:ff:ff", want: BroadcastMAC},
		{give: "00:00:00:00:00:00", want: MAC{}},
		{give: "02:00:5e:10:00", wantErr: true},
		{give: "02:00:5e:10:00:01:02", wantErr: true},
		{give: "zz:00:5e:10:00:01", wantErr: true},
		{give: "0200:5e:10:00:01:02", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseMAC(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		m := RandomMAC(rng)
		back, err := ParseMAC(m.String())
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", m.String(), err)
		}
		if back != m {
			t.Fatalf("round trip: %v != %v", back, m)
		}
	}
}

func TestRandomMACIsLocalUnicast(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		m := RandomMAC(rng)
		if !m.IsLocallyAdministered() {
			t.Fatalf("%v lacks locally-administered bit", m)
		}
		if m[0]&0x01 != 0 {
			t.Fatalf("%v has multicast bit", m)
		}
		if m.IsBroadcast() {
			t.Fatalf("random MAC is broadcast")
		}
	}
}

func TestRandomMACUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[MAC]bool, 1000)
	for i := 0; i < 1000; i++ {
		m := RandomMAC(rng)
		if seen[m] {
			t.Fatalf("duplicate MAC %v after %d draws", m, i)
		}
		seen[m] = true
	}
}

func TestDerivedRandomMACShape(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		m := DerivedRandomMAC(RandomMAC(rng), uint32(i))
		if m[0] != RandomizedMACPrefix {
			t.Fatalf("%v not in the 0x%02x randomized block", m, RandomizedMACPrefix)
		}
		if !m.IsLocallyAdministered() {
			t.Fatalf("%v lacks locally-administered bit", m)
		}
		if m[0]&0x01 != 0 {
			t.Fatalf("%v has multicast bit", m)
		}
	}
}

func TestDerivedRandomMACDeterministic(t *testing.T) {
	id := MAC{0x02, 0x00, 0xde, 0xad, 0xbe, 0xef}
	for n := uint32(0); n < 8; n++ {
		if a, b := DerivedRandomMAC(id, n), DerivedRandomMAC(id, n); a != b {
			t.Fatalf("counter %d: %v != %v", n, a, b)
		}
	}
}

// TestDerivedRandomMACDisjointFromIdentityBlocks guards the invariant the
// whole identity/observable split rests on: a rotated MAC can never collide
// with any stable identity MAC the simulation allocates. Identity planes
// draw from the classic 0x02:0x00 block, the per-site 0x06:… blocks, the
// far-field 0x02:0x10 block and the 0x0a:… infrastructure block — all with
// a first octet different from RandomizedMACPrefix.
func TestDerivedRandomMACDisjointFromIdentityBlocks(t *testing.T) {
	identityPrefixes := []byte{0x02, 0x06, 0x0a}
	for _, p := range identityPrefixes {
		if p == RandomizedMACPrefix {
			t.Fatalf("identity prefix 0x%02x collides with the randomized block", p)
		}
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 500; i++ {
		m := DerivedRandomMAC(RandomMAC(rng), uint32(i%7))
		for _, p := range identityPrefixes {
			if m[0] == p {
				t.Fatalf("derived MAC %v landed in identity block 0x%02x", m, p)
			}
		}
	}
}

// TestDerivedRandomMACCollisionRegression: the splitmix64 derivation must
// spread a realistic population's rotation sequences across the 40-bit tail
// without collisions. 1000 identities × 32 rotations each (32k MACs) is far
// denser than any simulated venue.
func TestDerivedRandomMACCollisionRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	seen := make(map[MAC]bool, 32000)
	for i := 0; i < 1000; i++ {
		id := RandomMAC(rng)
		for n := uint32(1); n <= 32; n++ {
			m := DerivedRandomMAC(id, n)
			if seen[m] {
				t.Fatalf("derived MAC collision at %v (identity %v, rotation %d)", m, id, n)
			}
			seen[m] = true
		}
	}
}

func TestIsBroadcast(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() {
		t.Error("BroadcastMAC.IsBroadcast() = false")
	}
	if (MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xfe}).IsBroadcast() {
		t.Error("near-broadcast reported broadcast")
	}
}
