package ieee80211

import (
	"math/rand"
	"testing"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		give    string
		want    MAC
		wantErr bool
	}{
		{give: "02:00:5e:10:00:01", want: MAC{0x02, 0x00, 0x5e, 0x10, 0x00, 0x01}},
		{give: "ff:ff:ff:ff:ff:ff", want: BroadcastMAC},
		{give: "00:00:00:00:00:00", want: MAC{}},
		{give: "02:00:5e:10:00", wantErr: true},
		{give: "02:00:5e:10:00:01:02", wantErr: true},
		{give: "zz:00:5e:10:00:01", wantErr: true},
		{give: "0200:5e:10:00:01:02", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseMAC(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		m := RandomMAC(rng)
		back, err := ParseMAC(m.String())
		if err != nil {
			t.Fatalf("ParseMAC(%q): %v", m.String(), err)
		}
		if back != m {
			t.Fatalf("round trip: %v != %v", back, m)
		}
	}
}

func TestRandomMACIsLocalUnicast(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		m := RandomMAC(rng)
		if !m.IsLocallyAdministered() {
			t.Fatalf("%v lacks locally-administered bit", m)
		}
		if m[0]&0x01 != 0 {
			t.Fatalf("%v has multicast bit", m)
		}
		if m.IsBroadcast() {
			t.Fatalf("random MAC is broadcast")
		}
	}
}

func TestRandomMACUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := make(map[MAC]bool, 1000)
	for i := 0; i < 1000; i++ {
		m := RandomMAC(rng)
		if seen[m] {
			t.Fatalf("duplicate MAC %v after %d draws", m, i)
		}
		seen[m] = true
	}
}

func TestIsBroadcast(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() {
		t.Error("BroadcastMAC.IsBroadcast() = false")
	}
	if (MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xfe}).IsBroadcast() {
		t.Error("near-broadcast reported broadcast")
	}
}
