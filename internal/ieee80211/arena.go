package ieee80211

// frameArenaChunk is how many frames a FrameArena allocates at once. Large
// enough to amortise allocation across a burst of probe responses, small
// enough that a mostly-idle station wastes little memory.
const frameArenaChunk = 64

// FrameArena batch-allocates Frames for stations that emit them at high
// rate. Receivers on the simulated medium may hold a delivered *Frame
// indefinitely (clients buffer the responses of a whole scan window), so
// frames can never be recycled — but they can be carved out of per-station
// chunks, turning one heap allocation per frame into one per
// frameArenaChunk frames.
//
// Each New returns a pointer no one else has ever seen; the arena never
// reuses storage, it only batches it. A chunk stays reachable until every
// frame carved from it is dropped, so arenas suit stations whose frames
// have similar lifetimes (an attacker's replies within a run).
//
// The zero value is ready to use. FrameArena is not safe for concurrent
// use; in the simulation each station owns one.
type FrameArena struct {
	chunk []Frame
}

// New copies f into arena-backed storage and returns its address.
func (a *FrameArena) New(f Frame) *Frame {
	if len(a.chunk) == 0 {
		a.chunk = make([]Frame, frameArenaChunk)
	}
	p := &a.chunk[0]
	a.chunk = a.chunk[1:]
	*p = f
	return p
}
