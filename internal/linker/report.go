package linker

import (
	"fmt"

	"cityhunter/internal/ieee80211"
)

// Report grades a linker's MAC-to-track clustering against ground truth
// with the standard pairwise clustering metrics: every pair of observed
// MACs is either correctly grouped (same device, same track), wrongly
// merged (different devices, same track) or wrongly split (same device,
// different tracks).
type Report struct {
	Linker  string // linker name
	MACs    int    // observed MACs with known ground truth
	Tracks  int    // distinct tracks over those MACs
	Devices int    // distinct true devices over those MACs
	Links   int    // cross-MAC merges the linker performed

	TruePairs   int // same-device pairs grouped together
	FalsePairs  int // cross-device pairs grouped together
	MissedPairs int // same-device pairs split apart

	Precision float64
	Recall    float64
	F1        float64
}

// NewReport grades assignments against truth, which maps every observed
// MAC to its device's stable identity MAC. MACs absent from truth (the
// attacker's own transmissions, sentinels) are ignored.
func NewReport(name string, assignments map[ieee80211.MAC]TrackID, links int, truth map[ieee80211.MAC]ieee80211.MAC) Report {
	type cell struct {
		track  TrackID
		device ieee80211.MAC
	}
	cells := make(map[cell]int)
	perTrack := make(map[TrackID]int)
	perDevice := make(map[ieee80211.MAC]int)
	n := 0
	for m, id := range assignments {
		dev, ok := truth[m]
		if !ok {
			continue
		}
		n++
		cells[cell{id, dev}]++
		perTrack[id]++
		perDevice[dev]++
	}
	pairs := func(k int) int { return k * (k - 1) / 2 }
	tp := 0
	for _, k := range cells {
		tp += pairs(k)
	}
	grouped, same := 0, 0
	for _, k := range perTrack {
		grouped += pairs(k)
	}
	for _, k := range perDevice {
		same += pairs(k)
	}
	r := Report{
		Linker:      name,
		MACs:        n,
		Tracks:      len(perTrack),
		Devices:     len(perDevice),
		Links:       links,
		TruePairs:   tp,
		FalsePairs:  grouped - tp,
		MissedPairs: same - tp,
	}
	r.Precision = ratio(tp, grouped)
	r.Recall = ratio(tp, same)
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// ratio returns num/den, defining an empty denominator as perfect: a run
// with no linkable pairs has nothing to get wrong.
func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// String renders the report as a single summary line.
func (r Report) String() string {
	return fmt.Sprintf("%s: %d MACs -> %d tracks (%d devices, %d links)  P=%.3f R=%.3f F1=%.3f",
		r.Linker, r.MACs, r.Tracks, r.Devices, r.Links, r.Precision, r.Recall, r.F1)
}
