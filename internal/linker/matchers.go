package linker

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cityhunter/internal/ieee80211"
)

// Matcher scores how strongly a never-seen MAC's first observation matches
// an existing track. Positive scores are evidence for "same device",
// negative scores against; a large negative score acts as a veto.
type Matcher interface {
	Name() string
	Score(o Observation, t *Track) float64
}

// veto is a score so negative no combination of positive evidence can
// overcome it (fingerprints that definitively differ).
const veto = -1000

// SeqContinuity scores the 12-bit sequence counter: phones keep counting
// across MAC rotations, so the first frame under a fresh MAC carries a
// sequence number just past the last frame of the previous one. A small
// positive modular gap within Horizon is strong evidence of continuity.
type SeqContinuity struct {
	// MaxGap is the largest modular sequence advance still considered
	// continuous (frames lost or sent off-channel widen the gap).
	MaxGap uint16
	// Horizon bounds how stale a track may be before continuity evidence
	// expires; counters of distinct devices alias over long windows.
	Horizon time.Duration
}

// NewSeqContinuity returns the matcher with the calibrated defaults.
func NewSeqContinuity() *SeqContinuity {
	return &SeqContinuity{MaxGap: 64, Horizon: 3 * time.Minute}
}

// Name implements Matcher.
func (s *SeqContinuity) Name() string { return "seq" }

// Score implements Matcher.
func (s *SeqContinuity) Score(o Observation, t *Track) float64 {
	if o.At-t.LastAt > s.Horizon {
		return 0
	}
	delta := (o.Seq - t.LastSeq) & 0x0fff
	if delta == 0 || delta > s.MaxGap {
		return 0
	}
	return 1 - float64(delta-1)/float64(s.MaxGap)
}

// FingerprintMatch scores the condensed IE fingerprint. Matching nonzero
// fingerprints are supporting evidence — deliberately weak, because many
// phones share a chipset personality, so a match alone must never clear a
// composite threshold. Differing nonzero fingerprints are a hard veto —
// two chipset personalities cannot be one device.
type FingerprintMatch struct{}

// NewFingerprintMatch returns the fingerprint matcher.
func NewFingerprintMatch() *FingerprintMatch { return &FingerprintMatch{} }

// Name implements Matcher.
func (FingerprintMatch) Name() string { return "fp" }

// Score implements Matcher.
func (FingerprintMatch) Score(o Observation, t *Track) float64 {
	if o.Fingerprint == 0 || t.Fingerprint == 0 {
		return 0
	}
	if o.Fingerprint == t.Fingerprint {
		return 0.3
	}
	return veto
}

// PNLOrder scores the directed-probe SSID against the track's PNL-order
// signature: clients probe their preferred networks in a stable order, so
// the first directed probe after a rotation names the same head-of-list
// SSID as before. The scores are kept below common composite thresholds —
// crowds share popular head SSIDs, so PNL order corroborates but must not
// link on its own there (a dedicated PNL-only linker uses a lower
// threshold).
type PNLOrder struct{}

// NewPNLOrder returns the PNL-order matcher.
func NewPNLOrder() *PNLOrder { return &PNLOrder{} }

// Name implements Matcher.
func (PNLOrder) Name() string { return "pnl" }

// Score implements Matcher.
func (PNLOrder) Score(o Observation, t *Track) float64 {
	if !o.Directed || o.SSID == "" {
		return 0
	}
	if len(t.PNLSig) > 0 && o.SSID == t.PNLSig[0] {
		return 0.4
	}
	if t.knows(o.SSID) {
		return 0.25
	}
	return -0.3
}

// Composite merges an unseen MAC into the best-scoring existing track when
// the summed matcher scores clear Threshold, and opens a new track
// otherwise. Candidate tracks are scored in creation order and ties keep
// the earliest track, so linking is fully deterministic.
type Composite struct {
	matchers  []Matcher
	threshold float64

	tracks []*Track
	byMAC  map[ieee80211.MAC]TrackID
	links  int
}

// NewComposite returns a scoring linker over the given matchers. The
// threshold sets how much combined evidence a merge needs: single-matcher
// linkers pick one their matcher can reach alone, while a multi-signal
// composite sets it above any single weak signal (fingerprint or PNL
// order) so only sequence continuity — or a weak-signal pile-up — links.
func NewComposite(threshold float64, matchers ...Matcher) *Composite {
	return &Composite{
		matchers:  matchers,
		threshold: threshold,
		byMAC:     make(map[ieee80211.MAC]TrackID),
	}
}

// Name implements Linker; it lists the component matchers sorted for a
// stable identifier, e.g. "composite(fp+pnl+seq)".
func (c *Composite) Name() string {
	names := make([]string, len(c.matchers))
	for i, m := range c.matchers {
		names[i] = m.Name()
	}
	sort.Strings(names)
	return fmt.Sprintf("composite(%s)", strings.Join(names, "+"))
}

// Observe implements Linker.
func (c *Composite) Observe(o Observation) TrackID {
	if id, ok := c.byMAC[o.MAC]; ok {
		c.tracks[id-1].observe(o)
		return id
	}
	var best *Track
	bestScore := 0.0
	for _, t := range c.tracks {
		score := 0.0
		for _, m := range c.matchers {
			score += m.Score(o, t)
		}
		if score >= c.threshold && (best == nil || score > bestScore) {
			best, bestScore = t, score
		}
	}
	if best != nil {
		c.links++
		c.byMAC[o.MAC] = best.ID
		best.observe(o)
		return best.ID
	}
	t := &Track{ID: TrackID(len(c.tracks) + 1)}
	t.observe(o)
	c.tracks = append(c.tracks, t)
	c.byMAC[o.MAC] = t.ID
	return t.ID
}

// Lookup implements Linker.
func (c *Composite) Lookup(m ieee80211.MAC) (TrackID, bool) {
	id, ok := c.byMAC[m]
	return id, ok
}

// Tracks implements Linker.
func (c *Composite) Tracks() int { return len(c.tracks) }

// Links implements Linker.
func (c *Composite) Links() int { return c.links }

// Assignments implements Linker.
func (c *Composite) Assignments() map[ieee80211.MAC]TrackID {
	out := make(map[ieee80211.MAC]TrackID, len(c.byMAC))
	for m, id := range c.byMAC {
		out[m] = id
	}
	return out
}
