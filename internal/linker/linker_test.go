package linker

import (
	"strings"
	"testing"
	"time"

	"cityhunter/internal/ieee80211"
)

func mac(b byte) ieee80211.MAC { return ieee80211.MAC{0x1a, 0, 0, 0, 0, b} }

func TestMACLinkerIdentity(t *testing.T) {
	l := NewMACLinker()
	a := l.Observe(Observation{MAC: mac(1), Seq: 10})
	b := l.Observe(Observation{MAC: mac(2), Seq: 11})
	if a != 1 || b != 2 {
		t.Fatalf("tracks = %d, %d; want dense 1, 2", a, b)
	}
	if again := l.Observe(Observation{MAC: mac(1), Seq: 12}); again != a {
		t.Errorf("re-observation moved track: %d -> %d", a, again)
	}
	if l.Tracks() != 2 || l.Links() != 0 {
		t.Errorf("Tracks = %d, Links = %d; want 2, 0", l.Tracks(), l.Links())
	}
	if id, ok := l.Lookup(mac(2)); !ok || id != b {
		t.Errorf("Lookup = %d, %v", id, ok)
	}
	if _, ok := l.Lookup(mac(9)); ok {
		t.Error("Lookup invented a track")
	}
	if got := len(l.Assignments()); got != 2 {
		t.Errorf("Assignments size = %d", got)
	}
}

// TestSeqOnlyMislinksFingerprintCorrects is the satellite scenario: two
// devices whose sequence counters happen to run close together. Sequence
// continuity alone merges them into one track (precision collapses); adding
// the IE fingerprint vetoes the cross-device merge and re-links the first
// device's rotated MAC correctly instead.
func TestSeqOnlyMislinksFingerprintCorrects(t *testing.T) {
	devA, devB := mac(0xa0), mac(0xb0)
	// Device A appears as a1, rotates to a2; device B appears as b1 with a
	// counter value sitting right in A's continuity window.
	obs := []Observation{
		{At: 0, MAC: mac(0xa1), Seq: 100, Fingerprint: 111},
		{At: 10 * time.Second, MAC: mac(0xb1), Seq: 105, Fingerprint: 222},
		{At: 20 * time.Second, MAC: mac(0xa2), Seq: 103, Fingerprint: 111},
	}
	truth := map[ieee80211.MAC]ieee80211.MAC{
		mac(0xa1): devA, mac(0xa2): devA, mac(0xb1): devB,
	}

	seqOnly := NewComposite(0.5, NewSeqContinuity())
	for _, o := range obs {
		seqOnly.Observe(o)
	}
	rep := NewReport(seqOnly.Name(), seqOnly.Assignments(), seqOnly.Links(), truth)
	if rep.FalsePairs == 0 {
		t.Fatalf("seq-only linker should mislink A and B: %v", rep)
	}
	if rep.Precision >= 1 {
		t.Fatalf("seq-only precision = %v, want < 1", rep.Precision)
	}

	composed := NewComposite(0.5, NewSeqContinuity(), NewFingerprintMatch())
	for _, o := range obs {
		composed.Observe(o)
	}
	crep := NewReport(composed.Name(), composed.Assignments(), composed.Links(), truth)
	if crep.Precision != 1 || crep.Recall != 1 {
		t.Fatalf("composite P=%v R=%v, want both 1 (%v)", crep.Precision, crep.Recall, crep)
	}
	if crep.Tracks != 2 || crep.Links != 1 {
		t.Errorf("composite Tracks=%d Links=%d, want 2 tracks and 1 re-link", crep.Tracks, crep.Links)
	}
}

func TestSeqContinuityWindow(t *testing.T) {
	s := NewSeqContinuity()
	track := &Track{LastSeq: 4090, LastAt: 0}
	// Modular wrap within the gap still scores.
	if got := s.Score(Observation{At: time.Second, Seq: 5}, track); got <= 0 {
		t.Errorf("wrapped delta score = %v, want > 0", got)
	}
	// Identical counters are not continuity evidence (two frames cannot
	// share a counter on one device).
	if got := s.Score(Observation{At: time.Second, Seq: 4090}, track); got != 0 {
		t.Errorf("zero delta score = %v, want 0", got)
	}
	// Beyond the horizon the evidence expires.
	if got := s.Score(Observation{At: time.Hour, Seq: 4091}, track); got != 0 {
		t.Errorf("stale score = %v, want 0", got)
	}
	// Far counters are unrelated.
	if got := s.Score(Observation{At: time.Second, Seq: 2000}, track); got != 0 {
		t.Errorf("distant delta score = %v, want 0", got)
	}
}

func TestPNLOrderScoring(t *testing.T) {
	m := NewPNLOrder()
	track := &Track{}
	track.observe(Observation{Directed: true, SSID: "HomeNet"})
	track.observe(Observation{Directed: true, SSID: "Office"})
	head := m.Score(Observation{Directed: true, SSID: "HomeNet"}, track)
	member := m.Score(Observation{Directed: true, SSID: "Office"}, track)
	stranger := m.Score(Observation{Directed: true, SSID: "Cafe"}, track)
	broadcast := m.Score(Observation{}, track)
	if !(head > member && member > 0) {
		t.Errorf("head=%v member=%v, want head > member > 0", head, member)
	}
	if stranger >= 0 {
		t.Errorf("stranger score = %v, want negative", stranger)
	}
	if broadcast != 0 {
		t.Errorf("broadcast score = %v, want 0", broadcast)
	}
}

// TestPNLOrderRelinksRotation drives a PNL-only composite through a
// rotation: the fresh MAC's first directed probe names the same
// head-of-PNL SSID and is re-linked.
func TestPNLOrderRelinksRotation(t *testing.T) {
	l := NewComposite(0.35, NewPNLOrder())
	first := l.Observe(Observation{At: 0, MAC: mac(1), Seq: 1, Directed: true, SSID: "HomeNet"})
	second := l.Observe(Observation{At: time.Minute, MAC: mac(2), Seq: 2, Directed: true, SSID: "HomeNet"})
	if first != second {
		t.Errorf("rotation split tracks: %d vs %d", first, second)
	}
	if l.Links() != 1 {
		t.Errorf("Links = %d, want 1", l.Links())
	}
}

func TestCompositeDeterminism(t *testing.T) {
	run := func() map[ieee80211.MAC]TrackID {
		l := NewComposite(0.5, NewSeqContinuity(), NewFingerprintMatch(), NewPNLOrder())
		for i := 0; i < 40; i++ {
			l.Observe(Observation{
				At:          time.Duration(i) * time.Second,
				MAC:         mac(byte(i % 8)),
				Seq:         uint16(i * 3 % 4096),
				Fingerprint: uint32(1 + i%4),
				Directed:    i%2 == 0,
				SSID:        []string{"", "Net-A", "", "Net-B"}[i%4],
			})
		}
		return l.Assignments()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(a), len(b))
	}
	for m, id := range a {
		if b[m] != id {
			t.Errorf("MAC %v: track %d vs %d", m, id, b[m])
		}
	}
}

func TestReportPairwiseCounts(t *testing.T) {
	devA, devB := mac(0xa0), mac(0xb0)
	// Track 1 holds two of A's MACs plus one of B's; track 2 holds A's
	// third MAC. Hand-computed: TP=1 (a1,a2), FP=2 (a1,b1),(a2,b1),
	// FN=2 (a1,a3),(a2,a3).
	assign := map[ieee80211.MAC]TrackID{
		mac(1): 1, mac(2): 1, mac(3): 1, mac(4): 2,
	}
	truth := map[ieee80211.MAC]ieee80211.MAC{
		mac(1): devA, mac(2): devA, mac(3): devB, mac(4): devA,
		mac(9): devB, // never observed: must not count
	}
	r := NewReport("test", assign, 2, truth)
	if r.TruePairs != 1 || r.FalsePairs != 2 || r.MissedPairs != 2 {
		t.Fatalf("TP/FP/FN = %d/%d/%d, want 1/2/2", r.TruePairs, r.FalsePairs, r.MissedPairs)
	}
	if r.MACs != 4 || r.Tracks != 2 || r.Devices != 2 || r.Links != 2 {
		t.Errorf("MACs/Tracks/Devices/Links = %d/%d/%d/%d", r.MACs, r.Tracks, r.Devices, r.Links)
	}
	wantP, wantR := 1.0/3, 1.0/3
	if r.Precision != wantP || r.Recall != wantR {
		t.Errorf("P=%v R=%v, want %v/%v", r.Precision, r.Recall, wantP, wantR)
	}
	if r.F1 <= 0 || r.F1 >= 1 {
		t.Errorf("F1 = %v", r.F1)
	}
	if s := r.String(); !strings.Contains(s, "test") {
		t.Errorf("String() = %q", s)
	}
}

// TestReportEmptyTruthIsPerfect: a run with nothing linkable grades as
// perfect rather than dividing by zero.
func TestReportEmptyTruthIsPerfect(t *testing.T) {
	r := NewReport("mac", map[ieee80211.MAC]TrackID{mac(1): 1}, 0, nil)
	if r.Precision != 1 || r.Recall != 1 {
		t.Errorf("P=%v R=%v, want 1/1", r.Precision, r.Recall)
	}
}

// TestMACObservedUnderTruthlessMACs: attacker-side MACs missing from the
// truth table are excluded from every count.
func TestReportIgnoresTruthlessMACs(t *testing.T) {
	devA := mac(0xa0)
	assign := map[ieee80211.MAC]TrackID{mac(1): 1, mac(2): 1, mac(7): 2}
	truth := map[ieee80211.MAC]ieee80211.MAC{mac(1): devA, mac(2): devA}
	r := NewReport("mac", assign, 1, truth)
	if r.MACs != 2 || r.Tracks != 1 {
		t.Errorf("MACs=%d Tracks=%d, want 2/1", r.MACs, r.Tracks)
	}
	if r.Precision != 1 || r.Recall != 1 {
		t.Errorf("P=%v R=%v", r.Precision, r.Recall)
	}
}
