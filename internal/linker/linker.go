// Package linker implements the attacker-side identity plane of the
// MAC-randomization arms race: deciding when two observed source MACs
// belong to the same physical device.
//
// The hunter core (internal/core) keys its per-client state by an
// attacker-assigned TrackID rather than by raw MAC; a Linker maps every
// observation to a track. The identity MACLinker reproduces the classic
// one-MAC-one-device assumption byte-identically, while Composite scores
// candidate tracks with the re-linking signals studied in the MAC
// de-anonymisation literature — sequence-number continuity, IE-fingerprint
// matching and PNL-order fingerprinting — and merges an unseen MAC into an
// existing track when the combined score clears a threshold.
package linker

import (
	"time"

	"cityhunter/internal/ieee80211"
)

// TrackID is an attacker-assigned device identity. IDs are dense and
// assigned in first-observation order starting at 1; zero means "no track".
type TrackID uint32

// Observation is everything the attacker can read off one probe request:
// the over-the-air source MAC, the 12-bit sequence counter, the condensed
// IE fingerprint, and — for directed probes — the SSID being probed.
type Observation struct {
	At          time.Duration
	MAC         ieee80211.MAC
	Seq         uint16
	Fingerprint uint32
	SSID        string
	Directed    bool
}

// Linker assigns observations to tracks. Implementations must be
// deterministic: the same observation sequence always yields the same
// track assignment (golden runs depend on it).
type Linker interface {
	// Name identifies the linker in reports and telemetry.
	Name() string
	// Observe maps one observation to a track, creating one if needed.
	Observe(o Observation) TrackID
	// Lookup returns the track a MAC was last assigned to, if any. It
	// never creates a track.
	Lookup(mac ieee80211.MAC) (TrackID, bool)
	// Tracks returns the number of tracks created so far.
	Tracks() int
	// Links returns the number of cross-MAC merges performed: observations
	// of a never-seen MAC that were attributed to an existing track.
	Links() int
	// Assignments returns a copy of the MAC-to-track table.
	Assignments() map[ieee80211.MAC]TrackID
}

// MACLinker is the identity linker: every distinct MAC is its own track.
// Under it the track-keyed engine behaves exactly like the historical
// MAC-keyed engine, which the seed-1 goldens verify byte-for-byte.
type MACLinker struct {
	byMAC map[ieee80211.MAC]TrackID
	next  TrackID
}

// NewMACLinker returns the identity linker.
func NewMACLinker() *MACLinker {
	return &MACLinker{byMAC: make(map[ieee80211.MAC]TrackID)}
}

// Name implements Linker.
func (l *MACLinker) Name() string { return "mac" }

// Observe implements Linker: first sight of a MAC opens a fresh track.
func (l *MACLinker) Observe(o Observation) TrackID {
	if id, ok := l.byMAC[o.MAC]; ok {
		return id
	}
	l.next++
	l.byMAC[o.MAC] = l.next
	return l.next
}

// Lookup implements Linker.
func (l *MACLinker) Lookup(mac ieee80211.MAC) (TrackID, bool) {
	id, ok := l.byMAC[mac]
	return id, ok
}

// Tracks implements Linker.
func (l *MACLinker) Tracks() int { return int(l.next) }

// Links implements Linker: the identity linker never merges.
func (l *MACLinker) Links() int { return 0 }

// Assignments implements Linker.
func (l *MACLinker) Assignments() map[ieee80211.MAC]TrackID {
	out := make(map[ieee80211.MAC]TrackID, len(l.byMAC))
	for m, id := range l.byMAC {
		out[m] = id
	}
	return out
}

// Track is the per-track state a scoring linker accumulates: the last
// observation (for sequence continuity), the sticky fingerprint, and the
// probed-SSID order signature (the PNL fingerprint).
type Track struct {
	ID          TrackID
	LastMAC     ieee80211.MAC
	LastSeq     uint16
	LastAt      time.Duration
	Fingerprint uint32
	// PNLSig is the distinct directed-probe SSIDs in first-probe order;
	// the head entry is the first network the device probes each scan.
	PNLSig []string
	pnlSet map[string]bool
}

// observe folds one observation attributed to this track into its state.
func (t *Track) observe(o Observation) {
	t.LastMAC = o.MAC
	t.LastSeq = o.Seq
	t.LastAt = o.At
	if o.Fingerprint != 0 {
		t.Fingerprint = o.Fingerprint
	}
	if o.Directed && o.SSID != "" && !t.pnlSet[o.SSID] {
		if t.pnlSet == nil {
			t.pnlSet = make(map[string]bool)
		}
		t.pnlSet[o.SSID] = true
		t.PNLSig = append(t.PNLSig, o.SSID)
	}
}

// knows reports whether ssid is in the track's PNL signature.
func (t *Track) knows(ssid string) bool { return t.pnlSet[ssid] }
