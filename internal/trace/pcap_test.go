package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"cityhunter/internal/ieee80211"
)

func TestPcapHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewPcapWriter(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header = %d bytes", len(hdr))
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != pcapMagic {
		t.Errorf("magic = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[20:24]); got != linkTypeIEEE80211 {
		t.Errorf("link type = %d, want 105 (802.11)", got)
	}
}

func TestPcapWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeResponse,
		SA:      ieee80211.MAC{0x0a, 1, 2, 3, 4, 5},
		DA:      ieee80211.MAC{0x02, 1, 2, 3, 4, 5},
		BSSID:   ieee80211.MAC{0x0a, 1, 2, 3, 4, 5},
		SSID:    "PcapNet",
	}
	at := 3*time.Second + 250*time.Microsecond
	if err := pw.WriteFrame(at, f); err != nil {
		t.Fatal(err)
	}
	if pw.Count() != 1 {
		t.Errorf("Count = %d", pw.Count())
	}
	rec := buf.Bytes()[24:]
	if sec := binary.LittleEndian.Uint32(rec[0:4]); sec != 3 {
		t.Errorf("ts sec = %d", sec)
	}
	if usec := binary.LittleEndian.Uint32(rec[4:8]); usec != 250 {
		t.Errorf("ts usec = %d", usec)
	}
	wantLen := uint32(f.WireLen())
	if got := binary.LittleEndian.Uint32(rec[8:12]); got != wantLen {
		t.Errorf("incl len = %d, want %d", got, wantLen)
	}
	// The payload must unmarshal back to the same frame.
	payload := rec[16 : 16+int(wantLen)]
	back, err := ieee80211.Unmarshal(payload)
	if err != nil {
		t.Fatalf("payload does not parse: %v", err)
	}
	if back.SSID != "PcapNet" || back.SA != f.SA {
		t.Errorf("payload frame = %+v", back)
	}
}

func TestMonitorWritePcap(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: mon.Pos()}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeProbeRequest,
			DA:      ieee80211.BroadcastMAC, SA: tx.addr, BSSID: ieee80211.BroadcastMAC,
			SSID: "N",
		})
	}
	engine.Run(time.Second)

	var buf bytes.Buffer
	if err := mon.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	// Global header + 5 records; walk the records to verify framing.
	data := buf.Bytes()
	off := 24
	for i := 0; i < 5; i++ {
		if len(data) < off+16 {
			t.Fatalf("truncated at record %d", i)
		}
		n := int(binary.LittleEndian.Uint32(data[off+8 : off+12]))
		frame := data[off+16 : off+16+n]
		if _, err := ieee80211.Unmarshal(frame); err != nil {
			t.Fatalf("record %d does not parse: %v", i, err)
		}
		off += 16 + n
	}
	if off != len(data) {
		t.Errorf("%d trailing bytes", len(data)-off)
	}
}

func TestSubtypeByNameUnknown(t *testing.T) {
	if _, err := subtypeByName("no-such"); err == nil {
		t.Error("unknown subtype accepted")
	}
	e := Entry{Subtype: "beacon", SA: "02:00:00:00:00:01", DA: "ff:ff:ff:ff:ff:ff", BSSID: "02:00:00:00:00:01"}
	if _, err := e.toFrame(); err != nil {
		t.Errorf("valid entry failed: %v", err)
	}
	bad := Entry{Subtype: "beacon", SA: "zz", DA: "ff:ff:ff:ff:ff:ff", BSSID: "zz"}
	if _, err := bad.toFrame(); err == nil {
		t.Error("bad MAC accepted")
	}
}
