package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/ieee80211"
)

// Classic pcap constants (pcap file format, not pcapng).
const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	// linkTypeIEEE80211 is DLT_IEEE802_11: raw 802.11 headers without a
	// radiotap prefix.
	linkTypeIEEE80211 = 105
	// pcapSnapLen is the per-packet capture limit we declare.
	pcapSnapLen = 65535
)

// PcapWriter streams frames into the classic libpcap file format with
// 802.11 link type, so captures open directly in Wireshark/tcpdump.
type PcapWriter struct {
	w     io.Writer
	count int
	// buf is the reusable frame-encode scratch and rec the record-header
	// scratch (a local array would escape through the io.Writer call):
	// after the first record the steady-state encode path allocates
	// nothing.
	buf []byte
	rec [16]byte
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone (4) and sigfigs (4) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeIEEE80211)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WriteFrame marshals f and appends one packet record stamped with the
// virtual capture time.
func (p *PcapWriter) WriteFrame(at time.Duration, f *ieee80211.Frame) error {
	wire, err := f.AppendMarshal(p.buf[:0])
	if err != nil {
		return fmt.Errorf("trace: marshal frame: %w", err)
	}
	p.buf = wire[:0]
	rec := p.rec[:]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(at%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(wire)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(wire)))
	if _, err := p.w.Write(rec); err != nil {
		return fmt.Errorf("trace: pcap record header: %w", err)
	}
	if _, err := p.w.Write(wire); err != nil {
		return fmt.Errorf("trace: pcap payload: %w", err)
	}
	p.count++
	return nil
}

// Count returns the number of packets written.
func (p *PcapWriter) Count() int { return p.count }

// WritePcap re-marshals a monitor's capture into pcap form. Entries are
// decoded back into frames from their recorded fields; the SSID and
// addressing survive the round trip, which is what Wireshark displays.
func (m *Monitor) WritePcap(w io.Writer) error {
	pw, err := NewPcapWriter(w)
	if err != nil {
		return err
	}
	var f ieee80211.Frame // reused across entries; WriteFrame does not retain it
	for i := range m.entries {
		if err := m.entries[i].toFrameInto(&f); err != nil {
			return fmt.Errorf("trace: entry %d: %w", i, err)
		}
		if err := pw.WriteFrame(m.entries[i].At, &f); err != nil {
			return err
		}
	}
	return nil
}

// toFrame reconstructs a transmittable frame from a recorded entry.
func (e *Entry) toFrame() (*ieee80211.Frame, error) {
	f := new(ieee80211.Frame)
	if err := e.toFrameInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// toFrameInto is toFrame into caller-owned storage, so replay loops can
// decode every entry through one reused frame.
func (e *Entry) toFrameInto(f *ieee80211.Frame) error {
	sub, err := subtypeByName(e.Subtype)
	if err != nil {
		return err
	}
	sa, err := ieee80211.ParseMAC(e.SA)
	if err != nil {
		return err
	}
	da, err := ieee80211.ParseMAC(e.DA)
	if err != nil {
		return err
	}
	bssid, err := ieee80211.ParseMAC(e.BSSID)
	if err != nil {
		return err
	}
	*f = ieee80211.Frame{
		Subtype: sub,
		SA:      sa,
		DA:      da,
		BSSID:   bssid,
		SSID:    e.SSID,
	}
	return nil
}

func subtypeByName(name string) (ieee80211.FrameSubtype, error) {
	for _, s := range []ieee80211.FrameSubtype{
		ieee80211.SubtypeAssocRequest,
		ieee80211.SubtypeAssocResponse,
		ieee80211.SubtypeProbeRequest,
		ieee80211.SubtypeProbeResponse,
		ieee80211.SubtypeBeacon,
		ieee80211.SubtypeAuth,
		ieee80211.SubtypeDeauth,
	} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown subtype %q", name)
}
