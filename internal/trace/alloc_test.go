package trace

import (
	"io"
	"testing"
	"time"

	"cityhunter/internal/ieee80211"
)

// TestPcapWriterSteadyStateZeroAlloc pins the capture encode path: after
// the first record grows the scratch buffer, writing frames allocates
// nothing per packet.
func TestPcapWriterSteadyStateZeroAlloc(t *testing.T) {
	pw, err := NewPcapWriter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	f := &ieee80211.Frame{
		Subtype:          ieee80211.SubtypeProbeResponse,
		SA:               ieee80211.MAC{0x02, 1, 2, 3, 4, 5},
		DA:               ieee80211.MAC{0x02, 9, 8, 7, 6, 5},
		BSSID:            ieee80211.MAC{0x02, 1, 2, 3, 4, 5},
		SSID:             "CoffeeShop Guest",
		Capability:       ieee80211.CapESS,
		Channel:          6,
		BeaconIntervalTU: 100,
	}
	if err := pw.WriteFrame(0, f); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := pw.WriteFrame(time.Millisecond, f); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("WriteFrame steady state allocates %.2f/op, want 0", avg)
	}
	if pw.Count() < 201 {
		t.Errorf("Count = %d", pw.Count())
	}
}
