package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

func monitorFixture(t *testing.T) (*sim.Engine, *sim.Medium, *Monitor) {
	t.Helper()
	engine := sim.NewEngine()
	medium := sim.NewMedium(engine, 100)
	mon := NewMonitor(engine, ieee80211.MAC{0x0a, 0, 0, 0, 0, 0xfe}, geo.Pt(0, 0))
	if err := medium.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	return engine, medium, mon
}

type beeper struct {
	addr ieee80211.MAC
	pos  geo.Point
}

func (b *beeper) Addr() ieee80211.MAC      { return b.addr }
func (b *beeper) Pos() geo.Point           { return b.pos }
func (b *beeper) Receive(*ieee80211.Frame) {}

func TestMonitorCaptures(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC, SA: tx.addr, BSSID: ieee80211.BroadcastMAC,
		SSID: "CafeNet",
	})
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC, SA: tx.addr, BSSID: ieee80211.BroadcastMAC,
	})
	engine.Run(time.Second)

	if mon.Len() != 2 {
		t.Fatalf("captured %d frames, want 2", mon.Len())
	}
	entries := mon.Entries()
	if entries[0].SSID != "CafeNet" || entries[0].Subtype != "probe-request" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[0].At <= 0 || entries[1].At <= entries[0].At {
		t.Errorf("timestamps not increasing: %v %v", entries[0].At, entries[1].At)
	}
	if entries[0].SA != tx.addr.String() {
		t.Errorf("SA = %q", entries[0].SA)
	}
	if entries[0].Len == 0 {
		t.Error("zero frame length")
	}
}

func TestMonitorBounded(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	mon.MaxEntries = 3
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeProbeRequest,
			DA:      ieee80211.BroadcastMAC, SA: tx.addr,
		})
	}
	engine.Run(time.Second)
	if mon.Len() != 3 {
		t.Errorf("Len = %d, want 3", mon.Len())
	}
	if mon.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", mon.Dropped)
	}
}

func TestMonitorOnFirstDrop(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	mon.MaxEntries = 2
	fired := 0
	var firedAtDropped int
	mon.OnFirstDrop = func() {
		fired++
		firedAtDropped = mon.Dropped
	}
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeProbeRequest,
			DA:      ieee80211.BroadcastMAC, SA: tx.addr,
		})
	}
	engine.Run(time.Second)
	if fired != 1 {
		t.Errorf("OnFirstDrop fired %d times, want exactly once", fired)
	}
	if firedAtDropped != 1 {
		t.Errorf("OnFirstDrop saw Dropped = %d, want 1", firedAtDropped)
	}
	if mon.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", mon.Dropped)
	}
}

func TestFilterAndSummary(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	medium.Transmit(&ieee80211.Frame{Subtype: ieee80211.SubtypeProbeRequest, DA: ieee80211.BroadcastMAC, SA: tx.addr})
	medium.Transmit(&ieee80211.Frame{Subtype: ieee80211.SubtypeDeauth, DA: ieee80211.BroadcastMAC, SA: tx.addr})
	medium.Transmit(&ieee80211.Frame{Subtype: ieee80211.SubtypeDeauth, DA: ieee80211.BroadcastMAC, SA: tx.addr})
	engine.Run(time.Second)

	sum := mon.Summary()
	if sum["probe-request"] != 1 || sum["deauth"] != 2 {
		t.Errorf("summary = %v", sum)
	}
	deauths := mon.Filter(func(e Entry) bool { return e.Subtype == "deauth" })
	if len(deauths) != 2 {
		t.Errorf("filtered %d deauths", len(deauths))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeResponse,
		DA:      tx.addr, SA: mon.Addr(), BSSID: mon.Addr(), SSID: "X",
	})
	medium.Transmit(&ieee80211.Frame{Subtype: ieee80211.SubtypeProbeRequest, DA: ieee80211.BroadcastMAC, SA: tx.addr})
	engine.Run(time.Second)

	var buf bytes.Buffer
	if err := mon.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(back, mon.Entries()) {
		t.Error("JSON round trip changed entries")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Error("want error for invalid JSON")
	}
	got, err := ReadJSON(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %v", got, err)
	}
}

func TestEntriesReturnsCopy(t *testing.T) {
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 1}, pos: geo.Pt(10, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	medium.Transmit(&ieee80211.Frame{Subtype: ieee80211.SubtypeProbeRequest, DA: ieee80211.BroadcastMAC, SA: tx.addr})
	engine.Run(time.Second)
	got := mon.Entries()
	got[0].SSID = "mutated"
	if mon.Entries()[0].SSID == "mutated" {
		t.Error("Entries exposes internal slice")
	}
}

// mustMAC and probeEntryFrame are helpers shared with the analysis tests.
func mustMAC(t *testing.T, s string) ieee80211.MAC {
	t.Helper()
	m, err := ieee80211.ParseMAC(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func probeEntryFrame(sa ieee80211.MAC, ssid string) *ieee80211.Frame {
	return &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC,
		SA:      sa,
		BSSID:   ieee80211.BroadcastMAC,
		SSID:    ssid,
	}
}
