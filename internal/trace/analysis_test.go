package trace

import (
	"testing"
	"time"
)

func entryAt(at time.Duration, subtype, sa, bssid, ssid string) Entry {
	return Entry{At: at, Subtype: subtype, SA: sa, DA: "ff:ff:ff:ff:ff:ff", BSSID: bssid, SSID: ssid}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Frames != 0 || a.UniqueSources != 0 || a.ProbeIntervalP50 != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	phone1 := "02:00:00:00:00:01"
	phone2 := "02:00:00:00:00:02"
	twin := "0a:00:00:00:00:01"
	honest := "0a:00:00:00:00:02"
	entries := []Entry{
		entryAt(1*time.Second, "probe-request", phone1, "", ""),
		entryAt(2*time.Second, "probe-request", phone1, "", "HomeNet"),
		entryAt(4*time.Second, "probe-request", phone1, "", ""),
		entryAt(5*time.Second, "probe-request", phone2, "", ""),
		entryAt(5*time.Second, "probe-response", twin, twin, "Lure-1"),
		entryAt(5*time.Second, "probe-response", twin, twin, "Lure-2"),
		entryAt(5*time.Second, "probe-response", twin, twin, "Lure-2"),
		entryAt(6*time.Second, "beacon", honest, honest, "Cafe WiFi"),
		entryAt(7*time.Second, "deauth", twin, twin, ""),
	}
	a := Analyze(entries)
	if a.Frames != 9 {
		t.Errorf("Frames = %d", a.Frames)
	}
	if a.BySubtype["probe-request"] != 4 || a.BySubtype["deauth"] != 1 {
		t.Errorf("BySubtype = %v", a.BySubtype)
	}
	if a.UniqueSources != 4 {
		t.Errorf("UniqueSources = %d", a.UniqueSources)
	}
	if a.Probers != 2 || a.DirectProbers != 1 {
		t.Errorf("probers = %d/%d", a.Probers, a.DirectProbers)
	}
	if a.SSIDsPerResponder[twin] != 2 {
		t.Errorf("twin SSID diversity = %d, want 2", a.SSIDsPerResponder[twin])
	}
	if a.SSIDsPerResponder[honest] != 1 {
		t.Errorf("honest SSID diversity = %d, want 1", a.SSIDsPerResponder[honest])
	}
	// phone1 intervals: 1s and 2s → p50 is the lower one.
	if a.ProbeIntervalP50 != time.Second {
		t.Errorf("P50 = %v", a.ProbeIntervalP50)
	}
	if a.ProbeIntervalP90 != 2*time.Second {
		t.Errorf("P90 = %v", a.ProbeIntervalP90)
	}
}

func TestAnalyzeLiveCapture(t *testing.T) {
	// Wire a monitor into a tiny live exchange and analyse the capture.
	engine, medium, mon := monitorFixture(t)
	tx := &beeper{addr: mustMAC(t, "02:00:00:00:00:09"), pos: mon.Pos()}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		medium.Transmit(probeEntryFrame(tx.addr, ""))
		medium.Transmit(probeEntryFrame(tx.addr, "MyNet"))
	}
	engine.Run(time.Minute)
	a := Analyze(mon.Entries())
	if a.Probers != 1 || a.DirectProbers != 1 {
		t.Errorf("probers = %d/%d", a.Probers, a.DirectProbers)
	}
	if a.ProbeIntervalP50 <= 0 {
		t.Error("no probe intervals measured")
	}
}

func TestPercentileBounds(t *testing.T) {
	vals := []time.Duration{1, 2, 3, 4, 5}
	if got := percentile(vals, 0.0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(vals, 1.0); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
}
