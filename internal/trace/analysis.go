package trace

import (
	"math"
	"sort"
	"time"
)

// Analysis distils a capture into the measurements the paper's §III builds
// on: how many distinct devices probed, how talkative they are (probe
// inter-arrival times), how SSID-diverse each responder is, and the
// per-subtype frame mix.
type Analysis struct {
	// Frames is the total frame count analysed.
	Frames int
	// BySubtype counts frames per subtype name.
	BySubtype map[string]int
	// UniqueSources is the number of distinct transmitter MACs.
	UniqueSources int
	// Probers is the number of distinct MACs that sent probe requests;
	// DirectProbers the subset that directed at least one probe.
	Probers       int
	DirectProbers int
	// ProbeIntervalP50 and P90 are percentiles of the per-device probe
	// inter-arrival time (zero when fewer than two probes per device
	// exist anywhere).
	ProbeIntervalP50 time.Duration
	ProbeIntervalP90 time.Duration
	// SSIDsPerResponder maps each responding/beaconing BSSID to the
	// number of distinct SSIDs it advertised — the sentinel's signal; an
	// evil twin dwarfs every honest AP here.
	SSIDsPerResponder map[string]int
}

// Analyze runs over a capture in one pass.
func Analyze(entries []Entry) Analysis {
	a := Analysis{
		Frames:            len(entries),
		BySubtype:         make(map[string]int),
		SSIDsPerResponder: make(map[string]int),
	}
	sources := make(map[string]bool)
	probers := make(map[string]bool)
	direct := make(map[string]bool)
	lastProbe := make(map[string]time.Duration)
	respSSIDs := make(map[string]map[string]bool)
	var intervals []time.Duration

	for _, e := range entries {
		a.BySubtype[e.Subtype]++
		sources[e.SA] = true
		switch e.Subtype {
		case "probe-request":
			probers[e.SA] = true
			if e.SSID != "" {
				direct[e.SA] = true
			}
			if prev, ok := lastProbe[e.SA]; ok && e.At > prev {
				intervals = append(intervals, e.At-prev)
			}
			lastProbe[e.SA] = e.At
		case "probe-response", "beacon":
			if e.SSID == "" {
				break
			}
			set, ok := respSSIDs[e.BSSID]
			if !ok {
				set = make(map[string]bool)
				respSSIDs[e.BSSID] = set
			}
			set[e.SSID] = true
		}
	}
	a.UniqueSources = len(sources)
	a.Probers = len(probers)
	a.DirectProbers = len(direct)
	for bssid, set := range respSSIDs {
		a.SSIDsPerResponder[bssid] = len(set)
	}
	if len(intervals) > 0 {
		sort.Slice(intervals, func(i, j int) bool { return intervals[i] < intervals[j] })
		a.ProbeIntervalP50 = percentile(intervals, 0.50)
		a.ProbeIntervalP90 = percentile(intervals, 0.90)
	}
	return a
}

// percentile returns the p-quantile of a sorted duration slice using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
