// Package trace records 802.11 frames crossing the simulated medium into a
// replayable, JSON-exportable log — the equivalent of the packet captures
// the paper's field deployment kept for analysis.
//
// A Recorder wraps any station's Receive path (or is attached standalone as
// a monitor station) and stores compact per-frame records with virtual
// timestamps. Filters select subsets; Summary aggregates per-subtype
// counts.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
	"cityhunter/internal/sim"
)

// Entry is one recorded frame.
type Entry struct {
	// At is the virtual capture time in nanoseconds.
	At time.Duration `json:"at"`
	// Subtype is the human-readable frame subtype.
	Subtype string `json:"subtype"`
	// SA, DA and BSSID are the addresses in canonical form.
	SA    string `json:"sa"`
	DA    string `json:"da"`
	BSSID string `json:"bssid"`
	// SSID is the carried network name, if any.
	SSID string `json:"ssid,omitempty"`
	// Len is the marshalled frame length in bytes.
	Len int `json:"len"`
}

// Monitor is a promiscuous station that records every frame it hears. It
// never transmits.
type Monitor struct {
	addr    ieee80211.MAC
	pos     geo.Point
	clock   interface{ Now() time.Duration }
	entries []Entry
	// MaxEntries bounds memory; 0 means unbounded. When full, new frames
	// are dropped and Dropped counts them.
	MaxEntries int
	Dropped    int
	// OnFirstDrop, when set, is invoked exactly once — at the first frame
	// dropped after the capture reaches MaxEntries — so callers can flag
	// that the capture is truncated rather than complete.
	OnFirstDrop func()
	// DropCounter, when set, counts every dropped frame into the metrics
	// registry, so a live /metrics scrape sees the capture truncating as
	// it happens instead of only in the post-run Result.
	DropCounter *obs.Counter
}

var _ sim.Station = (*Monitor)(nil)

// NewMonitor builds a monitor at the given position. Attach it to the
// medium to start capturing.
func NewMonitor(engine *sim.Engine, addr ieee80211.MAC, pos geo.Point) *Monitor {
	return &Monitor{addr: addr, pos: pos, clock: engine}
}

// Addr implements sim.Station.
func (m *Monitor) Addr() ieee80211.MAC { return m.addr }

// Pos implements sim.Station.
func (m *Monitor) Pos() geo.Point { return m.pos }

// Receive implements sim.Station: record the frame.
func (m *Monitor) Receive(f *ieee80211.Frame) {
	if m.MaxEntries > 0 && len(m.entries) >= m.MaxEntries {
		m.Dropped++
		m.DropCounter.Inc()
		if m.Dropped == 1 && m.OnFirstDrop != nil {
			m.OnFirstDrop()
		}
		return
	}
	m.entries = append(m.entries, Entry{
		At:      m.clock.Now(),
		Subtype: f.Subtype.String(),
		SA:      f.SA.String(),
		DA:      f.DA.String(),
		BSSID:   f.BSSID.String(),
		SSID:    f.SSID,
		Len:     f.WireLen(),
	})
}

// Len returns the number of captured frames.
func (m *Monitor) Len() int { return len(m.entries) }

// Entries returns a copy of the capture.
func (m *Monitor) Entries() []Entry {
	out := make([]Entry, len(m.entries))
	copy(out, m.entries)
	return out
}

// Filter returns the entries matching pred, preserving order.
func (m *Monitor) Filter(pred func(Entry) bool) []Entry {
	var out []Entry
	for _, e := range m.entries {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// Summary counts captured frames per subtype.
func (m *Monitor) Summary() map[string]int {
	out := make(map[string]int)
	for _, e := range m.entries {
		out[e.Subtype]++
	}
	return out
}

// WriteJSON streams the capture as JSON lines (one entry per line), the
// standard interchange form for offline analysis.
func (m *Monitor) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range m.entries {
		if err := enc.Encode(&m.entries[i]); err != nil {
			return fmt.Errorf("trace: encode entry %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSON loads a capture previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Entry, error) {
	dec := json.NewDecoder(r)
	var out []Entry
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode entry %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
