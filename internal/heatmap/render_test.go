package heatmap

import (
	"bytes"
	"image/png"
	"testing"

	"cityhunter/internal/geo"
)

func TestRenderPNG(t *testing.T) {
	m := mustMap(t)
	for i := 0; i < 100; i++ {
		m.AddPhoto(geo.Pt(550, 550))
	}
	for i := 0; i < 5; i++ {
		m.AddPhoto(geo.Pt(50, 50))
	}
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not PNG: %v", err)
	}
	cols, rows := m.Dims()
	b := img.Bounds()
	if b.Dx() != cols*3 || b.Dy() != rows*3 {
		t.Errorf("image %dx%d, want %dx%d", b.Dx(), b.Dy(), cols*3, rows*3)
	}

	// The hot cell renders redder than a cold cell. Cell (5,5) holds the
	// 100 photos; remember the y axis flips.
	hotX, hotY := 5*3+1, (rows-1-5)*3+1
	r1, g1, _, _ := img.At(hotX, hotY).RGBA()
	coldX, coldY := 0*3+1, (rows-1-0)*3+1
	r0, g0, _, _ := img.At(coldX, coldY).RGBA()
	if r1 <= g1 {
		t.Errorf("hottest cell not red-dominant: r=%d g=%d", r1, g1)
	}
	if g0 <= r0 {
		t.Errorf("mild cell not green-dominant: r=%d g=%d", r0, g0)
	}
}

func TestRenderPNGEmpty(t *testing.T) {
	m := mustMap(t)
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatalf("empty map render invalid: %v", err)
	}
}

func TestHeatColorRamp(t *testing.T) {
	// Monotone: among non-empty cells, more photos never gets greener.
	// (Zero-count cells render near-black, outside the ramp.)
	prev := heatColor(1, 100)
	for c := 2; c <= 100; c += 7 {
		cur := heatColor(c, 100)
		if int(cur.R)-int(cur.G) < int(prev.R)-int(prev.G)-1 {
			t.Errorf("ramp not monotone at %d: %+v -> %+v", c, prev, cur)
		}
		prev = cur
	}
	if heatColor(100, 100).R < 200 {
		t.Error("max heat not red")
	}
}

func TestLerpClamps(t *testing.T) {
	a := heatColor(1, 100)
	if lerpRGB(a, a, -5) != a || lerpRGB(a, a, 5) != a {
		t.Error("lerp does not clamp")
	}
}
