package heatmap

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// RenderPNG draws the heat map as a PNG: green for quiet cells through
// yellow to red for the hottest (the paper's Figure 4 colouring), black
// for empty cells. Each grid cell becomes a scale×scale pixel block;
// scale ≤ 0 selects 4. Intensity is normalised on a square-root ramp so
// mid-density areas stay visible next to the hottest venue.
func (m *Map) RenderPNG(w io.Writer, scale int) error {
	if scale <= 0 {
		scale = 4
	}
	maxCount := 0
	for _, c := range m.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, m.cols*scale, m.rows*scale))
	for cy := 0; cy < m.rows; cy++ {
		for cx := 0; cx < m.cols; cx++ {
			c := heatColor(m.counts[cy*m.cols+cx], maxCount)
			// Image y grows downward; the city y grows upward.
			py0 := (m.rows - 1 - cy) * scale
			px0 := cx * scale
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.SetRGBA(px0+dx, py0+dy, c)
				}
			}
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("heatmap: encode png: %w", err)
	}
	return nil
}

// heatColor maps a photo count to the green→yellow→red ramp.
func heatColor(count, maxCount int) color.RGBA {
	if count == 0 || maxCount == 0 {
		return color.RGBA{R: 12, G: 12, B: 16, A: 255}
	}
	// Square-root normalisation keeps the long tail visible.
	t := math.Sqrt(float64(count) / float64(maxCount))
	switch {
	case t < 0.5:
		// green (0,160,60) → yellow (235,220,40)
		f := t / 0.5
		return lerpRGB(color.RGBA{R: 0, G: 160, B: 60, A: 255},
			color.RGBA{R: 235, G: 220, B: 40, A: 255}, f)
	default:
		// yellow → red (220,30,30)
		f := (t - 0.5) / 0.5
		return lerpRGB(color.RGBA{R: 235, G: 220, B: 40, A: 255},
			color.RGBA{R: 220, G: 30, B: 30, A: 255}, f)
	}
}

func lerpRGB(a, b color.RGBA, f float64) color.RGBA {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	mix := func(x, y uint8) uint8 { return uint8(float64(x) + f*(float64(y)-float64(x))) }
	return color.RGBA{R: mix(a.R, b.R), G: mix(a.G, b.G), B: mix(a.B, b.B), A: 255}
}
