// Package heatmap builds the crowd heat map City-Hunter uses to weight
// SSIDs. The paper estimates crowd density from geotagged photos: the number
// of photos posted from an area is taken as a proxy for the number of people
// there. This package bins photo locations into a uniform grid, exposes the
// heat at any point, computes per-SSID heat values (the sum of heat at every
// AP location of the SSID), and assigns initial database weights by the
// rank-ratio method of Barron & Barrett: with N ranked items the top item
// gets weight N and the bottom item weight 1.
package heatmap

import (
	"fmt"
	"sort"

	"cityhunter/internal/geo"
)

// Map is a photo-density heat grid over a bounded area.
type Map struct {
	bounds   geo.Rect
	cellSize float64
	cols     int
	rows     int
	counts   []int
	total    int
}

// New returns an empty heat map over bounds with cellSize-metre cells.
func New(bounds geo.Rect, cellSize float64) (*Map, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("heatmap: cell size %v must be positive", cellSize)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("heatmap: bounds %v have no area", bounds)
	}
	cols := int(bounds.Width()/cellSize) + 1
	rows := int(bounds.Height()/cellSize) + 1
	return &Map{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		counts:   make([]int, cols*rows),
	}, nil
}

// FromPhotos builds a heat map directly from photo locations.
func FromPhotos(bounds geo.Rect, cellSize float64, photos []geo.Point) (*Map, error) {
	m, err := New(bounds, cellSize)
	if err != nil {
		return nil, err
	}
	for _, p := range photos {
		m.AddPhoto(p)
	}
	return m, nil
}

// AddPhoto records one geotagged photo. Photos outside the bounds are
// clamped to the border cell.
func (m *Map) AddPhoto(p geo.Point) {
	m.counts[m.cell(p)]++
	m.total++
}

func (m *Map) cell(p geo.Point) int {
	cx := int((p.X - m.bounds.Min.X) / m.cellSize)
	cy := int((p.Y - m.bounds.Min.Y) / m.cellSize)
	cx = min(max(cx, 0), m.cols-1)
	cy = min(max(cy, 0), m.rows-1)
	return cy*m.cols + cx
}

// TotalPhotos returns the number of photos added.
func (m *Map) TotalPhotos() int { return m.total }

// HeatAt returns the photo count of the cell containing p.
func (m *Map) HeatAt(p geo.Point) int { return m.counts[m.cell(p)] }

// Bounds returns the mapped area.
func (m *Map) Bounds() geo.Rect { return m.bounds }

// CellSize returns the grid cell edge in metres.
func (m *Map) CellSize() float64 { return m.cellSize }

// Dims returns the grid dimensions (columns, rows).
func (m *Map) Dims() (cols, rows int) { return m.cols, m.rows }

// CellCenter returns the centre point of cell (cx, cy).
func (m *Map) CellCenter(cx, cy int) geo.Point {
	return geo.Pt(
		m.bounds.Min.X+(float64(cx)+0.5)*m.cellSize,
		m.bounds.Min.Y+(float64(cy)+0.5)*m.cellSize,
	)
}

// Cell is one grid cell with its photo count, used for hot-spot reports.
type Cell struct {
	Col, Row int
	Center   geo.Point
	Photos   int
}

// HottestCells returns the n cells with the highest photo counts,
// descending, ties broken by (row, col) for determinism. This is what the
// Figure 4 report prints: the red areas of the map.
func (m *Map) HottestCells(n int) []Cell {
	cells := make([]Cell, 0, n)
	for cy := 0; cy < m.rows; cy++ {
		for cx := 0; cx < m.cols; cx++ {
			c := m.counts[cy*m.cols+cx]
			if c == 0 {
				continue
			}
			cells = append(cells, Cell{Col: cx, Row: cy, Center: m.CellCenter(cx, cy), Photos: c})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Photos != cells[j].Photos {
			return cells[i].Photos > cells[j].Photos
		}
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
	if n < len(cells) {
		cells = cells[:n]
	}
	return cells
}

// SSIDHeat is an SSID with its accumulated heat value.
type SSIDHeat struct {
	SSID string `json:"ssid"`
	Heat int    `json:"heat"`
}

// RankByHeat computes the heat value of every SSID — the sum of the heat at
// each of its AP positions — and returns them in descending heat order,
// ties broken lexicographically. An SSID with many APs in crowded areas, or
// a few APs in very crowded areas (the paper's airport example), ranks
// high.
func (m *Map) RankByHeat(positions map[string][]geo.Point) []SSIDHeat {
	ranked := make([]SSIDHeat, 0, len(positions))
	for ssid, pts := range positions {
		heat := 0
		for _, p := range pts {
			heat += m.HeatAt(p)
		}
		ranked = append(ranked, SSIDHeat{SSID: ssid, Heat: heat})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Heat != ranked[j].Heat {
			return ranked[i].Heat > ranked[j].Heat
		}
		return ranked[i].SSID < ranked[j].SSID
	})
	return ranked
}

// RankWeights assigns the paper's rank-based initial weights to an ordered
// ranking (best first): with n items, item 0 gets weight n and item n-1
// gets weight 1.
func RankWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(n - i)
	}
	return w
}
