package heatmap

import (
	"testing"
	"testing/quick"

	"cityhunter/internal/geo"
)

var testBounds = geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))

func mustMap(t *testing.T) *Map {
	t.Helper()
	m, err := New(testBounds, 100)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testBounds, 0); err == nil {
		t.Error("want error for zero cell size")
	}
	if _, err := New(geo.Rect{}, 100); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestHeatAccumulates(t *testing.T) {
	m := mustMap(t)
	p := geo.Pt(150, 150)
	if m.HeatAt(p) != 0 {
		t.Fatalf("fresh map heat = %d", m.HeatAt(p))
	}
	for i := 0; i < 5; i++ {
		m.AddPhoto(p)
	}
	if m.HeatAt(p) != 5 {
		t.Errorf("heat = %d, want 5", m.HeatAt(p))
	}
	// Same cell, different point.
	if m.HeatAt(geo.Pt(199, 101)) != 5 {
		t.Errorf("same-cell heat = %d, want 5", m.HeatAt(geo.Pt(199, 101)))
	}
	// Different cell unaffected.
	if m.HeatAt(geo.Pt(50, 50)) != 0 {
		t.Errorf("other cell heat = %d, want 0", m.HeatAt(geo.Pt(50, 50)))
	}
	if m.TotalPhotos() != 5 {
		t.Errorf("TotalPhotos = %d", m.TotalPhotos())
	}
}

func TestOutOfBoundsPhotosClamped(t *testing.T) {
	m := mustMap(t)
	m.AddPhoto(geo.Pt(-500, -500))
	m.AddPhoto(geo.Pt(5000, 5000))
	if m.TotalPhotos() != 2 {
		t.Errorf("TotalPhotos = %d, want 2", m.TotalPhotos())
	}
	if m.HeatAt(geo.Pt(0, 0)) != 1 {
		t.Errorf("corner heat = %d, want 1", m.HeatAt(geo.Pt(0, 0)))
	}
}

func TestFromPhotos(t *testing.T) {
	photos := []geo.Point{geo.Pt(10, 10), geo.Pt(15, 12), geo.Pt(900, 900)}
	m, err := FromPhotos(testBounds, 100, photos)
	if err != nil {
		t.Fatal(err)
	}
	if m.HeatAt(geo.Pt(12, 12)) != 2 {
		t.Errorf("heat = %d, want 2", m.HeatAt(geo.Pt(12, 12)))
	}
}

func TestHottestCells(t *testing.T) {
	m := mustMap(t)
	for i := 0; i < 10; i++ {
		m.AddPhoto(geo.Pt(550, 550)) // mall cell
	}
	for i := 0; i < 5; i++ {
		m.AddPhoto(geo.Pt(50, 50)) // lesser spot
	}
	m.AddPhoto(geo.Pt(950, 50))

	cells := m.HottestCells(2)
	if len(cells) != 2 {
		t.Fatalf("HottestCells = %d, want 2", len(cells))
	}
	if cells[0].Photos != 10 || cells[1].Photos != 5 {
		t.Errorf("photo counts = %d,%d want 10,5", cells[0].Photos, cells[1].Photos)
	}
	if !testBounds.Contains(cells[0].Center) {
		t.Errorf("cell center %v outside bounds", cells[0].Center)
	}
	// Zero-count cells are never reported.
	all := m.HottestCells(1000)
	if len(all) != 3 {
		t.Errorf("HottestCells(1000) = %d, want 3 non-empty", len(all))
	}
}

func TestRankByHeat(t *testing.T) {
	m := mustMap(t)
	// Airport cell: very hot. Chain cells: mildly warm.
	for i := 0; i < 100; i++ {
		m.AddPhoto(geo.Pt(850, 850))
	}
	for i := 0; i < 3; i++ {
		m.AddPhoto(geo.Pt(150, 150))
		m.AddPhoto(geo.Pt(450, 450))
	}
	positions := map[string][]geo.Point{
		// Few APs, all in the hot area — the paper's airport case.
		"AirportFree": {geo.Pt(850, 850), geo.Pt(860, 855)},
		// Many APs in lukewarm areas.
		"ChainShop": {geo.Pt(150, 150), geo.Pt(450, 450), geo.Pt(750, 150), geo.Pt(50, 950)},
		"ColdNet":   {geo.Pt(250, 950)},
	}
	ranked := m.RankByHeat(positions)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d SSIDs", len(ranked))
	}
	if ranked[0].SSID != "AirportFree" {
		t.Errorf("top by heat = %q, want AirportFree (few APs in hot area)", ranked[0].SSID)
	}
	if ranked[0].Heat != 200 {
		t.Errorf("airport heat = %d, want 200", ranked[0].Heat)
	}
	if ranked[1].SSID != "ChainShop" || ranked[1].Heat != 6 {
		t.Errorf("second = %+v", ranked[1])
	}
	if ranked[2].Heat != 0 {
		t.Errorf("cold heat = %d", ranked[2].Heat)
	}
}

func TestRankByHeatDeterministicTies(t *testing.T) {
	m := mustMap(t)
	positions := map[string][]geo.Point{
		"b": {geo.Pt(1, 1)}, "a": {geo.Pt(2, 2)}, "c": {geo.Pt(3, 3)},
	}
	for trial := 0; trial < 5; trial++ {
		ranked := m.RankByHeat(positions)
		if ranked[0].SSID != "a" || ranked[1].SSID != "b" || ranked[2].SSID != "c" {
			t.Fatalf("tie order: %v", ranked)
		}
	}
}

func TestRankWeights(t *testing.T) {
	w := RankWeights(200)
	if len(w) != 200 {
		t.Fatalf("len = %d", len(w))
	}
	if w[0] != 200 || w[199] != 1 {
		t.Errorf("w[0]=%v w[199]=%v, want 200 and 1 (paper's assignment)", w[0], w[199])
	}
	if RankWeights(0) != nil || RankWeights(-3) != nil {
		t.Error("non-positive n should return nil")
	}
}

func TestQuickRankWeightsMonotone(t *testing.T) {
	f := func(n uint8) bool {
		w := RankWeights(int(n))
		for i := 1; i < len(w); i++ {
			if w[i] >= w[i-1] || w[i] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDimsAndCellCenter(t *testing.T) {
	m := mustMap(t)
	cols, rows := m.Dims()
	if cols != 11 || rows != 11 {
		t.Errorf("Dims = %d,%d want 11,11", cols, rows)
	}
	if c := m.CellCenter(0, 0); c != geo.Pt(50, 50) {
		t.Errorf("CellCenter(0,0) = %v", c)
	}
	if m.CellSize() != 100 || m.Bounds() != testBounds {
		t.Error("accessors disagree with construction")
	}
}
