package report

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"cityhunter"
	"cityhunter/internal/experiments"
)

var (
	worldOnce sync.Once
	worldVal  *cityhunter.World
	worldErr  error
)

func testWorld(t *testing.T) *cityhunter.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = cityhunter.NewWorld(cityhunter.WithSeed(1))
	})
	if worldErr != nil {
		t.Fatalf("NewWorld: %v", worldErr)
	}
	return worldVal
}

func TestWriteFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	w := testWorld(t)
	opts := experiments.Options{SlotDuration: 4 * time.Minute, ArrivalScale: 0.5}

	t1, err := experiments.Table1(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := experiments.Table4(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := experiments.Figure2(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	gridOpts := opts
	gridOpts.SlotDuration = 2 * time.Minute
	grid, err := experiments.Grid(context.Background(), w, gridOpts)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	err = Write(&b, Inputs{
		Seed:    1,
		Table1:  t1,
		Table4:  t4,
		Figure2: f2,
		Grid:    grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Measured results",
		"## Headline",
		"Table I",
		"Table IV",
		"Figure 2",
		"Figure 6",
		"| subway passage |",
		"KARMA",
		"reproduced",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// No stray formatting placeholders.
	if strings.Contains(out, "%!") {
		t.Error("fmt placeholder leaked into report")
	}
}

func TestWriteEmptyInputs(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, Inputs{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "seed 7") {
		t.Error("header missing seed")
	}
}

func TestRatioRendering(t *testing.T) {
	if got := ratio(10, 2); got != "5.0:1" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(3, 0); got != "all:0" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(0, 0); got != "-" {
		t.Errorf("ratio = %q", got)
	}
}
