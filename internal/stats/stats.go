// Package stats aggregates experiment observations into the quantities the
// paper reports: hit rates h and h_b, the windowed real-time broadcast hit
// rate h_b^r (Fig. 1b), histograms of SSIDs tried per client (Fig. 2), and
// the source/buffer breakdowns of successful SSIDs (Fig. 6).
package stats

import (
	"fmt"
	"math"
	"time"

	"cityhunter/internal/core"
)

// ClientOutcome is one phone's summary after a run.
type ClientOutcome struct {
	// Arrived and Departed bound the phone's presence (Departed may be
	// the run horizon for phones still present at the end).
	Arrived  time.Duration
	Departed time.Duration
	// DirectProber marks phones that disclosed PNL entries.
	DirectProber bool
	// Probed reports whether the attacker ever heard the phone.
	Probed bool
	// Connected reports a successful capture and when.
	Connected   bool
	ConnectedAt time.Duration
	// SSIDsSent counts the distinct SSIDs the attacker tried on it.
	SSIDsSent int
	// MACsUsed counts the source MACs the phone appeared under — 1 for a
	// stable-MAC phone, more under MAC randomization. Far-field outcomes
	// assembled from legacy snapshots may leave it 0 (unknown).
	MACsUsed int
}

// Tally is the paper's table row: client counts and hit rates.
type Tally struct {
	Total              int
	Direct             int
	Broadcast          int
	ConnectedDirect    int
	ConnectedBroadcast int
}

// Add accumulates one outcome. Phones never heard by the attacker are not
// counted (the paper counts phones whose probes were received).
func (t *Tally) Add(o ClientOutcome) {
	if !o.Probed {
		return
	}
	t.Total++
	if o.DirectProber {
		t.Direct++
		if o.Connected {
			t.ConnectedDirect++
		}
		return
	}
	t.Broadcast++
	if o.Connected {
		t.ConnectedBroadcast++
	}
}

// HitRate returns h = connected / total.
func (t Tally) HitRate() float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(t.ConnectedDirect+t.ConnectedBroadcast) / float64(t.Total)
}

// BroadcastHitRate returns h_b = broadcast connected / broadcast clients.
func (t Tally) BroadcastHitRate() float64 {
	if t.Broadcast == 0 {
		return 0
	}
	return float64(t.ConnectedBroadcast) / float64(t.Broadcast)
}

// String renders the tally like a paper table row.
func (t Tally) String() string {
	return fmt.Sprintf("clients=%d (direct %d / broadcast %d) connected=%d(direct);%d(broadcast) h=%.1f%% h_b=%.1f%%",
		t.Total, t.Direct, t.Broadcast, t.ConnectedDirect, t.ConnectedBroadcast,
		100*t.HitRate(), 100*t.BroadcastHitRate())
}

// NewTally aggregates a batch of outcomes.
func NewTally(outcomes []ClientOutcome) Tally {
	var t Tally
	for _, o := range outcomes {
		t.Add(o)
	}
	return t
}

// WindowPoint is one real-time window of Fig. 1b: the broadcast clients
// that arrived in the window and how many of them were eventually hit.
type WindowPoint struct {
	Start     time.Duration
	End       time.Duration
	Broadcast int
	Hit       int
}

// Rate returns the window's h_b^r.
func (w WindowPoint) Rate() float64 {
	if w.Broadcast == 0 {
		return 0
	}
	return float64(w.Hit) / float64(w.Broadcast)
}

// RealTimeBroadcastHitRate slices the run into fixed windows and computes
// h_b^r per window: among the broadcast-probing clients first heard in the
// window, the fraction eventually captured.
func RealTimeBroadcastHitRate(outcomes []ClientOutcome, window, horizon time.Duration) []WindowPoint {
	if window <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + window - 1) / window)
	points := make([]WindowPoint, n)
	for i := range points {
		points[i].Start = time.Duration(i) * window
		points[i].End = points[i].Start + window
	}
	for _, o := range outcomes {
		if !o.Probed || o.DirectProber {
			continue
		}
		i := int(o.Arrived / window)
		if i < 0 || i >= n {
			continue
		}
		points[i].Broadcast++
		if o.Connected {
			points[i].Hit++
		}
	}
	return points
}

// Histogram is a fixed-bin-width histogram over non-negative values.
type Histogram struct {
	binWidth float64
	counts   []int
	n        int
	sum      float64
	min, max float64
}

// NewHistogram returns a histogram with the given bin width.
func NewHistogram(binWidth float64) (*Histogram, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("stats: bin width %v must be positive", binWidth)
	}
	return &Histogram{binWidth: binWidth, min: math.Inf(1), max: math.Inf(-1)}, nil
}

// Add records one value; negative values clamp to bin zero.
func (h *Histogram) Add(v float64) {
	i := 0
	if v > 0 {
		i = int(v / h.binWidth)
	}
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
	h.n++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int { return h.n }

// Mean returns the average of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the extremes; both are 0 when the histogram is empty.
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value.
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Bin is one histogram bucket.
type Bin struct {
	Lo, Hi   float64
	Count    int
	Fraction float64
}

// Bins returns the non-empty-prefix of buckets with fractions of the total.
func (h *Histogram) Bins() []Bin {
	bins := make([]Bin, len(h.counts))
	for i, c := range h.counts {
		bins[i] = Bin{
			Lo:    float64(i) * h.binWidth,
			Hi:    float64(i+1) * h.binWidth,
			Count: c,
		}
		if h.n > 0 {
			bins[i].Fraction = float64(c) / float64(h.n)
		}
	}
	return bins
}

// Breakdown classifies the SSIDs that hit broadcast-probing clients, the
// two groupings of Fig. 6.
type Breakdown struct {
	// Source grouping: entries learnt from WiGLE (city-wide + nearby)
	// versus harvested from directed probes versus carrier seeding.
	FromWiGLE   int
	FromDirect  int
	FromCarrier int
	// Buffer grouping: served from the popularity side (buffer + ghost)
	// versus the freshness side.
	FromPopularity int
	FromFreshness  int
}

// NewBreakdown classifies hit records. Only hits on broadcast-probing
// clients matter for Fig. 6, so callers pass a predicate saying whether the
// victim was a direct prober.
func NewBreakdown(hits []core.HitRecord, isDirectProber func(core.HitRecord) bool) Breakdown {
	var b Breakdown
	for _, h := range hits {
		if isDirectProber != nil && isDirectProber(h) {
			continue
		}
		switch {
		case h.Source.FromWiGLE():
			b.FromWiGLE++
		case h.Source == core.SourceCarrier:
			b.FromCarrier++
		default:
			b.FromDirect++
		}
		switch {
		case h.Kind.FromPopularity():
			b.FromPopularity++
		case h.Kind.FromFreshness():
			b.FromFreshness++
		}
	}
	return b
}

// SourceRatio returns FromWiGLE : FromDirect as a float (Inf when no
// direct-sourced hits).
func (b Breakdown) SourceRatio() float64 {
	if b.FromDirect == 0 {
		return math.Inf(1)
	}
	return float64(b.FromWiGLE) / float64(b.FromDirect)
}

// BufferRatio returns FromPopularity : FromFreshness as a float (Inf when
// no freshness hits).
func (b Breakdown) BufferRatio() float64 {
	if b.FromFreshness == 0 {
		return math.Inf(1)
	}
	return float64(b.FromPopularity) / float64(b.FromFreshness)
}

// WilsonInterval returns the 95 % Wilson score interval for k successes in
// n trials — the right interval for the small hit counts these experiments
// produce (a normal approximation misbehaves near 0).
func WilsonInterval(k, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 0
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// RateSummary aggregates a rate across replicated runs.
type RateSummary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	// SD is the sample standard deviation (0 when N < 2).
	SD float64
}

// SummarizeRates computes the replication summary of a rate series.
func SummarizeRates(rates []float64) RateSummary {
	s := RateSummary{N: len(rates)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = rates[0], rates[0]
	sum := 0.0
	for _, r := range rates {
		sum += r
		s.Min = math.Min(s.Min, r)
		s.Max = math.Max(s.Max, r)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, r := range rates {
			d := r - s.Mean
			ss += d * d
		}
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders the summary as "mean (min–max, n=N)".
func (s RateSummary) String() string {
	return fmt.Sprintf("%.1f%% (%.1f%%-%.1f%%, n=%d)", 100*s.Mean, 100*s.Min, 100*s.Max, s.N)
}
