package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cityhunter/internal/core"
	"cityhunter/internal/ieee80211"
)

func TestTallyAddAndRates(t *testing.T) {
	outcomes := []ClientOutcome{
		{Probed: true, DirectProber: true, Connected: true},
		{Probed: true, DirectProber: true},
		{Probed: true, Connected: true},
		{Probed: true},
		{Probed: true},
		{Probed: false, Connected: true}, // never heard: not counted
	}
	tally := NewTally(outcomes)
	if tally.Total != 5 {
		t.Errorf("Total = %d, want 5", tally.Total)
	}
	if tally.Direct != 2 || tally.Broadcast != 3 {
		t.Errorf("direct/broadcast = %d/%d", tally.Direct, tally.Broadcast)
	}
	if tally.ConnectedDirect != 1 || tally.ConnectedBroadcast != 1 {
		t.Errorf("connected = %d/%d", tally.ConnectedDirect, tally.ConnectedBroadcast)
	}
	if got, want := tally.HitRate(), 2.0/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("h = %v, want %v", got, want)
	}
	if got, want := tally.BroadcastHitRate(), 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("h_b = %v, want %v", got, want)
	}
	if tally.String() == "" {
		t.Error("empty String")
	}
}

func TestTallyEmpty(t *testing.T) {
	var tally Tally
	if tally.HitRate() != 0 || tally.BroadcastHitRate() != 0 {
		t.Error("rates on empty tally should be 0")
	}
}

func TestRealTimeBroadcastHitRate(t *testing.T) {
	mins := func(m int) time.Duration { return time.Duration(m) * time.Minute }
	outcomes := []ClientOutcome{
		{Probed: true, Arrived: mins(0), Connected: true},
		{Probed: true, Arrived: mins(1)},
		{Probed: true, Arrived: mins(2), Connected: true},
		{Probed: true, Arrived: mins(3), Connected: true},
		{Probed: true, Arrived: mins(3), DirectProber: true, Connected: true}, // excluded
		{Probed: false, Arrived: mins(3)},                                     // excluded
		{Probed: true, Arrived: mins(100)},                                    // beyond horizon
	}
	points := RealTimeBroadcastHitRate(outcomes, 2*time.Minute, 6*time.Minute)
	if len(points) != 3 {
		t.Fatalf("windows = %d, want 3", len(points))
	}
	if points[0].Broadcast != 2 || points[0].Hit != 1 {
		t.Errorf("window 0 = %+v", points[0])
	}
	if got := points[0].Rate(); got != 0.5 {
		t.Errorf("rate 0 = %v", got)
	}
	if points[1].Broadcast != 2 || points[1].Hit != 2 {
		t.Errorf("window 1 = %+v", points[1])
	}
	if points[2].Broadcast != 0 || points[2].Rate() != 0 {
		t.Errorf("window 2 = %+v", points[2])
	}
}

func TestRealTimeInvalidArgs(t *testing.T) {
	if RealTimeBroadcastHitRate(nil, 0, time.Hour) != nil {
		t.Error("zero window accepted")
	}
	if RealTimeBroadcastHitRate(nil, time.Minute, 0) != nil {
		t.Error("zero horizon accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 39, 40, 80, 80, 200} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d", h.Count())
	}
	bins := h.Bins()
	if bins[0].Count != 2 { // 0 and 39
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Count != 1 { // 40
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[2].Count != 2 { // 80, 80
		t.Errorf("bin2 = %+v", bins[2])
	}
	if bins[5].Count != 1 { // 200
		t.Errorf("bin5 = %+v", bins[5])
	}
	if got := bins[0].Fraction; math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("fraction = %v", got)
	}
	if h.Min() != 0 || h.Max() != 200 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if want := (0 + 39 + 40 + 80 + 80 + 200) / 6.0; math.Abs(h.Mean()-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", h.Mean(), want)
	}
}

func TestHistogramEmptyAndInvalid(t *testing.T) {
	if _, err := NewHistogram(0); err == nil {
		t.Error("zero bin width accepted")
	}
	h, err := NewHistogram(10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram stats not zero")
	}
	h.Add(-5) // clamps to bin 0
	if h.Bins()[0].Count != 1 {
		t.Error("negative value not clamped to bin 0")
	}
}

func TestQuickHistogramTotal(t *testing.T) {
	f := func(vals []uint16) bool {
		h, err := NewHistogram(7)
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Add(float64(v % 1000))
		}
		total := 0
		for _, b := range h.Bins() {
			total += b.Count
		}
		return total == len(vals) && h.Count() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func hit(src core.Source, kind core.BufferKind, direct bool) core.HitRecord {
	m := ieee80211.MAC{0x02, 0, 0, 0, 0, 1}
	if direct {
		m[5] = 2
	}
	return core.HitRecord{MAC: m, SSID: "x", Source: src, Kind: kind}
}

func TestBreakdown(t *testing.T) {
	directMAC := ieee80211.MAC{0x02, 0, 0, 0, 0, 2}
	hits := []core.HitRecord{
		hit(core.SourceWiGLE, core.KindPopularity, false),
		hit(core.SourceNearby, core.KindPopularityGhost, false),
		hit(core.SourceDirectProbe, core.KindFreshness, false),
		hit(core.SourceCarrier, core.KindFreshnessGhost, false),
		hit(core.SourceWiGLE, core.KindMirror, true), // direct prober: excluded
	}
	b := NewBreakdown(hits, func(h core.HitRecord) bool { return h.MAC == directMAC })
	if b.FromWiGLE != 2 {
		t.Errorf("FromWiGLE = %d, want 2 (wigle + nearby)", b.FromWiGLE)
	}
	if b.FromDirect != 1 || b.FromCarrier != 1 {
		t.Errorf("direct/carrier = %d/%d", b.FromDirect, b.FromCarrier)
	}
	if b.FromPopularity != 2 || b.FromFreshness != 2 {
		t.Errorf("pop/fresh = %d/%d", b.FromPopularity, b.FromFreshness)
	}
	if got := b.SourceRatio(); got != 2 {
		t.Errorf("SourceRatio = %v", got)
	}
	if got := b.BufferRatio(); got != 1 {
		t.Errorf("BufferRatio = %v", got)
	}
}

func TestBreakdownNilPredicate(t *testing.T) {
	hits := []core.HitRecord{hit(core.SourceWiGLE, core.KindPopularity, true)}
	b := NewBreakdown(hits, nil)
	if b.FromWiGLE != 1 {
		t.Error("nil predicate should include every hit")
	}
}

func TestBreakdownInfiniteRatios(t *testing.T) {
	b := NewBreakdown([]core.HitRecord{hit(core.SourceWiGLE, core.KindPopularity, false)}, nil)
	if !math.IsInf(b.SourceRatio(), 1) {
		t.Error("SourceRatio with zero direct should be +Inf")
	}
	if !math.IsInf(b.BufferRatio(), 1) {
		t.Error("BufferRatio with zero freshness should be +Inf")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 0 {
		t.Error("empty trials should give [0,0]")
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi < 0.01 || hi > 0.08 {
		t.Errorf("0/100 interval = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("50/100 interval [%v, %v] excludes the point estimate", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Errorf("50/100 interval [%v, %v] implausibly wide", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi < 1-1e-9 || lo < 0.9 {
		t.Errorf("100/100 interval = [%v, %v]", lo, hi)
	}
	// Interval shrinks with n.
	_, hiSmall := WilsonInterval(5, 10)
	loSmall, _ := WilsonInterval(5, 10)
	loBig, hiBig := WilsonInterval(500, 1000)
	if hiBig-loBig >= hiSmall-loSmall {
		t.Error("interval did not shrink with sample size")
	}
}

func TestSummarizeRates(t *testing.T) {
	if s := SummarizeRates(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := SummarizeRates([]float64{0.1, 0.2, 0.3})
	if math.Abs(s.Mean-0.2) > 1e-12 || s.Min != 0.1 || s.Max != 0.3 || s.N != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.SD < 0.09 || s.SD > 0.11 {
		t.Errorf("SD = %v, want ≈0.1", s.SD)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	one := SummarizeRates([]float64{0.5})
	if one.SD != 0 {
		t.Errorf("single-sample SD = %v", one.SD)
	}
}
