package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cityhunter/internal/stats"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRequiresDir(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Fatal("empty store dir accepted")
	}
}

func TestStoreSpecRoundTrip(t *testing.T) {
	st := testStore(t)
	hash := strings.Repeat("ab", 32)
	in := SpecResult{
		Index:     3,
		Name:      "lunch baseline",
		Venue:     "canteen",
		Attack:    "cityhunter",
		Slot:      4,
		SlotLabel: "12pm-1pm",
		Seconds:   120,
		Tally:     stats.Tally{Total: 40, ConnectedDirect: 3, ConnectedBroadcast: 5},
	}
	if _, ok := st.Spec(hash, 3); ok {
		t.Fatal("spec present before Put")
	}
	if err := st.PutSpec(hash, 3, in); err != nil {
		t.Fatalf("PutSpec: %v", err)
	}
	out, ok := st.Spec(hash, 3)
	if !ok {
		t.Fatal("spec absent after Put")
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("spec did not round-trip:\nin:  %+v\nout: %+v", in, out)
	}
	// A different index stays absent.
	if _, ok := st.Spec(hash, 4); ok {
		t.Error("unwritten index reported present")
	}
}

func TestStoreTornSpecReadsAsAbsent(t *testing.T) {
	st := testStore(t)
	hash := strings.Repeat("cd", 32)
	if err := st.PutSpec(hash, 0, SpecResult{Index: 0}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.jobDir(hash), specFile(0))
	if err := os.WriteFile(path, []byte(`{"index": 0, "tal`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Spec(hash, 0); ok {
		t.Error("torn spec file reported present; it must read as absent so the spec re-runs")
	}
}

func TestStorePlanIdempotent(t *testing.T) {
	st := testStore(t)
	hash := strings.Repeat("ef", 32)
	if err := st.PutPlan(hash, []byte("doc-v1\n")); err != nil {
		t.Fatal(err)
	}
	// A second put must not clobber the original document (same hash ==
	// same bytes in real use; the guard is what this checks).
	if err := st.PutPlan(hash, []byte("doc-v2\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(st.jobDir(hash), "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "doc-v1\n" {
		t.Errorf("plan document rewritten: %q", data)
	}
}

func TestStoreResultRoundTrip(t *testing.T) {
	st := testStore(t)
	hash := strings.Repeat("01", 32)
	if _, ok := st.Result(hash); ok {
		t.Fatal("result present before Put")
	}
	doc := []byte(`{"hash": "x"}` + "\n")
	if err := st.PutResult(hash, doc); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Result(hash)
	if !ok || string(got) != string(doc) {
		t.Errorf("result did not round-trip: %q (present=%v)", got, ok)
	}
}

func TestStoreShardsByHashPrefix(t *testing.T) {
	st := testStore(t)
	hash := "f0" + strings.Repeat("12", 31)
	if err := st.PutResult(hash, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "f0", hash, "result.json")); err != nil {
		t.Errorf("expected sharded layout dir/f0/<hash>/result.json: %v", err)
	}
}
