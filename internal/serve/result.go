package serve

import (
	"cityhunter/internal/campaign"
	"cityhunter/internal/scenario"
	"cityhunter/internal/stats"
)

// SpecResult is the durable summary of one finished campaign spec — the
// checkpoint unit of the result store. It deliberately carries only
// integers and strings (plus the duration in seconds, a float that
// round-trips JSON exactly), so a spec served from the store contributes
// bytes identical to one that just ran.
type SpecResult struct {
	// Index is the spec's position in the campaign.
	Index int `json:"index"`
	// Name is the spec's label, when it has one.
	Name string `json:"name,omitempty"`
	// Venue and Attack identify single-venue runs; SlotLabel is the
	// "8am-9am" rendering of Slot.
	Venue     string `json:"venue,omitempty"`
	Attack    string `json:"attack,omitempty"`
	Slot      int    `json:"slot"`
	SlotLabel string `json:"slotLabel,omitempty"`
	// Seconds is the simulated duration.
	Seconds float64 `json:"durationSeconds"`
	// Tally is the run's aggregate (pooled across sites for deployment
	// specs) — the only part the campaign aggregate needs.
	Tally stats.Tally `json:"tally"`
	// Sites, Knowledge and Roams describe deployment specs; empty for
	// single-venue runs.
	Sites     []SiteResult `json:"sites,omitempty"`
	Knowledge string       `json:"knowledge,omitempty"`
	Roams     int          `json:"roams,omitempty"`
}

// SiteResult is one deployment site's share of a SpecResult.
type SiteResult struct {
	Venue string      `json:"venue"`
	Tally stats.Tally `json:"tally"`
}

// Result is a job's final durable document: every spec's summary in spec
// order plus the campaign aggregate rebuilt from their tallies. Because
// both parts derive from deterministic runs (or their exact stored
// checkpoints), resubmitting a plan always reproduces this byte for byte.
type Result struct {
	Hash      string             `json:"hash"`
	Kind      string             `json:"kind"`
	Seed      int64              `json:"seed"`
	Specs     []SpecResult       `json:"specs"`
	Aggregate campaign.Aggregate `json:"aggregate"`
}

// specResultFromRun summarises a single-venue run.
func specResultFromRun(index int, name string, res *scenario.Result) SpecResult {
	return SpecResult{
		Index:     index,
		Name:      name,
		Venue:     res.Venue,
		Attack:    res.Attack,
		Slot:      res.Slot,
		SlotLabel: res.SlotLabel,
		Seconds:   res.Duration.Seconds(),
		Tally:     res.Tally,
	}
}

// specResultFromDeployment summarises a deployment run: the pooled tally
// plus per-site shares.
func specResultFromDeployment(index int, name string, spec campaign.Spec, dep *scenario.DeploymentResult) SpecResult {
	sr := SpecResult{
		Index:     index,
		Name:      name,
		Attack:    campaign.AttackName(spec.Attack),
		Slot:      spec.Slot,
		Seconds:   dep.Duration.Seconds(),
		Tally:     dep.Tally,
		Knowledge: dep.Knowledge.String(),
		Roams:     dep.Roams,
	}
	for _, site := range dep.Sites {
		sr.Sites = append(sr.Sites, SiteResult{Venue: site.Venue, Tally: site.Tally})
	}
	return sr
}
