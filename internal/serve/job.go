package serve

import (
	"context"
	"sync"
	"time"

	"cityhunter/internal/campaign"
	"cityhunter/internal/plan"
)

// Job states. queued and running are live; the other four are terminal.
// checkpointed means a graceful drain stopped the job mid-campaign:
// finished specs are durable in the store and resubmitting the same plan
// resumes from them.
const (
	StateQueued       = "queued"
	StateRunning      = "running"
	StateFinished     = "finished"
	StateFailed       = "failed"
	StateCancelled    = "cancelled"
	StateCheckpointed = "checkpointed"
)

// jobEvent is one entry in a job's event log, streamed over SSE.
type jobEvent struct {
	At     time.Time `json:"at"`
	Type   string    `json:"type"`
	Detail string    `json:"detail,omitempty"`
}

// jobEventBuffer bounds each SSE subscriber's channel; job event rates
// are tiny (a handful per spec), so overflow means a truly stuck client.
const jobEventBuffer = 256

// job is one submitted plan: its normalized specs, its identity in the
// result store, its lifecycle state and event log.
type job struct {
	id        string
	hash      string
	kind      plan.Kind
	label     string
	seed      int64
	workers   int
	specs     []campaign.Spec
	submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	errMsg   string
	started  time.Time
	finished time.Time
	done     int
	cached   int
	ran      int
	failed   int
	events   []jobEvent
	subs     map[int]chan jobEvent
	subSeq   int
	closed   bool
}

// JobStatus is the JSON shape of a job on the API.
type JobStatus struct {
	ID        string     `json:"id"`
	Hash      string     `json:"hash"`
	Kind      string     `json:"kind"`
	Label     string     `json:"label,omitempty"`
	State     string     `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Seed      int64      `json:"seed"`
	Workers   int        `json:"workers"`
	// Spec counters: Total = Done + remaining; Done = Cached + Run +
	// Failed. Cached counts specs served from the result store — the
	// resume verification hook.
	SpecsTotal  int `json:"specsTotal"`
	SpecsDone   int `json:"specsDone"`
	SpecsCached int `json:"specsCached"`
	SpecsRun    int `json:"specsRun"`
	SpecsFailed int `json:"specsFailed"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Hash:        j.hash,
		Kind:        string(j.kind),
		Label:       j.label,
		State:       j.state,
		Error:       j.errMsg,
		Submitted:   j.submitted,
		Seed:        j.seed,
		Workers:     j.workers,
		SpecsTotal:  len(j.specs),
		SpecsDone:   j.done,
		SpecsCached: j.cached,
		SpecsRun:    j.ran,
		SpecsFailed: j.failed,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// terminal reports whether the job reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// event appends to the log and fans out to subscribers. Full subscriber
// channels drop (the log itself is complete; SSE is best-effort live).
// Callers hold j.mu.
func (j *job) eventLocked(typ, detail string) {
	ev := jobEvent{At: time.Now(), Type: typ, Detail: detail}
	j.events = append(j.events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// event appends one event under the lock.
func (j *job) event(typ, detail string) {
	j.mu.Lock()
	j.eventLocked(typ, detail)
	j.mu.Unlock()
}

// terminate moves the job to a terminal state, logs the closing event and
// closes every subscriber channel (ending their SSE streams after the
// final event drains).
func (j *job) terminate(state, errMsg, detail string) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.closed = true
	j.eventLocked(state, detail)
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	j.cancel()
	j.mu.Unlock()
}

// start marks the job running.
func (j *job) start() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.eventLocked("started", "")
	j.mu.Unlock()
}

// subscribe registers an SSE client: it returns a snapshot of the event
// log so far, a live channel (nil when the job is already terminal — the
// replay is the whole story), and a cancel func.
func (j *job) subscribe() ([]jobEvent, chan jobEvent, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := make([]jobEvent, len(j.events))
	copy(replay, j.events)
	if j.closed {
		return replay, nil, func() {}
	}
	ch := make(chan jobEvent, jobEventBuffer)
	j.subSeq++
	id := j.subSeq
	j.subs[id] = ch
	return replay, ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
		j.mu.Unlock()
	}
}
