package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is the content-addressed on-disk result store. Every job is keyed
// by the sha256 of its canonical plan document (envelope bytes plus the
// run parameters; see Server hashing), under dir/<hh>/<hash>/:
//
//	plan.json       the hashed document, so the store is self-describing
//	spec-NNN.json   one durable SpecResult per finished campaign spec
//	result.json     the final Result, present only for completed jobs
//
// Per-spec files are the checkpoint granularity: a cancelled or drained
// job resumed with the same plan skips every spec that already has one,
// and the final aggregate is rebuilt from the stored tallies, byte-
// identical to an uninterrupted run. All writes are atomic (temp file +
// rename), so a crash mid-write never leaves a torn checkpoint.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a result store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: result store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: result store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

// jobDir is the directory of one content hash, sharded by the first byte
// so a long-lived store never piles every job into one directory.
func (st *Store) jobDir(hash string) string {
	return filepath.Join(st.dir, hash[:2], hash)
}

// writeAtomic writes data via a temp file in the destination directory
// plus rename, so readers never observe a partial file.
func (st *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: store write: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: store write: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("serve: store write: %w", werr)
		}
		return fmt.Errorf("serve: store write: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("serve: store write: %w", err)
	}
	return nil
}

// PutPlan persists the hashed plan document once; later identical
// submissions leave the existing file untouched.
func (st *Store) PutPlan(hash string, doc []byte) error {
	path := filepath.Join(st.jobDir(hash), "plan.json")
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return st.writeAtomic(path, doc)
}

func specFile(index int) string { return fmt.Sprintf("spec-%03d.json", index) }

// PutSpec checkpoints one finished spec.
func (st *Store) PutSpec(hash string, index int, sr SpecResult) error {
	data, err := json.MarshalIndent(sr, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode spec %d: %w", index, err)
	}
	return st.writeAtomic(filepath.Join(st.jobDir(hash), specFile(index)), append(data, '\n'))
}

// Spec loads spec index's checkpoint, reporting whether one exists. A
// torn or unreadable file reads as absent — the spec just re-runs.
func (st *Store) Spec(hash string, index int) (SpecResult, bool) {
	data, err := os.ReadFile(filepath.Join(st.jobDir(hash), specFile(index)))
	if err != nil {
		return SpecResult{}, false
	}
	var sr SpecResult
	if err := json.Unmarshal(data, &sr); err != nil {
		return SpecResult{}, false
	}
	return sr, true
}

// PutResult persists the job's final result document.
func (st *Store) PutResult(hash string, doc []byte) error {
	return st.writeAtomic(filepath.Join(st.jobDir(hash), "result.json"), doc)
}

// Result returns the final result document, reporting whether one exists.
func (st *Store) Result(hash string) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(st.jobDir(hash), "result.json"))
	if err != nil {
		return nil, false
	}
	return data, true
}
