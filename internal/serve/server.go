// Package serve is the campaign job plane: an HTTP/JSON API that accepts
// plans (the versioned envelope of internal/plan) as job submissions, runs
// them on a shared bounded campaign pool, streams per-job progress over
// SSE, and persists results in a content-addressed store so identical
// submissions are cache hits and interrupted campaigns resume from their
// completed specs.
//
// The API surface:
//
//	POST   /api/v1/jobs               submit a plan (JSON submission body)
//	GET    /api/v1/jobs               list jobs
//	GET    /api/v1/jobs/{id}          one job's status
//	DELETE /api/v1/jobs/{id}          cancel a job (checkpoints survive)
//	GET    /api/v1/jobs/{id}/result   the final result document
//	GET    /api/v1/jobs/{id}/events   SSE stream of the job's event log
//
// Everything else — /metrics, /runs, /events, /debug/pprof — is the
// embedded monitor.Server: every job's campaign and spec runs publish into
// it labelled with the job id, and the server's own job counters are
// attached to the same exposition.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"cityhunter/internal/campaign"
	"cityhunter/internal/obs"
	"cityhunter/internal/obs/monitor"
	"cityhunter/internal/plan"
	"cityhunter/internal/scenario"
	"cityhunter/internal/stats"
)

// DefaultMaxBodyBytes bounds job submission bodies (plans are small; a
// megabyte fits thousands of specs).
const DefaultMaxBodyBytes = 1 << 20

// Config configures a job server.
type Config struct {
	// StoreDir roots the content-addressed result store. Required.
	StoreDir string
	// BaseConfig supplies the base run configuration (world handles and
	// calibrated defaults) for a job seed. Required — it is how the
	// server stays decoupled from world construction.
	BaseConfig func(seed int64) (scenario.Config, error)
	// Workers bounds each job's campaign pool (0 = GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently running jobs; further submissions
	// queue. 0 means 1.
	MaxJobs int
	// MaxBodyBytes bounds submission bodies; 0 selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// DefaultPartitions, when non-zero, is applied to submitted
	// deployment plans that do not choose an execution engine
	// themselves (partitions 0): scenario.AutoPartitions for one
	// partition per site, or a positive explicit count. The default is
	// folded into the plan before hashing, so the content-addressed
	// store keys reflect the engine the job actually ran on. Plans that
	// carry their own partitions setting are never overridden.
	DefaultPartitions int
	// Monitor, when non-nil, is the telemetry plane to mount and publish
	// into; nil creates a private one.
	Monitor *monitor.Server
}

// Server is the job plane. Create with New, expose with Start (or mount
// Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	store   *Store
	monitor *monitor.Server

	reg               *obs.Registry
	mJobsSubmitted    *obs.Counter
	mJobsFinished     *obs.Counter
	mJobsFailed       *obs.Counter
	mJobsCancelled    *obs.Counter
	mJobsCheckpointed *obs.Counter
	mSpecsRun         *obs.Counter
	mSpecsCached      *obs.Counter
	gJobsRunning      *obs.Gauge

	drain chan struct{} // closed by Shutdown: stop dispatching specs
	sem   chan struct{} // MaxJobs tokens

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	seq      int
	draining bool
	wg       sync.WaitGroup

	httpMu sync.Mutex
	ln     net.Listener
	hs     *http.Server
}

// New builds a job server.
func New(cfg Config) (*Server, error) {
	if cfg.BaseConfig == nil {
		return nil, errors.New("serve: Config.BaseConfig is required")
	}
	store, err := NewStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	mon := cfg.Monitor
	if mon == nil {
		mon = monitor.New()
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:               cfg,
		store:             store,
		monitor:           mon,
		reg:               reg,
		mJobsSubmitted:    reg.Counter("server_jobs_submitted"),
		mJobsFinished:     reg.Counter("server_jobs_finished"),
		mJobsFailed:       reg.Counter("server_jobs_failed"),
		mJobsCancelled:    reg.Counter("server_jobs_cancelled"),
		mJobsCheckpointed: reg.Counter("server_jobs_checkpointed"),
		mSpecsRun:         reg.Counter("server_specs_run"),
		mSpecsCached:      reg.Counter("server_specs_cached"),
		gJobsRunning:      reg.Gauge("server_jobs_running"),
		drain:             make(chan struct{}),
		sem:               make(chan struct{}, cfg.MaxJobs),
		jobs:              make(map[string]*job),
	}
	mon.Attach(reg, "component", "server")
	return s, nil
}

// Monitor returns the mounted telemetry plane.
func (s *Server) Monitor() *monitor.Server { return s.monitor }

// Store returns the result store.
func (s *Server) Store() *Store { return s.store }

// submission is the POST /api/v1/jobs body. Plan is the versioned
// envelope and is the only accepted plan input. attack/slot/minutes apply
// to venue and deployment plans (campaign plans carry them per run) and
// workers overrides the server's per-job pool width — none of them enter
// the content hash except through the normalized plan parameters.
type submission struct {
	Plan    json.RawMessage `json:"plan"`
	Seed    int64           `json:"seed,omitempty"`
	Workers int             `json:"workers,omitempty"`
	Label   string          `json:"label,omitempty"`
	Attack  string          `json:"attack,omitempty"`
	Slot    int             `json:"slot,omitempty"`
	Minutes float64         `json:"minutes,omitempty"`
}

// apiError is every non-2xx JSON body: the message, plus the offending
// plan field when validation identified one.
type apiError struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders err as a structured JSON error; a scenario.FieldError
// anywhere in the chain contributes its field path.
func writeError(w http.ResponseWriter, code int, err error) {
	out := apiError{Error: err.Error()}
	var fe *scenario.FieldError
	if errors.As(err, &fe) {
		out.Field = fe.Path
	}
	writeJSON(w, code, out)
}

// Handler returns the full mux: the job API plus the mounted monitor.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	monh := s.monitor.Handler()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			s.handleIndex(w, r)
			return
		}
		monh.ServeHTTP(w, r)
	})
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "cityhunter campaign server")
	fmt.Fprintln(w, "  POST   /api/v1/jobs             submit a plan")
	fmt.Fprintln(w, "  GET    /api/v1/jobs             list jobs")
	fmt.Fprintln(w, "  GET    /api/v1/jobs/{id}        job status")
	fmt.Fprintln(w, "  DELETE /api/v1/jobs/{id}        cancel a job")
	fmt.Fprintln(w, "  GET    /api/v1/jobs/{id}/result final result JSON")
	fmt.Fprintln(w, "  GET    /api/v1/jobs/{id}/events SSE job event stream")
	fmt.Fprintln(w, "  GET    /metrics                 merged Prometheus exposition")
	fmt.Fprintln(w, "  GET    /runs, /events           live run telemetry")
	fmt.Fprintln(w, "  GET    /debug/pprof             process profiling")
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		s.mu.Lock()
		list := make([]JobStatus, 0, len(s.order))
		for _, id := range s.order {
			list = append(list, s.jobs[id].status())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	case http.MethodPost:
		s.handleSubmit(w, r)
	default:
		w.Header().Set("Allow", "GET, HEAD, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: server is draining"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: read body: %w", err))
		return
	}
	var sub submission
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode submission: %w", err))
		return
	}
	if len(sub.Plan) == 0 {
		writeError(w, http.StatusBadRequest, &scenario.FieldError{Path: "plan", Reason: "serve: submission needs a plan envelope"})
		return
	}
	p, err := plan.Decode(sub.Plan)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.DefaultPartitions != 0 && p.Kind == plan.KindDeployment && p.Deployment.Partitions == 0 {
		// Fold the server default in before admit hashes the plan, so
		// identical submissions against differently-configured servers
		// key on the engine they actually ran on. Re-validate: the
		// partitioned engine rejects configurations (shared knowledge,
		// overlapping radio ranges) the serial engine accepts.
		p.Deployment.Partitions = s.cfg.DefaultPartitions
		if err := p.Deployment.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	j, created, err := s.admit(p, sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, j.status())
}

// normalize turns a decoded plan plus submission parameters into the
// campaign spec list the job runs, along with the parameter string that
// joins the plan bytes under the content hash.
func normalize(p plan.Plan, sub submission) ([]campaign.Spec, string, error) {
	seed := sub.Seed
	if seed == 0 {
		seed = 1
	}
	if p.Kind == plan.KindCampaign {
		if sub.Attack != "" || sub.Slot != 0 || sub.Minutes != 0 {
			return nil, "", &scenario.FieldError{Path: "attack",
				Reason: "serve: campaign plans carry attack/slot/minutes per run; drop them from the submission"}
		}
		return p.Specs, fmt.Sprintf("seed=%d", seed), nil
	}
	attackName := sub.Attack
	if attackName == "" {
		attackName = "cityhunter"
	}
	kind, ok := campaign.AttackByName(attackName)
	if !ok {
		return nil, "", &scenario.FieldError{Path: "attack",
			Reason: fmt.Sprintf("serve: unknown attack %q (want karma|mana|prelim|cityhunter|known-beacons)", attackName)}
	}
	minutes := sub.Minutes
	if minutes == 0 {
		minutes = 60
	}
	if minutes < 0 {
		return nil, "", &scenario.FieldError{Path: "minutes",
			Reason: fmt.Sprintf("serve: minutes %v must be positive", minutes)}
	}
	spec := campaign.Spec{
		Attack:   kind,
		Slot:     sub.Slot,
		Duration: time.Duration(minutes * float64(time.Minute)),
	}
	switch p.Kind {
	case plan.KindVenue:
		spec.Name = p.Venue.Name
		spec.Venue = *p.Venue
	case plan.KindDeployment:
		spec.Name = fmt.Sprintf("deployment (%d sites)", len(p.Deployment.Sites))
		spec.Deployment = p.Deployment
	}
	if err := spec.Validate(); err != nil {
		return nil, "", err
	}
	params := fmt.Sprintf("seed=%d attack=%s slot=%d minutes=%g", seed, attackName, sub.Slot, minutes)
	return []campaign.Spec{spec}, params, nil
}

// admit hashes, registers and dispatches a submission. An identical plan
// already queued or running is returned as-is (idempotent submit); an
// identical plan with a stored final result finishes instantly from the
// store. created reports whether a run was actually dispatched.
func (s *Server) admit(p plan.Plan, sub submission) (*job, bool, error) {
	specs, params, err := normalize(p, sub)
	if err != nil {
		return nil, false, err
	}
	canonical, err := plan.Encode(p)
	if err != nil {
		return nil, false, err
	}
	doc := append(append([]byte{}, canonical...), '\n')
	doc = append(doc, params...)
	doc = append(doc, '\n')
	sum := sha256.Sum256(doc)
	hash := hex.EncodeToString(sum[:])

	seed := sub.Seed
	if seed == 0 {
		seed = 1
	}
	workers := sub.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	label := sub.Label
	if label == "" {
		label = fmt.Sprintf("%s %s", p.Kind, hash[:8])
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errors.New("serve: server is draining")
	}
	for i := len(s.order) - 1; i >= 0; i-- {
		if prev := s.jobs[s.order[i]]; prev.hash == hash && !prev.terminal() {
			return prev, false, nil
		}
	}
	if err := s.store.PutPlan(hash, doc); err != nil {
		return nil, false, err
	}

	s.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		hash:      hash,
		kind:      p.Kind,
		label:     label,
		seed:      seed,
		workers:   workers,
		specs:     specs,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		subs:      make(map[int]chan jobEvent),
	}
	j.eventLocked("queued", fmt.Sprintf("%d specs, hash %s", len(specs), hash[:8]))
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mJobsSubmitted.Inc()

	if _, ok := s.store.Result(hash); ok {
		// The whole plan already ran to completion: serve it from the
		// store without dispatching anything.
		j.mu.Lock()
		j.done = len(specs)
		j.cached = len(specs)
		j.eventLocked("cache-hit", "result served from store")
		j.mu.Unlock()
		s.mSpecsCached.Add(int64(len(specs)))
		j.terminate(StateFinished, "", "all specs cached")
		s.mJobsFinished.Inc()
		return j, false, nil
	}

	s.wg.Add(1)
	go s.runJob(j)
	return j, true, nil
}

// runJob is the per-job dispatcher goroutine: it waits for a pool slot,
// resumes from the store, runs the campaign and persists the outcome.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-s.drain:
		j.terminate(StateCheckpointed, "", "server drained before start")
		s.mJobsCheckpointed.Inc()
		return
	case <-j.ctx.Done():
		j.terminate(StateCancelled, context.Canceled.Error(), "cancelled while queued")
		s.mJobsCancelled.Inc()
		return
	}
	defer func() { <-s.sem }()
	select {
	case <-s.drain:
		j.terminate(StateCheckpointed, "", "server drained before start")
		s.mJobsCheckpointed.Inc()
		return
	case <-j.ctx.Done():
		j.terminate(StateCancelled, context.Canceled.Error(), "cancelled while queued")
		s.mJobsCancelled.Inc()
		return
	default:
	}

	j.start()
	s.gJobsRunning.Set(float64(len(s.sem)))

	base, err := s.cfg.BaseConfig(j.seed)
	if err != nil {
		j.terminate(StateFailed, err.Error(), "base configuration: "+err.Error())
		s.mJobsFailed.Inc()
		return
	}
	base.Seed = j.seed

	n := len(j.specs)
	cached := make([]*SpecResult, n)
	for i := 0; i < n; i++ {
		if sr, ok := s.store.Spec(j.hash, i); ok {
			c := sr
			cached[i] = &c
		}
	}
	fresh := make([]*SpecResult, n)

	c := &campaign.Campaign{
		Base:  base,
		Specs: j.specs,
		Pool: campaign.Pool{
			Workers:   j.workers,
			Publisher: s.monitor,
			Label:     fmt.Sprintf("%s (%s)", j.label, j.id),
			Labels:    map[string]string{"job": j.id},
			Completed: func(i int) bool { return cached[i] != nil },
			Drain:     s.drain,
			OnProgress: func(p campaign.Progress) {
				s.onSpec(j, cached, fresh, p)
			},
		},
	}
	_, runErr := c.Run(j.ctx)
	defer s.gJobsRunning.Set(float64(len(s.sem) - 1))

	switch {
	case runErr == nil:
		specs := make([]SpecResult, n)
		tallies := make([]stats.Tally, 0, n)
		for i := range specs {
			switch {
			case cached[i] != nil:
				specs[i] = *cached[i]
			case fresh[i] != nil:
				specs[i] = *fresh[i]
			default:
				j.terminate(StateFailed, "", fmt.Sprintf("spec %d missing from outcome", i))
				s.mJobsFailed.Inc()
				return
			}
			tallies = append(tallies, specs[i].Tally)
		}
		res := Result{
			Hash:      j.hash,
			Kind:      string(j.kind),
			Seed:      j.seed,
			Specs:     specs,
			Aggregate: campaign.AggregateTallies(tallies),
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			j.terminate(StateFailed, err.Error(), "encode result: "+err.Error())
			s.mJobsFailed.Inc()
			return
		}
		data = append(data, '\n')
		if err := s.store.PutResult(j.hash, data); err != nil {
			j.terminate(StateFailed, err.Error(), "persist result: "+err.Error())
			s.mJobsFailed.Inc()
			return
		}
		j.terminate(StateFinished, "", res.Aggregate.String())
		s.mJobsFinished.Inc()
	case errors.Is(runErr, campaign.ErrDrained):
		j.terminate(StateCheckpointed, "",
			fmt.Sprintf("drained; %d/%d specs durable", completedCount(cached, fresh), n))
		s.mJobsCheckpointed.Inc()
	case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
		j.terminate(StateCancelled, runErr.Error(),
			fmt.Sprintf("cancelled; %d/%d specs durable", completedCount(cached, fresh), n))
		s.mJobsCancelled.Inc()
	default:
		j.terminate(StateFailed, runErr.Error(), runErr.Error())
		s.mJobsFailed.Inc()
	}
}

// completedCount counts specs with a durable checkpoint.
func completedCount(cached, fresh []*SpecResult) int {
	n := 0
	for i := range cached {
		if cached[i] != nil || fresh[i] != nil {
			n++
		}
	}
	return n
}

// onSpec folds one spec's progress into the job: checkpoints new results,
// counts cache hits and failures, and appends the job event.
func (s *Server) onSpec(j *job, cached, fresh []*SpecResult, p campaign.Progress) {
	name := p.Name
	if name == "" {
		name = fmt.Sprintf("run %d", p.Index)
	}
	if p.Skipped {
		j.mu.Lock()
		j.done = p.Done
		j.cached++
		j.eventLocked("spec-cached", fmt.Sprintf("%s (%d/%d) served from store", name, p.Done, p.Total))
		j.mu.Unlock()
		s.mSpecsCached.Inc()
		return
	}
	if p.Err != nil {
		j.mu.Lock()
		j.done = p.Done
		j.failed++
		j.eventLocked("spec-failed", fmt.Sprintf("%s (%d/%d): %v", name, p.Done, p.Total, p.Err))
		j.mu.Unlock()
		return
	}
	var sr SpecResult
	switch {
	case p.Result != nil:
		sr = specResultFromRun(p.Index, p.Name, p.Result)
	case p.Deployment != nil:
		sr = specResultFromDeployment(p.Index, p.Name, j.specs[p.Index], p.Deployment)
	default:
		return
	}
	fresh[p.Index] = &sr
	detail := fmt.Sprintf("%s (%d/%d) h=%v", name, p.Done, p.Total, sr.Tally.HitRate())
	if err := s.store.PutSpec(j.hash, p.Index, sr); err != nil {
		detail += "; checkpoint error: " + err.Error()
	}
	j.mu.Lock()
	j.done = p.Done
	j.ran++
	j.eventLocked("spec-done", detail)
	j.mu.Unlock()
	s.mSpecsRun.Inc()
}

// handleJob routes /api/v1/jobs/{id}[/result|/events].
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			writeJSON(w, http.StatusOK, j.status())
		case http.MethodDelete:
			j.cancel()
			writeJSON(w, http.StatusOK, j.status())
		default:
			w.Header().Set("Allow", "GET, HEAD, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case "result":
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, ok := s.store.Result(j.hash)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: job %s has no result (state %s)", id, j.status().State))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	case "events":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.handleJobEvents(w, r, j)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job resource %q", sub))
	}
}

// handleJobEvents streams the job's event log over SSE: full replay, then
// live events until the job terminates or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	replay, live, cancel := j.subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fmt.Fprint(w, "retry: 2000\n\n")
	n := 0
	emit := func(ev jobEvent) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		n++
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", n, ev.Type, data)
	}
	for _, ev := range replay {
		emit(ev)
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			emit(ev)
			fl.Flush()
		}
	}
}

// Shutdown drains the server gracefully: no new submissions, no new spec
// dispatch, in-flight specs finish and checkpoint, queued jobs move to
// checkpointed. It blocks until every job goroutine has returned, then
// closes the HTTP listener (if Start was used). Safe to call twice.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drain)
	}
	s.mu.Unlock()
	s.wg.Wait()
	_ = s.Close()
}

// Start listens on addr and serves the job API (plus the monitor) in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.ln != nil {
		return "", errors.New("serve: already started on " + s.ln.Addr().String())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler()}
	go func() { _ = s.hs.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the HTTP listener without draining jobs (Shutdown is the
// graceful path).
func (s *Server) Close() error {
	s.httpMu.Lock()
	hs := s.hs
	s.ln, s.hs = nil, nil
	s.httpMu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}
