// End-to-end lifecycle tests for the campaign job server, driven through
// the public cityhunter API and real HTTP — the same path
// cmd/cityhunter-server serves. The shared world is built once; every
// server under test gets a BaseConfig closure over it, so a test run pays
// world generation exactly once.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cityhunter"
	"cityhunter/internal/serve"
)

var (
	worldOnce sync.Once
	worldVal  *cityhunter.World
	worldErr  error
)

func testWorld(t testing.TB) *cityhunter.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = cityhunter.NewWorld(cityhunter.WithSeed(1))
	})
	if worldErr != nil {
		t.Fatalf("NewWorld: %v", worldErr)
	}
	return worldVal
}

// newServer boots a job server on an ephemeral port with its store in
// storeDir, returning the server and its base URL.
func newServer(t *testing.T, storeDir string) (*serve.Server, string) {
	t.Helper()
	w := testWorld(t)
	srv, err := cityhunter.NewCampaignServer(cityhunter.CampaignServerConfig{
		StoreDir: storeDir,
		Workers:  1,
		MaxJobs:  2,
		BaseConfig: func(seed int64) (cityhunter.RunConfig, error) {
			return cityhunter.RunConfig{
				City:                 w.City,
				HeatMap:              w.Heat,
				PNL:                  w.PNL,
				WiGLE:                w.WiGLE,
				DirectProberFraction: 0.15,
				Seed:                 seed,
			}, nil
		},
	})
	if err != nil {
		t.Fatalf("NewCampaignServer: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "http://" + addr
}

// testPlanJSON renders a campaign plan of n short mixed-venue specs as an
// envelope document.
func testPlanJSON(t *testing.T, n int, minutes int) []byte {
	t.Helper()
	scale := 0.4
	specs := make([]cityhunter.RunSpec, n)
	for i := range specs {
		venue := cityhunter.CanteenVenue()
		slot := cityhunter.LunchSlot
		if i%2 == 1 {
			venue = cityhunter.PassageVenue()
			slot = cityhunter.MorningRushSlot
		}
		specs[i] = cityhunter.RunSpec{
			Name:         fmt.Sprintf("quick %d", i),
			Venue:        venue,
			Attack:       cityhunter.CityHunter,
			Slot:         slot,
			Duration:     time.Duration(minutes) * time.Minute,
			ArrivalScale: &scale,
		}
	}
	var buf bytes.Buffer
	if err := cityhunter.SavePlan(&buf, cityhunter.Plan{Kind: cityhunter.KindCampaign, Specs: specs}); err != nil {
		t.Fatalf("SavePlan: %v", err)
	}
	return buf.Bytes()
}

// submit POSTs a plan and decodes the JobStatus response, asserting the
// status code.
func submit(t *testing.T, base string, body string, wantCode int) cityhunter.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /api/v1/jobs = %d, want %d; body: %s", resp.StatusCode, wantCode, data)
	}
	var st cityhunter.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decode job status: %v; body: %s", err, data)
	}
	return st
}

func getStatus(t *testing.T, base, id string) cityhunter.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var st cityhunter.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return st
}

// pollUntil polls the job until cond holds, failing the test at the
// deadline.
func pollUntil(t *testing.T, base, id string, what string, cond func(cityhunter.JobStatus) bool) cityhunter.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, base, id)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last status: %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(st cityhunter.JobStatus) bool {
	switch st.State {
	case serve.StateFinished, serve.StateFailed, serve.StateCancelled, serve.StateCheckpointed:
		return true
	}
	return false
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestServerLifecycle: submit → poll → complete → result, then duplicate
// submission is an instant cache hit with every spec served from the
// store.
func TestServerLifecycle(t *testing.T) {
	_, base := newServer(t, t.TempDir())
	plan := testPlanJSON(t, 4, 2)
	body := fmt.Sprintf(`{"plan": %s, "seed": 7, "label": "lifecycle"}`, plan)

	st := submit(t, base, body, http.StatusAccepted)
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh job state = %q", st.State)
	}
	if st.SpecsTotal != 4 || st.Seed != 7 || st.Kind != "campaign" {
		t.Fatalf("job identity wrong: %+v", st)
	}

	done := pollUntil(t, base, st.ID, "job completion", terminal)
	if done.State != serve.StateFinished {
		t.Fatalf("job ended %q (error %q), want finished", done.State, done.Error)
	}
	if done.SpecsRun != 4 || done.SpecsCached != 0 || done.SpecsDone != 4 {
		t.Errorf("spec counters: %+v", done)
	}
	if done.Started == nil || done.Finished == nil {
		t.Errorf("timestamps missing: %+v", done)
	}

	code, data := getBody(t, base+"/api/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET result = %d: %s", code, data)
	}
	var res cityhunter.JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Hash != st.Hash || res.Seed != 7 || len(res.Specs) != 4 {
		t.Errorf("result identity: hash=%q seed=%d specs=%d", res.Hash, res.Seed, len(res.Specs))
	}
	if res.Aggregate.Runs != 4 || res.Aggregate.TotalClients == 0 {
		t.Errorf("degenerate aggregate: %+v", res.Aggregate)
	}
	for i, sr := range res.Specs {
		if sr.Index != i || sr.Tally.Total == 0 {
			t.Errorf("spec %d degenerate: %+v", i, sr)
		}
	}

	// The list endpoint shows the job.
	code, data = getBody(t, base+"/api/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(data), st.ID) {
		t.Errorf("GET /api/v1/jobs = %d, missing %s: %s", code, st.ID, data)
	}

	// Identical resubmission: 200 (not 202), same hash, instantly
	// finished, every spec served from the store.
	dup := submit(t, base, body, http.StatusOK)
	if dup.Hash != st.Hash {
		t.Errorf("duplicate hash %q != %q", dup.Hash, st.Hash)
	}
	if dup.State != serve.StateFinished || dup.SpecsCached != 4 || dup.SpecsRun != 0 {
		t.Errorf("duplicate not a cache hit: %+v", dup)
	}
	if dup.ID == st.ID {
		t.Errorf("cache hit should be a new job entry, got the original %s", dup.ID)
	}

	// The terminal job's SSE stream replays the full event log and ends.
	code, data = getBody(t, base+"/api/v1/jobs/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET events = %d", code)
	}
	for _, want := range []string{"event: queued", "event: started", "event: spec-done", "event: finished"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("event stream missing %q:\n%s", want, data)
		}
	}

	// The merged exposition carries both the server's job counters and the
	// runs' metrics labelled with the job id.
	code, data = getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{"server_jobs_finished", "server_specs_run", `job="` + st.ID + `"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerCancelResume is the resume acceptance test: cancel a campaign
// mid-run, resubmit the identical plan, and the final result must be
// byte-identical to an uninterrupted run on a fresh server — with the
// first run's completed specs served from the store, visible in the
// spec-run counters.
func TestServerCancelResume(t *testing.T) {
	_, base := newServer(t, t.TempDir())
	plan := testPlanJSON(t, 8, 6)
	body := fmt.Sprintf(`{"plan": %s, "seed": 5}`, plan)

	st := submit(t, base, body, http.StatusAccepted)
	mid := pollUntil(t, base, st.ID, "first spec to finish", func(s cityhunter.JobStatus) bool {
		return s.SpecsDone >= 1 || terminal(s)
	})
	if terminal(mid) {
		t.Fatalf("job reached %q before it could be cancelled — specs too fast for the test window", mid.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()

	cancelled := pollUntil(t, base, st.ID, "cancellation", terminal)
	if cancelled.State != serve.StateCancelled {
		t.Fatalf("job ended %q, want cancelled", cancelled.State)
	}
	if cancelled.SpecsRun == 0 || cancelled.SpecsRun >= 8 {
		t.Fatalf("cancel window missed: %d/8 specs ran", cancelled.SpecsRun)
	}
	checkpointed := cancelled.SpecsRun

	// Resume: same plan, same server. The completed specs come from the
	// store; only the rest run.
	resumed := submit(t, base, body, http.StatusAccepted)
	if resumed.Hash != st.Hash {
		t.Fatalf("resume hash %q != %q", resumed.Hash, st.Hash)
	}
	final := pollUntil(t, base, resumed.ID, "resumed completion", terminal)
	if final.State != serve.StateFinished {
		t.Fatalf("resumed job ended %q (error %q)", final.State, final.Error)
	}
	if final.SpecsCached != checkpointed {
		t.Errorf("resumed job cached %d specs, want the %d checkpointed before cancel",
			final.SpecsCached, checkpointed)
	}
	if final.SpecsRun != 8-checkpointed {
		t.Errorf("resumed job ran %d specs, want %d", final.SpecsRun, 8-checkpointed)
	}
	code, resumedResult := getBody(t, base+"/api/v1/jobs/"+resumed.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET resumed result = %d", code)
	}

	// Reference: the same plan uninterrupted on a fresh server and store.
	_, refBase := newServer(t, t.TempDir())
	ref := submit(t, refBase, body, http.StatusAccepted)
	refDone := pollUntil(t, refBase, ref.ID, "reference completion", terminal)
	if refDone.State != serve.StateFinished {
		t.Fatalf("reference job ended %q (error %q)", refDone.State, refDone.Error)
	}
	if refDone.SpecsRun != 8 || refDone.SpecsCached != 0 {
		t.Fatalf("reference ran from a dirty store: %+v", refDone)
	}
	code, refResult := getBody(t, refBase+"/api/v1/jobs/"+ref.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET reference result = %d", code)
	}

	if !bytes.Equal(resumedResult, refResult) {
		t.Errorf("resumed result is not byte-identical to the uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s",
			resumedResult, refResult)
	}
}

// TestServerDrainCheckpoints: an in-process Shutdown (the SIGTERM path of
// cmd/cityhunter-server) finishes the in-flight spec, checkpoints the
// rest, and a new server over the same store resumes.
func TestServerDrainCheckpoints(t *testing.T) {
	storeDir := t.TempDir()
	srv, base := newServer(t, storeDir)
	plan := testPlanJSON(t, 8, 6)
	body := fmt.Sprintf(`{"plan": %s, "seed": 9}`, plan)

	st := submit(t, base, body, http.StatusAccepted)
	mid := pollUntil(t, base, st.ID, "first spec to finish", func(s cityhunter.JobStatus) bool {
		return s.SpecsDone >= 1 || terminal(s)
	})
	if terminal(mid) {
		t.Fatalf("job reached %q before drain — specs too fast for the test window", mid.State)
	}

	srv.Shutdown() // blocks until the in-flight spec finishes and checkpoints

	// The server's job map is still readable in-process.
	final := getStatusFromServer(t, srv, st.ID)
	if final.State != serve.StateCheckpointed {
		t.Fatalf("drained job state %q, want checkpointed", final.State)
	}
	if final.SpecsRun == 0 || final.SpecsRun >= 8 {
		t.Fatalf("drain window missed: %d/8 specs ran", final.SpecsRun)
	}

	// A fresh server over the same store resumes from the checkpoints.
	_, base2 := newServer(t, storeDir)
	resumed := submit(t, base2, body, http.StatusAccepted)
	done := pollUntil(t, base2, resumed.ID, "resumed completion", terminal)
	if done.State != serve.StateFinished {
		t.Fatalf("resumed job ended %q (error %q)", done.State, done.Error)
	}
	if done.SpecsCached != final.SpecsRun || done.SpecsRun != 8-final.SpecsRun {
		t.Errorf("resume counters: cached %d run %d, want cached %d run %d",
			done.SpecsCached, done.SpecsRun, final.SpecsRun, 8-final.SpecsRun)
	}
}

// getStatusFromServer reads a job's status through the handler directly —
// used after Shutdown has closed the listener.
func getStatusFromServer(t *testing.T, srv *serve.Server, id string) cityhunter.JobStatus {
	t.Helper()
	rec := newRecorder()
	req, _ := http.NewRequest(http.MethodGet, "/api/v1/jobs/"+id, nil)
	srv.Handler().ServeHTTP(rec, req)
	if rec.code != http.StatusOK {
		t.Fatalf("in-process GET job = %d: %s", rec.code, rec.body.String())
	}
	var st cityhunter.JobStatus
	if err := json.Unmarshal(rec.body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// recorder is a minimal ResponseWriter (httptest is fine too; this keeps
// the dependency surface identical to production code).
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder                    { return &recorder{code: http.StatusOK, header: http.Header{}} }
func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// TestServerValidation covers the structured-400 surface and the hardened
// method/body handling.
func TestServerValidation(t *testing.T) {
	_, base := newServer(t, t.TempDir())

	post := func(body string) (int, string) {
		resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	venuePayload := `{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}`

	cases := []struct {
		label     string
		body      string
		wantCode  int
		wantError string
		wantField string
	}{
		{"missing plan", `{"seed": 1}`, 400, "needs a plan envelope", "plan"},
		{"unknown submission field", `{"plan": {"version":1,"kind":"venue","venue":` + venuePayload + `}, "turbo": 1}`, 400, `"turbo"`, ""},
		{"unversioned plan", `{"plan": {"kind":"venue","venue":` + venuePayload + `}}`, 400, "unsupported version 0", ""},
		{"unknown plan field", `{"plan": {"version":1,"kind":"venue","venue":` + venuePayload + `,"extra":1}}`, 400, `"extra"`, ""},
		{"bad venue payload", `{"plan": {"version":1,"kind":"venue","venue":{"kind":"canteen","name":"x","radioRange":-1,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}}}`, 400, "radio range -1 must be positive", "radioRange"},
		{"unknown attack", `{"plan": {"version":1,"kind":"venue","venue":` + venuePayload + `}, "attack": "wep-crack"}`, 400, `unknown attack "wep-crack"`, "attack"},
		{"campaign with attack param", `{"plan": {"version":1,"kind":"campaign","campaign":{"runs":[{"venue":"mall","attack":"karma","slot":0,"minutes":5}]}}, "attack": "karma"}`, 400, "per run", "attack"},
		{"bad slot", `{"plan": {"version":1,"kind":"venue","venue":` + venuePayload + `}, "slot": 99}`, 400, "slot 99", "slot"},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (%s)", tc.label, code, tc.wantCode, body)
			continue
		}
		var ae struct {
			Error string `json:"error"`
			Field string `json:"field"`
		}
		if err := json.Unmarshal([]byte(body), &ae); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.label, body)
			continue
		}
		if !strings.Contains(ae.Error, tc.wantError) {
			t.Errorf("%s: error %q does not contain %q", tc.label, ae.Error, tc.wantError)
		}
		if tc.wantField != "" && ae.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.label, ae.Field, tc.wantField)
		}
	}

	// Oversized body → 413.
	code, body := post(`{"pad": "` + strings.Repeat("x", 2<<20) + `"}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d, want 413 (%s)", code, body)
	}

	// Unknown job → 404.
	if code, _ := getBody(t, base+"/api/v1/jobs/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", code)
	}

	// Write methods on read-only endpoints → 405.
	for _, path := range []string{"/metrics", "/runs", "/events", "/"} {
		resp, err := http.Post(base+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("POST %s: no Allow header", path)
		}
	}

	// DELETE on the collection → 405.
	req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /api/v1/jobs = %d, want 405", resp.StatusCode)
	}

	// JSON endpoints declare their content type.
	resp, err = http.Get(base + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("GET /api/v1/jobs content type %q", ct)
	}
}

// TestServerDefaultPartitions: a server configured with DefaultPartitions
// folds the engine choice into deployment plans that do not pick one —
// before hashing, so a submission with the partitions field spelled out
// explicitly is the same job — and rejects plans the partitioned engine
// cannot run.
func TestServerDefaultPartitions(t *testing.T) {
	w := testWorld(t)
	srv, err := cityhunter.NewCampaignServer(cityhunter.CampaignServerConfig{
		StoreDir:          t.TempDir(),
		Workers:           1,
		DefaultPartitions: cityhunter.AutoPartitions,
		BaseConfig: func(seed int64) (cityhunter.RunConfig, error) {
			return cityhunter.RunConfig{
				City:                 w.City,
				HeatMap:              w.Heat,
				PNL:                  w.PNL,
				WiGLE:                w.WiGLE,
				DirectProberFraction: 0.15,
				Seed:                 seed,
			}, nil
		},
	})
	if err != nil {
		t.Fatalf("NewCampaignServer: %v", err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	base := "http://" + addr

	planBody := func(dcfg cityhunter.DeploymentConfig) string {
		var buf bytes.Buffer
		if err := cityhunter.SavePlan(&buf, cityhunter.Plan{Kind: cityhunter.KindDeployment, Deployment: &dcfg}); err != nil {
			t.Fatalf("SavePlan: %v", err)
		}
		return buf.String()
	}
	dcfg := cityhunter.DeploymentConfig{
		Sites:        []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.StationVenue()},
		RoamFraction: 0.5,
	}
	body := fmt.Sprintf(`{"plan": %s, "seed": 3, "minutes": 5}`, planBody(dcfg))
	st := submit(t, base, body, http.StatusAccepted)
	final := pollUntil(t, base, st.ID, "partitioned job to finish", terminal)
	if final.State != serve.StateFinished {
		t.Fatalf("job state %v (%s), want finished", final.State, final.Error)
	}

	// The same plan with the partitions choice written out explicitly
	// hashes to the content the first job stored: the default was applied
	// before content addressing, so the spec is served from the store.
	explicit := dcfg
	explicit.Partitions = cityhunter.AutoPartitions
	again := submit(t, base, fmt.Sprintf(`{"plan": %s, "seed": 3, "minutes": 5}`, planBody(explicit)), http.StatusOK)
	if again.Hash != final.Hash {
		t.Errorf("explicit-partitions submission hashed to %s, want %s (default not folded before hashing)",
			again.Hash, final.Hash)
	}
	done := pollUntil(t, base, again.ID, "cache-hit job to finish", terminal)
	if done.State != serve.StateFinished || done.SpecsCached != done.SpecsTotal {
		t.Errorf("cache-hit job: state %v, %d/%d specs cached; want all served from the store",
			done.State, done.SpecsCached, done.SpecsTotal)
	}

	// A shared knowledge plane cannot run partitioned; with the server
	// default in force the submission is refused up front.
	shared := dcfg
	shared.Knowledge = cityhunter.Shared
	resp, err := http.Post(base+"/api/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"plan": %s}`, planBody(shared))))
	if err != nil {
		t.Fatalf("POST shared plan: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "shared knowledge") {
		t.Errorf("shared plan: code %d body %s, want 400 with shared-knowledge rejection", resp.StatusCode, data)
	}
}

// TestServerGoroutineLeak: a full submit→finish→shutdown cycle must not
// leak goroutines.
func TestServerGoroutineLeak(t *testing.T) {
	testWorld(t) // build the world before counting
	before := runtime.NumGoroutine()

	srv, base := newServer(t, t.TempDir())
	st := submit(t, base, fmt.Sprintf(`{"plan": %s}`, testPlanJSON(t, 2, 2)), http.StatusAccepted)
	done := pollUntil(t, base, st.ID, "completion", terminal)
	if done.State != serve.StateFinished {
		t.Fatalf("job ended %q", done.State)
	}
	srv.Shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
