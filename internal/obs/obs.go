// Package obs is the virtual-time observability layer: a metrics registry
// with deterministic snapshots, a bounded journal of structured run events
// (the flight recorder), and a Chrome/Perfetto trace-event exporter that
// renders client lifecycles, scan cycles and attacker reply batches as
// spans.
//
// The paper's field deployment understood attacker behaviour through packet
// captures and post-hoc counting; this package is the simulated equivalent
// of watching the run from the inside. Everything is timestamped in virtual
// time (the sim engine's clock), never the wall clock, so two runs with the
// same seed produce byte-identical metric dumps, journals and traces.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Journal or
// *Trace are no-ops, so instrumented hot paths pay a single predictable
// branch when observability is off.
package obs

import "time"

// Runtime bundles the sinks an instrumented component may feed. Any field
// may be nil to disable that sink; a nil *Runtime disables them all.
type Runtime struct {
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Journal is the flight recorder for structured run events.
	Journal *Journal
	// Trace collects Perfetto/Chrome trace spans.
	Trace *Trace
	// Publish, when set, streams selected events to a live monitor in
	// addition to the journal. Set by the scenario runner when a Publisher
	// is configured.
	Publish RunPublisher
}

// Enabled reports whether any sink is active.
func (rt *Runtime) Enabled() bool {
	return rt != nil && (rt.Metrics != nil || rt.Journal != nil || rt.Trace != nil || rt.Publish != nil)
}

// Event records one structured event in the journal and forwards it to the
// live publisher, if any. Components use this for the low-rate lifecycle
// events a monitor subscriber cares about (associations, deploys,
// promotions); high-rate noise like per-frame loss goes straight to the
// journal.
func (rt *Runtime) Event(at time.Duration, typ, actor, detail string) {
	if rt == nil {
		return
	}
	rt.Journal.Record(at, typ, actor, detail)
	if rt.Publish != nil {
		rt.Publish.PublishEvent(Event{At: at, Type: typ, Actor: actor, Detail: detail})
	}
}
