// Package obs is the virtual-time observability layer: a metrics registry
// with deterministic snapshots, a bounded journal of structured run events
// (the flight recorder), and a Chrome/Perfetto trace-event exporter that
// renders client lifecycles, scan cycles and attacker reply batches as
// spans.
//
// The paper's field deployment understood attacker behaviour through packet
// captures and post-hoc counting; this package is the simulated equivalent
// of watching the run from the inside. Everything is timestamped in virtual
// time (the sim engine's clock), never the wall clock, so two runs with the
// same seed produce byte-identical metric dumps, journals and traces.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Journal or
// *Trace are no-ops, so instrumented hot paths pay a single predictable
// branch when observability is off.
package obs

// Runtime bundles the three sinks an instrumented component may feed. Any
// field may be nil to disable that sink; a nil *Runtime disables them all.
type Runtime struct {
	// Metrics is the counter/gauge/histogram registry.
	Metrics *Registry
	// Journal is the flight recorder for structured run events.
	Journal *Journal
	// Trace collects Perfetto/Chrome trace spans.
	Trace *Trace
}

// Enabled reports whether any sink is active.
func (rt *Runtime) Enabled() bool {
	return rt != nil && (rt.Metrics != nil || rt.Journal != nil || rt.Trace != nil)
}
