package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Trace accumulates Chrome trace-event records — the JSON format both
// chrome://tracing and ui.perfetto.dev open directly. Spans carry virtual
// timestamps in microseconds; tracks (one per client, one for the
// attacker) render as named threads. Methods on a nil *Trace are no-ops.
type Trace struct {
	events []traceEvent
	tracks []string // track i has tid i+1
}

// traceEvent is one record in the trace-event JSON schema.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePID is the single process all tracks live under.
const tracePID = 1

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{}
}

// Track allocates a named track (rendered as a thread) and returns its tid.
// On a nil trace it returns 0, which other methods accept harmlessly.
func (t *Trace) Track(name string) int {
	if t == nil {
		return 0
	}
	t.tracks = append(t.tracks, name)
	return len(t.tracks)
}

// usec converts virtual time to trace microseconds.
func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Span records a complete ("X") event from start to end on the given track.
// args may be nil.
func (t *Trace) Span(cat, name string, tid int, start, end time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: usec(start), Dur: usec(end - start),
		PID: tracePID, TID: tid, Args: args,
	})
}

// Instant records a zero-duration ("i") event on the given track.
func (t *Trace) Instant(cat, name string, tid int, at time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS: usec(at), PID: tracePID, TID: tid, Args: args,
	})
}

// Len returns the number of recorded events (excluding track metadata).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Categories returns the distinct span/instant categories in first-use
// order.
func (t *Trace) Categories() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range t.events {
		if e.Cat != "" && !seen[e.Cat] {
			seen[e.Cat] = true
			out = append(out, e.Cat)
		}
	}
	return out
}

// WriteJSON writes the trace as a Chrome trace-event JSON object:
// {"traceEvents": [...], "displayTimeUnit": "ms"}. Track names are emitted
// as thread_name metadata so viewers label the rows. Output is
// deterministic: encoding/json sorts map keys, and events appear in record
// order.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	all := make([]traceEvent, 0, len(t.tracks)+len(t.events))
	for i, name := range t.tracks {
		all = append(all, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: i + 1,
			Args: map[string]any{"name": name},
		})
	}
	all = append(all, t.events...)
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: all, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}
