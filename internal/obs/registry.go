package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; methods on a nil *Counter are no-ops. Counters are safe for
// concurrent use: campaign workers and the monitor's scrape path may touch
// the same handle.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value stored as atomic float bits, so it too can
// be read mid-run by a scraper. Methods on a nil *Gauge are no-ops.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v only if it exceeds the current value — a high-water mark.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. An observation lands in the
// first bucket whose upper bound is >= the value; larger values land in the
// implicit +Inf overflow bucket. Observations take a per-histogram mutex
// (sum and bucket must move together); methods on a nil *Histogram are
// no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// snapshot copies the distribution under one lock so sum, count and bucket
// counts are mutually consistent.
func (h *Histogram) snapshot() (sum float64, n int64, buckets []BucketCount) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = make([]BucketCount, len(h.counts))
	for i, c := range h.counts {
		ub := inf
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		buckets[i] = BucketCount{UpperBound: ub, Count: c}
	}
	return h.sum, h.n, buckets
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// metricEntry is one registered metric.
type metricEntry struct {
	name   string
	labels string // canonical "k=v,k=v" form, keys sorted
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry hands out metrics keyed by name plus label pairs and snapshots
// them in deterministic order. Lookups take a lock (they happen at
// instrumentation time); the returned Counter/Gauge/Histogram handles are
// themselves safe for concurrent use, so a live monitor can snapshot the
// registry while the run — or many campaign workers — keep writing.
// Methods on a nil *Registry return nil handles, whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metricEntry)}
}

// canonLabels renders k,v pairs in canonical sorted form. Odd trailing
// labels are dropped.
func canonLabels(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteByte('=')
		b.WriteString(p.v)
	}
	return b.String()
}

// lookup finds or creates an entry, enforcing kind consistency.
func (r *Registry) lookup(name string, kind metricKind, labels []string) *metricEntry {
	ls := canonLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, e.kind, kind))
		}
		return e
	}
	e := &metricEntry{name: name, labels: ls, kind: kind}
	r.entries[key] = e
	return e
}

// Counter returns the counter for name and label pairs, creating it on
// first use. labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindCounter, labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge for name and label pairs, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindGauge, labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram returns the fixed-bucket histogram for name and label pairs,
// creating it with the given upper bounds on first use (bounds must be
// sorted ascending; later calls may pass nil bounds to reuse the existing
// histogram).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindHistogram, labels)
	if e.hist == nil {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		e.hist = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
	}
	return e.hist
}

// BucketCount is one histogram bucket in a snapshot. UpperBound is +Inf for
// the overflow bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MetricPoint is one metric in a snapshot.
type MetricPoint struct {
	// Name and Labels identify the metric; Labels is the canonical
	// "k=v,k=v" form.
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter or gauge value; for histograms it is the sum of
	// observations.
	Value float64 `json:"value"`
	// Count is the number of observations (histograms only).
	Count int64 `json:"count,omitempty"`
	// Buckets holds the cumulative-free per-bucket counts (histograms
	// only).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MergeLabels merges extra alternating key, value pairs into a canonical
// label string, re-canonicalising the result. Later values win on duplicate
// keys, so a publisher can stamp run/site identity over whatever the run
// recorded. An empty result stays "".
func MergeLabels(canon string, extra ...string) string {
	if len(extra) == 0 {
		return canon
	}
	merged := make(map[string]string)
	order := make([]string, 0, 4)
	add := func(k, v string) {
		if _, ok := merged[k]; !ok {
			order = append(order, k)
		}
		merged[k] = v
	}
	if canon != "" {
		for _, pair := range strings.Split(canon, ",") {
			if i := strings.IndexByte(pair, '='); i >= 0 {
				add(pair[:i], pair[i+1:])
			}
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		add(extra[i], extra[i+1])
	}
	flat := make([]string, 0, 2*len(order))
	for _, k := range order {
		flat = append(flat, k, merged[k])
	}
	return canonLabels(flat)
}

// Snapshot is an ordered dump of a registry. Equal registries produce
// byte-identical WriteText output.
type Snapshot []MetricPoint

// Snapshot returns every registered metric sorted by (name, labels).
// A nil registry yields a nil snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	out := make(Snapshot, 0, len(entries))
	for _, e := range entries {
		p := MetricPoint{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			p.Value = float64(e.counter.Value())
		case kindGauge:
			p.Value = e.gauge.Value()
		case kindHistogram:
			p.Value, p.Count, p.Buckets = e.hist.snapshot()
		}
		out = append(out, p)
	}
	return out
}

// inf is the +Inf overflow bound.
var inf = math.Inf(1)

// Get returns the point for name and label pairs, if present.
func (s Snapshot) Get(name string, labels ...string) (MetricPoint, bool) {
	ls := canonLabels(labels)
	for _, p := range s {
		if p.Name == name && p.Labels == ls {
			return p, true
		}
	}
	return MetricPoint{}, false
}

// Value returns the value for name and label pairs, or 0 when absent.
func (s Snapshot) Value(name string, labels ...string) float64 {
	p, _ := s.Get(name, labels...)
	return p.Value
}

// WriteText writes the snapshot as an expvar-style text dump, one metric
// per line, in deterministic order:
//
//	medium_frames_sent{subtype=beacon} 42
//	core_batch_size histogram count=12 sum=480 le20=3 le40=9 leInf=0
func (s Snapshot) WriteText(w io.Writer) error {
	for _, p := range s {
		name := p.Name
		if p.Labels != "" {
			name += "{" + p.Labels + "}"
		}
		var err error
		if p.Kind == "histogram" {
			_, err = fmt.Fprintf(w, "%s histogram count=%d sum=%g", name, p.Count, p.Value)
			if err == nil {
				for _, b := range p.Buckets {
					if b.UpperBound == inf {
						_, err = fmt.Fprintf(w, " leInf=%d", b.Count)
					} else {
						_, err = fmt.Fprintf(w, " le%g=%d", b.UpperBound, b.Count)
					}
					if err != nil {
						break
					}
				}
				if err == nil {
					_, err = fmt.Fprintln(w)
				}
			}
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", name, p.Value)
		}
		if err != nil {
			return fmt.Errorf("obs: write snapshot: %w", err)
		}
	}
	return nil
}

// String returns the WriteText dump.
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}
