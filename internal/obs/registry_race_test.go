package obs

import (
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines — the
// scrape path (Snapshot) racing the write path (Inc/Set/SetMax/Observe) and
// the lazy lookup path (Counter/Gauge/Histogram on fresh label sets). Run
// under -race this is the proof the monitor can scrape a live run.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	g := reg.Gauge("level")
	h := reg.Histogram("lat", []float64{1, 10})

	const writers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := []string{"site", string(rune('a' + w))}
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				g.SetMax(float64(i))
				h.Observe(float64(i % 20))
				reg.Counter("hits", site...).Inc()
				if i%100 == 0 {
					reg.Histogram("lat", []float64{1, 10}, site...).Observe(1)
				}
			}
		}(w)
	}
	// Concurrent scrapers, like a Prometheus server polling mid-run.
	done := make(chan struct{})
	var scrapes sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-done:
					return
				default:
					snap := reg.Snapshot()
					_ = snap.Value("hits")
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapes.Wait()

	snap := reg.Snapshot()
	if v := snap.Value("hits"); v != writers*iters {
		t.Fatalf("hits = %v, want %d", v, writers*iters)
	}
	p, ok := snap.Get("lat")
	if !ok || p.Count != writers*iters {
		t.Fatalf("lat count = %+v, want %d observations", p, writers*iters)
	}
}

// TestGaugeSetMax checks the CAS loop keeps the maximum under contention.
func TestGaugeSetMax(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("peak")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.SetMax(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if v := g.Value(); v != 7999 {
		t.Fatalf("peak = %v, want 7999", v)
	}
}
