package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promName sanitises a metric or label name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (label names additionally forbid ':'; callers
// pass allowColon=false for those). Invalid runes become '_'; a leading
// digit gains a '_' prefix.
func promName(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0) || (allowColon && r == ':')
		if !ok {
			if r >= '0' && r <= '9' { // leading digit
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promEscape escapes a label value per the text exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders a canonical "k=v,k=v" label string as a Prometheus
// label block `{k="v",k="v"}` with extra pairs appended. Returns "" when
// there is nothing to render.
func promLabels(canon string, extra ...string) string {
	var parts []string
	if canon != "" {
		for _, pair := range strings.Split(canon, ",") {
			k, v := pair, ""
			if i := strings.IndexByte(pair, '='); i >= 0 {
				k, v = pair[:i], pair[i+1:]
			}
			parts = append(parts, promName(k, false)+`="`+promEscape(v)+`"`)
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, promName(extra[i], false)+`="`+promEscape(extra[i+1])+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat renders a sample value; Prometheus spells infinities +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE block per metric family,
// label values escaped, histograms expanded into cumulative _bucket series
// plus _sum and _count. The snapshot's (name, labels) ordering keeps every
// family contiguous, as the format requires, and makes the output
// byte-deterministic for equal snapshots.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	prevFamily := ""
	for _, p := range s {
		name := promName(p.Name, true)
		if name != prevFamily {
			prevFamily = name
			typ := p.Kind
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				typ = "untyped"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s cityhunter %s %s\n# TYPE %s %s\n",
				name, typ, name, name, typ); err != nil {
				return fmt.Errorf("obs: write prometheus: %w", err)
			}
		}
		var err error
		if p.Kind == "histogram" {
			err = writePromHistogram(w, name, p)
		} else {
			_, err = fmt.Fprintf(w, "%s%s %s\n", name, promLabels(p.Labels), promFloat(p.Value))
		}
		if err != nil {
			return fmt.Errorf("obs: write prometheus: %w", err)
		}
	}
	return nil
}

// writePromHistogram expands one histogram point into cumulative buckets
// (the snapshot stores per-bucket counts), _sum and _count.
func writePromHistogram(w io.Writer, name string, p MetricPoint) error {
	cum := int64(0)
	for _, b := range p.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = promFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, promLabels(p.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if len(p.Buckets) == 0 || !math.IsInf(p.Buckets[len(p.Buckets)-1].UpperBound, 1) {
		// Every conformant histogram ends on +Inf; synthesise it if the
		// source had no explicit overflow bucket.
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, promLabels(p.Labels, "le", "+Inf"), p.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(p.Labels), promFloat(p.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(p.Labels), p.Count)
	return err
}

// Relabel returns a copy of the snapshot with extra label pairs merged into
// every point (later pairs win on duplicate keys) and the result re-sorted
// by (name, labels). Publishers use it to stamp run and site identity onto
// a run's metrics before merging many runs into one exposition.
func (s Snapshot) Relabel(extra ...string) Snapshot {
	if len(extra) == 0 {
		return s
	}
	out := make(Snapshot, len(s))
	copy(out, s)
	for i := range out {
		out[i].Labels = MergeLabels(out[i].Labels, extra...)
	}
	out.Sort()
	return out
}

// Sort orders the snapshot by (name, labels) — the invariant Registry
// snapshots already hold and WritePrometheus depends on.
func (s Snapshot) Sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].Labels < s[j].Labels
	})
}
