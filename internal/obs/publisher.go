package obs

import "time"

// RunInfo identifies a run to a Publisher: what kind of work it is and the
// labels the monitor should stamp on everything the run reports.
type RunInfo struct {
	// Kind classifies the run: "run", "deployment" or "campaign".
	Kind string `json:"kind"`
	// Label is a human-readable name ("canteen/City-Hunter/seed1").
	Label string `json:"label,omitempty"`
	// Labels are extra identity pairs merged into every published metric
	// (attack strategy, venue, seed, ...).
	Labels map[string]string `json:"labels,omitempty"`
}

// Publisher receives live telemetry from runs. Implementations must be safe
// for concurrent StartRun calls: campaign workers register their runs in
// parallel. The monitor server is the canonical implementation; tests may
// supply their own.
type Publisher interface {
	// StartRun registers a new run and returns the sink it publishes into.
	StartRun(info RunInfo) RunPublisher
}

// RunPublisher is one run's telemetry sink. A run publishes from a single
// goroutine, but distinct runs publish concurrently, so implementations
// shard their state per run (see ShardedJournal).
type RunPublisher interface {
	// PublishSnapshot delivers the registry state as of virtual time at.
	PublishSnapshot(at time.Duration, snap Snapshot)
	// PublishEvent delivers one structured run event.
	PublishEvent(ev Event)
	// FinishRun marks the run complete; err is nil on success.
	FinishRun(at time.Duration, err error)
}
