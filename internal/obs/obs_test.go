package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Registration order deliberately scrambled: snapshots must sort.
		r.Counter("z_last").Add(3)
		r.Counter("medium_frames_sent", "subtype", "beacon").Add(7)
		r.Counter("medium_frames_sent", "subtype", "auth").Inc()
		r.Gauge("sim_queue_depth_hwm").SetMax(41)
		r.Gauge("sim_queue_depth_hwm").SetMax(12) // below HWM: ignored
		h := r.Histogram("core_batch_size", []float64{10, 20, 40})
		for _, v := range []float64{5, 15, 40, 41} {
			h.Observe(v)
		}
		return r
	}
	a, b := build().Snapshot().String(), build().Snapshot().String()
	if a != b {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	want := []string{
		"core_batch_size histogram count=4 sum=101 le10=1 le20=1 le40=1 leInf=1",
		"medium_frames_sent{subtype=auth} 1",
		"medium_frames_sent{subtype=beacon} 7",
		"sim_queue_depth_hwm 41",
		"z_last 3",
	}
	if got := strings.TrimSpace(a); got != strings.Join(want, "\n") {
		t.Fatalf("dump:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestRegistryLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("m", "b", "2", "a", "1")
	c2 := r.Counter("m", "a", "1", "b", "2")
	if c1 != c2 {
		t.Fatal("label order should not create distinct metrics")
	}
	c1.Inc()
	if got := r.Snapshot().Value("m", "a", "1", "b", "2"); got != 1 {
		t.Fatalf("Value = %v, want 1", got)
	}
}

func TestSnapshotGet(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "kind", "mirror").Add(5)
	s := r.Snapshot()
	if got := s.Value("hits", "kind", "mirror"); got != 5 {
		t.Fatalf("Value = %v", got)
	}
	if _, ok := s.Get("hits", "kind", "popularity"); ok {
		t.Fatal("unexpected metric present")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var j *Journal
	j.Record(0, EventAdaptation, "", "")
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil {
		t.Fatal("nil journal should be inert")
	}
	var tr *Trace
	tid := tr.Track("t")
	tr.Span("c", "n", tid, 0, 1, nil)
	tr.Instant("c", "n", tid, 0, nil)
	if tr.Len() != 0 {
		t.Fatal("nil trace should be inert")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace JSON invalid: %v", err)
	}
}

func TestJournalRingOverflow(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(time.Duration(i), EventFrameLoss, "tx", "")
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	events := j.Events()
	for i, e := range events {
		if want := time.Duration(6 + i); e.At != want {
			t.Fatalf("event %d at %v, want %v (most recent kept, chronological)", i, e.At, want)
		}
	}
}

func TestJournalDefaultCap(t *testing.T) {
	if got := NewJournal(0).Cap(); got != DefaultJournalCap {
		t.Fatalf("Cap = %d, want %d", got, DefaultJournalCap)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace()
	client := tr.Track("client 02:00:00:00:00:01")
	attacker := tr.Track("attacker")
	tr.Span("client", "lifecycle", client, 0, 2*time.Second, map[string]any{"mac": "02:00:00:00:00:01"})
	tr.Span("scan", "scan", client, 100*time.Millisecond, 140*time.Millisecond, nil)
	tr.Span("attacker", "reply-batch", attacker, 110*time.Millisecond, 120*time.Millisecond, map[string]any{"n": 40})
	tr.Instant("engine", "adaptation", attacker, time.Second, nil)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 thread_name metadata + 4 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	cats := make(map[string]bool)
	for _, e := range doc.TraceEvents {
		cats[e.Cat] = true
	}
	for _, want := range []string{"client", "scan", "attacker"} {
		if !cats[want] {
			t.Fatalf("missing category %q", want)
		}
	}
	// Span timestamps are microseconds.
	for _, e := range doc.TraceEvents {
		if e.Name == "reply-batch" {
			if e.TS != 110000 || e.Dur != 10000 {
				t.Fatalf("reply-batch ts=%v dur=%v, want 110000/10000", e.TS, e.Dur)
			}
		}
	}
	if got := tr.Categories(); len(got) != 4 {
		t.Fatalf("Categories = %v", got)
	}
}

func TestHistogramKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}
