package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheus checks the exposition end to end: HELP/TYPE per
// family, label escaping, cumulative histogram buckets with a +Inf
// terminator, and _sum/_count companions.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_sent", "site", "canteen").Add(3)
	reg.Counter("frames_sent", "site", "mall \"west\"\n").Inc()
	reg.Gauge("promoted_now").Set(2.5)
	h := reg.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE frames_sent counter",
		"# TYPE promoted_now gauge",
		"# TYPE latency_seconds histogram",
		`frames_sent{site="canteen"} 3`,
		`frames_sent{site="mall \"west\"\n"} 1`,
		"promoted_now 2.5",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// One HELP/TYPE pair per family, even with two frames_sent series.
	if n := strings.Count(out, "# TYPE frames_sent "); n != 1 {
		t.Errorf("frames_sent declared %d times, want 1", n)
	}
}

// TestRelabel stamps identity labels onto a snapshot the way the monitor
// does per run, and checks later pairs win over earlier ones.
func TestRelabel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits", "site", "canteen").Inc()
	reg.Counter("plain").Inc()

	snap := reg.Snapshot().Relabel("run", "run-1", "site", "override")
	if v := snap.Value("hits", "run", "run-1", "site", "override"); v != 1 {
		t.Fatalf("relabelled hits = %v, want 1 (snapshot %v)", v, snap)
	}
	if v := snap.Value("plain", "run", "run-1", "site", "override"); v != 1 {
		t.Fatalf("relabelled plain = %v, want 1 (identity labels stamp every point)", v)
	}
}

// TestMergeLabels covers the canonical merge both ways round.
func TestMergeLabels(t *testing.T) {
	cases := []struct {
		canon string
		extra []string
		want  string
	}{
		{"", []string{"a", "1"}, "a=1"},
		{"a=1", nil, "a=1"},
		{"b=2", []string{"a", "1"}, "a=1,b=2"},
		{"a=1", []string{"a", "2"}, "a=2"},
	}
	for _, c := range cases {
		if got := MergeLabels(c.canon, c.extra...); got != c.want {
			t.Errorf("MergeLabels(%q, %v) = %q, want %q", c.canon, c.extra, got, c.want)
		}
	}
}
