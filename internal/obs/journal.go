package obs

import "time"

// Journal event types. Components use these constants so analysis code can
// filter without string guessing.
const (
	// EventAdaptation marks a buffer-boundary move in the City-Hunter
	// engine.
	EventAdaptation = "adaptation"
	// EventGhostHit marks a capture served from a ghost list.
	EventGhostHit = "ghost-hit"
	// EventAssociation marks a completed evil-twin association.
	EventAssociation = "association"
	// EventDeauthSweep marks one spoofed-deauthentication broadcast sweep.
	EventDeauthSweep = "deauth-sweep"
	// EventFrameLoss marks a unicast frame lost to the loss model.
	EventFrameLoss = "frame-loss"
	// EventTraceDrop marks the frame capture hitting its entry cap.
	EventTraceDrop = "trace-drop"
)

// Event is one structured, virtually-timestamped journal record.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration `json:"at"`
	// Type is one of the Event* constants (components may add their own).
	Type string `json:"type"`
	// Actor identifies the subject — a MAC address or component name.
	Actor string `json:"actor,omitempty"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// DefaultJournalCap bounds the flight recorder when no capacity is given.
const DefaultJournalCap = 8192

// Journal is the run flight recorder: a ring buffer of Events that keeps
// the most recent capacity records and counts what it had to overwrite, so
// a truncated journal is always distinguishable from a complete one.
// Methods on a nil *Journal are no-ops.
type Journal struct {
	buf     []Event
	start   int // index of the oldest stored event
	n       int // stored events
	dropped int // events overwritten by newer ones
}

// NewJournal returns a journal bounded to capacity events; capacity <= 0
// selects DefaultJournalCap.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (j *Journal) Record(at time.Duration, typ, actor, detail string) {
	if j == nil {
		return
	}
	e := Event{At: at, Type: typ, Actor: actor, Detail: detail}
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
		return
	}
	j.buf[j.start] = e
	j.start = (j.start + 1) % len(j.buf)
	j.dropped++
}

// Len returns the number of stored events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.n
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}

// Dropped returns how many events were overwritten by newer ones.
func (j *Journal) Dropped() int {
	if j == nil {
		return 0
	}
	return j.dropped
}

// Events returns the stored events in chronological order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}
