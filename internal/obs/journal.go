package obs

import (
	"sort"
	"sync"
	"time"
)

// Journal event types. Components use these constants so analysis code can
// filter without string guessing.
const (
	// EventAdaptation marks a buffer-boundary move in the City-Hunter
	// engine.
	EventAdaptation = "adaptation"
	// EventGhostHit marks a capture served from a ghost list.
	EventGhostHit = "ghost-hit"
	// EventAssociation marks a completed evil-twin association.
	EventAssociation = "association"
	// EventDeauthSweep marks one spoofed-deauthentication broadcast sweep.
	EventDeauthSweep = "deauth-sweep"
	// EventFrameLoss marks a unicast frame lost to the loss model.
	EventFrameLoss = "frame-loss"
	// EventTraceDrop marks the frame capture hitting its entry cap.
	EventTraceDrop = "trace-drop"
	// EventRunStart marks a run registering with a publisher.
	EventRunStart = "run-start"
	// EventRunFinish marks a run completing (Detail carries the error, if
	// any).
	EventRunFinish = "run-finish"
	// EventSiteDeploy marks an attacker site coming online.
	EventSiteDeploy = "site-deploy"
	// EventPromotion marks a far-field pedestrian promoted to a full
	// client.
	EventPromotion = "promotion"
	// EventDemotion marks a promoted pedestrian suspended back to the
	// far-field tier.
	EventDemotion = "demotion"
	// EventFirstAssociation marks the first evil-twin association of a run
	// (synthesised by the monitor from the association stream).
	EventFirstAssociation = "first-association"
	// EventSpecDone marks one campaign spec finishing (Detail carries the
	// outcome).
	EventSpecDone = "spec-done"
)

// Event is one structured, virtually-timestamped journal record.
type Event struct {
	// At is the virtual time of the event.
	At time.Duration `json:"at"`
	// Type is one of the Event* constants (components may add their own).
	Type string `json:"type"`
	// Actor identifies the subject — a MAC address or component name.
	Actor string `json:"actor,omitempty"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// DefaultJournalCap bounds the flight recorder when no capacity is given.
const DefaultJournalCap = 8192

// Journal is the run flight recorder: a ring buffer of Events that keeps
// the most recent capacity records and counts what it had to overwrite, so
// a truncated journal is always distinguishable from a complete one.
// Methods on a nil *Journal are no-ops.
type Journal struct {
	buf     []Event
	start   int // index of the oldest stored event
	n       int // stored events
	dropped int // events overwritten by newer ones

	// Overflow, when set, is incremented once per overwritten event so the
	// flight recorder's truncation is visible on a live /metrics scrape
	// instead of only in the post-run Result.
	Overflow *Counter
}

// NewJournal returns a journal bounded to capacity events; capacity <= 0
// selects DefaultJournalCap.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (j *Journal) Record(at time.Duration, typ, actor, detail string) {
	if j == nil {
		return
	}
	e := Event{At: at, Type: typ, Actor: actor, Detail: detail}
	if j.n < len(j.buf) {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
		return
	}
	j.buf[j.start] = e
	j.start = (j.start + 1) % len(j.buf)
	j.dropped++
	j.Overflow.Inc()
}

// Len returns the number of stored events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.n
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}

// Dropped returns how many events were overwritten by newer ones.
func (j *Journal) Dropped() int {
	if j == nil {
		return 0
	}
	return j.dropped
}

// Events returns the stored events in chronological order.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

// JournalShard is one independently locked ring journal inside a
// ShardedJournal. Each concurrent producer (a campaign worker's run, say)
// writes only to its own shard, so producers never contend on a shared
// lock; readers merge shards on demand. Methods on a nil *JournalShard are
// no-ops.
type JournalShard struct {
	mu sync.Mutex
	j  *Journal
}

// Record appends one event to the shard.
func (s *JournalShard) Record(at time.Duration, typ, actor, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.j.Record(at, typ, actor, detail)
	s.mu.Unlock()
}

// Events returns the shard's stored events in insertion order.
func (s *JournalShard) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Events()
}

// Len returns the number of stored events.
func (s *JournalShard) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Len()
}

// Dropped returns how many events the shard overwrote.
func (s *JournalShard) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Dropped()
}

// ShardedJournal is a journal split into per-producer shards. NewShard is
// the only cross-shard synchronisation point; recording stays on the
// producer's private lock.
type ShardedJournal struct {
	mu     sync.Mutex
	shards []*JournalShard
}

// NewShardedJournal returns an empty sharded journal.
func NewShardedJournal() *ShardedJournal {
	return &ShardedJournal{}
}

// NewShard adds a shard bounded to capacity events (<= 0 selects
// DefaultJournalCap) and returns it for exclusive use by one producer.
func (sj *ShardedJournal) NewShard(capacity int) *JournalShard {
	s := &JournalShard{j: NewJournal(capacity)}
	sj.mu.Lock()
	sj.shards = append(sj.shards, s)
	sj.mu.Unlock()
	return s
}

// Events merges every shard's events, ordered by virtual timestamp with a
// stable tie-break on shard creation order.
func (sj *ShardedJournal) Events() []Event {
	if sj == nil {
		return nil
	}
	sj.mu.Lock()
	shards := make([]*JournalShard, len(sj.shards))
	copy(shards, sj.shards)
	sj.mu.Unlock()
	var out []Event
	for _, s := range shards {
		out = append(out, s.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dropped sums the overwrite counts across shards.
func (sj *ShardedJournal) Dropped() int {
	if sj == nil {
		return 0
	}
	sj.mu.Lock()
	shards := make([]*JournalShard, len(sj.shards))
	copy(shards, sj.shards)
	sj.mu.Unlock()
	total := 0
	for _, s := range shards {
		total += s.Dropped()
	}
	return total
}

// Len sums the stored-event counts across shards.
func (sj *ShardedJournal) Len() int {
	if sj == nil {
		return 0
	}
	sj.mu.Lock()
	shards := make([]*JournalShard, len(sj.shards))
	copy(shards, sj.shards)
	sj.mu.Unlock()
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	return total
}
