package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cityhunter/internal/obs"
)

// sseBuffer is each subscriber's channel depth. A subscriber that cannot
// drain fast enough loses events (counted in monitor_sse_dropped_events)
// rather than blocking the publishing run.
const sseBuffer = 256

// sseEvent is one wire event: the run's journal event plus the run ID so a
// stream across many runs stays attributable.
type sseEvent struct {
	Run    string        `json:"run"`
	At     time.Duration `json:"at"`
	Type   string        `json:"type"`
	Actor  string        `json:"actor,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// subscriber is one connected /events client.
type subscriber struct {
	ch  chan sseEvent
	run string // filter to one run ID; "" = all
}

// broadcast fans an event out to every subscriber without ever blocking
// the publisher: full channels drop.
func (s *Server) broadcast(runID string, ev obs.Event) {
	wire := sseEvent{Run: runID, At: ev.At, Type: ev.Type, Actor: ev.Actor, Detail: ev.Detail}
	s.subMu.Lock()
	for _, sub := range s.subs {
		if sub.run != "" && sub.run != runID {
			continue
		}
		select {
		case sub.ch <- wire:
		default:
			s.mSSEDropped.Inc()
		}
	}
	s.subMu.Unlock()
}

// subscribe registers an SSE client; the returned cancel must be called on
// disconnect.
func (s *Server) subscribe(run string) (*subscriber, func()) {
	sub := &subscriber{ch: make(chan sseEvent, sseBuffer), run: run}
	s.subMu.Lock()
	s.subSeq++
	id := s.subSeq
	s.subs[id] = sub
	n := len(s.subs)
	s.subMu.Unlock()
	s.gSubscribers.Set(float64(n))
	return sub, func() {
		s.subMu.Lock()
		delete(s.subs, id)
		n := len(s.subs)
		s.subMu.Unlock()
		s.gSubscribers.Set(float64(n))
	}
}

// readOnly guards a handler against non-read methods: the monitor's
// endpoints observe and never mutate, so anything but GET or HEAD is a 405
// with an Allow header.
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler returns the monitor's HTTP mux: read-only telemetry plus pprof.
// Mount it under your own server if you need TLS or auth in front.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", readOnly(s.handleIndex))
	mux.HandleFunc("/metrics", readOnly(s.handleMetrics))
	mux.HandleFunc("/runs", readOnly(s.handleRuns))
	mux.HandleFunc("/runs/", readOnly(s.handleRun))
	mux.HandleFunc("/events", readOnly(s.handleEvents))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "cityhunter monitor — read-only telemetry")
	fmt.Fprintln(w, "  /metrics      Prometheus text exposition")
	fmt.Fprintln(w, "  /runs         JSON run listing")
	fmt.Fprintln(w, "  /runs/{id}    one run: status, metrics, recent events")
	fmt.Fprintln(w, "  /events       SSE stream of run events (?run=run-N to filter)")
	fmt.Fprintln(w, "  /debug/pprof  process profiling")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mScrapesTotal.Inc()
	snap := s.gather()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	states := make([]*runState, 0, len(s.order))
	for _, id := range s.order {
		states = append(states, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]runStatus, 0, len(states))
	for _, rs := range states {
		out = append(out, rs.statusJSON())
	}
	writeJSON(w, out)
}

// runDetail is /runs/{id}: the summary plus the latest metric snapshot and
// the run's journal tail.
type runDetail struct {
	runStatus
	Metrics      obs.Snapshot `json:"metrics,omitempty"`
	RecentEvents []obs.Event  `json:"recent_events,omitempty"`
}

const recentEventTail = 100

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/runs/")
	s.mu.Lock()
	rs := s.runs[id]
	s.mu.Unlock()
	if rs == nil {
		http.NotFound(w, r)
		return
	}
	d := runDetail{runStatus: rs.statusJSON()}
	rs.mu.Lock()
	d.Metrics = rs.snap
	rs.mu.Unlock()
	evs := rs.events.Events()
	if len(evs) > recentEventTail {
		evs = evs[len(evs)-recentEventTail:]
	}
	d.RecentEvents = evs
	writeJSON(w, d)
}

// handleEvents serves the SSE stream. The handler returns — releasing its
// goroutine and subscriber slot — as soon as the client disconnects
// (request context done) or the server closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub, cancel := s.subscribe(r.URL.Query().Get("run"))
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, "retry: 2000\n\n")
	fl.Flush()

	n := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.ch:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			n++
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", n, ev.Type, data)
			fl.Flush()
		}
	}
}
