package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/obs"
	"cityhunter/internal/promlint"
)

// publishDemoRun registers one run and pushes a snapshot plus an
// association event through the publisher interface.
func publishDemoRun(s *Server) obs.RunPublisher {
	rp := s.StartRun(obs.RunInfo{
		Kind:  "run",
		Label: "canteen/cityhunter/slot4",
		Labels: map[string]string{
			"attack": "cityhunter",
			"seed":   "1",
		},
	})
	reg := obs.NewRegistry()
	reg.Counter("attack_hits").Add(7)
	reg.Counter("attack_victims").Add(2)
	rp.PublishSnapshot(5*time.Second, reg.Snapshot())
	rp.PublishEvent(obs.Event{At: 3 * time.Second, Type: obs.EventAssociation,
		Actor: "02:00:00:aa:bb:cc", Detail: `associated via "TP-Link_Home"`})
	return rp
}

// TestMonitorEndpoints round-trips one run through the HTTP surface:
// /metrics must carry the run-stamped counters and pass the vendored
// exposition linter, /runs and /runs/{id} must report the run's status.
func TestMonitorEndpoints(t *testing.T) {
	s := New()
	rp := publishDemoRun(s)
	rp.FinishRun(30*time.Second, nil)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// /metrics: content type, run identity labels, lint-clean exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q, want 0.0.4 exposition", ct)
	}
	probs, err := promlint.Lint(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		t.Errorf("exposition lint: %s", p)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	body := sb.String()
	for _, want := range []string{
		`attack_hits{attack="cityhunter",run="run-1",seed="1"} 7`,
		"monitor_runs_started 1",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// /runs: one finished run with the synthesised first-association event
	// counted alongside start, association and finish.
	resp, err = http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	var runs []struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&runs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != "run-1" || runs[0].Status != "finished" {
		t.Fatalf("/runs = %+v, want one finished run-1", runs)
	}
	if runs[0].Events != 4 { // start, association, first-association, finish
		t.Errorf("run events = %d, want 4", runs[0].Events)
	}

	// /runs/run-1: detail carries the metric snapshot and the journal tail.
	resp, err = http.Get(ts.URL + "/runs/run-1")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Metrics      obs.Snapshot `json:"metrics"`
		RecentEvents []obs.Event  `json:"recent_events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&detail)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v := detail.Metrics.Value("attack_hits"); v != 7 {
		t.Errorf("run detail attack_hits = %v, want 7", v)
	}
	types := make([]string, 0, len(detail.RecentEvents))
	for _, e := range detail.RecentEvents {
		types = append(types, e.Type)
	}
	if len(types) != 4 || types[2] != obs.EventFirstAssociation {
		t.Errorf("run events = %v, want first-association synthesised third", types)
	}
}

// TestSSEStream subscribes over a real connection and checks a published
// event arrives framed as SSE.
func TestSSEStream(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The subscriber is registered synchronously in the handler before the
	// retry preamble is flushed; wait for that first line, then publish.
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "retry:") {
		t.Fatalf("SSE preamble = %q, %v", line, err)
	}
	publishDemoRun(s)

	var data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimSpace(strings.TrimPrefix(line, "data: "))
			break
		}
	}
	var ev sseEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("SSE data %q: %v", data, err)
	}
	if ev.Run != "run-1" || ev.Type != obs.EventRunStart {
		t.Errorf("first SSE event = %+v, want run-1 run-start", ev)
	}
}

// TestSSEDisconnectReleasesSubscriber checks a departing client frees its
// subscriber slot — the leak a long-lived monitor cannot afford.
func TestSSEDisconnectReleasesSubscriber(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(want float64) bool {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if s.gSubscribers.Value() == want {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	if !waitFor(1) {
		t.Fatal("subscriber never registered")
	}

	cancel()
	resp.Body.Close()
	if !waitFor(0) {
		t.Fatal("subscriber not released after disconnect")
	}

	// Broadcasting after the disconnect must not block or panic.
	publishDemoRun(s)
}
