// Package monitor is the live telemetry plane: a read-only HTTP server any
// run, deployment or campaign publishes into. It implements obs.Publisher;
// runs push virtual-time metric snapshots and structured events, and the
// server serves them as a Prometheus /metrics exposition, JSON /runs
// status, and an /events SSE stream, with net/http/pprof mounted under
// /debug/ for the process itself.
//
// The design follows the Rayhunter monitoring API split: the server only
// observes — it cannot start, stop or reconfigure a run. All simulation
// state stays timestamped in virtual time, so attaching a monitor never
// perturbs a seeded run; only campaign ETA and run bookkeeping use the wall
// clock, and those never feed back into the simulation.
package monitor

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cityhunter/internal/obs"
)

// DefaultEventCap bounds each run's event shard in the monitor.
const DefaultEventCap = 2048

// Server is the telemetry plane. Create with New, attach to runs as an
// obs.Publisher, and expose over HTTP with Start (or mount Handler
// yourself). The zero value is not usable.
type Server struct {
	self    *obs.Registry       // monitor self-metrics, exported unlabelled
	journal *obs.ShardedJournal // all runs' events, one shard per run

	mu       sync.Mutex
	runs     map[string]*runState
	order    []string // run IDs in registration order
	seq      int
	attached []attachedRegistry

	subMu  sync.Mutex
	subs   map[int]*subscriber
	subSeq int

	httpMu sync.Mutex
	ln     net.Listener
	hs     *http.Server

	mRunsStarted  *obs.Counter
	mEventsSeen   *obs.Counter
	mSSEDropped   *obs.Counter
	gRunsActive   *obs.Gauge
	gSubscribers  *obs.Gauge
	mSnapshotsIn  *obs.Counter
	mScrapesTotal *obs.Counter
}

// New returns an empty monitor server.
func New() *Server {
	self := obs.NewRegistry()
	return &Server{
		self:          self,
		journal:       obs.NewShardedJournal(),
		runs:          make(map[string]*runState),
		subs:          make(map[int]*subscriber),
		mRunsStarted:  self.Counter("monitor_runs_started"),
		mEventsSeen:   self.Counter("monitor_events_received"),
		mSSEDropped:   self.Counter("monitor_sse_dropped_events"),
		gRunsActive:   self.Gauge("monitor_runs_active"),
		gSubscribers:  self.Gauge("monitor_subscribers"),
		mSnapshotsIn:  self.Counter("monitor_snapshots_received"),
		mScrapesTotal: self.Counter("monitor_scrapes"),
	}
}

// attachedRegistry is an external metrics registry merged into /metrics.
type attachedRegistry struct {
	reg    *obs.Registry
	labels []string
}

// Attach merges an external registry into every /metrics scrape, stamped
// with the given identity label pairs (key, value, key, value, …). Unlike
// StartRun it carries no lifecycle — the job server uses it to expose its
// own job counters beside the run telemetry. Safe for concurrent use.
func (s *Server) Attach(reg *obs.Registry, labels ...string) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	s.attached = append(s.attached, attachedRegistry{reg: reg, labels: labels})
	s.mu.Unlock()
}

// runState is one registered run. Each run gets its own mutex and journal
// shard, so concurrent campaign workers publishing different runs never
// contend on a shared lock — only the scrape path walks all runs.
type runState struct {
	srv  *Server
	id   string
	info obs.RunInfo

	startedWall time.Time

	mu           sync.Mutex
	status       string // "running", "finished", "failed"
	errMsg       string
	at           time.Duration // virtual time of the latest snapshot/event
	snap         obs.Snapshot
	snapshots    int
	firstAssoc   bool
	finishedWall time.Time

	events *obs.JournalShard // own lock; written by run, read by HTTP
}

var _ obs.Publisher = (*Server)(nil)
var _ obs.RunPublisher = (*runState)(nil)

// StartRun implements obs.Publisher. Safe for concurrent use.
func (s *Server) StartRun(info obs.RunInfo) obs.RunPublisher {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("run-%d", s.seq)
	rs := &runState{
		srv:         s,
		id:          id,
		info:        info,
		startedWall: time.Now(),
		status:      "running",
		events:      s.journal.NewShard(DefaultEventCap),
	}
	s.runs[id] = rs
	s.order = append(s.order, id)
	active := s.countActiveLocked()
	s.mu.Unlock()

	s.mRunsStarted.Inc()
	s.gRunsActive.Set(float64(active))
	rs.record(obs.Event{Type: obs.EventRunStart, Actor: info.Label,
		Detail: fmt.Sprintf("kind=%s", info.Kind)})
	return rs
}

// countActiveLocked counts running runs; callers hold s.mu.
func (s *Server) countActiveLocked() int {
	active := 0
	for _, rs := range s.runs {
		rs.mu.Lock()
		if rs.status == "running" {
			active++
		}
		rs.mu.Unlock()
	}
	return active
}

// PublishSnapshot implements obs.RunPublisher.
func (rs *runState) PublishSnapshot(at time.Duration, snap obs.Snapshot) {
	rs.mu.Lock()
	rs.at = at
	rs.snap = snap
	rs.snapshots++
	rs.mu.Unlock()
	rs.srv.mSnapshotsIn.Inc()
}

// PublishEvent implements obs.RunPublisher. The monitor synthesises a
// first-association event per run from the association stream — the
// paper's time-to-first-victim measure, surfaced live.
func (rs *runState) PublishEvent(ev obs.Event) {
	rs.record(ev)
	if ev.Type == obs.EventAssociation {
		rs.mu.Lock()
		first := !rs.firstAssoc
		rs.firstAssoc = true
		rs.mu.Unlock()
		if first {
			rs.record(obs.Event{At: ev.At, Type: obs.EventFirstAssociation,
				Actor: ev.Actor, Detail: "first association of " + rs.id})
		}
	}
}

// FinishRun implements obs.RunPublisher.
func (rs *runState) FinishRun(at time.Duration, err error) {
	rs.mu.Lock()
	rs.at = at
	rs.finishedWall = time.Now()
	detail := "ok"
	if err != nil {
		rs.status = "failed"
		rs.errMsg = err.Error()
		detail = "error: " + rs.errMsg
	} else {
		rs.status = "finished"
	}
	rs.mu.Unlock()

	rs.record(obs.Event{At: at, Type: obs.EventRunFinish, Actor: rs.info.Label, Detail: detail})
	rs.srv.mu.Lock()
	active := rs.srv.countActiveLocked()
	rs.srv.mu.Unlock()
	rs.srv.gRunsActive.Set(float64(active))
}

// record journals the event under the run's shard, tracks the latest
// virtual time, and fans it out to SSE subscribers.
func (rs *runState) record(ev obs.Event) {
	rs.events.Record(ev.At, ev.Type, ev.Actor, ev.Detail)
	rs.mu.Lock()
	if ev.At > rs.at {
		rs.at = ev.At
	}
	rs.mu.Unlock()
	rs.srv.mEventsSeen.Inc()
	rs.srv.broadcast(rs.id, ev)
}

// identityLabels flattens a run's identity into label pairs for Relabel:
// the run ID always, plus whatever RunInfo.Labels carries, in sorted key
// order for determinism.
func (rs *runState) identityLabels() []string {
	pairs := []string{"run", rs.id}
	keys := make([]string, 0, len(rs.info.Labels))
	for k := range rs.info.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pairs = append(pairs, k, rs.info.Labels[k])
	}
	return pairs
}

// gather merges the latest snapshot of every run (stamped with run
// identity labels) plus the monitor's self-metrics into one exposition-
// ready snapshot.
func (s *Server) gather() obs.Snapshot {
	s.mu.Lock()
	states := make([]*runState, 0, len(s.order))
	for _, id := range s.order {
		states = append(states, s.runs[id])
	}
	attached := make([]attachedRegistry, len(s.attached))
	copy(attached, s.attached)
	s.mu.Unlock()

	var merged obs.Snapshot
	for _, rs := range states {
		rs.mu.Lock()
		snap := rs.snap
		rs.mu.Unlock()
		if len(snap) == 0 {
			continue
		}
		merged = append(merged, snap.Relabel(rs.identityLabels()...)...)
	}
	for _, a := range attached {
		snap := a.reg.Snapshot()
		if len(a.labels) > 0 {
			snap = snap.Relabel(a.labels...)
		}
		merged = append(merged, snap...)
	}
	merged = append(merged, s.self.Snapshot()...)
	merged.Sort()
	return merged
}

// runStatus is the JSON shape served by /runs and /runs/{id}.
type runStatus struct {
	ID             string            `json:"id"`
	Kind           string            `json:"kind"`
	Label          string            `json:"label,omitempty"`
	Labels         map[string]string `json:"labels,omitempty"`
	Status         string            `json:"status"`
	Error          string            `json:"error,omitempty"`
	StartedWall    time.Time         `json:"started_wall"`
	FinishedWall   *time.Time        `json:"finished_wall,omitempty"`
	VirtualSeconds float64           `json:"virtual_seconds"`
	Snapshots      int               `json:"snapshots"`
	Events         int               `json:"events"`
	EventsDropped  int               `json:"events_dropped,omitempty"`
}

// status renders the run's summary.
func (rs *runState) statusJSON() runStatus {
	rs.mu.Lock()
	st := runStatus{
		ID:             rs.id,
		Kind:           rs.info.Kind,
		Label:          rs.info.Label,
		Labels:         rs.info.Labels,
		Status:         rs.status,
		Error:          rs.errMsg,
		StartedWall:    rs.startedWall,
		VirtualSeconds: rs.at.Seconds(),
		Snapshots:      rs.snapshots,
	}
	if !rs.finishedWall.IsZero() {
		t := rs.finishedWall
		st.FinishedWall = &t
	}
	rs.mu.Unlock()
	st.Events = rs.events.Len()
	st.EventsDropped = rs.events.Dropped()
	return st
}

// Start listens on addr and serves the monitor endpoints in a background
// goroutine. It returns the bound address ("127.0.0.1:43781"), which
// matters when addr requests an ephemeral port (":0"). Call Close to shut
// the listener down.
func (s *Server) Start(addr string) (string, error) {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.ln != nil {
		return "", errors.New("monitor: already started on " + s.ln.Addr().String())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.Handler()}
	go func() { _ = s.hs.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the HTTP listener and disconnects every SSE subscriber. Runs
// already registered keep publishing into the server's state harmlessly.
func (s *Server) Close() error {
	s.httpMu.Lock()
	hs := s.hs
	s.ln, s.hs = nil, nil
	s.httpMu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}
