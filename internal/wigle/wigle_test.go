package wigle

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"cityhunter/internal/geo"
)

var testBounds = geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))

func testRecords() []Record {
	return []Record{
		{SSID: "CafeNet", BSSID: "02:00:00:00:00:01", Pos: geo.Pt(100, 100), Open: true},
		{SSID: "CafeNet", BSSID: "02:00:00:00:00:02", Pos: geo.Pt(900, 900), Open: true},
		{SSID: "SecureCorp", BSSID: "02:00:00:00:00:03", Pos: geo.Pt(105, 100), Open: false},
		{SSID: "MallWiFi", BSSID: "02:00:00:00:00:04", Pos: geo.Pt(120, 100), Open: true},
		{SSID: "AirportFree", BSSID: "02:00:00:00:00:05", Pos: geo.Pt(500, 500), Open: true},
		{SSID: "AirportFree", BSSID: "02:00:00:00:00:06", Pos: geo.Pt(505, 500), Open: true},
		{SSID: "AirportFree", BSSID: "02:00:00:00:00:07", Pos: geo.Pt(510, 500), Open: true},
	}
}

func mustDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(testBounds, testRecords())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return db
}

func TestNewRejectsEmptyBounds(t *testing.T) {
	if _, err := New(geo.Rect{}, nil); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestNewCopiesRecords(t *testing.T) {
	recs := testRecords()
	db, err := New(testBounds, recs)
	if err != nil {
		t.Fatal(err)
	}
	recs[0].SSID = "mutated"
	if db.At(0).SSID == "mutated" {
		t.Error("DB shares caller's slice")
	}
}

func TestLenAndBounds(t *testing.T) {
	db := mustDB(t)
	if db.Len() != 7 {
		t.Errorf("Len = %d, want 7", db.Len())
	}
	if db.Bounds() != testBounds {
		t.Errorf("Bounds = %v", db.Bounds())
	}
}

func TestNearby(t *testing.T) {
	db := mustDB(t)
	got := db.Nearby(geo.Pt(100, 100), 30, false)
	if len(got) != 3 {
		t.Fatalf("Nearby = %d records, want 3", len(got))
	}
	if got[0].SSID != "CafeNet" {
		t.Errorf("nearest = %q, want CafeNet", got[0].SSID)
	}
	open := db.Nearby(geo.Pt(100, 100), 30, true)
	if len(open) != 2 {
		t.Fatalf("open Nearby = %d, want 2 (SecureCorp excluded)", len(open))
	}
	for _, r := range open {
		if !r.Open {
			t.Errorf("openOnly returned secured record %q", r.SSID)
		}
	}
}

func TestNearestSSIDs(t *testing.T) {
	db := mustDB(t)
	got := db.NearestSSIDs(geo.Pt(100, 100), 2)
	want := []string{"CafeNet", "MallWiFi"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NearestSSIDs = %v, want %v", got, want)
	}
}

func TestNearestSSIDsDeduplicates(t *testing.T) {
	db := mustDB(t)
	got := db.NearestSSIDs(geo.Pt(500, 500), 10)
	seen := make(map[string]bool)
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate SSID %q", s)
		}
		seen[s] = true
	}
	// All 4 distinct open SSIDs eventually found even with a big n.
	if len(got) != 3 { // AirportFree, CafeNet, MallWiFi (SecureCorp excluded)
		t.Errorf("found %d SSIDs %v, want 3", len(got), got)
	}
	if got[0] != "AirportFree" {
		t.Errorf("nearest SSID = %q, want AirportFree", got[0])
	}
}

func TestNearestSSIDsZero(t *testing.T) {
	db := mustDB(t)
	if got := db.NearestSSIDs(geo.Pt(0, 0), 0); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
}

func TestCountBySSID(t *testing.T) {
	db := mustDB(t)
	all := db.CountBySSID(false)
	if all["CafeNet"] != 2 || all["SecureCorp"] != 1 || all["AirportFree"] != 3 {
		t.Errorf("counts = %v", all)
	}
	open := db.CountBySSID(true)
	if _, ok := open["SecureCorp"]; ok {
		t.Error("secured SSID counted with openOnly")
	}
}

func TestTopByAPCount(t *testing.T) {
	db := mustDB(t)
	got := db.TopByAPCount(2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].SSID != "AirportFree" || got[0].Count != 3 {
		t.Errorf("top = %+v, want AirportFree x3", got[0])
	}
	if got[1].SSID != "CafeNet" || got[1].Count != 2 {
		t.Errorf("second = %+v, want CafeNet x2", got[1])
	}
	// n beyond the distinct count returns everything.
	if all := db.TopByAPCount(100); len(all) != 3 {
		t.Errorf("TopByAPCount(100) = %d entries, want 3 open SSIDs", len(all))
	}
}

func TestTopByAPCountDeterministicTies(t *testing.T) {
	recs := []Record{
		{SSID: "beta", Pos: geo.Pt(1, 1), Open: true},
		{SSID: "alpha", Pos: geo.Pt(2, 2), Open: true},
	}
	for trial := 0; trial < 5; trial++ {
		db, err := New(testBounds, recs)
		if err != nil {
			t.Fatal(err)
		}
		got := db.TopByAPCount(2)
		if got[0].SSID != "alpha" || got[1].SSID != "beta" {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestOpenPositionsBySSID(t *testing.T) {
	db := mustDB(t)
	pos := db.OpenPositionsBySSID()
	if len(pos["AirportFree"]) != 3 {
		t.Errorf("AirportFree positions = %d, want 3", len(pos["AirportFree"]))
	}
	if _, ok := pos["SecureCorp"]; ok {
		t.Error("secured SSID present in open positions")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := mustDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(back.Records(), db.Records()) {
		t.Error("records changed across save/load")
	}
	if back.Bounds() != db.Bounds() {
		t.Error("bounds changed across save/load")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Error("want error for invalid JSON")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := mustDB(t)
	path := filepath.Join(t.TempDir(), "wigle.json")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Len() != db.Len() {
		t.Errorf("Len = %d, want %d", back.Len(), db.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	db := mustDB(t)
	recs := db.Records()
	recs[0].SSID = "mutated"
	if db.At(0).SSID == "mutated" {
		t.Error("Records exposes internal slice")
	}
}

func TestInRect(t *testing.T) {
	db := mustDB(t)
	r := geo.NewRect(geo.Pt(90, 90), geo.Pt(130, 110))
	all := db.InRect(r, false)
	if len(all) != 3 { // CafeNet@100, SecureCorp@105, MallWiFi@120
		t.Fatalf("InRect = %d records", len(all))
	}
	open := db.InRect(r, true)
	if len(open) != 2 {
		t.Errorf("open InRect = %d, want 2", len(open))
	}
	if got := db.InRect(geo.NewRect(geo.Pt(2000, 2000), geo.Pt(3000, 3000)), false); len(got) != 0 {
		t.Errorf("far rect returned %d", len(got))
	}
}

func TestDensityPerKm2(t *testing.T) {
	db := mustDB(t)
	// The whole 1 km × 1 km test city holds 7 APs.
	got := db.DensityPerKm2(testBounds, false)
	if got != 7 {
		t.Errorf("density = %v APs/km², want 7", got)
	}
	if db.DensityPerKm2(geo.Rect{}, false) != 0 {
		t.Error("degenerate rect density != 0")
	}
}
