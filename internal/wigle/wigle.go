// Package wigle implements the offline substitute for the Wireless
// Geographic Logging Engine (WiGLE) that City-Hunter seeds its SSID
// database from. It stores access-point records with geographic locations
// and answers the paper's two selection queries: the SSIDs nearest an
// attack location, and city-wide SSID statistics (AP counts, and — combined
// with a heat map — per-SSID heat values).
//
// The real WiGLE is a crowd-sourced web service; this package holds the
// same record shape in memory with JSON persistence, which preserves the
// behaviour the attack depends on while staying fully offline.
package wigle

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"cityhunter/internal/geo"
)

// Record is one observed access point.
type Record struct {
	// SSID is the network name. Many records may share one SSID (chain
	// shops, city Wi-Fi programmes).
	SSID string `json:"ssid"`
	// BSSID is the AP's MAC in string form.
	BSSID string `json:"bssid"`
	// Pos is the AP location on the city plane.
	Pos geo.Point `json:"pos"`
	// Open reports whether the network is unencrypted. Only open networks
	// are usable by the attacker: association to them needs no credentials.
	Open bool `json:"open"`
	// Venue optionally names the venue or district the AP belongs to.
	Venue string `json:"venue,omitempty"`
}

// DB is an in-memory, spatially indexed collection of Records.
type DB struct {
	records []Record
	index   *geo.GridIndex
	bounds  geo.Rect
}

// SSIDCount is an SSID with its number of APs; the city-wide ranking unit.
type SSIDCount struct {
	SSID  string `json:"ssid"`
	Count int    `json:"count"`
}

// New builds a DB over the given city bounds. Records may lie anywhere;
// bounds only size the spatial index.
func New(bounds geo.Rect, records []Record) (*DB, error) {
	cell := bounds.Width() / 64
	if h := bounds.Height() / 64; h > cell {
		cell = h
	}
	if cell <= 0 {
		return nil, fmt.Errorf("wigle: bounds %v have no area", bounds)
	}
	idx, err := geo.NewGridIndex(bounds, cell)
	if err != nil {
		return nil, fmt.Errorf("wigle: build index: %w", err)
	}
	db := &DB{
		records: make([]Record, len(records)),
		index:   idx,
		bounds:  bounds,
	}
	copy(db.records, records)
	for i, r := range db.records {
		idx.Insert(i, r.Pos)
	}
	return db, nil
}

// Len returns the number of records.
func (db *DB) Len() int { return len(db.records) }

// Bounds returns the city bounds the DB was built with.
func (db *DB) Bounds() geo.Rect { return db.bounds }

// Records returns a copy of all records.
func (db *DB) Records() []Record {
	out := make([]Record, len(db.records))
	copy(out, db.records)
	return out
}

// At returns the i-th record.
func (db *DB) At(i int) Record { return db.records[i] }

// Nearby returns the records within radius metres of p, nearest first.
// When openOnly is set, encrypted networks are skipped.
func (db *DB) Nearby(p geo.Point, radius float64, openOnly bool) []Record {
	ids := db.index.WithinRadius(p, radius)
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		r := db.records[id]
		if openOnly && !r.Open {
			continue
		}
		out = append(out, r)
	}
	return out
}

// NearestSSIDs returns up to n distinct SSIDs ordered by the distance of
// their closest AP to p. Only open networks are considered: the paper's
// nearby-SSID selection keeps free APs so that association succeeds without
// user interaction.
func (db *DB) NearestSSIDs(p geo.Point, n int) []string {
	if n <= 0 {
		return nil
	}
	// Expand the search ring until n distinct open SSIDs are inside.
	radius := db.bounds.Width() / 32
	maxR := db.bounds.Width() + db.bounds.Height()
	for {
		recs := db.Nearby(p, radius, true)
		seen := make(map[string]bool, n)
		var out []string
		for _, r := range recs {
			if seen[r.SSID] {
				continue
			}
			seen[r.SSID] = true
			out = append(out, r.SSID)
			if len(out) == n {
				return out
			}
		}
		if radius > maxR {
			return out
		}
		radius *= 2
	}
}

// CountBySSID returns the number of APs per SSID. When openOnly is set only
// open APs are counted.
func (db *DB) CountBySSID(openOnly bool) map[string]int {
	counts := make(map[string]int)
	for _, r := range db.records {
		if openOnly && !r.Open {
			continue
		}
		counts[r.SSID]++
	}
	return counts
}

// TopByAPCount returns the n SSIDs with the most open APs, descending, ties
// broken lexicographically for determinism. This is the naive city-wide
// ranking that Table IV contrasts with the heat ranking.
func (db *DB) TopByAPCount(n int) []SSIDCount {
	counts := db.CountBySSID(true)
	ranked := make([]SSIDCount, 0, len(counts))
	for ssid, c := range counts {
		ranked = append(ranked, SSIDCount{SSID: ssid, Count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].SSID < ranked[j].SSID
	})
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}

// OpenPositionsBySSID returns, for each SSID, the positions of its open
// APs. The heat-map ranking consumes this.
func (db *DB) OpenPositionsBySSID() map[string][]geo.Point {
	out := make(map[string][]geo.Point)
	for _, r := range db.records {
		if !r.Open {
			continue
		}
		out[r.SSID] = append(out[r.SSID], r.Pos)
	}
	return out
}

// InRect returns the records inside the axis-aligned rectangle, in
// insertion order. When openOnly is set, encrypted networks are skipped.
func (db *DB) InRect(r geo.Rect, openOnly bool) []Record {
	var out []Record
	for _, rec := range db.records {
		if !r.Contains(rec.Pos) {
			continue
		}
		if openOnly && !rec.Open {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// DensityPerKm2 returns the AP density (APs per square kilometre) inside
// the rectangle.
func (db *DB) DensityPerKm2(r geo.Rect, openOnly bool) float64 {
	area := r.Area() / 1e6
	if area <= 0 {
		return 0
	}
	return float64(len(db.InRect(r, openOnly))) / area
}

// SampleCrowdsourced returns a copy of the database with crowd-sourced
// coverage gaps: whole networks are missing with a probability that falls
// with how observable they are. Networks with at most 3 APs are dropped
// with probability missSmall, networks with 4–20 APs with missMid, and
// larger deployments (chains, venue Wi-Fi) are always present. The real
// WiGLE has exactly this bias — famous networks are thoroughly mapped,
// one-AP cafés often absent — and the gap is what makes over-the-air
// harvesting genuinely useful to City-Hunter (the paper's Fig. 6
// direct-probe-sourced hits).
func (db *DB) SampleCrowdsourced(rng *rand.Rand, missSmall, missMid float64) (*DB, error) {
	if missSmall < 0 || missSmall > 1 || missMid < 0 || missMid > 1 {
		return nil, fmt.Errorf("wigle: miss probabilities (%v, %v) outside [0,1]", missSmall, missMid)
	}
	counts := db.CountBySSID(false)
	keep := make(map[string]bool, len(counts))
	// Decide per SSID in sorted order so the sample is deterministic for
	// a given rng state.
	names := make([]string, 0, len(counts))
	for ssid := range counts {
		names = append(names, ssid)
	}
	sort.Strings(names)
	for _, ssid := range names {
		miss := 0.0
		switch c := counts[ssid]; {
		case c <= 3:
			miss = missSmall
		case c <= 20:
			miss = missMid
		}
		keep[ssid] = rng.Float64() >= miss
	}
	var kept []Record
	for _, r := range db.records {
		if keep[r.SSID] {
			kept = append(kept, r)
		}
	}
	return New(db.bounds, kept)
}

// fileFormat is the persisted JSON envelope.
type fileFormat struct {
	Bounds  geo.Rect `json:"bounds"`
	Records []Record `json:"records"`
}

// Save writes the DB as JSON to w.
func (db *DB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(fileFormat{Bounds: db.bounds, Records: db.records}); err != nil {
		return fmt.Errorf("wigle: encode: %w", err)
	}
	return nil
}

// Load reads a DB previously written by Save.
func Load(r io.Reader) (*DB, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("wigle: decode: %w", err)
	}
	return New(ff.Bounds, ff.Records)
}

// SaveFile writes the DB to path.
func (db *DB) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wigle: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return db.Save(f)
}

// LoadFile reads a DB from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wigle: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
