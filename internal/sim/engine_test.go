package sim

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	if n := e.Run(10 * time.Second); n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of insertion order: %v", got)
		}
	}
}

func TestEngineClockDuringEvent(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(5*time.Second, func() { at = e.Now() })
	e.Run(time.Minute)
	if at != 5*time.Second {
		t.Errorf("Now during event = %v, want 5s", at)
	}
	if e.Now() != time.Minute {
		t.Errorf("Now after Run = %v, want 1m", e.Now())
	}
}

func TestEngineRunStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(2*time.Second, func() { ran = true })
	if n := e.Run(time.Second); n != 0 {
		t.Fatalf("executed %d, want 0", n)
	}
	if ran {
		t.Error("event beyond horizon executed")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// The event survives for a later Run.
	e.Run(3 * time.Second)
	if !ran {
		t.Error("event did not execute on second Run")
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	var tick func()
	tick = func() {
		times = append(times, e.Now())
		if len(times) < 5 {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(time.Minute)
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5", len(times))
	}
	for i, at := range times {
		if want := time.Duration(i) * time.Second; at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Errorf("clamped event at %v, want 1s", e.Now())
			}
		})
	})
	e.Run(time.Minute)
}

func TestEngineAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Run(10 * time.Second)
	fired := false
	e.At(time.Second, func() { fired = true })
	e.Run(10 * time.Second) // horizon equals now: event clamped to now runs
	if !fired {
		t.Error("past event did not run at current time")
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(time.Second, func() { count++; e.Halt() })
	e.Schedule(2*time.Second, func() { count++ })
	e.Run(time.Minute)
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Halt", count)
	}
	// A fresh Run resumes.
	e.Run(time.Minute)
	if count != 2 {
		t.Fatalf("count = %d, want 2 after resumed Run", count)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue = true")
	}
	ran := false
	e.Schedule(time.Hour, func() { ran = true })
	if !e.Step() {
		t.Error("Step = false with pending event")
	}
	if !ran || e.Now() != time.Hour {
		t.Errorf("ran=%v now=%v", ran, e.Now())
	}
}

// TestQuickEngineOrdering property-checks that any batch of random delays
// executes in sorted order.
func TestQuickEngineOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var got []time.Duration
		for _, d := range delays {
			d := time.Duration(d%1e6) * time.Microsecond
			e.Schedule(d, func() { got = append(got, e.Now()) })
		}
		e.Run(time.Hour)
		if len(got) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEngineManyEventsStress(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() { count++ })
	}
	if got := e.Run(time.Second); got != n {
		t.Fatalf("executed %d, want %d", got, n)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestEngineRunContextPreCancelled(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := e.RunContext(ctx, 10*time.Second)
	if n != 0 || err == nil {
		t.Fatalf("RunContext on cancelled ctx = (%d, %v), want (0, ctx error)", n, err)
	}
	if fired {
		t.Error("event fired despite cancelled context")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (queue untouched)", e.Pending())
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v on cancelled run", e.Now())
	}
}

// TestEngineRunContextCancelMidRun cancels from inside event #10 and checks
// the documented poll granularity: the loop notices at the next 256-event
// boundary and leaves the clock at the last executed event, not the horizon.
func TestEngineRunContextCancelMidRun(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 1000; i++ {
		i := i
		e.Schedule(time.Duration(i+1)*time.Millisecond, func() {
			if i == 9 {
				cancel()
			}
		})
	}
	n, err := e.RunContext(ctx, time.Hour)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if n != 256 {
		t.Errorf("executed %d events, want exactly 256 (poll boundary)", n)
	}
	if want := 256 * time.Millisecond; e.Now() != want {
		t.Errorf("clock = %v, want %v (last executed event, not the horizon)", e.Now(), want)
	}
}

func TestEngineRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *Engine {
		e := NewEngine()
		for i := 0; i < 50; i++ {
			e.Schedule(time.Duration(i)*time.Second, func() {})
		}
		return e
	}
	a := mk()
	na := a.Run(time.Hour)
	b := mk()
	nb, err := b.RunContext(context.Background(), time.Hour)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if na != nb || a.Now() != b.Now() {
		t.Errorf("Run=(%d,%v) RunContext=(%d,%v); want identical", na, a.Now(), nb, b.Now())
	}
}
