package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
)

// ChannelTuner is an optional Station extension for radios parked on (or
// hopping between) 802.11 channels. A station that implements it transmits
// and receives only on its current channel; stations that do not are
// channel-agnostic — they hear and reach every channel, which is the right
// model for monitor-mode sniffers and for tests that do not care.
type ChannelTuner interface {
	// CurrentChannel returns the channel the radio is tuned to right now
	// (0 behaves as channel-agnostic).
	CurrentChannel() uint8
}

// Station is anything attached to the medium: clients, attackers,
// legitimate APs.
type Station interface {
	// Addr returns the station's MAC address. It must be unique on the
	// medium and stable for the station's lifetime.
	Addr() ieee80211.MAC
	// Pos returns the station's current position. The medium calls it at
	// frame-delivery time. A station whose position changes while attached
	// must report each change through Medium.Moved — the medium's spatial
	// delivery index relies on it to keep broadcast fan-out exact.
	Pos() geo.Point
	// Receive delivers a frame that arrived at the station's antenna.
	Receive(f *ieee80211.Frame)
}

// Medium is a shared broadcast RF channel. Frames sent by one station are
// delivered, after their airtime, to every other attached station within
// radio range of the transmitter at delivery time. Per-transmitter
// serialization models the half-duplex radio: a station's next frame starts
// only after its previous one finished, which is exactly what limits an
// attacker to ~40 probe responses per 10 ms scan window.
//
// Broadcast delivery iterates stations in attach order, so runs are
// deterministic for a given seed. A spatial hash grid over station
// positions narrows each broadcast to the cells that can contain receivers,
// so fan-out cost scales with local density instead of the total population.
type Medium struct {
	engine *Engine
	rng    rangeModel

	// maxRange is the largest distance at which any receiver can hear a
	// transmitter (the disk radius, or the soft edge's outer radius). It
	// sizes the spatial grid cells and the broadcast candidate query.
	maxRange float64

	// order holds attached stations in attach order; index maps a MAC to
	// its slot in order. Detached slots are nil and recycled lazily, so an
	// ascending slot scan is an attach-order scan.
	order []Station
	index map[ieee80211.MAC]int

	// grid buckets attached stations by position for broadcast delivery;
	// cellKeys caches each slot's current cell. grid is nil when the
	// medium has no positive range (everything falls back to a full scan).
	grid     *geo.HashGrid
	cellKeys []geo.CellKey
	// scratch is the reusable broadcast candidate buffer. Delivery never
	// nests (events run one at a time and Receive callbacks only schedule
	// future work), so a single buffer is safe.
	scratch []int32
	// compactGen counts station-table compactions. Broadcast loops snapshot
	// it: while it is unchanged, a nil slot check is an exact liveness test
	// for the snapshot they iterate, and the per-receiver map lookup the
	// old implementation paid is skipped entirely.
	compactGen uint64

	// promisc holds monitor-mode stations: they hear every in-range
	// frame regardless of its destination, and are never addressable.
	promisc      []Station
	promiscIndex map[ieee80211.MAC]int

	busyUntil map[ieee80211.MAC]time.Duration

	// deliverPool recycles the frame-delivery events TransmitFrom and the
	// retry paths schedule, so steady-state transmission allocates no
	// per-frame closures.
	deliverPool []*deliverEvent

	// loss is the independent per-delivery drop probability; lossRNG
	// draws for it and for soft-edge reception. needRNG marks models
	// that need draws even without loss.
	loss    float64
	lossRNG *rand.Rand
	needRNG bool

	// FramesSent counts every transmission accepted by the medium.
	FramesSent int
	// FramesDelivered counts every successful delivery to a receiver.
	FramesDelivered int
	// FramesRetried counts unicast retransmissions after a lost frame.
	FramesRetried int

	// Observability handles, indexed by frame subtype; all nil when
	// uninstrumented (nil handles no-op).
	mSent        [16]*obs.Counter
	mDelivered   [16]*obs.Counter
	mLost        [16]*obs.Counter
	mRetried     *obs.Counter
	mCompactions *obs.Counter
	journal      *obs.Journal
}

// meteredSubtypes is every management subtype the model transmits; the
// medium pre-creates one counter set per subtype so the per-frame hot path
// never touches the registry.
var meteredSubtypes = []ieee80211.FrameSubtype{
	ieee80211.SubtypeAssocRequest,
	ieee80211.SubtypeAssocResponse,
	ieee80211.SubtypeProbeRequest,
	ieee80211.SubtypeProbeResponse,
	ieee80211.SubtypeBeacon,
	ieee80211.SubtypeAuth,
	ieee80211.SubtypeDeauth,
}

// Instrument attaches the medium to an observability runtime: per-subtype
// transmit/deliver/loss counters (medium_frames_sent, medium_frames_delivered,
// medium_frames_lost), retry and compaction counters, and — when the
// runtime carries a journal — a frame-loss event per lost unicast frame.
func (m *Medium) Instrument(rt *obs.Runtime) {
	if rt == nil {
		return
	}
	m.journal = rt.Journal
	if rt.Metrics == nil {
		return
	}
	for _, s := range meteredSubtypes {
		m.mSent[s&0xf] = rt.Metrics.Counter("medium_frames_sent", "subtype", s.String())
		m.mDelivered[s&0xf] = rt.Metrics.Counter("medium_frames_delivered", "subtype", s.String())
		m.mLost[s&0xf] = rt.Metrics.Counter("medium_frames_lost", "subtype", s.String())
	}
	m.mRetried = rt.Metrics.Counter("medium_frames_retried")
	m.mCompactions = rt.Metrics.Counter("medium_compactions")
}

// rangeModel decides whether a receiver hears a transmitter. prob returns
// the reception probability at the given geometry (0, 1, or in between for
// soft-edge models).
type rangeModel interface {
	prob(tx, rx geo.Point) float64
}

// diskRange is the unit-disk model: reception succeeds within radius metres.
type diskRange struct{ radius float64 }

func (d diskRange) prob(tx, rx geo.Point) float64 {
	if tx.Dist2(rx) <= d.radius*d.radius {
		return 1
	}
	return 0
}

// softEdgeRange receives perfectly inside inner, fades linearly to zero at
// outer — a crude but useful stand-in for the fuzzy cell edge of a real
// radio.
type softEdgeRange struct{ inner, outer float64 }

func (s softEdgeRange) prob(tx, rx geo.Point) float64 {
	d2 := tx.Dist2(rx)
	if d2 <= s.inner*s.inner {
		return 1
	}
	if d2 >= s.outer*s.outer {
		return 0
	}
	d := tx.Dist(rx)
	return 1 - (d-s.inner)/(s.outer-s.inner)
}

// MediumOption customises NewMedium.
type MediumOption interface{ applyMedium(*Medium) }

type mediumOptionFunc func(*Medium)

func (f mediumOptionFunc) applyMedium(m *Medium) { f(m) }

// WithFrameLoss drops each frame delivery independently with probability p
// (collisions, fading, interference). Draws come from the given seed, so
// lossy runs stay reproducible.
func WithFrameLoss(p float64, seed int64) MediumOption {
	return mediumOptionFunc(func(m *Medium) {
		m.loss = p
		m.lossRNG = rand.New(rand.NewSource(seed))
	})
}

// WithSoftEdge replaces the unit disk with a fading edge: perfect
// reception inside inner metres, fading to zero at the medium's radius.
func WithSoftEdge(inner float64) MediumOption {
	return mediumOptionFunc(func(m *Medium) {
		if d, ok := m.rng.(diskRange); ok && inner < d.radius {
			m.rng = softEdgeRange{inner: inner, outer: d.radius}
			m.needRNG = true
		}
	})
}

// NewMedium returns a medium on engine where stations hear each other
// within radius metres (unit-disk propagation by default). The paper's
// Raspberry Pi at 100 mW covers roughly a 50 m disk in open indoor space.
func NewMedium(engine *Engine, radius float64, opts ...MediumOption) *Medium {
	m := &Medium{
		engine:       engine,
		rng:          diskRange{radius: radius},
		maxRange:     radius,
		index:        make(map[ieee80211.MAC]int),
		promiscIndex: make(map[ieee80211.MAC]int),
		busyUntil:    make(map[ieee80211.MAC]time.Duration),
	}
	for _, o := range opts {
		o.applyMedium(m)
	}
	if (m.loss > 0 || m.needRNG) && m.lossRNG == nil {
		m.lossRNG = rand.New(rand.NewSource(1))
	}
	if radius > 0 {
		// One cell per range disk: a 3×3 neighborhood always covers the
		// transmitter's reach, and typical venues keep the crowd within a
		// handful of cells.
		m.grid, _ = geo.NewHashGrid(radius)
	}
	return m
}

// receives draws whether one delivery succeeds given geometry and loss.
// A frame that was in range (reception probability > 0) but failed the draw
// counts as lost under the given subtype.
func (m *Medium) receives(tx, rx geo.Point, sub ieee80211.FrameSubtype) bool {
	p := m.rng.prob(tx, rx)
	if p <= 0 {
		return false
	}
	if m.loss > 0 {
		p *= 1 - m.loss
	}
	if p < 1 && (m.lossRNG == nil || m.lossRNG.Float64() >= p) {
		m.mLost[sub&0xf].Inc()
		return false
	}
	return true
}

// Attach registers s on the medium. Attaching a MAC twice is a programming
// error and returns one.
func (m *Medium) Attach(s Station) error {
	if err := m.checkNew(s.Addr()); err != nil {
		return err
	}
	i := len(m.order)
	m.index[s.Addr()] = i
	m.order = append(m.order, s)
	if m.grid != nil {
		m.cellKeys = append(m.cellKeys, m.grid.Insert(int32(i), s.Pos()))
	}
	return nil
}

// AttachPromiscuous registers s as a monitor-mode station: it receives
// every frame whose transmitter is in range — unicast or broadcast, to
// anyone — exactly like a sniffer in monitor mode. Promiscuous stations
// are not addressable (frames sent to their MAC go nowhere) and should not
// transmit.
func (m *Medium) AttachPromiscuous(s Station) error {
	if err := m.checkNew(s.Addr()); err != nil {
		return err
	}
	m.promiscIndex[s.Addr()] = len(m.promisc)
	m.promisc = append(m.promisc, s)
	return nil
}

func (m *Medium) checkNew(addr ieee80211.MAC) error {
	if _, dup := m.index[addr]; dup {
		return fmt.Errorf("sim: station %v already attached", addr)
	}
	if _, dup := m.promiscIndex[addr]; dup {
		return fmt.Errorf("sim: station %v already attached promiscuously", addr)
	}
	return nil
}

// Detach removes the station with the given address; frames already in
// flight to it are dropped at delivery time. Detaching an unknown address
// is a no-op so departing clients can detach unconditionally.
func (m *Medium) Detach(addr ieee80211.MAC) {
	if pi, ok := m.promiscIndex[addr]; ok {
		m.promisc[pi] = nil
		delete(m.promiscIndex, addr)
		return
	}
	i, ok := m.index[addr]
	if !ok {
		return
	}
	if m.grid != nil {
		m.grid.Remove(int32(i), m.cellKeys[i])
	}
	m.order[i] = nil
	delete(m.index, addr)
	delete(m.busyUntil, addr)
	m.maybeCompact()
}

// Moved re-buckets a station in the spatial delivery index after its
// position changed. Every station whose position changes while attached
// must call it (or be moved through it); a stale bucket can hide the
// station from broadcasts it should hear. Unknown addresses are a no-op,
// so movers may report unconditionally — before Attach, after Detach, or
// for promiscuous stations (which are not spatially indexed).
func (m *Medium) Moved(addr ieee80211.MAC) {
	if m.grid == nil {
		return
	}
	i, ok := m.index[addr]
	if !ok {
		return
	}
	m.cellKeys[i] = m.grid.Move(int32(i), m.cellKeys[i], m.order[i].Pos())
}

// maybeCompact rebuilds the order slice once more than half its slots are
// tombstones, preserving attach order. The spatial index is rebuilt with
// the new slot numbering, and the compaction generation bump tells any
// broadcast loop in progress to stop trusting its pre-compaction snapshot.
func (m *Medium) maybeCompact() {
	if len(m.order) < 64 || len(m.index)*2 > len(m.order) {
		return
	}
	m.mCompactions.Inc()
	m.compactGen++
	compact := make([]Station, 0, len(m.index))
	for _, s := range m.order {
		if s != nil {
			compact = append(compact, s)
		}
	}
	m.order = compact
	if m.grid != nil {
		m.grid, _ = geo.NewHashGrid(m.maxRange)
		m.cellKeys = m.cellKeys[:0]
	}
	for i, s := range m.order {
		m.index[s.Addr()] = i
		if m.grid != nil {
			m.cellKeys = append(m.cellKeys, m.grid.Insert(int32(i), s.Pos()))
		}
	}
}

// Attached reports whether addr is currently on the medium (in either
// normal or monitor mode).
func (m *Medium) Attached(addr ieee80211.MAC) bool {
	if _, ok := m.index[addr]; ok {
		return true
	}
	_, ok := m.promiscIndex[addr]
	return ok
}

// StationCount returns the number of attached stations.
func (m *Medium) StationCount() int { return len(m.index) }

// Transmit queues f for transmission by the station with MAC f.SA. The
// frame goes on air once the transmitter's previous frame has finished
// (half-duplex serialization) and is delivered after its airtime to every
// in-range station — to the unicast destination only, or to everyone for
// broadcast destinations. Transmit returns the time the frame will finish
// transmitting.
func (m *Medium) Transmit(f *ieee80211.Frame) time.Duration {
	return m.TransmitFrom(f.SA, f)
}

// TransmitFrom is Transmit with an explicit physical transmitter, which may
// differ from the frame's SA: spoofed frames (the deauthentication attack
// forges the legitimate AP's address) radiate from the spoofer's radio, so
// range and airtime are charged to the spoofer.
func (m *Medium) TransmitFrom(tx ieee80211.MAC, f *ieee80211.Frame) time.Duration {
	// The PHY channel is pinned at transmit time: if the transmitter
	// hops before the frame lands, the tail still went out on the old
	// channel.
	txCh := m.channelOf(tx)
	start := m.engine.Now()
	if busy := m.busyUntil[tx]; busy > start {
		start = busy
	}
	done := start + f.Airtime()
	m.busyUntil[tx] = done
	m.FramesSent++
	m.mSent[f.Subtype&0xf].Inc()

	m.scheduleDeliver(done, tx, txCh, f, unicastRetryLimit)
	return done
}

// deliverEvent is a pooled frame-delivery callback. One sits on the engine
// queue per in-flight transmission or retry; executing it returns the event
// to the medium's pool before the delivery runs, so the delivery itself may
// immediately recycle it for a retry. The bound run closure is allocated
// once per pool entry and reused for every schedule.
type deliverEvent struct {
	m           *Medium
	tx          ieee80211.MAC
	txCh        uint8
	f           *ieee80211.Frame
	retriesLeft int
	run         func()
}

// scheduleDeliver queues a delivery of f at absolute time at, reusing a
// pooled event when one is free.
func (m *Medium) scheduleDeliver(at time.Duration, tx ieee80211.MAC, txCh uint8, f *ieee80211.Frame, retriesLeft int) {
	var de *deliverEvent
	if n := len(m.deliverPool); n > 0 {
		de = m.deliverPool[n-1]
		m.deliverPool[n-1] = nil
		m.deliverPool = m.deliverPool[:n-1]
	} else {
		de = &deliverEvent{m: m}
		de.run = de.exec
	}
	de.tx, de.txCh, de.f, de.retriesLeft = tx, txCh, f, retriesLeft
	m.engine.At(at, de.run)
}

func (de *deliverEvent) exec() {
	m, tx, txCh, f, retries := de.m, de.tx, de.txCh, de.f, de.retriesLeft
	de.f = nil // drop the frame reference while pooled
	m.deliverPool = append(m.deliverPool, de)
	m.deliver(tx, txCh, f, retries)
}

// channelOf returns a station's current channel, or 0 (agnostic) when the
// station is unknown or untuned.
func (m *Medium) channelOf(addr ieee80211.MAC) uint8 {
	if i, ok := m.index[addr]; ok {
		if t, ok := m.order[i].(ChannelTuner); ok {
			return t.CurrentChannel()
		}
	}
	return 0
}

// sameChannel reports whether a transmission on txCh reaches a receiver;
// channel 0 on either side is agnostic.
func sameChannel(txCh uint8, rx Station) bool {
	if txCh == 0 {
		return true
	}
	t, ok := rx.(ChannelTuner)
	if !ok {
		return true
	}
	rxCh := t.CurrentChannel()
	return rxCh == 0 || rxCh == txCh
}

// unicastRetryLimit is the 802.11 long retry limit: unicast frames are
// ACKed, and a lost one is retransmitted up to this many times. Broadcast
// frames are never retried, per the standard.
const unicastRetryLimit = 7

// TxBusyUntil returns when the given transmitter's queue drains; before
// that time any new Transmit will be queued behind earlier frames.
func (m *Medium) TxBusyUntil(addr ieee80211.MAC) time.Duration {
	return m.busyUntil[addr]
}

func (m *Medium) deliver(tx ieee80211.MAC, txCh uint8, f *ieee80211.Frame, retriesLeft int) {
	ti, ok := m.index[tx]
	if !ok {
		// Transmitter departed mid-flight: the tail of its transmission
		// is lost.
		return
	}
	txPos := m.order[ti].Pos()

	// Monitor-mode stations hear everything in range, first — their
	// detectors may inform decisions other receivers make later in the
	// same instant.
	for _, rx := range m.promisc {
		if rx == nil || rx.Addr() == tx {
			continue
		}
		if sameChannel(txCh, rx) && m.receives(txPos, rx.Pos(), f.Subtype) {
			rx.Receive(f)
		}
	}

	if f.DA.IsBroadcast() {
		m.deliverBroadcast(tx, txPos, txCh, f)
		return
	}
	ri, ok := m.index[f.DA]
	if !ok {
		return
	}
	rx := m.order[ri]
	rxPos := rx.Pos()
	if !sameChannel(txCh, rx) {
		// Wrong channel: no ACK, so the transmitter retries exactly as
		// for a lost frame (which is what a real radio observes).
		if retriesLeft > 0 {
			m.FramesRetried++
			m.mRetried.Inc()
			m.scheduleDeliver(m.engine.Now()+f.Airtime(), tx, txCh, f, retriesLeft-1)
		}
		return
	}
	if m.receives(txPos, rxPos, f.Subtype) {
		m.FramesDelivered++
		m.mDelivered[f.Subtype&0xf].Inc()
		rx.Receive(f)
		return
	}
	if m.journal != nil && m.rng.prob(txPos, rxPos) > 0 {
		m.journal.Record(m.engine.Now(), obs.EventFrameLoss, tx.String(),
			fmt.Sprintf("%s to %s lost, %d retries left", f.Subtype, f.DA, retriesLeft))
	}
	// A unicast frame in range but lost draws no ACK; the transmitter
	// retries after another airtime, up to the 802.11 retry limit.
	if retriesLeft > 0 && m.rng.prob(txPos, rxPos) > 0 {
		m.FramesRetried++
		m.mRetried.Inc()
		m.scheduleDeliver(m.engine.Now()+f.Airtime(), tx, txCh, f, retriesLeft-1)
	}
}

// deliverBroadcast fans f out to every in-range station in attach order.
// With the spatial index armed, only stations bucketed in cells the
// transmitter can reach are visited; slot ids sort ascending, which IS
// attach order, so the delivery sequence (and thus every RNG draw) is
// identical to a full scan.
func (m *Medium) deliverBroadcast(tx ieee80211.MAC, txPos geo.Point, txCh uint8, f *ieee80211.Frame) {
	order := m.order
	if m.grid == nil {
		for _, rx := range order {
			if rx == nil || rx.Addr() == tx {
				continue
			}
			if _, live := m.index[rx.Addr()]; !live {
				continue
			}
			if sameChannel(txCh, rx) && m.receives(txPos, rx.Pos(), f.Subtype) {
				m.FramesDelivered++
				m.mDelivered[f.Subtype&0xf].Inc()
				rx.Receive(f)
			}
		}
		return
	}

	cands := m.grid.AppendNeighborhood(m.scratch[:0], txPos, m.maxRange)
	slices.Sort(cands)
	m.scratch = cands
	gen := m.compactGen
	for _, i := range cands {
		rx := order[i]
		if rx == nil || rx.Addr() == tx {
			continue
		}
		if m.compactGen != gen {
			// A Receive callback compacted the station table: the slots of
			// our pre-compaction snapshot are no longer nilled on detach,
			// so fall back to the authoritative liveness map for the rest
			// of this fan-out.
			if _, live := m.index[rx.Addr()]; !live {
				continue
			}
		}
		if sameChannel(txCh, rx) && m.receives(txPos, rx.Pos(), f.Subtype) {
			m.FramesDelivered++
			m.mDelivered[f.Subtype&0xf].Inc()
			rx.Receive(f)
		}
	}
}
