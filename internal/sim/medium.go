package sim

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
)

// ChannelTuner is an optional Station extension for radios parked on (or
// hopping between) 802.11 channels. A station that implements it transmits
// and receives only on its current channel; stations that do not are
// channel-agnostic — they hear and reach every channel, which is the right
// model for monitor-mode sniffers and for tests that do not care.
type ChannelTuner interface {
	// CurrentChannel returns the channel the radio is tuned to right now
	// (0 behaves as channel-agnostic).
	CurrentChannel() uint8
}

// Station is anything attached to the medium: clients, attackers,
// legitimate APs.
type Station interface {
	// Addr returns the station's MAC address. It must be unique on the
	// medium and stable for the station's lifetime.
	Addr() ieee80211.MAC
	// Pos returns the station's current position. The medium calls it at
	// frame-delivery time, so moving stations are handled naturally.
	Pos() geo.Point
	// Receive delivers a frame that arrived at the station's antenna.
	Receive(f *ieee80211.Frame)
}

// Medium is a shared broadcast RF channel. Frames sent by one station are
// delivered, after their airtime, to every other attached station within
// radio range of the transmitter at delivery time. Per-transmitter
// serialization models the half-duplex radio: a station's next frame starts
// only after its previous one finished, which is exactly what limits an
// attacker to ~40 probe responses per 10 ms scan window.
//
// Broadcast delivery iterates stations in attach order, so runs are
// deterministic for a given seed.
type Medium struct {
	engine *Engine
	rng    rangeModel

	// order holds attached stations in attach order; index maps a MAC to
	// its slot in order. Detached slots are nil and recycled lazily.
	order []Station
	index map[ieee80211.MAC]int

	// promisc holds monitor-mode stations: they hear every in-range
	// frame regardless of its destination, and are never addressable.
	promisc      []Station
	promiscIndex map[ieee80211.MAC]int

	busyUntil map[ieee80211.MAC]time.Duration

	// loss is the independent per-delivery drop probability; lossRNG
	// draws for it and for soft-edge reception. needRNG marks models
	// that need draws even without loss.
	loss    float64
	lossRNG *rand.Rand
	needRNG bool

	// FramesSent counts every transmission accepted by the medium.
	FramesSent int
	// FramesDelivered counts every successful delivery to a receiver.
	FramesDelivered int
	// FramesRetried counts unicast retransmissions after a lost frame.
	FramesRetried int

	// Observability handles, indexed by frame subtype; all nil when
	// uninstrumented (nil handles no-op).
	mSent        [16]*obs.Counter
	mDelivered   [16]*obs.Counter
	mLost        [16]*obs.Counter
	mRetried     *obs.Counter
	mCompactions *obs.Counter
	journal      *obs.Journal
}

// meteredSubtypes is every management subtype the model transmits; the
// medium pre-creates one counter set per subtype so the per-frame hot path
// never touches the registry.
var meteredSubtypes = []ieee80211.FrameSubtype{
	ieee80211.SubtypeAssocRequest,
	ieee80211.SubtypeAssocResponse,
	ieee80211.SubtypeProbeRequest,
	ieee80211.SubtypeProbeResponse,
	ieee80211.SubtypeBeacon,
	ieee80211.SubtypeAuth,
	ieee80211.SubtypeDeauth,
}

// Instrument attaches the medium to an observability runtime: per-subtype
// transmit/deliver/loss counters (medium_frames_sent, medium_frames_delivered,
// medium_frames_lost), retry and compaction counters, and — when the
// runtime carries a journal — a frame-loss event per lost unicast frame.
func (m *Medium) Instrument(rt *obs.Runtime) {
	if rt == nil {
		return
	}
	m.journal = rt.Journal
	if rt.Metrics == nil {
		return
	}
	for _, s := range meteredSubtypes {
		m.mSent[s&0xf] = rt.Metrics.Counter("medium_frames_sent", "subtype", s.String())
		m.mDelivered[s&0xf] = rt.Metrics.Counter("medium_frames_delivered", "subtype", s.String())
		m.mLost[s&0xf] = rt.Metrics.Counter("medium_frames_lost", "subtype", s.String())
	}
	m.mRetried = rt.Metrics.Counter("medium_frames_retried")
	m.mCompactions = rt.Metrics.Counter("medium_compactions")
}

// rangeModel decides whether a receiver hears a transmitter. prob returns
// the reception probability at the given geometry (0, 1, or in between for
// soft-edge models).
type rangeModel interface {
	prob(tx, rx geo.Point) float64
}

// diskRange is the unit-disk model: reception succeeds within radius metres.
type diskRange struct{ radius float64 }

func (d diskRange) prob(tx, rx geo.Point) float64 {
	if tx.Dist2(rx) <= d.radius*d.radius {
		return 1
	}
	return 0
}

// softEdgeRange receives perfectly inside inner, fades linearly to zero at
// outer — a crude but useful stand-in for the fuzzy cell edge of a real
// radio.
type softEdgeRange struct{ inner, outer float64 }

func (s softEdgeRange) prob(tx, rx geo.Point) float64 {
	d2 := tx.Dist2(rx)
	if d2 <= s.inner*s.inner {
		return 1
	}
	if d2 >= s.outer*s.outer {
		return 0
	}
	d := tx.Dist(rx)
	return 1 - (d-s.inner)/(s.outer-s.inner)
}

// MediumOption customises NewMedium.
type MediumOption interface{ applyMedium(*Medium) }

type mediumOptionFunc func(*Medium)

func (f mediumOptionFunc) applyMedium(m *Medium) { f(m) }

// WithFrameLoss drops each frame delivery independently with probability p
// (collisions, fading, interference). Draws come from the given seed, so
// lossy runs stay reproducible.
func WithFrameLoss(p float64, seed int64) MediumOption {
	return mediumOptionFunc(func(m *Medium) {
		m.loss = p
		m.lossRNG = rand.New(rand.NewSource(seed))
	})
}

// WithSoftEdge replaces the unit disk with a fading edge: perfect
// reception inside inner metres, fading to zero at the medium's radius.
func WithSoftEdge(inner float64) MediumOption {
	return mediumOptionFunc(func(m *Medium) {
		if d, ok := m.rng.(diskRange); ok && inner < d.radius {
			m.rng = softEdgeRange{inner: inner, outer: d.radius}
			m.needRNG = true
		}
	})
}

// NewMedium returns a medium on engine where stations hear each other
// within radius metres (unit-disk propagation by default). The paper's
// Raspberry Pi at 100 mW covers roughly a 50 m disk in open indoor space.
func NewMedium(engine *Engine, radius float64, opts ...MediumOption) *Medium {
	m := &Medium{
		engine:       engine,
		rng:          diskRange{radius: radius},
		index:        make(map[ieee80211.MAC]int),
		promiscIndex: make(map[ieee80211.MAC]int),
		busyUntil:    make(map[ieee80211.MAC]time.Duration),
	}
	for _, o := range opts {
		o.applyMedium(m)
	}
	if (m.loss > 0 || m.needRNG) && m.lossRNG == nil {
		m.lossRNG = rand.New(rand.NewSource(1))
	}
	return m
}

// receives draws whether one delivery succeeds given geometry and loss.
// A frame that was in range (reception probability > 0) but failed the draw
// counts as lost under the given subtype.
func (m *Medium) receives(tx, rx geo.Point, sub ieee80211.FrameSubtype) bool {
	p := m.rng.prob(tx, rx)
	if p <= 0 {
		return false
	}
	if m.loss > 0 {
		p *= 1 - m.loss
	}
	if p < 1 && (m.lossRNG == nil || m.lossRNG.Float64() >= p) {
		m.mLost[sub&0xf].Inc()
		return false
	}
	return true
}

// Attach registers s on the medium. Attaching a MAC twice is a programming
// error and returns one.
func (m *Medium) Attach(s Station) error {
	if err := m.checkNew(s.Addr()); err != nil {
		return err
	}
	m.index[s.Addr()] = len(m.order)
	m.order = append(m.order, s)
	return nil
}

// AttachPromiscuous registers s as a monitor-mode station: it receives
// every frame whose transmitter is in range — unicast or broadcast, to
// anyone — exactly like a sniffer in monitor mode. Promiscuous stations
// are not addressable (frames sent to their MAC go nowhere) and should not
// transmit.
func (m *Medium) AttachPromiscuous(s Station) error {
	if err := m.checkNew(s.Addr()); err != nil {
		return err
	}
	m.promiscIndex[s.Addr()] = len(m.promisc)
	m.promisc = append(m.promisc, s)
	return nil
}

func (m *Medium) checkNew(addr ieee80211.MAC) error {
	if _, dup := m.index[addr]; dup {
		return fmt.Errorf("sim: station %v already attached", addr)
	}
	if _, dup := m.promiscIndex[addr]; dup {
		return fmt.Errorf("sim: station %v already attached promiscuously", addr)
	}
	return nil
}

// Detach removes the station with the given address; frames already in
// flight to it are dropped at delivery time. Detaching an unknown address
// is a no-op so departing clients can detach unconditionally.
func (m *Medium) Detach(addr ieee80211.MAC) {
	if pi, ok := m.promiscIndex[addr]; ok {
		m.promisc[pi] = nil
		delete(m.promiscIndex, addr)
		return
	}
	i, ok := m.index[addr]
	if !ok {
		return
	}
	m.order[i] = nil
	delete(m.index, addr)
	delete(m.busyUntil, addr)
	m.maybeCompact()
}

// maybeCompact rebuilds the order slice once more than half its slots are
// tombstones, preserving attach order.
func (m *Medium) maybeCompact() {
	if len(m.order) < 64 || len(m.index)*2 > len(m.order) {
		return
	}
	m.mCompactions.Inc()
	compact := make([]Station, 0, len(m.index))
	for _, s := range m.order {
		if s != nil {
			compact = append(compact, s)
		}
	}
	m.order = compact
	for i, s := range m.order {
		m.index[s.Addr()] = i
	}
}

// Attached reports whether addr is currently on the medium (in either
// normal or monitor mode).
func (m *Medium) Attached(addr ieee80211.MAC) bool {
	if _, ok := m.index[addr]; ok {
		return true
	}
	_, ok := m.promiscIndex[addr]
	return ok
}

// StationCount returns the number of attached stations.
func (m *Medium) StationCount() int { return len(m.index) }

// Transmit queues f for transmission by the station with MAC f.SA. The
// frame goes on air once the transmitter's previous frame has finished
// (half-duplex serialization) and is delivered after its airtime to every
// in-range station — to the unicast destination only, or to everyone for
// broadcast destinations. Transmit returns the time the frame will finish
// transmitting.
func (m *Medium) Transmit(f *ieee80211.Frame) time.Duration {
	return m.TransmitFrom(f.SA, f)
}

// TransmitFrom is Transmit with an explicit physical transmitter, which may
// differ from the frame's SA: spoofed frames (the deauthentication attack
// forges the legitimate AP's address) radiate from the spoofer's radio, so
// range and airtime are charged to the spoofer.
func (m *Medium) TransmitFrom(tx ieee80211.MAC, f *ieee80211.Frame) time.Duration {
	// The PHY channel is pinned at transmit time: if the transmitter
	// hops before the frame lands, the tail still went out on the old
	// channel.
	txCh := m.channelOf(tx)
	start := m.engine.Now()
	if busy := m.busyUntil[tx]; busy > start {
		start = busy
	}
	done := start + f.Airtime()
	m.busyUntil[tx] = done
	m.FramesSent++
	m.mSent[f.Subtype&0xf].Inc()

	m.engine.At(done, func() { m.deliver(tx, txCh, f, unicastRetryLimit) })
	return done
}

// channelOf returns a station's current channel, or 0 (agnostic) when the
// station is unknown or untuned.
func (m *Medium) channelOf(addr ieee80211.MAC) uint8 {
	if i, ok := m.index[addr]; ok {
		if t, ok := m.order[i].(ChannelTuner); ok {
			return t.CurrentChannel()
		}
	}
	return 0
}

// sameChannel reports whether a transmission on txCh reaches a receiver;
// channel 0 on either side is agnostic.
func sameChannel(txCh uint8, rx Station) bool {
	if txCh == 0 {
		return true
	}
	t, ok := rx.(ChannelTuner)
	if !ok {
		return true
	}
	rxCh := t.CurrentChannel()
	return rxCh == 0 || rxCh == txCh
}

// unicastRetryLimit is the 802.11 long retry limit: unicast frames are
// ACKed, and a lost one is retransmitted up to this many times. Broadcast
// frames are never retried, per the standard.
const unicastRetryLimit = 7

// TxBusyUntil returns when the given transmitter's queue drains; before
// that time any new Transmit will be queued behind earlier frames.
func (m *Medium) TxBusyUntil(addr ieee80211.MAC) time.Duration {
	return m.busyUntil[addr]
}

func (m *Medium) deliver(tx ieee80211.MAC, txCh uint8, f *ieee80211.Frame, retriesLeft int) {
	ti, ok := m.index[tx]
	if !ok {
		// Transmitter departed mid-flight: the tail of its transmission
		// is lost.
		return
	}
	txPos := m.order[ti].Pos()

	// Monitor-mode stations hear everything in range, first — their
	// detectors may inform decisions other receivers make later in the
	// same instant.
	for _, rx := range m.promisc {
		if rx == nil || rx.Addr() == tx {
			continue
		}
		if sameChannel(txCh, rx) && m.receives(txPos, rx.Pos(), f.Subtype) {
			rx.Receive(f)
		}
	}

	if f.DA.IsBroadcast() {
		for _, rx := range m.order {
			if rx == nil || rx.Addr() == tx {
				continue
			}
			// Re-check liveness: a Receive callback earlier in this loop
			// may have detached a later station.
			if _, live := m.index[rx.Addr()]; !live {
				continue
			}
			if sameChannel(txCh, rx) && m.receives(txPos, rx.Pos(), f.Subtype) {
				m.FramesDelivered++
				m.mDelivered[f.Subtype&0xf].Inc()
				rx.Receive(f)
			}
		}
		return
	}
	ri, ok := m.index[f.DA]
	if !ok {
		return
	}
	rx := m.order[ri]
	rxPos := rx.Pos()
	if !sameChannel(txCh, rx) {
		// Wrong channel: no ACK, so the transmitter retries exactly as
		// for a lost frame (which is what a real radio observes).
		if retriesLeft > 0 {
			m.FramesRetried++
			m.mRetried.Inc()
			m.engine.Schedule(f.Airtime(), func() { m.deliver(tx, txCh, f, retriesLeft-1) })
		}
		return
	}
	if m.receives(txPos, rxPos, f.Subtype) {
		m.FramesDelivered++
		m.mDelivered[f.Subtype&0xf].Inc()
		rx.Receive(f)
		return
	}
	if m.journal != nil && m.rng.prob(txPos, rxPos) > 0 {
		m.journal.Record(m.engine.Now(), obs.EventFrameLoss, tx.String(),
			fmt.Sprintf("%s to %s lost, %d retries left", f.Subtype, f.DA, retriesLeft))
	}
	// A unicast frame in range but lost draws no ACK; the transmitter
	// retries after another airtime, up to the 802.11 retry limit.
	if retriesLeft > 0 && m.rng.prob(txPos, rxPos) > 0 {
		m.FramesRetried++
		m.mRetried.Inc()
		m.engine.Schedule(f.Airtime(), func() { m.deliver(tx, txCh, f, retriesLeft-1) })
	}
}
