package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"
)

// Partitioned coordinates several single-threaded Engines as one
// conservative parallel discrete-event simulation. Each partition owns a
// disjoint slice of the world (its own Engine, Medium, populations) and
// advances in bounded time windows: the coordinator picks a horizon no
// further than the lookahead ahead of the global clock, delivers every
// pending cross-partition message due inside the window onto its
// destination engine, runs all partitions concurrently to the horizon,
// joins them at a barrier, collects the messages they posted, runs any
// global events due exactly at the horizon, and advances.
//
// Determinism is independent of both the partition count and GOMAXPROCS
// because nothing about the schedule depends on either:
//
//   - The window sequence is a pure function of (lookahead, global events,
//     until) — partitions never shift a horizon.
//   - Cross-partition messages are merged in (time, source key, per-source
//     sequence) order, where the source key is a stable identity (the
//     posting site), not a partition index, and per-source sequences follow
//     each source's own posting order. How sources are grouped onto
//     partitions therefore cannot reorder the merge.
//   - Messages are delivered before the window runs, so each destination
//     engine executes them at their exact timestamps in its usual
//     (time, insertion) order; within one timestamp, events scheduled in
//     earlier windows sort before delivered messages, which sort before
//     events scheduled during the window — the same order at any width.
//
// The price of the scheme is the lookahead contract: a message posted at
// virtual time t must be stamped at least t+lookahead. A message that
// violates the contract is not lost — it is delivered at the next barrier,
// clamped to the then-current horizon — but it executes later than its
// stamp says, so violations are counted and ought to be zero.
type Partitioned struct {
	parts     []*Engine
	lookahead time.Duration
	now       time.Duration

	pending  msgHeap
	outboxes [][]crossMsg // one per partition, written only by its goroutine
	srcSeq   map[int]uint64

	globals   globalHeap
	gseq      uint64
	results   []partResult
	violation int
}

// crossMsg is one cross-partition message: fn runs on partition dst's
// engine at time at. src is the stable merge key (site index), seq the
// per-src posting sequence assigned at collection.
type crossMsg struct {
	at  time.Duration
	src int
	seq uint64
	dst int
	fn  func()
}

type msgHeap []crossMsg

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x interface{}) { *h = append(*h, x.(crossMsg)) }
func (h *msgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// globalEvent runs on the coordinator goroutine at a window barrier whose
// horizon equals at exactly: every partition clock reads at, and none is
// running. period > 0 re-arms the event after each firing.
type globalEvent struct {
	at     time.Duration
	seq    uint64
	period time.Duration
	fn     func()
}

type globalHeap []globalEvent

func (h globalHeap) Len() int { return len(h) }
func (h globalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h globalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *globalHeap) Push(x interface{}) { *h = append(*h, x.(globalEvent)) }
func (h *globalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	g := old[n-1]
	*h = old[:n-1]
	return g
}

type partResult struct {
	n   int
	err error
}

// NewPartitioned builds a coordinator over n fresh engines with the given
// lookahead. The lookahead bounds every window and must be positive; every
// message posted at virtual time t must be stamped ≥ t+lookahead.
func NewPartitioned(n int, lookahead time.Duration) (*Partitioned, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: partition count %d must be ≥ 1", n)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: lookahead %v must be positive", lookahead)
	}
	p := &Partitioned{
		parts:     make([]*Engine, n),
		lookahead: lookahead,
		outboxes:  make([][]crossMsg, n),
		srcSeq:    map[int]uint64{},
		results:   make([]partResult, n),
	}
	for i := range p.parts {
		p.parts[i] = NewEngine()
	}
	return p, nil
}

// Parts returns the partition count.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Part returns partition i's engine. Outside RunContext any goroutine may
// schedule on it; during a window only partition i's own events may.
func (p *Partitioned) Part(i int) *Engine { return p.parts[i] }

// Now returns the last completed barrier time. Call it only from the
// coordinator goroutine or from global events — never from inside a
// running partition, whose own engine clock is the one that is exact.
func (p *Partitioned) Now() time.Duration { return p.now }

// LookaheadViolations counts messages that arrived stamped at or before
// the horizon of the window that posted them. They were delivered late
// (at the next barrier); a correct lookahead keeps this at zero.
func (p *Partitioned) LookaheadViolations() int { return p.violation }

// Post sends fn to partition dst to run at time at. from is the posting
// partition (only its own goroutine may post on its behalf); src is the
// stable merge key — the posting site's index, NOT its partition — so the
// cross-partition merge order survives any regrouping of sites onto
// partitions. Messages route through the coordinator even when from == dst:
// delivery order must not depend on whether two sites share a partition.
func (p *Partitioned) Post(from, src int, at time.Duration, dst int, fn func()) {
	p.outboxes[from] = append(p.outboxes[from], crossMsg{at: at, src: src, dst: dst, fn: fn})
}

// Global schedules fn once on the coordinator goroutine at a barrier whose
// horizon is exactly at (clamped to the current clock if in the past).
// All partition clocks read at when it runs, and none is running.
func (p *Partitioned) Global(at time.Duration, fn func()) {
	if at < p.now {
		at = p.now
	}
	heap.Push(&p.globals, globalEvent{at: at, seq: p.gseq, fn: fn})
	p.gseq++
}

// GlobalEvery schedules fn at now+delay and then every period thereafter,
// each firing at a window barrier. period must be positive.
func (p *Partitioned) GlobalEvery(delay, period time.Duration, fn func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: GlobalEvery period %v must be positive", period))
	}
	heap.Push(&p.globals, globalEvent{at: p.now + delay, seq: p.gseq, period: period, fn: fn})
	p.gseq++
}

// collect drains every outbox into the pending heap, assigning each
// message its per-source sequence number in posting order. horizon is the
// window that just ran (messages stamped at or before it violate the
// lookahead contract — counted, then delivered next barrier).
func (p *Partitioned) collect(horizon time.Duration) {
	for i := range p.outboxes {
		for _, m := range p.outboxes[i] {
			m.seq = p.srcSeq[m.src]
			p.srcSeq[m.src]++
			if m.at <= horizon {
				p.violation++
			}
			heap.Push(&p.pending, m)
		}
		p.outboxes[i] = p.outboxes[i][:0]
	}
}

// deliver schedules every pending message due at or before horizon onto
// its destination engine, in (time, source, sequence) merge order.
func (p *Partitioned) deliver(horizon time.Duration) {
	for len(p.pending) > 0 && p.pending[0].at <= horizon {
		m := heap.Pop(&p.pending).(crossMsg)
		p.parts[m.dst].At(m.at, m.fn)
	}
}

// runGlobalsDue fires global events with at ≤ now in (time, arming) order,
// re-arming periodic ones.
func (p *Partitioned) runGlobalsDue(now time.Duration) {
	for len(p.globals) > 0 && p.globals[0].at <= now {
		g := heap.Pop(&p.globals).(globalEvent)
		g.fn()
		if g.period > 0 {
			g.at += g.period
			g.seq = p.gseq
			p.gseq++
			heap.Push(&p.globals, g)
		}
	}
}

// RunContext advances every partition to until in lookahead-bounded
// windows, returning the total events executed across partitions. On
// context cancellation every partition goroutine is joined before the
// error returns; Now() then reports the last completed barrier, and the
// partition engines rest wherever the cancel caught them.
func (p *Partitioned) RunContext(ctx context.Context, until time.Duration) (int, error) {
	executed := 0
	p.collect(-1) // setup-time posts precede virtual time 0
	p.runGlobalsDue(p.now)
	for p.now < until {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		w := p.now + p.lookahead
		if w > until {
			w = until
		}
		// A global event inside the window shrinks it so the event fires
		// at an exact barrier, with every partition clock reading its
		// timestamp (the "min(next knowledge sync) − now" horizon).
		if len(p.globals) > 0 && p.globals[0].at < w {
			w = p.globals[0].at
		}
		p.deliver(w)
		n, err := p.runWindow(ctx, w)
		executed += n
		if err != nil {
			return executed, err
		}
		p.collect(w)
		p.now = w
		p.runGlobalsDue(p.now)
	}
	return executed, nil
}

// Run advances to until without cancellation.
func (p *Partitioned) Run(until time.Duration) int {
	n, _ := p.RunContext(context.Background(), until)
	return n
}

// runWindow runs every partition engine to horizon w, concurrently when
// there is more than one, and joins them all before returning — also on
// cancellation, so no partition goroutine outlives the call.
func (p *Partitioned) runWindow(ctx context.Context, w time.Duration) (int, error) {
	if len(p.parts) == 1 {
		return p.parts[0].RunContext(ctx, w)
	}
	var wg sync.WaitGroup
	for i := range p.parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := p.parts[i].RunContext(ctx, w)
			p.results[i] = partResult{n: n, err: err}
		}(i)
	}
	wg.Wait()
	total := 0
	var firstErr error
	for i := range p.results {
		total += p.results[i].n
		if firstErr == nil && p.results[i].err != nil {
			firstErr = p.results[i].err
		}
	}
	return total, firstErr
}
