package sim

import (
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
)

// fakeStation records everything it receives.
type fakeStation struct {
	addr     ieee80211.MAC
	pos      geo.Point
	received []*ieee80211.Frame
	onRecv   func(*ieee80211.Frame)
}

func (s *fakeStation) Addr() ieee80211.MAC { return s.addr }
func (s *fakeStation) Pos() geo.Point      { return s.pos }
func (s *fakeStation) Receive(f *ieee80211.Frame) {
	s.received = append(s.received, f)
	if s.onRecv != nil {
		s.onRecv(f)
	}
}

func mac(b byte) ieee80211.MAC { return ieee80211.MAC{0x02, 0, 0, 0, 0, b} }

func newTestMedium(t *testing.T, radius float64, stations ...*fakeStation) (*Engine, *Medium) {
	t.Helper()
	e := NewEngine()
	m := NewMedium(e, radius)
	for _, s := range stations {
		if err := m.Attach(s); err != nil {
			t.Fatalf("Attach(%v): %v", s.addr, err)
		}
	}
	return e, m
}

func probeReq(sa ieee80211.MAC) *ieee80211.Frame {
	return &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC,
		SA:      sa,
		BSSID:   ieee80211.BroadcastMAC,
	}
}

func probeResp(sa, da ieee80211.MAC, ssid string) *ieee80211.Frame {
	return &ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeResponse,
		DA:      da,
		SA:      sa,
		BSSID:   sa,
		SSID:    ssid,
	}
}

func TestMediumBroadcastDelivery(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	near := &fakeStation{addr: mac(2), pos: geo.Pt(10, 0)}
	far := &fakeStation{addr: mac(3), pos: geo.Pt(100, 0)}
	e, m := newTestMedium(t, 50, tx, near, far)

	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)

	if len(near.received) != 1 {
		t.Errorf("near received %d frames, want 1", len(near.received))
	}
	if len(far.received) != 0 {
		t.Errorf("far received %d frames, want 0", len(far.received))
	}
	if len(tx.received) != 0 {
		t.Errorf("transmitter received own frame")
	}
	if m.FramesSent != 1 || m.FramesDelivered != 1 {
		t.Errorf("sent/delivered = %d/%d, want 1/1", m.FramesSent, m.FramesDelivered)
	}
}

func TestMediumUnicastDelivery(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(10, 0)}
	other := &fakeStation{addr: mac(3), pos: geo.Pt(10, 10)}
	e, m := newTestMedium(t, 50, tx, dst, other)

	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	e.Run(time.Second)

	if len(dst.received) != 1 {
		t.Errorf("dst received %d, want 1", len(dst.received))
	}
	if len(other.received) != 0 {
		t.Errorf("bystander received unicast frame")
	}
}

func TestMediumUnicastOutOfRange(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(60, 0)}
	e, m := newTestMedium(t, 50, tx, dst)
	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	e.Run(time.Second)
	if len(dst.received) != 0 {
		t.Errorf("out-of-range dst received %d frames", len(dst.received))
	}
}

func TestMediumAirtimeDelay(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)

	f := probeResp(tx.addr, dst.addr, "Net")
	var deliveredAt time.Duration
	dst.onRecv = func(*ieee80211.Frame) { deliveredAt = e.Now() }
	done := m.Transmit(f)
	e.Run(time.Second)

	if deliveredAt != f.Airtime() {
		t.Errorf("delivered at %v, want airtime %v", deliveredAt, f.Airtime())
	}
	if done != f.Airtime() {
		t.Errorf("Transmit returned %v, want %v", done, f.Airtime())
	}
}

func TestMediumSerializesTransmitter(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)

	var times []time.Duration
	dst.onRecv = func(*ieee80211.Frame) { times = append(times, e.Now()) }
	const n = 40
	f := probeResp(tx.addr, dst.addr, "SomeNetworkSSID")
	for i := 0; i < n; i++ {
		m.Transmit(f)
	}
	e.Run(time.Minute)

	if len(times) != n {
		t.Fatalf("delivered %d, want %d", len(times), n)
	}
	// Back-to-back frames are spaced exactly one airtime apart.
	for i := 1; i < n; i++ {
		if gap := times[i] - times[i-1]; gap != f.Airtime() {
			t.Fatalf("gap %d = %v, want %v", i, gap, f.Airtime())
		}
	}
	// 40 responses at ~0.25 ms each occupy about the paper's 10 ms window.
	total := times[n-1] - times[0]
	if total < 8*time.Millisecond || total > 13*time.Millisecond {
		t.Errorf("40 responses spanned %v, want ≈10 ms", total)
	}
}

func TestMediumTwoTransmittersIndependent(t *testing.T) {
	a := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	b := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, a, b)

	fa := probeResp(a.addr, b.addr, "A")
	fb := probeResp(b.addr, a.addr, "B")
	m.Transmit(fa)
	m.Transmit(fb)
	e.Run(time.Second)
	// Different transmitters do not queue behind each other.
	if len(a.received) != 1 || len(b.received) != 1 {
		t.Errorf("received a=%d b=%d, want 1/1", len(a.received), len(b.received))
	}
	if m.TxBusyUntil(a.addr) != fa.Airtime() {
		t.Errorf("a busyUntil = %v, want %v", m.TxBusyUntil(a.addr), fa.Airtime())
	}
}

func TestMediumDetachDropsInFlight(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)

	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	m.Detach(dst.addr)
	e.Run(time.Second)
	if len(dst.received) != 0 {
		t.Errorf("detached station received %d frames", len(dst.received))
	}
}

func TestMediumDetachedTransmitterLosesFrame(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)

	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	m.Detach(tx.addr)
	e.Run(time.Second)
	if len(dst.received) != 0 {
		t.Errorf("frame from departed transmitter delivered")
	}
}

func TestMediumAttachDuplicate(t *testing.T) {
	s := &fakeStation{addr: mac(1)}
	_, m := newTestMedium(t, 50, s)
	if err := m.Attach(&fakeStation{addr: mac(1)}); err == nil {
		t.Error("duplicate Attach succeeded")
	}
}

func TestMediumDetachUnknownIsNoop(t *testing.T) {
	_, m := newTestMedium(t, 50)
	m.Detach(mac(9)) // must not panic
	if m.StationCount() != 0 {
		t.Errorf("StationCount = %d", m.StationCount())
	}
}

func TestMediumMovingReceiver(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(10, 0)}
	e, m := newTestMedium(t, 50, tx, dst)

	// The receiver walks out of range before the frame lands.
	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	dst.pos = geo.Pt(1000, 0)
	e.Run(time.Second)
	if len(dst.received) != 0 {
		t.Errorf("frame delivered to receiver that moved away")
	}
}

func TestMediumCompaction(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)
	stations := make([]*fakeStation, 200)
	for i := range stations {
		stations[i] = &fakeStation{addr: ieee80211.MAC{0x02, 0, 0, 0, byte(i / 256), byte(i)}}
		if err := m.Attach(stations[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 180; i++ {
		m.Detach(stations[i].addr)
	}
	if m.StationCount() != 20 {
		t.Fatalf("StationCount = %d, want 20", m.StationCount())
	}
	// Remaining stations still reachable after compaction.
	tx := stations[190]
	tx.pos = geo.Pt(0, 0)
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	for i := 180; i < 200; i++ {
		if i == 190 {
			continue
		}
		if len(stations[i].received) != 1 {
			t.Fatalf("station %d received %d frames after compaction", i, len(stations[i].received))
		}
	}
}

func TestMediumReceiveCallbackCanDetach(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	a := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	b := &fakeStation{addr: mac(3), pos: geo.Pt(2, 0)}
	e, m := newTestMedium(t, 50, tx, a, b)

	// a detaches b upon reception; b must then not receive the broadcast.
	a.onRecv = func(*ieee80211.Frame) { m.Detach(b.addr) }
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	if len(b.received) != 0 {
		t.Errorf("b received %d frames after being detached mid-delivery", len(b.received))
	}
}

func TestMediumBroadcastOrderIsAttachOrder(t *testing.T) {
	tx := &fakeStation{addr: mac(9), pos: geo.Pt(0, 0)}
	e, m := newTestMedium(t, 50, tx)
	var got []byte
	for i := byte(1); i <= 5; i++ {
		s := &fakeStation{addr: mac(i), pos: geo.Pt(1, 0)}
		s.onRecv = func(addr ieee80211.MAC) func(*ieee80211.Frame) {
			return func(*ieee80211.Frame) { got = append(got, addr[5]) }
		}(s.addr)
		if err := m.Attach(s); err != nil {
			t.Fatal(err)
		}
	}
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	for i := range got {
		if got[i] != byte(i+1) {
			t.Fatalf("delivery order %v, want attach order", got)
		}
	}
}

func TestPromiscuousHearsUnicast(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)
	mon := &fakeStation{addr: mac(9), pos: geo.Pt(2, 0)}
	if err := m.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	e.Run(time.Second)
	if len(mon.received) != 1 {
		t.Errorf("monitor heard %d unicast frames, want 1", len(mon.received))
	}
	if len(dst.received) != 1 {
		t.Errorf("destination heard %d frames, want 1", len(dst.received))
	}
}

func TestPromiscuousHearsBroadcastOnce(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	e, m := newTestMedium(t, 50, tx)
	mon := &fakeStation{addr: mac(9), pos: geo.Pt(2, 0)}
	if err := m.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	if len(mon.received) != 1 {
		t.Errorf("monitor heard broadcast %d times, want exactly 1", len(mon.received))
	}
}

func TestPromiscuousNotAddressable(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	e, m := newTestMedium(t, 50, tx)
	mon := &fakeStation{addr: mac(9), pos: geo.Pt(2, 0)}
	if err := m.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	m.Transmit(probeResp(tx.addr, mon.addr, "Net"))
	e.Run(time.Second)
	// It still hears the frame — but through monitor mode, exactly once,
	// not through addressing.
	if len(mon.received) != 1 {
		t.Errorf("monitor received %d frames, want 1", len(mon.received))
	}
	if !m.Attached(mon.addr) {
		t.Error("promiscuous station not reported attached")
	}
	m.Detach(mon.addr)
	if m.Attached(mon.addr) {
		t.Error("promiscuous station still attached after Detach")
	}
}

func TestPromiscuousDuplicateMACRejected(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	_, m := newTestMedium(t, 50, tx)
	if err := m.AttachPromiscuous(&fakeStation{addr: mac(1)}); err == nil {
		t.Error("promiscuous attach with duplicate MAC succeeded")
	}
	mon := &fakeStation{addr: mac(9)}
	if err := m.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(&fakeStation{addr: mac(9)}); err == nil {
		t.Error("normal attach over promiscuous MAC succeeded")
	}
}

func TestPromiscuousOutOfRangeHearsNothing(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	dst := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	e, m := newTestMedium(t, 50, tx, dst)
	mon := &fakeStation{addr: mac(9), pos: geo.Pt(500, 0)}
	if err := m.AttachPromiscuous(mon); err != nil {
		t.Fatal(err)
	}
	m.Transmit(probeResp(tx.addr, dst.addr, "Net"))
	e.Run(time.Second)
	if len(mon.received) != 0 {
		t.Errorf("distant monitor heard %d frames", len(mon.received))
	}
}

func TestFrameLossTotal(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50, WithFrameLoss(1.0, 1))
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	rx := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Transmit(probeResp(tx.addr, rx.addr, "Net"))
	}
	e.Run(time.Minute)
	if len(rx.received) != 0 {
		t.Errorf("received %d frames at 100%% loss", len(rx.received))
	}
}

func TestFrameLossBroadcastNotRetried(t *testing.T) {
	// Broadcast frames carry no ACK, so loss hits them at face value.
	e := NewEngine()
	m := NewMedium(e, 50, WithFrameLoss(0.5, 2))
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	rx := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		m.Transmit(probeReq(tx.addr))
	}
	e.Run(time.Hour)
	got := len(rx.received)
	if got < n*40/100 || got > n*60/100 {
		t.Errorf("received %d of %d broadcasts at 50%% loss, want ≈%d", got, n, n/2)
	}
}

func TestFrameLossUnicastRetriesRecover(t *testing.T) {
	// Unicast frames are ACKed and retried up to 7 times: at 50% loss,
	// effective delivery is 1-0.5^8 ≈ 99.6%.
	e := NewEngine()
	m := NewMedium(e, 50, WithFrameLoss(0.5, 2))
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	rx := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		m.Transmit(probeResp(tx.addr, rx.addr, "Net"))
	}
	e.Run(time.Hour)
	got := len(rx.received)
	if got < n*97/100 {
		t.Errorf("received %d of %d unicasts at 50%% loss with retries, want ≳97%%", got, n)
	}
	if m.FramesRetried == 0 {
		t.Error("no retransmissions counted")
	}
}

func TestFrameLossDeterministic(t *testing.T) {
	run := func() int {
		e := NewEngine()
		m := NewMedium(e, 50, WithFrameLoss(0.3, 7))
		tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
		rx := &fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}
		if err := m.Attach(tx); err != nil {
			t.Fatal(err)
		}
		if err := m.Attach(rx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			m.Transmit(probeResp(tx.addr, rx.addr, "Net"))
		}
		e.Run(time.Hour)
		return len(rx.received)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same loss seed delivered %d vs %d frames", a, b)
	}
}

func TestSoftEdgeFades(t *testing.T) {
	deliveredAt := func(dist float64) int {
		e := NewEngine()
		m := NewMedium(e, 100, WithSoftEdge(50))
		tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
		rx := &fakeStation{addr: mac(2), pos: geo.Pt(dist, 0)}
		if err := m.Attach(tx); err != nil {
			t.Fatal(err)
		}
		if err := m.Attach(rx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			m.Transmit(probeResp(tx.addr, rx.addr, "Net"))
		}
		e.Run(time.Hour)
		return len(rx.received)
	}
	inside := deliveredAt(30)
	edge := deliveredAt(75)
	outside := deliveredAt(120)
	if inside != 400 {
		t.Errorf("inside inner radius delivered %d/400", inside)
	}
	if edge <= outside || edge >= inside {
		t.Errorf("fade zone delivered %d, want between %d and %d", edge, outside, inside)
	}
	if outside != 0 {
		t.Errorf("outside outer radius delivered %d/400", outside)
	}
}

// tunedStation pins a fake station to a channel.
type tunedStation struct {
	fakeStation
	channel uint8
}

func (s *tunedStation) CurrentChannel() uint8 { return s.channel }

func TestChannelIsolation(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)
	tx := &tunedStation{fakeStation: fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}, channel: 6}
	same := &tunedStation{fakeStation: fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}, channel: 6}
	other := &tunedStation{fakeStation: fakeStation{addr: mac(3), pos: geo.Pt(2, 0)}, channel: 11}
	agnostic := &fakeStation{addr: mac(4), pos: geo.Pt(3, 0)}
	for _, s := range []Station{tx, same, other, agnostic} {
		if err := m.Attach(s); err != nil {
			t.Fatal(err)
		}
	}
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	if len(same.received) != 1 {
		t.Errorf("same-channel station received %d", len(same.received))
	}
	if len(other.received) != 0 {
		t.Errorf("other-channel station received %d", len(other.received))
	}
	if len(agnostic.received) != 1 {
		t.Errorf("agnostic station received %d", len(agnostic.received))
	}
}

func TestChannelUnicastWrongChannelRetriesThenDrops(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)
	tx := &tunedStation{fakeStation: fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}, channel: 6}
	rx := &tunedStation{fakeStation: fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}, channel: 1}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		t.Fatal(err)
	}
	m.Transmit(probeResp(tx.addr, rx.addr, "Net"))
	e.Run(time.Second)
	if len(rx.received) != 0 {
		t.Errorf("cross-channel unicast delivered %d", len(rx.received))
	}
	if m.FramesRetried == 0 {
		t.Error("no retries for un-ACKed cross-channel unicast")
	}
}

func TestChannelRetrySucceedsAfterReceiverHops(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)
	tx := &tunedStation{fakeStation: fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}, channel: 6}
	rx := &tunedStation{fakeStation: fakeStation{addr: mac(2), pos: geo.Pt(1, 0)}, channel: 1}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		t.Fatal(err)
	}
	f := probeResp(tx.addr, rx.addr, "Net")
	m.Transmit(f)
	// The receiver hops onto the transmitter's channel before the retry
	// budget runs out.
	e.Schedule(2*f.Airtime()+time.Microsecond, func() { rx.channel = 6 })
	e.Run(time.Second)
	if len(rx.received) != 1 {
		t.Errorf("retry after hop delivered %d, want 1", len(rx.received))
	}
}
