// Package sim provides the discrete-event simulation core: a virtual clock,
// an ordered event queue, and an RF medium that delivers 802.11 frames
// between stations with airtime-accurate timing.
//
// Nothing in this package (or anywhere in the library) reads the wall
// clock: the engine owns time, which makes every experiment deterministic
// and replayable from its seed.
package sim

import (
	"container/heap"
	"context"
	"time"

	"cityhunter/internal/obs"
)

// ctxPollMask controls how often RunContext polls the context: every
// (ctxPollMask+1) events. 256 events is well under a millisecond of wall
// time for every workload in this repository, so cancellation is prompt
// while the hot loop pays only a mask-and-branch per event.
const ctxPollMask = 0xff

// Engine is a single-threaded discrete-event scheduler. Events execute in
// (time, insertion-order) order; an event may schedule further events.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	halted bool

	// Observability handles; nil when uninstrumented (the methods on nil
	// handles are no-ops, so the hot path pays one branch).
	mEvents   *obs.Counter
	mQueueHWM *obs.Gauge
}

// Instrument attaches the engine to an observability runtime: it counts
// executed events (sim_events_executed) and tracks the queue-depth
// high-water mark (sim_queue_depth_hwm). A nil runtime or registry is a
// no-op.
func (e *Engine) Instrument(rt *obs.Runtime) {
	if rt == nil || rt.Metrics == nil {
		return
	}
	e.mEvents = rt.Metrics.Counter("sim_events_executed")
	e.mQueueHWM = rt.Metrics.Gauge("sim_queue_depth_hwm")
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay. A non-positive delay runs fn at the current
// time but never before the currently executing event returns.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current time.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
	if e.mQueueHWM != nil {
		e.mQueueHWM.SetMax(float64(len(e.queue)))
	}
}

// Run executes events until the queue is empty or the clock would pass
// until. It returns the number of events executed. After Run the clock
// rests at until (or at the last event time if the queue drained first and
// that was later — it cannot be, so the clock is min(last event, until)
// advanced to until when events remain).
func (e *Engine) Run(until time.Duration) int {
	n, _ := e.RunContext(context.Background(), until)
	return n
}

// RunContext executes events like Run but also honors ctx: the loop polls
// the context every few hundred events and stops early, returning ctx's
// error, once it is cancelled. On cancellation the clock rests at the last
// executed event (it is NOT advanced to until), so callers see exactly how
// much virtual time was simulated; pending events stay queued.
func (e *Engine) RunContext(ctx context.Context, until time.Duration) (int, error) {
	executed := 0
	e.halted = false
	err := ctx.Err()
	for err == nil && len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		executed++
		if executed&ctxPollMask == 0 {
			err = ctx.Err()
		}
	}
	e.mEvents.Add(int64(executed))
	if err == nil && e.now < until {
		e.now = until
	}
	return executed, err
}

// Step executes exactly one event if any is pending and reports whether it
// did.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*event)
	e.now = next.at
	next.fn()
	e.mEvents.Inc()
	return true
}

// Halt stops the current Run after the executing event completes. Pending
// events stay queued.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}
