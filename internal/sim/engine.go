// Package sim provides the discrete-event simulation core: a virtual clock,
// an ordered event queue, and an RF medium that delivers 802.11 frames
// between stations with airtime-accurate timing.
//
// Nothing in this package (or anywhere in the library) reads the wall
// clock: the engine owns time, which makes every experiment deterministic
// and replayable from its seed.
package sim

import (
	"context"
	"time"

	"cityhunter/internal/obs"
)

// ctxPollMask controls how often RunContext polls the context: every
// (ctxPollMask+1) events. 256 events is well under a millisecond of wall
// time for every workload in this repository, so cancellation is prompt
// while the hot loop pays only a mask-and-branch per event.
const ctxPollMask = 0xff

// Engine is a single-threaded discrete-event scheduler. Events execute in
// (time, insertion-order) order; an event may schedule further events.
//
// Events live in a value slice with a free list of recycled slots, and the
// priority queue is a hand-rolled min-heap of slot indices: scheduling in
// steady state allocates nothing beyond the caller's callback, and the
// compact index heap keeps sift operations in cache.
type Engine struct {
	now    time.Duration
	seq    uint64
	events []event // slot storage; recycled through free
	free   []int32 // free slot indices
	heap   []int32 // min-heap of slot indices ordered by (at, seq)
	halted bool

	// Observability handles; nil when uninstrumented (the methods on nil
	// handles are no-ops, so the hot path pays one branch).
	mEvents   *obs.Counter
	mQueueHWM *obs.Gauge
}

// event is one scheduled callback slot.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// Instrument attaches the engine to an observability runtime: it counts
// executed events (sim_events_executed) and tracks the queue-depth
// high-water mark (sim_queue_depth_hwm). A nil runtime or registry is a
// no-op.
func (e *Engine) Instrument(rt *obs.Runtime) {
	if rt == nil || rt.Metrics == nil {
		return
	}
	e.mEvents = rt.Metrics.Counter("sim_events_executed")
	e.mQueueHWM = rt.Metrics.Gauge("sim_queue_depth_hwm")
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay. A non-positive delay runs fn at the current
// time but never before the currently executing event returns.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current time.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		id = int32(len(e.events))
		e.events = append(e.events, event{})
	}
	e.events[id] = event{at: t, seq: e.seq, fn: fn}
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	if e.mQueueHWM != nil {
		e.mQueueHWM.SetMax(float64(len(e.heap)))
	}
}

// Every arms a periodic callback: fn first runs after delay, then every
// period thereafter, for as long as the engine keeps executing events. The
// re-arm is scheduled after fn returns, so the callback sees the same
// (time, sequence) ordering as a self-rescheduling closure — telemetry
// ticks added this way do not perturb seeded runs.
func (e *Engine) Every(delay, period time.Duration, fn func()) {
	if period <= 0 {
		return
	}
	var tick func()
	tick = func() {
		fn()
		e.Schedule(period, tick)
	}
	e.Schedule(delay, tick)
}

// less orders two event slots by (time, sequence number).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			m = r
		}
		if !e.less(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pop removes the earliest event, recycles its slot, and returns its time
// and callback. The caller must ensure the heap is non-empty.
func (e *Engine) pop() (time.Duration, func()) {
	id := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev := &e.events[id]
	at, fn := ev.at, ev.fn
	ev.fn = nil // release the closure while the slot sits on the free list
	e.free = append(e.free, id)
	return at, fn
}

// Run executes events in order until the queue is empty or the next event
// lies past until, then returns the number of events executed. Afterwards
// the clock rests at until (events cannot move the clock beyond until,
// because any later event stays queued for the next Run).
func (e *Engine) Run(until time.Duration) int {
	n, _ := e.RunContext(context.Background(), until)
	return n
}

// RunContext executes events like Run but also honors ctx: the loop polls
// the context every few hundred events and stops early, returning ctx's
// error, once it is cancelled. On cancellation the clock rests at the last
// executed event (it is NOT advanced to until), so callers see exactly how
// much virtual time was simulated; pending events stay queued.
func (e *Engine) RunContext(ctx context.Context, until time.Duration) (int, error) {
	executed := 0
	e.halted = false
	err := ctx.Err()
	for err == nil && len(e.heap) > 0 && !e.halted {
		if e.events[e.heap[0]].at > until {
			break
		}
		at, fn := e.pop()
		e.now = at
		fn()
		executed++
		if executed&ctxPollMask == 0 {
			err = ctx.Err()
		}
	}
	e.mEvents.Add(int64(executed))
	if err == nil && e.now < until {
		e.now = until
	}
	return executed, err
}

// Step executes exactly one event if any is pending and reports whether it
// did. Like RunContext, it clears a stale Halt first, so a Halt issued
// while the engine was idle does not swallow the next stepped event.
func (e *Engine) Step() bool {
	e.halted = false
	if len(e.heap) == 0 {
		return false
	}
	at, fn := e.pop()
	e.now = at
	fn()
	e.mEvents.Inc()
	return true
}

// Halt stops the current Run after the executing event completes. Pending
// events stay queued.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }
