package sim

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// partWorkload is a synthetic multi-site workload whose observable trace
// is exquisitely order-sensitive: each site carries a rolling hash mixed
// on every event, and sites mail each other hash fragments with a
// lookahead-respecting delay. Any reordering of local events or of the
// cross-partition merge changes every subsequent hash.
type partWorkload struct {
	coord  *Partitioned
	sites  []*partSite
	partOf []int
}

type partSite struct {
	hash  uint64
	trace []string
}

const workloadLookahead = 50 * time.Millisecond

func newPartWorkload(nsites, nparts int) *partWorkload {
	coord, err := NewPartitioned(nparts, workloadLookahead)
	if err != nil {
		panic(err)
	}
	w := &partWorkload{coord: coord, sites: make([]*partSite, nsites), partOf: make([]int, nsites)}
	for i := range w.sites {
		w.sites[i] = &partSite{hash: uint64(i) + 1}
		w.partOf[i] = i % nparts
	}
	for i := range w.sites {
		w.tick(i, time.Duration(i+1)*time.Millisecond, 0)
	}
	return w
}

func (w *partWorkload) mix(s *partSite, at time.Duration, v uint64) {
	s.hash = s.hash*1099511628211 + uint64(at) + v
	s.trace = append(s.trace, fmt.Sprintf("%v %x", at, s.hash))
}

// tick advances site i: mixes the clock into the hash, occasionally mails
// the current hash to the next site (stamped one lookahead plus a margin
// ahead), and re-arms itself.
func (w *partWorkload) tick(i int, at time.Duration, step int) {
	w.coord.Part(w.partOf[i]).At(at, func() {
		s := w.sites[i]
		w.mix(s, at, uint64(step))
		if step%3 == 2 {
			dst := (i + 1) % len(w.sites)
			v := s.hash
			arrive := at + workloadLookahead + 5*time.Millisecond
			w.coord.Post(w.partOf[i], i, arrive, w.partOf[dst], func() {
				w.mix(w.sites[dst], arrive, v)
			})
		}
		if step < 40 {
			w.tick(i, at+7*time.Millisecond, step+1)
		}
	})
}

func (w *partWorkload) traces() [][]string {
	out := make([][]string, len(w.sites))
	for i, s := range w.sites {
		out[i] = s.trace
	}
	return out
}

// TestPartitionedDeterminism runs the same workload at every combination
// of partition count and GOMAXPROCS and demands identical traces: the
// coordinator's merge order must not depend on how sites are grouped onto
// partitions or on how many OS threads run them.
func TestPartitionedDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want [][]string
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for _, nparts := range []int{1, 2, 3, 4} {
			w := newPartWorkload(4, nparts)
			w.coord.Run(time.Second)
			if v := w.coord.LookaheadViolations(); v != 0 {
				t.Fatalf("GOMAXPROCS=%d parts=%d: %d lookahead violations", procs, nparts, v)
			}
			got := w.traces()
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("GOMAXPROCS=%d parts=%d: trace diverged from parts=1 reference", procs, nparts)
			}
		}
	}
	if len(want) == 0 || len(want[0]) < 40 {
		t.Fatalf("degenerate workload: %d sites, %d events at site 0", len(want), len(want[0]))
	}
}

// TestPartitionedWindowEdge pins the arrival-exactly-on-the-horizon rule:
// a message stamped exactly at a window's horizon is delivered in that
// window and executes at its exact timestamp, ordered after events the
// destination scheduled in earlier windows for the same instant and
// before events it schedules during the window.
func TestPartitionedWindowEdge(t *testing.T) {
	coord, err := NewPartitioned(2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	edge := 100 * time.Millisecond // exactly one lookahead: the first window's horizon
	// Scheduled at setup (an "earlier window") for the edge instant.
	coord.Part(1).At(edge, func() { order = append(order, "prior-local") })
	// Posted at setup from partition 0, stamped exactly on the horizon.
	coord.Post(0, 0, edge, 1, func() {
		order = append(order, "message")
		// Scheduled during the window for the same instant: runs after.
		coord.Part(1).At(edge, func() { order = append(order, "during-local") })
	})
	coord.Run(200 * time.Millisecond)
	want := []string{"prior-local", "message", "during-local"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if v := coord.LookaheadViolations(); v != 0 {
		t.Fatalf("edge arrival counted as a violation (%d)", v)
	}
}

// TestPartitionedGlobalBarrier checks that a periodic global event fires
// with every partition clock exactly at its timestamp.
func TestPartitionedGlobalBarrier(t *testing.T) {
	coord, err := NewPartitioned(3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var fired []time.Duration
	coord.GlobalEvery(300*time.Millisecond, 300*time.Millisecond, func() {
		for i := 0; i < coord.Parts(); i++ {
			if got := coord.Part(i).Now(); got != coord.Now() {
				t.Fatalf("partition %d clock %v at global barrier %v", i, got, coord.Now())
			}
		}
		fired = append(fired, coord.Now())
	})
	coord.Run(time.Second)
	want := []time.Duration{300 * time.Millisecond, 600 * time.Millisecond, 900 * time.Millisecond}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("global fired at %v, want %v", fired, want)
	}
}

// TestPartitionedCancellation cancels mid-run and checks the contract:
// RunContext returns the context error only after every partition
// goroutine is joined, and Now() rests at the last completed barrier.
func TestPartitionedCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	coord, err := NewPartitioned(4, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make([]int, 4) // per-partition: ticks run concurrently
	for i := 0; i < 4; i++ {
		part := i
		var tick func(at time.Duration)
		tick = func(at time.Duration) {
			coord.Part(part).At(at, func() {
				events[part]++
				if part == 0 && at >= 100*time.Millisecond {
					cancel()
				}
				tick(at + time.Millisecond)
			})
		}
		tick(0)
	}
	_, err = coord.RunContext(ctx, time.Hour)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancel fires inside the window ending at 100ms, so the last
	// completed barrier is at least the 90ms one — and nowhere near until.
	if now := coord.Now(); now < 90*time.Millisecond || now >= time.Second {
		t.Fatalf("Now() = %v after cancel at ~100ms", now)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines %d -> %d: partition workers leaked", before, n)
	}
}

// TestPartitionedLookaheadViolation checks that an under-stamped message
// is delivered (late, at the next barrier) and counted.
func TestPartitionedLookaheadViolation(t *testing.T) {
	coord, err := NewPartitioned(2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var ranAt time.Duration
	coord.Part(0).At(10*time.Millisecond, func() {
		// Stamped inside the current window: a contract violation.
		coord.Post(0, 0, 20*time.Millisecond, 1, func() {
			ranAt = coord.Part(1).Now()
		})
	})
	coord.Run(time.Second)
	if coord.LookaheadViolations() != 1 {
		t.Fatalf("violations = %d, want 1", coord.LookaheadViolations())
	}
	if ranAt != 100*time.Millisecond {
		t.Fatalf("late message ran at %v, want clamped to the 100ms barrier", ranAt)
	}
}
