package sim

import (
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
)

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run(e.Now() + time.Millisecond)
		}
	}
	e.Run(e.Now() + time.Second)
}

func BenchmarkMediumBroadcast100Stations(b *testing.B) {
	e := NewEngine()
	m := NewMedium(e, 100)
	tx := &fakeStation{addr: mac(0), pos: geo.Pt(0, 0)}
	if err := m.Attach(tx); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		s := &fakeStation{
			addr: ieee80211.MAC{0x02, 0, 0, 0, byte(i >> 8), byte(i)},
			pos:  geo.Pt(float64(i%10), float64(i/10)),
		}
		s.onRecv = func(*ieee80211.Frame) {}
		if err := m.Attach(s); err != nil {
			b.Fatal(err)
		}
	}
	f := probeReq(tx.addr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(f)
		e.Run(e.Now() + time.Millisecond)
	}
}

func BenchmarkMediumUnicast(b *testing.B) {
	e := NewEngine()
	m := NewMedium(e, 100)
	tx := &fakeStation{addr: mac(0), pos: geo.Pt(0, 0)}
	rx := &fakeStation{addr: mac(1), pos: geo.Pt(5, 0)}
	if err := m.Attach(tx); err != nil {
		b.Fatal(err)
	}
	if err := m.Attach(rx); err != nil {
		b.Fatal(err)
	}
	f := probeResp(tx.addr, rx.addr, "Bench Net")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(f)
		if i%256 == 255 {
			e.Run(e.Now() + time.Second)
			rx.received = rx.received[:0]
		}
	}
	e.Run(e.Now() + time.Hour)
}
