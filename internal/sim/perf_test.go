package sim

import (
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
)

// TestEngineStepClearsHalt pins Step's contract with Halt: a Halt issued
// while the engine is idle must not swallow the next stepped event, exactly
// as RunContext clears a stale halt on entry.
func TestEngineStepClearsHalt(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Millisecond, func() { ran++ })
	e.Schedule(2*time.Millisecond, func() { ran++ })

	e.Halt() // stale halt from an idle engine
	if !e.Step() {
		t.Fatal("Step after stale Halt executed nothing")
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}

	// A Halt issued by the event itself must not stop Step either (Step
	// executes exactly one event; there is nothing left to halt), but a
	// following Run must start fresh rather than see the halted flag.
	e.Halt()
	if !e.Step() {
		t.Fatal("second Step executed nothing")
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}

	e.Schedule(time.Millisecond, func() { ran++ })
	e.Halt()
	if n := e.Run(time.Second); n != 1 {
		t.Fatalf("Run after stale Halt executed %d events, want 1", n)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

// TestMediumDetachCompactsMidBroadcast is the regression test for the
// compaction generation counter: a Receive callback that detaches enough
// stations to trigger maybeCompact mid-fan-out must neither skip nor
// double-deliver to the stations that remain attached.
func TestMediumDetachCompactsMidBroadcast(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)

	tx := &fakeStation{addr: ieee80211.MAC{0x02, 0xff, 0, 0, 0, 0}, pos: geo.Pt(0, 0)}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	stations := make([]*fakeStation, 100)
	for i := range stations {
		stations[i] = &fakeStation{
			addr: ieee80211.MAC{0x02, 0, 0, 0, byte(i / 256), byte(i)},
			pos:  geo.Pt(float64(i)*0.1, 0), // all well within range
		}
		if err := m.Attach(stations[i]); err != nil {
			t.Fatal(err)
		}
	}

	// The first receiver detaches stations 1..80, shrinking the live set
	// from 101 to 21 on a 101-slot table — past the compaction threshold,
	// so the station table is rebuilt while the broadcast is mid-flight.
	stations[0].onRecv = func(*ieee80211.Frame) {
		for i := 1; i <= 80; i++ {
			m.Detach(stations[i].addr)
		}
	}

	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)

	if got := m.StationCount(); got != 21 {
		t.Fatalf("StationCount = %d, want 21", got)
	}
	if len(stations[0].received) != 1 {
		t.Errorf("trigger station received %d frames, want 1", len(stations[0].received))
	}
	for i := 1; i <= 80; i++ {
		if len(stations[i].received) != 0 {
			t.Errorf("detached station %d received %d frames, want 0", i, len(stations[i].received))
		}
	}
	for i := 81; i < 100; i++ {
		if len(stations[i].received) != 1 {
			t.Errorf("surviving station %d received %d frames, want exactly 1", i, len(stations[i].received))
		}
	}
}

// TestMediumMovedRebucketsStation pins the Moved contract: a station that
// walks into range and reports the move is found by the next broadcast, and
// reporting moves for unknown addresses is a no-op.
func TestMediumMovedRebucketsStation(t *testing.T) {
	tx := &fakeStation{addr: mac(1), pos: geo.Pt(0, 0)}
	rx := &fakeStation{addr: mac(2), pos: geo.Pt(500, 500)} // far cell
	e, m := newTestMedium(t, 50, tx, rx)

	m.Moved(mac(99)) // unknown: must not panic

	rx.pos = geo.Pt(10, 0)
	m.Moved(rx.addr)
	m.Transmit(probeReq(tx.addr))
	e.Run(time.Second)
	if len(rx.received) != 1 {
		t.Fatalf("moved-in station received %d frames, want 1", len(rx.received))
	}

	rx.pos = geo.Pt(500, 500)
	m.Moved(rx.addr)
	m.Transmit(probeReq(tx.addr))
	e.Run(2 * time.Second)
	if len(rx.received) != 1 {
		t.Fatalf("moved-out station received %d frames in total, want still 1", len(rx.received))
	}
}

// quietStation neither records nor reacts — a receiver for allocation
// measurements.
type quietStation struct {
	addr ieee80211.MAC
	pos  geo.Point
	got  int
}

func (s *quietStation) Addr() ieee80211.MAC      { return s.addr }
func (s *quietStation) Pos() geo.Point           { return s.pos }
func (s *quietStation) Receive(*ieee80211.Frame) { s.got++ }

// TestEngineScheduleSteadyStateAllocs pins the event queue's allocation
// behaviour: once slot storage is warm, scheduling and executing events
// allocates nothing (the value heap recycles slots through the free list).
func TestEngineScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 128; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(200, func() {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	})
	if avg != 0 {
		t.Errorf("Engine.Schedule+Step steady state allocates %.2f/op, want 0", avg)
	}
}

// TestMediumBroadcastSteadyStateAllocs pins the delivery path: with pooled
// delivery events and the reusable candidate buffer, a broadcast over a
// static population allocates nothing once warm.
func TestMediumBroadcastSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	m := NewMedium(e, 50)
	tx := &quietStation{addr: mac(1), pos: geo.Pt(0, 0)}
	if err := m.Attach(tx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s := &quietStation{
			addr: ieee80211.MAC{0x02, 1, 0, 0, 0, byte(i)},
			pos:  geo.Pt(float64(i), 0),
		}
		if err := m.Attach(s); err != nil {
			t.Fatal(err)
		}
	}
	f := probeReq(tx.addr)
	m.Transmit(f)
	e.Run(time.Second) // warm the pools and the candidate buffer

	avg := testing.AllocsPerRun(100, func() {
		m.Transmit(f)
		for e.Step() {
		}
	})
	if avg != 0 {
		t.Errorf("broadcast delivery steady state allocates %.2f/op, want 0", avg)
	}
}
