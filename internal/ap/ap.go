// Package ap provides a minimal legitimate access point for the §V-B
// deauthentication scenario: it beacons periodically (so the attacker can
// learn its BSSID) and serves as the association anchor for phones that
// arrive already connected to public Wi-Fi.
//
// Simplification, documented per DESIGN.md: the AP does not answer probe
// requests or run handshakes — its SSID is chosen outside the phones'
// PNL universe, so it never competes with the attacker for new clients.
// What the experiment needs from it is exactly what it provides: a real
// BSSID on the air that the attacker can spoof deauthentications from.
package ap

import (
	"fmt"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

// Config describes a legitimate AP.
type Config struct {
	// MAC is the AP's BSSID.
	MAC ieee80211.MAC
	// SSID is the advertised network name.
	SSID string
	// Pos is the AP position.
	Pos geo.Point
	// Channel for the DS parameter element.
	Channel uint8
	// BeaconInterval defaults to the standard ~102.4 ms.
	BeaconInterval time.Duration
}

// AP is a beaconing legitimate access point.
type AP struct {
	cfg     Config
	engine  *sim.Engine
	medium  *sim.Medium
	seq     uint16
	stopped bool

	// BeaconsSent counts transmitted beacons.
	BeaconsSent int
}

// New builds an AP; Start attaches it and begins beaconing.
func New(engine *sim.Engine, medium *sim.Medium, cfg Config) (*AP, error) {
	if cfg.MAC == (ieee80211.MAC{}) {
		return nil, fmt.Errorf("ap: zero MAC")
	}
	if cfg.BeaconInterval <= 0 {
		cfg.BeaconInterval = 102400 * time.Microsecond
	}
	return &AP{cfg: cfg, engine: engine, medium: medium}, nil
}

// Addr implements sim.Station.
func (a *AP) Addr() ieee80211.MAC { return a.cfg.MAC }

// Pos implements sim.Station.
func (a *AP) Pos() geo.Point { return a.cfg.Pos }

// CurrentChannel implements sim.ChannelTuner.
func (a *AP) CurrentChannel() uint8 { return a.cfg.Channel }

// Receive implements sim.Station. The AP ignores traffic (see the package
// comment for why).
func (a *AP) Receive(*ieee80211.Frame) {}

// Start attaches the AP and begins the beacon loop.
func (a *AP) Start() error {
	if err := a.medium.Attach(a); err != nil {
		return fmt.Errorf("ap: %w", err)
	}
	a.scheduleBeacon()
	return nil
}

// Stop ends the beacon loop.
func (a *AP) Stop() { a.stopped = true }

func (a *AP) scheduleBeacon() {
	a.engine.Schedule(a.cfg.BeaconInterval, func() {
		if a.stopped {
			return
		}
		a.seq = (a.seq + 1) & 0x0fff
		a.medium.Transmit(&ieee80211.Frame{
			Subtype:          ieee80211.SubtypeBeacon,
			DA:               ieee80211.BroadcastMAC,
			SA:               a.cfg.MAC,
			BSSID:            a.cfg.MAC,
			Seq:              a.seq,
			SSID:             a.cfg.SSID,
			Capability:       ieee80211.CapESS,
			Channel:          a.cfg.Channel,
			BeaconIntervalTU: 100,
		})
		a.BeaconsSent++
		a.scheduleBeacon()
	})
}
