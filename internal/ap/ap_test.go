package ap

import (
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

type sniffer struct {
	addr    ieee80211.MAC
	pos     geo.Point
	beacons int
	other   int
}

func (s *sniffer) Addr() ieee80211.MAC { return s.addr }
func (s *sniffer) Pos() geo.Point      { return s.pos }
func (s *sniffer) Receive(f *ieee80211.Frame) {
	if f.Subtype == ieee80211.SubtypeBeacon {
		s.beacons++
	} else {
		s.other++
	}
}

func fixture(t *testing.T) (*sim.Engine, *sim.Medium, *sniffer) {
	t.Helper()
	engine := sim.NewEngine()
	medium := sim.NewMedium(engine, 100)
	sn := &sniffer{addr: ieee80211.MAC{0x02, 0, 0, 0, 0, 9}, pos: geo.Pt(5, 0)}
	if err := medium.Attach(sn); err != nil {
		t.Fatal(err)
	}
	return engine, medium, sn
}

func TestNewValidation(t *testing.T) {
	engine, medium, _ := fixture(t)
	if _, err := New(engine, medium, Config{}); err == nil {
		t.Error("zero MAC accepted")
	}
}

func TestBeaconing(t *testing.T) {
	engine, medium, sn := fixture(t)
	a, err := New(engine, medium, Config{
		MAC:  ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		SSID: "Venue WiFi",
		Pos:  geo.Pt(0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	engine.Run(time.Second)
	// Standard interval ≈102.4 ms ⇒ ~9-10 beacons per second.
	if sn.beacons < 8 || sn.beacons > 11 {
		t.Errorf("beacons = %d, want ≈9-10/s", sn.beacons)
	}
	if sn.other != 0 {
		t.Errorf("AP sent %d non-beacon frames", sn.other)
	}
	if a.BeaconsSent != sn.beacons {
		t.Errorf("BeaconsSent = %d, sniffer heard %d", a.BeaconsSent, sn.beacons)
	}
}

func TestCustomInterval(t *testing.T) {
	engine, medium, sn := fixture(t)
	a, err := New(engine, medium, Config{
		MAC:            ieee80211.MAC{0x0a, 1, 1, 1, 1, 1},
		SSID:           "X",
		BeaconInterval: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	// Beacons go out at 250/500/750/1000 ms; run a hair past the last
	// one so its airtime completes and it is delivered.
	engine.Run(1100 * time.Millisecond)
	if sn.beacons != 4 {
		t.Errorf("beacons = %d, want 4 at 250ms", sn.beacons)
	}
}

func TestStopEndsBeaconing(t *testing.T) {
	engine, medium, sn := fixture(t)
	a, err := New(engine, medium, Config{
		MAC: ieee80211.MAC{0x0a, 1, 1, 1, 1, 1}, SSID: "X",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	engine.Run(500 * time.Millisecond)
	a.Stop()
	got := sn.beacons
	engine.Run(engine.Now() + time.Second)
	if sn.beacons != got {
		t.Errorf("beacons kept flowing after Stop: %d -> %d", got, sn.beacons)
	}
}

func TestAPIgnoresTraffic(t *testing.T) {
	engine, medium, _ := fixture(t)
	a, err := New(engine, medium, Config{
		MAC: ieee80211.MAC{0x0a, 1, 1, 1, 1, 1}, SSID: "X",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	// A probe request to the AP draws no response.
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC,
		SA:      ieee80211.MAC{0x02, 0, 0, 0, 0, 9},
	})
	sent := medium.FramesSent
	engine.Run(50 * time.Millisecond)
	// Only beacons may have been added after the probe.
	extra := medium.FramesSent - sent
	if extra > 1 { // at most the next beacon
		t.Errorf("unexpected AP transmissions: %d", extra)
	}
}
