package arc

import (
	"fmt"
	"math/rand"
	"testing"
)

func mustCache(t *testing.T, capacity int) *Cache {
	t.Helper()
	c, err := New(capacity)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustCache(t, 4)
	if c.Access("a") {
		t.Error("first access was a hit")
	}
	if !c.Access("a") {
		t.Error("second access missed")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestContainsDoesNotMutate(t *testing.T) {
	c := mustCache(t, 2)
	c.Access("a")
	if !c.Contains("a") {
		t.Error("Contains(a) = false")
	}
	if c.Contains("zz") {
		t.Error("Contains(zz) = true")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 1 {
		t.Error("Contains mutated stats")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := mustCache(t, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Access(fmt.Sprintf("k%d", rng.Intn(50)))
		if c.Len() > c.Capacity() {
			t.Fatalf("resident %d > capacity %d at step %d", c.Len(), c.Capacity(), i)
		}
		t1, t2, b1, b2 := c.sizes()
		if t1+b1 > c.Capacity() {
			t.Fatalf("|T1|+|B1| = %d > c", t1+b1)
		}
		if t1+t2+b1+b2 > 2*c.Capacity() {
			t.Fatalf("total directory %d > 2c", t1+t2+b1+b2)
		}
		if p := c.Target(); p < 0 || p > c.Capacity() {
			t.Fatalf("p = %d outside [0, c]", p)
		}
	}
}

func TestEvictionToGhostAndPromotion(t *testing.T) {
	c := mustCache(t, 4)
	c.Access("a")
	c.Access("a") // a → T2
	c.Access("b")
	c.Access("c")
	c.Access("d") // cache now full: T1={d,c,b}, T2={a}
	c.Access("e") // replace() demotes the T1 LRU (b) into B1
	if c.Contains("b") {
		t.Error("b still resident after demotion")
	}
	// Re-access the ghost: a miss, but it re-admits into T2 and adapts.
	if c.Access("b") {
		t.Error("ghost access counted as hit")
	}
	if !c.Contains("b") {
		t.Error("ghost re-access did not re-admit key")
	}
	if c.Target() == 0 {
		t.Error("B1 ghost hit did not grow target p")
	}
}

func TestFrequencyProtection(t *testing.T) {
	// Keys accessed twice live in T2 and survive a scan of one-shot keys.
	c := mustCache(t, 4)
	c.Access("hot1")
	c.Access("hot1")
	c.Access("hot2")
	c.Access("hot2")
	for i := 0; i < 100; i++ {
		c.Access(fmt.Sprintf("scan%d", i))
	}
	if !c.Contains("hot1") || !c.Contains("hot2") {
		t.Error("scan evicted frequent keys; ARC should protect T2")
	}
}

func TestLRUWithinT1(t *testing.T) {
	c := mustCache(t, 3)
	c.Access("a")
	c.Access("b")
	c.Access("c")
	c.Access("d") // a is LRU, must go
	if c.Contains("a") {
		t.Error("LRU not evicted")
	}
	for _, k := range []string{"b", "c", "d"} {
		if !c.Contains(k) {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
}

func TestResidentKeys(t *testing.T) {
	c := mustCache(t, 4)
	c.Access("a")
	c.Access("b")
	c.Access("a") // a → T2
	keys := c.ResidentKeys()
	if len(keys) != 2 {
		t.Fatalf("ResidentKeys = %v", keys)
	}
	if keys[0] != "a" || keys[1] != "b" {
		t.Errorf("order = %v, want [a b] (T2 first)", keys)
	}
}

func TestAdaptationMovesBothWays(t *testing.T) {
	c := mustCache(t, 8)
	rng := rand.New(rand.NewSource(2))
	grew, shrank := false, false
	prev := c.Target()
	for i := 0; i < 20000; i++ {
		var k string
		if rng.Intn(3) == 0 {
			k = fmt.Sprintf("hot%d", rng.Intn(10))
		} else {
			k = fmt.Sprintf("cold%d", rng.Intn(300))
		}
		c.Access(k)
		if c.Target() > prev {
			grew = true
		}
		if c.Target() < prev {
			shrank = true
		}
		prev = c.Target()
	}
	if !grew {
		t.Error("target p never grew (no B1 adaptation observed)")
	}
	if !shrank {
		t.Error("target p never shrank (no B2 adaptation observed)")
	}
}

func TestScanResistanceBeatsNaive(t *testing.T) {
	// A classic ARC win: loop over a hot set with an interleaved scan.
	c := mustCache(t, 10)
	hot := make([]string, 5)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
	}
	// Warm the hot set into T2.
	for round := 0; round < 2; round++ {
		for _, k := range hot {
			c.Access(k)
		}
	}
	h0, _ := c.Stats()
	scans := 0
	for i := 0; i < 500; i++ {
		c.Access(fmt.Sprintf("scan%d", i))
		scans++
		if i%5 == 0 {
			for _, k := range hot {
				c.Access(k)
			}
		}
	}
	h1, _ := c.Stats()
	hotAccesses := (500/5 + 1) * len(hot)
	hitRate := float64(h1-h0) / float64(hotAccesses+scans)
	if hitRate < 0.3 {
		t.Errorf("hit rate %.2f under scan; ARC should keep the hot set", hitRate)
	}
	for _, k := range hot {
		if !c.Contains(k) {
			t.Errorf("hot key %s lost to scan", k)
		}
	}
}

func TestGhostDirectoryBounded(t *testing.T) {
	c := mustCache(t, 5)
	for i := 0; i < 1000; i++ {
		c.Access(fmt.Sprintf("k%d", i))
	}
	t1, t2, b1, b2 := c.sizes()
	if t1+t2+b1+b2 > 2*c.Capacity() {
		t.Errorf("directory size %d exceeds 2c", t1+t2+b1+b2)
	}
}

func TestSingleKeyWorkload(t *testing.T) {
	c := mustCache(t, 1)
	c.Access("only")
	for i := 0; i < 10; i++ {
		if !c.Access("only") {
			t.Fatal("resident single key missed")
		}
	}
	c.Access("other")
	if c.Contains("only") && c.Contains("other") {
		t.Error("two residents in capacity-1 cache")
	}
}
