// Package arc implements the Adaptive Replacement Cache of Megiddo & Modha
// (FAST '03) — the algorithm whose recency/frequency balancing inspired
// City-Hunter's adaptive Popularity/Freshness buffers (paper §IV-C).
//
// It is included both as a faithful substrate (the paper cites it as the
// design source) and for the ablation benchmark that contrasts the paper's
// ±1 adjustment rule with ARC's proportional adaptation.
package arc

import (
	"container/list"
	"fmt"
)

// Cache is a fixed-capacity ARC cache over string keys.
//
// Internally it keeps the four classic lists:
//
//	T1 — resident pages seen exactly once recently (recency)
//	T2 — resident pages seen at least twice (frequency)
//	B1 — ghost entries recently evicted from T1
//	B2 — ghost entries recently evicted from T2
//
// and the adaptation target p: the desired size of T1. Hits in B1 grow p
// (favouring recency), hits in B2 shrink it (favouring frequency).
type Cache struct {
	capacity int
	p        int

	t1, t2, b1, b2 *list.List
	// where maps a key to its list and element.
	where map[string]*locator

	hits, misses int
}

type listID int

const (
	inT1 listID = iota + 1
	inT2
	inB1
	inB2
)

type locator struct {
	id   listID
	elem *list.Element
}

// New returns an ARC cache holding at most capacity keys.
func New(capacity int) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("arc: capacity %d must be positive", capacity)
	}
	return &Cache{
		capacity: capacity,
		t1:       list.New(),
		t2:       list.New(),
		b1:       list.New(),
		b2:       list.New(),
		where:    make(map[string]*locator, 2*capacity),
	}, nil
}

// Len returns the number of resident keys (|T1| + |T2|).
func (c *Cache) Len() int { return c.t1.Len() + c.t2.Len() }

// Capacity returns the configured capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Target returns the current adaptation target p (desired |T1|).
func (c *Cache) Target() int { return c.p }

// Stats returns the hit and miss counts since construction.
func (c *Cache) Stats() (hits, misses int) { return c.hits, c.misses }

// Contains reports whether key is resident, without touching any state.
func (c *Cache) Contains(key string) bool {
	loc, ok := c.where[key]
	return ok && (loc.id == inT1 || loc.id == inT2)
}

// Access requests key and returns true on a cache hit. On a miss the key is
// admitted, possibly evicting another resident key into a ghost list.
func (c *Cache) Access(key string) bool {
	loc, ok := c.where[key]
	if ok {
		switch loc.id {
		case inT1, inT2:
			// Case I: hit — promote to MRU of T2.
			c.hits++
			c.moveTo(key, loc, inT2)
			return true
		case inB1:
			// Case II: ghost hit in B1 — recency is winning; grow p.
			c.misses++
			delta := 1
			if c.b1.Len() > 0 && c.b2.Len() > c.b1.Len() {
				delta = c.b2.Len() / c.b1.Len()
			}
			c.p = min(c.p+delta, c.capacity)
			c.replace(loc.id)
			c.moveTo(key, loc, inT2)
			return false
		case inB2:
			// Case III: ghost hit in B2 — frequency is winning; shrink p.
			c.misses++
			delta := 1
			if c.b2.Len() > 0 && c.b1.Len() > c.b2.Len() {
				delta = c.b1.Len() / c.b2.Len()
			}
			c.p = max(c.p-delta, 0)
			c.replace(loc.id)
			c.moveTo(key, loc, inT2)
			return false
		}
	}
	// Case IV: brand-new key.
	c.misses++
	l1 := c.t1.Len() + c.b1.Len()
	switch {
	case l1 == c.capacity:
		if c.t1.Len() < c.capacity {
			c.dropLRU(c.b1)
			c.replace(0)
		} else {
			c.dropLRU(c.t1)
		}
	case l1 < c.capacity:
		total := c.t1.Len() + c.t2.Len() + c.b1.Len() + c.b2.Len()
		if total >= c.capacity {
			if total == 2*c.capacity {
				c.dropLRU(c.b2)
			}
			c.replace(0)
		}
	}
	c.insert(key, inT1)
	return false
}

// replace evicts the LRU of T1 or T2 into its ghost list, following the
// adaptation target. whichGhost is the ghost list of the key being served
// (inB2 biases the choice per the original algorithm), or 0.
func (c *Cache) replace(whichGhost listID) {
	if c.t1.Len() > 0 &&
		(c.t1.Len() > c.p || (whichGhost == inB2 && c.t1.Len() == c.p)) {
		c.demote(c.t1, inB1)
	} else if c.t2.Len() > 0 {
		c.demote(c.t2, inB2)
	} else if c.t1.Len() > 0 {
		c.demote(c.t1, inB1)
	}
}

// demote moves the LRU of src into the MRU position of the ghost list.
func (c *Cache) demote(src *list.List, ghost listID) {
	back := src.Back()
	key := back.Value.(string)
	src.Remove(back)
	c.insert(key, ghost)
}

// dropLRU removes the LRU element of l entirely.
func (c *Cache) dropLRU(l *list.List) {
	back := l.Back()
	if back == nil {
		return
	}
	delete(c.where, back.Value.(string))
	l.Remove(back)
}

func (c *Cache) listFor(id listID) *list.List {
	switch id {
	case inT1:
		return c.t1
	case inT2:
		return c.t2
	case inB1:
		return c.b1
	default:
		return c.b2
	}
}

func (c *Cache) insert(key string, id listID) {
	elem := c.listFor(id).PushFront(key)
	c.where[key] = &locator{id: id, elem: elem}
}

func (c *Cache) moveTo(key string, loc *locator, id listID) {
	c.listFor(loc.id).Remove(loc.elem)
	loc.elem = c.listFor(id).PushFront(key)
	loc.id = id
}

// ResidentKeys returns the resident keys, T2 MRU-first then T1 MRU-first.
func (c *Cache) ResidentKeys() []string {
	out := make([]string, 0, c.Len())
	for e := c.t2.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(string))
	}
	for e := c.t1.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(string))
	}
	return out
}

// sizes returns the four list lengths, for invariant checks in tests.
func (c *Cache) sizes() (t1, t2, b1, b2 int) {
	return c.t1.Len(), c.t2.Len(), c.b1.Len(), c.b2.Len()
}
