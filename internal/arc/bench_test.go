package arc

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkAccessZipfMix(b *testing.B) {
	c, err := New(256)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	keys := make([]string, 4097)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(keys[zipf.Uint64()])
	}
}

func BenchmarkAccessAllHits(b *testing.B) {
	c, err := New(64)
	if err != nil {
		b.Fatal(err)
	}
	c.Access("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access("hot")
	}
}
