// Package promlint validates Prometheus text exposition (format 0.0.4)
// the way promtool's `check metrics` pass would, with no dependency on the
// Prometheus toolchain. It exists so CI can hard-fail on a malformed
// /metrics page — bad escaping, duplicate series, non-cumulative histogram
// buckets — using only the standard library.
//
// The linter is deliberately stricter than the wire parser: problems that
// scrape fine but trip real-world tooling (missing HELP, TYPE after the
// first sample, counters not ending in _total are NOT flagged because this
// repo predates that convention) are reported as problems too.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding, tied to the 1-based exposition line.
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

type family struct {
	typ      string
	helpLine int
	typeLine int
	sampled  bool
}

// Lint reads one exposition page and returns every problem found, in line
// order. An empty slice means the page is clean.
func Lint(r io.Reader) ([]Problem, error) {
	var probs []Problem
	add := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	families := map[string]*family{}
	fam := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	// series key (name + sorted labels) -> first line, for duplicate checks.
	seen := map[string]int{}
	// histogram buckets per series-minus-le, in declaration order.
	type bucket struct {
		le    float64
		count float64
		line  int
	}
	buckets := map[string][]bucket{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			lintComment(line, n, fam, add)
			continue
		}
		name, labels, value, ok := parseSample(line, n, add)
		if !ok {
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		f, isHist := families[base]
		if isHist && f.typ == "histogram" && base != name {
			f.sampled = true
		} else {
			fam(name).sampled = true
			if ff := families[name]; ff.typ == "" && ff.helpLine == 0 {
				add(n, "sample %q has no # TYPE (or # HELP) line", name)
			}
		}

		key := seriesKey(name, labels)
		if first, dup := seen[key]; dup {
			add(n, "duplicate series %s (first seen line %d)", key, first)
		} else {
			seen[key] = n
		}

		if strings.HasSuffix(name, "_bucket") && isHist && f.typ == "histogram" {
			leStr, ok := labels["le"]
			if !ok {
				add(n, "histogram bucket %q is missing the le label", name)
				continue
			}
			le, err := parseFloat(leStr)
			if err != nil {
				add(n, "histogram bucket %q has unparseable le=%q", name, leStr)
				continue
			}
			rest := map[string]string{}
			for k, v := range labels {
				if k != "le" {
					rest[k] = v
				}
			}
			bkey := seriesKey(base, rest)
			buckets[bkey] = append(buckets[bkey], bucket{le: le, count: value, line: n})
		}
	}
	if err := sc.Err(); err != nil {
		return probs, err
	}

	for name, f := range families {
		if f.typeLine > 0 && !f.sampled {
			add(f.typeLine, "metric %q declared but never sampled", name)
		}
	}
	for key, bs := range buckets {
		last := bs[len(bs)-1]
		if last.le != inf {
			add(last.line, "histogram %s has no +Inf bucket", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				add(bs[i].line, "histogram %s buckets not in increasing le order", key)
			}
			if bs[i].count < bs[i-1].count {
				add(bs[i].line, "histogram %s bucket counts not cumulative (le=%g count %g < le=%g count %g)",
					key, bs[i].le, bs[i].count, bs[i-1].le, bs[i-1].count)
			}
		}
	}

	sort.SliceStable(probs, func(i, j int) bool { return probs[i].Line < probs[j].Line })
	return probs, nil
}

var inf = math.Inf(1)

func lintComment(line string, n int, fam func(string) *family, add func(int, string, ...any)) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return // bare comment, fine
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			add(n, "# HELP without a metric name")
			return
		}
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			add(n, "# HELP for invalid metric name %q", name)
		}
		f := fam(name)
		if f.helpLine > 0 {
			add(n, "second # HELP for %q (first at line %d)", name, f.helpLine)
		}
		f.helpLine = n
	case "TYPE":
		if len(fields) < 4 {
			add(n, "# TYPE needs a metric name and a type")
			return
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !metricNameRe.MatchString(name) {
			add(n, "# TYPE for invalid metric name %q", name)
		}
		if !validTypes[typ] {
			add(n, "# TYPE %s has unknown type %q", name, typ)
		}
		f := fam(name)
		if f.typeLine > 0 {
			add(n, "second # TYPE for %q (first at line %d)", name, f.typeLine)
		}
		if f.sampled {
			add(n, "# TYPE for %q after its first sample", name)
		}
		f.typ = typ
		f.typeLine = n
	}
}

// parseSample splits `name{labels} value [timestamp]`. Returns ok=false
// (with problems recorded) when the line is unusable.
func parseSample(line string, n int, add func(int, string, ...any)) (string, map[string]string, float64, bool) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		add(n, "sample line has no value: %q", line)
		return "", nil, 0, false
	}
	name := rest[:i]
	if !metricNameRe.MatchString(name) {
		add(n, "invalid metric name %q", name)
		return "", nil, 0, false
	}
	labels := map[string]string{}
	if rest[i] == '{' {
		var ok bool
		rest, ok = parseLabels(rest[i+1:], n, name, labels, add)
		if !ok {
			return "", nil, 0, false
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		add(n, "sample %q needs `value [timestamp]`, got %q", name, strings.TrimSpace(rest))
		return "", nil, 0, false
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		add(n, "sample %q has unparseable value %q", name, fields[0])
		return "", nil, 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			add(n, "sample %q has unparseable timestamp %q", name, fields[1])
		}
	}
	return name, labels, v, true
}

// parseLabels consumes `k="v",...}` handling \\, \" and \n escapes, filling
// labels and returning the remainder after the closing brace.
func parseLabels(s string, n int, metric string, labels map[string]string, add func(int, string, ...any)) (string, bool) {
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return s[1:], true
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			add(n, "sample %q: unterminated label set", metric)
			return "", false
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(key) {
			add(n, "sample %q: invalid label name %q", metric, key)
			return "", false
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			add(n, "sample %q: label %q value not quoted", metric, key)
			return "", false
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				add(n, "sample %q: unterminated label value for %q", metric, key)
				return "", false
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					add(n, "sample %q: dangling escape in label %q", metric, key)
					return "", false
				}
				e := s[0]
				s = s[1:]
				switch e {
				case '\\', '"':
					val.WriteByte(e)
				case 'n':
					val.WriteByte('\n')
				default:
					add(n, "sample %q: invalid escape \\%c in label %q", metric, e, key)
					return "", false
				}
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := labels[key]; dup {
			add(n, "sample %q: duplicate label %q", metric, key)
		}
		labels[key] = val.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return inf, nil
	case "-Inf":
		return -inf, nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
