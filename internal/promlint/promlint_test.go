package promlint

import (
	"strings"
	"testing"
)

const cleanPage = `# HELP hits cityhunter counter hits
# TYPE hits counter
hits{site="canteen"} 3
hits{site="mall \"west\"\n"} 1
# HELP level cityhunter gauge level
# TYPE level gauge
level 2.5
# HELP lat cityhunter histogram lat
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 2
lat_bucket{le="+Inf"} 3
lat_sum 5.55
lat_count 3
`

func TestLintClean(t *testing.T) {
	probs, err := Lint(strings.NewReader(cleanPage))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		t.Errorf("clean page flagged: %s", p)
	}
}

func TestLintProblems(t *testing.T) {
	cases := []struct {
		name string
		page string
		want string // substring of the expected problem
	}{
		{"duplicate series", "# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"no type", "a{x=\"1\"} 1\n", "no # TYPE"},
		{"bad type", "# TYPE a countr\na 1\n", "unknown type"},
		{"double help", "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n", "second # HELP"},
		{"type after sample", "# TYPE a counter\na 1\n# TYPE a gauge\n", "after its first sample"},
		{"bad name", "1abc 1\n", "invalid metric name"},
		{"bad value", "# TYPE a counter\na one\n", "unparseable value"},
		{"unquoted label", "# TYPE a counter\na{x=1} 1\n", "not quoted"},
		{"bad escape", "# TYPE a counter\na{x=\"\\t\"} 1\n", "invalid escape"},
		{"declared unsampled", "# TYPE a counter\n", "never sampled"},
		{"no inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "no +Inf bucket"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"bucket missing le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\n", "missing the le label"},
	}
	for _, c := range cases {
		probs, err := Lint(strings.NewReader(c.page))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		found := false
		for _, p := range probs {
			if strings.Contains(p.Msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", c.name, probs, c.want)
		}
	}
}
