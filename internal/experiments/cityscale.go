package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cityhunter"
)

// CityScaleResult measures the level-of-detail extension: a dozen-district
// city carrying a six-figure statistical pedestrian population, three
// attacked districts, and promotion to full client fidelity only inside
// each site's radio-range boundary. The paper's deployment watched four
// venues one at a time (§V); this generator hunts a whole synthetic city at
// once and reports what fraction of it ever mattered at full fidelity.
type CityScaleResult struct {
	// Pedestrians is the far-field population size.
	Pedestrians int
	// Districts counts the routing districts; the far-field crowd walks
	// between all of them, weighted by attractiveness.
	Districts int
	// SiteNames names the attacked districts, in FarField.Sites order.
	SiteNames []string
	// FarField is the tier accounting: distinct promoted pedestrians,
	// promotion/demotion churn, the peak concurrent full-fidelity load,
	// per-site promotions and hits, and the promoted crowd's tally.
	FarField cityhunter.FarFieldResult
	// VenueTally pools the classic venue populations at the attacked
	// sites — the paper-scale crowds, untouched by the far field.
	VenueTally cityhunter.Tally
	// Duration is the simulated virtual time.
	Duration time.Duration
}

// String renders the city-scale report.
func (r *CityScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "City scale (extension) — %d far-field pedestrians across %d districts, %d attacked, %v virtual\n",
		r.Pedestrians, r.Districts, len(r.SiteNames), r.Duration)
	ff := r.FarField
	promoPct := 0.0
	if ff.Pedestrians > 0 {
		promoPct = 100 * float64(ff.Promoted) / float64(ff.Pedestrians)
	}
	fmt.Fprintf(&b, "promoted %d (%.2f%% of the city), %d promotions / %d demotions, peak %d concurrent full-fidelity clients\n",
		ff.Promoted, promoPct, ff.Promotions, ff.Demotions, ff.PeakPromoted)
	for i, s := range ff.Sites {
		hitPct := 0.0
		if s.Promotions > 0 {
			hitPct = 100 * float64(s.Hits) / float64(s.Promotions)
		}
		fmt.Fprintf(&b, "    %-18s %5d promotions, %4d hits (%.1f%%)\n",
			r.SiteNames[i], s.Promotions, s.Hits, hitPct)
	}
	fmt.Fprintf(&b, "far-field capture: h_b = %5.1f%%  (%v)\n",
		pct(ff.Tally.BroadcastHitRate()), ff.Tally)
	fmt.Fprintf(&b, "venue crowds at the attacked sites: h_b = %5.1f%%  (%v)\n",
		pct(r.VenueTally.BroadcastHitRate()), r.VenueTally)
	return b.String()
}

// cityScalePedestrians is the full-scale far-field population. Options'
// ArrivalScale shrinks it for reduced-scale harness runs, the same lever
// the venue populations use.
const cityScalePedestrians = 100_000

// CityScale runs the level-of-detail city deployment: the dozen-district
// CityScaleCityConfig city, a far-field crowd routed by district
// attractiveness, and attackers at the railway station, canteen and mall
// districts (whose venues coincide with citygen hotspot centers). Only
// pedestrians crossing a site's promotion boundary are simulated at frame
// fidelity; everyone else stays arrival/route state, which is what lets the
// full 100k-pedestrian hour finish in minutes.
func CityScale(ctx context.Context, w *cityhunter.World, o Options) (*CityScaleResult, error) {
	pedestrians := cityScalePedestrians
	if o.ArrivalScale > 0 && o.ArrivalScale < 1 {
		pedestrians = int(float64(pedestrians) * o.ArrivalScale)
		if pedestrians < 200 {
			pedestrians = 200
		}
	}

	// A dedicated dozen-district world: the far-field crowd needs the
	// extra districts to route through, and the shared experiments world
	// keeps its default city for every other generator.
	seed := o.seed(w, 95)
	city, err := cityhunter.NewWorld(
		cityhunter.WithSeed(seed),
		cityhunter.WithCityConfig(cityhunter.CityScaleCityConfig(seed)),
	)
	if err != nil {
		return nil, fmt.Errorf("city-scale world: %w", err)
	}

	dcfg := cityhunter.DeploymentConfig{
		Sites: []cityhunter.Venue{
			cityhunter.StationVenue(),
			cityhunter.CanteenVenue(),
			cityhunter.MallVenue(),
		},
		FarField: &cityhunter.FarFieldConfig{
			Pedestrians: pedestrians,
			Stops:       city.City.RouteStops(),
		},
	}
	dep, err := city.RunDeployment(ctx, dcfg, cityhunter.CityHunter,
		cityhunter.LunchSlot, o.slotDuration(), o.runOpts(city, 95)...)
	if err != nil {
		return nil, fmt.Errorf("city-scale deployment: %w", err)
	}
	if dep.FarField == nil {
		return nil, fmt.Errorf("city-scale deployment returned no far-field accounting")
	}

	res := &CityScaleResult{
		Pedestrians: pedestrians,
		Districts:   len(city.City.RouteStops()),
		FarField:    *dep.FarField,
		VenueTally:  dep.Tally,
		Duration:    o.slotDuration(),
	}
	for _, v := range dcfg.Sites {
		res.SiteNames = append(res.SiteNames, v.Name)
	}
	return res, nil
}
