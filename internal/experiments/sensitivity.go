package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cityhunter"
	"cityhunter/internal/core"
)

// SensitivityPoint is one knob setting with its measured rates.
type SensitivityPoint struct {
	Label string
	Tally cityhunter.Tally
}

// SensitivityResult sweeps the model knobs the paper could not vary in the
// field, one at a time around the calibrated defaults, and reports how h_b
// responds. Each sweep states the expected direction; the String output
// flags violations.
type SensitivityResult struct {
	Sweeps []SensitivitySweep
}

// SensitivitySweep is one knob's series.
type SensitivitySweep struct {
	Knob string
	// Direction documents the expected trend over the points:
	// "increasing", "decreasing".
	Direction string
	Points    []SensitivityPoint
}

// monotone reports whether the sweep's h_b follows its declared direction,
// within a small slack for seed noise.
func (s SensitivitySweep) monotone(slack float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev := s.Points[i-1].Tally.BroadcastHitRate()
		cur := s.Points[i].Tally.BroadcastHitRate()
		switch s.Direction {
		case "increasing":
			if cur < prev-slack {
				return false
			}
		case "decreasing":
			if cur > prev+slack {
				return false
			}
		}
	}
	return true
}

// String renders every sweep.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("Sensitivity — canteen h_b as one model knob moves off calibration\n")
	for _, s := range r.Sweeps {
		trend := "as expected"
		if !s.monotone(0.02) {
			trend = "NOT " + s.Direction + " (check seeds)"
		}
		fmt.Fprintf(&b, "[%s] expected %s — %s\n", s.Knob, s.Direction, trend)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %-24s h_b = %5.1f%%  (%d/%d broadcast clients)\n",
				p.Label, pct(p.Tally.BroadcastHitRate()),
				p.Tally.ConnectedBroadcast, p.Tally.Broadcast)
		}
	}
	return b.String()
}

// Sensitivity runs the four sweeps. All 36 runs (4 sweeps × 3 points × 3
// replicas) fan out through one campaign; the pairing and pooling happen
// afterwards, in spec order, so the numbers match the old serial harness
// at any worker count.
func Sensitivity(ctx context.Context, w *cityhunter.World, o Options) (*SensitivityResult, error) {
	venue := cityhunter.CanteenVenue()
	// Every point pools three paired replicas: the same three crowd seeds
	// are reused across the points of a sweep, so the knob is the only
	// difference and the counts add up to a less noisy rate.
	var specs []cityhunter.RunSpec
	type pointRef struct{ sweep, point int }
	var refs []pointRef
	point := func(si, pi int, label string, seedOff int64, extra ...cityhunter.RunOption) {
		for rep := int64(0); rep < 3; rep++ {
			specs = append(specs, o.spec(w,
				fmt.Sprintf("sensitivity %s rep %d", label, rep),
				venue, cityhunter.CityHunter, cityhunter.LunchSlot,
				o.tableDuration(), 300+seedOff+100*rep, extra...))
			refs = append(refs, pointRef{si, pi})
		}
	}

	res := &SensitivityResult{Sweeps: []SensitivitySweep{
		// 1. Unsafe-phone share: more direct probers feed the database and
		// also fall to the mirror themselves.
		{Knob: "direct-prober fraction", Direction: "increasing"},
		// 2. Scan interval: slower scanning means fewer reply batches per
		// dwell, so fewer database entries get tried.
		{Knob: "scan interval", Direction: "decreasing"},
		// 3. WiGLE completeness: bigger crowd-sourcing gaps starve the
		// offline seeding.
		{Knob: "WiGLE small-network gaps", Direction: "decreasing"},
		// 4. Reply budget: the ≤40-responses constraint itself. Larger
		// batches try more SSIDs per scan — up to the client's physical
		// window of ~40; beyond that the extra responses fall outside the
		// listening window, so the sweep stops at 40.
		{Knob: "reply budget", Direction: "increasing"},
	}}

	for pi, f := range []float64{0.05, 0.15, 0.30} {
		label := fmt.Sprintf("%.0f%% unsafe", 100*f)
		res.Sweeps[0].Points = append(res.Sweeps[0].Points, SensitivityPoint{Label: label})
		point(0, pi, label, 1, cityhunter.WithDirectProberFraction(f))
	}
	for pi, d := range []time.Duration{30 * time.Second, 60 * time.Second, 150 * time.Second} {
		res.Sweeps[1].Points = append(res.Sweeps[1].Points, SensitivityPoint{Label: d.String()})
		point(1, pi, d.String(), 10, cityhunter.WithScanInterval(d))
	}
	for pi, miss := range []float64{0.0, 0.5, 0.95} {
		db, err := w.City.DB.SampleCrowdsourced(rand.New(rand.NewSource(777)), miss, miss/2)
		if err != nil {
			return nil, fmt.Errorf("sensitivity wigle: %w", err)
		}
		// Same run seed for every point: the crowd is identical, so the
		// comparison is paired and the WiGLE knob is the only change.
		label := fmt.Sprintf("%.0f%% missing", 100*miss)
		res.Sweeps[2].Points = append(res.Sweeps[2].Points, SensitivityPoint{Label: label})
		point(2, pi, label, 20, cityhunter.WithWiGLE(db))
	}
	for pi, budget := range []int{10, 24, 40} {
		ccfg := core.DefaultConfig(core.ModeFull)
		ccfg.ReplyBudget = budget
		// Keep the FB share and ghost picks feasible for small budgets.
		if regular := budget - 2*ccfg.GhostPicks; ccfg.InitialFreshness > regular-ccfg.MinBuffer {
			ccfg.InitialFreshness = regular / 5
			if ccfg.InitialFreshness < ccfg.MinBuffer {
				ccfg.InitialFreshness = ccfg.MinBuffer
			}
		}
		label := fmt.Sprintf("%d SSIDs/scan", budget)
		res.Sweeps[3].Points = append(res.Sweeps[3].Points, SensitivityPoint{Label: label})
		point(3, pi, label, 30, cityhunter.WithCoreConfig(ccfg))
	}

	out, err := o.campaign(ctx, w, specs)
	if err != nil {
		return nil, fmt.Errorf("sensitivity: %w", err)
	}
	for i, r := range out.Results {
		p := &res.Sweeps[refs[i].sweep].Points[refs[i].point]
		p.Tally.Total += r.Tally.Total
		p.Tally.Direct += r.Tally.Direct
		p.Tally.Broadcast += r.Tally.Broadcast
		p.Tally.ConnectedDirect += r.Tally.ConnectedDirect
		p.Tally.ConnectedBroadcast += r.Tally.ConnectedBroadcast
	}
	return res, nil
}
