package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cityhunter"
	"cityhunter/internal/core"
)

// SensitivityPoint is one knob setting with its measured rates.
type SensitivityPoint struct {
	Label string
	Tally cityhunter.Tally
}

// SensitivityResult sweeps the model knobs the paper could not vary in the
// field, one at a time around the calibrated defaults, and reports how h_b
// responds. Each sweep states the expected direction; the String output
// flags violations.
type SensitivityResult struct {
	Sweeps []SensitivitySweep
}

// SensitivitySweep is one knob's series.
type SensitivitySweep struct {
	Knob string
	// Direction documents the expected trend over the points:
	// "increasing", "decreasing".
	Direction string
	Points    []SensitivityPoint
}

// monotone reports whether the sweep's h_b follows its declared direction,
// within a small slack for seed noise.
func (s SensitivitySweep) monotone(slack float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev := s.Points[i-1].Tally.BroadcastHitRate()
		cur := s.Points[i].Tally.BroadcastHitRate()
		switch s.Direction {
		case "increasing":
			if cur < prev-slack {
				return false
			}
		case "decreasing":
			if cur > prev+slack {
				return false
			}
		}
	}
	return true
}

// String renders every sweep.
func (r *SensitivityResult) String() string {
	var b strings.Builder
	b.WriteString("Sensitivity — canteen h_b as one model knob moves off calibration\n")
	for _, s := range r.Sweeps {
		trend := "as expected"
		if !s.monotone(0.02) {
			trend = "NOT " + s.Direction + " (check seeds)"
		}
		fmt.Fprintf(&b, "[%s] expected %s — %s\n", s.Knob, s.Direction, trend)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %-24s h_b = %5.1f%%  (%d/%d broadcast clients)\n",
				p.Label, pct(p.Tally.BroadcastHitRate()),
				p.Tally.ConnectedBroadcast, p.Tally.Broadcast)
		}
	}
	return b.String()
}

// Sensitivity runs the four sweeps.
func Sensitivity(w *cityhunter.World, o Options) (*SensitivityResult, error) {
	res := &SensitivityResult{}
	venue := cityhunter.CanteenVenue()
	// Every point pools three paired replicas: the same three crowd seeds
	// are reused across the points of a sweep, so the knob is the only
	// difference and the counts add up to a less noisy rate.
	run := func(label string, seedOff int64, extra ...cityhunter.RunOption) (SensitivityPoint, error) {
		var pooled cityhunter.Tally
		for rep := int64(0); rep < 3; rep++ {
			r, err := w.Run(venue, cityhunter.CityHunter, cityhunter.LunchSlot,
				o.tableDuration(), o.runOpts(w, 300+seedOff+100*rep, extra...)...)
			if err != nil {
				return SensitivityPoint{}, fmt.Errorf("sensitivity %s: %w", label, err)
			}
			pooled.Total += r.Tally.Total
			pooled.Direct += r.Tally.Direct
			pooled.Broadcast += r.Tally.Broadcast
			pooled.ConnectedDirect += r.Tally.ConnectedDirect
			pooled.ConnectedBroadcast += r.Tally.ConnectedBroadcast
		}
		return SensitivityPoint{Label: label, Tally: pooled}, nil
	}

	// 1. Unsafe-phone share: more direct probers feed the database and
	// also fall to the mirror themselves.
	sweep := SensitivitySweep{Knob: "direct-prober fraction", Direction: "increasing"}
	for _, f := range []float64{0.05, 0.15, 0.30} {
		p, err := run(fmt.Sprintf("%.0f%% unsafe", 100*f), 1,
			cityhunter.WithDirectProberFraction(f))
		if err != nil {
			return nil, err
		}
		sweep.Points = append(sweep.Points, p)
	}
	res.Sweeps = append(res.Sweeps, sweep)

	// 2. Scan interval: slower scanning means fewer reply batches per
	// dwell, so fewer database entries get tried.
	sweep = SensitivitySweep{Knob: "scan interval", Direction: "decreasing"}
	for _, d := range []time.Duration{30 * time.Second, 60 * time.Second, 150 * time.Second} {
		p, err := run(d.String(), 10, cityhunter.WithScanInterval(d))
		if err != nil {
			return nil, err
		}
		sweep.Points = append(sweep.Points, p)
	}
	res.Sweeps = append(res.Sweeps, sweep)

	// 3. WiGLE completeness: bigger crowd-sourcing gaps starve the
	// offline seeding.
	sweep = SensitivitySweep{Knob: "WiGLE small-network gaps", Direction: "decreasing"}
	for _, miss := range []float64{0.0, 0.5, 0.95} {
		db, err := w.City.DB.SampleCrowdsourced(rand.New(rand.NewSource(777)), miss, miss/2)
		if err != nil {
			return nil, fmt.Errorf("sensitivity wigle: %w", err)
		}
		// Same run seed for every point: the crowd is identical, so the
		// comparison is paired and the WiGLE knob is the only change.
		p, err := run(fmt.Sprintf("%.0f%% missing", 100*miss), 20,
			cityhunter.WithWiGLE(db))
		if err != nil {
			return nil, err
		}
		sweep.Points = append(sweep.Points, p)
	}
	res.Sweeps = append(res.Sweeps, sweep)

	// 4. Reply budget: the ≤40-responses constraint itself. Larger
	// batches try more SSIDs per scan — up to the client's physical
	// window of ~40; beyond that the extra responses fall outside the
	// listening window, so the sweep stops at 40.
	sweep = SensitivitySweep{Knob: "reply budget", Direction: "increasing"}
	for _, budget := range []int{10, 24, 40} {
		ccfg := core.DefaultConfig(core.ModeFull)
		ccfg.ReplyBudget = budget
		// Keep the FB share and ghost picks feasible for small budgets.
		if regular := budget - 2*ccfg.GhostPicks; ccfg.InitialFreshness > regular-ccfg.MinBuffer {
			ccfg.InitialFreshness = regular / 5
			if ccfg.InitialFreshness < ccfg.MinBuffer {
				ccfg.InitialFreshness = ccfg.MinBuffer
			}
		}
		p, err := run(fmt.Sprintf("%d SSIDs/scan", budget), 30,
			cityhunter.WithCoreConfig(ccfg))
		if err != nil {
			return nil, err
		}
		sweep.Points = append(sweep.Points, p)
	}
	res.Sweeps = append(res.Sweeps, sweep)
	return res, nil
}
