package experiments

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("empty series = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3})
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes = %q", got)
	}
	// Monotone series renders monotone glyph levels.
	for i := 1; i < len(runes); i++ {
		if indexOfSpark(runes[i]) < indexOfSpark(runes[i-1]) {
			t.Errorf("sparkline not monotone: %q", got)
		}
	}
	flat := sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("constant series = %q", flat)
		}
	}
}

func indexOfSpark(r rune) int {
	for i, s := range sparkRunes {
		if s == r {
			return i
		}
	}
	return -1
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	barChart(&b, []string{"aa", "b"}, []float64{10, 5}, 10, "%.0f")
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 10)) {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 5)+strings.Repeat("·", 5)) {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[0], "10") || !strings.Contains(lines[1], "5") {
		t.Error("values missing")
	}

	// Zero values render empty bars without panicking.
	var z strings.Builder
	barChart(&z, []string{"x"}, []float64{0}, 0, "%.0f")
	if !strings.Contains(z.String(), strings.Repeat("·", 40)) {
		t.Errorf("zero bar = %q", z.String())
	}
}
