package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"cityhunter"
)

// SlotResult is one venue × hour-slot deployment of the full City-Hunter.
type SlotResult struct {
	Venue     string
	Slot      int
	SlotLabel string
	Tally     cityhunter.Tally
	Breakdown cityhunter.Breakdown
}

// GridResult holds the full 4-venue × 12-slot sweep behind Figures 5 and 6.
type GridResult struct {
	Venues []string
	// Slots maps venue name to its 12 slot results.
	Slots map[string][]SlotResult
}

// Grid runs the Figure 5/6 sweep: the full City-Hunter deployed at every
// venue for every hour slot from 8am to 8pm, database re-initialised per
// test. The 48 deployments are independent (the attacker restarts each
// hour), so they fan out through the campaign runner with Options.Pool
// workers; results land in a fixed order regardless.
func Grid(ctx context.Context, w *cityhunter.World, o Options) (*GridResult, error) {
	venues := cityhunter.AllVenues()
	var specs []cityhunter.RunSpec
	res := &GridResult{Slots: make(map[string][]SlotResult)}
	for vi, venue := range venues {
		res.Venues = append(res.Venues, venue.Name)
		res.Slots[venue.Name] = make([]SlotResult, venue.Profile.Slots())
		for slot := 0; slot < venue.Profile.Slots(); slot++ {
			specs = append(specs, o.spec(w,
				fmt.Sprintf("grid %s slot %d", venue.Name, slot),
				venue, cityhunter.CityHunter, slot, o.slotDuration(),
				int64(100+vi*50+slot)))
		}
	}
	out, err := o.campaign(ctx, w, specs)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	for _, r := range out.Results {
		res.Slots[r.Venue][r.Slot] = SlotResult{
			Venue:     r.Venue,
			Slot:      r.Slot,
			SlotLabel: r.SlotLabel,
			Tally:     r.Tally,
			Breakdown: r.Breakdown(),
		}
	}
	return res, nil
}

// AverageHb returns a venue's mean broadcast hit rate across slots.
func (g *GridResult) AverageHb(venue string) float64 {
	slots := g.Slots[venue]
	if len(slots) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range slots {
		sum += s.Tally.BroadcastHitRate()
	}
	return sum / float64(len(slots))
}

// Figure5 renders the stacked client counts and per-slot rates.
func (g *GridResult) Figure5() string {
	var b strings.Builder
	b.WriteString("Figure 5 — City-Hunter per venue and hour slot (stacked client counts, h, h_b)\n")
	for _, venue := range g.Venues {
		fmt.Fprintf(&b, "[%s]  average h_b = %.1f%%\n", venue, pct(g.AverageHb(venue)))
		fmt.Fprintf(&b, "  %-9s %6s  %6s %6s %6s %6s  %6s %6s\n",
			"slot", "total", "bc+", "bc-", "dir+", "dir-", "h", "h_b")
		var labels []string
		var totals []float64
		for _, s := range g.Slots[venue] {
			t := s.Tally
			fmt.Fprintf(&b, "  %-9s %6d  %6d %6d %6d %6d  %5.1f%% %5.1f%%\n",
				s.SlotLabel, t.Total,
				t.ConnectedBroadcast, t.Broadcast-t.ConnectedBroadcast,
				t.ConnectedDirect, t.Direct-t.ConnectedDirect,
				pct(t.HitRate()), pct(t.BroadcastHitRate()))
			labels = append(labels, s.SlotLabel)
			totals = append(totals, float64(t.Total))
		}
		b.WriteString("  clients heard per slot:\n")
		barChart(&b, labels, totals, 40, "%.0f")
	}
	b.WriteString("paper: average h_b ≈ 12% passage, 17.9% canteen, 14% mall, 16.6% station;\n")
	b.WriteString("       client counts peak in rush hours / meal times and h_b peaks with them\n")
	return b.String()
}

// Figure6 renders the per-slot breakdown of hitting SSIDs.
func (g *GridResult) Figure6() string {
	var b strings.Builder
	b.WriteString("Figure 6 — breakdown of SSIDs that hit broadcast clients\n")
	for _, venue := range g.Venues {
		fmt.Fprintf(&b, "[%s]\n", venue)
		fmt.Fprintf(&b, "  %-9s %7s %7s %9s | %7s %7s %9s\n",
			"slot", "WiGLE", "direct", "w:d", "popB", "freshB", "p:f")
		for _, s := range g.Slots[venue] {
			d := s.Breakdown
			fmt.Fprintf(&b, "  %-9s %7d %7d %9s | %7d %7d %9s\n",
				s.SlotLabel, d.FromWiGLE, d.FromDirect, ratioString(d.SourceRatio()),
				d.FromPopularity, d.FromFreshness, ratioString(d.BufferRatio()))
		}
	}
	b.WriteString("paper: WiGLE contributes more than direct probes (≈3.5-5:1, direct share\n")
	b.WriteString("       higher in rush hours); popularity buffer beats freshness buffer\n")
	b.WriteString("       (passage ≈6.3-9.9:1, canteen ≈3-5.2:1)\n")
	return b.String()
}

// ratioString renders a ratio, tolerating the no-denominator case.
func ratioString(r float64) string {
	if math.IsInf(r, 1) {
		return "all:0"
	}
	return fmt.Sprintf("%.1f:1", r)
}
