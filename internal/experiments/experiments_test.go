package experiments

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"cityhunter"
)

var (
	worldOnce sync.Once
	worldVal  *cityhunter.World
	worldErr  error
)

func testWorld(t *testing.T) *cityhunter.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = cityhunter.NewWorld(cityhunter.WithSeed(1))
	})
	if worldErr != nil {
		t.Fatalf("NewWorld: %v", worldErr)
	}
	return worldVal
}

// quickOpts keeps unit runs fast; band assertions use wider tolerances
// accordingly.
func quickOpts() Options {
	return Options{SlotDuration: 8 * time.Minute, ArrivalScale: 0.6}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	karma, mana := res.Rows[0], res.Rows[1]
	if karma.Attack != "KARMA" || mana.Attack != "MANA" {
		t.Fatalf("row order: %q, %q", karma.Attack, mana.Attack)
	}
	if karma.Tally.BroadcastHitRate() != 0 {
		t.Errorf("KARMA h_b = %v, want 0", karma.Tally.BroadcastHitRate())
	}
	if karma.Tally.Total == 0 || mana.Tally.Total == 0 {
		t.Error("empty crowds")
	}
	if !strings.Contains(res.String(), "Table I") {
		t.Error("String lacks title")
	}
}

func TestFigure1Shape(t *testing.T) {
	res, err := Figure1(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].DBSize < res.Points[i-1].DBSize {
			t.Error("MANA DB size decreased")
		}
		if res.Points[i].Connected < res.Points[i-1].Connected {
			t.Error("cumulative connected decreased")
		}
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Error("String lacks title")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	mana, ch := res.Rows[0], res.Rows[1]
	if ch.Tally.BroadcastHitRate() <= mana.Tally.BroadcastHitRate() {
		t.Errorf("City-Hunter h_b %.3f not above MANA %.3f",
			ch.Tally.BroadcastHitRate(), mana.Tally.BroadcastHitRate())
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.CanteenVictims == 0 {
		t.Fatal("no canteen victims")
	}
	if res.CanteenMin < 0 || res.CanteenMax < res.CanteenMin {
		t.Errorf("min/max = %d/%d", res.CanteenMin, res.CanteenMax)
	}
	total := 0.0
	oneBatch := 0.0
	for _, share := range res.PassageShares {
		total += share.Fraction
		if share.SSIDs == 40 {
			oneBatch = share.Fraction
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fractions sum to %v", total)
	}
	// The dominant passage experience is a single 40-SSID batch.
	if oneBatch < 0.5 {
		t.Errorf("one-batch share = %.2f, want the majority (paper ~70%%)", oneBatch)
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.Tally.Total == 0 {
		t.Fatal("no clients")
	}
	// The unordered preliminary design in the passage stays well below
	// the full design's 12%-ish band.
	if hb := res.Row.Tally.BroadcastHitRate(); hb > 0.10 {
		t.Errorf("preliminary passage h_b = %.3f, want < 0.10 (paper 4.1%%)", hb)
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(context.Background(), testWorld(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByCount) != 5 || len(res.ByHeat) != 5 {
		t.Fatalf("rankings = %d/%d", len(res.ByCount), len(res.ByHeat))
	}
	inTop := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	if inTop(res.ByCount, "#HKAirport Free WiFi") {
		t.Error("airport SSID in top-5 by AP count; paper ranks it 13th")
	}
	if !inTop(res.ByHeat, "#HKAirport Free WiFi") {
		t.Errorf("airport SSID missing from top-5 by heat: %v", res.ByHeat)
	}
	if !inTop(res.ByHeat, "Free Public WiFi") {
		t.Errorf("'Free Public WiFi' missing from top-5 by heat: %v", res.ByHeat)
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := Figure4(context.Background(), testWorld(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no hot cells")
	}
	// The hottest cell must sit inside a venue.
	if res.Cells[0].Venue == "" {
		t.Errorf("hottest cell %+v not at any venue", res.Cells[0])
	}
	for i := 1; i < len(res.Cells); i++ {
		if res.Cells[i].Photos > res.Cells[i-1].Photos {
			t.Error("cells not ordered by photo count")
		}
	}
}

func TestGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("48 runs")
	}
	opts := Options{SlotDuration: 3 * time.Minute, ArrivalScale: 0.5}
	grid, err := Grid(context.Background(), testWorld(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Venues) != 4 {
		t.Fatalf("venues = %d", len(grid.Venues))
	}
	for _, v := range grid.Venues {
		if len(grid.Slots[v]) != 12 {
			t.Errorf("%s has %d slots", v, len(grid.Slots[v]))
		}
	}
	if !strings.Contains(grid.Figure5(), "average h_b") {
		t.Error("Figure5 output malformed")
	}
	if !strings.Contains(grid.Figure6(), "WiGLE") {
		t.Error("Figure6 output malformed")
	}
}

func TestExtensionsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four 8-minute runs")
	}
	res, err := Extensions(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Deauth must expose more clients than the control.
	if res.DeauthOn.Total <= res.DeauthOff.Total {
		t.Errorf("deauth on heard %d clients, off heard %d; extension should expose more",
			res.DeauthOn.Total, res.DeauthOff.Total)
	}
	// Carrier seeding only adds victims.
	if res.CarrierHits == 0 {
		t.Error("carrier seeding produced no carrier hits")
	}
	if res.CarrierOffHits != 0 {
		t.Errorf("control run hit %d carrier SSIDs without seeding them", res.CarrierOffHits)
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve runs")
	}
	res, err := Ablation(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AblationVariant, len(res.Variants))
	for _, v := range res.Variants {
		byName[v.Name] = v
	}
	full := byName["full City-Hunter"]
	noWigle := byName["no WiGLE seeding (harvest only)"]
	if full.CanteenHb == 0 {
		t.Fatal("full variant captured nothing")
	}
	if noWigle.CanteenHb >= full.CanteenHb {
		t.Errorf("removing WiGLE seeding did not hurt: %.3f vs %.3f",
			noWigle.CanteenHb, full.CanteenHb)
	}
	if !strings.Contains(res.String(), "Ablation") {
		t.Error("String lacks title")
	}
}

func TestCountermeasuresShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four runs")
	}
	res, err := Countermeasures(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.SentinelFlaggedAttacker {
		t.Error("sentinel failed to flag the attacker")
	}
	if res.Baseline.BroadcastHitRate() == 0 {
		t.Fatal("baseline captured nothing")
	}
	if len(res.CanaryShares) != 3 {
		t.Fatalf("canary points = %d", len(res.CanaryShares))
	}
	// Full canary coverage neutralises the attack on broadcast probers.
	full := res.CanaryShares[len(res.CanaryShares)-1]
	if full.Share != 1.0 {
		t.Fatalf("last share = %v", full.Share)
	}
	if got := full.Tally.BroadcastHitRate(); got > res.Baseline.BroadcastHitRate()/4 {
		t.Errorf("full canary h_b = %.3f, want ≪ baseline %.3f",
			got, res.Baseline.BroadcastHitRate())
	}
	if full.Detections == 0 {
		t.Error("no canary unmaskings recorded")
	}
	if !strings.Contains(res.String(), "sentinel") {
		t.Error("String lacks sentinel line")
	}
}

func TestRandomizationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("seven runs")
	}
	res, err := Randomization(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.BroadcastHitRate() == 0 {
		t.Fatal("baseline captured nothing")
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d, want 3 policies x 2 linkers", len(res.Points))
	}
	byKey := map[string]RandomizationPoint{}
	for _, p := range res.Points {
		byKey[p.Policy+"/"+p.Linker] = p
		if p.Links == nil {
			t.Fatalf("%s/%s: no link report", p.Policy, p.Linker)
		}
	}
	blind, relinked := byKey["per-scan/mac"], byKey["per-scan/composite"]
	// Per-scan rotation inflates the attacker's client count and degrades
	// the hit rate while the attacker is blind to it.
	if blind.MACsSeen <= 2*res.BaselineSeen {
		t.Errorf("per-scan MACs seen = %d, want ≫ baseline %d", blind.MACsSeen, res.BaselineSeen)
	}
	if got, base := blind.Tally.BroadcastHitRate(), res.Baseline.BroadcastHitRate(); got >= base {
		t.Errorf("blind per-scan h_b = %.3f, want < baseline %.3f", got, base)
	}
	// The composed linker re-links most rotated MACs and recovers hit rate.
	if relinked.Links.Recall < 0.5 || relinked.Links.Precision < 0.5 {
		t.Errorf("composite re-link P=%.2f R=%.2f, want both ≥ 0.5",
			relinked.Links.Precision, relinked.Links.Recall)
	}
	if got, blindRate := relinked.Tally.BroadcastHitRate(), blind.Tally.BroadcastHitRate(); got <= blindRate {
		t.Errorf("re-linked h_b = %.3f, want > blind %.3f", got, blindRate)
	}
	if !strings.Contains(res.String(), "per-scan") {
		t.Error("String lacks the per-scan line")
	}
}

func TestRobustnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs")
	}
	res, err := Robustness(context.Background(), testWorld(t), quickOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 3 || res.Canteen.N != 3 || res.Passage.N != 3 {
		t.Fatalf("replica counts: %+v", res)
	}
	if res.Canteen.Mean <= res.Passage.Mean {
		t.Errorf("canteen mean %.3f not above passage %.3f", res.Canteen.Mean, res.Passage.Mean)
	}
	if res.CanteenLo >= res.CanteenHi || res.PassageLo >= res.PassageHi {
		t.Error("degenerate Wilson intervals")
	}
	if !strings.Contains(res.String(), "Robustness") {
		t.Error("String lacks title")
	}
}

func TestSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve runs")
	}
	res, err := Sensitivity(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 4 {
		t.Fatalf("sweeps = %d", len(res.Sweeps))
	}
	for _, s := range res.Sweeps {
		if len(s.Points) != 3 {
			t.Errorf("%s: %d points", s.Knob, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Tally.Total == 0 {
				t.Errorf("%s/%s: empty crowd", s.Knob, p.Label)
			}
		}
	}
	// The strongest, least noisy trend: starving the reply budget hurts.
	for _, s := range res.Sweeps {
		if s.Knob != "reply budget" {
			continue
		}
		first := s.Points[0].Tally.BroadcastHitRate()
		last := s.Points[len(s.Points)-1].Tally.BroadcastHitRate()
		if first >= last {
			t.Errorf("10-SSID budget h_b %.3f not below 40-SSID budget %.3f", first, last)
		}
	}
	if !strings.Contains(res.String(), "Sensitivity") {
		t.Error("String lacks title")
	}
}

func TestMultiSiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("nine deployments")
	}
	res, err := MultiSite(context.Background(), testWorld(t), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Venues) != 4 {
		t.Fatalf("venues = %d", len(res.Venues))
	}
	if len(res.Planes) != 3 {
		t.Fatalf("planes = %d", len(res.Planes))
	}
	for _, p := range res.Planes {
		if p.Tally.Total == 0 {
			t.Errorf("%s: empty city crowd", p.Plane)
		}
		if len(p.SiteTallies) != 4 {
			t.Errorf("%s: %d site tallies", p.Plane, len(p.SiteTallies))
		}
		siteTotal := 0
		for _, st := range p.SiteTallies {
			siteTotal += st.Total
		}
		if siteTotal != p.Tally.Total {
			t.Errorf("%s: site totals %d != pooled %d", p.Plane, siteTotal, p.Tally.Total)
		}
	}
	// The shared-beats-isolated inequality needs full-length runs for
	// roams to complete (asserted in scenario.TestSharedKnowledgeBeats-
	// Isolated); here just require the pair crowds to exist.
	if res.PairSeeds != 3 || res.PairIsolated.Total == 0 || res.PairShared.Total == 0 {
		t.Errorf("pair pools degenerate: %d seeds, isolated %+v, shared %+v",
			res.PairSeeds, res.PairIsolated, res.PairShared)
	}
	if !strings.Contains(res.String(), "Multi-site") {
		t.Error("String lacks title")
	}
}

func TestCityScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("thousands of far-field pedestrians")
	}
	// ArrivalScale 0.05 shrinks the far-field crowd to 5k pedestrians; the
	// 30-minute slot is long enough for cross-city walks to reach the
	// attacked districts.
	opts := Options{SlotDuration: 30 * time.Minute, ArrivalScale: 0.05}
	res, err := CityScale(context.Background(), testWorld(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pedestrians != 5000 {
		t.Errorf("pedestrians = %d, want 5000 at scale 0.05", res.Pedestrians)
	}
	if res.Districts < 12 {
		t.Errorf("districts = %d, want the dozen-district city", res.Districts)
	}
	if len(res.SiteNames) != 3 || len(res.FarField.Sites) != 3 {
		t.Fatalf("sites = %d names / %d accounted, want 3", len(res.SiteNames), len(res.FarField.Sites))
	}
	ff := res.FarField
	if ff.Pedestrians != res.Pedestrians {
		t.Errorf("far-field accounted %d pedestrians, result says %d", ff.Pedestrians, res.Pedestrians)
	}
	if ff.Promoted == 0 {
		t.Error("no pedestrian ever promoted in a 30-minute city run")
	}
	if ff.Promotions < ff.Promoted || ff.PeakPromoted > ff.Promoted {
		t.Errorf("inconsistent counters: promoted %d, promotions %d, peak %d",
			ff.Promoted, ff.Promotions, ff.PeakPromoted)
	}
	sitePromos := 0
	for _, s := range ff.Sites {
		sitePromos += s.Promotions
	}
	if sitePromos != ff.Promotions {
		t.Errorf("site promotions sum %d != total %d", sitePromos, ff.Promotions)
	}
	// The classic venue tier still runs under the far field.
	if res.VenueTally.Total == 0 {
		t.Error("venue crowds empty")
	}
	if !strings.Contains(res.String(), "City scale") {
		t.Error("String lacks title")
	}
}

func TestGridParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two grids")
	}
	w := testWorld(t)
	opts := Options{SlotDuration: 90 * time.Second, ArrivalScale: 0.4}
	serialOpts := opts
	serialOpts.Pool.Workers = 1
	parallelOpts := opts
	parallelOpts.Pool.Workers = 4

	serial, err := Grid(context.Background(), w, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Grid(context.Background(), w, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, venue := range serial.Venues {
		for i := range serial.Slots[venue] {
			if serial.Slots[venue][i].Tally != parallel.Slots[venue][i].Tally {
				t.Fatalf("%s slot %d differs between serial and parallel runs", venue, i)
			}
		}
	}
}
