package experiments

import (
	"fmt"
	"strings"

	"cityhunter"
	"cityhunter/internal/stats"
)

// RobustnessResult replicates the headline h_b measurement across several
// run seeds and reports the replication band with a Wilson interval from
// the pooled counts — the sanity check that the paper's bands are not a
// single lucky draw.
type RobustnessResult struct {
	Replicas int
	Canteen  stats.RateSummary
	Passage  stats.RateSummary
	// Pooled Wilson 95 % intervals over all replicas' clients.
	CanteenLo, CanteenHi float64
	PassageLo, PassageHi float64
}

// String renders the replication report.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — City-Hunter h_b across %d seeds (30-min runs)\n", r.Replicas)
	fmt.Fprintf(&b, "canteen:  %v  pooled 95%% CI [%.1f%%, %.1f%%]  (paper 15.9-17.9%%)\n",
		r.Canteen, 100*r.CanteenLo, 100*r.CanteenHi)
	fmt.Fprintf(&b, "passage:  %v  pooled 95%% CI [%.1f%%, %.1f%%]  (paper ≈12%%)\n",
		r.Passage, 100*r.PassageLo, 100*r.PassageHi)
	return b.String()
}

// Robustness runs the canteen and passage deployments across replicas
// seeds. replicas ≤ 0 selects 5.
func Robustness(w *cityhunter.World, o Options, replicas int) (*RobustnessResult, error) {
	if replicas <= 0 {
		replicas = 5
	}
	res := &RobustnessResult{Replicas: replicas}

	var canteenRates, passageRates []float64
	var cHit, cN, pHit, pN int
	for i := 0; i < replicas; i++ {
		canteen, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, o.tableDuration(),
			o.runOpts(w, int64(200+2*i))...)
		if err != nil {
			return nil, fmt.Errorf("robustness canteen %d: %w", i, err)
		}
		canteenRates = append(canteenRates, canteen.Tally.BroadcastHitRate())
		cHit += canteen.Tally.ConnectedBroadcast
		cN += canteen.Tally.Broadcast

		passage, err := w.Run(cityhunter.PassageVenue(), cityhunter.CityHunter,
			cityhunter.MorningRushSlot, o.tableDuration(),
			o.runOpts(w, int64(201+2*i))...)
		if err != nil {
			return nil, fmt.Errorf("robustness passage %d: %w", i, err)
		}
		passageRates = append(passageRates, passage.Tally.BroadcastHitRate())
		pHit += passage.Tally.ConnectedBroadcast
		pN += passage.Tally.Broadcast
	}
	res.Canteen = stats.SummarizeRates(canteenRates)
	res.Passage = stats.SummarizeRates(passageRates)
	res.CanteenLo, res.CanteenHi = stats.WilsonInterval(cHit, cN)
	res.PassageLo, res.PassageHi = stats.WilsonInterval(pHit, pN)
	return res, nil
}
