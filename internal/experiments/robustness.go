package experiments

import (
	"context"
	"fmt"
	"strings"

	"cityhunter"
	"cityhunter/internal/stats"
)

// RobustnessResult replicates the headline h_b measurement across several
// run seeds and reports the replication band with a Wilson interval from
// the pooled counts — the sanity check that the paper's bands are not a
// single lucky draw.
type RobustnessResult struct {
	Replicas int
	Canteen  stats.RateSummary
	Passage  stats.RateSummary
	// Pooled Wilson 95 % intervals over all replicas' clients.
	CanteenLo, CanteenHi float64
	PassageLo, PassageHi float64
}

// String renders the replication report.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness — City-Hunter h_b across %d seeds (30-min runs)\n", r.Replicas)
	fmt.Fprintf(&b, "canteen:  %v  pooled 95%% CI [%.1f%%, %.1f%%]  (paper 15.9-17.9%%)\n",
		r.Canteen, 100*r.CanteenLo, 100*r.CanteenHi)
	fmt.Fprintf(&b, "passage:  %v  pooled 95%% CI [%.1f%%, %.1f%%]  (paper ≈12%%)\n",
		r.Passage, 100*r.PassageLo, 100*r.PassageHi)
	return b.String()
}

// Robustness runs the canteen and passage deployments across replicas
// seeds through the campaign runner. replicas ≤ 0 selects 5.
func Robustness(ctx context.Context, w *cityhunter.World, o Options, replicas int) (*RobustnessResult, error) {
	if replicas <= 0 {
		replicas = 5
	}
	res := &RobustnessResult{Replicas: replicas}

	// Specs interleave canteen/passage per replica; the per-replica seed
	// offsets (200+2i, 201+2i) predate the campaign runner and are kept so
	// seed-1 numbers stay identical.
	var specs []cityhunter.RunSpec
	for i := 0; i < replicas; i++ {
		specs = append(specs,
			o.spec(w, fmt.Sprintf("robustness canteen %d", i),
				cityhunter.CanteenVenue(), cityhunter.CityHunter,
				cityhunter.LunchSlot, o.tableDuration(), int64(200+2*i)),
			o.spec(w, fmt.Sprintf("robustness passage %d", i),
				cityhunter.PassageVenue(), cityhunter.CityHunter,
				cityhunter.MorningRushSlot, o.tableDuration(), int64(201+2*i)))
	}
	out, err := o.campaign(ctx, w, specs)
	if err != nil {
		return nil, fmt.Errorf("robustness: %w", err)
	}

	var canteenRates, passageRates []float64
	var cHit, cN, pHit, pN int
	for i := 0; i < replicas; i++ {
		canteen, passage := out.Results[2*i], out.Results[2*i+1]
		canteenRates = append(canteenRates, canteen.Tally.BroadcastHitRate())
		cHit += canteen.Tally.ConnectedBroadcast
		cN += canteen.Tally.Broadcast
		passageRates = append(passageRates, passage.Tally.BroadcastHitRate())
		pHit += passage.Tally.ConnectedBroadcast
		pN += passage.Tally.Broadcast
	}
	res.Canteen = stats.SummarizeRates(canteenRates)
	res.Passage = stats.SummarizeRates(passageRates)
	res.CanteenLo, res.CanteenHi = stats.WilsonInterval(cHit, cN)
	res.PassageLo, res.PassageHi = stats.WilsonInterval(pHit, pN)
	return res, nil
}
