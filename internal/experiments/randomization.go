package experiments

import (
	"context"
	"fmt"
	"strings"

	"cityhunter"
)

// RandomizationPoint is one (rotation policy, linker) measurement.
type RandomizationPoint struct {
	// Policy and Linker name the condition ("per-scan" × "composite").
	Policy string
	Linker string
	// Tally is the ground-truth hit accounting.
	Tally cityhunter.Tally
	// MACsSeen is how many distinct clients the attacker believed it saw
	// (inflated by rotation, deflated back by a working linker).
	MACsSeen int
	// Links grades the linker's re-identification against ground truth.
	Links *cityhunter.LinkReport
}

// RandomizationResult measures MAC randomization as a countermeasure and
// the de-anonymisation linker as the counter-counter-measure, against the
// full City-Hunter.
type RandomizationResult struct {
	// Baseline is the stable-MAC crowd.
	Baseline cityhunter.Tally
	// BaselineSeen is the attacker's client count for the baseline.
	BaselineSeen int
	// Points sweeps rotation policies, each with the identity linker
	// (the attacker is blind to rotation) and with the composite
	// seq+fingerprint+PNL linker.
	Points []RandomizationPoint
}

// String renders the randomization report.
func (r *RandomizationResult) String() string {
	var b strings.Builder
	b.WriteString("MAC randomization vs de-anonymisation — City-Hunter (canteen, 30 min)\n")
	fmt.Fprintf(&b, "stable MACs:                        h_b = %5.1f%%  (%d clients seen)\n",
		pct(r.Baseline.BroadcastHitRate()), r.BaselineSeen)
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s x %-11s linker:     h_b = %5.1f%%  (%d MACs seen",
			p.Policy, p.Linker, pct(p.Tally.BroadcastHitRate()), p.MACsSeen)
		if p.Links != nil {
			fmt.Fprintf(&b, ", %d tracks, re-link P=%.2f R=%.2f", p.Links.Tracks,
				p.Links.Precision, p.Links.Recall)
		}
		b.WriteString(")\n")
	}
	b.WriteString("rotation shatters the per-client rotation state; linking repairs part of it\n")
	return b.String()
}

// Randomization runs the identity/observable-split experiment: every phone
// rotates its MAC under each policy, first against an attacker blind to
// rotation (identity MAC linker), then against the composed
// sequence+fingerprint+PNL linker. Every run reuses seed offset 90, so
// each condition faces the same crowd.
func Randomization(ctx context.Context, w *cityhunter.World, o Options) (*RandomizationResult, error) {
	canteen := cityhunter.CanteenVenue()
	policies := []struct {
		name   string
		policy cityhunter.RandomizationPolicy
	}{
		{"per-scan", cityhunter.RandomizePerScan},
		{"per-burst", cityhunter.RandomizePerBurst},
		{"timed", cityhunter.RandomizeTimed},
	}
	linkers := []struct {
		name string
		kind cityhunter.LinkerKind
	}{
		{"mac", cityhunter.LinkerMAC},
		{"composite", cityhunter.LinkerComposite},
	}
	spec := func(name string, extra ...cityhunter.RunOption) cityhunter.RunSpec {
		return o.spec(w, name, canteen, cityhunter.CityHunter,
			cityhunter.LunchSlot, o.tableDuration(), 90, extra...)
	}
	specs := []cityhunter.RunSpec{spec("randomization baseline")}
	for _, p := range policies {
		for _, l := range linkers {
			specs = append(specs, spec(
				fmt.Sprintf("randomization %s/%s", p.name, l.name),
				cityhunter.WithMACRandomization(1.0, p.policy),
				cityhunter.WithLinker(l.kind)))
		}
	}

	out, err := o.campaign(ctx, w, specs)
	if err != nil {
		return nil, fmt.Errorf("randomization: %w", err)
	}

	res := &RandomizationResult{
		Baseline:     out.Results[0].Tally,
		BaselineSeen: out.Results[0].Report.TotalClients,
	}
	i := 1
	for _, p := range policies {
		for _, l := range linkers {
			r := out.Results[i]
			i++
			res.Points = append(res.Points, RandomizationPoint{
				Policy:   p.name,
				Linker:   l.name,
				Tally:    r.Tally,
				MACsSeen: r.Report.TotalClients,
				Links:    r.Links,
			})
		}
	}
	return res, nil
}
