package experiments

import (
	"context"
	"fmt"
	"strings"

	"cityhunter"
	"cityhunter/internal/core"
)

// ExtensionsResult reproduces the §V-B improvements: the deauthentication
// attack against already-connected phones, and carrier-SSID seeding for
// provisioned (iOS-like) phones.
type ExtensionsResult struct {
	// Deauth compares a crowd where half the phones arrive connected to
	// the venue AP, with the extension off and on.
	DeauthOff cityhunter.Tally
	DeauthOn  cityhunter.Tally
	// Carrier compares default seeding against seeding the carrier SSIDs
	// (which neither WiGLE nor directed probes can reveal).
	CarrierOff     cityhunter.Tally
	CarrierOn      cityhunter.Tally
	CarrierHits    int
	CarrierOffHits int
}

// String renders both comparisons.
func (r *ExtensionsResult) String() string {
	var b strings.Builder
	b.WriteString("§V-B extensions — deauthentication and carrier-SSID seeding (canteen, 30 min)\n")
	fmt.Fprintf(&b, "deauth off (50%% preconnected): %v\n", r.DeauthOff)
	fmt.Fprintf(&b, "deauth on  (50%% preconnected): %v\n", r.DeauthOn)
	b.WriteString("paper: deauthentication forces connected clients to rescan, exposing them\n")
	fmt.Fprintf(&b, "carrier seeding off: %v  (carrier-SSID hits: %d)\n", r.CarrierOff, r.CarrierOffHits)
	fmt.Fprintf(&b, "carrier seeding on : %v  (carrier-SSID hits: %d)\n", r.CarrierOn, r.CarrierHits)
	b.WriteString("paper: provisioned SSIDs like PCCW1x lure subscribers and cannot be learnt\n")
	b.WriteString("       from WiGLE or directed probes\n")
	return b.String()
}

// Extensions runs the four §V-B comparisons.
func Extensions(ctx context.Context, w *cityhunter.World, o Options) (*ExtensionsResult, error) {
	res := &ExtensionsResult{}

	off, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunter, cityhunter.LunchSlot,
		o.tableDuration(), o.runOpts(w, 60, cityhunter.WithPreconnected(0.5))...)
	if err != nil {
		return nil, fmt.Errorf("extensions deauth-off: %w", err)
	}
	res.DeauthOff = off.Tally

	on, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunter, cityhunter.LunchSlot,
		o.tableDuration(), o.runOpts(w, 60, cityhunter.WithDeauth(0.5))...)
	if err != nil {
		return nil, fmt.Errorf("extensions deauth-on: %w", err)
	}
	res.DeauthOn = on.Tally

	coff, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunter, cityhunter.LunchSlot,
		o.tableDuration(), o.runOpts(w, 61)...)
	if err != nil {
		return nil, fmt.Errorf("extensions carrier-off: %w", err)
	}
	res.CarrierOff = coff.Tally
	res.CarrierOffHits = carrierHits(coff)

	ccfg := core.DefaultConfig(core.ModeFull)
	ccfg.CarrierSSIDs = w.PNL.CarrierSSIDs()
	con, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunter, cityhunter.LunchSlot,
		o.tableDuration(), o.runOpts(w, 61, cityhunter.WithCoreConfig(ccfg))...)
	if err != nil {
		return nil, fmt.Errorf("extensions carrier-on: %w", err)
	}
	res.CarrierOn = con.Tally
	res.CarrierHits = carrierHits(con)
	return res, nil
}

func carrierHits(r *cityhunter.Result) int {
	if r.Engine == nil {
		return 0
	}
	n := 0
	for _, h := range r.Engine.Hits() {
		if h.Source == core.SourceCarrier {
			n++
		}
	}
	return n
}

// AblationVariant is one design knob being toggled.
type AblationVariant struct {
	Name           string
	CanteenHb      float64
	PassageHb      float64
	CanteenVictims int
	PassageVictims int
}

// AblationResult measures how much each design choice contributes: the
// untried rotation (§III-A), the WiGLE seeding (§III-B), the freshness
// buffer, and the adaptive size balancing (§IV-C).
type AblationResult struct {
	Variants []AblationVariant
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — broadcast hit rate per disabled design choice\n")
	fmt.Fprintf(&b, "%-32s %10s %10s\n", "variant", "canteen", "passage")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, "%-32s %9.1f%% %9.1f%%\n", v.Name, pct(v.CanteenHb), pct(v.PassageHb))
	}
	return b.String()
}

// Ablation runs every variant in the canteen and the passage.
func Ablation(ctx context.Context, w *cityhunter.World, o Options) (*AblationResult, error) {
	full := core.DefaultConfig(core.ModeFull)

	noRotate := full
	noRotate.RotateUntried = false

	fixed := full
	fixed.DisableAdaptation = true

	fixedSkewed := full
	fixedSkewed.DisableAdaptation = true
	fixedSkewed.InitialFreshness = 2

	noWigle := full
	noWigle.TopCityWide = 0
	noWigle.NearbyCount = 0

	arcStyle := full
	arcStyle.ProportionalAdaptation = true

	prelim := core.DefaultConfig(core.ModePreliminary)

	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"full City-Hunter", full},
		{"no untried rotation (MANA-like)", noRotate},
		{"no WiGLE seeding (harvest only)", noWigle},
		{"no freshness buffer (prelim)", prelim},
		{"fixed buffers (no adaptation)", fixed},
		{"fixed buffers 34/2 split", fixedSkewed},
		{"ARC-proportional adaptation", arcStyle},
	}

	res := &AblationResult{}
	for i, v := range variants {
		canteen, err := w.RunContext(ctx, cityhunter.CanteenVenue(), kindFor(v.cfg), cityhunter.LunchSlot,
			o.tableDuration(), o.runOpts(w, int64(70+i), cityhunter.WithCoreConfig(v.cfg))...)
		if err != nil {
			return nil, fmt.Errorf("ablation %s canteen: %w", v.name, err)
		}
		passage, err := w.RunContext(ctx, cityhunter.PassageVenue(), kindFor(v.cfg), cityhunter.MorningRushSlot,
			o.tableDuration(), o.runOpts(w, int64(70+i), cityhunter.WithCoreConfig(v.cfg))...)
		if err != nil {
			return nil, fmt.Errorf("ablation %s passage: %w", v.name, err)
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name:           v.name,
			CanteenHb:      canteen.Tally.BroadcastHitRate(),
			PassageHb:      passage.Tally.BroadcastHitRate(),
			CanteenVictims: canteen.Tally.ConnectedBroadcast,
			PassageVictims: passage.Tally.ConnectedBroadcast,
		})
	}
	return res, nil
}

// kindFor maps an engine config to the scenario attack kind that carries
// it (the scenario only checks the mode).
func kindFor(cfg core.Config) cityhunter.AttackKind {
	if cfg.Mode == core.ModePreliminary {
		return cityhunter.CityHunterPreliminary
	}
	return cityhunter.CityHunter
}
