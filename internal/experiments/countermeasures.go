package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cityhunter"
)

// CountermeasuresResult measures the defences the paper's conclusion
// endorses, deployed against the full City-Hunter.
type CountermeasuresResult struct {
	// Baseline is the undefended crowd.
	Baseline cityhunter.Tally
	// CanaryShares maps defended-population share to its tally.
	CanaryShares []CanaryPoint
	// RandomizedMACs is the tally with every phone rotating its probe MAC
	// per scan (the modern OS default); RandomizedMACsSeen is how many
	// distinct "clients" the attacker thought it saw.
	RandomizedMACs     cityhunter.Tally
	RandomizedMACsSeen int
	// CautiousVsCanaries is the arms-race round: the attacker answers
	// directed probes only for SSIDs it already knows, so canary probes
	// draw no response. Measured against a fully canary-armed crowd.
	CautiousVsCanaries           cityhunter.Tally
	CautiousVsCanariesUnmaskings int
	// SentinelFlaggedAttacker reports whether the passive detector
	// identified the attacker, and how fast.
	SentinelFlaggedAttacker bool
	SentinelDetectionTime   time.Duration
	SentinelSSIDsSeen       int
}

// CanaryPoint is one defended-share measurement.
type CanaryPoint struct {
	Share      float64
	Tally      cityhunter.Tally
	Detections int
}

// String renders the countermeasure report.
func (r *CountermeasuresResult) String() string {
	var b strings.Builder
	b.WriteString("Countermeasures (§VI) — evil-twin detection vs City-Hunter (canteen, 30 min)\n")
	fmt.Fprintf(&b, "undefended:            h_b = %5.1f%%  (%v)\n",
		pct(r.Baseline.BroadcastHitRate()), r.Baseline)
	for _, p := range r.CanaryShares {
		fmt.Fprintf(&b, "canary clients %3.0f%%:    h_b = %5.1f%%  (%d unmaskings)\n",
			100*p.Share, pct(p.Tally.BroadcastHitRate()), p.Detections)
	}
	fmt.Fprintf(&b, "randomized MACs 100%%:   h_b = %5.1f%% ground truth; the attacker believed it saw %d clients\n",
		pct(r.RandomizedMACs.BroadcastHitRate()), r.RandomizedMACsSeen)
	fmt.Fprintf(&b, "arms race — cautious mirror vs 100%% canaries: h_b = %5.1f%% (%d unmaskings)\n",
		pct(r.CautiousVsCanaries.BroadcastHitRate()), r.CautiousVsCanariesUnmaskings)
	if r.SentinelFlaggedAttacker {
		fmt.Fprintf(&b, "passive sentinel flagged the attacker after %v (%d lure SSIDs observed)\n",
			r.SentinelDetectionTime.Truncate(time.Millisecond), r.SentinelSSIDsSeen)
	} else {
		b.WriteString("passive sentinel did NOT flag the attacker\n")
	}
	b.WriteString("paper: existing evil-twin detection still works against City-Hunter\n")
	return b.String()
}

// Countermeasures runs the defence experiments — a canary-probing share
// sweep, MAC randomization, the cautious-mirror arms race, and a passive
// sentinel deployment — as one six-run campaign. Every run reuses seed
// offset 80, so each defence faces the same crowd as the baseline.
func Countermeasures(ctx context.Context, w *cityhunter.World, o Options) (*CountermeasuresResult, error) {
	canteen := cityhunter.CanteenVenue()
	canarySharePoints := []float64{0.25, 0.5, 1.0}
	spec := func(name string, extra ...cityhunter.RunOption) cityhunter.RunSpec {
		return o.spec(w, name, canteen, cityhunter.CityHunter,
			cityhunter.LunchSlot, o.tableDuration(), 80, extra...)
	}
	specs := []cityhunter.RunSpec{
		spec("countermeasures baseline", cityhunter.WithSentinel()),
	}
	for _, share := range canarySharePoints {
		specs = append(specs, spec(
			fmt.Sprintf("countermeasures canary %.0f%%", 100*share),
			cityhunter.WithCanaryClients(share)))
	}
	specs = append(specs,
		spec("countermeasures randomized MACs", cityhunter.WithRandomizedMACs(1.0)),
		spec("countermeasures arms race",
			cityhunter.WithCanaryClients(1.0), cityhunter.WithCautiousMirror()))

	out, err := o.campaign(ctx, w, specs)
	if err != nil {
		return nil, fmt.Errorf("countermeasures: %w", err)
	}

	res := &CountermeasuresResult{}
	base := out.Results[0]
	res.Baseline = base.Tally
	if base.Sentinel != nil {
		findings := base.Sentinel.Findings()
		if len(findings) > 0 {
			res.SentinelFlaggedAttacker = true
			res.SentinelDetectionTime = findings[0].FlaggedAt
			res.SentinelSSIDsSeen = base.Sentinel.SSIDCount(findings[0].BSSID)
		}
	}
	for i, share := range canarySharePoints {
		r := out.Results[1+i]
		res.CanaryShares = append(res.CanaryShares, CanaryPoint{
			Share:      share,
			Tally:      r.Tally,
			Detections: r.CanaryDetections,
		})
	}
	rnd := out.Results[1+len(canarySharePoints)]
	res.RandomizedMACs = rnd.Tally
	res.RandomizedMACsSeen = rnd.Report.TotalClients
	arms := out.Results[2+len(canarySharePoints)]
	res.CautiousVsCanaries = arms.Tally
	res.CautiousVsCanariesUnmaskings = arms.CanaryDetections
	return res, nil
}
