package experiments

import (
	"fmt"
	"strings"
	"time"

	"cityhunter"
)

// CountermeasuresResult measures the defences the paper's conclusion
// endorses, deployed against the full City-Hunter.
type CountermeasuresResult struct {
	// Baseline is the undefended crowd.
	Baseline cityhunter.Tally
	// CanaryShares maps defended-population share to its tally.
	CanaryShares []CanaryPoint
	// RandomizedMACs is the tally with every phone rotating its probe MAC
	// per scan (the modern OS default); RandomizedMACsSeen is how many
	// distinct "clients" the attacker thought it saw.
	RandomizedMACs     cityhunter.Tally
	RandomizedMACsSeen int
	// CautiousVsCanaries is the arms-race round: the attacker answers
	// directed probes only for SSIDs it already knows, so canary probes
	// draw no response. Measured against a fully canary-armed crowd.
	CautiousVsCanaries           cityhunter.Tally
	CautiousVsCanariesUnmaskings int
	// SentinelFlaggedAttacker reports whether the passive detector
	// identified the attacker, and how fast.
	SentinelFlaggedAttacker bool
	SentinelDetectionTime   time.Duration
	SentinelSSIDsSeen       int
}

// CanaryPoint is one defended-share measurement.
type CanaryPoint struct {
	Share      float64
	Tally      cityhunter.Tally
	Detections int
}

// String renders the countermeasure report.
func (r *CountermeasuresResult) String() string {
	var b strings.Builder
	b.WriteString("Countermeasures (§VI) — evil-twin detection vs City-Hunter (canteen, 30 min)\n")
	fmt.Fprintf(&b, "undefended:            h_b = %5.1f%%  (%v)\n",
		pct(r.Baseline.BroadcastHitRate()), r.Baseline)
	for _, p := range r.CanaryShares {
		fmt.Fprintf(&b, "canary clients %3.0f%%:    h_b = %5.1f%%  (%d unmaskings)\n",
			100*p.Share, pct(p.Tally.BroadcastHitRate()), p.Detections)
	}
	fmt.Fprintf(&b, "randomized MACs 100%%:   h_b = %5.1f%% ground truth; the attacker believed it saw %d clients\n",
		pct(r.RandomizedMACs.BroadcastHitRate()), r.RandomizedMACsSeen)
	fmt.Fprintf(&b, "arms race — cautious mirror vs 100%% canaries: h_b = %5.1f%% (%d unmaskings)\n",
		pct(r.CautiousVsCanaries.BroadcastHitRate()), r.CautiousVsCanariesUnmaskings)
	if r.SentinelFlaggedAttacker {
		fmt.Fprintf(&b, "passive sentinel flagged the attacker after %v (%d lure SSIDs observed)\n",
			r.SentinelDetectionTime.Truncate(time.Millisecond), r.SentinelSSIDsSeen)
	} else {
		b.WriteString("passive sentinel did NOT flag the attacker\n")
	}
	b.WriteString("paper: existing evil-twin detection still works against City-Hunter\n")
	return b.String()
}

// Countermeasures runs the defence experiments: a canary-probing share
// sweep, and a passive sentinel deployment.
func Countermeasures(w *cityhunter.World, o Options) (*CountermeasuresResult, error) {
	res := &CountermeasuresResult{}

	base, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, o.tableDuration(),
		o.runOpts(w, 80, cityhunter.WithSentinel())...)
	if err != nil {
		return nil, fmt.Errorf("countermeasures baseline: %w", err)
	}
	res.Baseline = base.Tally
	if base.Sentinel != nil {
		findings := base.Sentinel.Findings()
		if len(findings) > 0 {
			res.SentinelFlaggedAttacker = true
			res.SentinelDetectionTime = findings[0].FlaggedAt
			res.SentinelSSIDsSeen = base.Sentinel.SSIDCount(findings[0].BSSID)
		}
	}

	for i, share := range []float64{0.25, 0.5, 1.0} {
		r, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
			cityhunter.LunchSlot, o.tableDuration(),
			o.runOpts(w, 80, cityhunter.WithCanaryClients(share))...)
		if err != nil {
			return nil, fmt.Errorf("countermeasures canary %d: %w", i, err)
		}
		res.CanaryShares = append(res.CanaryShares, CanaryPoint{
			Share:      share,
			Tally:      r.Tally,
			Detections: r.CanaryDetections,
		})
	}
	rnd, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, o.tableDuration(),
		o.runOpts(w, 80, cityhunter.WithRandomizedMACs(1.0))...)
	if err != nil {
		return nil, fmt.Errorf("countermeasures randomized MACs: %w", err)
	}
	res.RandomizedMACs = rnd.Tally
	res.RandomizedMACsSeen = rnd.Report.TotalClients

	arms, err := w.Run(cityhunter.CanteenVenue(), cityhunter.CityHunter,
		cityhunter.LunchSlot, o.tableDuration(),
		o.runOpts(w, 80, cityhunter.WithCanaryClients(1.0), cityhunter.WithCautiousMirror())...)
	if err != nil {
		return nil, fmt.Errorf("countermeasures arms race: %w", err)
	}
	res.CautiousVsCanaries = arms.Tally
	res.CautiousVsCanariesUnmaskings = arms.CanaryDetections
	return res, nil
}
