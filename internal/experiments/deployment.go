package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cityhunter"
)

// MultiSiteResult measures the repository's city-scale extension: several
// attacker sites deployed in one city, phones roaming between them, and a
// knowledge plane joining the hunters' databases. The paper deploys its four
// venues one at a time (§V); this experiment hunts them simultaneously and
// asks how much sharing the City-Hunter database across sites is worth.
type MultiSiteResult struct {
	// Venues names the deployed sites in order.
	Venues []string
	// Planes holds one city-wide deployment per knowledge plane.
	Planes []MultiSitePoint
	// PairIsolated/PairShared pool the canteen+passage two-site
	// deployment over PairSeeds seeds under each plane — the same crowd
	// hunted by independent sites versus one shared database.
	PairIsolated cityhunter.Tally
	PairShared   cityhunter.Tally
	PairSeeds    int
}

// MultiSitePoint is one knowledge plane's city-wide measurement.
type MultiSitePoint struct {
	Plane string
	// Tally pools every phone across the four sites.
	Tally cityhunter.Tally
	// Roams counts completed inter-site walks.
	Roams int
	// SiteTallies breaks the pool down per site, in Venues order.
	SiteTallies []cityhunter.Tally
}

// String renders the multi-site report.
func (r *MultiSiteResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-site deployment (extension) — hunting the paper's four venues at once\n")
	for _, p := range r.Planes {
		fmt.Fprintf(&b, "%-13s pooled h_b = %5.1f%%  (%d roams; %v)\n",
			p.Plane+":", pct(p.Tally.BroadcastHitRate()), p.Roams, p.Tally)
		for i, st := range p.SiteTallies {
			fmt.Fprintf(&b, "    %-18s h_b = %5.1f%%  (%d phones)\n",
				r.Venues[i], pct(st.BroadcastHitRate()), st.Total)
		}
	}
	fmt.Fprintf(&b, "canteen+passage over %d seeds — isolated: %d/%d broadcast captures, shared: %d/%d\n",
		r.PairSeeds,
		r.PairIsolated.ConnectedBroadcast, r.PairIsolated.Broadcast,
		r.PairShared.ConnectedBroadcast, r.PairShared.Broadcast)
	if r.PairShared.ConnectedBroadcast > r.PairIsolated.ConnectedBroadcast {
		b.WriteString("shared knowledge beats isolated sites: a roamed phone gets fresh SSIDs, not repeats\n")
	} else {
		b.WriteString("shared knowledge did not beat isolated sites at this scale (roams need time to complete)\n")
	}
	return b.String()
}

// multiSiteRoam is the roaming probability every deployment here uses.
const multiSiteRoam = 0.5

// MultiSite runs the city-scale deployment comparison. The four paper
// venues are hunted simultaneously for an hour-long lunch slot under each
// knowledge plane, then the canteen+passage pair is replayed over several
// seeds to isolate the shared-database gain on the same crowds. Roaming
// phones walk real inter-venue distances (the passage and railway station
// are a minute apart; the canteen is a 26-minute walk), so short
// SlotDurations complete few roams and the planes converge.
func MultiSite(ctx context.Context, w *cityhunter.World, o Options) (*MultiSiteResult, error) {
	city := []cityhunter.Venue{
		cityhunter.PassageVenue(),
		cityhunter.CanteenVenue(),
		cityhunter.MallVenue(),
		cityhunter.StationVenue(),
	}
	res := &MultiSiteResult{}
	for _, v := range city {
		res.Venues = append(res.Venues, v.Name)
	}

	planes := []cityhunter.KnowledgePlane{
		cityhunter.Isolated, cityhunter.PeriodicSync, cityhunter.Shared,
	}
	for _, plane := range planes {
		dcfg := cityhunter.DeploymentConfig{
			Sites:        city,
			Knowledge:    plane,
			SyncEvery:    5 * time.Minute,
			RoamFraction: multiSiteRoam,
		}
		// Offset 90 for every plane: each plane hunts the same city crowd.
		dep, err := w.RunDeployment(ctx, dcfg, cityhunter.CityHunter,
			cityhunter.LunchSlot, o.slotDuration(), o.runOpts(w, 90)...)
		if err != nil {
			return nil, fmt.Errorf("multi-site %s: %w", plane, err)
		}
		point := MultiSitePoint{Plane: plane.String(), Tally: dep.Tally, Roams: dep.Roams}
		for _, site := range dep.Sites {
			point.SiteTallies = append(point.SiteTallies, site.Tally)
		}
		res.Planes = append(res.Planes, point)
	}

	pair := []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.PassageVenue()}
	res.PairSeeds = 3
	for i := 0; i < res.PairSeeds; i++ {
		opts := o.runOpts(w, 91+int64(i))
		for _, plane := range []cityhunter.KnowledgePlane{cityhunter.Isolated, cityhunter.Shared} {
			dcfg := cityhunter.DeploymentConfig{
				Sites:        pair,
				Knowledge:    plane,
				RoamFraction: multiSiteRoam,
			}
			dep, err := w.RunDeployment(ctx, dcfg, cityhunter.CityHunter,
				cityhunter.LunchSlot, o.slotDuration(), opts...)
			if err != nil {
				return nil, fmt.Errorf("multi-site pair %s seed %d: %w", plane, i, err)
			}
			if plane == cityhunter.Isolated {
				res.PairIsolated = addTally(res.PairIsolated, dep.Tally)
			} else {
				res.PairShared = addTally(res.PairShared, dep.Tally)
			}
		}
	}
	return res, nil
}

// addTally pools two tallies field-by-field.
func addTally(a, b cityhunter.Tally) cityhunter.Tally {
	a.Total += b.Total
	a.Direct += b.Direct
	a.Broadcast += b.Broadcast
	a.ConnectedDirect += b.ConnectedDirect
	a.ConnectedBroadcast += b.ConnectedBroadcast
	return a
}
