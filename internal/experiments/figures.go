package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cityhunter"
	"cityhunter/internal/stats"
)

// Figure1Point is one 2-minute sample of the MANA deployment: database
// size, cumulative broadcast victims, and the windowed hit rate h_b^r.
type Figure1Point struct {
	At        time.Duration
	DBSize    int
	Connected int
	WindowHbr float64
}

// Figure1Result reproduces Figure 1: the growth of MANA's database does
// not improve its real-time efficiency.
type Figure1Result struct {
	Duration time.Duration
	Points   []Figure1Point
}

// String renders the series.
func (r *Figure1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — MANA database size vs broadcast captures (canteen, %v)\n", r.Duration)
	fmt.Fprintf(&b, "%-8s %-8s %-10s %-8s\n", "t", "DB size", "connected", "h_b^r")
	var sizes, rates []float64
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %-8d %-10d %6.1f%%\n",
			p.At.Truncate(time.Second), p.DBSize, p.Connected, pct(p.WindowHbr))
		sizes = append(sizes, float64(p.DBSize))
		rates = append(rates, p.WindowHbr)
	}
	fmt.Fprintf(&b, "DB size  %s\n", sparkline(sizes))
	fmt.Fprintf(&b, "h_b^r    %s\n", sparkline(rates))
	b.WriteString("paper: both curves grow steadily but h_b^r shows no improving trend\n")
	return b.String()
}

// Figure1 runs MANA in the canteen with 2-minute sampling.
func Figure1(ctx context.Context, w *cityhunter.World, o Options) (*Figure1Result, error) {
	dur := o.tableDuration()
	r, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.MANA, cityhunter.LunchSlot, dur,
		o.runOpts(w, 30, cityhunter.WithSampling(2*time.Minute))...)
	if err != nil {
		return nil, fmt.Errorf("figure1: %w", err)
	}
	windows := stats.RealTimeBroadcastHitRate(r.Outcomes, 2*time.Minute, dur)
	res := &Figure1Result{Duration: dur}
	for _, s := range r.Mana.SizeSamples() {
		connected := 0
		for _, v := range r.Victims {
			if v.At <= s.At && !v.DirectProber {
				connected++
			}
		}
		p := Figure1Point{At: s.At, DBSize: s.Size, Connected: connected}
		if wi := int(s.At / (2 * time.Minute)); wi < len(windows) {
			p.WindowHbr = windows[wi].Rate()
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Figure2Result reproduces Figure 2: how many SSIDs were tried per client
// in the canteen (a) and the passage (b).
type Figure2Result struct {
	// CanteenMin/Mean/Max summarise SSIDs sent to *connected* canteen
	// clients (paper: range 20–250, mean ≈130).
	CanteenMin, CanteenMax int
	CanteenMean            float64
	CanteenVictims         int
	// PassageShares is the fraction of broadcast-probing passage clients
	// that received exactly k reply batches, i.e. k×40 SSIDs (paper:
	// ≈70 % saw 40, ≈22 % saw 80).
	PassageShares []BatchShare
}

// BatchShare is one bar of Figure 2b.
type BatchShare struct {
	// SSIDs is the bar's x value (40, 80, ...).
	SSIDs    int
	Clients  int
	Fraction float64
}

// String renders both panels.
func (r *Figure2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2a — SSIDs sent to each connected client (canteen)\n")
	fmt.Fprintf(&b, "victims=%d  min=%d  mean=%.0f  max=%d\n",
		r.CanteenVictims, r.CanteenMin, r.CanteenMean, r.CanteenMax)
	b.WriteString("paper: range 20-250, average 130\n")
	b.WriteString("Figure 2b — SSIDs tried per broadcast client (passage)\n")
	for _, share := range r.PassageShares {
		if share.Clients == 0 {
			continue
		}
		fmt.Fprintf(&b, "%4d %5.1f%%  (%d clients)\n", share.SSIDs, pct(share.Fraction), share.Clients)
	}
	b.WriteString("paper: ~70% of clients saw 40 SSIDs, ~22% saw 80\n")
	return b.String()
}

// Figure2 runs the two §III experiments with the preliminary design.
func Figure2(ctx context.Context, w *cityhunter.World, o Options) (*Figure2Result, error) {
	canteen, err := w.RunContext(ctx, cityhunter.CanteenVenue(), cityhunter.CityHunterPreliminary,
		cityhunter.LunchSlot, o.tableDuration(), o.runOpts(w, 40)...)
	if err != nil {
		return nil, fmt.Errorf("figure2: %w", err)
	}
	passage, err := w.RunContext(ctx, cityhunter.PassageVenue(), cityhunter.CityHunterPreliminary,
		cityhunter.MorningRushSlot, o.tableDuration(), o.runOpts(w, 41)...)
	if err != nil {
		return nil, fmt.Errorf("figure2: %w", err)
	}

	res := &Figure2Result{CanteenMin: -1}
	total := 0
	for _, out := range canteen.Outcomes {
		if !out.Connected {
			continue
		}
		res.CanteenVictims++
		total += out.SSIDsSent
		if res.CanteenMin < 0 || out.SSIDsSent < res.CanteenMin {
			res.CanteenMin = out.SSIDsSent
		}
		if out.SSIDsSent > res.CanteenMax {
			res.CanteenMax = out.SSIDsSent
		}
	}
	if res.CanteenVictims > 0 {
		res.CanteenMean = float64(total) / float64(res.CanteenVictims)
	} else {
		res.CanteenMin = 0
	}

	// Bin by the number of full 40-SSID reply batches received.
	counts := make(map[int]int)
	n := 0
	maxBatches := 0
	for _, out := range passage.Outcomes {
		if !out.Probed || out.DirectProber {
			continue
		}
		batches := (out.SSIDsSent + 39) / 40
		counts[batches]++
		n++
		if batches > maxBatches {
			maxBatches = batches
		}
	}
	for k := 0; k <= maxBatches; k++ {
		if n == 0 {
			break
		}
		res.PassageShares = append(res.PassageShares, BatchShare{
			SSIDs:    40 * k,
			Clients:  counts[k],
			Fraction: float64(counts[k]) / float64(n),
		})
	}
	return res, nil
}

// Figure4Cell is one hot cell of the heat map with the venue it contains.
type Figure4Cell struct {
	// Center is the cell centre, rendered as "(x, y)".
	Center string
	Photos int
	Venue  string
}

// Figure4Result reproduces Figure 4: the hottest heat-map cells coincide
// with the city's crowded venues.
type Figure4Result struct {
	Cells []Figure4Cell
}

// String renders the hot-cell list.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4 — hottest heat-map cells (photo counts) and the venues there\n")
	fmt.Fprintf(&b, "%-20s %-8s %s\n", "Cell center", "Photos", "Venue")
	for _, c := range r.Cells {
		venue := c.Venue
		if venue == "" {
			venue = "-"
		}
		fmt.Fprintf(&b, "%-20s %-8d %s\n", c.Center, c.Photos, venue)
	}
	b.WriteString("paper: red areas are iSQUARE, theONE and the airport\n")
	return b.String()
}

// Figure4 lists the hottest cells and matches them to venues.
func Figure4(_ context.Context, w *cityhunter.World, _ Options) (*Figure4Result, error) {
	res := &Figure4Result{}
	for _, cell := range w.Heat.HottestCells(10) {
		fc := Figure4Cell{Center: cell.Center.String(), Photos: cell.Photos}
		for _, h := range w.City.Hotspots {
			if cell.Center.Dist(h.Center) <= h.Radius+w.Heat.CellSize() {
				fc.Venue = h.Name
				break
			}
		}
		res.Cells = append(res.Cells, fc)
	}
	return res, nil
}
