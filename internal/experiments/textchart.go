package experiments

import (
	"fmt"
	"strings"
)

// sparkRunes are the eight block-element levels of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a numeric series as one line of block characters,
// scaled to the series' own min/max. Empty series render empty; a constant
// series renders at the lowest level.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// barChart writes labelled horizontal bars, scaled so the largest value
// fills width cells. Values must be non-negative; the numeric value is
// printed after each bar using the given format verb.
func barChart(b *strings.Builder, labels []string, values []float64, width int, format string) {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, v := range values {
		cells := 0
		if max > 0 {
			cells = int(v / max * float64(width))
		}
		fmt.Fprintf(b, "  %-*s %s%s "+format+"\n",
			labelWidth, labels[i],
			strings.Repeat("█", cells), strings.Repeat("·", width-cells), v)
	}
}
