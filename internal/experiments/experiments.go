// Package experiments regenerates every table and figure of the paper's
// evaluation from a cityhunter.World. Each generator returns a typed result
// whose String method renders the same rows or series the paper reports,
// alongside the paper's own numbers for comparison.
//
// The generators are shared by cmd/experiments (full-scale runs) and the
// repository benchmarks (reduced-scale runs via Options).
package experiments

import (
	"runtime"
	"sync"
	"time"

	"cityhunter"
)

// Options scales the experiment harness.
type Options struct {
	// SlotDuration caps each per-slot run; 0 means the full experiment
	// length (1 hour for Figure 5/6 grids, 30 minutes for the tables).
	SlotDuration time.Duration
	// ArrivalScale multiplies crowd arrival rates; 0 means 1.
	ArrivalScale float64
	// Seed offsets the per-run seeds; 0 uses the world seed.
	Seed int64
	// Parallelism bounds concurrent simulation runs where an experiment
	// fans out over independent deployments (the Figure 5/6 grid and the
	// robustness replication). 0 selects GOMAXPROCS; 1 forces serial.
	// Results are deterministic regardless: every run has its own seed
	// and engine.
	Parallelism int
}

// tableDuration returns the duration for the 30-minute table experiments.
func (o Options) tableDuration() time.Duration {
	d := 30 * time.Minute
	if o.SlotDuration > 0 && o.SlotDuration < d {
		d = o.SlotDuration
	}
	return d
}

// slotDuration returns the duration for the hour-long grid experiments.
func (o Options) slotDuration() time.Duration {
	d := time.Hour
	if o.SlotDuration > 0 && o.SlotDuration < d {
		d = o.SlotDuration
	}
	return d
}

func (o Options) seed(w *cityhunter.World, offset int64) int64 {
	base := o.Seed
	if base == 0 {
		base = w.Seed()
	}
	return base*1000 + offset
}

func (o Options) runOpts(w *cityhunter.World, offset int64, extra ...cityhunter.RunOption) []cityhunter.RunOption {
	opts := []cityhunter.RunOption{cityhunter.WithRunSeed(o.seed(w, offset))}
	if o.ArrivalScale > 0 {
		opts = append(opts, cityhunter.WithArrivalScale(o.ArrivalScale))
	}
	return append(opts, extra...)
}

// pct renders a rate as a percentage.
func pct(x float64) float64 { return 100 * x }

// forEach runs fn(i) for i in [0, n) with the configured parallelism and
// returns the first error. Each index must be independent (own run seed,
// own simulation); output ordering is the caller's responsibility.
func (o Options) forEach(n int, fn func(i int) error) error {
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}
