// Package experiments regenerates every table and figure of the paper's
// evaluation from a cityhunter.World. Each generator returns a typed result
// whose String method renders the same rows or series the paper reports,
// alongside the paper's own numbers for comparison.
//
// The generators are shared by cmd/experiments (full-scale runs) and the
// repository benchmarks (reduced-scale runs via Options). Every generator
// takes a context: fan-out generators run through the campaign runner
// (cityhunter.RunCampaign), single-run generators through RunContext, so a
// cancel stops any experiment mid-flight.
package experiments

import (
	"context"
	"time"

	"cityhunter"
)

// Options scales the experiment harness.
type Options struct {
	// SlotDuration caps each per-slot run; 0 means the full experiment
	// length (1 hour for Figure 5/6 grids, 30 minutes for the tables).
	SlotDuration time.Duration
	// ArrivalScale multiplies crowd arrival rates; 0 means 1.
	ArrivalScale float64
	// Seed offsets the per-run seeds; 0 uses the world seed.
	Seed int64
	// Pool is the shared campaign pool configuration every fan-out
	// experiment (the Figure 5/6 grid, robustness, sensitivity,
	// countermeasures) hands to cityhunter.RunCampaign: worker count and
	// progress streaming. Results are deterministic regardless of worker
	// count: every run has its own seed and engine.
	Pool cityhunter.CampaignPool
}

// tableDuration returns the duration for the 30-minute table experiments.
func (o Options) tableDuration() time.Duration {
	d := 30 * time.Minute
	if o.SlotDuration > 0 && o.SlotDuration < d {
		d = o.SlotDuration
	}
	return d
}

// slotDuration returns the duration for the hour-long grid experiments.
func (o Options) slotDuration() time.Duration {
	d := time.Hour
	if o.SlotDuration > 0 && o.SlotDuration < d {
		d = o.SlotDuration
	}
	return d
}

func (o Options) seed(w *cityhunter.World, offset int64) int64 {
	base := o.Seed
	if base == 0 {
		base = w.Seed()
	}
	return base*1000 + offset
}

func (o Options) runOpts(w *cityhunter.World, offset int64, extra ...cityhunter.RunOption) []cityhunter.RunOption {
	opts := []cityhunter.RunOption{cityhunter.WithRunSeed(o.seed(w, offset))}
	if o.ArrivalScale > 0 {
		opts = append(opts, cityhunter.WithArrivalScale(o.ArrivalScale))
	}
	return append(opts, extra...)
}

// spec builds one campaign run spec carrying the harness's seed-offset and
// scale conventions (via runOpts) plus any extra per-run options.
func (o Options) spec(w *cityhunter.World, name string, venue cityhunter.Venue,
	kind cityhunter.AttackKind, slot int, duration time.Duration,
	offset int64, extra ...cityhunter.RunOption) cityhunter.RunSpec {
	opts := o.runOpts(w, offset, extra...)
	return cityhunter.RunSpec{
		Name:     name,
		Venue:    venue,
		Attack:   kind,
		Slot:     slot,
		Duration: duration,
		Configure: func(cfg *cityhunter.RunConfig) {
			cityhunter.ApplyOptions(cfg, opts...)
		},
	}
}

// campaign fans the specs out over the shared pool.
func (o Options) campaign(ctx context.Context, w *cityhunter.World, specs []cityhunter.RunSpec) (*cityhunter.CampaignResult, error) {
	return w.RunCampaign(ctx, specs, o.Pool)
}

// pct renders a rate as a percentage.
func pct(x float64) float64 { return 100 * x }
