package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cityhunter"
)

// TableRow is one attacker's line in a comparison table.
type TableRow struct {
	Attack string
	Tally  cityhunter.Tally
}

func (r TableRow) render(b *strings.Builder) {
	t := r.Tally
	fmt.Fprintf(b, "%-28s %6d  %4d/%-4d   %3d (direct); %3d (broadcast)  %5.1f%%  %5.1f%%\n",
		r.Attack, t.Total, t.Direct, t.Broadcast,
		t.ConnectedDirect, t.ConnectedBroadcast, pct(t.HitRate()), pct(t.BroadcastHitRate()))
}

func tableHeader(b *strings.Builder, title string) {
	b.WriteString(title + "\n")
	fmt.Fprintf(b, "%-28s %6s  %-9s  %-31s %6s  %6s\n",
		"Attack", "Total", "Dir/Bcast", "Clients connected", "h", "h_b")
}

// Table1Result reproduces Table I: KARMA versus MANA in the canteen.
type Table1Result struct {
	Duration time.Duration
	Rows     []TableRow
}

// String renders the table with the paper's reference row.
func (r *Table1Result) String() string {
	var b strings.Builder
	tableHeader(&b, fmt.Sprintf("Table I — KARMA vs MANA (canteen, %v)", r.Duration))
	for _, row := range r.Rows {
		row.render(&b)
	}
	b.WriteString("paper: KARMA 614 clients h=3.9% h_b=0; MANA 688 clients h=6.6% h_b=3%\n")
	return b.String()
}

// Table1 runs the Table I experiment: the two baselines deployed in the
// canteen over the lunch period.
func Table1(ctx context.Context, w *cityhunter.World, o Options) (*Table1Result, error) {
	res := &Table1Result{Duration: o.tableDuration()}
	for i, kind := range []cityhunter.AttackKind{cityhunter.KARMA, cityhunter.MANA} {
		r, err := w.RunContext(ctx, cityhunter.CanteenVenue(), kind, cityhunter.LunchSlot,
			o.tableDuration(), o.runOpts(w, int64(i))...)
		if err != nil {
			return nil, fmt.Errorf("table1: %w", err)
		}
		res.Rows = append(res.Rows, TableRow{Attack: r.Attack, Tally: r.Tally})
	}
	return res, nil
}

// Table2Result reproduces Table II: MANA versus the preliminary
// City-Hunter in the canteen.
type Table2Result struct {
	Duration time.Duration
	Rows     []TableRow
}

// String renders the table with the paper's reference row.
func (r *Table2Result) String() string {
	var b strings.Builder
	tableHeader(&b, fmt.Sprintf("Table II — MANA vs City-Hunter preliminary (canteen, %v)", r.Duration))
	for _, row := range r.Rows {
		row.render(&b)
	}
	b.WriteString("paper: MANA h=6.6% h_b=3%; City-Hunter 626 clients h=19.1% h_b=15.9%\n")
	return b.String()
}

// Table2 runs the Table II experiment.
func Table2(ctx context.Context, w *cityhunter.World, o Options) (*Table2Result, error) {
	res := &Table2Result{Duration: o.tableDuration()}
	for i, kind := range []cityhunter.AttackKind{cityhunter.MANA, cityhunter.CityHunterPreliminary} {
		r, err := w.RunContext(ctx, cityhunter.CanteenVenue(), kind, cityhunter.LunchSlot,
			o.tableDuration(), o.runOpts(w, 10+int64(i))...)
		if err != nil {
			return nil, fmt.Errorf("table2: %w", err)
		}
		res.Rows = append(res.Rows, TableRow{Attack: r.Attack, Tally: r.Tally})
	}
	return res, nil
}

// Table3Result reproduces Table III: the preliminary City-Hunter in the
// subway passage.
type Table3Result struct {
	Duration time.Duration
	Row      TableRow
}

// String renders the table with the paper's reference row.
func (r *Table3Result) String() string {
	var b strings.Builder
	tableHeader(&b, fmt.Sprintf("Table III — City-Hunter preliminary (subway passage, %v)", r.Duration))
	r.Row.render(&b)
	b.WriteString("paper: 1356 clients (178/1178) h=6.3% h_b=4.1%\n")
	return b.String()
}

// Table3 runs the Table III experiment in the morning-rush passage.
func Table3(ctx context.Context, w *cityhunter.World, o Options) (*Table3Result, error) {
	r, err := w.RunContext(ctx, cityhunter.PassageVenue(), cityhunter.CityHunterPreliminary,
		cityhunter.MorningRushSlot, o.tableDuration(), o.runOpts(w, 20)...)
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	return &Table3Result{Duration: o.tableDuration(), Row: TableRow{Attack: r.Attack, Tally: r.Tally}}, nil
}

// Table4Result reproduces Table IV: the top-5 SSIDs by AP count versus by
// heat value, from the attacker's WiGLE snapshot.
type Table4Result struct {
	ByCount []string
	ByHeat  []string
}

// String renders the two rankings side by side.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table IV — top-5 SSIDs by AP count vs by heat value\n")
	fmt.Fprintf(&b, "%-4s %-28s %-28s\n", "Rank", "Max APs", "Max heat value")
	for i := 0; i < len(r.ByCount) && i < len(r.ByHeat); i++ {
		fmt.Fprintf(&b, "%-4d %-28s %-28s\n", i+1, r.ByCount[i], r.ByHeat[i])
	}
	b.WriteString("paper: heat ranking promotes '#HKAirport Free WiFi' and 'Free Public WiFi'\n")
	return b.String()
}

// Table4 computes the two rankings.
func Table4(_ context.Context, w *cityhunter.World, _ Options) (*Table4Result, error) {
	res := &Table4Result{}
	for _, sc := range w.WiGLE.TopByAPCount(5) {
		res.ByCount = append(res.ByCount, sc.SSID)
	}
	ranked := w.Heat.RankByHeat(w.WiGLE.OpenPositionsBySSID())
	for i := 0; i < 5 && i < len(ranked); i++ {
		res.ByHeat = append(res.ByHeat, ranked[i].SSID)
	}
	return res, nil
}
