package campaign

import (
	"fmt"

	"cityhunter/internal/scenario"
)

// fieldf builds a scenario.FieldError in one line. Paths use the campaign
// run-file field names so server 400s point at the JSON the client sent.
func fieldf(path, format string, args ...any) *scenario.FieldError {
	return &scenario.FieldError{Path: path, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the spec's semantic invariants — the same checks
// Campaign.Validate and the campaign loader have always applied, exported
// so the job server can reject a bad spec with a structured 400 (field
// path + reason) before admitting it, and CLIs fail fast with the same
// messages. Errors are scenario.FieldErrors named after the campaign
// run-file JSON fields; Error() is the bare reason, so wrapping keeps the
// historical message text.
func (s Spec) Validate() error {
	if s.Duration <= 0 {
		return fieldf("minutes", "duration %v must be positive", s.Duration)
	}
	if s.Deployment != nil {
		if s.Venue.Name != "" {
			return fieldf("venue", "venue and deployment are mutually exclusive")
		}
		if len(s.Deployment.Sites) == 0 {
			return fieldf("deployment.sites", "deployment needs at least one site")
		}
		for _, v := range s.Deployment.Sites {
			if s.Slot < 0 || s.Slot >= v.Profile.Slots() {
				return fieldf("slot", "slot %d outside site %q profile (0..%d)",
					s.Slot, v.Name, v.Profile.Slots()-1)
			}
		}
	} else {
		if s.Venue.Name == "" {
			return fieldf("venue", "venue is required")
		}
		if s.Slot < 0 || s.Slot >= s.Venue.Profile.Slots() {
			return fieldf("slot", "slot %d outside venue profile (0..%d)",
				s.Slot, s.Venue.Profile.Slots()-1)
		}
	}
	if s.Attack.String() == "unknown attack" {
		return fieldf("attack", "unknown attack kind %d", int(s.Attack))
	}
	for _, f := range []struct {
		field string
		p     *float64
	}{
		{"directProberFraction", s.DirectProberFraction},
		{"canaryFraction", s.CanaryFraction},
		{"randomizeMacFraction", s.RandomizeMACFraction},
		{"preconnectedFraction", s.PreconnectedFraction},
	} {
		if f.p != nil && (*f.p < 0 || *f.p > 1) {
			return fieldf(f.field, "%s %v outside [0,1]", f.field, *f.p)
		}
	}
	if s.FrameLoss != nil && (*s.FrameLoss < 0 || *s.FrameLoss >= 1) {
		return fieldf("frameLoss", "frameLoss %v outside [0,1)", *s.FrameLoss)
	}
	if s.ArrivalScale != nil && *s.ArrivalScale <= 0 {
		return fieldf("arrivalScale", "arrivalScale %v must be positive", *s.ArrivalScale)
	}
	if s.ScanInterval != nil && *s.ScanInterval <= 0 {
		return fieldf("scanIntervalSeconds", "scan interval %v must be positive", *s.ScanInterval)
	}
	if s.Randomization != "" {
		if _, ok := scenario.RandomizationByName[s.Randomization]; !ok {
			return fieldf("randomization", "unknown randomization %q (want none|per-scan|per-burst|timed)", s.Randomization)
		}
	}
	if s.Linker != "" {
		if _, ok := scenario.LinkerByName[s.Linker]; !ok {
			return fieldf("linker", "unknown linker %q (want mac|seq|fingerprint|pnl|composite)", s.Linker)
		}
	}
	if s.Deployment != nil {
		if err := s.Deployment.Validate(); err != nil {
			if fe, ok := err.(*scenario.FieldError); ok {
				return &scenario.FieldError{Path: "deployment." + fe.Path, Reason: fe.Reason}
			}
			return err
		}
	}
	return nil
}
