package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cityhunter/internal/scenario"
)

// campaignFile is the JSON form of a campaign: a list of declarative run
// specs. Venues are embedded in the SaveVenue format (or referenced by
// built-in name in hand-written files); attacks are encoded by name.
type campaignFile struct {
	Runs []runFile `json:"runs"`
}

type runFile struct {
	Name string `json:"name,omitempty"`
	// Venue names a built-in venue (passage|canteen|mall|station);
	// VenueSpec embeds a full venue in the SaveVenue JSON format. Exactly
	// one must be set; SaveCampaign always writes VenueSpec.
	Venue     string          `json:"venue,omitempty"`
	VenueSpec json.RawMessage `json:"venueSpec,omitempty"`
	Attack    string          `json:"attack"`
	Slot      int             `json:"slot"`
	Minutes   float64         `json:"minutes"`
	Seed      int64           `json:"seed,omitempty"`

	DirectProberFraction *float64 `json:"directProberFraction,omitempty"`
	ScanIntervalSeconds  *float64 `json:"scanIntervalSeconds,omitempty"`
	ArrivalScale         *float64 `json:"arrivalScale,omitempty"`
	FrameLoss            *float64 `json:"frameLoss,omitempty"`
	CanaryFraction       *float64 `json:"canaryFraction,omitempty"`
	RandomizeMACFraction *float64 `json:"randomizeMacFraction,omitempty"`
	PreconnectedFraction *float64 `json:"preconnectedFraction,omitempty"`
	Deauth               bool     `json:"deauth,omitempty"`
	Sentinel             bool     `json:"sentinel,omitempty"`
	CautiousMirror       bool     `json:"cautiousMirror,omitempty"`
	Randomization        string   `json:"randomization,omitempty"`
	Linker               string   `json:"linker,omitempty"`
}

// attackNames maps the file encoding to attack kinds; attackFileName is the
// canonical reverse mapping used by Save.
var attackNames = map[string]scenario.AttackKind{
	"karma":         scenario.KARMA,
	"mana":          scenario.MANA,
	"prelim":        scenario.CityHunterPreliminary,
	"cityhunter":    scenario.CityHunter,
	"known-beacons": scenario.KnownBeacons,
}

func attackFileName(k scenario.AttackKind) string {
	for name, kind := range attackNames {
		if kind == k {
			return name
		}
	}
	return ""
}

// AttackByName resolves the file encoding of an attack
// (karma|mana|prelim|cityhunter|known-beacons) — the same names campaign
// files and job submissions use.
func AttackByName(name string) (scenario.AttackKind, bool) {
	k, ok := attackNames[name]
	return k, ok
}

// AttackName returns an attack kind's file encoding, or "" when the kind
// has none.
func AttackName(k scenario.AttackKind) string { return attackFileName(k) }

// builtinVenues resolves the by-name venue references of hand-written
// campaign files.
var builtinVenues = map[string]func() scenario.Venue{
	"passage": scenario.PassageVenue,
	"canteen": scenario.CanteenVenue,
	"mall":    scenario.MallVenue,
	"station": scenario.StationVenue,
}

// Save writes a campaign's specs as JSON. Only the declarative spec fields
// are encodable: a spec carrying a Configure hook cannot round-trip and is
// rejected by name.
//
// Deprecated: new code should persist campaigns inside a versioned plan
// envelope via SavePlan (plan.Save); this standalone format is kept for
// compatibility and emits byte-identical output.
func Save(w io.Writer, specs []Spec) error {
	cf, err := encodeSpecs(specs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cf); err != nil {
		return fmt.Errorf("campaign: encode: %w", err)
	}
	return nil
}

// EncodeSpecsJSON renders campaign specs in their canonical (compact) file
// form — the payload the plan envelope embeds.
func EncodeSpecsJSON(specs []Spec) (json.RawMessage, error) {
	cf, err := encodeSpecs(specs)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(cf)
	if err != nil {
		return nil, fmt.Errorf("campaign: encode: %w", err)
	}
	return data, nil
}

func encodeSpecs(specs []Spec) (campaignFile, error) {
	cf := campaignFile{Runs: make([]runFile, len(specs))}
	for i, s := range specs {
		if s.Configure != nil {
			return campaignFile{}, fmt.Errorf("campaign: spec %d (%s): Configure hooks are not serialisable", i, s.Name)
		}
		if s.Deployment != nil {
			return campaignFile{}, fmt.Errorf("campaign: spec %d (%s): deployment specs are not serialisable (persist the plan with SaveDeployment)", i, s.Name)
		}
		venueSpec, err := scenario.EncodeVenueJSON(s.Venue)
		if err != nil {
			return campaignFile{}, fmt.Errorf("campaign: spec %d (%s): %w", i, s.Name, err)
		}
		attack := attackFileName(s.Attack)
		if attack == "" {
			return campaignFile{}, fmt.Errorf("campaign: spec %d (%s): attack kind %d not encodable", i, s.Name, int(s.Attack))
		}
		rf := runFile{
			Name:                 s.Name,
			VenueSpec:            venueSpec,
			Attack:               attack,
			Slot:                 s.Slot,
			Minutes:              s.Duration.Minutes(),
			Seed:                 s.Seed,
			DirectProberFraction: s.DirectProberFraction,
			ArrivalScale:         s.ArrivalScale,
			FrameLoss:            s.FrameLoss,
			CanaryFraction:       s.CanaryFraction,
			RandomizeMACFraction: s.RandomizeMACFraction,
			PreconnectedFraction: s.PreconnectedFraction,
			Deauth:               s.Deauth,
			Sentinel:             s.Sentinel,
			CautiousMirror:       s.CautiousMirror,
			Randomization:        s.Randomization,
			Linker:               s.Linker,
		}
		if s.ScanInterval != nil {
			secs := s.ScanInterval.Seconds()
			rf.ScanIntervalSeconds = &secs
		}
		cf.Runs[i] = rf
	}
	return cf, nil
}

// Load reads a campaign written by Save (or hand-written in the same
// format) and validates it, naming the offending run and field in every
// error.
//
// Deprecated: new code should load plans through LoadPlan (plan.Load),
// which wraps the same codec in a versioned envelope. Load already rejects
// unknown top-level fields but keeps embedded venueSpecs permissive, as it
// always has.
func Load(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: decode: %w", err)
	}
	return DecodeSpecsJSON(data, false)
}

// DecodeSpecsJSON parses and validates campaign specs in the Save format.
// Unknown fields at the campaign level are always rejected; strict extends
// the rejection into embedded venueSpec documents (the plan-envelope
// contract).
func DecodeSpecsJSON(data []byte, strict bool) ([]Spec, error) {
	var cf campaignFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		return nil, fmt.Errorf("campaign: decode: %w", err)
	}
	if len(cf.Runs) == 0 {
		return nil, fmt.Errorf("campaign: file declares no runs")
	}
	specs := make([]Spec, len(cf.Runs))
	for i, rf := range cf.Runs {
		name := rf.Name
		if name == "" {
			name = fmt.Sprintf("run %d", i)
		}
		s := Spec{Name: rf.Name, Slot: rf.Slot, Seed: rf.Seed}
		switch {
		case rf.Venue != "" && rf.VenueSpec != nil:
			return nil, fmt.Errorf("campaign: run %d (%s): venue and venueSpec are mutually exclusive", i, name)
		case rf.Venue != "":
			mk, ok := builtinVenues[rf.Venue]
			if !ok {
				return nil, fmt.Errorf("campaign: run %d (%s): unknown venue %q (want passage|canteen|mall|station or a venueSpec)", i, name, rf.Venue)
			}
			s.Venue = mk()
		case rf.VenueSpec != nil:
			v, err := scenario.DecodeVenueJSON(rf.VenueSpec, strict)
			if err != nil {
				return nil, fmt.Errorf("campaign: run %d (%s): venueSpec: %w", i, name, err)
			}
			s.Venue = v
		default:
			return nil, fmt.Errorf("campaign: run %d (%s): venue is required (a built-in name or a venueSpec)", i, name)
		}
		kind, ok := attackNames[rf.Attack]
		if !ok {
			return nil, fmt.Errorf("campaign: run %d (%s): unknown attack %q (want karma|mana|prelim|cityhunter|known-beacons)", i, name, rf.Attack)
		}
		s.Attack = kind
		if rf.Minutes <= 0 {
			return nil, fmt.Errorf("campaign: run %d (%s): minutes %v must be positive", i, name, rf.Minutes)
		}
		s.Duration = time.Duration(rf.Minutes * float64(time.Minute))
		if rf.ScanIntervalSeconds != nil {
			if *rf.ScanIntervalSeconds <= 0 {
				return nil, fmt.Errorf("campaign: run %d (%s): scanIntervalSeconds %v must be positive", i, name, *rf.ScanIntervalSeconds)
			}
			d := time.Duration(*rf.ScanIntervalSeconds * float64(time.Second))
			s.ScanInterval = &d
		}
		s.DirectProberFraction = rf.DirectProberFraction
		s.ArrivalScale = rf.ArrivalScale
		s.FrameLoss = rf.FrameLoss
		s.CanaryFraction = rf.CanaryFraction
		s.RandomizeMACFraction = rf.RandomizeMACFraction
		s.PreconnectedFraction = rf.PreconnectedFraction
		s.Deauth = rf.Deauth
		s.Sentinel = rf.Sentinel
		s.CautiousMirror = rf.CautiousMirror
		s.Randomization = rf.Randomization
		s.Linker = rf.Linker
		// Semantic checks (slot, fraction ranges, …) live in Spec.Validate
		// so loaders, programmatic campaigns and the job server agree.
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: run %d (%s): %w", i, name, err)
		}
		specs[i] = s
	}
	return specs, nil
}
