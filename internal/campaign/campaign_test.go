// Tests drive the campaign runner through the public cityhunter API — the
// same path cmd/experiments and cmd/cityhunter-sim use — so the aliases and
// World.RunCampaign wiring are covered alongside the pool itself.
package campaign_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cityhunter"
)

var (
	worldOnce sync.Once
	worldVal  *cityhunter.World
	worldErr  error
)

func testWorld(t testing.TB) *cityhunter.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = cityhunter.NewWorld(cityhunter.WithSeed(1))
	})
	if worldErr != nil {
		t.Fatalf("NewWorld: %v", worldErr)
	}
	return worldVal
}

// quickSpecs builds n short mixed-venue runs.
func quickSpecs(n int) []cityhunter.RunSpec {
	scale := 0.4
	specs := make([]cityhunter.RunSpec, n)
	for i := range specs {
		venue := cityhunter.CanteenVenue()
		slot := cityhunter.LunchSlot
		if i%2 == 1 {
			venue = cityhunter.PassageVenue()
			slot = cityhunter.MorningRushSlot
		}
		specs[i] = cityhunter.RunSpec{
			Name:         fmt.Sprintf("quick %d", i),
			Venue:        venue,
			Attack:       cityhunter.CityHunter,
			Slot:         slot,
			Duration:     2 * time.Minute,
			ArrivalScale: &scale,
		}
	}
	return specs
}

// TestCampaignDeterministicAcrossWorkers is the contract the experiment
// generators rely on: serial and 4-worker pools must produce byte-identical
// per-run results and aggregates.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	specs := quickSpecs(6)
	run := func(workers int) *cityhunter.CampaignResult {
		out, err := w.RunCampaign(context.Background(), specs,
			cityhunter.CampaignPool{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if serial.Completed != len(specs) || parallel.Completed != len(specs) {
		t.Fatalf("completed %d/%d, want all %d", serial.Completed, parallel.Completed, len(specs))
	}
	for i := range specs {
		if serial.Results[i].Tally != parallel.Results[i].Tally {
			t.Errorf("spec %d tally differs: serial %+v parallel %+v",
				i, serial.Results[i].Tally, parallel.Results[i].Tally)
		}
	}
	if !reflect.DeepEqual(serial.Aggregate, parallel.Aggregate) {
		t.Errorf("aggregates differ:\nserial:   %v\nparallel: %v",
			serial.Aggregate, parallel.Aggregate)
	}
	if serial.Aggregate.Runs != len(specs) || serial.Aggregate.TotalClients == 0 {
		t.Errorf("degenerate aggregate: %v", serial.Aggregate)
	}
}

// TestCampaignCancellation cancels after the first completed run and checks
// the partial outcome: completed runs are kept, the campaign reports
// ctx.Err(), and no pool goroutine outlives the call.
func TestCampaignCancellation(t *testing.T) {
	w := testWorld(t)
	specs := quickSpecs(6)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := cityhunter.CampaignPool{
		Workers: 2,
		OnProgress: func(p cityhunter.CampaignProgress) {
			if p.Err == nil {
				cancel()
			}
		},
	}
	out, err := w.RunCampaign(ctx, specs, pool)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Completed < 1 {
		t.Error("no run completed before cancellation")
	}
	if out.Completed >= len(specs) {
		t.Errorf("all %d runs completed; cancellation did not stop dispatch", out.Completed)
	}
	if out.Aggregate.Runs != out.Completed {
		t.Errorf("aggregate covers %d runs, completed %d", out.Aggregate.Runs, out.Completed)
	}
	for i := range specs {
		if out.Errs[i] == nil && out.Results[i] == nil {
			continue // never dispatched
		}
		if out.Errs[i] == nil && out.Results[i].Tally.Total == 0 {
			t.Errorf("spec %d reported success with an empty tally", i)
		}
	}

	// The pool must not leak: every worker exits before Run returns.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines %d -> %d: pool leaked workers", before, n)
	}
}

// TestCampaignPreCancelled checks the degenerate case: nothing dispatches,
// nothing completes, ctx.Err() comes back.
func TestCampaignPreCancelled(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := w.RunCampaign(ctx, quickSpecs(3), cityhunter.CampaignPool{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Completed != 0 {
		t.Errorf("completed %d runs on a pre-cancelled context", out.Completed)
	}
}

// TestCampaignValidationNamesSpec checks the error contract: a bad spec is
// reported by index, name, and field before anything runs.
func TestCampaignValidationNamesSpec(t *testing.T) {
	w := testWorld(t)
	specs := quickSpecs(2)
	specs[1].Slot = 99
	_, err := w.RunCampaign(context.Background(), specs, cityhunter.CampaignPool{})
	if err == nil {
		t.Fatal("bad slot accepted")
	}
	for _, want := range []string{"spec 1", "quick 1", "slot 99"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}

	specs = quickSpecs(2)
	specs[0].Duration = 0
	if _, err := w.RunCampaign(context.Background(), specs, cityhunter.CampaignPool{}); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("zero duration: err = %v, want duration complaint", err)
	}
}

// TestCampaignDeploymentSpecs mixes a single-venue spec with a multi-site
// deployment spec: the deployment result lands in Outcome.Deployments, the
// aggregate pools both, and serial and parallel pools agree.
func TestCampaignDeploymentSpecs(t *testing.T) {
	w := testWorld(t)
	scale := 0.4
	specs := []cityhunter.RunSpec{
		quickSpecs(1)[0],
		{
			Name:         "two-site lunch",
			Attack:       cityhunter.CityHunter,
			Slot:         cityhunter.LunchSlot,
			Duration:     2 * time.Minute,
			ArrivalScale: &scale,
			Deployment: &cityhunter.DeploymentConfig{
				Sites:        []cityhunter.Venue{cityhunter.CanteenVenue(), cityhunter.PassageVenue()},
				Knowledge:    cityhunter.Shared,
				RoamFraction: 0.5,
			},
		},
	}
	run := func(workers int) *cityhunter.CampaignResult {
		out, err := w.RunCampaign(context.Background(), specs,
			cityhunter.CampaignPool{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	out := run(1)
	if out.Completed != 2 {
		t.Fatalf("completed %d/2", out.Completed)
	}
	if out.Results[0] == nil || out.Deployments[0] != nil {
		t.Error("single-venue spec did not land in Results")
	}
	if out.Results[1] != nil || out.Deployments[1] == nil {
		t.Fatal("deployment spec did not land in Deployments")
	}
	dep := out.Deployments[1]
	if len(dep.Sites) != 2 || dep.Tally.Total == 0 {
		t.Fatalf("degenerate deployment result: %d sites, tally %+v", len(dep.Sites), dep.Tally)
	}
	if want := out.Results[0].Tally.Total + dep.Tally.Total; out.Aggregate.TotalClients != want {
		t.Errorf("aggregate pooled %d clients, want %d", out.Aggregate.TotalClients, want)
	}
	parallel := run(2)
	if !reflect.DeepEqual(dep.Tally, parallel.Deployments[1].Tally) {
		t.Errorf("deployment tally differs across pools: %+v vs %+v",
			dep.Tally, parallel.Deployments[1].Tally)
	}
}

// TestCampaignDeploymentValidation: deployment specs are validated up front
// with the spec named, before anything runs.
func TestCampaignDeploymentValidation(t *testing.T) {
	w := testWorld(t)
	base := cityhunter.RunSpec{
		Name:     "bad",
		Attack:   cityhunter.CityHunter,
		Slot:     cityhunter.LunchSlot,
		Duration: time.Minute,
	}
	cases := []struct {
		name string
		mut  func(*cityhunter.RunSpec)
		want string
	}{
		{"venue and deployment", func(s *cityhunter.RunSpec) {
			s.Venue = cityhunter.CanteenVenue()
			s.Deployment = &cityhunter.DeploymentConfig{Sites: []cityhunter.Venue{cityhunter.PassageVenue()}}
		}, "mutually exclusive"},
		{"no sites", func(s *cityhunter.RunSpec) {
			s.Deployment = &cityhunter.DeploymentConfig{}
		}, "at least one site"},
		{"bad slot", func(s *cityhunter.RunSpec) {
			s.Slot = 99
			s.Deployment = &cityhunter.DeploymentConfig{Sites: []cityhunter.Venue{cityhunter.PassageVenue()}}
		}, "slot 99"},
	}
	for _, tc := range cases {
		spec := base
		tc.mut(&spec)
		_, err := w.RunCampaign(context.Background(), []cityhunter.RunSpec{spec}, cityhunter.CampaignPool{})
		if err == nil || !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "bad") {
			t.Errorf("%s: err = %v, want substring %q naming the spec", tc.name, err, tc.want)
		}
	}
}

// BenchmarkCampaignGrid is the CI bench smoke for the campaign runner: a
// reduced Figure-5-style venue × slot fan-out through the default pool.
func BenchmarkCampaignGrid(b *testing.B) {
	w := testWorld(b)
	scale := 0.4
	var specs []cityhunter.RunSpec
	for vi, venue := range cityhunter.AllVenues() {
		for slot := 0; slot < 4; slot++ {
			specs = append(specs, cityhunter.RunSpec{
				Name:         fmt.Sprintf("bench %s slot %d", venue.Name, slot),
				Venue:        venue,
				Attack:       cityhunter.CityHunter,
				Slot:         slot,
				Duration:     2 * time.Minute,
				Seed:         int64(1000 + vi*50 + slot),
				ArrivalScale: &scale,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := w.RunCampaign(context.Background(), specs, cityhunter.CampaignPool{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Completed != len(specs) {
			b.Fatalf("completed %d/%d", out.Completed, len(specs))
		}
	}
}
