package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/scenario"
)

func roundTripSpecs() []Spec {
	scan := 40 * time.Second
	frac := 0.25
	scale := 0.7
	return []Spec{
		{
			Name:     "lunch baseline",
			Venue:    scenario.CanteenVenue(),
			Attack:   scenario.CityHunter,
			Slot:     4,
			Duration: 30 * time.Minute,
		},
		{
			Name:                 "defended rush",
			Venue:                scenario.PassageVenue(),
			Attack:               scenario.MANA,
			Slot:                 0,
			Duration:             90 * time.Second,
			Seed:                 42,
			ScanInterval:         &scan,
			CanaryFraction:       &frac,
			ArrivalScale:         &scale,
			Deauth:               true,
			Sentinel:             true,
			CautiousMirror:       true,
			DirectProberFraction: &frac,
			Randomization:        "per-burst",
			Linker:               "composite",
		},
	}
}

// TestCampaignRoundTrip checks Save → Load → Save byte equality — the same
// stability contract venue_io makes.
func TestCampaignRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := Save(&first, roundTripSpecs()); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d specs, want 2", len(loaded))
	}
	var second bytes.Buffer
	if err := Save(&second, loaded); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not byte-stable:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}

	got := loaded[1]
	if got.Name != "defended rush" || got.Seed != 42 || !got.Deauth || !got.Sentinel || !got.CautiousMirror {
		t.Errorf("scalar fields lost: %+v", got)
	}
	if got.ScanInterval == nil || *got.ScanInterval != 40*time.Second {
		t.Errorf("scan interval lost: %v", got.ScanInterval)
	}
	if got.CanaryFraction == nil || *got.CanaryFraction != 0.25 {
		t.Errorf("canary fraction lost: %v", got.CanaryFraction)
	}
	if got.Venue.Name != scenario.PassageVenue().Name {
		t.Errorf("venue lost: %q", got.Venue.Name)
	}
	if got.Duration != 90*time.Second {
		t.Errorf("duration = %v, want 90s", got.Duration)
	}
	if got.Randomization != "per-burst" || got.Linker != "composite" {
		t.Errorf("randomization/linker lost: %q %q", got.Randomization, got.Linker)
	}
}

// TestLegacySpecsOmitRandomizationFields: specs predating the
// identity/observable split serialise byte-identically — the new keys are
// omitted, not written as empty strings, so legacy plans round-trip
// unchanged (the plan-envelope goldens pin the same contract).
func TestLegacySpecsOmitRandomizationFields(t *testing.T) {
	specs := roundTripSpecs()
	specs[1].Randomization = ""
	specs[1].Linker = ""
	var buf bytes.Buffer
	if err := Save(&buf, specs); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, key := range []string{`"randomization"`, `"linker"`} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("legacy spec output contains %s:\n%s", key, buf.String())
		}
	}
}

// TestSaveRejectsConfigureHook: programmatic hooks cannot round-trip and
// must be refused by spec name, not silently dropped.
func TestSaveRejectsConfigureHook(t *testing.T) {
	specs := roundTripSpecs()
	specs[1].Configure = func(*scenario.Config) {}
	err := Save(&bytes.Buffer{}, specs)
	if err == nil {
		t.Fatal("Configure hook serialised")
	}
	for _, want := range []string{"spec 1", "defended rush", "Configure"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

// TestSaveRejectsDeploymentSpec: deployment specs carry live venue slices
// and a knowledge plane that SaveDeployment owns; SaveCampaign refuses them
// by name and points at the right persistence path.
func TestSaveRejectsDeploymentSpec(t *testing.T) {
	specs := roundTripSpecs()
	specs[0].Deployment = &scenario.DeploymentConfig{Sites: []scenario.Venue{scenario.CanteenVenue()}}
	err := Save(&bytes.Buffer{}, specs)
	if err == nil {
		t.Fatal("deployment spec serialised")
	}
	for _, want := range []string{"spec 0", "SaveDeployment"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

// TestLoadBuiltinVenueNames: hand-written files may reference venues by
// name instead of embedding a venueSpec.
func TestLoadBuiltinVenueNames(t *testing.T) {
	specs, err := Load(strings.NewReader(`{"runs": [
		{"name": "by-name", "venue": "mall", "attack": "karma", "slot": 2, "minutes": 5}
	]}`))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if specs[0].Venue.Name != scenario.MallVenue().Name {
		t.Errorf("venue = %q, want the mall", specs[0].Venue.Name)
	}
	if specs[0].Attack != scenario.KARMA || specs[0].Duration != 5*time.Minute {
		t.Errorf("fields lost: %+v", specs[0])
	}
}

// TestLoadValidationNamesField: every rejection identifies the run (index
// and name) and the offending field.
func TestLoadValidationNamesField(t *testing.T) {
	cases := []struct {
		label string
		json  string
		wants []string
	}{
		{"no venue", `{"runs": [{"name": "x", "attack": "karma", "slot": 0, "minutes": 5}]}`,
			[]string{"run 0 (x)", "venue is required"}},
		{"unknown venue", `{"runs": [{"venue": "casino", "attack": "karma", "slot": 0, "minutes": 5}]}`,
			[]string{"run 0 (run 0)", `unknown venue "casino"`}},
		{"unknown attack", `{"runs": [{"name": "a", "venue": "mall", "attack": "wep-crack", "slot": 0, "minutes": 5}]}`,
			[]string{"run 0 (a)", `unknown attack "wep-crack"`}},
		{"bad minutes", `{"runs": [{"name": "b", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 0}]}`,
			[]string{"run 0 (b)", "minutes"}},
		{"bad slot", `{"runs": [{"name": "c", "venue": "mall", "attack": "karma", "slot": 30, "minutes": 5}]}`,
			[]string{"run 0 (c)", "slot 30"}},
		{"bad fraction", `{"runs": [{"name": "d", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "canaryFraction": 1.5}]}`,
			[]string{"run 0 (d)", "canaryFraction 1.5"}},
		{"bad loss", `{"runs": [{"name": "e", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "frameLoss": 1}]}`,
			[]string{"run 0 (e)", "frameLoss 1"}},
		{"bad scan interval", `{"runs": [{"name": "f", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "scanIntervalSeconds": -3}]}`,
			[]string{"run 0 (f)", "scanIntervalSeconds -3"}},
		{"both venue forms", `{"runs": [{"name": "g", "venue": "mall", "venueSpec": {}, "attack": "karma", "slot": 0, "minutes": 5}]}`,
			[]string{"run 0 (g)", "mutually exclusive"}},
		{"unknown randomization", `{"runs": [{"name": "i", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "randomization": "hourly"}]}`,
			[]string{"run 0 (i)", `unknown randomization "hourly"`}},
		{"unknown linker", `{"runs": [{"name": "j", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "linker": "ml"}]}`,
			[]string{"run 0 (j)", `unknown linker "ml"`}},
		{"unknown field", `{"runs": [{"name": "h", "venue": "mall", "attack": "karma", "slot": 0, "minutes": 5, "turbo": true}]}`,
			[]string{"turbo"}},
		{"empty file", `{"runs": []}`, []string{"no runs"}},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		for _, want := range tc.wants {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not contain %q", tc.label, err, want)
			}
		}
	}
}
