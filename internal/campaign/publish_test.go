package campaign_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"cityhunter"
)

// recPublisher implements cityhunter.TelemetryPublisher, recording what the
// campaign pool streams.
type recPublisher struct {
	mu   sync.Mutex
	runs []*recRun
}

type recRun struct {
	mu       sync.Mutex
	info     cityhunter.TelemetryRunInfo
	last     cityhunter.MetricsSnapshot
	events   []cityhunter.JournalEvent
	finished bool
	err      error
}

func (p *recPublisher) StartRun(info cityhunter.TelemetryRunInfo) cityhunter.TelemetryRun {
	r := &recRun{info: info}
	p.mu.Lock()
	p.runs = append(p.runs, r)
	p.mu.Unlock()
	return r
}

func (r *recRun) PublishSnapshot(at time.Duration, snap cityhunter.MetricsSnapshot) {
	r.mu.Lock()
	r.last = snap
	r.mu.Unlock()
}

func (r *recRun) PublishEvent(ev cityhunter.JournalEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *recRun) FinishRun(at time.Duration, err error) {
	r.mu.Lock()
	r.finished = true
	r.err = err
	r.mu.Unlock()
}

// TestCampaignPublisher drives a pool with a publisher attached and checks
// the campaign feed: one "campaign" run carrying the progress gauges and a
// spec-done event per spec, plus one propagated "run" feed per spec.
func TestCampaignPublisher(t *testing.T) {
	w := testWorld(t)
	specs := quickSpecs(3)
	pub := &recPublisher{}
	out, err := w.RunCampaign(context.Background(), specs, cityhunter.CampaignPool{
		Workers:   2,
		Publisher: pub,
		Label:     "gauge-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed != len(specs) {
		t.Fatalf("completed %d, want %d", out.Completed, len(specs))
	}

	pub.mu.Lock()
	runs := append([]*recRun(nil), pub.runs...)
	pub.mu.Unlock()
	if len(runs) != 1+len(specs) {
		t.Fatalf("publisher saw %d runs, want 1 campaign + %d specs", len(runs), len(specs))
	}

	camp := runs[0]
	camp.mu.Lock()
	defer camp.mu.Unlock()
	if camp.info.Kind != "campaign" || camp.info.Label != "gauge-test" {
		t.Errorf("campaign info = %+v", camp.info)
	}
	for name, want := range map[string]float64{
		"campaign_specs_total":   3,
		"campaign_specs_done":    3,
		"campaign_specs_running": 0,
		"campaign_specs_failed":  0,
		"campaign_eta_seconds":   0,
	} {
		if got := camp.last.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if p, ok := camp.last.Get("campaign_spec_wall_seconds"); !ok || p.Count != 3 {
		t.Errorf("spec wall histogram = %+v, want 3 observations", p)
	}
	specDone := 0
	for _, ev := range camp.events {
		if ev.Type == "spec-done" {
			specDone++
		}
	}
	if specDone != len(specs) {
		t.Errorf("spec-done events = %d, want %d", specDone, len(specs))
	}
	if !camp.finished || camp.err != nil {
		t.Errorf("campaign finish = (%v, %v), want clean", camp.finished, camp.err)
	}

	for _, r := range runs[1:] {
		r.mu.Lock()
		if r.info.Kind != "run" {
			t.Errorf("propagated run kind = %q, want run", r.info.Kind)
		}
		if !r.finished {
			t.Error("propagated run never finished")
		}
		r.mu.Unlock()
	}
}
