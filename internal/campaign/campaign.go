// Package campaign orchestrates sets of simulation runs — the shape of
// every evaluation in the paper (the Figure 5 grid alone is 4 venues × 12
// slots) and of every large parameter sweep beyond it.
//
// A campaign is a list of declarative run specs fanned out over a bounded
// worker pool. Each spec derives its own seed, so results are byte-identical
// regardless of worker count or completion order; aggregation (mean/CI via
// internal/stats) happens deterministically in spec order after the pool
// drains. The executor honors context.Context end to end: cancellation is
// threaded through scenario.RunContext into the sim.Engine event loop, so
// mid-flight runs stop promptly and the campaign returns the runs that
// completed plus ctx.Err().
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cityhunter/internal/obs"
	"cityhunter/internal/scenario"
	"cityhunter/internal/stats"
)

// Spec declares one run of a campaign. The zero value of every optional
// field means "inherit from the campaign base configuration".
type Spec struct {
	// Name labels the run in progress callbacks and reports.
	Name string
	// Venue is the deployment site.
	Venue scenario.Venue
	// Attack selects the strategy.
	Attack scenario.AttackKind
	// Slot is the hour slot (0 = the profile's first hour).
	Slot int
	// Duration is the run length.
	Duration time.Duration
	// Seed overrides the run seed. 0 derives a per-spec seed from the
	// campaign base seed and the spec index (base*1000 + index + 1), so
	// specs decorrelate by default.
	Seed int64

	// Declarative knobs. Pointer fields distinguish "unset" (inherit the
	// base configuration) from an explicit zero. These fields — unlike
	// Configure — survive SaveCampaign/LoadCampaign round trips.
	DirectProberFraction *float64
	ScanInterval         *time.Duration
	ArrivalScale         *float64
	FrameLoss            *float64
	CanaryFraction       *float64
	RandomizeMACFraction *float64
	PreconnectedFraction *float64
	Deauth               bool
	Sentinel             bool
	CautiousMirror       bool
	// Randomization names the MAC rotation policy applied to the
	// randomizing share (none|per-scan|per-burst|timed; see
	// scenario.RandomizationByName). Empty inherits the base
	// configuration — for legacy specs, the historical per-scan flag.
	Randomization string
	// Linker names the attacker's de-anonymisation linker
	// (mac|seq|fingerprint|pnl|composite; see scenario.LinkerByName).
	// Empty inherits the base configuration.
	Linker string

	// Configure, when non-nil, mutates the fully assembled run
	// configuration last — the programmatic escape hatch for knobs the
	// declarative fields do not cover (core-engine ablations, WiGLE
	// resampling, sampling periods). It is not serialised by SaveCampaign.
	Configure func(*scenario.Config)

	// Deployment, when non-nil, turns this spec into a multi-site
	// deployment run: its Sites replace Venue (which must stay zero), its
	// knowledge plane and roaming model apply, and the spec's result lands
	// in Outcome.Deployments instead of Outcome.Results. The Deployment's
	// Base is ignored — the campaign assembles it from the campaign base
	// and this spec's declarative knobs. Like Configure, it is not
	// serialised by SaveCampaign (persist the plan with SaveDeployment).
	Deployment *scenario.DeploymentConfig
}

// Pool configures the campaign worker pool.
type Pool struct {
	// Workers bounds concurrent runs. 0 selects GOMAXPROCS; 1 forces
	// serial execution. Results are identical either way.
	Workers int
	// OnProgress, when non-nil, is invoked (serially, from pool
	// goroutines) after each spec finishes, successfully or not.
	OnProgress func(Progress)
	// Publisher, when non-nil, streams the campaign into a live monitor:
	// the pool registers one "campaign" run carrying progress gauges
	// (specs total/done/running/failed, ETA from completed-spec wall
	// times), and every spec's run publishes its own virtual-time
	// telemetry unless the base configuration already set a publisher.
	// Results stay byte-identical — publishing is read-only.
	Publisher obs.Publisher
	// PublishEvery overrides the per-run snapshot cadence (virtual time);
	// 0 keeps the scenario default.
	PublishEvery time.Duration
	// Label names the campaign on the monitor; empty derives "campaign
	// (N specs)".
	Label string
	// Labels, when non-empty, is merged into the campaign run's monitor
	// labels and into every spec run's labels (explicit per-run labels
	// win). The job server uses it to scope metrics to a job id.
	Labels map[string]string
	// Completed, when non-nil, reports whether spec i already has a
	// durable result; such specs are skipped (marked in Outcome.Skipped
	// and Progress.Skipped, counted as done, never run). The job server
	// uses it to resume a checkpointed campaign from its result store.
	Completed func(i int) bool
	// Drain, when non-nil and closed, stops dispatching new specs while
	// letting in-flight runs finish. If any spec was left unstarted, Run
	// returns ErrDrained alongside the partial outcome — the graceful
	// SIGTERM path, distinct from hard ctx cancellation.
	Drain <-chan struct{}
}

// ErrDrained reports that the pool's Drain channel was closed before every
// spec was dispatched: in-flight specs finished, the rest never started.
var ErrDrained = errors.New("campaign: drained before completion")

// Progress reports one finished spec.
type Progress struct {
	// Index is the spec's position in Campaign.Specs.
	Index int
	// Name is the spec's label.
	Name string
	// Err is the spec's error, nil on success.
	Err error
	// Done counts specs finished so far (including this one); Total is
	// the campaign size.
	Done, Total int
	// Skipped marks a spec that was never run because Pool.Completed
	// reported a durable result for it.
	Skipped bool
	// Result and Deployment carry the spec's result (one of them,
	// matching the spec kind; both nil when the spec errored or was
	// skipped) so checkpointing callbacks can persist it without waiting
	// for the campaign to finish.
	Result     *scenario.Result
	Deployment *scenario.DeploymentResult
}

// Campaign is a set of runs over one world.
type Campaign struct {
	// Base is the shared run configuration: the world handles (city, heat
	// map, PNL model, WiGLE snapshot), the base seed, and any defaults
	// specs inherit. Venue, Attack and Seed are overridden per spec.
	Base scenario.Config
	// Specs lists the runs. Order defines result order and default seed
	// derivation, never execution order.
	Specs []Spec
	// Pool bounds and instruments the fan-out.
	Pool Pool
}

// Aggregate summarises a campaign's error-free runs, in spec order, so the
// numbers are independent of worker count and completion order.
type Aggregate struct {
	// Runs counts the error-free runs aggregated here.
	Runs int
	// TotalClients and TotalVictims sum the tallies.
	TotalClients int
	TotalVictims int
	// HitRate and BroadcastHitRate summarise the per-run rates (mean,
	// min–max band, sample SD).
	HitRate          stats.RateSummary
	BroadcastHitRate stats.RateSummary
	// BroadcastLo and BroadcastHi are the pooled Wilson 95 % interval
	// over every broadcast client of every run.
	BroadcastLo, BroadcastHi float64
}

// String renders the aggregate as a one-line summary.
func (a Aggregate) String() string {
	return fmt.Sprintf("%d runs, %d clients, %d victims, h=%v h_b=%v pooled 95%% CI [%.1f%%, %.1f%%]",
		a.Runs, a.TotalClients, a.TotalVictims, a.HitRate, a.BroadcastHitRate,
		100*a.BroadcastLo, 100*a.BroadcastHi)
}

// Outcome is everything a campaign produces. Results and Errs are indexed
// by spec: a spec that never started (cancelled before dispatch) has a nil
// Result and a nil error; a spec cancelled mid-flight keeps its partial
// Result alongside the context error.
type Outcome struct {
	// Results holds each spec's run result, in spec order. Deployment
	// specs leave their entry nil and fill Deployments instead.
	Results []*scenario.Result
	// Deployments holds each deployment spec's result, in spec order;
	// nil for single-venue specs.
	Deployments []*scenario.DeploymentResult
	// Errs holds each spec's error, in spec order.
	Errs []error
	// Skipped marks specs that Pool.Completed reported as already done;
	// their Results/Deployments entries are nil and they do not
	// contribute to the aggregate (the caller already has them).
	Skipped []bool
	// Completed counts error-free runs.
	Completed int
	// Aggregate is the deterministic summary over error-free runs
	// (deployment specs contribute their pooled tally).
	Aggregate Aggregate
}

// Validate checks every spec and names the offending spec and field.
func (c *Campaign) Validate() error {
	if c.Base.City == nil || c.Base.HeatMap == nil {
		return fmt.Errorf("campaign: base config needs a city and heat map")
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("campaign: no run specs")
	}
	for i, s := range c.Specs {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("run %d", i)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("campaign: spec %d (%s): %w", i, name, err)
		}
	}
	return nil
}

// config assembles spec i's full run configuration from the base.
func (c *Campaign) config(i int) scenario.Config {
	s := c.Specs[i]
	cfg := c.Base
	cfg.Venue = s.Venue
	cfg.Attack = s.Attack
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	} else {
		cfg.Seed = c.Base.Seed*1000 + int64(i) + 1
	}
	if s.DirectProberFraction != nil {
		cfg.DirectProberFraction = *s.DirectProberFraction
	}
	if s.ScanInterval != nil {
		cfg.ScanInterval = *s.ScanInterval
	}
	if s.ArrivalScale != nil {
		cfg.ArrivalScale = *s.ArrivalScale
	}
	if s.FrameLoss != nil {
		cfg.FrameLoss = *s.FrameLoss
	}
	if s.CanaryFraction != nil {
		cfg.CanaryFraction = *s.CanaryFraction
	}
	if s.RandomizeMACFraction != nil {
		cfg.RandomizeMACFraction = *s.RandomizeMACFraction
	}
	if s.PreconnectedFraction != nil {
		cfg.PreconnectedFraction = *s.PreconnectedFraction
	}
	if s.Deauth {
		cfg.EnableDeauth = true
	}
	if s.Sentinel {
		cfg.Sentinel = true
	}
	if s.CautiousMirror {
		cfg.CautiousMirror = true
	}
	if s.Randomization != "" {
		// Validate has vetted the name.
		cfg.Randomization = scenario.RandomizationByName[s.Randomization]
	}
	if s.Linker != "" {
		cfg.Linker = scenario.LinkerByName[s.Linker]
	}
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	if len(c.Pool.Labels) > 0 {
		// Job-scoped labels ride along on every spec's run; explicit
		// per-run labels (Base or Configure) win on conflict.
		merged := make(map[string]string, len(c.Pool.Labels)+len(cfg.RunLabels))
		for k, v := range c.Pool.Labels {
			merged[k] = v
		}
		for k, v := range cfg.RunLabels {
			merged[k] = v
		}
		cfg.RunLabels = merged
	}
	if c.Pool.Publisher != nil && cfg.Publisher == nil {
		// Each spec's run registers itself on the campaign's monitor; an
		// explicit per-run publisher set via Base or Configure wins.
		cfg.Publisher = c.Pool.Publisher
		if c.Pool.PublishEvery > 0 {
			cfg.PublishEvery = c.Pool.PublishEvery
		}
		if cfg.RunLabel == "" {
			cfg.RunLabel = s.Name
		}
	}
	return cfg
}

// Run executes the campaign. It blocks until every dispatched run has
// finished (no goroutine outlives the call).
//
// On success the error is nil and Outcome covers every spec. When ctx is
// cancelled, dispatch stops, in-flight runs stop promptly (their partial
// results are kept with their context errors), and Run returns the outcome
// so far together with ctx.Err(). When a spec fails for a non-context
// reason, the rest of the campaign is cancelled the same way and Run
// returns the lowest-index spec error — deterministic even though several
// specs may fail concurrently.
func (c *Campaign) Run(ctx context.Context) (*Outcome, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.Specs)
	workers := c.Pool.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// An internal cancel lets the first hard failure stop the rest of the
	// campaign the same way an external cancel would.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	feed := startCampaignFeed(c.Pool, n, workers)

	out := &Outcome{
		Results:     make([]*scenario.Result, n),
		Deployments: make([]*scenario.DeploymentResult, n),
		Errs:        make([]error, n),
		Skipped:     make([]bool, n),
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		next     int
		done     int
		failures int
		failed   bool
		drained  bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed || next >= n || runCtx.Err() != nil {
					mu.Unlock()
					return
				}
				if c.Pool.Drain != nil {
					select {
					case <-c.Pool.Drain:
						drained = true
						mu.Unlock()
						return
					default:
					}
				}
				i := next
				next++
				if c.Pool.Completed != nil && c.Pool.Completed(i) {
					// Durable result already exists: count the spec done
					// without running it. The caller holds the result, so
					// the outcome just marks the slot.
					out.Skipped[i] = true
					done++
					feed.specSkipped(i, c.Specs[i].Name, done)
					if c.Pool.OnProgress != nil {
						c.Pool.OnProgress(Progress{
							Index: i, Name: c.Specs[i].Name,
							Skipped: true, Done: done, Total: n,
						})
					}
					mu.Unlock()
					continue
				}
				mu.Unlock()

				cfg := c.config(i)
				feed.specStarted()
				specStart := time.Now()
				var (
					res *scenario.Result
					dep *scenario.DeploymentResult
					err error
				)
				if d := c.Specs[i].Deployment; d != nil {
					dcfg := *d
					dcfg.Base = cfg
					dep, err = scenario.RunDeploymentContext(runCtx, dcfg, c.Specs[i].Slot, c.Specs[i].Duration)
				} else {
					res, err = scenario.RunContext(runCtx, cfg, c.Specs[i].Slot, c.Specs[i].Duration)
				}
				specWall := time.Since(specStart)

				mu.Lock()
				out.Results[i] = res
				out.Deployments[i] = dep
				out.Errs[i] = err
				done++
				if err != nil {
					failures++
				}
				if err != nil && runCtx.Err() == nil {
					// A hard spec failure (not a cancellation): stop
					// dispatching and cancel in-flight runs.
					failed = true
					cancel()
				}
				feed.specFinished(i, c.Specs[i].Name, specWall, err, done, failures)
				if c.Pool.OnProgress != nil {
					c.Pool.OnProgress(Progress{
						Index: i, Name: c.Specs[i].Name,
						Err: err, Done: done, Total: n,
						Result: res, Deployment: dep,
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	out.aggregate()
	err := c.runError(ctx, out)
	if err == nil && drained && next < n {
		err = ErrDrained
	}
	feed.finish(err)
	if err != nil {
		return out, err
	}
	return out, nil
}

// runError selects the error Run reports: the external cancellation if
// any, else the lowest-index hard spec failure. Runs the internal cancel
// swept up carry context errors; they are collateral, not the cause.
func (c *Campaign) runError(ctx context.Context, out *Outcome) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var firstErr error
	firstIdx := -1
	for i, err := range out.Errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr, firstIdx = err, i
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("campaign: spec %d (%s): %w", i, c.Specs[i].Name, err)
		}
	}
	if firstErr != nil {
		return fmt.Errorf("campaign: spec %d (%s): %w", firstIdx, c.Specs[firstIdx].Name, firstErr)
	}
	return nil
}

// AggregateTallies summarises per-run tallies, in order, exactly as a
// campaign aggregates its error-free runs. Exported so callers that hold
// durable per-spec results (the job server's resume path) can rebuild a
// campaign aggregate that is byte-identical to an uninterrupted run.
func AggregateTallies(tallies []stats.Tally) Aggregate {
	var (
		a          Aggregate
		hitRates   []float64
		bcastRates []float64
		bcastHit   int
		bcastN     int
	)
	for _, t := range tallies {
		a.TotalClients += t.Total
		a.TotalVictims += t.ConnectedDirect + t.ConnectedBroadcast
		hitRates = append(hitRates, t.HitRate())
		bcastRates = append(bcastRates, t.BroadcastHitRate())
		bcastHit += t.ConnectedBroadcast
		bcastN += t.Broadcast
	}
	a.Runs = len(tallies)
	a.HitRate = stats.SummarizeRates(hitRates)
	a.BroadcastHitRate = stats.SummarizeRates(bcastRates)
	a.BroadcastLo, a.BroadcastHi = stats.WilsonInterval(bcastHit, bcastN)
	return a
}

// aggregate fills Outcome.Completed and Outcome.Aggregate from the
// error-free runs, in spec order. Skipped specs do not contribute — the
// caller that skipped them already holds their results.
func (o *Outcome) aggregate() {
	var tallies []stats.Tally
	for i, res := range o.Results {
		switch {
		case o.Errs[i] != nil:
			continue
		case res != nil:
			tallies = append(tallies, res.Tally)
		case i < len(o.Deployments) && o.Deployments[i] != nil:
			tallies = append(tallies, o.Deployments[i].Tally)
		default:
			continue
		}
	}
	o.Completed = len(tallies)
	o.Aggregate = AggregateTallies(tallies)
}
