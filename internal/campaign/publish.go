package campaign

import (
	"fmt"
	"sync"
	"time"

	"cityhunter/internal/obs"
)

// campaignFeed is the pool's own presence on a live monitor: one
// "campaign" run whose registry carries the progress gauges, refreshed
// after every spec. Campaign progress is wall-clock territory — worker
// scheduling is nondeterministic by design — so unlike the per-run feeds
// its timestamps come from time.Since, never the virtual clock. None of it
// feeds back into any simulation.
type campaignFeed struct {
	rp      obs.RunPublisher
	reg     *obs.Registry
	start   time.Time
	total   int
	workers int

	mu        sync.Mutex
	running   int
	completed []time.Duration // wall durations of finished specs

	gTotal   *obs.Gauge
	gDone    *obs.Gauge
	gRunning *obs.Gauge
	gFailed  *obs.Gauge
	gETA     *obs.Gauge
	hSpec    *obs.Histogram
}

// startCampaignFeed registers the campaign with the pool's publisher.
// Returns nil (a safe no-op handle) when no publisher is configured.
func startCampaignFeed(p Pool, total, workers int) *campaignFeed {
	if p.Publisher == nil {
		return nil
	}
	label := p.Label
	if label == "" {
		label = fmt.Sprintf("campaign (%d specs)", total)
	}
	reg := obs.NewRegistry()
	f := &campaignFeed{
		reg:      reg,
		start:    time.Now(),
		total:    total,
		gTotal:   reg.Gauge("campaign_specs_total"),
		gDone:    reg.Gauge("campaign_specs_done"),
		gRunning: reg.Gauge("campaign_specs_running"),
		gFailed:  reg.Gauge("campaign_specs_failed"),
		gETA:     reg.Gauge("campaign_eta_seconds"),
		hSpec:    reg.Histogram("campaign_spec_wall_seconds", []float64{1, 5, 15, 60, 300, 1800}),
	}
	f.workers = workers
	f.gTotal.Set(float64(total))
	labels := map[string]string{}
	for k, v := range p.Labels {
		labels[k] = v
	}
	labels["workers"] = fmt.Sprintf("%d", workers)
	f.rp = p.Publisher.StartRun(obs.RunInfo{
		Kind:   "campaign",
		Label:  label,
		Labels: labels,
	})
	f.rp.PublishSnapshot(0, reg.Snapshot())
	return f
}

// specStarted bumps the running gauge. Nil-safe.
func (f *campaignFeed) specStarted() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.running++
	running := f.running
	f.mu.Unlock()
	f.gRunning.Set(float64(running))
	f.publish()
}

// specFinished folds one finished spec into the gauges, re-estimates the
// ETA from the mean completed-spec wall time, emits a spec-done event and
// publishes a fresh snapshot. Nil-safe.
func (f *campaignFeed) specFinished(index int, name string, wall time.Duration, err error, done, failed int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.running--
	running := f.running
	f.completed = append(f.completed, wall)
	var mean time.Duration
	for _, d := range f.completed {
		mean += d
	}
	mean /= time.Duration(len(f.completed))
	f.mu.Unlock()

	f.gRunning.Set(float64(running))
	f.gDone.Set(float64(done))
	f.gFailed.Set(float64(failed))
	f.hSpec.Observe(wall.Seconds())
	remaining := f.total - done
	eta := 0.0
	if remaining > 0 && f.workers > 0 {
		// Remaining specs drain through the pool roughly remaining/workers
		// deep, each costing about the mean observed wall time.
		batches := (remaining + f.workers - 1) / f.workers
		eta = (time.Duration(batches) * mean).Seconds()
	}
	f.gETA.Set(eta)

	if name == "" {
		name = fmt.Sprintf("run %d", index)
	}
	detail := fmt.Sprintf("%d/%d done in %v", done, f.total, wall.Round(time.Millisecond))
	if err != nil {
		detail += "; error: " + err.Error()
	}
	f.rp.PublishEvent(obs.Event{At: time.Since(f.start), Type: obs.EventSpecDone,
		Actor: name, Detail: detail})
	f.publish()
}

// specSkipped counts a spec served from a durable result store: it bumps
// the done gauge and emits a spec-done event flagged "cached", but never
// touches the running gauge, the wall-time histogram or the ETA mean —
// cached specs cost no wall time and must not skew the estimate. Nil-safe.
func (f *campaignFeed) specSkipped(index int, name string, done int) {
	if f == nil {
		return
	}
	f.gDone.Set(float64(done))
	if name == "" {
		name = fmt.Sprintf("run %d", index)
	}
	f.rp.PublishEvent(obs.Event{At: time.Since(f.start), Type: obs.EventSpecDone,
		Actor: name, Detail: fmt.Sprintf("%d/%d done (cached)", done, f.total)})
	f.publish()
}

// publish pushes the current gauges, timestamped with campaign wall time.
func (f *campaignFeed) publish() {
	f.rp.PublishSnapshot(time.Since(f.start), f.reg.Snapshot())
}

// finish closes the campaign on the monitor. Nil-safe.
func (f *campaignFeed) finish(err error) {
	if f == nil {
		return
	}
	f.publish()
	f.rp.FinishRun(time.Since(f.start), err)
}
