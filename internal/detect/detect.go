// Package detect implements the evil-twin countermeasures the paper's
// conclusion points to ("existing techniques to detect evil twin APs ...
// can still work as effective countermeasures for the City-Hunter"):
//
//   - A passive Sentinel station that watches probe responses and beacons
//     and flags any BSSID advertising implausibly many distinct SSIDs —
//     the tell-tale of a KARMA-family attacker, which serves every lure
//     from one radio.
//   - Client-side canary probing (implemented in internal/client, driven
//     by client.Config.CanaryProbing): a client directs a probe at a
//     nonexistent random SSID each scan; any responder that mimics the
//     canary is hostile and gets ignored.
//
// Both are deployable inside the simulation to measure how quickly the
// attack is spotted and how much of the hunting rate survives a cautious
// population.
package detect

import (
	"fmt"
	"sort"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

// DefaultSSIDThreshold is how many distinct SSIDs one BSSID may advertise
// before the sentinel flags it. Legitimate APs advertise one or two
// (dual-SSID); an evil twin answering broadcast probes advertises dozens
// within a single scan window.
const DefaultSSIDThreshold = 5

// Finding is one flagged BSSID.
type Finding struct {
	// BSSID is the suspected evil twin.
	BSSID ieee80211.MAC
	// FlaggedAt is when the threshold was crossed.
	FlaggedAt time.Duration
	// SSIDCount is the distinct SSIDs observed by then.
	SSIDCount int
}

// Sentinel is a passive monitor station implementing the
// many-SSIDs-one-BSSID detector.
type Sentinel struct {
	addr      ieee80211.MAC
	pos       geo.Point
	clock     interface{ Now() time.Duration }
	threshold int

	ssids    map[ieee80211.MAC]map[string]bool
	flagged  map[ieee80211.MAC]bool
	findings []Finding

	// FramesSeen counts the management frames inspected.
	FramesSeen int
}

var _ sim.Station = (*Sentinel)(nil)

// NewSentinel builds a sentinel at the given position. threshold ≤ 0
// selects DefaultSSIDThreshold. Attach it to the medium to start watching.
func NewSentinel(engine *sim.Engine, addr ieee80211.MAC, pos geo.Point, threshold int) *Sentinel {
	if threshold <= 0 {
		threshold = DefaultSSIDThreshold
	}
	return &Sentinel{
		addr:      addr,
		pos:       pos,
		clock:     engine,
		threshold: threshold,
		ssids:     make(map[ieee80211.MAC]map[string]bool),
		flagged:   make(map[ieee80211.MAC]bool),
	}
}

// Addr implements sim.Station.
func (s *Sentinel) Addr() ieee80211.MAC { return s.addr }

// Pos implements sim.Station.
func (s *Sentinel) Pos() geo.Point { return s.pos }

// Receive implements sim.Station: track SSID diversity per BSSID.
func (s *Sentinel) Receive(f *ieee80211.Frame) {
	if f.Subtype != ieee80211.SubtypeProbeResponse && f.Subtype != ieee80211.SubtypeBeacon {
		return
	}
	s.FramesSeen++
	if f.SSID == "" {
		return
	}
	set, ok := s.ssids[f.BSSID]
	if !ok {
		set = make(map[string]bool)
		s.ssids[f.BSSID] = set
	}
	if set[f.SSID] {
		return
	}
	set[f.SSID] = true
	if !s.flagged[f.BSSID] && len(set) >= s.threshold {
		s.flagged[f.BSSID] = true
		s.findings = append(s.findings, Finding{
			BSSID:     f.BSSID,
			FlaggedAt: s.clock.Now(),
			SSIDCount: len(set),
		})
	}
}

// Flagged reports whether a BSSID has been identified as an evil twin.
func (s *Sentinel) Flagged(bssid ieee80211.MAC) bool { return s.flagged[bssid] }

// Findings returns all flagged BSSIDs in detection order.
func (s *Sentinel) Findings() []Finding {
	out := make([]Finding, len(s.findings))
	copy(out, s.findings)
	return out
}

// SSIDCount returns the distinct SSIDs observed from a BSSID so far.
func (s *Sentinel) SSIDCount(bssid ieee80211.MAC) int { return len(s.ssids[bssid]) }

// Observed returns every BSSID seen advertising at least one SSID, sorted
// by descending SSID diversity (the attacker floats to the top).
func (s *Sentinel) Observed() []Finding {
	out := make([]Finding, 0, len(s.ssids))
	for bssid, set := range s.ssids {
		out = append(out, Finding{BSSID: bssid, SSIDCount: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SSIDCount != out[j].SSIDCount {
			return out[i].SSIDCount > out[j].SSIDCount
		}
		return out[i].BSSID.String() < out[j].BSSID.String()
	})
	return out
}

// String summarises the sentinel state.
func (s *Sentinel) String() string {
	return fmt.Sprintf("sentinel: %d BSSIDs observed, %d flagged (threshold %d)",
		len(s.ssids), len(s.findings), s.threshold)
}
