package detect

import (
	"fmt"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/sim"
)

var (
	sentinelMAC = ieee80211.MAC{0x0a, 0xde, 0, 0, 0, 1}
	twinMAC     = ieee80211.MAC{0x0a, 0xbc, 0, 0, 0, 1}
	honestMAC   = ieee80211.MAC{0x0a, 0x11, 0, 0, 0, 1}
	clientMAC   = ieee80211.MAC{0x02, 0x22, 0, 0, 0, 1}
)

type emitter struct {
	addr ieee80211.MAC
	pos  geo.Point
}

func (e *emitter) Addr() ieee80211.MAC      { return e.addr }
func (e *emitter) Pos() geo.Point           { return e.pos }
func (e *emitter) Receive(*ieee80211.Frame) {}

func fixture(t *testing.T, threshold int) (*sim.Engine, *sim.Medium, *Sentinel, *emitter) {
	t.Helper()
	engine := sim.NewEngine()
	medium := sim.NewMedium(engine, 100)
	s := NewSentinel(engine, sentinelMAC, geo.Pt(0, 0), threshold)
	if err := medium.AttachPromiscuous(s); err != nil {
		t.Fatal(err)
	}
	tx := &emitter{addr: twinMAC, pos: geo.Pt(5, 0)}
	if err := medium.Attach(tx); err != nil {
		t.Fatal(err)
	}
	return engine, medium, s, tx
}

func respond(medium *sim.Medium, from ieee80211.MAC, ssid string) {
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeResponse,
		DA:      clientMAC, SA: from, BSSID: from,
		SSID: ssid, Capability: ieee80211.CapESS,
	})
}

func TestSentinelFlagsSSIDDiversity(t *testing.T) {
	engine, medium, s, _ := fixture(t, 5)
	for i := 0; i < 10; i++ {
		respond(medium, twinMAC, fmt.Sprintf("Lure-%d", i))
	}
	engine.Run(time.Second)
	if !s.Flagged(twinMAC) {
		t.Fatal("evil twin not flagged after 10 distinct SSIDs")
	}
	findings := s.Findings()
	if len(findings) != 1 {
		t.Fatalf("findings = %d", len(findings))
	}
	if findings[0].BSSID != twinMAC || findings[0].SSIDCount != 5 {
		t.Errorf("finding = %+v", findings[0])
	}
	if findings[0].FlaggedAt <= 0 {
		t.Error("zero detection time")
	}
	if s.SSIDCount(twinMAC) != 10 {
		t.Errorf("SSIDCount = %d", s.SSIDCount(twinMAC))
	}
}

func TestSentinelToleratesHonestAP(t *testing.T) {
	engine, medium, s, _ := fixture(t, 5)
	honest := &emitter{addr: honestMAC, pos: geo.Pt(-5, 0)}
	if err := medium.Attach(honest); err != nil {
		t.Fatal(err)
	}
	// A real AP repeats the same one or two SSIDs in responses/beacons.
	for i := 0; i < 50; i++ {
		respond(medium, honestMAC, "Cafe WiFi")
		medium.Transmit(&ieee80211.Frame{
			Subtype: ieee80211.SubtypeBeacon,
			DA:      ieee80211.BroadcastMAC, SA: honestMAC, BSSID: honestMAC,
			SSID: "Cafe WiFi Guest",
		})
	}
	engine.Run(time.Second)
	if s.Flagged(honestMAC) {
		t.Error("honest dual-SSID AP flagged")
	}
	if s.SSIDCount(honestMAC) != 2 {
		t.Errorf("SSIDCount = %d, want 2", s.SSIDCount(honestMAC))
	}
}

func TestSentinelIgnoresIrrelevantFrames(t *testing.T) {
	engine, medium, s, _ := fixture(t, 5)
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeRequest,
		DA:      ieee80211.BroadcastMAC, SA: twinMAC, SSID: "x",
	})
	medium.Transmit(&ieee80211.Frame{
		Subtype: ieee80211.SubtypeProbeResponse,
		DA:      clientMAC, SA: twinMAC, BSSID: twinMAC, SSID: "",
	})
	engine.Run(time.Second)
	if s.SSIDCount(twinMAC) != 0 {
		t.Errorf("counted SSIDs from probe requests / empty responses: %d", s.SSIDCount(twinMAC))
	}
}

func TestSentinelObservedOrdering(t *testing.T) {
	engine, medium, s, _ := fixture(t, 100)
	honest := &emitter{addr: honestMAC, pos: geo.Pt(-5, 0)}
	if err := medium.Attach(honest); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		respond(medium, twinMAC, fmt.Sprintf("L%d", i))
	}
	respond(medium, honestMAC, "OnlyOne")
	engine.Run(time.Second)
	obs := s.Observed()
	if len(obs) != 2 {
		t.Fatalf("observed = %d", len(obs))
	}
	if obs[0].BSSID != twinMAC || obs[0].SSIDCount != 7 {
		t.Errorf("top observed = %+v", obs[0])
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSentinelDefaultThreshold(t *testing.T) {
	engine, medium, s, _ := fixture(t, 0)
	for i := 0; i < DefaultSSIDThreshold-1; i++ {
		respond(medium, twinMAC, fmt.Sprintf("L%d", i))
	}
	engine.Run(time.Second)
	if s.Flagged(twinMAC) {
		t.Error("flagged below default threshold")
	}
	respond(medium, twinMAC, "one-more")
	engine.Run(engine.Now() + time.Second)
	if !s.Flagged(twinMAC) {
		t.Error("not flagged at default threshold")
	}
}
