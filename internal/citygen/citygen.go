// Package citygen synthesises the urban environment that the paper's field
// deployment observed for free: a city full of access points (chain shops,
// hotspot venues, residential networks), plus a stream of geotagged photos
// whose density tracks crowd density. The output feeds the WiGLE-substitute
// database (internal/wigle), the heat map (internal/heatmap) and the PNL
// generator (internal/pnl).
//
// The default configuration is shaped after the paper's Hong Kong examples:
// a "7-Eleven Free Wifi"-style chain with ~900 city-wide APs, an airport
// SSID with ~230 APs concentrated in one very crowded venue, a
// "Free Public WiFi" programme whose ~400 APs sit in crowded locations, and
// thousands of secured residential networks that are useless to the
// attacker.
package citygen

import (
	"fmt"
	"math/rand"

	"cityhunter/internal/geo"
	"cityhunter/internal/wigle"
)

// ChainSpec describes a brand whose shops are spread across the city.
type ChainSpec struct {
	// SSID all the chain's APs share.
	SSID string
	// Stores is the number of APs.
	Stores int
	// Open marks the network unencrypted.
	Open bool
	// NearCrowds biases store placement towards hotspot venues instead of
	// uniform coverage. The paper's "Free Public WiFi" has this shape:
	// only ~400 APs but "mostly deployed in various crowded locations".
	NearCrowds bool
}

// HotspotSpec describes an important functional area: airport, railway
// station, shopping mall.
type HotspotSpec struct {
	// Name identifies the venue.
	Name string
	// SSID is the venue's own Wi-Fi network ("" for venues without one).
	SSID string
	// Center and Radius bound the venue area.
	Center geo.Point
	Radius float64
	// APs is the number of APs broadcasting the venue SSID.
	APs int
	// Attractiveness is the venue's share of city foot traffic, in
	// arbitrary units; it drives both photo density and how likely a
	// random phone has visited (and therefore remembers) the venue SSID.
	Attractiveness float64
}

// Config controls city synthesis.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Bounds is the city extent in metres.
	Bounds geo.Rect
	// Chains and Hotspots; nil selects the Hong Kong-flavoured defaults.
	Chains   []ChainSpec
	Hotspots []HotspotSpec
	// ResidentialAPs is the number of secured home networks.
	ResidentialAPs int
	// CafeAPs is the number of independent small-business APs (each a
	// unique SSID, 70 % open).
	CafeAPs int
	// Photos is the number of geotagged photos to synthesise.
	Photos int
	// PhotoBackground is the fraction of photos scattered uniformly
	// rather than at venues (noise in the crowd proxy).
	PhotoBackground float64
}

// DefaultConfig returns the Hong Kong-flavoured configuration used by the
// experiments: an 8 km × 8 km city with one airport-class venue, two
// railway stations, two malls and a canteen district.
func DefaultConfig(seed int64) Config {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(8000, 8000))
	return Config{
		Seed:   seed,
		Bounds: bounds,
		Chains: []ChainSpec{
			{SSID: "-Free HKBN Wi-Fi-", Stores: 1200, Open: true},
			{SSID: "7-Eleven Free Wifi", Stores: 924, Open: true},
			{SSID: "-Circle K Free Wi-Fi-", Stores: 610, Open: true},
			{SSID: "CSL", Stores: 540, Open: true},
			{SSID: "CMCC-WEB", Stores: 470, Open: true},
			{SSID: "Free Public WiFi", Stores: 400, Open: true, NearCrowds: true},
			{SSID: "FREE 3Y5 AdWiFi", Stores: 160, Open: true, NearCrowds: true},
			{SSID: "McDonalds@HK", Stores: 240, Open: true},
			{SSID: "Starbucks HK", Stores: 170, Open: true},
			{SSID: "Wiretower-Secure", Stores: 300, Open: false},
		},
		Hotspots: []HotspotSpec{
			{Name: "Airport", SSID: "#HKAirport Free WiFi", Center: geo.Pt(1000, 7000), Radius: 450, APs: 231, Attractiveness: 30},
			{Name: "Central Station", SSID: "MTR Free Wi-Fi", Center: geo.Pt(4000, 4000), Radius: 300, APs: 120, Attractiveness: 22},
			{Name: "Kowloon Station", SSID: "KTT-Station-WiFi", Center: geo.Pt(6200, 2400), Radius: 280, APs: 90, Attractiveness: 16},
			{Name: "iSQUARE Mall", SSID: "iSQUARE Free WiFi", Center: geo.Pt(5200, 5600), Radius: 220, APs: 70, Attractiveness: 18},
			{Name: "theONE Mall", SSID: "theONE_WiFi", Center: geo.Pt(5400, 5200), Radius: 200, APs: 60, Attractiveness: 14},
			{Name: "Canteen District", SSID: "PolyU-Canteen-Free", Center: geo.Pt(2600, 2400), Radius: 260, APs: 40, Attractiveness: 10},
		},
		ResidentialAPs:  6000,
		CafeAPs:         900,
		Photos:          40000,
		PhotoBackground: 0.25,
	}
}

// SparseConfig returns a low-density suburb variant: fewer chains, fewer
// venues, and a thinner public-Wi-Fi ecosystem. Deployed there,
// City-Hunter's offline seeding has less to work with — a dimension the
// paper's dense-Hong-Kong evaluation could not explore.
func SparseConfig(seed int64) Config {
	bounds := geo.NewRect(geo.Pt(0, 0), geo.Pt(8000, 8000))
	return Config{
		Seed:   seed,
		Bounds: bounds,
		Chains: []ChainSpec{
			{SSID: "SuburbNet Free", Stores: 140, Open: true},
			{SSID: "QuickMart WiFi", Stores: 90, Open: true},
			{SSID: "Transit Free Wi-Fi", Stores: 60, Open: true, NearCrowds: true},
			{SSID: "LocalTelco-Secure", Stores: 120, Open: false},
		},
		Hotspots: []HotspotSpec{
			{Name: "Town Mall", SSID: "TownMall Guest", Center: geo.Pt(4000, 4000), Radius: 250, APs: 30, Attractiveness: 12},
			{Name: "Commuter Station", SSID: "Commuter WiFi", Center: geo.Pt(2500, 5500), Radius: 220, APs: 25, Attractiveness: 10},
		},
		ResidentialAPs:  9000,
		CafeAPs:         250,
		Photos:          12000,
		PhotoBackground: 0.45,
	}
}

// City is the generated environment.
type City struct {
	// Bounds is the city extent.
	Bounds geo.Rect
	// DB is the WiGLE-substitute AP database.
	DB *wigle.DB
	// Photos are the geotagged photo locations.
	Photos []geo.Point
	// Hotspots echoes the venue specs used (defaults filled in).
	Hotspots []HotspotSpec
	// Chains echoes the chain specs used.
	Chains []ChainSpec
}

// Generate synthesises a city from cfg.
func Generate(cfg Config) (*City, error) {
	if cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		return nil, fmt.Errorf("citygen: bounds %v have no area", cfg.Bounds)
	}
	if cfg.Photos < 0 || cfg.ResidentialAPs < 0 || cfg.CafeAPs < 0 {
		return nil, fmt.Errorf("citygen: negative counts in config")
	}
	if cfg.PhotoBackground < 0 || cfg.PhotoBackground > 1 {
		return nil, fmt.Errorf("citygen: photo background fraction %v outside [0,1]", cfg.PhotoBackground)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &City{
		Bounds:   cfg.Bounds,
		Hotspots: cfg.Hotspots,
		Chains:   cfg.Chains,
	}

	var records []wigle.Record
	bssid := newBSSIDAllocator()

	// Hotspot venue APs: clustered inside the venue radius.
	for _, h := range c.Hotspots {
		for i := 0; i < h.APs; i++ {
			records = append(records, wigle.Record{
				SSID:  h.SSID,
				BSSID: bssid.next(),
				Pos:   cfg.Bounds.Clamp(jitter(rng, h.Center, h.Radius)),
				Open:  true,
				Venue: h.Name,
			})
		}
	}

	// Chain stores: uniform city-wide, or biased to venues for
	// NearCrowds chains.
	for _, ch := range c.Chains {
		for i := 0; i < ch.Stores; i++ {
			var pos geo.Point
			if ch.NearCrowds && len(c.Hotspots) > 0 && rng.Float64() < 0.8 {
				h := c.pickVenue(rng)
				pos = jitter(rng, h.Center, h.Radius*1.5)
			} else {
				pos = uniformPoint(rng, cfg.Bounds)
			}
			records = append(records, wigle.Record{
				SSID:  ch.SSID,
				BSSID: bssid.next(),
				Pos:   cfg.Bounds.Clamp(pos),
				Open:  ch.Open,
			})
		}
	}

	// Residential networks: unique secured SSIDs.
	for i := 0; i < cfg.ResidentialAPs; i++ {
		records = append(records, wigle.Record{
			SSID:  fmt.Sprintf("HOME-%05d", i),
			BSSID: bssid.next(),
			Pos:   uniformPoint(rng, cfg.Bounds),
			Open:  false,
		})
	}

	// Independent cafés and small shops: unique SSIDs, mostly open.
	for i := 0; i < cfg.CafeAPs; i++ {
		records = append(records, wigle.Record{
			SSID:  fmt.Sprintf("Cafe-%04d Free WiFi", i),
			BSSID: bssid.next(),
			Pos:   uniformPoint(rng, cfg.Bounds),
			Open:  rng.Float64() < 0.7,
		})
	}

	db, err := wigle.New(cfg.Bounds, records)
	if err != nil {
		return nil, fmt.Errorf("citygen: build db: %w", err)
	}
	c.DB = db

	// Photos: a background fraction is uniform noise; the rest
	// concentrate at venues proportionally to attractiveness.
	c.Photos = make([]geo.Point, 0, cfg.Photos)
	total := totalAttractiveness(c.Hotspots)
	for i := 0; i < cfg.Photos; i++ {
		if total == 0 || rng.Float64() < cfg.PhotoBackground {
			c.Photos = append(c.Photos, uniformPoint(rng, cfg.Bounds))
			continue
		}
		h := c.pickVenue(rng)
		c.Photos = append(c.Photos, cfg.Bounds.Clamp(jitter(rng, h.Center, h.Radius)))
	}
	return c, nil
}

// pickVenue samples a hotspot proportionally to attractiveness.
func (c *City) pickVenue(rng *rand.Rand) HotspotSpec {
	total := totalAttractiveness(c.Hotspots)
	x := rng.Float64() * total
	for _, h := range c.Hotspots {
		if x < h.Attractiveness {
			return h
		}
		x -= h.Attractiveness
	}
	return c.Hotspots[len(c.Hotspots)-1]
}

func totalAttractiveness(hs []HotspotSpec) float64 {
	t := 0.0
	for _, h := range hs {
		t += h.Attractiveness
	}
	return t
}

// jitter returns a point normally scattered around center with standard
// deviation radius/2, truncated to 2 radii.
func jitter(rng *rand.Rand, center geo.Point, radius float64) geo.Point {
	for {
		dx := rng.NormFloat64() * radius / 2
		dy := rng.NormFloat64() * radius / 2
		if dx*dx+dy*dy <= 4*radius*radius {
			return center.Add(geo.Pt(dx, dy))
		}
	}
}

func uniformPoint(rng *rand.Rand, b geo.Rect) geo.Point {
	return geo.Pt(
		b.Min.X+rng.Float64()*b.Width(),
		b.Min.Y+rng.Float64()*b.Height(),
	)
}

// bssidAllocator hands out unique AP MACs.
type bssidAllocator struct{ n uint32 }

func newBSSIDAllocator() *bssidAllocator { return &bssidAllocator{} }

func (a *bssidAllocator) next() string {
	a.n++
	return fmt.Sprintf("0a:%02x:%02x:%02x:%02x:%02x",
		byte(a.n>>24), byte(a.n>>16), byte(a.n>>8), byte(a.n), byte(0))
}
