package citygen

import (
	"reflect"
	"testing"

	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
)

func generateDefault(t *testing.T, seed int64) *City {
	t.Helper()
	c, err := Generate(DefaultConfig(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty bounds", func(c *Config) { c.Bounds = geo.Rect{} }},
		{"negative photos", func(c *Config) { c.Photos = -1 }},
		{"negative residential", func(c *Config) { c.ResidentialAPs = -1 }},
		{"negative cafes", func(c *Config) { c.CafeAPs = -1 }},
		{"bad background", func(c *Config) { c.PhotoBackground = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig(1)
	c := generateDefault(t, 1)
	wantAPs := cfg.ResidentialAPs + cfg.CafeAPs
	for _, ch := range cfg.Chains {
		wantAPs += ch.Stores
	}
	for _, h := range cfg.Hotspots {
		wantAPs += h.APs
	}
	if c.DB.Len() != wantAPs {
		t.Errorf("DB has %d records, want %d", c.DB.Len(), wantAPs)
	}
	if len(c.Photos) != cfg.Photos {
		t.Errorf("%d photos, want %d", len(c.Photos), cfg.Photos)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateDefault(t, 42)
	b := generateDefault(t, 42)
	if !reflect.DeepEqual(a.DB.Records(), b.DB.Records()) {
		t.Error("same seed produced different AP records")
	}
	if !reflect.DeepEqual(a.Photos, b.Photos) {
		t.Error("same seed produced different photos")
	}
	c := generateDefault(t, 43)
	if reflect.DeepEqual(a.Photos, c.Photos) {
		t.Error("different seeds produced identical photos")
	}
}

func TestGenerateChainCounts(t *testing.T) {
	c := generateDefault(t, 2)
	counts := c.DB.CountBySSID(false)
	if counts["7-Eleven Free Wifi"] != 924 {
		t.Errorf("7-Eleven APs = %d, want 924 (paper's count)", counts["7-Eleven Free Wifi"])
	}
	if counts["#HKAirport Free WiFi"] != 231 {
		t.Errorf("airport APs = %d, want 231 (paper's count)", counts["#HKAirport Free WiFi"])
	}
}

func TestGenerateRecordsInsideBounds(t *testing.T) {
	c := generateDefault(t, 3)
	for i := 0; i < c.DB.Len(); i++ {
		if !c.Bounds.Contains(c.DB.At(i).Pos) {
			t.Fatalf("record %d at %v outside bounds", i, c.DB.At(i).Pos)
		}
	}
	for i, p := range c.Photos {
		if !c.Bounds.Contains(p) {
			t.Fatalf("photo %d at %v outside bounds", i, p)
		}
	}
}

func TestGenerateResidentialSecured(t *testing.T) {
	c := generateDefault(t, 4)
	for _, r := range c.DB.Records() {
		if len(r.SSID) > 4 && r.SSID[:4] == "HOME" && r.Open {
			t.Fatalf("residential %q is open", r.SSID)
		}
	}
}

func TestGenerateVenueAPsNearVenue(t *testing.T) {
	c := generateDefault(t, 5)
	var airport HotspotSpec
	for _, h := range c.Hotspots {
		if h.Name == "Airport" {
			airport = h
		}
	}
	for _, r := range c.DB.Records() {
		if r.SSID != airport.SSID {
			continue
		}
		if d := r.Pos.Dist(airport.Center); d > airport.Radius*3 {
			t.Fatalf("airport AP %v is %.0f m from the venue", r.Pos, d)
		}
	}
}

func TestPhotosConcentrateAtVenues(t *testing.T) {
	c := generateDefault(t, 6)
	hm, err := heatmap.FromPhotos(c.Bounds, 250, c.Photos)
	if err != nil {
		t.Fatal(err)
	}
	var airport HotspotSpec
	for _, h := range c.Hotspots {
		if h.Name == "Airport" {
			airport = h
		}
	}
	airportHeat := hm.HeatAt(airport.Center)
	// Compare against an arbitrary cold corner.
	coldHeat := hm.HeatAt(geo.Pt(7800, 200))
	if airportHeat < 10*coldHeat {
		t.Errorf("airport heat %d not ≫ background %d", airportHeat, coldHeat)
	}
}

// TestTableIVShape checks the paper's Table IV phenomenon: the airport SSID
// is outside the top 5 by AP count but inside the top 5 by heat value, and
// the crowd-deployed "Free Public WiFi" is promoted by the heat ranking.
func TestTableIVShape(t *testing.T) {
	c := generateDefault(t, 7)
	hm, err := heatmap.FromPhotos(c.Bounds, 250, c.Photos)
	if err != nil {
		t.Fatal(err)
	}

	byCount := c.DB.TopByAPCount(5)
	inTop := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	countTop := make([]string, len(byCount))
	for i, sc := range byCount {
		countTop[i] = sc.SSID
	}
	if inTop(countTop, "#HKAirport Free WiFi") {
		t.Errorf("airport SSID in top-5 by AP count %v; paper ranks it 13th", countTop)
	}
	if !inTop(countTop, "7-Eleven Free Wifi") {
		t.Errorf("7-Eleven missing from top-5 by AP count %v", countTop)
	}

	byHeat := hm.RankByHeat(c.DB.OpenPositionsBySSID())
	heatTop := make([]string, 0, 5)
	for _, sh := range byHeat[:5] {
		heatTop = append(heatTop, sh.SSID)
	}
	if !inTop(heatTop, "#HKAirport Free WiFi") {
		t.Errorf("airport SSID missing from top-5 by heat %v", heatTop)
	}
	if !inTop(heatTop, "Free Public WiFi") {
		t.Errorf("Free Public WiFi missing from top-5 by heat %v", heatTop)
	}
}

func TestGenerateNoHotspots(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Hotspots = nil
	cfg.Chains = []ChainSpec{{SSID: "OnlyChain", Stores: 10, Open: true, NearCrowds: true}}
	cfg.Photos = 100
	c, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate without hotspots: %v", err)
	}
	if got := c.DB.CountBySSID(true)["OnlyChain"]; got != 10 {
		t.Errorf("OnlyChain APs = %d", got)
	}
	if len(c.Photos) != 100 {
		t.Errorf("photos = %d", len(c.Photos))
	}
}

func TestGenerateUniqueBSSIDs(t *testing.T) {
	c := generateDefault(t, 9)
	seen := make(map[string]bool, c.DB.Len())
	for _, r := range c.DB.Records() {
		if seen[r.BSSID] {
			t.Fatalf("duplicate BSSID %s", r.BSSID)
		}
		seen[r.BSSID] = true
	}
}

func TestSparseConfigGenerates(t *testing.T) {
	c, err := Generate(SparseConfig(3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dense := generateDefault(t, 3)
	sparseOpen := len(c.DB.CountBySSID(true))
	denseOpen := len(dense.DB.CountBySSID(true))
	if sparseOpen >= denseOpen {
		t.Errorf("sparse city has %d open SSIDs, dense %d; suburb should be thinner",
			sparseOpen, denseOpen)
	}
	// Residential (secured, useless to the attacker) dominates harder.
	counts := c.DB.CountBySSID(false)
	secured := 0
	for ssid, n := range counts {
		if open := c.DB.CountBySSID(true)[ssid]; open == 0 {
			secured += n
		}
	}
	if secured < c.DB.Len()/2 {
		t.Errorf("secured APs = %d of %d; suburbs should be mostly homes", secured, c.DB.Len())
	}
}
