package citygen

import (
	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// RouteStops maps the city's hotspot venues onto far-field routing
// destinations: each venue becomes one district whose routing weight is its
// attractiveness — the same mass that drives photo density and PNL venue
// memberships, now also driving where the statistical pedestrians go.
// Districts inherit the venue extent, which is typically several times an
// attacker's promotion radius; that ratio is what keeps most district
// visitors in the cheap far-field tier.
func (c *City) RouteStops() []mobility.RouteStop {
	stops := make([]mobility.RouteStop, 0, len(c.Hotspots))
	for _, h := range c.Hotspots {
		stops = append(stops, mobility.RouteStop{
			Pos:    h.Center,
			Radius: h.Radius,
			Weight: h.Attractiveness,
		})
	}
	return stops
}

// CityScaleConfig returns the configuration for city-scale level-of-detail
// runs: the Hong Kong-flavoured base densified to a dozen districts so a
// deployment attacking three of them leaves the other nine as pure
// far-field traffic. AP counts stay modest — the interesting load here is
// pedestrians, not the database.
func CityScaleConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Hotspots = append(cfg.Hotspots,
		HotspotSpec{Name: "Ferry Pier", SSID: "PierLink Free", Center: geo.Pt(700, 3200), Radius: 260, APs: 25, Attractiveness: 9},
		HotspotSpec{Name: "University Quarter", SSID: "CampusNet-Guest", Center: geo.Pt(2200, 6100), Radius: 400, APs: 45, Attractiveness: 13},
		HotspotSpec{Name: "Night Market", SSID: "Market Free WiFi", Center: geo.Pt(6600, 5400), Radius: 300, APs: 20, Attractiveness: 11},
		HotspotSpec{Name: "Harbour Promenade", SSID: "Harbour-WiFi", Center: geo.Pt(4400, 900), Radius: 450, APs: 30, Attractiveness: 12},
		HotspotSpec{Name: "Exhibition Centre", SSID: "ExpoNet Free", Center: geo.Pt(7100, 1400), Radius: 320, APs: 35, Attractiveness: 8},
		HotspotSpec{Name: "Stadium District", SSID: "Stadium Guest WiFi", Center: geo.Pt(1400, 1100), Radius: 380, APs: 28, Attractiveness: 7},
	)
	return cfg
}
