package pnl

import (
	"math/rand"
	"testing"

	"cityhunter/internal/citygen"
	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
)

func benchModel(b *testing.B) *Model {
	b.Helper()
	cfg := citygen.DefaultConfig(1)
	cfg.ResidentialAPs = 2000
	cfg.CafeAPs = 400
	cfg.Photos = 10000
	city, err := citygen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hm, err := heatmap.FromPhotos(city.Bounds, 250, city.Photos)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewModel(city.DB, hm, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkNewList(b *testing.B) {
	m := benchModel(b)
	rng := rand.New(rand.NewSource(1))
	at := geo.Pt(2600, 2400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NewList(rng, at)
	}
}

func BenchmarkNewCompanionList(b *testing.B) {
	m := benchModel(b)
	rng := rand.New(rand.NewSource(1))
	at := geo.Pt(2600, 2400)
	leader := m.NewList(rng, at)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.NewCompanionList(rng, at, leader)
	}
}
