package pnl

import (
	"math"
	"math/rand"
	"testing"

	"cityhunter/internal/citygen"
	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/wigle"
)

// testCity builds one shared small city for the whole package; generation
// is deterministic so sharing is safe.
func testModel(t *testing.T, cfg Config) (*Model, *citygen.City) {
	t.Helper()
	ccfg := citygen.DefaultConfig(1)
	ccfg.ResidentialAPs = 800
	ccfg.CafeAPs = 200
	ccfg.Photos = 8000
	city, err := citygen.Generate(ccfg)
	if err != nil {
		t.Fatalf("citygen: %v", err)
	}
	hm, err := heatmap.FromPhotos(city.Bounds, 250, city.Photos)
	if err != nil {
		t.Fatalf("heatmap: %v", err)
	}
	m, err := NewModel(city.DB, hm, cfg)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m, city
}

func TestListContains(t *testing.T) {
	l := List{{SSID: "a", Open: true}, {SSID: "b"}}
	if !l.Contains("a") || !l.Contains("b") || l.Contains("c") {
		t.Error("Contains misbehaves")
	}
	if !l.OpenSSID("a") {
		t.Error("OpenSSID(a) = false")
	}
	if l.OpenSSID("b") {
		t.Error("OpenSSID on secured entry = true")
	}
	if l.OpenSSID("c") {
		t.Error("OpenSSID on missing entry = true")
	}
}

func TestProbeableExcludesHidden(t *testing.T) {
	l := List{
		{SSID: "home"},
		{SSID: "PCCW1x", Open: true, Hidden: true},
		{SSID: "cafe", Open: true},
	}
	got := l.Probeable()
	if len(got) != 2 {
		t.Fatalf("Probeable = %v", got)
	}
	for _, s := range got {
		if s == "PCCW1x" {
			t.Error("hidden carrier SSID disclosed in probes")
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	db, err := wigle.New(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := heatmap.New(db.Bounds(), 10)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{MeanPublicEntries: -1},
		{CarrierFraction: 2},
		{CompanionShare: -0.5},
	}
	for _, cfg := range bad {
		if _, err := NewModel(db, hm, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestNewListDeterministicPerSeed(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	at := geo.Pt(2600, 2400)
	a := m.NewList(rand.New(rand.NewSource(5)), at)
	b := m.NewList(rand.New(rand.NewSource(5)), at)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewListNoDuplicates(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	at := geo.Pt(4000, 4000)
	for trial := 0; trial < 200; trial++ {
		l := m.NewList(rng, at)
		seen := make(map[string]bool, len(l))
		for _, n := range l {
			if seen[n.SSID] {
				t.Fatalf("duplicate %q in %v", n.SSID, l)
			}
			seen[n.SSID] = true
		}
	}
}

func TestNewListComposition(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	at := geo.Pt(2600, 2400)
	const phones = 3000
	var private, public, carrier, total int
	for i := 0; i < phones; i++ {
		l := m.NewList(rng, at)
		total += len(l)
		for _, n := range l {
			switch {
			case n.Hidden:
				carrier++
			case n.Open:
				public++
			default:
				private++
			}
		}
	}
	if private <= public {
		t.Errorf("private entries (%d) should dominate public (%d): that is why MANA's harvested DB is low quality", private, public)
	}
	gotCarrier := float64(carrier) / phones
	if math.Abs(gotCarrier-DefaultConfig().CarrierFraction) > 0.05 {
		t.Errorf("carrier fraction = %.3f, want ≈%.2f", gotCarrier, DefaultConfig().CarrierFraction)
	}
	meanLen := float64(total) / phones
	if meanLen < 2 || meanLen > 9 {
		t.Errorf("mean PNL length %.2f outside plausible band", meanLen)
	}
}

func TestOpenHitProbabilityBand(t *testing.T) {
	// The probability that a random phone has at least one open,
	// non-hidden entry drives KARMA's direct hit rate; the paper
	// measured 24/85 ≈ 28 % (canteen) and 37/178 ≈ 21 % (passage).
	m, _ := testModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(13))
	at := geo.Pt(2600, 2400)
	const phones = 4000
	hits := 0
	for i := 0; i < phones; i++ {
		l := m.NewList(rng, at)
		for _, n := range l {
			if n.Open && !n.Hidden {
				hits++
				break
			}
		}
	}
	p := float64(hits) / phones
	if p < 0.12 || p > 0.38 {
		t.Errorf("P(open visible entry) = %.3f, want within the paper's direct-hit band [0.12, 0.38]", p)
	}
}

func TestCompanionSharing(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(17))
	at := geo.Pt(4000, 4000)
	shareSum, leaders := 0.0, 0
	for trial := 0; trial < 500; trial++ {
		leader := m.NewList(rng, at)
		if len(leader) == 0 {
			continue
		}
		comp := m.NewCompanionList(rng, at, leader)
		shared := 0
		for _, n := range leader {
			if comp.Contains(n.SSID) {
				shared++
			}
		}
		shareSum += float64(shared) / float64(len(leader))
		leaders++
	}
	meanShare := shareSum / float64(leaders)
	want := DefaultConfig().CompanionShare
	if math.Abs(meanShare-want) > 0.10 {
		t.Errorf("companion share = %.3f, want ≈%.2f", meanShare, want)
	}
}

func TestCompanionListNoDuplicates(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	rng := rand.New(rand.NewSource(19))
	at := geo.Pt(4000, 4000)
	for trial := 0; trial < 200; trial++ {
		leader := m.NewList(rng, at)
		comp := m.NewCompanionList(rng, at, leader)
		seen := make(map[string]bool, len(comp))
		for _, n := range comp {
			if seen[n.SSID] {
				t.Fatalf("duplicate %q", n.SSID)
			}
			seen[n.SSID] = true
		}
	}
}

func TestAdoptionFollowsHeat(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	// The airport SSID sits in the hottest venue; its adoption must beat
	// a random café's.
	airport := m.AdoptionProbability("#HKAirport Free WiFi")
	cafe := m.AdoptionProbability("Cafe-0001 Free WiFi")
	if airport <= cafe {
		t.Errorf("adoption airport=%.5f <= cafe=%.5f", airport, cafe)
	}
	if m.AdoptionProbability("no-such-ssid") != 0 {
		t.Error("unknown SSID has non-zero adoption")
	}
}

func TestCarrierSSIDs(t *testing.T) {
	m, _ := testModel(t, DefaultConfig())
	got := m.CarrierSSIDs()
	if len(got) != len(DefaultCarriers()) {
		t.Fatalf("CarrierSSIDs = %v", got)
	}
	// Carrier entries are open and hidden in generated lists.
	rng := rand.New(rand.NewSource(23))
	carrierSet := make(map[string]bool)
	for _, s := range got {
		carrierSet[s] = true
	}
	found := false
	for i := 0; i < 200 && !found; i++ {
		for _, n := range m.NewList(rng, geo.Pt(4000, 4000)) {
			if carrierSet[n.SSID] {
				found = true
				if !n.Open || !n.Hidden {
					t.Fatalf("carrier entry %+v should be open and hidden", n)
				}
			}
		}
	}
	if !found {
		t.Error("no carrier entry in 200 phones at 35% provisioning")
	}
}

func TestLocalPoolRespectsRadius(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeanLocalEntries = 3 // amplify local draws
	cfg.PublicUserFraction = 0
	cfg.MeanPublicEntries = 0
	cfg.MeanPrivateEntries = 0
	cfg.UnsafeExtraOpen = 0
	cfg.CarrierFraction = 0
	m, city := testModel(t, cfg)
	rng := rand.New(rand.NewSource(29))
	at := geo.Pt(2600, 2400)
	for i := 0; i < 50; i++ {
		for _, n := range m.NewList(rng, at) {
			// Every local entry's nearest AP is within the pool radius.
			nearby := city.DB.Nearby(at, cfg.LocalPoolRadius, true)
			ok := false
			for _, r := range nearby {
				if r.SSID == n.SSID {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("local entry %q has no AP within %v m", n.SSID, cfg.LocalPoolRadius)
			}
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	if poisson(rng, 0) != 0 || poisson(rng, -2) != 0 {
		t.Error("poisson of non-positive mean != 0")
	}
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 1.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.5) > 0.05 {
		t.Errorf("poisson mean = %.3f, want ≈1.5", mean)
	}
}

func TestPublicUniverseSize(t *testing.T) {
	m, city := testModel(t, DefaultConfig())
	open := city.DB.CountBySSID(true)
	if m.PublicUniverseSize() != len(open) {
		t.Errorf("universe = %d, open SSIDs = %d", m.PublicUniverseSize(), len(open))
	}
}

func TestAvailabilityScalesUserFraction(t *testing.T) {
	cfg := DefaultConfig()
	dense, _ := testModel(t, cfg)
	if got, want := dense.EffectiveUserFraction(), cfg.PublicUserFraction; got > want+1e-9 {
		t.Errorf("dense effective fraction %v above configured %v", got, want)
	}
	// A near-empty ecosystem drives adoption towards zero.
	db, err := wigle.New(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), []wigle.Record{
		{SSID: "Lonely Cafe", Pos: geo.Pt(10, 10), Open: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := heatmap.New(db.Bounds(), 100)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := NewModel(db, hm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := thin.EffectiveUserFraction(); got > cfg.PublicUserFraction/100 {
		t.Errorf("thin ecosystem fraction = %v, want ≈0", got)
	}
}

// TestLocalPoolOrderIndependent pins the local-pool cache as a pure
// function of the query position: two nearby positions (closer than any
// plausible cache granularity, like the 60 m station–passage gap) must each
// get the pool computed from their own coordinates regardless of which was
// queried first. A coarser-keyed cache lets the first caller poison the
// second's pool, which showed up as cross-test golden divergence when the
// far-field tier and the classic runs shared one model.
func TestLocalPoolOrderIndependent(t *testing.T) {
	cfg := DefaultConfig()
	a, b := geo.Pt(4000, 4000), geo.Pt(4050, 4020)

	m1, _ := testModel(t, cfg)
	poolA1 := append([]string(nil), m1.localPool(a)...)
	poolB1 := append([]string(nil), m1.localPool(b)...)

	m2, _ := testModel(t, cfg)
	poolB2 := append([]string(nil), m2.localPool(b)...)
	poolA2 := append([]string(nil), m2.localPool(a)...)

	equal := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !equal(poolA1, poolA2) {
		t.Errorf("pool at %v depends on query order:\nfirst  %v\nsecond %v", a, poolA1, poolA2)
	}
	if !equal(poolB1, poolB2) {
		t.Errorf("pool at %v depends on query order:\nfirst  %v\nsecond %v", b, poolB1, poolB2)
	}
	// Cached lookups stay stable too.
	if !equal(poolA1, m1.localPool(a)) || !equal(poolB2, m2.localPool(b)) {
		t.Error("cached pool changed between lookups")
	}
}
