// Package pnl models smartphone Preferred Network Lists: which networks a
// phone remembers, which of those are open (auto-joinable by an evil twin),
// and how lists correlate between people walking together.
//
// The attack's success probabilities all flow from this model, so its shape
// matters more than its size:
//
//   - Public open networks (chains, venue Wi-Fi, cafés) are adopted with
//     probability proportional to a sub-linear power of the SSID's crowd
//     heat — people remember networks from places they visit, and visits
//     track crowd density. This makes the attacker's heat-ranked WiGLE
//     seeding effective, exactly as the paper found (74 % of broadcast hits
//     came from WiGLE-sourced SSIDs).
//   - Private home/work networks are secured and unique per household;
//     they dominate PNL contents and are useless to the attacker, which is
//     why MANA's harvested database has such low quality.
//   - Carrier hotspot SSIDs (the paper's PCCW1x example) are pre-installed
//     on a fraction of phones and never appear in directed probes, so the
//     attacker can only exploit them by seeding them explicitly (§V-B).
//   - Companions (family, friends) share a configurable fraction of their
//     entries — the basis of the freshness effect.
package pnl

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/wigle"
)

// Network is one PNL entry.
type Network struct {
	// SSID is the remembered network name.
	SSID string
	// Open marks networks the phone will auto-join without credentials;
	// an evil twin advertising this SSID captures the phone.
	Open bool
	// Hidden entries are never included in directed probes (iOS treats
	// carrier-provisioned entries this way), so neither KARMA nor MANA can
	// learn them over the air.
	Hidden bool
}

// List is a phone's preferred network list.
type List []Network

// Contains reports whether the list holds ssid.
func (l List) Contains(ssid string) bool {
	for _, n := range l {
		if n.SSID == ssid {
			return true
		}
	}
	return false
}

// OpenSSID reports whether ssid is an open entry — the hit condition for an
// evil twin advertising an unencrypted network.
func (l List) OpenSSID(ssid string) bool {
	for _, n := range l {
		if n.SSID == ssid && n.Open {
			return true
		}
	}
	return false
}

// Probeable returns the SSIDs a direct-probing phone discloses: every entry
// except hidden ones.
func (l List) Probeable() []string {
	var out []string
	for _, n := range l {
		if !n.Hidden {
			out = append(out, n.SSID)
		}
	}
	return out
}

// CarrierNetwork pairs a carrier hotspot SSID with its subscriber share.
type CarrierNetwork struct {
	SSID string
	// Share is the carrier's share among carrier-provisioned phones.
	Share float64
}

// DefaultCarriers mirrors the paper's Hong Kong example: carrier hotspot
// SSIDs that iOS pre-installs for subscribers.
func DefaultCarriers() []CarrierNetwork {
	return []CarrierNetwork{
		{SSID: "PCCW1x", Share: 0.4},
		{SSID: "CSL Auto Connect", Share: 0.3},
		{SSID: "3HK Wi-Fi", Share: 0.2},
		{SSID: "SmarTone Auto", Share: 0.1},
	}
}

// Config tunes the generator. The defaults reproduce the paper's observed
// rates; see EXPERIMENTS.md for the calibration.
type Config struct {
	// PublicUserFraction is the share of phones that use public Wi-Fi at
	// all. Adoption is zero-inflated: non-users remember no open public
	// networks, users remember 1 + Poisson(MeanPublicEntries) of them.
	// The clustering matters: it is why MANA's early harvest — fed by a
	// handful of unsafe phones — still contains a few genuinely popular
	// SSIDs.
	PublicUserFraction float64
	// MeanPublicEntries is the Poisson mean of open public networks a
	// public-Wi-Fi user remembers beyond the first.
	MeanPublicEntries float64
	// MeanLocalEntries is the Poisson mean of venue-local open networks
	// per phone generated at a venue (people nearby have often joined
	// nearby APs — the rationale for the attacker's nearby-100 selection).
	MeanLocalEntries float64
	// MeanPrivateEntries is the Poisson mean of secured home/work
	// networks per phone.
	MeanPrivateEntries float64
	// AdoptionExponent is the power applied to SSID heat when building
	// the adoption distribution; values below 1 flatten the head.
	AdoptionExponent float64
	// CarrierFraction is the fraction of phones with a pre-installed
	// carrier hotspot entry.
	CarrierFraction float64
	// Carriers is the carrier SSID set; nil selects DefaultCarriers.
	Carriers []CarrierNetwork
	// CompanionShare is the probability a companion copies each entry of
	// the group leader's list.
	CompanionShare float64
	// UnsafeExtraOpen is the Poisson mean of additional open public
	// entries on phones that still send directed probes. The paper's
	// KARMA baseline hits ~28 % of direct probers — noticeably above the
	// broadcast ceiling — because the unsafe population skews towards
	// older devices with more legacy open networks remembered.
	UnsafeExtraOpen float64
	// LocalPoolSize is how many nearest open SSIDs form a venue's local
	// adoption pool.
	LocalPoolSize int
	// LocalPoolRadius caps how far (metres) a local-pool SSID's nearest
	// AP may be from the venue.
	LocalPoolRadius float64
	// AvailabilityReference is the open-AP count at which the full
	// PublicUserFraction applies. Thinner ecosystems scale the user
	// fraction down proportionally: where there is little public Wi-Fi,
	// few phones have ever joined any. Zero selects 5000 (the calibrated
	// dense city has ≈5900 open APs, so its fraction is unscaled).
	AvailabilityReference float64
}

// DefaultConfig returns the calibrated generator configuration.
func DefaultConfig() Config {
	return Config{
		PublicUserFraction:    0.17,
		MeanPublicEntries:     0.55,
		MeanLocalEntries:      0.04,
		MeanPrivateEntries:    4.0,
		AdoptionExponent:      0.28,
		CarrierFraction:       0.12,
		CompanionShare:        0.55,
		UnsafeExtraOpen:       0.30,
		LocalPoolSize:         25,
		LocalPoolRadius:       900,
		AvailabilityReference: 5000,
	}
}

// Model generates PNLs for a given city.
type Model struct {
	cfg      Config
	db       *wigle.DB
	carriers []CarrierNetwork

	// Adoption distribution over open public SSIDs.
	publicSSIDs []string
	publicCum   []float64 // cumulative weights for binary-search sampling

	// effectiveUserFraction is PublicUserFraction scaled by public-Wi-Fi
	// availability (see Config.AvailabilityReference).
	effectiveUserFraction float64

	// privateUniverse is the pool of secured SSIDs homes draw from.
	privateUniverse []string

	// localPools caches the venue-local pools by exact query position, so
	// a cached pool is a pure function of its key: results never depend on
	// which caller touched a neighbourhood first (venue positions sit
	// close enough — station and passage are 60 m apart — that a coarser
	// key would let one workload poison another's pool on a shared model).
	// The mutex makes the cache safe for concurrent experiment runs
	// sharing one model; everything else in the model is read-only after
	// construction.
	localPoolMu sync.Mutex
	localPools  map[geo.Point][]string
}

// NewModel derives the adoption model from the city database and heat map.
func NewModel(db *wigle.DB, hm *heatmap.Map, cfg Config) (*Model, error) {
	if cfg.MeanPublicEntries < 0 || cfg.MeanLocalEntries < 0 || cfg.MeanPrivateEntries < 0 {
		return nil, fmt.Errorf("pnl: negative entry means")
	}
	if cfg.PublicUserFraction < 0 || cfg.PublicUserFraction > 1 {
		return nil, fmt.Errorf("pnl: public user fraction %v outside [0,1]", cfg.PublicUserFraction)
	}
	if cfg.CarrierFraction < 0 || cfg.CarrierFraction > 1 {
		return nil, fmt.Errorf("pnl: carrier fraction %v outside [0,1]", cfg.CarrierFraction)
	}
	if cfg.CompanionShare < 0 || cfg.CompanionShare > 1 {
		return nil, fmt.Errorf("pnl: companion share %v outside [0,1]", cfg.CompanionShare)
	}
	m := &Model{
		cfg:        cfg,
		db:         db,
		carriers:   cfg.Carriers,
		localPools: make(map[geo.Point][]string),
	}
	if m.carriers == nil {
		m.carriers = DefaultCarriers()
	}

	ranked := hm.RankByHeat(db.OpenPositionsBySSID())
	m.publicSSIDs = make([]string, 0, len(ranked))
	m.publicCum = make([]float64, 0, len(ranked))
	sum := 0.0
	for _, sh := range ranked {
		w := math.Pow(float64(sh.Heat)+1, cfg.AdoptionExponent)
		sum += w
		m.publicSSIDs = append(m.publicSSIDs, sh.SSID)
		m.publicCum = append(m.publicCum, sum)
	}

	openAPs := 0
	for _, c := range db.CountBySSID(true) {
		openAPs += c
	}
	ref := cfg.AvailabilityReference
	if ref <= 0 {
		ref = 5000
	}
	scale := float64(openAPs) / ref
	if scale > 1 {
		scale = 1
	}
	m.effectiveUserFraction = cfg.PublicUserFraction * scale

	openBySSID := db.CountBySSID(true)
	for ssid, count := range db.CountBySSID(false) {
		if count == 1 {
			if openBySSID[ssid] == 0 {
				m.privateUniverse = append(m.privateUniverse, ssid)
			}
		}
	}
	sort.Strings(m.privateUniverse)
	return m, nil
}

// PublicUniverseSize returns the number of open public SSIDs in the
// adoption distribution.
func (m *Model) PublicUniverseSize() int { return len(m.publicSSIDs) }

// AdoptionProbability returns the probability that one public-entry draw
// selects ssid, or 0 when the SSID is not in the universe.
func (m *Model) AdoptionProbability(ssid string) float64 {
	if len(m.publicCum) == 0 {
		return 0
	}
	total := m.publicCum[len(m.publicCum)-1]
	prev := 0.0
	for i, s := range m.publicSSIDs {
		if s == ssid {
			return (m.publicCum[i] - prev) / total
		}
		prev = m.publicCum[i]
	}
	return 0
}

// samplePublic draws one SSID from the adoption distribution.
func (m *Model) samplePublic(rng *rand.Rand) string {
	if len(m.publicCum) == 0 {
		return ""
	}
	total := m.publicCum[len(m.publicCum)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(m.publicCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.publicCum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return m.publicSSIDs[lo]
}

// localPool returns the venue-local open SSIDs for a position, cached per
// exact position (callers query at canonical venue/site positions, so the
// cache stays small).
func (m *Model) localPool(at geo.Point) []string {
	key := at
	m.localPoolMu.Lock()
	pool, ok := m.localPools[key]
	m.localPoolMu.Unlock()
	if ok {
		return pool
	}
	pool = m.db.NearestSSIDs(at, m.cfg.LocalPoolSize)
	// Enforce the radius cap: drop SSIDs whose nearest AP is too far.
	filtered := pool[:0]
	for _, ssid := range pool {
		if m.nearestAPWithin(ssid, at, m.cfg.LocalPoolRadius) {
			filtered = append(filtered, ssid)
		}
	}
	m.localPoolMu.Lock()
	m.localPools[key] = filtered
	m.localPoolMu.Unlock()
	return filtered
}

func (m *Model) nearestAPWithin(ssid string, at geo.Point, radius float64) bool {
	for _, r := range m.db.Nearby(at, radius, true) {
		if r.SSID == ssid {
			return true
		}
	}
	return false
}

// NewList generates a fresh PNL for a phone observed at position at.
func (m *Model) NewList(rng *rand.Rand, at geo.Point) List {
	var l List
	add := func(n Network) {
		if n.SSID != "" && !l.Contains(n.SSID) {
			l = append(l, n)
		}
	}
	if rng.Float64() < m.effectiveUserFraction {
		for i, k := 0, 1+poisson(rng, m.cfg.MeanPublicEntries); i < k; i++ {
			add(Network{SSID: m.samplePublic(rng), Open: true})
		}
	}
	if pool := m.localPool(at); len(pool) > 0 {
		for i, k := 0, poisson(rng, m.cfg.MeanLocalEntries); i < k; i++ {
			add(Network{SSID: pool[rng.Intn(len(pool))], Open: true})
		}
	}
	if n := len(m.privateUniverse); n > 0 {
		for i, k := 0, poisson(rng, m.cfg.MeanPrivateEntries); i < k; i++ {
			add(Network{SSID: m.privateUniverse[rng.Intn(n)], Open: false})
		}
	}
	if rng.Float64() < m.cfg.CarrierFraction {
		add(Network{SSID: m.sampleCarrier(rng), Open: true, Hidden: true})
	}
	return l
}

// AugmentUnsafe adds the unsafe-population extra open entries to a list
// and returns it. Callers apply it to phones flagged as direct probers.
func (m *Model) AugmentUnsafe(rng *rand.Rand, l List) List {
	for i, k := 0, poisson(rng, m.cfg.UnsafeExtraOpen); i < k; i++ {
		ssid := m.samplePublic(rng)
		if ssid != "" && !l.Contains(ssid) {
			l = append(l, Network{SSID: ssid, Open: true})
		}
	}
	return l
}

// NewCompanionList generates a PNL for someone walking with the owner of
// leader: each leader entry is copied with probability CompanionShare, then
// the companion gets its own independent draws on top.
func (m *Model) NewCompanionList(rng *rand.Rand, at geo.Point, leader List) List {
	var l List
	for _, n := range leader {
		if rng.Float64() < m.cfg.CompanionShare {
			l = append(l, n)
		}
	}
	for _, n := range m.NewList(rng, at) {
		if !l.Contains(n.SSID) {
			l = append(l, n)
		}
	}
	return l
}

func (m *Model) sampleCarrier(rng *rand.Rand) string {
	total := 0.0
	for _, c := range m.carriers {
		total += c.Share
	}
	if total == 0 {
		return ""
	}
	x := rng.Float64() * total
	for _, c := range m.carriers {
		if x < c.Share {
			return c.SSID
		}
		x -= c.Share
	}
	return m.carriers[len(m.carriers)-1].SSID
}

// EffectiveUserFraction returns the availability-scaled share of phones
// that remember any open public network.
func (m *Model) EffectiveUserFraction() float64 { return m.effectiveUserFraction }

// CarrierSSIDs returns the carrier SSID set the model provisions.
func (m *Model) CarrierSSIDs() []string {
	out := make([]string, len(m.carriers))
	for i, c := range m.carriers {
		out[i] = c.SSID
	}
	return out
}

// poisson draws from a Poisson distribution with the given mean using
// Knuth's method (the means here are small, so it is fast).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological means
			return k
		}
	}
}
