// Package mobility models when people show up near the attacker, how long
// they stay in radio range, how fast they move through it, and whether they
// arrive alone or in social groups.
//
// These are the levers behind the paper's venue differences: in a canteen
// people sit still for tens of minutes (many scan cycles, many SSIDs
// tried), in a subway passage they traverse the radio disk in under a
// minute (one or two scans, ≤40–80 SSIDs tried), and malls/stations mix
// the two. Arrival rates follow hour-of-day profiles with the rush-hour
// and meal-time peaks visible in Figure 5, and the share of people walking
// in groups — whose phones share PNL entries — rises in rush hours, which
// is what feeds the Freshness Buffer.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"cityhunter/internal/geo"
)

// DwellModel samples how long a phone stays inside the attacker's radio
// range.
type DwellModel interface {
	// SampleDwell draws one dwell duration.
	SampleDwell(rng *rand.Rand) time.Duration
}

// StaticDwell is the canteen pattern: log-normally distributed sitting
// times.
type StaticDwell struct {
	// Median dwell time.
	Median time.Duration
	// Sigma is the log-normal shape parameter.
	Sigma float64
	// Max clips the tail.
	Max time.Duration
}

// SampleDwell implements DwellModel.
func (s StaticDwell) SampleDwell(rng *rand.Rand) time.Duration {
	d := time.Duration(float64(s.Median) * math.Exp(s.Sigma*rng.NormFloat64()))
	if s.Max > 0 && d > s.Max {
		d = s.Max
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}

// CorridorDwell is the passage pattern: the time to walk through the radio
// disk at a uniformly drawn walking speed.
type CorridorDwell struct {
	// PathLength is the in-range walk distance in metres (≈ the radio
	// disk diameter for a straight corridor).
	PathLength float64
	// SpeedMin and SpeedMax bound the walking speed in m/s.
	SpeedMin, SpeedMax float64
}

// SampleDwell implements DwellModel.
func (c CorridorDwell) SampleDwell(rng *rand.Rand) time.Duration {
	speed := c.SpeedMin + rng.Float64()*(c.SpeedMax-c.SpeedMin)
	if speed <= 0 {
		speed = 1
	}
	return time.Duration(c.PathLength / speed * float64(time.Second))
}

// HybridDwell mixes a static and a moving population, the mall/station
// pattern.
type HybridDwell struct {
	// StaticFraction of people behave like Static; the rest like Moving.
	StaticFraction float64
	Static         DwellModel
	Moving         DwellModel
}

// SampleDwell implements DwellModel.
func (h HybridDwell) SampleDwell(rng *rand.Rand) time.Duration {
	if rng.Float64() < h.StaticFraction {
		return h.Static.SampleDwell(rng)
	}
	return h.Moving.SampleDwell(rng)
}

// Profile is an hour-of-day arrival-rate profile: expected client arrivals
// per minute for each hour slot starting at StartHour.
type Profile struct {
	// StartHour is the wall-clock hour of slot 0 (the paper tests run
	// 8am–8pm, so 8).
	StartHour int
	// PerMinute holds the expected arrivals per minute per hour slot.
	PerMinute []float64
}

// Validate checks the profile shape.
func (p Profile) Validate() error {
	if len(p.PerMinute) == 0 {
		return fmt.Errorf("mobility: empty profile")
	}
	for i, r := range p.PerMinute {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("mobility: bad rate %v in slot %d", r, i)
		}
	}
	return nil
}

// Slots returns the number of hour slots.
func (p Profile) Slots() int { return len(p.PerMinute) }

// Rate returns the arrivals-per-minute at an offset from the profile start.
// Offsets beyond the profile return the last slot's rate.
func (p Profile) Rate(offset time.Duration) float64 {
	if len(p.PerMinute) == 0 {
		return 0
	}
	slot := int(offset / time.Hour)
	if slot < 0 {
		slot = 0
	}
	if slot >= len(p.PerMinute) {
		slot = len(p.PerMinute) - 1
	}
	return p.PerMinute[slot]
}

// SlotLabel returns a "8am-9am"-style label for a slot index.
func (p Profile) SlotLabel(slot int) string {
	h := p.StartHour + slot
	return fmt.Sprintf("%s-%s", hourLabel(h), hourLabel(h+1))
}

func hourLabel(h int) string {
	h = ((h % 24) + 24) % 24
	switch {
	case h == 0:
		return "12am"
	case h < 12:
		return fmt.Sprintf("%dam", h)
	case h == 12:
		return "12pm"
	default:
		return fmt.Sprintf("%dpm", h-12)
	}
}

// The four venue profiles, shaped after Fig. 5's bar heights (arrivals per
// minute). Subway passages peak in the two rush hours; canteens at the
// three meal times; malls build through the afternoon; stations blend
// commuter peaks with all-day traffic.

// PassageProfile is the subway-passage arrival profile, 8am–8pm.
func PassageProfile() Profile {
	return Profile{StartHour: 8, PerMinute: []float64{
		42, 26, 14, 12, 16, 15, 13, 12, 14, 20, 38, 30,
	}}
}

// CanteenProfile is the canteen arrival profile with meal peaks.
func CanteenProfile() Profile {
	return Profile{StartHour: 8, PerMinute: []float64{
		14, 6, 4, 8, 22, 18, 6, 4, 5, 8, 19, 12,
	}}
}

// MallProfile is the shopping-centre profile.
func MallProfile() Profile {
	return Profile{StartHour: 8, PerMinute: []float64{
		6, 8, 10, 12, 16, 17, 15, 14, 15, 17, 18, 14,
	}}
}

// StationProfile is the railway-station profile.
func StationProfile() Profile {
	return Profile{StartHour: 8, PerMinute: []float64{
		30, 20, 12, 11, 13, 13, 12, 11, 12, 16, 28, 24,
	}}
}

// Arrivals draws the arrival offsets of an inhomogeneous Poisson process
// over [start, start+duration), using per-minute thinning against the
// profile. Offsets are measured from the profile start and returned in
// ascending order.
func Arrivals(rng *rand.Rand, p Profile, start, duration time.Duration) ([]time.Duration, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if duration < 0 {
		return nil, fmt.Errorf("mobility: negative duration")
	}
	var out []time.Duration
	for minStart := start; minStart < start+duration; minStart += time.Minute {
		binLen := time.Minute
		if rem := start + duration - minStart; rem < binLen {
			binLen = rem
		}
		mean := p.Rate(minStart) * binLen.Minutes()
		for i, k := 0, poisson(rng, mean); i < k; i++ {
			out = append(out, minStart+time.Duration(rng.Int63n(int64(binLen))))
		}
	}
	sortDurations(out)
	return out, nil
}

// GroupModel samples social group sizes. Index i of Probs is the relative
// weight of group size i+1.
type GroupModel struct {
	Probs []float64
}

// DefaultGroups returns the baseline group-size mix: mostly singles, some
// pairs, few larger groups.
func DefaultGroups() GroupModel {
	return GroupModel{Probs: []float64{0.62, 0.25, 0.09, 0.04}}
}

// RushGroups returns the rush-hour mix with more companionship (families
// and colleagues commuting together, diners at meal time).
func RushGroups() GroupModel {
	return GroupModel{Probs: []float64{0.45, 0.33, 0.14, 0.08}}
}

// SampleSize draws one group size (≥ 1).
func (g GroupModel) SampleSize(rng *rand.Rand) int {
	total := 0.0
	for _, p := range g.Probs {
		total += p
	}
	if total <= 0 {
		return 1
	}
	x := rng.Float64() * total
	for i, p := range g.Probs {
		if x < p {
			return i + 1
		}
		x -= p
	}
	return len(g.Probs)
}

// Path is a straight walking path through the radio disk for moving
// clients: entry and exit points plus the dwell time to cover it.
type Path struct {
	From, To geo.Point
	Duration time.Duration
}

// At returns the position at an offset into the path (clamped to the ends).
func (p Path) At(offset time.Duration) geo.Point {
	if p.Duration <= 0 || offset >= p.Duration {
		return p.To
	}
	if offset <= 0 {
		return p.From
	}
	f := float64(offset) / float64(p.Duration)
	return p.From.Add(p.To.Sub(p.From).Scale(f))
}

// CorridorPath builds a path crossing the radio disk of the given radius
// centred at center: a chord at a random perpendicular offset.
func CorridorPath(rng *rand.Rand, center geo.Point, radius float64, dwell time.Duration) Path {
	// Perpendicular offset within ±radius/2 keeps the chord long enough
	// to be in range for most of the dwell.
	off := (rng.Float64() - 0.5) * radius
	half := math.Sqrt(math.Max(radius*radius-off*off, 1))
	from := center.Add(geo.Pt(-half, off))
	to := center.Add(geo.Pt(half, off))
	return Path{From: from, To: to, Duration: dwell}
}

// StaticPos draws a sitting position uniformly inside the disk of the
// given radius around center.
func StaticPos(rng *rand.Rand, center geo.Point, radius float64) geo.Point {
	for {
		x := (rng.Float64()*2 - 1) * radius
		y := (rng.Float64()*2 - 1) * radius
		if x*x+y*y <= radius*radius {
			return center.Add(geo.Pt(x, y))
		}
	}
}

// poisson draws from a Poisson distribution with the given mean (Knuth's
// method; the per-minute means here are modest).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 100000 {
			return k
		}
	}
}

// sortDurations is an insertion sort; arrivals are generated almost sorted
// (bin by bin), so this is effectively linear.
func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}
