package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/geo"
)

// RouteStop is one destination a city pedestrian can visit: a venue
// district with a position, an extent, a dwell model, and an
// attractiveness weight (the citygen hotspot attractiveness, reused here
// as the routing probability mass).
type RouteStop struct {
	// Pos is the district center in city coordinates.
	Pos geo.Point
	// Radius is the district extent; dwell positions are drawn inside it.
	// The district is typically much larger than an attacker's radio disk,
	// which is what keeps only a fraction of its visitors inside any
	// promotion boundary.
	Radius float64
	// Weight is the stop's share of routing probability mass.
	Weight float64
	// Dwell samples how long a visit lasts; nil selects a default
	// log-normal (median 12 min).
	Dwell DwellModel
}

// LegKind distinguishes route legs.
type LegKind int

// Leg kinds.
const (
	// LegTransit is a straight walk between two points.
	LegTransit LegKind = iota + 1
	// LegDwell is a stay at one point.
	LegDwell
)

// RouteLeg is one timed piece of a pedestrian's day: either a straight
// transit walk or a dwell at a fixed point. Start and End are absolute
// virtual times; From equals To for dwell legs.
type RouteLeg struct {
	Kind     LegKind
	From, To geo.Point
	Start    time.Duration
	End      time.Duration
	// Stop is the RouteStop index a dwell leg visits (-1 for transits).
	Stop int
}

// At returns the position at an absolute time within the leg (clamped).
func (l RouteLeg) At(t time.Duration) geo.Point {
	if l.Kind == LegDwell || l.End <= l.Start || t >= l.End {
		return l.To
	}
	if t <= l.Start {
		return l.From
	}
	f := float64(t-l.Start) / float64(l.End-l.Start)
	return l.From.Add(l.To.Sub(l.From).Scale(f))
}

// Route is a pedestrian's itinerary: alternating transit and dwell legs in
// time order, starting at the spawn time.
type Route struct {
	Legs []RouteLeg
}

// Start returns the itinerary's first instant (0 for an empty route).
func (r Route) Start() time.Duration {
	if len(r.Legs) == 0 {
		return 0
	}
	return r.Legs[0].Start
}

// End returns the itinerary's last instant (0 for an empty route).
func (r Route) End() time.Duration {
	if len(r.Legs) == 0 {
		return 0
	}
	return r.Legs[len(r.Legs)-1].End
}

// At returns the position at an absolute time, clamped to the route's ends.
func (r Route) At(t time.Duration) geo.Point {
	legs := r.Legs
	if len(legs) == 0 {
		return geo.Point{}
	}
	if t <= legs[0].Start {
		return legs[0].From
	}
	// Binary search for the leg containing t.
	lo, hi := 0, len(legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if legs[mid].End < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return legs[lo].At(t)
}

// RouteModel samples city itineraries: a pedestrian enters the city, walks
// to a weighted sequence of stops, dwells at each, and ends its day after
// the last dwell. It generalises TransitModel — every walk between stops is
// a transit leg at a drawn speed — from one leg to a whole itinerary.
type RouteModel struct {
	// Transit is the walking model for the legs between stops; the zero
	// value selects DefaultTransit.
	Transit TransitModel
	// MeanVisits is the geometric mean number of stops visited (≥ 1);
	// 0 selects 2.
	MeanVisits float64
	// MaxVisits clips the itinerary length; 0 selects 5.
	MaxVisits int
}

// DefaultRoute returns the default city itinerary model.
func DefaultRoute() RouteModel {
	return RouteModel{Transit: DefaultTransit(), MeanVisits: 2, MaxVisits: 5}
}

// normalized fills the model's defaults.
func (m RouteModel) normalized() RouteModel {
	if m.Transit == (TransitModel{}) {
		m.Transit = DefaultTransit()
	}
	if m.MeanVisits < 1 {
		m.MeanVisits = 2
	}
	if m.MaxVisits <= 0 {
		m.MaxVisits = 5
	}
	return m
}

// Validate checks the model.
func (m RouteModel) Validate() error {
	mm := m.normalized()
	if err := mm.Transit.Validate(); err != nil {
		return err
	}
	if mm.MaxVisits < 1 {
		return fmt.Errorf("mobility: route max visits %d below 1", mm.MaxVisits)
	}
	return nil
}

// defaultStopDwell is used for stops without their own dwell model.
var defaultStopDwell DwellModel = StaticDwell{Median: 12 * time.Minute, Sigma: 0.5, Max: 45 * time.Minute}

// Sample draws one itinerary starting at entry at the given absolute time.
// Stops are chosen proportionally to weight, never repeating the previous
// stop when more than one is available. An empty stop list returns an empty
// route. All randomness comes from rng, so itineraries sampled from
// per-pedestrian streams are independent of sampling order.
func (m RouteModel) Sample(rng *rand.Rand, start time.Duration, entry geo.Point, stops []RouteStop) Route {
	m = m.normalized()
	if len(stops) == 0 {
		return Route{}
	}
	visits := 1
	for visits < m.MaxVisits && rng.Float64() >= 1/m.MeanVisits {
		visits++
	}
	var route Route
	pos := entry
	now := start
	prev := -1
	for v := 0; v < visits; v++ {
		si := sampleStop(rng, stops, prev)
		stop := stops[si]
		dest := StaticPos(rng, stop.Pos, stop.Radius)
		walk := m.Transit.Path(rng, pos, dest)
		route.Legs = append(route.Legs, RouteLeg{
			Kind: LegTransit, From: pos, To: dest,
			Start: now, End: now + walk.Duration, Stop: -1,
		})
		now += walk.Duration
		dm := stop.Dwell
		if dm == nil {
			dm = defaultStopDwell
		}
		dwell := dm.SampleDwell(rng)
		route.Legs = append(route.Legs, RouteLeg{
			Kind: LegDwell, From: dest, To: dest,
			Start: now, End: now + dwell, Stop: si,
		})
		now += dwell
		pos = dest
		prev = si
	}
	return route
}

// sampleStop draws a stop index proportionally to weight, excluding prev
// when another stop exists.
func sampleStop(rng *rand.Rand, stops []RouteStop, prev int) int {
	total := 0.0
	for i, s := range stops {
		if i == prev && len(stops) > 1 {
			continue
		}
		if s.Weight > 0 {
			total += s.Weight
		}
	}
	if total <= 0 {
		// Unweighted: uniform among the eligible stops.
		i := rng.Intn(len(stops))
		if i == prev && len(stops) > 1 {
			i = (i + 1) % len(stops)
		}
		return i
	}
	x := rng.Float64() * total
	last := 0
	for i, s := range stops {
		if (i == prev && len(stops) > 1) || s.Weight <= 0 {
			continue
		}
		if x < s.Weight {
			return i
		}
		x -= s.Weight
		last = i
	}
	return last
}
