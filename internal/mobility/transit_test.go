package mobility

import (
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/geo"
)

func TestTransitModelValidate(t *testing.T) {
	if err := DefaultTransit().Validate(); err != nil {
		t.Errorf("default transit invalid: %v", err)
	}
	bad := []TransitModel{
		{SpeedMin: 0, SpeedMax: 1},
		{SpeedMin: 1, SpeedMax: 0},
		{SpeedMin: -1, SpeedMax: 1},
		{SpeedMin: 2, SpeedMax: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("transit %+v accepted", m)
		}
	}
}

func TestTransitPathSpeedAndEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultTransit()
	from, to := geo.Pt(0, 0), geo.Pt(1450, 0)
	for i := 0; i < 100; i++ {
		p := m.Path(rng, from, to)
		if p.From != from || p.To != to {
			t.Fatalf("path endpoints %v -> %v", p.From, p.To)
		}
		speed := from.Dist(to) / p.Duration.Seconds()
		if speed < m.SpeedMin-0.01 || speed > m.SpeedMax+0.01 {
			t.Fatalf("implied speed %.2f outside [%v, %v]", speed, m.SpeedMin, m.SpeedMax)
		}
		// Interpolation stays on the segment.
		mid := p.At(p.Duration / 2)
		if mid.Y != 0 || mid.X <= 0 || mid.X >= 1450 {
			t.Fatalf("midpoint %v off segment", mid)
		}
	}
}

func TestTransitPathDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultTransit().Path(rng, geo.Pt(5, 5), geo.Pt(5, 5))
	if p.Duration < time.Second {
		t.Errorf("zero-length transit duration %v, want >= 1s", p.Duration)
	}
}
