package mobility

import (
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/geo"
)

func TestTransitModelValidate(t *testing.T) {
	if err := DefaultTransit().Validate(); err != nil {
		t.Errorf("default transit invalid: %v", err)
	}
	bad := []TransitModel{
		{SpeedMin: 0, SpeedMax: 1},
		{SpeedMin: 1, SpeedMax: 0},
		{SpeedMin: -1, SpeedMax: 1},
		{SpeedMin: 2, SpeedMax: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("transit %+v accepted", m)
		}
	}
}

func TestTransitPathSpeedAndEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultTransit()
	from, to := geo.Pt(0, 0), geo.Pt(1450, 0)
	for i := 0; i < 100; i++ {
		p := m.Path(rng, from, to)
		if p.From != from || p.To != to {
			t.Fatalf("path endpoints %v -> %v", p.From, p.To)
		}
		speed := from.Dist(to) / p.Duration.Seconds()
		if speed < m.SpeedMin-0.01 || speed > m.SpeedMax+0.01 {
			t.Fatalf("implied speed %.2f outside [%v, %v]", speed, m.SpeedMin, m.SpeedMax)
		}
		// Interpolation stays on the segment.
		mid := p.At(p.Duration / 2)
		if mid.Y != 0 || mid.X <= 0 || mid.X >= 1450 {
			t.Fatalf("midpoint %v off segment", mid)
		}
	}
}

func TestTransitPathDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultTransit().Path(rng, geo.Pt(5, 5), geo.Pt(5, 5))
	if p.Duration < time.Second {
		t.Errorf("zero-length transit duration %v, want >= 1s", p.Duration)
	}
	// A zero-leg transit still interpolates sanely: every offset maps to the
	// single point.
	for _, off := range []time.Duration{-time.Second, 0, p.Duration / 2, p.Duration, time.Hour} {
		if got := p.At(off); got != geo.Pt(5, 5) {
			t.Errorf("degenerate path At(%v) = %v, want (5,5)", off, got)
		}
	}
}

func TestTransitPathAtClamping(t *testing.T) {
	p := Path{From: geo.Pt(0, 0), To: geo.Pt(120, 0), Duration: time.Minute}
	cases := []struct {
		off  time.Duration
		want geo.Point
	}{
		{-time.Minute, geo.Pt(0, 0)},      // before departure clamps to From
		{0, geo.Pt(0, 0)},                 // departure instant
		{30 * time.Second, geo.Pt(60, 0)}, // linear midpoint
		{time.Minute, geo.Pt(120, 0)},     // arrival instant
		{time.Hour, geo.Pt(120, 0)},       // long past arrival clamps to To
	}
	for _, c := range cases {
		if got := p.At(c.off); got.Dist(c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.off, got, c.want)
		}
	}
	// A zero-duration path never divides by zero and reports the endpoint.
	z := Path{From: geo.Pt(1, 1), To: geo.Pt(2, 2), Duration: 0}
	if got := z.At(0); got != geo.Pt(2, 2) {
		t.Errorf("zero-duration path At(0) = %v, want To", got)
	}
}

func TestTransitPathFixedSpeed(t *testing.T) {
	// Degenerate speed range (min == max): every draw must use exactly that
	// speed — this is how tests pin transit timing deterministically.
	rng := rand.New(rand.NewSource(2))
	m := TransitModel{SpeedMin: 1.5, SpeedMax: 1.5}
	if err := m.Validate(); err != nil {
		t.Fatalf("fixed-speed model invalid: %v", err)
	}
	for i := 0; i < 20; i++ {
		p := m.Path(rng, geo.Pt(0, 0), geo.Pt(150, 0))
		want := 100 * time.Second
		if diff := p.Duration - want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("fixed-speed duration %v, want %v", p.Duration, want)
		}
	}
}

func TestTransitPathMonotone(t *testing.T) {
	// Interpolation must advance monotonically toward the destination, so a
	// promotion scheduler sampling positions along a leg never sees the
	// pedestrian move backward.
	rng := rand.New(rand.NewSource(4))
	p := DefaultTransit().Path(rng, geo.Pt(0, 0), geo.Pt(500, 250))
	prev := -1.0
	for off := time.Duration(0); off <= p.Duration; off += p.Duration / 50 {
		d := p.At(off).Dist(p.From)
		if d < prev-1e-9 {
			t.Fatalf("distance from origin shrank at offset %v: %v -> %v", off, prev, d)
		}
		prev = d
	}
}
