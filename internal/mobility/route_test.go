package mobility

import (
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/geo"
)

func cityStops() []RouteStop {
	return []RouteStop{
		{Pos: geo.Pt(0, 0), Radius: 200, Weight: 3},
		{Pos: geo.Pt(1500, 0), Radius: 300, Weight: 1},
		{Pos: geo.Pt(0, 2000), Radius: 250, Weight: 2},
	}
}

func TestRouteModelValidate(t *testing.T) {
	if err := DefaultRoute().Validate(); err != nil {
		t.Errorf("default route invalid: %v", err)
	}
	if err := (RouteModel{}).Validate(); err != nil {
		t.Errorf("zero route model should normalize, got %v", err)
	}
	bad := RouteModel{Transit: TransitModel{SpeedMin: 2, SpeedMax: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("inverted transit speeds accepted")
	}
}

func TestRouteSampleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultRoute()
	stops := cityStops()
	entry := geo.Pt(-3000, -3000)
	start := 10 * time.Minute
	for i := 0; i < 200; i++ {
		r := m.Sample(rng, start, entry, stops)
		if len(r.Legs) == 0 || len(r.Legs)%2 != 0 {
			t.Fatalf("route has %d legs, want positive even count", len(r.Legs))
		}
		if len(r.Legs)/2 > m.MaxVisits {
			t.Fatalf("route visits %d stops, max %d", len(r.Legs)/2, m.MaxVisits)
		}
		if r.Start() != start {
			t.Fatalf("route starts at %v, want %v", r.Start(), start)
		}
		if r.Legs[0].From != entry {
			t.Fatalf("route enters at %v, want %v", r.Legs[0].From, entry)
		}
		prevStop := -1
		for j, l := range r.Legs {
			if l.End <= l.Start {
				t.Fatalf("leg %d not forward in time: [%v, %v]", j, l.Start, l.End)
			}
			if j > 0 && l.Start != r.Legs[j-1].End {
				t.Fatalf("leg %d starts at %v, previous ended %v", j, l.Start, r.Legs[j-1].End)
			}
			if j%2 == 0 {
				if l.Kind != LegTransit || l.Stop != -1 {
					t.Fatalf("leg %d: want transit with stop -1, got kind %v stop %d", j, l.Kind, l.Stop)
				}
			} else {
				if l.Kind != LegDwell || l.From != l.To {
					t.Fatalf("leg %d: want stationary dwell, got kind %v %v -> %v", j, l.Kind, l.From, l.To)
				}
				if l.Stop < 0 || l.Stop >= len(stops) {
					t.Fatalf("leg %d dwell stop %d out of range", j, l.Stop)
				}
				s := stops[l.Stop]
				if l.To.Dist(s.Pos) > s.Radius+1e-9 {
					t.Fatalf("dwell at %v is %v from stop %d center, radius %v",
						l.To, l.To.Dist(s.Pos), l.Stop, s.Radius)
				}
				if len(stops) > 1 && l.Stop == prevStop {
					t.Fatalf("immediate repeat of stop %d", l.Stop)
				}
				prevStop = l.Stop
			}
		}
	}
}

func TestRouteSampleDeterministic(t *testing.T) {
	stops := cityStops()
	a := DefaultRoute().Sample(rand.New(rand.NewSource(7)), 0, geo.Pt(100, 100), stops)
	b := DefaultRoute().Sample(rand.New(rand.NewSource(7)), 0, geo.Pt(100, 100), stops)
	if len(a.Legs) != len(b.Legs) {
		t.Fatalf("same seed, different leg counts: %d vs %d", len(a.Legs), len(b.Legs))
	}
	for i := range a.Legs {
		if a.Legs[i] != b.Legs[i] {
			t.Fatalf("leg %d differs: %+v vs %+v", i, a.Legs[i], b.Legs[i])
		}
	}
}

func TestRouteAtInterpolatesAndClamps(t *testing.T) {
	r := Route{Legs: []RouteLeg{
		{Kind: LegTransit, From: geo.Pt(0, 0), To: geo.Pt(100, 0),
			Start: time.Minute, End: 2 * time.Minute, Stop: -1},
		{Kind: LegDwell, From: geo.Pt(100, 0), To: geo.Pt(100, 0),
			Start: 2 * time.Minute, End: 10 * time.Minute, Stop: 0},
		{Kind: LegTransit, From: geo.Pt(100, 0), To: geo.Pt(100, 50),
			Start: 10 * time.Minute, End: 11 * time.Minute, Stop: -1},
	}}
	cases := []struct {
		t    time.Duration
		want geo.Point
	}{
		{0, geo.Pt(0, 0)},                    // before start clamps to origin
		{time.Minute, geo.Pt(0, 0)},          // first instant
		{90 * time.Second, geo.Pt(50, 0)},    // mid-transit
		{5 * time.Minute, geo.Pt(100, 0)},    // dwelling
		{630 * time.Second, geo.Pt(100, 25)}, // second transit midpoint
		{time.Hour, geo.Pt(100, 50)},         // past end clamps to final stop
	}
	for _, c := range cases {
		if got := r.At(c.t); got.Dist(c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if r.Start() != time.Minute || r.End() != 11*time.Minute {
		t.Errorf("span [%v, %v], want [1m, 11m]", r.Start(), r.End())
	}
}

func TestRouteEmpty(t *testing.T) {
	var r Route
	if r.Start() != 0 || r.End() != 0 {
		t.Errorf("empty route span [%v, %v], want zeros", r.Start(), r.End())
	}
	if got := r.At(time.Hour); got != (geo.Point{}) {
		t.Errorf("empty route At = %v, want origin", got)
	}
	rng := rand.New(rand.NewSource(1))
	if s := DefaultRoute().Sample(rng, 0, geo.Pt(1, 1), nil); len(s.Legs) != 0 {
		t.Errorf("sampling with no stops yielded %d legs", len(s.Legs))
	}
}

func TestRouteStopWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	stops := []RouteStop{
		{Pos: geo.Pt(0, 0), Weight: 9},
		{Pos: geo.Pt(1000, 0), Weight: 1},
	}
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		counts[sampleStop(rng, stops, -1)]++
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("stop 0 drawn %.3f of the time, want ~0.9", frac)
	}
	// prev exclusion: with two stops the other one is forced.
	for i := 0; i < 50; i++ {
		if sampleStop(rng, stops, 0) != 1 {
			t.Fatal("prev stop repeated despite alternative")
		}
	}
	// Single stop: prev exclusion must not deadlock.
	one := stops[:1]
	if sampleStop(rng, one, 0) != 0 {
		t.Error("single-stop route must reuse the only stop")
	}
	// All-zero weights fall back to uniform.
	flat := []RouteStop{{Pos: geo.Pt(0, 0)}, {Pos: geo.Pt(1, 0)}, {Pos: geo.Pt(2, 0)}}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[sampleStop(rng, flat, -1)] = true
	}
	if len(seen) != 3 {
		t.Errorf("uniform fallback visited %d of 3 stops", len(seen))
	}
}
