package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/geo"
)

// TransitModel describes inter-venue movement: a phone leaving one venue's
// dwell walks a straight line through transit space to another venue at a
// uniformly drawn speed, scanning as it goes. Mid-transit it is typically
// out of everyone's radio range — the interesting part is what it carries:
// its PNL, its scan state, and (on the attacker's side) whatever the
// knowledge plane remembers about it from the previous site.
type TransitModel struct {
	// SpeedMin and SpeedMax bound the walking speed in m/s.
	SpeedMin, SpeedMax float64
}

// DefaultTransit returns urban walking speeds (brisker than in-venue
// strolling: people in transit between sites are going somewhere).
func DefaultTransit() TransitModel {
	return TransitModel{SpeedMin: 1.1, SpeedMax: 1.7}
}

// Validate checks the speed bounds.
func (t TransitModel) Validate() error {
	if t.SpeedMin <= 0 || t.SpeedMax <= 0 {
		return fmt.Errorf("mobility: transit speeds must be positive, got [%v, %v]", t.SpeedMin, t.SpeedMax)
	}
	if t.SpeedMax < t.SpeedMin {
		return fmt.Errorf("mobility: transit speed max %v below min %v", t.SpeedMax, t.SpeedMin)
	}
	return nil
}

// Path builds the transit path from one point to another at a drawn speed.
// A degenerate (zero-length) transit still takes one second so arrival
// events stay strictly after departure events.
func (t TransitModel) Path(rng *rand.Rand, from, to geo.Point) Path {
	speed := t.SpeedMin + rng.Float64()*(t.SpeedMax-t.SpeedMin)
	if speed <= 0 {
		speed = 1
	}
	d := time.Duration(from.Dist(to) / speed * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return Path{From: from, To: to, Duration: d}
}
