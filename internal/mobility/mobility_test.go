package mobility

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cityhunter/internal/geo"
)

func TestStaticDwell(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := StaticDwell{Median: 20 * time.Minute, Sigma: 0.5, Max: time.Hour}
	sum := time.Duration(0)
	for i := 0; i < 2000; i++ {
		d := m.SampleDwell(rng)
		if d < time.Second || d > time.Hour {
			t.Fatalf("dwell %v outside [1s, 1h]", d)
		}
		sum += d
	}
	mean := sum / 2000
	if mean < 10*time.Minute || mean > 40*time.Minute {
		t.Errorf("mean dwell %v implausible for median 20m", mean)
	}
}

func TestCorridorDwell(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := CorridorDwell{PathLength: 100, SpeedMin: 1.0, SpeedMax: 1.8}
	for i := 0; i < 1000; i++ {
		d := m.SampleDwell(rng)
		loSecs, hiSecs := 100/1.8, 100/1.0
		lo := time.Duration(loSecs * float64(time.Second))
		hi := time.Duration(hiSecs * float64(time.Second))
		if d < lo-time.Second || d > hi+time.Second {
			t.Fatalf("dwell %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestCorridorDwellZeroSpeedGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := CorridorDwell{PathLength: 50}
	if d := m.SampleDwell(rng); d <= 0 {
		t.Errorf("dwell %v with degenerate speeds", d)
	}
}

func TestHybridDwell(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := HybridDwell{
		StaticFraction: 0.5,
		Static:         StaticDwell{Median: 30 * time.Minute, Sigma: 0.1, Max: time.Hour},
		Moving:         CorridorDwell{PathLength: 100, SpeedMin: 1, SpeedMax: 2},
	}
	long, short := 0, 0
	for i := 0; i < 1000; i++ {
		if m.SampleDwell(rng) > 5*time.Minute {
			long++
		} else {
			short++
		}
	}
	if long < 300 || short < 300 {
		t.Errorf("hybrid mix long/short = %d/%d, want both substantial", long, short)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Error("empty profile accepted")
	}
	if err := (Profile{PerMinute: []float64{-1}}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Profile{PerMinute: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	for _, p := range []Profile{PassageProfile(), CanteenProfile(), MallProfile(), StationProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile invalid: %v", err)
		}
		if p.Slots() != 12 {
			t.Errorf("built-in profile has %d slots, want 12 (8am-8pm)", p.Slots())
		}
	}
}

func TestProfileRate(t *testing.T) {
	p := Profile{StartHour: 8, PerMinute: []float64{10, 20, 30}}
	tests := []struct {
		offset time.Duration
		want   float64
	}{
		{0, 10},
		{59 * time.Minute, 10},
		{time.Hour, 20},
		{2*time.Hour + 30*time.Minute, 30},
		{99 * time.Hour, 30}, // clamps to last slot
		{-time.Hour, 10},     // clamps to first
	}
	for _, tt := range tests {
		if got := p.Rate(tt.offset); got != tt.want {
			t.Errorf("Rate(%v) = %v, want %v", tt.offset, got, tt.want)
		}
	}
}

func TestSlotLabel(t *testing.T) {
	p := PassageProfile()
	tests := []struct {
		slot int
		want string
	}{
		{0, "8am-9am"},
		{3, "11am-12pm"},
		{4, "12pm-1pm"},
		{11, "7pm-8pm"},
	}
	for _, tt := range tests {
		if got := p.SlotLabel(tt.slot); got != tt.want {
			t.Errorf("SlotLabel(%d) = %q, want %q", tt.slot, got, tt.want)
		}
	}
}

func TestProfilePeaks(t *testing.T) {
	// The passage peaks in the rush hours; the canteen at lunch.
	pass := PassageProfile()
	if pass.PerMinute[0] <= pass.PerMinute[2] || pass.PerMinute[10] <= pass.PerMinute[5] {
		t.Error("passage profile lacks rush-hour peaks")
	}
	canteen := CanteenProfile()
	if canteen.PerMinute[4] <= canteen.PerMinute[2] {
		t.Error("canteen profile lacks a lunch peak")
	}
}

func TestArrivalsRateMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Profile{StartHour: 8, PerMinute: []float64{10}}
	got, err := Arrivals(rng, p, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := 600.0
	if f := float64(len(got)); math.Abs(f-want) > 4*math.Sqrt(want) {
		t.Errorf("arrivals = %d, want ≈%v", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	for _, a := range got {
		if a < 0 || a >= time.Hour {
			t.Fatalf("arrival %v outside window", a)
		}
	}
}

func TestArrivalsWindowOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Profile{StartHour: 8, PerMinute: []float64{0, 60}} // all arrivals in hour 2
	got, err := Arrivals(rng, p, 0, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a < time.Hour {
			t.Fatalf("arrival %v during zero-rate hour", a)
		}
	}
	if len(got) == 0 {
		t.Error("no arrivals in active hour")
	}
}

func TestArrivalsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Arrivals(rng, Profile{}, 0, time.Hour); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := Arrivals(rng, PassageProfile(), 0, -time.Hour); err == nil {
		t.Error("negative duration accepted")
	}
	got, err := Arrivals(rng, PassageProfile(), 0, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("zero duration: %v, %v", got, err)
	}
}

func TestGroupModelDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := DefaultGroups()
	counts := make(map[int]int)
	const n = 20000
	for i := 0; i < n; i++ {
		size := g.SampleSize(rng)
		if size < 1 || size > 4 {
			t.Fatalf("group size %d", size)
		}
		counts[size]++
	}
	if f := float64(counts[1]) / n; math.Abs(f-0.62) > 0.02 {
		t.Errorf("singles fraction %.3f, want ≈0.62", f)
	}
	// Rush hours have fewer singles.
	rush := RushGroups()
	rushSingles := 0
	for i := 0; i < n; i++ {
		if rush.SampleSize(rng) == 1 {
			rushSingles++
		}
	}
	if rushSingles >= counts[1] {
		t.Error("rush-hour groups not larger than baseline")
	}
}

func TestGroupModelDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if got := (GroupModel{}).SampleSize(rng); got != 1 {
		t.Errorf("empty model size = %d, want 1", got)
	}
	if got := (GroupModel{Probs: []float64{0, 0}}).SampleSize(rng); got != 1 {
		t.Errorf("zero-weight model size = %d, want 1", got)
	}
}

func TestPathAt(t *testing.T) {
	p := Path{From: geo.Pt(0, 0), To: geo.Pt(100, 0), Duration: 100 * time.Second}
	if got := p.At(0); got != geo.Pt(0, 0) {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(50 * time.Second); got != geo.Pt(50, 0) {
		t.Errorf("At(50s) = %v", got)
	}
	if got := p.At(200 * time.Second); got != geo.Pt(100, 0) {
		t.Errorf("At(beyond) = %v", got)
	}
	if got := p.At(-time.Second); got != geo.Pt(0, 0) {
		t.Errorf("At(negative) = %v", got)
	}
	zero := Path{From: geo.Pt(1, 1), To: geo.Pt(2, 2)}
	if got := zero.At(0); got != geo.Pt(2, 2) {
		t.Errorf("zero-duration path At = %v", got)
	}
}

func TestCorridorPathCrossesDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	center := geo.Pt(500, 500)
	for i := 0; i < 200; i++ {
		p := CorridorPath(rng, center, 50, time.Minute)
		// Midpoint is within the disk.
		mid := p.At(30 * time.Second)
		if mid.Dist(center) > 50 {
			t.Fatalf("path midpoint %v outside disk", mid)
		}
		// Endpoints are on (or near) the disk edge.
		if d := p.From.Dist(center); d > 51 {
			t.Fatalf("entry %v too far: %v", p.From, d)
		}
	}
}

func TestStaticPosInsideDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	center := geo.Pt(100, 100)
	for i := 0; i < 500; i++ {
		p := StaticPos(rng, center, 30)
		if p.Dist(center) > 30 {
			t.Fatalf("static pos %v outside disk", p)
		}
	}
}

func TestHourLabelWraps(t *testing.T) {
	p := Profile{StartHour: 23, PerMinute: []float64{1, 1}}
	if got := p.SlotLabel(0); got != "11pm-12am" {
		t.Errorf("label = %q", got)
	}
	if got := p.SlotLabel(1); got != "12am-1am" {
		t.Errorf("label = %q", got)
	}
}
