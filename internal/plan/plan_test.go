package plan

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/campaign"
	"cityhunter/internal/mobility"
	"cityhunter/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden plan files from current behaviour")

// checkGolden compares got against testdata/name byte for byte, rewriting
// in -update mode. The golden files double as the compatibility contract:
// the legacy savers and the plan envelope must keep emitting these exact
// bytes.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/plan -update`): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// Fixtures shared by the golden and round-trip tests. Deterministic by
// construction: venue constructors take no randomness.
func fixtureVenue() scenario.Venue { return scenario.CanteenVenue() }

func fixtureDeployment() scenario.DeploymentConfig {
	return scenario.DeploymentConfig{
		Sites:        []scenario.Venue{scenario.CanteenVenue(), scenario.PassageVenue()},
		Knowledge:    scenario.PeriodicSync,
		SyncEvery:    45 * time.Second,
		RoamFraction: 0.35,
		Transit:      mobility.TransitModel{SpeedMin: 1.0, SpeedMax: 2.0},
	}
}

func fixtureSpecs() []campaign.Spec {
	scan := 40 * time.Second
	frac := 0.25
	return []campaign.Spec{
		{
			Name:     "lunch baseline",
			Venue:    scenario.CanteenVenue(),
			Attack:   scenario.CityHunter,
			Slot:     4,
			Duration: 30 * time.Minute,
		},
		{
			Name:           "defended rush",
			Venue:          scenario.PassageVenue(),
			Attack:         scenario.MANA,
			Slot:           0,
			Duration:       90 * time.Second,
			Seed:           42,
			ScanInterval:   &scan,
			CanaryFraction: &frac,
			Deauth:         true,
		},
	}
}

func fixturePlans() map[string]Plan {
	v := fixtureVenue()
	d := fixtureDeployment()
	return map[string]Plan{
		"venue":      {Kind: KindVenue, Venue: &v},
		"deployment": {Kind: KindDeployment, Deployment: &d},
		"campaign":   {Kind: KindCampaign, Specs: fixtureSpecs()},
	}
}

// TestPlanGolden pins the envelope format: Save output for each kind must
// stay byte-identical to testdata/<kind>.plan.json, and loading a golden
// file back must re-encode to the same canonical bytes as the in-code
// fixture.
func TestPlanGolden(t *testing.T) {
	for name, p := range fixturePlans() {
		var buf bytes.Buffer
		if err := Save(&buf, p); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		checkGolden(t, name+".plan.json", buf.Bytes())

		data, err := os.ReadFile(filepath.Join("testdata", name+".plan.json"))
		if err != nil {
			t.Fatalf("%s: read golden: %v", name, err)
		}
		loaded, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode golden: %v", name, err)
		}
		wantCanon, err := Encode(p)
		if err != nil {
			t.Fatalf("%s: encode fixture: %v", name, err)
		}
		gotCanon, err := Encode(loaded)
		if err != nil {
			t.Fatalf("%s: re-encode loaded: %v", name, err)
		}
		if !bytes.Equal(wantCanon, gotCanon) {
			t.Errorf("%s: golden does not re-encode canonically:\n--- fixture ---\n%s\n--- loaded ---\n%s",
				name, wantCanon, gotCanon)
		}
	}
}

// TestLegacySaversGolden pins the deprecated standalone writers: they must
// keep emitting the exact bytes they emitted before the plan envelope
// existed (captured in testdata/<kind>.legacy.json), and the matching
// loaders must keep reading those files.
func TestLegacySaversGolden(t *testing.T) {
	var venueBuf bytes.Buffer
	if err := scenario.SaveVenue(&venueBuf, fixtureVenue()); err != nil {
		t.Fatalf("SaveVenue: %v", err)
	}
	checkGolden(t, "venue.legacy.json", venueBuf.Bytes())

	var depBuf bytes.Buffer
	if err := scenario.SaveDeployment(&depBuf, fixtureDeployment()); err != nil {
		t.Fatalf("SaveDeployment: %v", err)
	}
	checkGolden(t, "deployment.legacy.json", depBuf.Bytes())

	var campBuf bytes.Buffer
	if err := campaign.Save(&campBuf, fixtureSpecs()); err != nil {
		t.Fatalf("campaign.Save: %v", err)
	}
	checkGolden(t, "campaign.legacy.json", campBuf.Bytes())

	if *updateGolden {
		return
	}
	// The legacy loaders still read the legacy files.
	if v, err := scenario.LoadVenue(bytes.NewReader(mustRead(t, "venue.legacy.json"))); err != nil {
		t.Errorf("LoadVenue(legacy golden): %v", err)
	} else if v.Name != fixtureVenue().Name {
		t.Errorf("LoadVenue(legacy golden) = %q", v.Name)
	}
	if d, err := scenario.LoadDeployment(bytes.NewReader(mustRead(t, "deployment.legacy.json"))); err != nil {
		t.Errorf("LoadDeployment(legacy golden): %v", err)
	} else if len(d.Sites) != 2 || d.Knowledge != scenario.PeriodicSync {
		t.Errorf("LoadDeployment(legacy golden) = %+v", d)
	}
	if specs, err := campaign.Load(bytes.NewReader(mustRead(t, "campaign.legacy.json"))); err != nil {
		t.Errorf("campaign.Load(legacy golden): %v", err)
	} else if len(specs) != 2 || specs[1].Name != "defended rush" {
		t.Errorf("campaign.Load(legacy golden) = %d specs", len(specs))
	}
}

func mustRead(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPlanRoundTrip checks Save → Load → Save byte equality for every
// kind, plus payload survival.
func TestPlanRoundTrip(t *testing.T) {
	for name, p := range fixturePlans() {
		var first bytes.Buffer
		if err := Save(&first, p); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if loaded.Version != Version || loaded.Kind != p.Kind {
			t.Errorf("%s: envelope fields lost: %+v", name, loaded)
		}
		var second bytes.Buffer
		if err := Save(&second, loaded); err != nil {
			t.Fatalf("%s: re-save: %v", name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: round trip not byte-stable:\n--- first ---\n%s\n--- second ---\n%s",
				name, first.String(), second.String())
		}
	}

	// Payload spot checks.
	plans := fixturePlans()
	var buf bytes.Buffer
	if err := Save(&buf, plans["campaign"]); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Specs) != 2 || loaded.Specs[1].Seed != 42 || !loaded.Specs[1].Deauth {
		t.Errorf("campaign payload lost: %+v", loaded.Specs)
	}
}

// TestPlanStrictRejection: the envelope is strict end to end — unknown
// fields anywhere, version drift, and kind/payload mismatches are all
// named in the error.
func TestPlanStrictRejection(t *testing.T) {
	venuePayload := `{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20}}`
	cases := []struct {
		label string
		json  string
		want  string
	}{
		{"unknown envelope field",
			`{"version":1,"kind":"venue","venue":` + venuePayload + `,"turbo":true}`,
			`"turbo"`},
		{"version drift",
			`{"version":2,"kind":"venue","venue":` + venuePayload + `}`,
			"unsupported version 2 (want 1)"},
		{"version missing",
			`{"kind":"venue","venue":` + venuePayload + `}`,
			"unsupported version 0 (want 1)"},
		{"unknown kind",
			`{"version":1,"kind":"heist","venue":` + venuePayload + `}`,
			`unknown kind "heist"`},
		{"venue kind, campaign payload",
			`{"version":1,"kind":"venue","venue":` + venuePayload + `,"campaign":{"runs":[]}}`,
			`kind "venue" does not take a "campaign" payload`},
		{"campaign kind, venue payload",
			`{"version":1,"kind":"campaign","venue":` + venuePayload + `,"campaign":{"runs":[]}}`,
			`kind "campaign" does not take a "venue" payload`},
		{"missing payload",
			`{"version":1,"kind":"deployment"}`,
			"deployment plan needs a deployment payload"},
		{"unknown field inside venue payload",
			`{"version":1,"kind":"venue","venue":{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20},"wifi7":true}}`,
			`"wifi7"`},
		{"unknown field inside deployment site",
			`{"version":1,"kind":"deployment","deployment":{"knowledge":"shared","sites":[{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20},"lasers":1}]}}`,
			`"lasers"`},
		{"unknown field inside campaign venueSpec",
			`{"version":1,"kind":"campaign","campaign":{"runs":[{"name":"a","venueSpec":{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20},"overclock":2},"attack":"karma","slot":0,"minutes":5}]}}`,
			`"overclock"`},
		{"empty campaign",
			`{"version":1,"kind":"campaign","campaign":{"runs":[]}}`,
			"no runs"},
		{"semantic validation still applies",
			`{"version":1,"kind":"deployment","deployment":{"knowledge":"shared","roamFraction":2,"sites":[` + venuePayload + `]}}`,
			"roam fraction 2 outside [0,1]"},
		{"invalid partition count",
			`{"version":1,"kind":"deployment","deployment":{"knowledge":"isolated","roamFraction":0,"partitions":-2,"sites":[` + venuePayload + `]}}`,
			"partition count -2 invalid"},
		{"partitioned shared knowledge",
			`{"version":1,"kind":"deployment","deployment":{"knowledge":"shared","roamFraction":0,"partitions":-1,"sites":[` + venuePayload + `]}}`,
			"shared knowledge plane cannot run partitioned"},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.label, err, tc.want)
		}
	}
}

// TestPartitionsRoundTrip: the partitions field survives the envelope
// byte-stably for every encodable value, and its absence decodes to the
// classic engine — pre-partitioning plans keep meaning what they meant.
func TestPartitionsRoundTrip(t *testing.T) {
	for _, parts := range []int{scenario.AutoPartitions, 1, 3} {
		d := fixtureDeployment()
		d.Partitions = parts
		p := Plan{Kind: KindDeployment, Deployment: &d}
		var first bytes.Buffer
		if err := Save(&first, p); err != nil {
			t.Fatalf("partitions=%d: save: %v", parts, err)
		}
		if !strings.Contains(first.String(), `"partitions"`) {
			t.Fatalf("partitions=%d: field not serialized:\n%s", parts, first.String())
		}
		loaded, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("partitions=%d: load: %v", parts, err)
		}
		if loaded.Deployment.Partitions != parts {
			t.Errorf("partitions=%d: round-tripped to %d", parts, loaded.Deployment.Partitions)
		}
		var second bytes.Buffer
		if err := Save(&second, loaded); err != nil {
			t.Fatalf("partitions=%d: re-save: %v", parts, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("partitions=%d: round trip not byte-stable", parts)
		}
	}

	// The fixture (Partitions 0) must not serialize the field at all, so
	// the pre-partitioning golden bytes stay frozen.
	var buf bytes.Buffer
	if err := Save(&buf, fixturePlans()["deployment"]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"partitions"`) {
		t.Errorf("classic deployment serialized a partitions field:\n%s", buf.String())
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Deployment.Partitions != 0 {
		t.Errorf("absent partitions decoded to %d, want 0", loaded.Deployment.Partitions)
	}
}

// TestLegacyPermissiveVsEnvelopeStrict: the same unknown venue field that
// the envelope rejects stays accepted by the legacy venue loader — the
// historical permissiveness is part of its compatibility contract.
func TestLegacyPermissiveVsEnvelopeStrict(t *testing.T) {
	payload := `{"kind":"canteen","name":"x","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.5,"maxMinutes":20},"futureField":1}`
	if _, err := scenario.LoadVenue(strings.NewReader(payload)); err != nil {
		t.Errorf("legacy LoadVenue rejected an unknown field it historically ignored: %v", err)
	}
	if _, err := Decode([]byte(`{"version":1,"kind":"venue","venue":` + payload + `}`)); err == nil {
		t.Error("envelope accepted an unknown venue field")
	}
}

// TestEncodeErrors covers the writer-side guards.
func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Plan{Kind: KindVenue}); err == nil || !strings.Contains(err.Error(), "venue payload") {
		t.Errorf("missing venue payload: %v", err)
	}
	if _, err := Encode(Plan{Kind: KindCampaign}); err == nil || !strings.Contains(err.Error(), "no runs") {
		t.Errorf("empty campaign: %v", err)
	}
	if _, err := Encode(Plan{Kind: "heist"}); err == nil || !strings.Contains(err.Error(), `unknown kind "heist"`) {
		t.Errorf("unknown kind: %v", err)
	}
	v := fixtureVenue()
	if _, err := Encode(Plan{Version: 3, Kind: KindVenue, Venue: &v}); err == nil ||
		!strings.Contains(err.Error(), "unsupported version 3") {
		t.Errorf("bad version: %v", err)
	}
}
