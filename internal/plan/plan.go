// Package plan defines the unified, versioned JSON envelope every plan in
// the system travels in: a venue, a multi-site deployment, or a campaign
// spec list, tagged with a format version and a kind. The envelope wraps
// the exact payload codecs the standalone SaveVenue/SaveDeployment/
// SaveCampaign formats use, so a payload lifted out of an envelope is
// readable by the legacy loaders and vice versa — but unlike the legacy
// loaders, envelope decoding is strict end to end: unknown fields anywhere
// in the document are rejected, and the payload key must match the kind.
//
// Encode's output is canonical (compact, fixed field order), which is what
// the job server hashes to content-address results: two submissions of the
// same plan hash identically byte for byte.
package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"cityhunter/internal/campaign"
	"cityhunter/internal/scenario"
)

// Version is the current (and only) plan format version.
const Version = 1

// Kind tags what a plan describes.
type Kind string

const (
	// KindVenue is a single venue definition.
	KindVenue Kind = "venue"
	// KindDeployment is a multi-site deployment plan.
	KindDeployment Kind = "deployment"
	// KindCampaign is a campaign spec list.
	KindCampaign Kind = "campaign"
)

// Plan is the decoded envelope. Exactly one payload field is set,
// matching Kind.
type Plan struct {
	// Version is the format version (always Version after a successful
	// Load; Save stamps it automatically).
	Version int
	// Kind says which payload field below is populated.
	Kind Kind
	// Venue is the payload of a KindVenue plan.
	Venue *scenario.Venue
	// Deployment is the payload of a KindDeployment plan. Its Base is
	// empty, as in LoadDeployment: a plan describes where and how to
	// deploy, the experiment configuration comes from the caller.
	Deployment *scenario.DeploymentConfig
	// Specs is the payload of a KindCampaign plan.
	Specs []campaign.Spec
}

// planFile is the envelope's JSON form. The payload key is named after
// the kind; the others must be absent.
type planFile struct {
	Version    int             `json:"version"`
	Kind       string          `json:"kind"`
	Venue      json.RawMessage `json:"venue,omitempty"`
	Deployment json.RawMessage `json:"deployment,omitempty"`
	Campaign   json.RawMessage `json:"campaign,omitempty"`
}

// Encode renders the plan in its canonical compact form — the bytes the
// job server hashes for the result store. The plan is validated on the way
// out (the payload codecs reject what their loaders would reject).
func Encode(p Plan) ([]byte, error) {
	if p.Version != 0 && p.Version != Version {
		return nil, fmt.Errorf("plan: unsupported version %d (want %d)", p.Version, Version)
	}
	pf := planFile{Version: Version, Kind: string(p.Kind)}
	switch p.Kind {
	case KindVenue:
		if p.Venue == nil {
			return nil, fmt.Errorf("plan: venue plan needs a venue payload")
		}
		raw, err := scenario.EncodeVenueJSON(*p.Venue)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		pf.Venue = raw
	case KindDeployment:
		if p.Deployment == nil {
			return nil, fmt.Errorf("plan: deployment plan needs a deployment payload")
		}
		raw, err := scenario.EncodeDeploymentJSON(*p.Deployment)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		pf.Deployment = raw
	case KindCampaign:
		if len(p.Specs) == 0 {
			return nil, fmt.Errorf("plan: campaign plan declares no runs")
		}
		raw, err := campaign.EncodeSpecsJSON(p.Specs)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		pf.Campaign = raw
	default:
		return nil, fmt.Errorf("plan: unknown kind %q (want venue|deployment|campaign)", p.Kind)
	}
	data, err := json.Marshal(pf)
	if err != nil {
		return nil, fmt.Errorf("plan: encode: %w", err)
	}
	return data, nil
}

// Save writes the plan as indented JSON (the same document Encode
// produces, reformatted for humans).
func Save(w io.Writer, p Plan) error {
	data, err := Encode(p)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return fmt.Errorf("plan: encode: %w", err)
	}
	buf.WriteByte('\n')
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("plan: write: %w", err)
	}
	return nil
}

// Decode parses and validates an envelope. Unknown fields anywhere in the
// document — envelope, payload, embedded venues — are rejected, the
// version must match, and the payload key must agree with the kind.
func Decode(data []byte) (Plan, error) {
	var pf planFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pf); err != nil {
		return Plan{}, fmt.Errorf("plan: decode: %w", err)
	}
	if pf.Version != Version {
		return Plan{}, fmt.Errorf("plan: unsupported version %d (want %d)", pf.Version, Version)
	}
	extra := func(key string) error {
		return fmt.Errorf("plan: kind %q does not take a %q payload", pf.Kind, key)
	}
	p := Plan{Version: pf.Version, Kind: Kind(pf.Kind)}
	switch p.Kind {
	case KindVenue:
		if pf.Deployment != nil {
			return Plan{}, extra("deployment")
		}
		if pf.Campaign != nil {
			return Plan{}, extra("campaign")
		}
		if pf.Venue == nil {
			return Plan{}, fmt.Errorf("plan: venue plan needs a venue payload")
		}
		v, err := scenario.DecodeVenueJSON(pf.Venue, true)
		if err != nil {
			return Plan{}, fmt.Errorf("plan: %w", err)
		}
		p.Venue = &v
	case KindDeployment:
		if pf.Venue != nil {
			return Plan{}, extra("venue")
		}
		if pf.Campaign != nil {
			return Plan{}, extra("campaign")
		}
		if pf.Deployment == nil {
			return Plan{}, fmt.Errorf("plan: deployment plan needs a deployment payload")
		}
		d, err := scenario.DecodeDeploymentJSON(pf.Deployment, true)
		if err != nil {
			return Plan{}, fmt.Errorf("plan: %w", err)
		}
		p.Deployment = &d
	case KindCampaign:
		if pf.Venue != nil {
			return Plan{}, extra("venue")
		}
		if pf.Deployment != nil {
			return Plan{}, extra("deployment")
		}
		if pf.Campaign == nil {
			return Plan{}, fmt.Errorf("plan: campaign plan needs a campaign payload")
		}
		specs, err := campaign.DecodeSpecsJSON(pf.Campaign, true)
		if err != nil {
			return Plan{}, fmt.Errorf("plan: %w", err)
		}
		p.Specs = specs
	default:
		return Plan{}, fmt.Errorf("plan: unknown kind %q (want venue|deployment|campaign)", p.Kind)
	}
	return p, nil
}

// Load reads a plan previously written by Save (or hand-written in the
// same format).
func Load(r io.Reader) (Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Plan{}, fmt.Errorf("plan: decode: %w", err)
	}
	return Decode(data)
}
