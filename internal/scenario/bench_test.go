package scenario

import (
	"testing"
	"time"

	"cityhunter/internal/citygen"
	"cityhunter/internal/heatmap"
)

// benchRun measures one venue deployment end to end (city generation is
// amortised via the shared test fixture).
func benchRun(b *testing.B, venue Venue, kind AttackKind, slot int) {
	b.Helper()
	city, hm := benchCity(b)
	cfg := Config{
		City:                 city,
		HeatMap:              hm,
		Venue:                venue,
		Attack:               kind,
		DirectProberFraction: 0.15,
		ArrivalScale:         0.6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg, slot, 10*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCity(b *testing.B) (*citygen.City, *heatmap.Map) {
	b.Helper()
	cityOnce.Do(func() {
		c, err := citygen.Generate(citygen.DefaultConfig(7))
		if err != nil {
			return
		}
		hm, err := heatmap.FromPhotos(c.Bounds, 200, c.Photos)
		if err != nil {
			return
		}
		cityVal, heatVal = c, hm
	})
	if cityVal == nil {
		b.Fatal("city generation failed")
	}
	return cityVal, heatVal
}

func BenchmarkRunCanteenCityHunter(b *testing.B) {
	benchRun(b, CanteenVenue(), CityHunter, 4)
}

func BenchmarkRunPassageCityHunter(b *testing.B) {
	benchRun(b, PassageVenue(), CityHunter, 0)
}

func BenchmarkRunCanteenMANA(b *testing.B) {
	benchRun(b, CanteenVenue(), MANA, 4)
}
