package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cityhunter/internal/mobility"
)

func TestVenueSaveLoadRoundTrip(t *testing.T) {
	for _, v := range AllVenues() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := SaveVenue(&buf, v); err != nil {
				t.Fatalf("SaveVenue: %v", err)
			}
			back, err := LoadVenue(&buf)
			if err != nil {
				t.Fatalf("LoadVenue: %v", err)
			}
			if back.Name != v.Name || back.Kind != v.Kind {
				t.Errorf("identity changed: %q/%v", back.Name, back.Kind)
			}
			if back.Position != v.Position || back.RadioRange != v.RadioRange {
				t.Error("geometry changed")
			}
			if back.MovingFraction != v.MovingFraction {
				t.Error("moving fraction changed")
			}
			if len(back.Profile.PerMinute) != len(v.Profile.PerMinute) {
				t.Fatal("profile length changed")
			}
			for i := range back.Profile.PerMinute {
				if back.Profile.PerMinute[i] != v.Profile.PerMinute[i] {
					t.Fatalf("profile slot %d changed", i)
				}
			}
			if back.StaticDwell != v.StaticDwell {
				t.Error("static dwell changed")
			}
			if back.MovingDwell != v.MovingDwell {
				t.Error("moving dwell changed")
			}
			if len(back.RushSlots) != len(v.RushSlots) {
				t.Error("rush slots changed")
			}
		})
	}
}

func TestLoadVenueValidation(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"garbage", `{not json`},
		{"unknown kind", `{"name":"x","kind":"volcano","radioRange":50,"arrivalsPerMinute":[1],"staticDwell":{"medianMinutes":5,"sigma":0.1,"maxMinutes":30}}`},
		{"missing name", `{"kind":"canteen","radioRange":50,"arrivalsPerMinute":[1]}`},
		{"zero range", `{"name":"x","kind":"canteen","radioRange":0,"arrivalsPerMinute":[1]}`},
		{"empty profile", `{"name":"x","kind":"canteen","radioRange":50,"arrivalsPerMinute":[]}`},
		{"negative rate", `{"name":"x","kind":"canteen","radioRange":50,"arrivalsPerMinute":[-1]}`},
		{"bad moving fraction", `{"name":"x","kind":"canteen","radioRange":50,"arrivalsPerMinute":[1],"movingFraction":2}`},
		{"rush slot out of range", `{"name":"x","kind":"canteen","radioRange":50,"arrivalsPerMinute":[1],"rushSlots":[5],"staticDwell":{"medianMinutes":5,"sigma":0.1,"maxMinutes":30}}`},
		{"moving without model", `{"name":"x","kind":"passage","radioRange":50,"arrivalsPerMinute":[1],"movingFraction":1}`},
		{"static without model", `{"name":"x","kind":"canteen","radioRange":50,"arrivalsPerMinute":[1],"movingFraction":0}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadVenue(strings.NewReader(tt.json)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestLoadVenueHandWritten(t *testing.T) {
	const doc = `{
		"name": "night market",
		"kind": "mall",
		"position": {"x": 1000, "y": 2000},
		"radioRange": 40,
		"startHour": 18,
		"arrivalsPerMinute": [10, 18, 20, 12],
		"movingFraction": 0.4,
		"staticDwell": {"medianMinutes": 8, "sigma": 0.4, "maxMinutes": 40},
		"movingDwell": {"pathLengthMetres": 70, "speedMinMps": 0.8, "speedMaxMps": 1.4},
		"rushSlots": [1, 2]
	}`
	v, err := LoadVenue(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("LoadVenue: %v", err)
	}
	if v.Kind != Mall || v.Profile.StartHour != 18 || !v.IsRush(2) || v.IsRush(0) {
		t.Errorf("venue = %+v", v)
	}
	if v.Profile.SlotLabel(0) != "6pm-7pm" {
		t.Errorf("label = %q", v.Profile.SlotLabel(0))
	}
	// A loaded venue must be runnable.
	cfg := baseConfig(t, v, CityHunter, 71)
	cfg.ArrivalScale = 0.5
	res, err := Run(cfg, 1, 4*time.Minute)
	if err != nil {
		t.Fatalf("Run on loaded venue: %v", err)
	}
	if res.Venue != "night market" {
		t.Errorf("result venue = %q", res.Venue)
	}
}

func TestSaveVenueRejectsCustomDwell(t *testing.T) {
	v := CanteenVenue()
	v.StaticDwell = mobility.HybridDwell{
		StaticFraction: 0.5,
		Static:         v.StaticDwell,
		Moving:         v.MovingDwell,
	}
	var buf bytes.Buffer
	if err := SaveVenue(&buf, v); err == nil {
		t.Error("custom dwell model encoded without error")
	}
}
