package scenario

import (
	"fmt"

	"cityhunter/internal/mobility"
)

// FieldError is a validation failure bound to the configuration field that
// caused it. Path names the field in the JSON plan format ("roamFraction",
// "sites[2].radioRange", "runs[0].slot"); Reason is the human-readable
// message. Error() returns Reason alone, so wrapping a FieldError keeps the
// messages the loaders have always produced, while callers that need the
// structured form — the campaign server turns these into 400 responses with
// a machine-readable field path — unwrap it with errors.As.
type FieldError struct {
	// Path locates the offending field in the plan JSON.
	Path string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error; it is the bare reason, not the path.
func (e *FieldError) Error() string { return e.Reason }

// fieldf builds a FieldError in one line.
func fieldf(path, format string, args ...any) *FieldError {
	return &FieldError{Path: path, Reason: fmt.Sprintf(format, args...)}
}

// prefixField re-anchors a nested FieldError under a parent path and message
// prefix ("sites[0]", "site 0"); non-FieldErrors pass through wrapped.
func prefixField(err error, path, label string) error {
	if fe, ok := err.(*FieldError); ok {
		p := path
		if fe.Path != "" {
			p = path + "." + fe.Path
		}
		return &FieldError{Path: p, Reason: label + ": " + fe.Reason}
	}
	return fmt.Errorf("%s: %w", label, err)
}

// Validate checks the venue's semantic invariants — the ones every entry
// point (JSON loaders, campaign specs, the job server) needs before a run
// can be admitted. Errors are FieldErrors named after the venue JSON fields.
func (v Venue) Validate() error {
	if v.Name == "" {
		return fieldf("name", "venue needs a name")
	}
	if v.RadioRange <= 0 {
		return fieldf("radioRange", "radio range %v must be positive", v.RadioRange)
	}
	if v.MovingFraction < 0 || v.MovingFraction > 1 {
		return fieldf("movingFraction", "moving fraction %v outside [0,1]", v.MovingFraction)
	}
	if err := v.Profile.Validate(); err != nil {
		return &FieldError{Path: "arrivalsPerMinute", Reason: err.Error()}
	}
	for _, s := range v.RushSlots {
		if s < 0 || s >= v.Profile.Slots() {
			return fieldf("rushSlots", "rush slot %d outside profile", s)
		}
	}
	if v.MovingFraction > 0 && v.MovingDwell == nil {
		return fieldf("movingDwell", "moving fraction %v needs a moving dwell model", v.MovingFraction)
	}
	if v.MovingFraction < 1 && v.StaticDwell == nil {
		return fieldf("staticDwell", "static share needs a static dwell model")
	}
	return nil
}

// Validate checks the deployment plan's semantic invariants: site list and
// per-site venues, knowledge plane, roaming and sync parameters. Base is
// deliberately not validated — a plan describes where and how to deploy,
// and the experiment configuration is attached later by the caller. Errors
// are FieldErrors named after the deployment JSON fields.
func (d DeploymentConfig) Validate() error {
	if len(d.Sites) == 0 {
		return fieldf("sites", "deployment needs at least one site")
	}
	if len(d.Sites) > MaxSites {
		return fieldf("sites", "%d sites exceed the %d-site limit", len(d.Sites), MaxSites)
	}
	for i, v := range d.Sites {
		if err := v.Validate(); err != nil {
			return prefixField(err, fmt.Sprintf("sites[%d]", i), fmt.Sprintf("site %d", i))
		}
	}
	if d.Knowledge < Isolated || d.Knowledge > Shared {
		return fieldf("knowledge", "unknown knowledge plane %v", d.Knowledge)
	}
	if d.RoamFraction < 0 || d.RoamFraction > 1 {
		return fieldf("roamFraction", "roam fraction %v outside [0,1]", d.RoamFraction)
	}
	if d.SyncEvery < 0 {
		return fieldf("syncEverySeconds", "sync period %v must not be negative", d.SyncEvery)
	}
	if d.Transit != (mobility.TransitModel{}) {
		if err := d.Transit.Validate(); err != nil {
			return &FieldError{Path: "transit", Reason: err.Error()}
		}
	}
	if d.Partitions < AutoPartitions {
		return fieldf("partitions", "partition count %d invalid: use %d (one per site), 0 (serial), or a positive count",
			d.Partitions, AutoPartitions)
	}
	if d.Partitions != 0 {
		if d.Knowledge == Shared {
			return fieldf("knowledge", "shared knowledge plane cannot run partitioned (one database behind all sites has zero lookahead)")
		}
		if len(d.Sites) > 1 {
			if gap, a, b := partitionRFGap(d.Sites); gap <= 0 {
				return fieldf(fmt.Sprintf("sites[%d]", b),
					"partitioned execution needs disjoint radio ranges: sites %d and %d are %.0fm apart with ranges %.0fm and %.0fm",
					a, b, d.Sites[a].Position.Dist(d.Sites[b].Position),
					d.Sites[a].RadioRange, d.Sites[b].RadioRange)
			}
		}
	}
	return nil
}
