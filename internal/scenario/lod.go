package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/stats"
)

// FarFieldConfig enables the city-scale level-of-detail population: a
// statistical far-field tier whose pedestrians carry only arrival, route
// and RNG-stream state — no per-frame simulation, no medium registration —
// until their itinerary crosses a promotion boundary around an attacker
// site, where they become full client state machines and demote again on
// exit. A nil FarFieldConfig on the deployment keeps the classic
// venue-scale behaviour bit for bit.
type FarFieldConfig struct {
	// Pedestrians is the far-field population size (100k–1M is the design
	// envelope; the per-pedestrian cost away from every site is a route
	// sample and a handful of analytic intersections).
	Pedestrians int
	// Radius is the promotion boundary around each site; a pedestrian
	// whose route enters it becomes a full client. 0 selects 1.25× the
	// largest site radio range, so phones exist slightly before the
	// attacker can hear them.
	Radius float64
	// Stops are the city destinations pedestrians route between, weighted
	// by attractiveness (citygen venues map onto these 1:1). Empty derives
	// one district per site: centre at the site, extent 4× its radio
	// range — the district being much larger than Radius is what keeps
	// most of its visitors in the cheap tier.
	Stops []mobility.RouteStop
	// Route is the itinerary model; the zero value selects
	// mobility.DefaultRoute.
	Route mobility.RouteModel
	// Entry is the area pedestrians enter the city from (homes, transit
	// edges). A zero rect covers the stops' bounding box padded by 1 km.
	Entry geo.Rect
	// Seed feeds the dedicated spawn stream that derives every
	// pedestrian's private RNG stream. 0 selects Base.Seed+9. Keeping this
	// stream separate from the run RNG is what leaves venue-scale goldens
	// byte-identical when far field is enabled alongside them.
	Seed int64
}

// normalized validates the config and fills the defaults described on the
// fields.
func (f FarFieldConfig) normalized(sites []Venue, maxRange float64, baseSeed int64) (FarFieldConfig, error) {
	if f.Pedestrians < 0 {
		return f, fmt.Errorf("scenario: negative far-field population %d", f.Pedestrians)
	}
	if f.Radius < 0 {
		return f, fmt.Errorf("scenario: negative promotion radius %v", f.Radius)
	}
	if f.Radius == 0 {
		f.Radius = 1.25 * maxRange
	}
	if len(f.Stops) == 0 {
		for _, v := range sites {
			r := 4 * v.RadioRange
			if r < 250 {
				r = 250
			}
			f.Stops = append(f.Stops, mobility.RouteStop{Pos: v.Position, Radius: r, Weight: 1})
		}
	}
	for i, s := range f.Stops {
		if s.Radius < 0 {
			return f, fmt.Errorf("scenario: far-field stop %d has negative radius %v", i, s.Radius)
		}
	}
	if f.Route == (mobility.RouteModel{}) {
		f.Route = mobility.DefaultRoute()
	}
	if err := f.Route.Validate(); err != nil {
		return f, fmt.Errorf("scenario: %w", err)
	}
	if f.Entry.Width() <= 0 || f.Entry.Height() <= 0 {
		min, max := f.Stops[0].Pos, f.Stops[0].Pos
		for _, s := range f.Stops {
			if s.Pos.X < min.X {
				min.X = s.Pos.X
			}
			if s.Pos.Y < min.Y {
				min.Y = s.Pos.Y
			}
			if s.Pos.X > max.X {
				max.X = s.Pos.X
			}
			if s.Pos.Y > max.Y {
				max.Y = s.Pos.Y
			}
		}
		f.Entry = geo.NewRect(min.Add(geo.Pt(-1000, -1000)), max.Add(geo.Pt(1000, 1000)))
	}
	if f.Seed == 0 {
		f.Seed = baseSeed + 9
	}
	return f, nil
}

// FarFieldSite is the per-site accounting of the far-field tier.
type FarFieldSite struct {
	// Name echoes the site's venue name.
	Name string
	// Promotions counts promotion events whose boundary belonged to this
	// site (a window merged across overlapping boundaries credits the
	// site that opened it).
	Promotions int
	// Hits counts ever-promoted pedestrians whose phone associated to
	// this site's rogue AP.
	Hits int
}

// FarFieldResult is everything the far-field tier produced in one run. It
// is reported separately from the venue populations' Outcomes/Tally so the
// knowledge-plane comparisons those feed stay undisturbed.
type FarFieldResult struct {
	// Pedestrians is the far-field population size.
	Pedestrians int
	// Promoted counts distinct pedestrians that were ever promoted.
	Promoted int
	// Promotions and Demotions count tier transitions (a pedestrian
	// crossing three boundaries counts three times).
	Promotions int
	Demotions  int
	// PeakPromoted is the largest number of simultaneously promoted
	// clients — the actual full-fidelity load the run carried.
	PeakPromoted int
	// Outcomes holds one entry per ever-promoted pedestrian (far-field
	// pedestrians that never met a boundary have, by construction, nothing
	// to report).
	Outcomes []stats.ClientOutcome
	// Tally aggregates Outcomes.
	Tally stats.Tally
	// Sites is the per-site accounting, in deployment site order.
	Sites []FarFieldSite
}

// promoWindow is one scheduled stay inside a promotion boundary, in
// absolute virtual time. site is the boundary's owner, for accounting.
type promoWindow struct {
	start, end time.Duration
	site       int
}

// pedestrian is one far-field inhabitant. Until promoted it is pure data:
// an itinerary, a private RNG stream seeded at spawn, and the precomputed
// promotion windows. The stream makes every draw the pedestrian will ever
// cause — PNL, behaviour flags, scan jitter — independent of when (and
// whether) other pedestrians promote.
type pedestrian struct {
	id    int
	mac   ieee80211.MAC
	rng   *rand.Rand
	route mobility.Route

	cur  *client.Client   // live client while promoted
	snap *client.Snapshot // durable state between promotions
	// epoch guards movement tickers: each promote/demote bumps it, so a
	// ticker scheduled for an earlier leg of churn becomes a no-op instead
	// of dragging a stale position along.
	epoch int

	direct     bool
	firstPromo time.Duration
	lastDemote time.Duration
	promotions int
}

// farFieldMAC derives pedestrian ID MACs from a locally administered space
// disjoint from the venue populations' allocator (second byte 0x10 vs
// 0x00), so city-wide uniqueness survives mixing both tiers.
func farFieldMAC(id int) ieee80211.MAC {
	n := uint32(id + 1)
	return ieee80211.MAC{0x02, 0x10, byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// tierManager owns the far-field tier: it spawns the statistical
// population, turns routes into promotion windows via the site grid, and
// performs the promote/demote transitions during the run.
type tierManager struct {
	env   *runEnv
	cfg   FarFieldConfig
	sites []*site

	grid    *geo.HashGrid
	sitePos []geo.Point

	peds []*pedestrian

	promotedNow  int
	peakPromoted int
	promotions   int
	demotions    int
	siteStats    []FarFieldSite

	// Live registry handles (all nil-safe no-ops when observability is
	// off) so a monitor sees the tier churn as it happens.
	mPromotions []*obs.Counter // per site
	mDemotions  *obs.Counter
	gPromoted   *obs.Gauge
	gPeak       *obs.Gauge
}

func newTierManager(env *runEnv, cfg FarFieldConfig, sites []*site) (*tierManager, error) {
	grid, err := geo.NewHashGrid(cfg.Radius)
	if err != nil {
		return nil, fmt.Errorf("scenario: far-field grid: %w", err)
	}
	tm := &tierManager{env: env, cfg: cfg, sites: sites, grid: grid}
	for i, st := range sites {
		tm.grid.Insert(int32(i), st.venue.Position)
		tm.sitePos = append(tm.sitePos, st.venue.Position)
		tm.siteStats = append(tm.siteStats, FarFieldSite{Name: st.venue.Name})
	}
	if env.rt != nil {
		for _, st := range sites {
			tm.mPromotions = append(tm.mPromotions,
				env.rt.Metrics.Counter("lod_promotions", env.siteLabels(st.venue.Name)...))
		}
		tm.mDemotions = env.rt.Metrics.Counter("lod_demotions")
		tm.gPromoted = env.rt.Metrics.Gauge("lod_promoted_now")
		tm.gPeak = env.rt.Metrics.Gauge("lod_promoted_peak")
	}
	return tm, nil
}

// spawn creates the far-field population for one run of the given horizon
// (engine time runs 0..horizon regardless of slot; the slot only selects
// profiles). All scheduling happens here, before the engine runs, in
// pedestrian-ID order: arrivals, itineraries and promotion windows are
// fully determined by the spawn seed alone. The run RNG is never touched.
func (tm *tierManager) spawn(horizon time.Duration) {
	spawn := rand.New(rand.NewSource(tm.cfg.Seed))
	for id := 0; id < tm.cfg.Pedestrians; id++ {
		seed := spawn.Int63()
		p := &pedestrian{id: id, mac: farFieldMAC(id), rng: rand.New(rand.NewSource(seed))}
		p.direct = p.rng.Float64() < tm.env.cfg.DirectProberFraction
		arrival := time.Duration(p.rng.Int63n(int64(horizon)))
		entry := geo.Pt(
			tm.cfg.Entry.Min.X+p.rng.Float64()*tm.cfg.Entry.Width(),
			tm.cfg.Entry.Min.Y+p.rng.Float64()*tm.cfg.Entry.Height(),
		)
		p.route = tm.cfg.Route.Sample(p.rng, arrival, entry, tm.cfg.Stops)
		tm.peds = append(tm.peds, p)
		for _, w := range tm.windows(p.route) {
			w := w
			tm.env.engine.At(w.start, func() { tm.promote(p, w) })
			tm.env.engine.At(w.end, func() { tm.demote(p) })
		}
	}
}

// windows computes the pedestrian's stays inside promotion boundaries.
func (tm *tierManager) windows(route mobility.Route) []promoWindow {
	return promoWindows(tm.grid, tm.sitePos, tm.cfg.Radius, route)
}

// promoWindows computes a route's stays inside promotion boundaries,
// merged and in time order: per transit leg an analytic segment–disk
// intersection against every candidate site from the grid, per dwell leg a
// point-in-disk test. The grid query radius — half the leg length plus the
// promotion radius — routinely exceeds the grid's cell size, which is why
// AppendNeighborhood scans as many rings as the radius needs. Shared by
// the classic tier manager and the partitioned one, whose windows must be
// identical for a partitioned run to mirror the serial reference.
func promoWindows(grid *geo.HashGrid, sitePos []geo.Point, r float64, route mobility.Route) []promoWindow {
	var raw []promoWindow
	var cand []int32
	for _, leg := range route.Legs {
		switch leg.Kind {
		case mobility.LegTransit:
			mid := leg.From.Add(leg.To.Sub(leg.From).Scale(0.5))
			cand = grid.AppendNeighborhood(cand[:0], mid, leg.From.Dist(leg.To)/2+r)
			sortSiteIDs(cand)
			for _, si := range cand {
				t0, t1, ok := geo.SegmentDiskCrossings(leg.From, leg.To, sitePos[si], r)
				if !ok {
					continue
				}
				span := leg.End - leg.Start
				raw = append(raw, promoWindow{
					start: leg.Start + time.Duration(t0*float64(span)),
					end:   leg.Start + time.Duration(t1*float64(span)),
					site:  int(si),
				})
			}
		case mobility.LegDwell:
			cand = grid.AppendNeighborhood(cand[:0], leg.To, r)
			sortSiteIDs(cand)
			for _, si := range cand {
				if leg.To.Dist(sitePos[si]) <= r {
					raw = append(raw, promoWindow{start: leg.Start, end: leg.End, site: int(si)})
					break
				}
			}
		}
	}
	if len(raw) == 0 {
		return nil
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].start < raw[j].start })
	merged := raw[:1]
	for _, w := range raw[1:] {
		last := &merged[len(merged)-1]
		if w.start <= last.end {
			if w.end > last.end {
				last.end = w.end
			}
			continue
		}
		merged = append(merged, w)
	}
	// Zero-length windows (tangent grazes, adjacent-leg seams) promote and
	// demote at the same instant; drop them.
	out := merged[:0]
	for _, w := range merged {
		if w.end > w.start {
			out = append(out, w)
		}
	}
	return out
}

// sortSiteIDs orders grid candidates so window construction is independent
// of grid bucket order.
func sortSiteIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// promote raises a pedestrian to full client fidelity. The first promotion
// materialises the phone — PNL, behaviour flags and scan jitter all drawn
// from the pedestrian's private stream — and later ones resume the
// suspended snapshot, so a phone keeps its MAC, stats, sequence counter
// and unmasked-twin memory across boundaries.
func (tm *tierManager) promote(p *pedestrian, w promoWindow) {
	if p.cur != nil {
		return
	}
	now := tm.env.engine.Now()
	pos := p.route.At(now)
	var c *client.Client
	var err error
	if p.snap == nil {
		cfg := tm.env.cfg
		// The PNL is drawn at the owning site's venue position — the same
		// canonical positions the venue populations use — not the exact
		// boundary-crossing point. pnl.Model caches venue-local pools on a
		// coarse grid keyed by quantised position but computed from the
		// query point, so querying at arbitrary city coordinates would
		// poison cells that classic runs on the same shared World read
		// later, perturbing their results.
		list := tm.env.model.NewList(p.rng, tm.sites[w.site].venue.Position)
		if p.direct {
			list = tm.env.model.AugmentUnsafe(p.rng, list)
		}
		ccfg := client.Config{
			MAC:           p.mac,
			PNL:           list,
			DirectProber:  p.direct,
			ScanInterval:  time.Duration(float64(cfg.ScanInterval) * (0.7 + 0.6*p.rng.Float64())),
			CanaryProbing: cfg.CanaryFraction > 0 && p.rng.Float64() < cfg.CanaryFraction,
			RandomizeMAC:  cfg.RandomizeMACFraction > 0 && p.rng.Float64() < cfg.RandomizeMACFraction,
			Obs:           tm.env.rt,
		}
		cfg.applyRandomization(&ccfg)
		c, err = client.New(tm.env.engine, tm.env.medium, p.rng, ccfg)
		if err == nil {
			c.SetPos(pos)
			err = c.Start()
		}
		if err == nil {
			p.firstPromo = now
		}
	} else {
		c, err = client.Resume(tm.env.engine, tm.env.medium, p.rng, *p.snap)
		if err == nil {
			c.SetPos(pos)
		}
	}
	if err != nil {
		// Only reachable through programming errors; drop the promotion
		// rather than corrupt the run.
		return
	}
	p.cur = c
	p.snap = nil
	p.epoch++
	p.promotions++
	tm.promotions++
	tm.siteStats[w.site].Promotions++
	tm.promotedNow++
	if tm.promotedNow > tm.peakPromoted {
		tm.peakPromoted = tm.promotedNow
	}
	if tm.env.rt != nil {
		tm.mPromotions[w.site].Inc()
		tm.gPromoted.Set(float64(tm.promotedNow))
		tm.gPeak.SetMax(float64(tm.peakPromoted))
		tm.env.rt.Event(now, obs.EventPromotion, p.mac.String(),
			"promoted near "+tm.sites[w.site].venue.Name)
	}
	tm.driveMovement(p)
}

// demote suspends a promoted client back to the statistical tier.
func (tm *tierManager) demote(p *pedestrian) {
	if p.cur == nil {
		return
	}
	p.epoch++
	snap, err := p.cur.Suspend()
	p.cur = nil
	if err == nil {
		p.snap = &snap
	}
	p.lastDemote = tm.env.engine.Now()
	tm.demotions++
	tm.promotedNow--
	if tm.env.rt != nil {
		tm.mDemotions.Inc()
		tm.gPromoted.Set(float64(tm.promotedNow))
		tm.env.rt.Event(p.lastDemote, obs.EventDemotion, p.mac.String(),
			"suspended to far-field tier")
	}
}

// driveMovement walks a promoted client along its route, 2 s steps like
// the venue walkers. The ticker dies on the next epoch bump (demotion, or
// re-promotion churn).
func (tm *tierManager) driveMovement(p *pedestrian) {
	const step = 2 * time.Second
	epoch := p.epoch
	var tick func()
	tick = func() {
		if p.epoch != epoch || p.cur == nil {
			return
		}
		p.cur.SetPos(p.route.At(tm.env.engine.Now()))
		tm.env.engine.Schedule(step, tick)
	}
	tm.env.engine.Schedule(step, tick)
}

// result assembles the far-field accounting after the run. Clients still
// promoted at the horizon are read live; everyone else from their last
// snapshot. siteByMAC maps attacker MACs to site indices for per-site hit
// counts.
func (tm *tierManager) result(now time.Duration, engines []*core.Engine) *FarFieldResult {
	res := &FarFieldResult{
		Pedestrians:  len(tm.peds),
		Promotions:   tm.promotions,
		Demotions:    tm.demotions,
		PeakPromoted: tm.peakPromoted,
		Sites:        append([]FarFieldSite(nil), tm.siteStats...),
	}
	siteByMAC := make(map[ieee80211.MAC]int, len(tm.sites))
	for i, st := range tm.sites {
		siteByMAC[st.id.attackerMAC] = i
	}
	attackers := attackerSet(tm.sites)
	for _, p := range tm.peds {
		var st client.Stats
		var macs []ieee80211.MAC
		switch {
		case p.cur != nil:
			st = p.cur.Stats
			macs = p.cur.UsedMACs()
			p.lastDemote = now
		case p.snap != nil:
			st = p.snap.Stats
			macs = snapshotMACs(p.snap)
		default:
			continue // never promoted: nothing on air, nothing to report
		}
		res.Promoted++
		o := stats.ClientOutcome{
			Arrived:      p.firstPromo,
			Departed:     p.lastDemote,
			DirectProber: p.direct,
			Probed:       st.BroadcastProbes+st.DirectProbes > 0,
			Connected:    st.Connected && attackers[st.ConnectedTo],
			ConnectedAt:  st.ConnectedAt,
			MACsUsed:     len(macs),
		}
		for _, eng := range engines {
			o.SSIDsSent += eng.SentCountAcross(macs)
		}
		if o.Connected {
			if si, ok := siteByMAC[st.ConnectedTo]; ok {
				res.Sites[si].Hits++
			}
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	res.Tally = stats.NewTally(res.Outcomes)
	return res
}
