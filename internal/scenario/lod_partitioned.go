package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/obs"
	"cityhunter/internal/stats"
)

// partTierManager is the far-field tier under partitioned execution. The
// spawn phase is byte-identical to the classic tierManager — same spawn
// stream, same per-pedestrian streams, same promotion windows — but each
// window's promote/demote runs on the engine of the site that owns its
// boundary, so all tier accounting is kept per site (touched only by the
// owning partition) and folded after the run.
//
// A pedestrian's consecutive windows at DIFFERENT sites hand its
// snapshot and RNG stream across partitions without locks: promotion
// boundaries are validated disjoint, so between a demote at one site and
// the next promote at another the pedestrian walks at least the boundary
// gap — at least one lookahead of virtual time, hence at least one
// coordinator barrier, whose join publishes the demote's writes.
type partTierManager struct {
	envs  []*runEnv
	cfg   FarFieldConfig
	sites []*site

	grid    *geo.HashGrid
	sitePos []geo.Point

	peds []*pedestrian

	// perSite[i] is written only by site i's partition during the run.
	perSite []partTierSite

	mDemotions *obs.Counter // atomic; shared across partitions
}

// partTierSite is one site's tier accounting plus its live metric
// handles. promotedNow/peak are per-site because a run-time global count
// would need cross-partition writes; the exact global peak is
// reconstructed after the run from the per-site delta logs.
type partTierSite struct {
	stats        FarFieldSite
	promotedNow  int
	peakPromoted int
	demotions    int
	// deltas logs every tier transition at this site as (time, ±1); the
	// post-run merge across sites — ordered by time, site index breaking
	// ties — yields a global occupancy walk independent of the partition
	// count.
	deltas []tierDelta

	mPromotions *obs.Counter
	gPromoted   *obs.Gauge
	gPeak       *obs.Gauge
}

type tierDelta struct {
	at    time.Duration
	delta int
}

func newPartTierManager(envs []*runEnv, cfg FarFieldConfig, sites []*site) (*partTierManager, error) {
	grid, err := geo.NewHashGrid(cfg.Radius)
	if err != nil {
		return nil, fmt.Errorf("scenario: far-field grid: %w", err)
	}
	tm := &partTierManager{envs: envs, cfg: cfg, sites: sites, grid: grid}
	tm.perSite = make([]partTierSite, len(sites))
	for i, st := range sites {
		tm.grid.Insert(int32(i), st.venue.Position)
		tm.sitePos = append(tm.sitePos, st.venue.Position)
		tm.perSite[i].stats = FarFieldSite{Name: st.venue.Name}
		if env := envs[i]; env.rt != nil {
			// Gauges are per-site series: N partitions setting one shared
			// gauge would race on who wrote last.
			labels := env.siteLabels(st.venue.Name)
			tm.perSite[i].mPromotions = env.rt.Metrics.Counter("lod_promotions", labels...)
			tm.perSite[i].gPromoted = env.rt.Metrics.Gauge("lod_promoted_now", labels...)
			tm.perSite[i].gPeak = env.rt.Metrics.Gauge("lod_promoted_peak", labels...)
			if tm.mDemotions == nil {
				tm.mDemotions = env.rt.Metrics.Counter("lod_demotions")
			}
		}
	}
	return tm, nil
}

// spawn mirrors tierManager.spawn draw for draw; only the scheduling
// target differs — each window lands on its owning site's engine.
func (tm *partTierManager) spawn(horizon time.Duration) {
	cfg0 := tm.envs[0].cfg
	spawn := rand.New(rand.NewSource(tm.cfg.Seed))
	for id := 0; id < tm.cfg.Pedestrians; id++ {
		seed := spawn.Int63()
		p := &pedestrian{id: id, mac: farFieldMAC(id), rng: rand.New(rand.NewSource(seed))}
		p.direct = p.rng.Float64() < cfg0.DirectProberFraction
		arrival := time.Duration(p.rng.Int63n(int64(horizon)))
		entry := geo.Pt(
			tm.cfg.Entry.Min.X+p.rng.Float64()*tm.cfg.Entry.Width(),
			tm.cfg.Entry.Min.Y+p.rng.Float64()*tm.cfg.Entry.Height(),
		)
		p.route = tm.cfg.Route.Sample(p.rng, arrival, entry, tm.cfg.Stops)
		tm.peds = append(tm.peds, p)
		for _, w := range promoWindows(tm.grid, tm.sitePos, tm.cfg.Radius, p.route) {
			w := w
			tm.envs[w.site].engine.At(w.start, func() { tm.promote(p, w) })
			tm.envs[w.site].engine.At(w.end, func() { tm.demote(p, w.site) })
		}
	}
}

// promote runs on the owning site's partition; the draws come from the
// pedestrian's private stream, exactly as in the classic tier.
func (tm *partTierManager) promote(p *pedestrian, w promoWindow) {
	if p.cur != nil {
		return
	}
	env := tm.envs[w.site]
	now := env.engine.Now()
	pos := p.route.At(now)
	var c *client.Client
	var err error
	if p.snap == nil {
		cfg := env.cfg
		list := env.model.NewList(p.rng, tm.sites[w.site].venue.Position)
		if p.direct {
			list = env.model.AugmentUnsafe(p.rng, list)
		}
		ccfg := client.Config{
			MAC:           p.mac,
			PNL:           list,
			DirectProber:  p.direct,
			ScanInterval:  time.Duration(float64(cfg.ScanInterval) * (0.7 + 0.6*p.rng.Float64())),
			CanaryProbing: cfg.CanaryFraction > 0 && p.rng.Float64() < cfg.CanaryFraction,
			RandomizeMAC:  cfg.RandomizeMACFraction > 0 && p.rng.Float64() < cfg.RandomizeMACFraction,
			Obs:           env.rt,
		}
		cfg.applyRandomization(&ccfg)
		c, err = client.New(env.engine, env.medium, p.rng, ccfg)
		if err == nil {
			c.SetPos(pos)
			err = c.Start()
		}
		if err == nil {
			p.firstPromo = now
		}
	} else {
		c, err = client.Resume(env.engine, env.medium, p.rng, *p.snap)
		if err == nil {
			c.SetPos(pos)
		}
	}
	if err != nil {
		// Only reachable through programming errors; drop the promotion
		// rather than corrupt the run.
		return
	}
	p.cur = c
	p.snap = nil
	p.epoch++
	p.promotions++
	s := &tm.perSite[w.site]
	s.stats.Promotions++
	s.promotedNow++
	if s.promotedNow > s.peakPromoted {
		s.peakPromoted = s.promotedNow
	}
	s.deltas = append(s.deltas, tierDelta{at: now, delta: 1})
	if env.rt != nil {
		s.mPromotions.Inc()
		s.gPromoted.Set(float64(s.promotedNow))
		s.gPeak.SetMax(float64(s.peakPromoted))
		env.rt.Event(now, obs.EventPromotion, p.mac.String(),
			"promoted near "+tm.sites[w.site].venue.Name)
	}
	tm.driveMovement(p, env)
}

// demote suspends a promoted client back to the statistical tier, on the
// partition that owns the boundary being exited.
func (tm *partTierManager) demote(p *pedestrian, siteIdx int) {
	if p.cur == nil {
		return
	}
	env := tm.envs[siteIdx]
	p.epoch++
	snap, err := p.cur.Suspend()
	p.cur = nil
	if err == nil {
		p.snap = &snap
	}
	p.lastDemote = env.engine.Now()
	s := &tm.perSite[siteIdx]
	s.demotions++
	s.promotedNow--
	s.deltas = append(s.deltas, tierDelta{at: p.lastDemote, delta: -1})
	if env.rt != nil {
		tm.mDemotions.Inc()
		s.gPromoted.Set(float64(s.promotedNow))
		env.rt.Event(p.lastDemote, obs.EventDemotion, p.mac.String(),
			"suspended to far-field tier")
	}
}

// driveMovement walks a promoted client along its route on the promoting
// site's engine. The ticker captures the client and consults only its
// state: a demoted client is Departed forever, so a stale ticker dies
// without reading pedestrian fields that a LATER promotion on another
// partition may be rewriting (every promotion materialises a fresh
// client, so a live captured client always means the ticker is current).
func (tm *partTierManager) driveMovement(p *pedestrian, env *runEnv) {
	const step = 2 * time.Second
	c := p.cur
	var tick func()
	tick = func() {
		if c.State() == client.StateDeparted {
			return
		}
		c.SetPos(p.route.At(env.engine.Now()))
		env.engine.Schedule(step, tick)
	}
	env.engine.Schedule(step, tick)
}

// result folds the per-site accounting into the classic FarFieldResult.
// The global peak is the maximum of the occupancy walk over all deltas
// merged by (time, site) — an ordering the run itself never depends on,
// so the value is identical at any partition count.
func (tm *partTierManager) result(now time.Duration, engines []*core.Engine) *FarFieldResult {
	res := &FarFieldResult{Pedestrians: len(tm.peds)}
	var deltas []tierDelta
	for i := range tm.perSite {
		s := &tm.perSite[i]
		res.Promotions += s.stats.Promotions
		res.Demotions += s.demotions
		res.Sites = append(res.Sites, s.stats)
		deltas = append(deltas, s.deltas...)
	}
	sort.SliceStable(deltas, func(i, j int) bool { return deltas[i].at < deltas[j].at })
	occupancy := 0
	for _, d := range deltas {
		occupancy += d.delta
		if occupancy > res.PeakPromoted {
			res.PeakPromoted = occupancy
		}
	}
	siteByMAC := make(map[ieee80211.MAC]int, len(tm.sites))
	for i, st := range tm.sites {
		siteByMAC[st.id.attackerMAC] = i
	}
	attackers := attackerSet(tm.sites)
	for _, p := range tm.peds {
		var st client.Stats
		var macs []ieee80211.MAC
		switch {
		case p.cur != nil:
			st = p.cur.Stats
			macs = p.cur.UsedMACs()
			p.lastDemote = now
		case p.snap != nil:
			st = p.snap.Stats
			macs = snapshotMACs(p.snap)
		default:
			continue // never promoted: nothing on air, nothing to report
		}
		res.Promoted++
		o := stats.ClientOutcome{
			Arrived:      p.firstPromo,
			Departed:     p.lastDemote,
			DirectProber: p.direct,
			Probed:       st.BroadcastProbes+st.DirectProbes > 0,
			Connected:    st.Connected && attackers[st.ConnectedTo],
			ConnectedAt:  st.ConnectedAt,
			MACsUsed:     len(macs),
		}
		for _, eng := range engines {
			o.SSIDsSent += eng.SentCountAcross(macs)
		}
		if o.Connected {
			if si, ok := siteByMAC[st.ConnectedTo]; ok {
				res.Sites[si].Hits++
			}
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	res.Tally = stats.NewTally(res.Outcomes)
	return res
}
