package scenario

import (
	"fmt"
	"time"

	"cityhunter/internal/obs"
)

// DefaultPublishEvery is the virtual-time cadence between published metric
// snapshots when Config.PublishEvery is zero. Five virtual seconds keeps a
// one-hour run under a thousand snapshots while the time-series the paper
// plots (hit counts, association counts) stay smooth.
const DefaultPublishEvery = 5 * time.Second

// runFeed couples a registered run's publisher handle with the engine
// cadence driving it.
type runFeed struct {
	rp  obs.RunPublisher
	env *runEnv
}

// startFeed registers the run with the configured publisher (nil-safe: no
// publisher, no feed), announces its sites, and arms the virtual-time
// snapshot tick. The tick is an ordinary engine event that only reads the
// registry — it consumes no randomness and mutates no simulation state, so
// a published run is event-for-event identical to an unpublished one.
func startFeed(env *runEnv, kind string, slot int, sites []*site, extra map[string]string) *runFeed {
	cfg := env.cfg
	if cfg.Publisher == nil {
		return nil
	}
	labels := map[string]string{}
	for k, v := range cfg.RunLabels {
		labels[k] = v
	}
	labels["attack"] = cfg.Attack.String()
	labels["seed"] = fmt.Sprintf("%d", cfg.Seed)
	for k, v := range extra {
		labels[k] = v
	}
	label := cfg.RunLabel
	if label == "" {
		if len(sites) == 1 {
			label = fmt.Sprintf("%s/%s/slot%d", sites[0].venue.Name, cfg.Attack, slot)
		} else {
			label = fmt.Sprintf("%d sites/%s/slot%d", len(sites), cfg.Attack, slot)
		}
	}
	rp := cfg.Publisher.StartRun(obs.RunInfo{Kind: kind, Label: label, Labels: labels})
	env.rt.Publish = rp
	for _, st := range sites {
		env.rt.Event(0, obs.EventSiteDeploy, st.venue.Name,
			fmt.Sprintf("attacker %s at (%.0f,%.0f)", st.id.attackerMAC, st.venue.Position.X, st.venue.Position.Y))
	}
	every := cfg.PublishEvery
	if every <= 0 {
		every = DefaultPublishEvery
	}
	env.engine.Every(0, every, func() {
		rp.PublishSnapshot(env.engine.Now(), env.rt.Metrics.Snapshot())
	})
	return &runFeed{rp: rp, env: env}
}

// finish publishes the end-of-run snapshot — which now includes the
// runner-level tallies emitRunTelemetry just recorded — and closes the run
// on the monitor. Nil-safe.
func (f *runFeed) finish(simulated time.Duration, runErr error) {
	if f == nil {
		return
	}
	f.rp.PublishSnapshot(simulated, f.env.rt.Metrics.Snapshot())
	f.rp.FinishRun(simulated, runErr)
}
