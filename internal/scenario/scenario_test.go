package scenario

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cityhunter/internal/citygen"
	"cityhunter/internal/heatmap"
)

var (
	cityOnce sync.Once
	cityVal  *citygen.City
	heatVal  *heatmap.Map
)

// testCity generates the default city once per test binary.
func testCity(t *testing.T) (*citygen.City, *heatmap.Map) {
	t.Helper()
	cityOnce.Do(func() {
		c, err := citygen.Generate(citygen.DefaultConfig(7))
		if err != nil {
			t.Fatalf("citygen: %v", err)
		}
		hm, err := heatmap.FromPhotos(c.Bounds, 200, c.Photos)
		if err != nil {
			t.Fatalf("heatmap: %v", err)
		}
		cityVal, heatVal = c, hm
	})
	if cityVal == nil {
		t.Fatal("city generation failed earlier")
	}
	return cityVal, heatVal
}

func baseConfig(t *testing.T, venue Venue, kind AttackKind, seed int64) Config {
	city, hm := testCity(t)
	return Config{
		City:                 city,
		HeatMap:              hm,
		Venue:                venue,
		Attack:               kind,
		DirectProberFraction: 0.15,
		ScanInterval:         25 * time.Second,
		Seed:                 seed,
	}
}

func TestRunValidation(t *testing.T) {
	city, hm := testCity(t)
	base := Config{City: city, HeatMap: hm, Venue: CanteenVenue(), Attack: KARMA, Seed: 1}
	if _, err := Run(Config{Venue: CanteenVenue(), Attack: KARMA}, 0, time.Minute); err == nil {
		t.Error("nil city accepted")
	}
	if _, err := Run(base, -1, time.Minute); err == nil {
		t.Error("negative slot accepted")
	}
	if _, err := Run(base, 99, time.Minute); err == nil {
		t.Error("slot beyond profile accepted")
	}
	if _, err := Run(base, 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
	bad := base
	bad.DirectProberFraction = 2
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("bad direct fraction accepted")
	}
	bad = base
	bad.Attack = AttackKind(99)
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("unknown attack accepted")
	}
	bad = base
	bad.PreconnectedFraction = -1
	if _, err := Run(bad, 0, time.Minute); err == nil {
		t.Error("bad preconnected fraction accepted")
	}
}

// TestCanteenComparison reproduces the Table I / Table II shape in the
// canteen: KARMA < MANA < preliminary City-Hunter on overall hit rate,
// KARMA h_b = 0, and City-Hunter's h_b several times MANA's.
func TestCanteenComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("30-minute canteen runs")
	}
	run := func(kind AttackKind) *Result {
		cfg := baseConfig(t, CanteenVenue(), kind, 11)
		res, err := Run(cfg, 4, 30*time.Minute) // lunch slot
		if err != nil {
			t.Fatalf("Run(%v): %v", kind, err)
		}
		t.Logf("%-28s %s", res.Attack, res.Tally)
		return res
	}
	karma := run(KARMA)
	mana := run(MANA)
	prelim := run(CityHunterPreliminary)
	full := run(CityHunter)

	if karma.Tally.BroadcastHitRate() != 0 {
		t.Errorf("KARMA h_b = %v, want 0", karma.Tally.BroadcastHitRate())
	}
	if mana.Tally.BroadcastHitRate() <= 0 {
		t.Error("MANA h_b = 0; it should capture some broadcast probers")
	}
	if prelim.Tally.BroadcastHitRate() < 2*mana.Tally.BroadcastHitRate() {
		t.Errorf("preliminary City-Hunter h_b %.3f not ≫ MANA %.3f",
			prelim.Tally.BroadcastHitRate(), mana.Tally.BroadcastHitRate())
	}
	if full.Tally.BroadcastHitRate() < prelim.Tally.BroadcastHitRate()*0.7 {
		t.Errorf("full City-Hunter h_b %.3f much worse than preliminary %.3f",
			full.Tally.BroadcastHitRate(), prelim.Tally.BroadcastHitRate())
	}
	// Paper bands: City-Hunter h_b 12–18 % (we accept 8–30 % across
	// seeds), MANA h_b ≈ 3 % (accept <8 %).
	if hb := full.Tally.BroadcastHitRate(); hb < 0.08 || hb > 0.30 {
		t.Errorf("City-Hunter canteen h_b = %.3f outside calibration band", hb)
	}
	if hb := mana.Tally.BroadcastHitRate(); hb > 0.08 {
		t.Errorf("MANA canteen h_b = %.3f above calibration band", hb)
	}
}

// TestPassageVsCanteen reproduces the §III observation: the same attacker
// does worse where people keep moving.
func TestPassageVsCanteen(t *testing.T) {
	if testing.Short() {
		t.Skip("long scenario runs")
	}
	canteen, err := Run(baseConfig(t, CanteenVenue(), CityHunter, 13), 4, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	passage, err := Run(baseConfig(t, PassageVenue(), CityHunter, 13), 2, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("canteen  %s", canteen.Tally)
	t.Logf("passage  %s", passage.Tally)
	if passage.Tally.BroadcastHitRate() >= canteen.Tally.BroadcastHitRate() {
		t.Errorf("passage h_b %.3f >= canteen h_b %.3f; mobility should hurt",
			passage.Tally.BroadcastHitRate(), canteen.Tally.BroadcastHitRate())
	}
	// Clients in the passage see far fewer SSIDs than in the canteen.
	meanSent := func(r *Result) float64 {
		total, n := 0, 0
		for _, o := range r.Outcomes {
			if o.Probed && !o.DirectProber {
				total += o.SSIDsSent
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(total) / float64(n)
	}
	mc, mp := meanSent(canteen), meanSent(passage)
	t.Logf("mean SSIDs sent: canteen %.0f, passage %.0f", mc, mp)
	if mp >= mc {
		t.Errorf("mean SSIDs sent passage %.0f >= canteen %.0f", mp, mc)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := baseConfig(t, PassageVenue(), CityHunter, 17)
	cfg.ArrivalScale = 0.3
	a, err := Run(cfg, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally {
		t.Errorf("same seed, different tallies:\n%v\n%v", a.Tally, b.Tally)
	}
	if len(a.Victims) != len(b.Victims) {
		t.Errorf("victims differ: %d vs %d", len(a.Victims), len(b.Victims))
	}
}

func TestRunSampling(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 19)
	cfg.ArrivalScale = 0.3
	cfg.SampleEvery = time.Minute
	res, err := Run(cfg, 0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine == nil {
		t.Fatal("no engine on City-Hunter run")
	}
	samples := res.Engine.Samples()
	if len(samples) < 5 {
		t.Errorf("samples = %d, want ≥5 over 5 minutes", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].DBSize < samples[i-1].DBSize {
			t.Error("DB size series decreased")
		}
	}
}

func TestManaRunExposesDB(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), MANA, 23)
	cfg.ArrivalScale = 0.3
	cfg.SampleEvery = time.Minute
	res, err := Run(cfg, 4, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mana == nil {
		t.Fatal("no MANA handle")
	}
	if res.Engine != nil {
		t.Error("engine set on MANA run")
	}
	if len(res.Mana.SizeSamples()) == 0 {
		t.Error("no size samples collected")
	}
}

func TestVenueStringsAndKinds(t *testing.T) {
	for _, v := range AllVenues() {
		if v.Name == "" || v.Kind.String() == "unknown venue" {
			t.Errorf("bad venue %+v", v)
		}
		if err := v.Profile.Validate(); err != nil {
			t.Errorf("venue %s profile: %v", v.Name, err)
		}
	}
	kinds := []AttackKind{KARMA, MANA, CityHunterPreliminary, CityHunter, AttackKind(0)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad kind string %q", s)
		}
		seen[s] = true
	}
}

func TestVenueRushDetection(t *testing.T) {
	v := PassageVenue()
	if !v.IsRush(0) || v.IsRush(5) {
		t.Error("passage rush slots wrong")
	}
	rush := v.Groups(0)
	base := v.Groups(5)
	if rush.Probs[0] >= base.Probs[0] {
		t.Error("rush groups should have fewer singles")
	}
}

func TestRandomizedMACsInflateAttackerView(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 31)
	cfg.ArrivalScale = 0.4
	cfg.RandomizeMACFraction = 1.0
	res, err := Run(cfg, 4, 8*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth counts phones; the attacker counts MACs — with
	// per-scan randomization it sees far more "clients" than exist.
	if res.Report.TotalClients <= 2*res.Tally.Total {
		t.Errorf("attacker saw %d clients for %d real phones; randomization should inflate",
			res.Report.TotalClients, res.Tally.Total)
	}
	// The attack still lands some victims (head batches still cover the
	// popular SSIDs) but ground truth tracking stays intact.
	if res.Tally.Total == 0 {
		t.Fatal("no phones")
	}
}

func TestCanaryFractionNeutralizes(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 33)
	cfg.ArrivalScale = 0.4
	cfg.CanaryFraction = 1.0
	res, err := Run(cfg, 4, 8*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.ConnectedBroadcast != 0 {
		t.Errorf("canary-armed crowd still lost %d broadcast clients", res.Tally.ConnectedBroadcast)
	}
	if res.CanaryDetections == 0 {
		t.Error("no canary detections recorded")
	}
}

func TestSentinelWiredIntoScenario(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 35)
	cfg.ArrivalScale = 0.4
	cfg.Sentinel = true
	cfg.Trace = true
	res, err := Run(cfg, 4, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sentinel == nil {
		t.Fatal("no sentinel on result")
	}
	if len(res.Sentinel.Findings()) == 0 {
		t.Error("sentinel flagged nothing during an active attack")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Error("trace monitor captured nothing")
	}
}

func TestFrameLossDegradesGracefully(t *testing.T) {
	clean := baseConfig(t, CanteenVenue(), CityHunter, 41)
	clean.ArrivalScale = 0.5
	lossy := clean
	lossy.FrameLoss = 0.4

	a, err := Run(clean, 4, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lossy, 4, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean %v", a.Tally)
	t.Logf("lossy %v", b.Tally)
	// 802.11 unicast retries absorb most of the damage: the attack must
	// survive 40% frame loss (probes are the unretried casualty, and
	// rescans cover those). With ~80 broadcast clients the rates are too
	// noisy for a strict ordering, so assert survival within a band.
	if b.Tally.ConnectedBroadcast == 0 {
		t.Error("40% loss killed the attack entirely; retries and rescans should recover hits")
	}
	lo, hi := a.Tally.BroadcastHitRate()/3, a.Tally.BroadcastHitRate()*2+0.05
	if got := b.Tally.BroadcastHitRate(); got < lo || got > hi {
		t.Errorf("lossy h_b %.3f outside sanity band [%.3f, %.3f]", got, lo, hi)
	}
	// Validation rejects nonsense.
	bad := clean
	bad.FrameLoss = 1.0
	if _, err := Run(bad, 4, time.Minute); err == nil {
		t.Error("loss = 1.0 accepted")
	}
}

func TestKnownBeaconsBaseline(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), KnownBeacons, 51)
	cfg.ArrivalScale = 0.6
	kb, err := Run(cfg, 4, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	chCfg := cfg
	chCfg.Attack = CityHunter
	ch, err := Run(chCfg, 4, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("known beacons %v (beacons sent %d)", kb.Tally, kb.Report.BeaconsSent)
	t.Logf("city-hunter   %v", ch.Tally)
	if kb.Report.BeaconsSent == 0 {
		t.Fatal("no beacons transmitted")
	}
	// The blind broadcast tries ~1-2 SSIDs per scan window; City-Hunter's
	// targeted 40-SSID batches must beat it clearly.
	if kb.Tally.BroadcastHitRate() >= ch.Tally.BroadcastHitRate() {
		t.Errorf("known beacons h_b %.3f not below City-Hunter %.3f",
			kb.Tally.BroadcastHitRate(), ch.Tally.BroadcastHitRate())
	}
	// But given enough dwell it does land some victims.
	if kb.Tally.ConnectedBroadcast == 0 {
		t.Error("known beacons captured nobody in a 15-minute canteen sitting")
	}
	// It also never answers probes.
	if kb.Tally.ConnectedDirect > kb.Tally.Direct {
		t.Error("accounting broken")
	}
}

func TestCautiousMirrorBeatsCanaries(t *testing.T) {
	base := baseConfig(t, CanteenVenue(), CityHunter, 61)
	base.ArrivalScale = 0.6
	base.CanaryFraction = 1.0

	eager, err := Run(base, 4, 12*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cautious := base
	cautious.CautiousMirror = true
	careful, err := Run(cautious, 4, 12*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("eager mirror   %v (%d unmaskings)", eager.Tally, eager.CanaryDetections)
	t.Logf("cautious mirror %v (%d unmaskings)", careful.Tally, careful.CanaryDetections)

	// The eager mirror answers every canary and gets blacklisted by the
	// whole crowd; the cautious one never touches a canary.
	if eager.Tally.ConnectedBroadcast != 0 {
		t.Errorf("eager attacker still hit %d broadcast clients through canaries",
			eager.Tally.ConnectedBroadcast)
	}
	if careful.CanaryDetections != 0 {
		t.Errorf("cautious attacker unmasked %d times", careful.CanaryDetections)
	}
	if careful.Tally.ConnectedBroadcast == 0 {
		t.Error("cautious attacker recovered no broadcast hits against a canary crowd")
	}
}

func TestGridParallelismDeterministic(t *testing.T) {
	// Same seeds, different worker counts: identical results.
	// (Exercised here at the scenario level via repeated runs; the
	// experiments package fans out with its own workers.)
	cfg := baseConfig(t, StationVenue(), CityHunter, 63)
	cfg.ArrivalScale = 0.4
	a, err := Run(cfg, 2, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 2, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally || len(a.Victims) != len(b.Victims) {
		t.Error("repeat run diverged")
	}
}

func TestRunContextCancelled(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, cfg, 4, 10*time.Minute)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil partial result")
	}
	if res.Duration >= 10*time.Minute {
		t.Errorf("partial result claims full duration %v", res.Duration)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 5)
	a, err := Run(cfg, 4, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, 4, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally || a.Duration != b.Duration {
		t.Errorf("Run tally %+v (%v) != RunContext tally %+v (%v)",
			a.Tally, a.Duration, b.Tally, b.Duration)
	}
}
