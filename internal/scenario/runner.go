package scenario

import (
	"context"
	"fmt"
	"time"

	"cityhunter/internal/attack"
	"cityhunter/internal/citygen"
	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/detect"
	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/stats"
	"cityhunter/internal/trace"
	"cityhunter/internal/wigle"
)

// AttackKind selects which attacker a run deploys.
type AttackKind int

// Attack kinds.
const (
	// KARMA answers directed probes only.
	KARMA AttackKind = iota + 1
	// MANA harvests and replays directed-probe SSIDs.
	MANA
	// CityHunterPreliminary is the §III design (rotation + WiGLE).
	CityHunterPreliminary
	// CityHunter is the full §IV design.
	CityHunter
	// KnownBeacons is the wifiphisher-style related attack the paper's
	// family belongs to: instead of answering probes, the attacker
	// broadcasts forged beacons cycling through the WiGLE-derived lure
	// list, hoping passively scanning phones recognise one. It tries
	// only the one or two SSIDs whose beacons land inside each phone's
	// scan window — no per-client rotation is possible.
	KnownBeacons
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case KARMA:
		return "KARMA"
	case MANA:
		return "MANA"
	case CityHunterPreliminary:
		return "City-Hunter (preliminary)"
	case CityHunter:
		return "City-Hunter"
	case KnownBeacons:
		return "Known Beacons"
	default:
		return "unknown attack"
	}
}

// Config assembles one experiment.
type Config struct {
	// City is the synthetic environment; HeatMap its photo heat map.
	City    *citygen.City
	HeatMap *heatmap.Map
	// PNL generates phone preferred-network lists; nil builds one with
	// pnl.DefaultConfig.
	PNL *pnl.Model
	// Venue is the deployment site.
	Venue Venue
	// Attack selects the strategy.
	Attack AttackKind
	// CoreConfig overrides the City-Hunter engine configuration; nil
	// uses core.DefaultConfig for the mode implied by Attack.
	CoreConfig *core.Config
	// WiGLE is the attacker's offline database. nil uses City.DB — i.e.
	// perfect coverage. Pass a wigle.DB.SampleCrowdsourced result to
	// model the real service's gaps.
	WiGLE *wigle.DB
	// DirectProberFraction is the share of unsafe phones (paper ≈15 %).
	DirectProberFraction float64
	// ScanInterval is the mean phone scan period.
	ScanInterval time.Duration
	// PreconnectedFraction of phones arrive already associated to the
	// venue's legitimate AP and stay silent until deauthenticated.
	PreconnectedFraction float64
	// EnableDeauth arms the §V-B deauthentication extension.
	EnableDeauth bool
	// CautiousMirror makes the attacker mirror only already-known SSIDs,
	// its counter-move against canary probing.
	CautiousMirror bool
	// CanaryFraction is the share of phones running the canary-probe
	// evil-twin detector (see internal/detect); they unmask and ignore
	// the attacker.
	CanaryFraction float64
	// RandomizeMACFraction is the share of phones rotating their probe
	// MAC every scan (the modern OS default while unassociated).
	RandomizeMACFraction float64
	// Randomization upgrades the randomizing share from the legacy
	// per-scan flag to an explicit rotation policy; those phones also
	// emit their chipset IE fingerprint, the observable the linker
	// exploits. client.RandomizeNone (the zero value) keeps the
	// historical per-scan behaviour byte-identically.
	Randomization client.RandomizationPolicy
	// RandomizeEvery is the rotation period under
	// client.RandomizeTimed; 0 selects client.DefaultRandomizeEvery.
	RandomizeEvery time.Duration
	// FingerprintModels is how many distinct chipset fingerprints the
	// population draws from; 0 selects the default (24). Smaller values
	// mean more fingerprint collisions between phones.
	FingerprintModels int
	// Linker selects the attacker's MAC de-anonymisation strategy; the
	// zero value (LinkerMAC) is the historical one-MAC-one-device
	// mapping. Ignored when CoreConfig supplies its own Linker.
	Linker LinkerKind
	// Sentinel attaches a passive many-SSIDs-one-BSSID detector at the
	// venue; Result.Sentinel exposes its findings.
	Sentinel bool
	// Trace attaches a promiscuous frame recorder at the venue;
	// Result.Trace exposes the capture. Long runs capture millions of
	// frames — the recorder is bounded to TraceMaxEntries.
	Trace bool
	// TraceMaxEntries caps the frame capture; 0 means the 2^20 default.
	TraceMaxEntries int
	// FrameLoss drops each frame delivery independently with this
	// probability — fading, collisions and interference the disk model
	// otherwise ignores. 0 (the default) is the calibrated setting.
	FrameLoss float64
	// Metrics instruments every layer (sim engine, medium, attacker,
	// City-Hunter engine, runner) with the observability registry;
	// Result.Metrics holds its deterministic snapshot.
	Metrics bool
	// FlightRecorderCap, when positive, arms the run flight recorder: a
	// ring-bounded journal of structured events (adaptations, ghost hits,
	// associations, deauth sweeps, frame losses) kept in Result.Journal.
	FlightRecorderCap int
	// SpanTrace collects Chrome/Perfetto trace spans — client lifecycles,
	// scan cycles, attacker reply batches — into Result.Spans.
	SpanTrace bool
	// ArrivalScale multiplies the venue's arrival rates (a speed knob
	// for tests; 0 means 1).
	ArrivalScale float64
	// SampleEvery sets the engine state-sampling period (0 disables).
	SampleEvery time.Duration
	// Publisher, when set, streams live telemetry into a monitor: periodic
	// metric snapshots on the virtual clock plus structured run events. It
	// forces the metrics registry on. Publishing is read-only and consumes
	// no run randomness, so seeded results are unchanged.
	Publisher obs.Publisher
	// PublishEvery is the virtual-time cadence between published
	// snapshots; 0 selects DefaultPublishEvery.
	PublishEvery time.Duration
	// RunLabel names the run on the monitor; empty derives
	// "venue/attack/slotN".
	RunLabel string
	// RunLabels adds extra identity labels to every metric the run
	// publishes (the job server scopes runs to a job id this way). The
	// built-in attack/seed labels win on conflict.
	RunLabels map[string]string
	// Seed drives all randomness in the run.
	Seed int64
}

// Result is everything a run produces.
type Result struct {
	// Venue and Slot identify the experiment; SlotLabel is "8am-9am"
	// style.
	Venue     string
	Slot      int
	SlotLabel string
	Duration  time.Duration
	// Attack names the strategy.
	Attack string
	// Outcomes holds one record per phone that entered the area.
	Outcomes []stats.ClientOutcome
	// Tally aggregates them the way the paper's tables do.
	Tally stats.Tally
	// Report is the attacker's own accounting (heard probes etc.).
	Report attack.Report
	// Victims lists captures in order.
	Victims []attack.Victim
	// Engine exposes the City-Hunter internals for breakdowns; nil for
	// KARMA/MANA runs.
	Engine *core.Engine
	// Mana exposes the MANA database for Fig. 1; nil otherwise.
	Mana *attack.Mana
	// HitsByVictimDirect maps victims' MACs to their direct-prober flag,
	// for Fig. 6 filtering.
	HitsByVictimDirect map[ieee80211.MAC]bool
	// Sentinel is the passive detector, when Config.Sentinel was set.
	Sentinel *detect.Sentinel
	// Trace is the frame capture, when Config.Trace was set.
	Trace *trace.Monitor
	// TraceDropped is the number of frames the capture dropped past its
	// cap — nonzero means Trace is truncated, not complete.
	TraceDropped int
	// CanaryDetections sums the clients' canary unmaskings.
	CanaryDetections int
	// Metrics is the deterministic metrics snapshot, when Config.Metrics
	// was set.
	Metrics obs.Snapshot
	// Journal is the run flight recorder, when Config.FlightRecorderCap
	// was positive.
	Journal *obs.Journal
	// Spans is the Perfetto span trace, when Config.SpanTrace was set.
	Spans *obs.Trace
	// Links grades the engine's linker against the population's
	// ground-truth device identities: how precisely the attacker
	// re-linked rotated MACs back to devices. Nil for KARMA/MANA runs
	// (no engine, no track database).
	Links *linker.Report
}

// Breakdown returns the Fig. 6 classification of the SSIDs that hit
// broadcast-probing clients. It is only meaningful for City-Hunter runs.
func (r *Result) Breakdown() stats.Breakdown {
	if r.Engine == nil {
		return stats.Breakdown{}
	}
	return stats.NewBreakdown(r.Engine.Hits(), func(h core.HitRecord) bool {
		return r.HitsByVictimDirect[h.MAC]
	})
}

// attackerMAC is the attacker's fixed BSSID in every single-venue scenario
// (deployment site 0 reuses it; see deploymentSiteIdentity).
var attackerMAC = ieee80211.MAC{0x0a, 0xc1, 0x7f, 0x00, 0x00, 0x01}

// legitAPMAC is the venue AP used for pre-connected phones.
var legitAPMAC = ieee80211.MAC{0x0a, 0x1e, 0x61, 0x70, 0x00, 0x01}

// Run executes one deployment: the venue's slot-th hour-long test (the
// paper runs 8am–8pm, one test per hour slot, database re-initialised each
// time). duration may be shorter than an hour for quick runs. It is
// RunContext with a background context.
func Run(cfg Config, slot int, duration time.Duration) (*Result, error) {
	return RunContext(context.Background(), cfg, slot, duration)
}

// RunContext is the primary run entry point: Run, plus cancellation. The
// context is polled inside the simulation event loop, so a cancel stops a
// mid-flight run promptly (within a few hundred events).
//
// Cancellation semantics: when ctx is cancelled mid-run, RunContext still
// returns a non-nil *Result holding partial accounting — every outcome,
// tally, victim, report and observability attachment reflects the virtual
// time reached when the run stopped (Result.Duration is that partial
// virtual time, not the requested one) — together with a non-nil error
// wrapping ctx.Err(). Configuration errors detected before the simulation
// starts return a nil Result as Run does.
//
// Internally the run composes the same four layers a multi-site
// Deployment uses: world build (newRunEnv), knowledge (buildStrategy),
// site deployment (deploySite), and collection (assembleResult) — with
// exactly one site and no roaming.
func RunContext(ctx context.Context, cfg Config, slot int, duration time.Duration) (*Result, error) {
	if cfg.City == nil || cfg.HeatMap == nil {
		return nil, fmt.Errorf("scenario: city and heat map are required")
	}
	if slot < 0 || slot >= cfg.Venue.Profile.Slots() {
		return nil, fmt.Errorf("scenario: slot %d outside profile (0..%d)", slot, cfg.Venue.Profile.Slots()-1)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: non-positive duration %v", duration)
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}

	env, err := newRunEnv(cfg, cfg.Venue.RadioRange)
	if err != nil {
		return nil, err
	}

	set, err := buildStrategy(cfg, []geo.Point{cfg.Venue.Position}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	if set.chEngine != nil {
		set.chEngine.Instrument(env.rt)
	}
	st, err := deploySite(env, cfg.Venue, singleSiteIdentity(), set)
	if err != nil {
		return nil, err
	}
	sites := []*site{st}

	// Live telemetry feed (no-op without a publisher) and periodic engine
	// sampling for the time-series figures.
	feed := startFeed(env, "run", slot, sites, nil)
	scheduleSampling(env, sites)

	// Arrivals for this slot only; offsets are measured from slot start.
	slotStart := time.Duration(slot) * time.Hour
	arrivals, err := mobility.Arrivals(env.rng, scaledProfile(cfg.Venue.Profile, cfg.ArrivalScale), slotStart, duration)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	pop := newPopulation(env, cfg.Venue, st.id.legitMAC, attackerSet(sites), &macAllocator{})
	pop.spawnArrivals(arrivals, slotStart, cfg.Venue.Groups(slot), duration)

	_, runErr := env.engine.RunContext(ctx, duration)

	simulated := duration
	if runErr != nil {
		// Cancelled mid-run: the engine clock rests at the last executed
		// event, which is how much virtual time the partial result covers.
		simulated = env.engine.Now()
	}
	res := assembleResult(env, st, pop, slot, simulated, uniqueEngines(sites))
	if env.rt != nil {
		emitRunTelemetry(env.rt, env, pop, res)
		attachObservability(env.rt, res)
	}
	feed.finish(simulated, runErr)
	if runErr != nil {
		return res, fmt.Errorf("scenario: run cancelled after %v of %v: %w",
			simulated, duration, runErr)
	}
	return res, nil
}
