package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cityhunter/internal/ap"
	"cityhunter/internal/attack"
	"cityhunter/internal/citygen"
	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/detect"
	"cityhunter/internal/geo"
	"cityhunter/internal/heatmap"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
	"cityhunter/internal/stats"
	"cityhunter/internal/trace"
	"cityhunter/internal/wigle"
)

// AttackKind selects which attacker a run deploys.
type AttackKind int

// Attack kinds.
const (
	// KARMA answers directed probes only.
	KARMA AttackKind = iota + 1
	// MANA harvests and replays directed-probe SSIDs.
	MANA
	// CityHunterPreliminary is the §III design (rotation + WiGLE).
	CityHunterPreliminary
	// CityHunter is the full §IV design.
	CityHunter
	// KnownBeacons is the wifiphisher-style related attack the paper's
	// family belongs to: instead of answering probes, the attacker
	// broadcasts forged beacons cycling through the WiGLE-derived lure
	// list, hoping passively scanning phones recognise one. It tries
	// only the one or two SSIDs whose beacons land inside each phone's
	// scan window — no per-client rotation is possible.
	KnownBeacons
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case KARMA:
		return "KARMA"
	case MANA:
		return "MANA"
	case CityHunterPreliminary:
		return "City-Hunter (preliminary)"
	case CityHunter:
		return "City-Hunter"
	case KnownBeacons:
		return "Known Beacons"
	default:
		return "unknown attack"
	}
}

// Config assembles one experiment.
type Config struct {
	// City is the synthetic environment; HeatMap its photo heat map.
	City    *citygen.City
	HeatMap *heatmap.Map
	// PNL generates phone preferred-network lists; nil builds one with
	// pnl.DefaultConfig.
	PNL *pnl.Model
	// Venue is the deployment site.
	Venue Venue
	// Attack selects the strategy.
	Attack AttackKind
	// CoreConfig overrides the City-Hunter engine configuration; nil
	// uses core.DefaultConfig for the mode implied by Attack.
	CoreConfig *core.Config
	// WiGLE is the attacker's offline database. nil uses City.DB — i.e.
	// perfect coverage. Pass a wigle.DB.SampleCrowdsourced result to
	// model the real service's gaps.
	WiGLE *wigle.DB
	// DirectProberFraction is the share of unsafe phones (paper ≈15 %).
	DirectProberFraction float64
	// ScanInterval is the mean phone scan period.
	ScanInterval time.Duration
	// PreconnectedFraction of phones arrive already associated to the
	// venue's legitimate AP and stay silent until deauthenticated.
	PreconnectedFraction float64
	// EnableDeauth arms the §V-B deauthentication extension.
	EnableDeauth bool
	// CautiousMirror makes the attacker mirror only already-known SSIDs,
	// its counter-move against canary probing.
	CautiousMirror bool
	// CanaryFraction is the share of phones running the canary-probe
	// evil-twin detector (see internal/detect); they unmask and ignore
	// the attacker.
	CanaryFraction float64
	// RandomizeMACFraction is the share of phones rotating their probe
	// MAC every scan (the modern OS default while unassociated).
	RandomizeMACFraction float64
	// Sentinel attaches a passive many-SSIDs-one-BSSID detector at the
	// venue; Result.Sentinel exposes its findings.
	Sentinel bool
	// Trace attaches a promiscuous frame recorder at the venue;
	// Result.Trace exposes the capture. Long runs capture millions of
	// frames — the recorder is bounded to TraceMaxEntries.
	Trace bool
	// TraceMaxEntries caps the frame capture; 0 means the 2^20 default.
	TraceMaxEntries int
	// FrameLoss drops each frame delivery independently with this
	// probability — fading, collisions and interference the disk model
	// otherwise ignores. 0 (the default) is the calibrated setting.
	FrameLoss float64
	// Metrics instruments every layer (sim engine, medium, attacker,
	// City-Hunter engine, runner) with the observability registry;
	// Result.Metrics holds its deterministic snapshot.
	Metrics bool
	// FlightRecorderCap, when positive, arms the run flight recorder: a
	// ring-bounded journal of structured events (adaptations, ghost hits,
	// associations, deauth sweeps, frame losses) kept in Result.Journal.
	FlightRecorderCap int
	// SpanTrace collects Chrome/Perfetto trace spans — client lifecycles,
	// scan cycles, attacker reply batches — into Result.Spans.
	SpanTrace bool
	// ArrivalScale multiplies the venue's arrival rates (a speed knob
	// for tests; 0 means 1).
	ArrivalScale float64
	// SampleEvery sets the engine state-sampling period (0 disables).
	SampleEvery time.Duration
	// Seed drives all randomness in the run.
	Seed int64
}

// Result is everything a run produces.
type Result struct {
	// Venue and Slot identify the experiment; SlotLabel is "8am-9am"
	// style.
	Venue     string
	Slot      int
	SlotLabel string
	Duration  time.Duration
	// Attack names the strategy.
	Attack string
	// Outcomes holds one record per phone that entered the area.
	Outcomes []stats.ClientOutcome
	// Tally aggregates them the way the paper's tables do.
	Tally stats.Tally
	// Report is the attacker's own accounting (heard probes etc.).
	Report attack.Report
	// Victims lists captures in order.
	Victims []attack.Victim
	// Engine exposes the City-Hunter internals for breakdowns; nil for
	// KARMA/MANA runs.
	Engine *core.Engine
	// Mana exposes the MANA database for Fig. 1; nil otherwise.
	Mana *attack.Mana
	// HitsByVictimDirect maps victims' MACs to their direct-prober flag,
	// for Fig. 6 filtering.
	HitsByVictimDirect map[ieee80211.MAC]bool
	// Sentinel is the passive detector, when Config.Sentinel was set.
	Sentinel *detect.Sentinel
	// Trace is the frame capture, when Config.Trace was set.
	Trace *trace.Monitor
	// TraceDropped is the number of frames the capture dropped past its
	// cap — nonzero means Trace is truncated, not complete.
	TraceDropped int
	// CanaryDetections sums the clients' canary unmaskings.
	CanaryDetections int
	// Metrics is the deterministic metrics snapshot, when Config.Metrics
	// was set.
	Metrics obs.Snapshot
	// Journal is the run flight recorder, when Config.FlightRecorderCap
	// was positive.
	Journal *obs.Journal
	// Spans is the Perfetto span trace, when Config.SpanTrace was set.
	Spans *obs.Trace
}

// Breakdown returns the Fig. 6 classification of the SSIDs that hit
// broadcast-probing clients. It is only meaningful for City-Hunter runs.
func (r *Result) Breakdown() stats.Breakdown {
	if r.Engine == nil {
		return stats.Breakdown{}
	}
	return stats.NewBreakdown(r.Engine.Hits(), func(h core.HitRecord) bool {
		return r.HitsByVictimDirect[h.MAC]
	})
}

// attackerMAC is the attacker's fixed BSSID in every scenario.
var attackerMAC = ieee80211.MAC{0x0a, 0xc1, 0x7f, 0x00, 0x00, 0x01}

// legitAPMAC is the venue AP used for pre-connected phones.
var legitAPMAC = ieee80211.MAC{0x0a, 0x1e, 0x61, 0x70, 0x00, 0x01}

// Run executes one deployment: the venue's slot-th hour-long test (the
// paper runs 8am–8pm, one test per hour slot, database re-initialised each
// time). duration may be shorter than an hour for quick runs. It is
// RunContext with a background context.
func Run(cfg Config, slot int, duration time.Duration) (*Result, error) {
	return RunContext(context.Background(), cfg, slot, duration)
}

// RunContext is the primary run entry point: Run, plus cancellation. The
// context is polled inside the simulation event loop, so a cancel stops a
// mid-flight run promptly (within a few hundred events).
//
// Cancellation semantics: when ctx is cancelled mid-run, RunContext still
// returns a non-nil *Result holding partial accounting — every outcome,
// tally, victim, report and observability attachment reflects the virtual
// time reached when the run stopped (Result.Duration is that partial
// virtual time, not the requested one) — together with a non-nil error
// wrapping ctx.Err(). Configuration errors detected before the simulation
// starts return a nil Result as Run does.
func RunContext(ctx context.Context, cfg Config, slot int, duration time.Duration) (*Result, error) {
	if cfg.City == nil || cfg.HeatMap == nil {
		return nil, fmt.Errorf("scenario: city and heat map are required")
	}
	if slot < 0 || slot >= cfg.Venue.Profile.Slots() {
		return nil, fmt.Errorf("scenario: slot %d outside profile (0..%d)", slot, cfg.Venue.Profile.Slots()-1)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: non-positive duration %v", duration)
	}
	if cfg.DirectProberFraction < 0 || cfg.DirectProberFraction > 1 {
		return nil, fmt.Errorf("scenario: direct prober fraction %v outside [0,1]", cfg.DirectProberFraction)
	}
	if cfg.PreconnectedFraction < 0 || cfg.PreconnectedFraction > 1 {
		return nil, fmt.Errorf("scenario: preconnected fraction %v outside [0,1]", cfg.PreconnectedFraction)
	}
	if cfg.CanaryFraction < 0 || cfg.CanaryFraction > 1 {
		return nil, fmt.Errorf("scenario: canary fraction %v outside [0,1]", cfg.CanaryFraction)
	}
	if cfg.RandomizeMACFraction < 0 || cfg.RandomizeMACFraction > 1 {
		return nil, fmt.Errorf("scenario: randomize-MAC fraction %v outside [0,1]", cfg.RandomizeMACFraction)
	}
	if cfg.FrameLoss < 0 || cfg.FrameLoss >= 1 {
		return nil, fmt.Errorf("scenario: frame loss %v outside [0,1)", cfg.FrameLoss)
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = client.DefaultScanInterval
	}
	if cfg.ArrivalScale <= 0 {
		cfg.ArrivalScale = 1
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	engine := sim.NewEngine()
	var mediumOpts []sim.MediumOption
	if cfg.FrameLoss > 0 {
		mediumOpts = append(mediumOpts, sim.WithFrameLoss(cfg.FrameLoss, cfg.Seed+5))
	}
	medium := sim.NewMedium(engine, cfg.Venue.RadioRange, mediumOpts...)

	// Observability: one runtime feeds every instrumented layer. It never
	// consumes run randomness, so enabling it cannot perturb a seed.
	var rt *obs.Runtime
	if cfg.Metrics || cfg.FlightRecorderCap > 0 || cfg.SpanTrace {
		rt = &obs.Runtime{}
		if cfg.Metrics {
			rt.Metrics = obs.NewRegistry()
		}
		if cfg.FlightRecorderCap > 0 {
			rt.Journal = obs.NewJournal(cfg.FlightRecorderCap)
		}
		if cfg.SpanTrace {
			rt.Trace = obs.NewTrace()
		}
		engine.Instrument(rt)
		medium.Instrument(rt)
	}

	pnlModel := cfg.PNL
	if pnlModel == nil {
		var err error
		pnlModel, err = pnl.NewModel(cfg.City.DB, cfg.HeatMap, pnl.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("scenario: build pnl model: %w", err)
		}
	}

	strategy, chEngine, mana, err := buildStrategy(cfg, pnlModel)
	if err != nil {
		return nil, err
	}
	var beacons []string
	respondToDirect := true
	if cfg.Attack == KnownBeacons {
		respondToDirect = false
		beacons, err = lureList(cfg)
		if err != nil {
			return nil, err
		}
	}
	maxReplies := 0 // 0 → the protocol default of 40
	if chEngine != nil && cfg.CoreConfig != nil {
		// Ablations that shrink or grow the engine's reply budget need
		// the base station to follow suit.
		maxReplies = cfg.CoreConfig.ReplyBudget
	}
	if chEngine != nil {
		chEngine.Instrument(rt)
	}
	atk, err := attack.New(engine, medium, strategy, attack.Config{
		MAC:                 attackerMAC,
		Pos:                 cfg.Venue.Position,
		Channel:             6,
		Obs:                 rt,
		MaxBroadcastReplies: maxReplies,
		RespondToDirect:     respondToDirect,
		CautiousMirror:      cfg.CautiousMirror,
		Beacons:             beacons,
		// wifiphisher blasts known beacons as fast as the card allows;
		// 2 ms pacing ≈ 500 beacons/s at ~12% channel utilisation.
		BeaconEvery: 2 * time.Millisecond,
		Deauth:      attack.DeauthConfig{Enabled: cfg.EnableDeauth, Interval: 5 * time.Second},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := atk.Start(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	if cfg.PreconnectedFraction > 0 {
		legit, err := ap.New(engine, medium, ap.Config{
			MAC:     legitAPMAC,
			SSID:    "Venue Official WiFi", // outside the PNL universe
			Pos:     cfg.Venue.Position.Add(geo.Pt(15, 0)),
			Channel: 6,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := legit.Start(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	var sentinel *detect.Sentinel
	if cfg.Sentinel {
		sentinel = detect.NewSentinel(engine,
			ieee80211.MAC{0x0a, 0xde, 0x7e, 0xc7, 0x00, 0x01},
			cfg.Venue.Position.Add(geo.Pt(-10, 5)), 0)
		if err := medium.AttachPromiscuous(sentinel); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	var monitor *trace.Monitor
	if cfg.Trace {
		monitor = trace.NewMonitor(engine,
			ieee80211.MAC{0x0a, 0x28, 0xca, 0x72, 0x00, 0x01},
			cfg.Venue.Position.Add(geo.Pt(10, -5)))
		monitor.MaxEntries = cfg.TraceMaxEntries
		if monitor.MaxEntries == 0 {
			monitor.MaxEntries = 1 << 20
		}
		if rt != nil {
			journal := rt.Journal
			monitor.OnFirstDrop = func() {
				journal.Record(engine.Now(), obs.EventTraceDrop, "trace-monitor",
					fmt.Sprintf("capture reached its %d-entry cap; subsequent frames dropped", monitor.MaxEntries))
			}
		}
		if err := medium.AttachPromiscuous(monitor); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Periodic engine sampling for the time-series figures.
	if cfg.SampleEvery > 0 {
		var sample func()
		sample = func() {
			if chEngine != nil {
				chEngine.SampleState(engine.Now())
			}
			if mana != nil {
				mana.SampleSize(engine.Now())
			}
			engine.Schedule(cfg.SampleEvery, sample)
		}
		engine.Schedule(0, sample)
	}

	// Arrivals for this slot only; offsets are measured from slot start.
	slotStart := time.Duration(slot) * time.Hour
	profile := cfg.Venue.Profile
	if cfg.ArrivalScale != 1 {
		scaled := make([]float64, len(profile.PerMinute))
		for i, r := range profile.PerMinute {
			scaled[i] = r * cfg.ArrivalScale
		}
		profile = mobility.Profile{StartHour: profile.StartHour, PerMinute: scaled}
	}
	arrivals, err := mobility.Arrivals(rng, profile, slotStart, duration)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	pop := newPopulation(engine, medium, rng, pnlModel, cfg, rt)
	groups := cfg.Venue.Groups(slot)
	for i := 0; i < len(arrivals); {
		at := arrivals[i] - slotStart
		size := groups.SampleSize(rng)
		if size > len(arrivals)-i {
			size = len(arrivals) - i
		}
		pop.spawnGroup(at, size, duration)
		i += size
	}

	_, runErr := engine.RunContext(ctx, duration)

	canaryDetections := 0
	for _, m := range pop.members {
		canaryDetections += m.c.Stats.CanaryDetections
	}
	attackName := strategy.Name()
	if cfg.Attack == KnownBeacons {
		// The beaconing attacker reuses the silent KARMA strategy for
		// its (absent) probe handling; report the kind instead.
		attackName = cfg.Attack.String()
	}
	simulated := duration
	if runErr != nil {
		// Cancelled mid-run: the engine clock rests at the last executed
		// event, which is how much virtual time the partial result covers.
		simulated = engine.Now()
	}
	res := &Result{
		Venue:              cfg.Venue.Name,
		Slot:               slot,
		SlotLabel:          cfg.Venue.Profile.SlotLabel(slot),
		Duration:           simulated,
		Attack:             attackName,
		Outcomes:           pop.outcomes(engine.Now(), chEngine),
		Report:             atk.Report(),
		Victims:            atk.Victims(),
		Engine:             chEngine,
		Mana:               mana,
		HitsByVictimDirect: make(map[ieee80211.MAC]bool),
		Sentinel:           sentinel,
		Trace:              monitor,
		CanaryDetections:   canaryDetections,
	}
	res.Tally = stats.NewTally(res.Outcomes)
	for _, v := range res.Victims {
		res.HitsByVictimDirect[v.MAC] = v.DirectProber
	}
	if monitor != nil {
		res.TraceDropped = monitor.Dropped
	}
	if rt != nil {
		finishObservability(rt, engine, pop, res)
	}
	if runErr != nil {
		return res, fmt.Errorf("scenario: run cancelled after %v of %v: %w",
			simulated, duration, runErr)
	}
	return res, nil
}

// finishObservability emits the end-of-run telemetry: one lifecycle span
// per phone, runner-level tallies in the registry, and the snapshot/journal
// /trace attachments on the Result.
func finishObservability(rt *obs.Runtime, engine *sim.Engine, pop *population, res *Result) {
	now := engine.Now()
	if rt.Trace != nil {
		for _, m := range pop.members {
			end := m.departAt
			if end > now {
				end = now
			}
			rt.Trace.Span("client", "lifecycle", m.c.TraceTID(), m.arrived, end, map[string]any{
				"mac":    m.c.Addr().String(),
				"direct": m.direct,
			})
		}
	}
	if rt.Metrics != nil {
		rt.Metrics.Counter("scenario_clients").Add(int64(len(pop.members)))
		rt.Metrics.Counter("scenario_victims").Add(int64(len(res.Victims)))
		rt.Metrics.Counter("scenario_canary_detections").Add(int64(res.CanaryDetections))
		rt.Metrics.Counter("scenario_trace_dropped_frames").Add(int64(res.TraceDropped))
		rt.Metrics.Gauge("scenario_virtual_seconds").Set(now.Seconds())
	}
	res.Metrics = rt.Metrics.Snapshot()
	res.Journal = rt.Journal
	res.Spans = rt.Trace
}

// lureList derives the known-beacons SSID list: the same WiGLE seeding
// City-Hunter starts from, in weight order.
func lureList(cfg Config) ([]string, error) {
	ccfg := core.DefaultConfig(core.ModePreliminary)
	seedDB := cfg.WiGLE
	if seedDB == nil {
		seedDB = cfg.City.DB
	}
	eng, err := core.NewEngine(ccfg, &core.SeedData{
		DB:       seedDB,
		HeatMap:  cfg.HeatMap,
		Position: cfg.Venue.Position,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: build lure list: %w", err)
	}
	entries := eng.TopEntries(eng.DBSize())
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.SSID
	}
	return out, nil
}

// buildStrategy constructs the configured attacker strategy.
func buildStrategy(cfg Config, pnlModel *pnl.Model) (attack.Strategy, *core.Engine, *attack.Mana, error) {
	switch cfg.Attack {
	case KARMA, KnownBeacons:
		return attack.NewKarma(), nil, nil, nil
	case MANA:
		m := attack.NewMana()
		return m, nil, m, nil
	case CityHunterPreliminary, CityHunter:
		mode := core.ModeFull
		if cfg.Attack == CityHunterPreliminary {
			mode = core.ModePreliminary
		}
		ccfg := core.DefaultConfig(mode)
		if cfg.CoreConfig != nil {
			ccfg = *cfg.CoreConfig
		}
		if ccfg.Seed == 0 {
			ccfg.Seed = cfg.Seed + 1
		}
		seedDB := cfg.WiGLE
		if seedDB == nil {
			seedDB = cfg.City.DB
		}
		eng, err := core.NewEngine(ccfg, &core.SeedData{
			DB:       seedDB,
			HeatMap:  cfg.HeatMap,
			Position: cfg.Venue.Position,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("scenario: build engine: %w", err)
		}
		_ = pnlModel
		return eng, eng, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("scenario: unknown attack kind %d", int(cfg.Attack))
	}
}
