package scenario

import (
	"fmt"
	"time"

	"cityhunter/internal/ap"
	"cityhunter/internal/attack"
	"cityhunter/internal/core"
	"cityhunter/internal/detect"
	"cityhunter/internal/geo"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/stats"
	"cityhunter/internal/trace"
)

// siteIdentity fixes the station addressing for one deployed site. Keeping
// the addresses a pure function of the site index makes every run — single
// venue or city-scale — reproducible byte for byte.
type siteIdentity struct {
	attackerMAC ieee80211.MAC
	legitMAC    ieee80211.MAC
	sentinelMAC ieee80211.MAC
	monitorMAC  ieee80211.MAC
}

// singleSiteIdentity is the addressing every single-venue run has always
// used; deploymentSiteIdentity(0) equals it so a one-site deployment puts
// the same frames on air as the classic runner.
func singleSiteIdentity() siteIdentity {
	return deploymentSiteIdentity(0)
}

// deploymentSiteIdentity derives site i's station MACs (last byte i+1).
func deploymentSiteIdentity(i int) siteIdentity {
	n := byte(i + 1)
	return siteIdentity{
		attackerMAC: ieee80211.MAC{0x0a, 0xc1, 0x7f, 0x00, 0x00, n},
		legitMAC:    ieee80211.MAC{0x0a, 0x1e, 0x61, 0x70, 0x00, n},
		sentinelMAC: ieee80211.MAC{0x0a, 0xde, 0x7e, 0xc7, 0x00, n},
		monitorMAC:  ieee80211.MAC{0x0a, 0x28, 0xca, 0x72, 0x00, n},
	}
}

// strategySet is the knowledge layer's output for one site: the strategy
// the attacker consults, plus typed handles for sampling and reporting.
// Under a Shared knowledge plane several sites carry the same set.
type strategySet struct {
	strategy attack.Strategy
	chEngine *core.Engine
	mana     *attack.Mana
}

// site is one deployed attacker with its venue-local supporting stations —
// the output of the attacker-wiring layer.
type site struct {
	venue    Venue
	id       siteIdentity
	set      strategySet
	atk      *attack.Attacker
	sentinel *detect.Sentinel
	monitor  *trace.Monitor
}

// buildStrategy constructs the strategy for an attacker deployed at the
// given positions (one per site it serves). coreSeed is the City-Hunter
// engine's RNG seed when the CoreConfig override leaves it unset.
func buildStrategy(cfg Config, positions []geo.Point, coreSeed int64) (strategySet, error) {
	switch cfg.Attack {
	case KARMA, KnownBeacons:
		return strategySet{strategy: attack.NewKarma()}, nil
	case MANA:
		m := attack.NewMana()
		return strategySet{strategy: m, mana: m}, nil
	case CityHunterPreliminary, CityHunter:
		mode := core.ModeFull
		if cfg.Attack == CityHunterPreliminary {
			mode = core.ModePreliminary
		}
		ccfg := core.DefaultConfig(mode)
		if cfg.CoreConfig != nil {
			ccfg = *cfg.CoreConfig
		}
		if ccfg.Seed == 0 {
			ccfg.Seed = coreSeed
		}
		if ccfg.Linker == nil && cfg.Linker != LinkerMAC {
			lk, err := newLinker(cfg.Linker)
			if err != nil {
				return strategySet{}, err
			}
			ccfg.Linker = lk
		}
		seedDB := cfg.WiGLE
		if seedDB == nil {
			seedDB = cfg.City.DB
		}
		sd := &core.SeedData{DB: seedDB, HeatMap: cfg.HeatMap}
		if len(positions) == 1 {
			sd.Position = positions[0]
		} else {
			sd.Positions = positions
		}
		eng, err := core.NewEngine(ccfg, sd)
		if err != nil {
			return strategySet{}, fmt.Errorf("scenario: build engine: %w", err)
		}
		return strategySet{strategy: eng, chEngine: eng}, nil
	default:
		return strategySet{}, fmt.Errorf("scenario: unknown attack kind %d", int(cfg.Attack))
	}
}

// lureList derives the known-beacons SSID list for an attacker at pos: the
// same WiGLE seeding City-Hunter starts from, in weight order.
func lureList(cfg Config, pos geo.Point) ([]string, error) {
	ccfg := core.DefaultConfig(core.ModePreliminary)
	seedDB := cfg.WiGLE
	if seedDB == nil {
		seedDB = cfg.City.DB
	}
	eng, err := core.NewEngine(ccfg, &core.SeedData{
		DB:       seedDB,
		HeatMap:  cfg.HeatMap,
		Position: pos,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: build lure list: %w", err)
	}
	entries := eng.TopEntries(eng.DBSize())
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.SSID
	}
	return out, nil
}

// deploySite wires one attacker site into the environment: the rogue base
// station running the given strategy, and — per the run configuration — a
// legitimate venue AP, a passive sentinel, and a frame monitor.
func deploySite(env *runEnv, venue Venue, id siteIdentity, set strategySet) (*site, error) {
	cfg := env.cfg
	var beacons []string
	respondToDirect := true
	if cfg.Attack == KnownBeacons {
		respondToDirect = false
		var err error
		beacons, err = lureList(cfg, venue.Position)
		if err != nil {
			return nil, err
		}
	}
	maxReplies := 0 // 0 → the protocol default of 40
	if set.chEngine != nil && cfg.CoreConfig != nil {
		// Ablations that shrink or grow the engine's reply budget need
		// the base station to follow suit.
		maxReplies = cfg.CoreConfig.ReplyBudget
	}
	atk, err := attack.New(env.engine, env.medium, set.strategy, attack.Config{
		MAC:                 id.attackerMAC,
		Pos:                 venue.Position,
		Channel:             6,
		Obs:                 env.rt,
		Site:                siteMetricLabel(env, venue.Name),
		MaxBroadcastReplies: maxReplies,
		RespondToDirect:     respondToDirect,
		CautiousMirror:      cfg.CautiousMirror,
		Beacons:             beacons,
		// wifiphisher blasts known beacons as fast as the card allows;
		// 2 ms pacing ≈ 500 beacons/s at ~12% channel utilisation.
		BeaconEvery: 2 * time.Millisecond,
		Deauth:      attack.DeauthConfig{Enabled: cfg.EnableDeauth, Interval: 5 * time.Second},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := atk.Start(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	st := &site{venue: venue, id: id, set: set, atk: atk}

	if cfg.PreconnectedFraction > 0 {
		legit, err := ap.New(env.engine, env.medium, ap.Config{
			MAC:     id.legitMAC,
			SSID:    "Venue Official WiFi", // outside the PNL universe
			Pos:     venue.Position.Add(geo.Pt(15, 0)),
			Channel: 6,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := legit.Start(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	if cfg.Sentinel {
		st.sentinel = detect.NewSentinel(env.engine, id.sentinelMAC,
			venue.Position.Add(geo.Pt(-10, 5)), 0)
		if err := env.medium.AttachPromiscuous(st.sentinel); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	if cfg.Trace {
		monitor := trace.NewMonitor(env.engine, id.monitorMAC,
			venue.Position.Add(geo.Pt(10, -5)))
		monitor.MaxEntries = cfg.TraceMaxEntries
		if monitor.MaxEntries == 0 {
			monitor.MaxEntries = 1 << 20
		}
		if env.rt != nil {
			rt := env.rt
			engine := env.engine
			monitor.OnFirstDrop = func() {
				rt.Event(engine.Now(), obs.EventTraceDrop, "trace-monitor",
					fmt.Sprintf("capture reached its %d-entry cap; subsequent frames dropped", monitor.MaxEntries))
			}
			monitor.DropCounter = rt.Metrics.Counter("trace_monitor_dropped_frames",
				env.siteLabels(venue.Name)...)
		}
		if err := env.medium.AttachPromiscuous(monitor); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		st.monitor = monitor
	}
	return st, nil
}

// uniqueEngines returns the distinct City-Hunter engines behind the sites,
// in site order. Under a Shared knowledge plane all sites collapse to one.
func uniqueEngines(sites []*site) []*core.Engine {
	var out []*core.Engine
	for _, st := range sites {
		eng := st.set.chEngine
		if eng == nil {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == eng {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, eng)
		}
	}
	return out
}

// attackerSet collects the sites' rogue-AP MACs, the membership test for
// "this phone associated to an attacker".
func attackerSet(sites []*site) map[ieee80211.MAC]bool {
	out := make(map[ieee80211.MAC]bool, len(sites))
	for _, st := range sites {
		out[st.id.attackerMAC] = true
	}
	return out
}

// scheduleSampling arms the periodic engine-state sampler for the
// time-series figures. Engines shared across sites are sampled once.
func scheduleSampling(env *runEnv, sites []*site) {
	if env.cfg.SampleEvery <= 0 {
		return
	}
	engines := uniqueEngines(sites)
	var manas []*attack.Mana
	for _, st := range sites {
		if st.set.mana != nil {
			manas = append(manas, st.set.mana)
		}
	}
	var sample func()
	sample = func() {
		for _, eng := range engines {
			eng.SampleState(env.engine.Now())
		}
		for _, m := range manas {
			m.SampleSize(env.engine.Now())
		}
		env.engine.Schedule(env.cfg.SampleEvery, sample)
	}
	env.engine.Schedule(0, sample)
}

// scaledProfile multiplies a venue profile's arrival rates by scale.
func scaledProfile(profile mobility.Profile, scale float64) mobility.Profile {
	if scale == 1 {
		return profile
	}
	scaled := make([]float64, len(profile.PerMinute))
	for i, r := range profile.PerMinute {
		scaled[i] = r * scale
	}
	return mobility.Profile{StartHour: profile.StartHour, PerMinute: scaled}
}

// assembleResult is the collection layer for one site: it folds the site's
// attacker accounting and its population's outcomes into a Result.
// engines lists every distinct City-Hunter engine that may have replied to
// the population's phones (more than one when clients roam between
// isolated sites).
func assembleResult(env *runEnv, st *site, pop *population, slot int, simulated time.Duration, engines []*core.Engine) *Result {
	canaryDetections := 0
	for _, m := range pop.members {
		canaryDetections += m.c.Stats.CanaryDetections
	}
	attackName := st.set.strategy.Name()
	if env.cfg.Attack == KnownBeacons {
		// The beaconing attacker reuses the silent KARMA strategy for
		// its (absent) probe handling; report the kind instead.
		attackName = env.cfg.Attack.String()
	}
	res := &Result{
		Venue:              st.venue.Name,
		Slot:               slot,
		SlotLabel:          st.venue.Profile.SlotLabel(slot),
		Duration:           simulated,
		Attack:             attackName,
		Outcomes:           pop.outcomes(env.engine.Now(), engines),
		Report:             st.atk.Report(),
		Victims:            st.atk.Victims(),
		Engine:             st.set.chEngine,
		Mana:               st.set.mana,
		HitsByVictimDirect: make(map[ieee80211.MAC]bool),
		Sentinel:           st.sentinel,
		Trace:              st.monitor,
		CanaryDetections:   canaryDetections,
	}
	res.Tally = stats.NewTally(res.Outcomes)
	res.Links = linkReport(st.set.chEngine, memberDevices(pop.members))
	for _, v := range res.Victims {
		res.HitsByVictimDirect[v.MAC] = v.DirectProber
	}
	if st.monitor != nil {
		res.TraceDropped = st.monitor.Dropped
	}
	return res
}

// emitRunTelemetry records the end-of-run telemetry for one population:
// a lifecycle span per phone and runner-level tallies in the registry.
func emitRunTelemetry(rt *obs.Runtime, env *runEnv, pop *population, res *Result) {
	now := env.engine.Now()
	if rt.Trace != nil {
		for _, m := range pop.members {
			end := m.departAt
			if end > now {
				end = now
			}
			rt.Trace.Span("client", "lifecycle", m.c.TraceTID(), m.arrived, end, map[string]any{
				"mac":    m.c.Addr().String(),
				"direct": m.direct,
			})
		}
	}
	if rt.Metrics != nil {
		rt.Metrics.Counter("scenario_clients").Add(int64(len(pop.members)))
		rt.Metrics.Counter("scenario_victims").Add(int64(len(res.Victims)))
		rt.Metrics.Counter("scenario_canary_detections").Add(int64(res.CanaryDetections))
		rt.Metrics.Counter("scenario_trace_dropped_frames").Add(int64(res.TraceDropped))
		rt.Metrics.Gauge("scenario_virtual_seconds").Set(now.Seconds())
	}
}

// attachObservability attaches the shared snapshot/journal/trace handles.
func attachObservability(rt *obs.Runtime, res *Result) {
	res.Metrics = rt.Metrics.Snapshot()
	res.Journal = rt.Journal
	res.Spans = rt.Trace
}
