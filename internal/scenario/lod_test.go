package scenario

import (
	"reflect"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// farFieldConfig routes a small far-field population straight through the
// deployment's first site: one district centred on the attacker, tight
// enough that every dwell falls inside the promotion boundary.
func farFieldConfig(d DeploymentConfig, pedestrians int) *FarFieldConfig {
	site := d.Sites[0]
	return &FarFieldConfig{
		Pedestrians: pedestrians,
		Stops: []mobility.RouteStop{
			{Pos: site.Position, Radius: 30, Weight: 1},
			{Pos: site.Position.Add(geo.Pt(900, 0)), Radius: 100, Weight: 1},
		},
		Entry: geo.NewRect(site.Position.Add(geo.Pt(-600, -600)), site.Position.Add(geo.Pt(-400, -400))),
	}
}

func TestFarFieldValidation(t *testing.T) {
	good := deployConfig(t, CityHunter, 21)
	good.FarField = farFieldConfig(good, 10)
	if _, err := RunDeployment(good, 0, time.Minute); err != nil {
		t.Fatalf("valid far-field config rejected: %v", err)
	}

	bad := good
	bad.FarField = &FarFieldConfig{Pedestrians: -1}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("negative population accepted")
	}
	bad = good
	bad.FarField = &FarFieldConfig{Pedestrians: 1, Radius: -5}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("negative promotion radius accepted")
	}
	bad = good
	bad.FarField = &FarFieldConfig{
		Pedestrians: 1,
		Route:       mobility.RouteModel{Transit: mobility.TransitModel{SpeedMin: 2, SpeedMax: 1}},
	}
	if _, err := RunDeployment(bad, 0, time.Minute); err == nil {
		t.Error("invalid route model accepted")
	}
}

func TestFarFieldPromotionLifecycle(t *testing.T) {
	d := deployConfig(t, CityHunter, 22)
	d.FarField = farFieldConfig(d, 40)
	res, err := RunDeployment(d, 0, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ff := res.FarField
	if ff == nil {
		t.Fatal("no far-field result")
	}
	if ff.Pedestrians != 40 {
		t.Errorf("pedestrians = %d, want 40", ff.Pedestrians)
	}
	// The first district sits inside the promotion boundary, so pedestrians
	// whose itineraries started within the half-hour promoted.
	if ff.Promoted == 0 {
		t.Fatal("no pedestrian was ever promoted")
	}
	if ff.Promotions < ff.Promoted {
		t.Errorf("promotions %d below distinct promoted %d", ff.Promotions, ff.Promoted)
	}
	if ff.Demotions > ff.Promotions {
		t.Errorf("demotions %d exceed promotions %d", ff.Demotions, ff.Promotions)
	}
	if ff.PeakPromoted < 1 {
		t.Errorf("peak promoted = %d, want >= 1", ff.PeakPromoted)
	}
	if len(ff.Outcomes) != ff.Promoted {
		t.Errorf("%d outcomes for %d promoted pedestrians", len(ff.Outcomes), ff.Promoted)
	}
	probed := 0
	for _, o := range ff.Outcomes {
		if o.Probed {
			probed++
		}
	}
	if probed == 0 {
		t.Error("no promoted pedestrian ever probed")
	}
	if len(ff.Sites) != len(d.Sites) {
		t.Fatalf("%d site entries for %d sites", len(ff.Sites), len(d.Sites))
	}
	if ff.Sites[0].Promotions == 0 {
		t.Error("site 0 owns the district but recorded no promotions")
	}
	total := 0
	for _, s := range ff.Sites {
		total += s.Promotions
	}
	if total != ff.Promotions {
		t.Errorf("per-site promotions sum to %d, total %d", total, ff.Promotions)
	}
}

// TestFarFieldDeterminism is the two-runs-identical-aggregates check: the
// far-field tier must be a pure function of its seed.
func TestFarFieldDeterminism(t *testing.T) {
	run := func() *FarFieldResult {
		d := deployConfig(t, CityHunter, 23)
		d.FarField = farFieldConfig(d, 60)
		res, err := RunDeployment(d, 0, 20*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.FarField
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("far-field results differ between identical runs:\n%+v\n%+v", a, b)
	}
}

// TestFarFieldAwayFromSitesLeavesVenuesUntouched is the RNG-stream
// preservation proof at test scale: a far-field population whose routes
// never cross a promotion boundary must leave the venue populations'
// results bit-for-bit identical to a run with no far field at all.
func TestFarFieldAwayFromSitesLeavesVenuesUntouched(t *testing.T) {
	run := func(ff *FarFieldConfig) *DeploymentResult {
		d := deployConfig(t, CityHunter, 24)
		d.FarField = ff
		res, err := RunDeployment(d, 0, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	remote := &FarFieldConfig{
		Pedestrians: 500,
		// District and entry live kilometres from every site: windows are
		// empty, nothing ever promotes, nothing touches the medium.
		Stops: []mobility.RouteStop{{Pos: geo.Pt(-20000, -20000), Radius: 300, Weight: 1}},
		Entry: geo.NewRect(geo.Pt(-21000, -21000), geo.Pt(-20500, -20500)),
	}
	lod := run(remote)
	if lod.FarField == nil || lod.FarField.Promoted != 0 {
		t.Fatalf("remote far field promoted %v pedestrians, want 0", lod.FarField)
	}
	if !reflect.DeepEqual(base.Outcomes, lod.Outcomes) {
		t.Error("venue outcomes perturbed by a far field that never promoted")
	}
	if !reflect.DeepEqual(base.Tally, lod.Tally) {
		t.Errorf("venue tally perturbed: %+v vs %+v", base.Tally, lod.Tally)
	}
	for i := range base.Sites {
		if !reflect.DeepEqual(base.Sites[i].Outcomes, lod.Sites[i].Outcomes) {
			t.Errorf("site %d outcomes perturbed", i)
		}
	}
	// Zero pedestrians is an exact no-op too.
	zero := run(&FarFieldConfig{})
	if !reflect.DeepEqual(base.Outcomes, zero.Outcomes) {
		t.Error("zero-pedestrian far field perturbed venue outcomes")
	}
}

// TestFarFieldWindows unit-tests the promotion scheduler's geometry: a
// transit leg clipping a boundary opens a window strictly inside the leg,
// a dwell inside a boundary spans the whole leg, and overlaps merge.
func TestFarFieldWindows(t *testing.T) {
	grid, err := geo.NewHashGrid(100)
	if err != nil {
		t.Fatal(err)
	}
	grid.Insert(0, geo.Pt(500, 0))
	grid.Insert(1, geo.Pt(560, 0))
	tm := &tierManager{
		cfg:       FarFieldConfig{Radius: 100},
		grid:      grid,
		sitePos:   []geo.Point{geo.Pt(500, 0), geo.Pt(560, 0)},
		siteStats: []FarFieldSite{{}, {}},
	}

	// Leg 1: walk 0→1000 along y=0 between minutes 0 and 10, crossing both
	// boundaries; their windows overlap and must merge into one.
	// Leg 2: dwell at (505, 0) — inside site 0's boundary — minutes 10–20.
	route := mobility.Route{Legs: []mobility.RouteLeg{
		{Kind: mobility.LegTransit, From: geo.Pt(0, 0), To: geo.Pt(1000, 0),
			Start: 0, End: 10 * time.Minute, Stop: -1},
		{Kind: mobility.LegDwell, From: geo.Pt(505, 0), To: geo.Pt(505, 0),
			Start: 10 * time.Minute, End: 20 * time.Minute, Stop: 0},
	}}
	ws := tm.windows(route)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2 (merged transit + dwell): %+v", len(ws), ws)
	}
	// Transit window: site 0's disk spans x ∈ [400, 660] with site 1's —
	// 4 to 6.6 minutes at 100 m/min.
	w := ws[0]
	if w.start != 4*time.Minute || w.end != 396*time.Second {
		t.Errorf("merged transit window [%v, %v], want [4m, 6m36s]", w.start, w.end)
	}
	if w.site != 0 {
		t.Errorf("merged window credited site %d, want 0 (the opener)", w.site)
	}
	if ws[1].start != 10*time.Minute || ws[1].end != 20*time.Minute {
		t.Errorf("dwell window [%v, %v], want the full leg", ws[1].start, ws[1].end)
	}

	// A route that never approaches a site yields no windows.
	far := mobility.Route{Legs: []mobility.RouteLeg{
		{Kind: mobility.LegTransit, From: geo.Pt(0, 5000), To: geo.Pt(1000, 5000),
			Start: 0, End: 10 * time.Minute, Stop: -1},
	}}
	if ws := tm.windows(far); len(ws) != 0 {
		t.Errorf("distant route produced windows: %+v", ws)
	}
}

// TestFarFieldChurn promotes and demotes the same pedestrians repeatedly —
// a route bouncing between an in-boundary district and an out-of-boundary
// one — and checks the transition accounting stays balanced.
func TestFarFieldChurn(t *testing.T) {
	d := deployConfig(t, CityHunter, 25)
	site := d.Sites[0]
	d.FarField = &FarFieldConfig{
		Pedestrians: 30,
		Stops: []mobility.RouteStop{
			{Pos: site.Position, Radius: 25, Weight: 1},
			{Pos: site.Position.Add(geo.Pt(700, 0)), Radius: 50, Weight: 1},
		},
		Route: mobility.RouteModel{MeanVisits: 4, MaxVisits: 6},
		Entry: geo.NewRect(site.Position.Add(geo.Pt(-400, -400)), site.Position.Add(geo.Pt(-300, -300))),
	}
	res, err := RunDeployment(d, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ff := res.FarField
	if ff.Promotions <= ff.Promoted {
		t.Errorf("promotions %d vs %d distinct pedestrians: churn never re-promoted anyone",
			ff.Promotions, ff.Promoted)
	}
	if ff.Demotions > ff.Promotions {
		t.Errorf("demotions %d exceed promotions %d", ff.Demotions, ff.Promotions)
	}
	if ff.Promotions-ff.Demotions > ff.Promoted {
		t.Errorf("%d pedestrians stuck promoted, only %d exist",
			ff.Promotions-ff.Demotions, ff.Promoted)
	}
}
