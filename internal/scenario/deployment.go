package scenario

import (
	"context"
	"fmt"
	"time"

	"cityhunter/internal/client"
	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
	"cityhunter/internal/obs"
	"cityhunter/internal/stats"
)

// KnowledgePlane selects how a deployment's sites share the City-Hunter
// database — the paper runs each venue in isolation; a city-scale hunter
// can do better because phones roam between its sites.
type KnowledgePlane int

// Knowledge planes.
const (
	// Isolated gives every site its own database, seeded independently —
	// N copies of the paper's single-venue deployment.
	Isolated KnowledgePlane = iota
	// PeriodicSync keeps per-site databases but exchanges hit records
	// every SyncEvery: each site absorbs the SSIDs that captured phones
	// elsewhere, without per-client state.
	PeriodicSync
	// Shared runs one core database (and one per-client rotation state)
	// behind all sites: a phone that exhausted site A's top replies gets
	// the NEXT untried batch at site B instead of the same head again.
	Shared
)

// String implements fmt.Stringer.
func (k KnowledgePlane) String() string {
	switch k {
	case Isolated:
		return "isolated"
	case PeriodicSync:
		return "periodic-sync"
	case Shared:
		return "shared"
	default:
		return fmt.Sprintf("knowledge(%d)", int(k))
	}
}

// MaxSites bounds a deployment; site MACs embed the index in one byte.
const MaxSites = 250

// DeploymentConfig describes a city-scale deployment: several attacker
// sites on one radio medium, phones that roam between them, and a
// knowledge plane joining (or not joining) the sites' databases.
type DeploymentConfig struct {
	// Base carries everything a single-venue Config does except the
	// venue: city, heat map, attack kind, population knobs, seed.
	// Base.Venue is ignored; Sites replaces it.
	Base Config
	// Sites are the attacker deployments (1..MaxSites venues).
	Sites []Venue
	// Knowledge selects how the sites share the City-Hunter database.
	// KARMA/MANA/Known-Beacons attackers have no shareable database and
	// degrade to Isolated behaviour under every plane.
	Knowledge KnowledgePlane
	// SyncEvery is the PeriodicSync exchange period; 0 means one minute.
	SyncEvery time.Duration
	// RoamFraction is the probability that a phone finishing its dwell
	// walks to another site instead of leaving the city.
	RoamFraction float64
	// Transit models the inter-site walk; the zero value selects
	// mobility.DefaultTransit.
	Transit mobility.TransitModel
	// FarField, when non-nil, adds the city-scale level-of-detail
	// population: cheap statistical pedestrians promoted to full clients
	// only inside the promotion boundary around each site. nil keeps the
	// classic venue-scale behaviour byte for byte.
	FarField *FarFieldConfig
	// Partitions selects the execution engine. 0 (the zero value) keeps
	// the classic serialized engine byte for byte. AutoPartitions runs the
	// conservative parallel engine with one partition per site; a positive
	// count runs it with that many partitions (clamped to the site count).
	// Partitioned results are deterministic — identical at any partition
	// count and any GOMAXPROCS — but follow the partitioned semantics
	// (per-site RNG streams and radio shards; see DESIGN §5.13), so they
	// are not comparable byte for byte with Partitions == 0 output.
	Partitions int
}

// AutoPartitions asks the partitioned engine to use one partition per
// deployment site.
const AutoPartitions = -1

// DeploymentResult is everything a deployment run produces.
type DeploymentResult struct {
	// Sites holds one per-site Result, in DeploymentConfig.Sites order.
	// Site results count a roaming phone under the site it first arrived
	// at; its SSIDsSent credit spans every engine that served it.
	Sites []*Result
	// Outcomes pools every phone across sites.
	Outcomes []stats.ClientOutcome
	// Tally aggregates the pooled outcomes (its HitBroadcast is the
	// pooled h_b the knowledge planes are compared on).
	Tally stats.Tally
	// Knowledge echoes the configured plane.
	Knowledge KnowledgePlane
	// Roams counts completed inter-site transits.
	Roams int
	// Duration is the simulated virtual time (shorter than requested
	// only when the run was cancelled).
	Duration time.Duration
	// FarField is the level-of-detail tier's accounting (nil unless the
	// deployment configured one). It is kept out of Outcomes/Tally so the
	// knowledge-plane comparisons those feed stay undisturbed.
	FarField *FarFieldResult
	// Metrics, Journal and Spans are the deployment-wide observability
	// attachments (one runtime serves every site).
	Metrics obs.Snapshot
	Journal *obs.Journal
	Spans   *obs.Trace
}

// deploymentRun is the roaming coordinator: it owns the transit decisions
// made when any site's population finishes a dwell.
type deploymentRun struct {
	env          *runEnv
	sites        []*site
	pops         []*population
	transit      mobility.TransitModel
	roamFraction float64
	roams        int
}

// RunDeployment executes a multi-site deployment for one slot. It is
// RunDeploymentContext with a background context.
func RunDeployment(dcfg DeploymentConfig, slot int, duration time.Duration) (*DeploymentResult, error) {
	return RunDeploymentContext(context.Background(), dcfg, slot, duration)
}

// RunDeploymentContext composes the same layers as RunContext — world
// build, knowledge, site deployment, collection — across N sites on one
// medium, then adds the two things only a city has: phones roaming
// between venues, and a knowledge plane joining the hunters' databases.
//
// Cancellation mirrors RunContext: a mid-run cancel returns the partial
// DeploymentResult together with a non-nil error wrapping ctx.Err().
func RunDeploymentContext(ctx context.Context, dcfg DeploymentConfig, slot int, duration time.Duration) (*DeploymentResult, error) {
	cfg := dcfg.Base
	if cfg.City == nil || cfg.HeatMap == nil {
		return nil, fmt.Errorf("scenario: city and heat map are required")
	}
	if len(dcfg.Sites) == 0 {
		return nil, fmt.Errorf("scenario: deployment needs at least one site")
	}
	if len(dcfg.Sites) > MaxSites {
		return nil, fmt.Errorf("scenario: %d sites exceed the %d-site limit", len(dcfg.Sites), MaxSites)
	}
	radioRange := 0.0
	for i, v := range dcfg.Sites {
		if v.Name == "" {
			return nil, fmt.Errorf("scenario: site %d needs a name", i)
		}
		if v.RadioRange <= 0 {
			return nil, fmt.Errorf("scenario: site %q radio range %v must be positive", v.Name, v.RadioRange)
		}
		if slot < 0 || slot >= v.Profile.Slots() {
			return nil, fmt.Errorf("scenario: slot %d outside site %q profile (0..%d)", slot, v.Name, v.Profile.Slots()-1)
		}
		if v.RadioRange > radioRange {
			radioRange = v.RadioRange
		}
	}
	if dcfg.Knowledge < Isolated || dcfg.Knowledge > Shared {
		return nil, fmt.Errorf("scenario: unknown knowledge plane %d", int(dcfg.Knowledge))
	}
	if dcfg.RoamFraction < 0 || dcfg.RoamFraction > 1 {
		return nil, fmt.Errorf("scenario: roam fraction %v outside [0,1]", dcfg.RoamFraction)
	}
	transit := dcfg.Transit
	if transit == (mobility.TransitModel{}) {
		transit = mobility.DefaultTransit()
	}
	if err := transit.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	syncEvery := dcfg.SyncEvery
	if syncEvery <= 0 {
		syncEvery = time.Minute
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: non-positive duration %v", duration)
	}
	if dcfg.Partitions < AutoPartitions {
		return nil, fmt.Errorf("scenario: partition count %d invalid: use %d (one per site), 0 (serial), or a positive count",
			dcfg.Partitions, AutoPartitions)
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	cfg.Venue = Venue{} // sites replace it; nothing below may consult it

	if dcfg.Partitions != 0 {
		return runPartitionedDeployment(ctx, dcfg, cfg, slot, duration, transit, syncEvery, radioRange)
	}

	env, err := newRunEnv(cfg, radioRange)
	if err != nil {
		return nil, err
	}
	// Deployments label per-site instrumentation so a live monitor can
	// tell co-resident attackers apart; single-venue runs never do, which
	// keeps their metric dumps byte-stable.
	env.labelSites = true

	// Knowledge layer: one strategy set per site, or one for all.
	sets := make([]strategySet, len(dcfg.Sites))
	if dcfg.Knowledge == Shared {
		positions := make([]geo.Point, len(dcfg.Sites))
		for i, v := range dcfg.Sites {
			positions[i] = v.Position
		}
		shared, err := buildStrategy(cfg, positions, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		if shared.chEngine != nil {
			shared.chEngine.Instrument(env.rt)
		}
		for i := range sets {
			sets[i] = shared
		}
	} else {
		for i, v := range dcfg.Sites {
			// Per-site seeds stay distinct (and site 0 keeps the classic
			// cfg.Seed+1) so isolated sites don't sample identical ghosts.
			set, err := buildStrategy(cfg, []geo.Point{v.Position}, cfg.Seed+1+1000*int64(i))
			if err != nil {
				return nil, err
			}
			if set.chEngine != nil {
				set.chEngine.Instrument(env.rt)
			}
			sets[i] = set
		}
	}

	// Site-deployment layer.
	sites := make([]*site, len(dcfg.Sites))
	for i, v := range dcfg.Sites {
		sites[i], err = deploySite(env, v, deploymentSiteIdentity(i), sets[i])
		if err != nil {
			return nil, err
		}
	}
	feed := startFeed(env, "deployment", slot, sites, map[string]string{
		"knowledge": dcfg.Knowledge.String(),
		"sites":     fmt.Sprintf("%d", len(sites)),
	})
	scheduleSampling(env, sites)
	if dcfg.Knowledge == PeriodicSync {
		scheduleKnowledgeSync(env, sites, syncEvery)
	}

	// Population layer: one population per site over a shared MAC space,
	// with dwell endings routed through the roaming coordinator.
	d := &deploymentRun{env: env, sites: sites, transit: transit, roamFraction: dcfg.RoamFraction}
	macs := &macAllocator{}
	attackers := attackerSet(sites)
	slotStart := time.Duration(slot) * time.Hour
	pops := make([]*population, len(dcfg.Sites))
	for i, v := range dcfg.Sites {
		arrivals, err := mobility.Arrivals(env.rng, scaledProfile(v.Profile, cfg.ArrivalScale), slotStart, duration)
		if err != nil {
			return nil, fmt.Errorf("scenario: site %q: %w", v.Name, err)
		}
		pop := newPopulation(env, v, sites[i].id.legitMAC, attackers, macs)
		pop.siteIndex = i
		pop.endDwell = d.endDwell
		pops[i] = pop
		pop.spawnArrivals(arrivals, slotStart, v.Groups(slot), duration)
	}
	d.pops = pops

	// Level-of-detail layer: the far-field tier spawns after the venue
	// populations so every classic draw from env.rng keeps its order, and
	// draws only from its own spawn-derived streams thereafter.
	var tiers *tierManager
	if dcfg.FarField != nil {
		ff, err := dcfg.FarField.normalized(dcfg.Sites, radioRange, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tiers, err = newTierManager(env, ff, sites)
		if err != nil {
			return nil, err
		}
		tiers.spawn(duration)
	}

	_, runErr := env.engine.RunContext(ctx, duration)

	// Collection layer.
	simulated := duration
	if runErr != nil {
		simulated = env.engine.Now()
	}
	engines := uniqueEngines(sites)
	dres := &DeploymentResult{
		Knowledge: dcfg.Knowledge,
		Roams:     d.roams,
		Duration:  simulated,
	}
	for i, st := range sites {
		res := assembleResult(env, st, pops[i], slot, simulated, engines)
		dres.Sites = append(dres.Sites, res)
		dres.Outcomes = append(dres.Outcomes, res.Outcomes...)
	}
	dres.Tally = stats.NewTally(dres.Outcomes)
	if tiers != nil {
		dres.FarField = tiers.result(env.engine.Now(), engines)
		if env.rt != nil && env.rt.Metrics != nil {
			ff := dres.FarField
			env.rt.Metrics.Counter("scenario_farfield_pedestrians").Add(int64(ff.Pedestrians))
			env.rt.Metrics.Counter("scenario_farfield_promotions").Add(int64(ff.Promotions))
			env.rt.Metrics.Counter("scenario_farfield_demotions").Add(int64(ff.Demotions))
			env.rt.Metrics.Gauge("scenario_farfield_peak_promoted").Set(float64(ff.PeakPromoted))
		}
	}
	if env.rt != nil {
		for i, res := range dres.Sites {
			emitRunTelemetry(env.rt, env, pops[i], res)
		}
		for _, res := range dres.Sites {
			attachObservability(env.rt, res)
		}
		dres.Metrics = env.rt.Metrics.Snapshot()
		dres.Journal = env.rt.Journal
		dres.Spans = env.rt.Trace
	}
	feed.finish(simulated, runErr)
	if runErr != nil {
		return dres, fmt.Errorf("scenario: deployment cancelled after %v of %v: %w",
			simulated, duration, runErr)
	}
	return dres, nil
}

// scheduleKnowledgeSync arms the PeriodicSync exchange: every period, each
// engine absorbs the hit records the others gained since the last sync.
// Absorbed records raise the SSID's weight and hit history at the
// receiving site without fabricating per-client state there.
func scheduleKnowledgeSync(env *runEnv, sites []*site, every time.Duration) {
	engines := uniqueEngines(sites)
	if len(engines) < 2 {
		return
	}
	consumed := make([]int, len(engines))
	var sync func()
	sync = func() {
		now := env.engine.Now()
		for i, src := range engines {
			hits := src.Hits()
			for _, h := range hits[consumed[i]:] {
				for j, dst := range engines {
					if j != i {
						dst.AbsorbHit(now, h.SSID)
					}
				}
			}
			consumed[i] = len(hits)
		}
		env.engine.Schedule(every, sync)
	}
	env.engine.Schedule(every, sync)
}

// endDwell decides what a phone does when its dwell expires: with
// probability RoamFraction it walks to another site — keeping its PNL,
// scan state, MAC, and whatever the knowledge plane remembers about it —
// otherwise it leaves the city.
func (d *deploymentRun) endDwell(m *member) {
	if m.c.State() == client.StateDeparted {
		return
	}
	if len(d.sites) < 2 || d.env.rng.Float64() >= d.roamFraction {
		m.c.Depart()
		return
	}
	// Uniform choice among the other sites.
	target := d.env.rng.Intn(len(d.sites) - 1)
	if target >= m.site {
		target++
	}
	d.startTransit(m, target)
}

// startTransit walks the phone from its current position to a drawn entry
// point at the target site. The phone keeps scanning while it walks; for
// realistic inter-venue distances it spends most of the leg out of every
// station's radio range, so the ticker is coarse.
func (d *deploymentRun) startTransit(m *member, target int) {
	dest := d.sites[target].venue
	entry := mobility.StaticPos(d.env.rng, dest.Position, dest.RadioRange*0.9)
	path := d.transit.Path(d.env.rng, m.c.Pos(), entry)
	m.leg++
	m.legStart = d.env.engine.Now()
	leg := m.leg
	const step = 10 * time.Second
	var tick func()
	tick = func() {
		if m.c.State() == client.StateDeparted || m.leg != leg {
			return
		}
		off := d.env.engine.Now() - m.legStart
		if off >= path.Duration {
			m.c.SetPos(path.To)
			d.arrive(m, target)
			return
		}
		m.c.SetPos(path.At(off))
		d.env.engine.Schedule(step, tick)
	}
	d.env.engine.Schedule(step, tick)
}

// arrive starts a fresh dwell at the destination site, drawn from that
// venue's own dwell and movement models.
func (d *deploymentRun) arrive(m *member, target int) {
	d.roams++
	m.roams++
	m.site = target
	pop := d.pops[target]
	venue := pop.venue
	now := d.env.engine.Now()
	moving := pop.rng.Float64() < venue.MovingFraction
	var dwell time.Duration
	if moving {
		dwell = venue.MovingDwell.SampleDwell(pop.rng)
	} else {
		dwell = venue.StaticDwell.SampleDwell(pop.rng)
	}
	m.leg++
	m.legStart = now
	m.departAt = now + dwell
	if moving {
		path := mobility.CorridorPath(pop.rng, venue.Position, venue.RadioRange, dwell)
		m.c.SetPos(path.At(0))
		pop.scheduleMove(m, path)
	} else {
		m.c.SetPos(mobility.StaticPos(pop.rng, venue.Position, venue.RadioRange*0.9))
	}
	d.env.engine.At(m.departAt, func() { pop.finishDwell(m) })
}
