package scenario

import (
	"fmt"

	"cityhunter/internal/client"
	"cityhunter/internal/core"
	"cityhunter/internal/ieee80211"
	"cityhunter/internal/linker"
)

// LinkerKind selects the attacker's MAC de-anonymisation strategy: how the
// hunter database groups observed source MACs into device tracks. The zero
// value is the historical one-MAC-one-device identity mapping.
type LinkerKind int

// Linker kinds.
const (
	// LinkerMAC is the identity mapping: every distinct MAC is its own
	// device. Byte-identical to the pre-linker engine.
	LinkerMAC LinkerKind = iota
	// LinkerSeq links by 802.11 sequence-counter continuity alone.
	LinkerSeq
	// LinkerFingerprint links by the probe-request IE fingerprint alone.
	LinkerFingerprint
	// LinkerPNL links by directed-probe PNL order alone.
	LinkerPNL
	// LinkerComposite combines sequence continuity, IE fingerprints and
	// PNL order into one score.
	LinkerComposite
)

// String implements fmt.Stringer.
func (k LinkerKind) String() string {
	switch k {
	case LinkerMAC:
		return "mac"
	case LinkerSeq:
		return "seq"
	case LinkerFingerprint:
		return "fingerprint"
	case LinkerPNL:
		return "pnl"
	case LinkerComposite:
		return "composite"
	default:
		return fmt.Sprintf("linker(%d)", int(k))
	}
}

// LinkerByName maps the stable wire names (campaign plans, CLI flags) to
// kinds. Keys match LinkerKind.String.
var LinkerByName = map[string]LinkerKind{
	"mac":         LinkerMAC,
	"seq":         LinkerSeq,
	"fingerprint": LinkerFingerprint,
	"pnl":         LinkerPNL,
	"composite":   LinkerComposite,
}

// RandomizationByName maps the stable wire names to client randomization
// policies. Keys match client.RandomizationPolicy.String.
var RandomizationByName = map[string]client.RandomizationPolicy{
	"none":      client.RandomizeNone,
	"per-scan":  client.RandomizePerScan,
	"per-burst": client.RandomizePerBurst,
	"timed":     client.RandomizeTimed,
}

// newLinker builds the linker a kind names. LinkerMAC returns nil so the
// core engine takes its own identity default, keeping the nil-Linker
// configuration path byte-identical.
func newLinker(kind LinkerKind) (linker.Linker, error) {
	switch kind {
	case LinkerMAC:
		return nil, nil
	case LinkerSeq:
		return linker.NewComposite(0.3, linker.NewSeqContinuity()), nil
	case LinkerFingerprint:
		return linker.NewComposite(0.25, &linker.FingerprintMatch{}), nil
	case LinkerPNL:
		return linker.NewComposite(0.35, &linker.PNLOrder{}), nil
	case LinkerComposite:
		// Above any single weak signal (fingerprint 0.3, PNL head 0.4,
		// their 0.7 sum): merging needs sequence continuity, alone or
		// corroborated.
		return linker.NewComposite(0.75,
			linker.NewSeqContinuity(), &linker.FingerprintMatch{}, &linker.PNLOrder{}), nil
	default:
		return nil, fmt.Errorf("scenario: unknown linker kind %d", int(kind))
	}
}

// defaultFingerprintModels is how many distinct IE/PNL-order chipset
// fingerprints the phone population draws from when FingerprintModels is
// unset — deliberately small so fingerprints collide across phones the
// way real chipset fingerprints do.
const defaultFingerprintModels = 24

// fingerprintFor derives a phone's stable IE fingerprint from its true
// identity MAC — a hash, not an RNG draw, so enabling fingerprints
// perturbs no randomness stream.
func fingerprintFor(m ieee80211.MAC, models int) uint32 {
	if models <= 0 {
		models = defaultFingerprintModels
	}
	h := uint32(2166136261) // FNV-1a
	for _, b := range m {
		h ^= uint32(b)
		h *= 16777619
	}
	return 1 + h%uint32(models)
}

// applyRandomization upgrades a client config whose legacy RandomizeMAC
// flag was just drawn: when the scenario names an explicit policy, the
// flag is traded for the policy plus the phone's derived IE fingerprint.
// With no explicit policy the flag stands as-is (per-scan rotation without
// fingerprints — the historical behaviour, byte-identical). Called after
// the config literal so the RNG draw order of the literal is untouched.
func (cfg Config) applyRandomization(ccfg *client.Config) {
	if !ccfg.RandomizeMAC || cfg.Randomization == client.RandomizeNone {
		return
	}
	ccfg.RandomizeMAC = false
	ccfg.Randomization = cfg.Randomization
	ccfg.RandomizeEvery = cfg.RandomizeEvery
	ccfg.Fingerprint = fingerprintFor(ccfg.MAC, cfg.FingerprintModels)
}

// deviceMACs is one device's ground truth: its true identity and every
// MAC it appeared under.
type deviceMACs struct {
	identity ieee80211.MAC
	used     []ieee80211.MAC
}

// linkReport grades an engine's linker against the population's ground
// truth: which observed MACs belonged to the same physical phone. Returns
// nil when there is no engine to grade.
func linkReport(eng *core.Engine, devices []deviceMACs) *linker.Report {
	if eng == nil {
		return nil
	}
	lk := eng.Linker()
	truth := make(map[ieee80211.MAC]ieee80211.MAC)
	for _, d := range devices {
		for _, m := range d.used {
			truth[m] = d.identity
		}
	}
	r := linker.NewReport(lk.Name(), lk.Assignments(), lk.Links(), truth)
	return &r
}

// snapshotMACs is the used-MAC list of a suspended phone; legacy
// snapshots without one fall back to the identity MAC.
func snapshotMACs(snap *client.Snapshot) []ieee80211.MAC {
	if len(snap.UsedMACs) > 0 {
		return snap.UsedMACs
	}
	return []ieee80211.MAC{snap.Config.MAC}
}

// memberDevices collects the ground-truth MAC sets of a venue population.
func memberDevices(members []*member) []deviceMACs {
	out := make([]deviceMACs, 0, len(members))
	for _, m := range members {
		out = append(out, deviceMACs{
			identity: m.c.TrueAddr(),
			used:     m.c.UsedMACs(),
		})
	}
	return out
}

// validateLinking checks the randomization and linker knobs during
// Config.normalized.
func (cfg Config) validateLinking() error {
	switch cfg.Randomization {
	case client.RandomizeNone, client.RandomizePerScan, client.RandomizePerBurst, client.RandomizeTimed:
	default:
		return fmt.Errorf("scenario: unknown randomization policy %d", int(cfg.Randomization))
	}
	if cfg.RandomizeEvery < 0 {
		return fmt.Errorf("scenario: negative randomize-every %v", cfg.RandomizeEvery)
	}
	if cfg.FingerprintModels < 0 {
		return fmt.Errorf("scenario: negative fingerprint models %d", cfg.FingerprintModels)
	}
	if _, err := newLinker(cfg.Linker); err != nil {
		return err
	}
	return nil
}
