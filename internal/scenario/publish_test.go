package scenario

import (
	"sync"
	"testing"
	"time"

	"cityhunter/internal/obs"
)

// fakePublisher records everything published into it, standing in for the
// monitor server without any HTTP.
type fakePublisher struct {
	mu   sync.Mutex
	runs []*fakeRun
}

type fakeRun struct {
	mu        sync.Mutex
	info      obs.RunInfo
	snapAts   []time.Duration
	lastSnap  obs.Snapshot
	events    []obs.Event
	finished  bool
	finishErr error
}

func (p *fakePublisher) StartRun(info obs.RunInfo) obs.RunPublisher {
	r := &fakeRun{info: info}
	p.mu.Lock()
	p.runs = append(p.runs, r)
	p.mu.Unlock()
	return r
}

func (p *fakePublisher) run(t *testing.T, i int) *fakeRun {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= len(p.runs) {
		t.Fatalf("publisher saw %d runs, want index %d", len(p.runs), i)
	}
	return p.runs[i]
}

func (r *fakeRun) PublishSnapshot(at time.Duration, snap obs.Snapshot) {
	r.mu.Lock()
	r.snapAts = append(r.snapAts, at)
	r.lastSnap = snap
	r.mu.Unlock()
}

func (r *fakeRun) PublishEvent(ev obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *fakeRun) FinishRun(at time.Duration, err error) {
	r.mu.Lock()
	r.finished = true
	r.finishErr = err
	r.mu.Unlock()
}

// TestPublisherDoesNotPerturbRun is the determinism guarantee behind
// -monitor: attaching a publisher must leave the simulation byte-identical.
// The snapshot tick consumes no randomness, so tallies and victims match a
// bare run exactly.
func TestPublisherDoesNotPerturbRun(t *testing.T) {
	cfg := baseConfig(t, PassageVenue(), CityHunter, 17)
	cfg.ArrivalScale = 0.3
	plain, err := Run(cfg, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	pub := &fakePublisher{}
	cfg.Publisher = pub
	cfg.PublishEvery = 30 * time.Second
	monitored, err := Run(cfg, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Tally != monitored.Tally {
		t.Errorf("publisher perturbed the run:\nplain     %v\nmonitored %v",
			plain.Tally, monitored.Tally)
	}
	if len(plain.Victims) != len(monitored.Victims) {
		t.Errorf("victims differ: %d plain vs %d monitored",
			len(plain.Victims), len(monitored.Victims))
	}
}

// TestPublisherFeed checks what the run actually streams: identity labels,
// virtual-time snapshot cadence, the site-deploy event, and a clean finish.
func TestPublisherFeed(t *testing.T) {
	cfg := baseConfig(t, CanteenVenue(), CityHunter, 19)
	cfg.ArrivalScale = 0.3
	pub := &fakePublisher{}
	cfg.Publisher = pub
	cfg.PublishEvery = time.Minute
	cfg.RunLabel = "feed-test"
	if _, err := Run(cfg, 0, 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	r := pub.run(t, 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Kind != "run" || r.info.Label != "feed-test" {
		t.Errorf("run info = %+v, want kind=run label=feed-test", r.info)
	}
	if r.info.Labels["seed"] != "19" {
		t.Errorf("run labels = %v, want seed=19", r.info.Labels)
	}
	// Tick at 0,1m..5m plus the final flush = at least 6 snapshots, in
	// non-decreasing virtual time.
	if len(r.snapAts) < 6 {
		t.Fatalf("got %d snapshots, want >= 6 at 1m cadence over 5m", len(r.snapAts))
	}
	for i := 1; i < len(r.snapAts); i++ {
		if r.snapAts[i] < r.snapAts[i-1] {
			t.Errorf("snapshot times regress: %v", r.snapAts)
		}
	}
	if v := r.lastSnap.Value("sim_events_executed"); v <= 0 {
		t.Errorf("final snapshot sim_events_executed = %v, want > 0", v)
	}
	deploys := 0
	for _, ev := range r.events {
		if ev.Type == obs.EventSiteDeploy {
			deploys++
		}
	}
	if deploys != 1 {
		t.Errorf("site-deploy events = %d, want 1", deploys)
	}
	if !r.finished || r.finishErr != nil {
		t.Errorf("finish = (%v, %v), want clean finish", r.finished, r.finishErr)
	}
}
