// Package scenario composes the substrates into the paper's field
// experiments: a venue (canteen, subway passage, shopping centre, railway
// station) populated by an arrival process of phones with generated PNLs,
// an attacker running one of the strategies, and the metric collection the
// tables and figures need.
package scenario

import (
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// VenueKind identifies the paper's four deployment sites.
type VenueKind int

// Venue kinds.
const (
	// Passage is the subway passage: everyone moving fast.
	Passage VenueKind = iota + 1
	// Canteen: almost everyone static over a meal.
	Canteen
	// Mall: the shopping centre's mixed crowd.
	Mall
	// Station: the railway station's mixed crowd with commuter peaks.
	Station
)

// String implements fmt.Stringer.
func (k VenueKind) String() string {
	switch k {
	case Passage:
		return "subway passage"
	case Canteen:
		return "canteen"
	case Mall:
		return "shopping center"
	case Station:
		return "railway station"
	default:
		return "unknown venue"
	}
}

// Venue is one deployment site.
type Venue struct {
	// Name for reports.
	Name string
	// Kind selects defaults elsewhere.
	Kind VenueKind
	// Position is the attacker deployment point in city coordinates.
	Position geo.Point
	// RadioRange is the attacker's coverage radius in metres.
	RadioRange float64
	// Profile is the hour-of-day arrival profile.
	Profile mobility.Profile
	// MovingFraction is the share of people walking through (the rest
	// sit within range for their dwell).
	MovingFraction float64
	// StaticDwell and MovingDwell sample in-range times for the two
	// sub-populations.
	StaticDwell mobility.DwellModel
	MovingDwell mobility.DwellModel
	// RushSlots lists the profile slots treated as rush hours: group
	// sizes grow there (RushGroups vs DefaultGroups).
	RushSlots []int
}

// IsRush reports whether a slot is a rush hour at this venue.
func (v Venue) IsRush(slot int) bool {
	for _, s := range v.RushSlots {
		if s == slot {
			return true
		}
	}
	return false
}

// Groups returns the group-size model for a slot.
func (v Venue) Groups(slot int) mobility.GroupModel {
	if v.IsRush(slot) {
		return mobility.RushGroups()
	}
	return mobility.DefaultGroups()
}

// The default venue set, positioned at the synthetic city's hotspots (see
// citygen.DefaultConfig).

// PassageVenue returns the subway-passage deployment.
func PassageVenue() Venue {
	return Venue{
		Name:           "subway passage",
		Kind:           Passage,
		Position:       geo.Pt(4050, 4020), // corridor by Central Station
		RadioRange:     50,
		Profile:        mobility.PassageProfile(),
		MovingFraction: 1.0,
		StaticDwell:    mobility.StaticDwell{Median: 5 * time.Minute, Sigma: 0.4, Max: 20 * time.Minute},
		MovingDwell:    mobility.CorridorDwell{PathLength: 90, SpeedMin: 1.0, SpeedMax: 1.8},
		RushSlots:      []int{0, 10},
	}
}

// CanteenVenue returns the canteen deployment.
func CanteenVenue() Venue {
	return Venue{
		Name:           "canteen",
		Kind:           Canteen,
		Position:       geo.Pt(2600, 2400),
		RadioRange:     50,
		Profile:        mobility.CanteenProfile(),
		MovingFraction: 0.05,
		StaticDwell:    mobility.StaticDwell{Median: 17 * time.Minute, Sigma: 0.45, Max: 50 * time.Minute},
		MovingDwell:    mobility.CorridorDwell{PathLength: 80, SpeedMin: 0.8, SpeedMax: 1.5},
		RushSlots:      []int{0, 4, 5, 10},
	}
}

// MallVenue returns the shopping-centre deployment.
func MallVenue() Venue {
	return Venue{
		Name:           "shopping center",
		Kind:           Mall,
		Position:       geo.Pt(5200, 5600), // iSQUARE
		RadioRange:     50,
		Profile:        mobility.MallProfile(),
		MovingFraction: 0.55,
		StaticDwell:    mobility.StaticDwell{Median: 12 * time.Minute, Sigma: 0.5, Max: 45 * time.Minute},
		MovingDwell:    mobility.CorridorDwell{PathLength: 90, SpeedMin: 0.7, SpeedMax: 1.4},
		RushSlots:      []int{5, 9, 10},
	}
}

// StationVenue returns the railway-station deployment.
func StationVenue() Venue {
	return Venue{
		Name:           "railway station",
		Kind:           Station,
		Position:       geo.Pt(4000, 4000), // Central Station concourse
		RadioRange:     50,
		Profile:        mobility.StationProfile(),
		MovingFraction: 0.6,
		StaticDwell:    mobility.StaticDwell{Median: 10 * time.Minute, Sigma: 0.5, Max: 40 * time.Minute},
		MovingDwell:    mobility.CorridorDwell{PathLength: 90, SpeedMin: 0.9, SpeedMax: 1.7},
		RushSlots:      []int{0, 10, 11},
	}
}

// AllVenues returns the paper's four deployments in Figure 5 order.
func AllVenues() []Venue {
	return []Venue{PassageVenue(), CanteenVenue(), MallVenue(), StationVenue()}
}
