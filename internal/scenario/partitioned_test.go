package scenario

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cityhunter/internal/geo"
	"cityhunter/internal/mobility"
)

// partitionedTrio is the 3-site deployment the determinism matrix runs:
// pairwise gaps well above zero so every partitioned precondition holds.
func partitionedTrio(t *testing.T, seed int64) DeploymentConfig {
	t.Helper()
	d := deployConfig(t, CityHunter, seed)
	third := MallVenue()
	third.Position = d.Sites[0].Position.Add(geo.Pt(200, 400))
	d.Sites = append(d.Sites, third)
	d.RoamFraction = 0.5
	d.Knowledge = PeriodicSync
	return d
}

// trioFarField routes far-field pedestrians between the first and third
// sites' districts, so itineraries cross MULTIPLE promotion boundaries and
// the level-of-detail handoff carries snapshots across partitions.
func trioFarField(d DeploymentConfig, pedestrians int) *FarFieldConfig {
	return &FarFieldConfig{
		Pedestrians: pedestrians,
		Stops: []mobility.RouteStop{
			{Pos: d.Sites[0].Position, Radius: 30, Weight: 1},
			{Pos: d.Sites[2].Position, Radius: 30, Weight: 1},
			{Pos: d.Sites[0].Position.Add(geo.Pt(-900, 0)), Radius: 100, Weight: 1},
		},
		Entry: geo.NewRect(d.Sites[0].Position.Add(geo.Pt(-600, -600)),
			d.Sites[0].Position.Add(geo.Pt(-400, -400))),
	}
}

// comparePartitioned asserts two partitioned runs produced identical
// results, field family by field family so a divergence names itself.
func comparePartitioned(t *testing.T, label string, ref, got *DeploymentResult) {
	t.Helper()
	if !reflect.DeepEqual(ref.Outcomes, got.Outcomes) {
		t.Errorf("%s: pooled outcomes diverge", label)
	}
	if ref.Tally != got.Tally || ref.Roams != got.Roams {
		t.Errorf("%s: tally/roams diverge: %+v/%d vs %+v/%d",
			label, ref.Tally, ref.Roams, got.Tally, got.Roams)
	}
	for s := range ref.Sites {
		if ref.Sites[s].Tally != got.Sites[s].Tally {
			t.Errorf("%s site %d: tallies diverge", label, s)
		}
		if ref.Sites[s].Report != got.Sites[s].Report {
			t.Errorf("%s site %d: attacker reports diverge", label, s)
		}
		if !reflect.DeepEqual(ref.Sites[s].Victims, got.Sites[s].Victims) {
			t.Errorf("%s site %d: victim lists diverge", label, s)
		}
	}
	if (ref.FarField == nil) != (got.FarField == nil) {
		t.Fatalf("%s: far-field presence diverges", label)
	}
	if ref.FarField != nil {
		if !reflect.DeepEqual(ref.FarField.Outcomes, got.FarField.Outcomes) {
			t.Errorf("%s: far-field outcomes diverge", label)
		}
		rf, gf := *ref.FarField, *got.FarField
		rf.Outcomes, gf.Outcomes = nil, nil
		if !reflect.DeepEqual(rf, gf) {
			t.Errorf("%s: far-field accounting diverges: %+v vs %+v", label, rf, gf)
		}
	}
}

// TestPartitionedDeterminismMatrix is the tentpole's gate: the same
// deployment must produce byte-identical results at every partition count
// and every GOMAXPROCS, with the 1-partition run as the serial reference.
// It runs the plain roaming trio and the city-scale trio (far-field tier
// crossing multiple promotion boundaries).
func TestPartitionedDeterminismMatrix(t *testing.T) {
	scenarios := []struct {
		name     string
		farField bool
	}{
		{"roaming-trio", false},
		{"city-scale-trio", true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(partitions int) *DeploymentResult {
				d := partitionedTrio(t, 31)
				if sc.farField {
					d.FarField = trioFarField(d, 40)
				}
				d.Partitions = partitions
				res, err := RunDeployment(d, 0, 12*time.Minute)
				if err != nil {
					t.Fatalf("partitions=%d: %v", partitions, err)
				}
				return res
			}
			ref := run(1) // serial reference under partitioned semantics
			if ref.Roams == 0 {
				t.Fatal("reference run never roamed; matrix exercises nothing")
			}
			if sc.farField && ref.FarField.Promotions == 0 {
				t.Fatal("reference run never promoted; matrix exercises nothing")
			}
			old := runtime.GOMAXPROCS(0)
			defer runtime.GOMAXPROCS(old)
			for _, procs := range []int{1, 2, 8} {
				runtime.GOMAXPROCS(procs)
				for _, parts := range []int{1, 2, AutoPartitions} {
					got := run(parts)
					comparePartitioned(t, t.Name()+"/"+
						"procs="+itoa(procs)+"/parts="+itoa(parts), ref, got)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n > 9 {
		return itoa(n/10) + itoa(n%10)
	}
	return string(rune('0' + n))
}

// TestPartitionedMatchesClassicShape: partitioned output follows its own
// semantics, but the structural invariants of a deployment hold — per-site
// accounting sums to the pooled accounting, roamers are counted once.
func TestPartitionedMatchesClassicShape(t *testing.T) {
	d := partitionedTrio(t, 17)
	d.Partitions = AutoPartitions
	res, err := RunDeployment(d, 0, 12*time.Minute)
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	if res.Roams == 0 {
		t.Fatal("no phone ever roamed")
	}
	sum, outcomes := 0, 0
	for _, s := range res.Sites {
		sum += s.Tally.Total
		outcomes += len(s.Outcomes)
	}
	if sum != res.Tally.Total || outcomes != len(res.Outcomes) {
		t.Fatalf("per-site totals %d/%d != pooled %d/%d",
			sum, outcomes, res.Tally.Total, len(res.Outcomes))
	}
}

// TestPartitionedTransitWindowEdge pins the window-edge behaviour at the
// scenario layer: with a constant transit speed, minimum-distance transits
// take exactly one lookahead, so arrivals land on or next to coordinator
// barriers all run long. Results must still be partition-count invariant.
func TestPartitionedTransitWindowEdge(t *testing.T) {
	run := func(partitions int) *DeploymentResult {
		d := deployConfig(t, CityHunter, 13)
		d.RoamFraction = 1
		d.Transit = mobility.TransitModel{SpeedMin: 1.5, SpeedMax: 1.5}
		d.Partitions = partitions
		res, err := RunDeployment(d, 0, 15*time.Minute)
		if err != nil {
			t.Fatalf("partitions=%d: %v", partitions, err)
		}
		return res
	}
	ref := run(1)
	if ref.Roams == 0 {
		t.Fatal("no transits at RoamFraction 1")
	}
	comparePartitioned(t, "edge", ref, run(2))
}

// TestPartitionLookahead pins the lookahead derivation: the RF gap over
// the transit speed, floored at the 1-second minimum leg duration, shrunk
// by the promotion-boundary gap when a far-field tier rides along.
func TestPartitionLookahead(t *testing.T) {
	site := func(x float64, rr float64) Venue {
		v := CanteenVenue()
		v.Position = geo.Pt(x, 0)
		v.RadioRange = rr
		return v
	}
	walk := mobility.TransitModel{SpeedMin: 1, SpeedMax: 1.5}
	d := DeploymentConfig{Sites: []Venue{site(0, 50), site(400, 50)}}

	// gap 300 m at SpeedMax 1.5 m/s → 200 s.
	if got, err := partitionLookahead(d, walk, nil, time.Hour); err != nil || got != 200*time.Second {
		t.Fatalf("two sites: lookahead %v err %v, want 200s", got, err)
	}

	single := DeploymentConfig{Sites: []Venue{site(0, 50)}}
	if got, err := partitionLookahead(single, walk, nil, time.Hour); err != nil || got != time.Hour {
		t.Fatalf("single site: lookahead %v err %v, want full duration", got, err)
	}

	near := DeploymentConfig{Sites: []Venue{site(0, 50), site(100.5, 50)}}
	if got, err := partitionLookahead(near, walk, nil, time.Hour); err != nil || got != time.Second {
		t.Fatalf("sub-second gap: lookahead %v err %v, want 1s floor", got, err)
	}

	touching := DeploymentConfig{Sites: []Venue{site(0, 50), site(90, 50)}}
	if _, err := partitionLookahead(touching, walk, nil, time.Hour); err == nil {
		t.Fatal("overlapping radio ranges accepted")
	}

	// A far-field tier shrinks the lookahead to the promotion-boundary
	// gap over the route transit speed: 400 − 2·75 = 250 m at 2 m/s.
	ff := &FarFieldConfig{Radius: 75, Route: mobility.RouteModel{
		Transit: mobility.TransitModel{SpeedMin: 1, SpeedMax: 2}}}
	if got, err := partitionLookahead(d, walk, ff, time.Hour); err != nil || got != 125*time.Second {
		t.Fatalf("far-field lookahead %v err %v, want 125s", got, err)
	}

	wide := &FarFieldConfig{Radius: 200, Route: mobility.RouteModel{
		Transit: mobility.TransitModel{SpeedMin: 1, SpeedMax: 2}}}
	if _, err := partitionLookahead(d, walk, wide, time.Hour); err == nil {
		t.Fatal("overlapping promotion boundaries accepted")
	}
}

// TestPartitionedRejections pins the configurations the partitioned
// engine refuses instead of silently serializing.
func TestPartitionedRejections(t *testing.T) {
	shared := partitionedTrio(t, 3)
	shared.Knowledge = Shared
	shared.Partitions = AutoPartitions
	if _, err := RunDeployment(shared, 0, time.Minute); err == nil {
		t.Error("shared knowledge plane accepted under partitioned execution")
	}

	traced := partitionedTrio(t, 3)
	traced.Base.SpanTrace = true
	traced.Partitions = AutoPartitions
	if _, err := RunDeployment(traced, 0, time.Minute); err == nil {
		t.Error("span tracing accepted under partitioned execution")
	}

	overlap := partitionedTrio(t, 3)
	overlap.Sites[1].Position = overlap.Sites[0].Position.Add(geo.Pt(80, 0))
	overlap.Partitions = AutoPartitions
	if _, err := RunDeployment(overlap, 0, time.Minute); err == nil {
		t.Error("overlapping radio ranges accepted under partitioned execution")
	}
}

// TestPartitionedCancellation checks the cancellation contract: a mid-run
// cancel returns the partial result with a wrapped context error, and —
// the satellite's point — every partition goroutine is joined before
// RunDeploymentContext returns, so nothing leaks.
func TestPartitionedCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	d := partitionedTrio(t, 9)
	d.FarField = trioFarField(d, 40)
	d.Partitions = AutoPartitions
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := RunDeploymentContext(ctx, d, 0, 12*time.Hour)
	if err == nil {
		t.Fatal("12-hour deployment finished before the cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled deployment returned no partial result")
	}
	if res.Duration >= 12*time.Hour {
		t.Fatalf("partial result claims full duration %v", res.Duration)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked after cancel: %d before, %d after", before, n)
	}
}
