package scenario

import (
	"fmt"
	"math/rand"

	"cityhunter/internal/client"
	"cityhunter/internal/obs"
	"cityhunter/internal/pnl"
	"cityhunter/internal/sim"
)

// runEnv is the world-build layer shared by the single-venue runner and
// multi-site deployments: the virtual-time engine, ONE city-wide radio
// medium, the observability runtime, and the PNL model. Everything above
// this layer — sites, attackers, populations — plugs into the same four
// handles, which is what lets a deployment place N attackers in one city.
type runEnv struct {
	cfg    Config
	rng    *rand.Rand
	engine *sim.Engine
	medium *sim.Medium
	rt     *obs.Runtime
	model  *pnl.Model

	// labelSites makes per-site instrumentation stamp a "site" label on
	// its metric series. Deployments set it so a live monitor can tell N
	// co-resident attackers apart; single-venue runs leave it off to keep
	// their metric dumps byte-stable.
	labelSites bool
}

// siteLabels returns the label pairs for one site's metric series — empty
// unless this environment labels sites.
func (env *runEnv) siteLabels(venueName string) []string {
	if !env.labelSites {
		return nil
	}
	return []string{"site", venueName}
}

// siteMetricLabel is the scalar form of siteLabels for components that take
// one optional site name.
func siteMetricLabel(env *runEnv, venueName string) string {
	if !env.labelSites {
		return ""
	}
	return venueName
}

// normalized validates the population and radio knobs and fills defaults.
// Structural checks (city/heat map presence, slot bounds, duration) stay
// with the callers because they differ between a run and a deployment.
func (cfg Config) normalized() (Config, error) {
	if cfg.DirectProberFraction < 0 || cfg.DirectProberFraction > 1 {
		return cfg, fmt.Errorf("scenario: direct prober fraction %v outside [0,1]", cfg.DirectProberFraction)
	}
	if cfg.PreconnectedFraction < 0 || cfg.PreconnectedFraction > 1 {
		return cfg, fmt.Errorf("scenario: preconnected fraction %v outside [0,1]", cfg.PreconnectedFraction)
	}
	if cfg.CanaryFraction < 0 || cfg.CanaryFraction > 1 {
		return cfg, fmt.Errorf("scenario: canary fraction %v outside [0,1]", cfg.CanaryFraction)
	}
	if cfg.RandomizeMACFraction < 0 || cfg.RandomizeMACFraction > 1 {
		return cfg, fmt.Errorf("scenario: randomize-MAC fraction %v outside [0,1]", cfg.RandomizeMACFraction)
	}
	if cfg.FrameLoss < 0 || cfg.FrameLoss >= 1 {
		return cfg, fmt.Errorf("scenario: frame loss %v outside [0,1)", cfg.FrameLoss)
	}
	if err := cfg.validateLinking(); err != nil {
		return cfg, err
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = client.DefaultScanInterval
	}
	if cfg.ArrivalScale <= 0 {
		cfg.ArrivalScale = 1
	}
	return cfg, nil
}

// newRunEnv builds the environment layer. radioRange is the medium's
// delivery radius: the venue's range for a single-venue run, the largest
// site range for a deployment (the spatial hash grid keeps far-apart sites
// cheap). Construction consumes no randomness beyond creating the seeded
// generator, so the layers above it draw in a stable order.
func newRunEnv(cfg Config, radioRange float64) (*runEnv, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	engine := sim.NewEngine()
	var mediumOpts []sim.MediumOption
	if cfg.FrameLoss > 0 {
		mediumOpts = append(mediumOpts, sim.WithFrameLoss(cfg.FrameLoss, cfg.Seed+5))
	}
	medium := sim.NewMedium(engine, radioRange, mediumOpts...)

	// Observability: one runtime feeds every instrumented layer. It never
	// consumes run randomness, so enabling it cannot perturb a seed.
	var rt *obs.Runtime
	if cfg.Metrics || cfg.FlightRecorderCap > 0 || cfg.SpanTrace || cfg.Publisher != nil {
		rt = &obs.Runtime{}
		if cfg.Metrics || cfg.Publisher != nil {
			// A live publisher needs the registry even when the caller did
			// not ask for a post-run snapshot.
			rt.Metrics = obs.NewRegistry()
		}
		if cfg.FlightRecorderCap > 0 {
			rt.Journal = obs.NewJournal(cfg.FlightRecorderCap)
			// Surface ring overwrites on the live registry, not only in
			// Journal.Dropped after the run.
			rt.Journal.Overflow = rt.Metrics.Counter("obs_journal_overwritten_events")
		}
		if cfg.SpanTrace {
			rt.Trace = obs.NewTrace()
		}
		engine.Instrument(rt)
		medium.Instrument(rt)
	}

	pnlModel := cfg.PNL
	if pnlModel == nil {
		var err error
		pnlModel, err = pnl.NewModel(cfg.City.DB, cfg.HeatMap, pnl.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("scenario: build pnl model: %w", err)
		}
	}
	return &runEnv{cfg: cfg, rng: rng, engine: engine, medium: medium, rt: rt, model: pnlModel}, nil
}
